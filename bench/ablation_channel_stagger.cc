/**
 * @file
 * Ablation (beyond the paper): cross-channel phase of the refresh
 * schedule (refresh.channelStagger).
 *
 * The paper simulates independent channels but never says how their
 * refresh schedules are phased against each other. Aligned (stagger 0,
 * the power-on default of most controllers), every channel blocks for
 * tRFC simultaneously -- a system-wide dead window. The auto spread
 * (stagger -1 = tREFIab / channels) offsets every channel's ledger
 * phase origin so the windows cannot coincide, which the per-system
 * "simultaneous-refresh overlap ticks" counter makes directly
 * observable: under REFab at 8 Gb it must read exactly zero.
 *
 * What the sweep shows, and what the exit code asserts:
 *
 *  - Overlap elimination: REFab's auto-staggered legs with >= 2
 *    channels must report zero overlap ticks (hard failure
 *    otherwise). Per-bank mechanisms are excluded from this check by
 *    construction: their refresh cadence is tREFIab / (ranks x
 *    banks), which the channel-grain phase shift aliases onto.
 *
 *  - WS: for DSARP -- the paper's design point, where refresh is
 *    already parallelized behind demand -- staggering must not lose
 *    weighted speedup (asserted with a 1% floor so reduced-fidelity
 *    CI smoke runs, which change DSARP_BENCH_* scale, stay
 *    deterministic-safe).
 *
 *  - For blocking REFab the same comparison is reported but NOT
 *    asserted: with traffic striped across channels (the burst-ch
 *    default), every channel's tRFC stalls every core, so rolling
 *    single-channel blackouts cost more total stall time than one
 *    batched system-wide window. The even spread loses up to ~13% WS
 *    at 4 channels -- the cross-channel analogue of
 *    ablation_rank_stagger's finding that near-aligned rank phases
 *    are the strongest REFab baseline.
 *
 * Emits one JSON row per sweep point for the perf trajectory.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

namespace {

/** Reduced-fidelity runs move WS by well under this; a real
 *  staggering regression on DSARP moves it by more. */
constexpr double kWsTolerance = 0.01;

/** Gmean WS and total cross-channel overlap for one sweep point. */
struct Point
{
    double wsGmean = 0.0;
    std::uint64_t overlapTicks = 0;
};

Point
runPoint(Runner &runner, const std::vector<Workload> &workloads,
         const std::string &mech, int channels, int stagger)
{
    RunConfig cfg = mechNamed(mech, Density::k8Gb);
    cfg.channels = channels;
    cfg.channelStaggerCycles = stagger;
    const auto results = sweep(runner, cfg, workloads);
    Point p;
    p.wsGmean = gmean(wsOf(results));
    for (const RunResult &r : results)
        p.overlapTicks += r.refOverlapTicks;
    return p;
}

void
printPoint(const std::string &mech, int channels, const char *label,
           const Point &p)
{
    std::printf("%-8s %9d %9s %12.3f %16llu\n", mech.c_str(), channels,
                label, p.wsGmean,
                static_cast<unsigned long long>(p.overlapTicks));
    std::printf("{\"bench\": \"ablation_channel_stagger\", "
                "\"mech\": \"%s\", \"channels\": %d, "
                "\"stagger\": \"%s\", \"ws_gmean\": %.17g, "
                "\"ref_overlap_ticks\": %llu}\n",
                mech.c_str(), channels, label, p.wsGmean,
                static_cast<unsigned long long>(p.overlapTicks));
}

} // namespace

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Ablation",
           "cross-channel refresh stagger, 8 Gb "
           "(refresh.channelStagger)");

    Runner runner;
    const auto workloads = makeIntensiveWorkloads(
        runner.workloadsPerCategory() * 2, 8, 21);

    std::printf("%-8s %9s %9s %12s %16s\n", "mech", "channels",
                "stagger", "WS gmean", "overlap ticks");
    bool ok = true;
    for (const char *mechName : {"REFab", "DSARP"}) {
        const std::string mech = mechName;
        for (const int channels : {1, 2, 4}) {
            const Point aligned =
                runPoint(runner, workloads, mech, channels, 0);
            const Point spread =
                runPoint(runner, workloads, mech, channels, -1);
            printPoint(mech, channels, "aligned", aligned);
            printPoint(mech, channels, "auto", spread);
            if (channels < 2)
                continue;  // Stagger is a no-op with one channel.
            if (mech == "REFab" && spread.overlapTicks != 0) {
                std::printf("[FAIL: auto stagger left %llu overlap "
                            "ticks under %s with %d channels]\n",
                            static_cast<unsigned long long>(
                                spread.overlapTicks),
                            mech.c_str(), channels);
                ok = false;
            }
            if (mech == "DSARP" &&
                spread.wsGmean < aligned.wsGmean * (1.0 - kWsTolerance)) {
                std::printf("[FAIL: auto stagger lost WS under %s "
                            "with %d channels: %.6f < %.6f]\n",
                            mech.c_str(), channels, spread.wsGmean,
                            aligned.wsGmean);
                ok = false;
            }
        }
    }
    std::printf(
        "\n[finding: the even spread provably eliminates simultaneous "
        "refresh (REFab\n overlap ticks 0) and is free under DSARP, "
        "whose refresh already hides behind\n demand; under blocking "
        "REFab with channel-striped traffic it trades one\n batched "
        "system-wide window for rolling blackouts and loses WS -- "
        "align the\n baseline, stagger the mechanism]\n");
    footer(runner);
    return ok ? 0 : 1;
}
