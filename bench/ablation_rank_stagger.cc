/**
 * @file
 * Ablation (beyond the paper): cross-rank phase of the REFab schedule.
 *
 * The paper fixes a REFab baseline without specifying how the two ranks
 * of a channel are phased against each other. This choice is
 * load-bearing: spreading the ranks' refreshes evenly (divisor 2) makes
 * the channel run at half capacity twice per interval, while nearly
 * aligning them (large divisor) concentrates the damage into one window
 * per interval -- substantially better for bandwidth-bound workloads.
 * The repository's baseline uses the strong (near-aligned) setting so
 * DARP/SARP gains are not inflated by a weak REFab.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Ablation", "REFab cross-rank refresh phase (32 Gb)");

    Runner runner;
    const auto workloads = makeIntensiveWorkloads(
        runner.workloadsPerCategory() * 2, 8, 21);

    const auto ideal = wsOf(sweep(runner, mechNoRef(Density::k32Gb),
                                  workloads));

    std::printf("%-22s %10s %12s\n", "rank phase", "WS", "loss vs ideal");
    for (int divisor : {2, 4, 8, 16, 64}) {
        RunConfig cfg = mechRefAb(Density::k32Gb);
        cfg.refabStaggerDivisor = divisor;
        const auto ws = wsOf(sweep(runner, cfg, workloads));
        std::printf("tREFI/(%2d*ranks) %15.3f %11.1f%%\n", divisor,
                    gmean(ws), -gmeanPctOver(ws, ideal));
    }
    std::printf("\n[finding: near-aligned rank refreshes (large divisor) "
                "are the strongest REFab\n baseline; evenly-spread ranks "
                "overstate the losses refresh causes]\n");
    footer(runner);
    return 0;
}
