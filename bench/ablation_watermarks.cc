/**
 * @file
 * Ablation (beyond the paper): write-queue watermarks and DARP's
 * write-refresh parallelization.
 *
 * Algorithm 1 hides refreshes inside write-drain batches, so the batch
 * length (high minus low watermark) bounds how many refreshes each
 * drain can absorb (one per tRFCpb). This sweep varies the batch length
 * at a fixed low watermark and reports DARP's gain over REFpb, plus how
 * many refreshes landed in writeback mode.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Ablation",
           "write batch length vs DARP's write-refresh benefit (32 Gb)");

    Runner runner;
    const auto workloads = makeIntensiveWorkloads(
        runner.workloadsPerCategory() * 2, 8, 31);

    std::printf("%-18s %12s %14s\n", "watermarks hi/lo", "DARP vs REFpb",
                "pulled-in/run");
    for (int high : {40, 48, 54, 60}) {
        RunConfig base = mechRefPb(Density::k32Gb);
        base.writeHighWatermark = high;
        RunConfig darp = mechDarp(Density::k32Gb);
        darp.writeHighWatermark = high;

        std::vector<double> ws_b, ws_d;
        double pulled = 0.0;
        for (const Workload &w : workloads) {
            ws_b.push_back(runner.run(base, w).ws);
            const RunResult rd = runner.run(darp, w);
            ws_d.push_back(rd.ws);
            pulled += static_cast<double>(rd.refPb);
        }
        std::printf("%8d/32 %15.1f%% %14.0f\n", high,
                    gmeanPctOver(ws_d, ws_b),
                    pulled / workloads.size());
    }
    std::printf("\n[finding: longer drains give write-refresh "
                "parallelization a bigger window,\n at the cost of "
                "longer read-service gaps]\n");
    footer(runner);
    return 0;
}
