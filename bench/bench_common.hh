/**
 * @file
 * Shared helpers for the per-figure/per-table bench binaries.
 *
 * Every binary prints (a) the paper's reference numbers where useful and
 * (b) the values this reproduction measures, in the same units, so
 * shape-level agreement can be read off directly. Absolute values differ
 * from the paper (scaled runs, synthetic traces; see DESIGN.md §5).
 */

#ifndef DSARP_BENCH_BENCH_COMMON_HH
#define DSARP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "dram/spec.hh"
#include "sim/parallel.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

namespace dsarp::bench {

/** All three paper densities, in order. */
inline std::vector<Density>
densities()
{
    return {Density::k8Gb, Density::k16Gb, Density::k32Gb};
}

/**
 * The bench-wide DRAM spec axis: the DSARP_DRAM_SPEC environment knob,
 * canonicalised through the registry (fatal named-key error on an
 * unknown name). Empty when unset, which keeps the library default
 * (DDR3-1333). Every bench that sweeps through sweep()/mechNamed()
 * honours it, so any figure can be re-run per backend:
 *
 *   DSARP_DRAM_SPEC=LPDDR4-3200 ./bench_fig13_all_mechanisms
 */
inline std::string
defaultSpec()
{
    const char *env = std::getenv("DSARP_DRAM_SPEC");
    if (!env || !*env)
        return "";
    return DramSpecRegistry::instance().at(env).name;
}

/**
 * The spec axis from the command line: "--spec NAME" (canonicalised,
 * fatal on unknown names) wins over DSARP_DRAM_SPEC, which wins over
 * the DDR3-1333 default. Benches pass argc/argv straight through.
 */
inline std::string
specFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--spec") == 0) {
            if (i + 1 >= argc)
                DSARP_FATAL("--spec needs a value (a registered DRAM "
                            "spec name)");
            return DramSpecRegistry::instance().at(argv[i + 1]).name;
        }
    }
    return defaultSpec();
}

/**
 * True when the (possibly empty = default DDR3-1333) spec name on a
 * bench's spec axis declares same-bank refresh support, i.e. the
 * REFsb/HiRAsb columns are meaningful for it.
 */
inline bool
specSupportsSameBank(const std::string &spec)
{
    const std::string name = spec.empty() ? "DDR3-1333" : spec;
    return DramSpecRegistry::instance().at(name).banksPerGroup > 0;
}

/**
 * The channel-count axis from the command line: "--channels N"
 * (fatal on a non-positive count), 0 when absent = keep the library
 * default topology. Benches pass argc/argv straight through, exactly
 * like specFromArgs().
 */
inline int
channelsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--channels") != 0)
            continue;
        if (i + 1 >= argc)
            DSARP_FATAL("--channels needs a value (a positive channel "
                        "count)");
        char *end = nullptr;
        const long n = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0' || n < 1) {
            DSARP_FATALF("--channels: '%s' is not a positive channel "
                         "count",
                         argv[i + 1]);
        }
        return static_cast<int>(n);
    }
    return 0;
}

/**
 * The bench-wide worker count: every binary's sweep() calls shard
 * their workload list across this many threads. Defaults to the
 * DSARP_JOBS environment knob (itself defaulting to 1 = serial);
 * "--jobs N" on the command line wins (applyJobsFromArgs()). Results
 * are byte-identical for any value -- see sim/parallel.hh.
 */
inline int &
sweepJobs()
{
    static int jobs = static_cast<int>(envKnob("DSARP_JOBS", 1));
    return jobs;
}

/**
 * Parse "--jobs N" (fatal named-key error on a missing or non-positive
 * value) into the bench-wide worker count. Benches pass argc/argv
 * straight through, exactly like specFromArgs().
 */
inline void
applyJobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") != 0)
            continue;
        if (i + 1 >= argc)
            DSARP_FATAL("--jobs needs a value (a positive worker count)");
        char *end = nullptr;
        const long n = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0' || n < 1) {
            DSARP_FATALF("--jobs: '%s' is not a positive worker count",
                         argv[i + 1]);
        }
        sweepJobs() = static_cast<int>(n);
        return;
    }
}

/**
 * A sweep point selecting its mechanism by refresh-policy registry
 * name ("DSARP", "FGR2x", ...) -- the same names dsarp_sim --mech and
 * Simulation::builder().policy() accept -- and optionally its DRAM
 * backend by spec-registry name. Prefer this over the mech*() helpers
 * when a bench iterates over mechanisms.
 */
inline RunConfig
mechNamed(const std::string &policy, Density d,
          const std::string &dramSpec = "")
{
    RunConfig cfg;
    cfg.density = d;
    cfg.policy = policy;
    cfg.dramSpec = dramSpec;
    return cfg;
}

/** Print a figure/table banner. */
inline void
banner(const char *id, const char *what)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id, what);
    std::printf("==============================================================\n");
}

/** Print the run-scale footer so outputs are self-describing. */
inline void
footer(const Runner &runner)
{
    std::printf("\n[scale: %llu warmup + %llu measured DRAM cycles, "
                "%d workloads/category; env DSARP_BENCH_* raises fidelity]\n\n",
                static_cast<unsigned long long>(runner.warmupTicks()),
                static_cast<unsigned long long>(runner.measureTicks()),
                runner.workloadsPerCategory());
}

/** Percentage improvement of @p x over @p base. */
inline double
pctOver(double x, double base)
{
    return (x / base - 1.0) * 100.0;
}

/** Geometric-mean percentage improvement across paired samples. */
inline double
gmeanPctOver(const std::vector<double> &xs, const std::vector<double> &bases)
{
    std::vector<double> ratios;
    ratios.reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        ratios.push_back(xs[i] / bases[i]);
    return (gmean(ratios) - 1.0) * 100.0;
}

/** Maximum percentage improvement across paired samples. */
inline double
maxPctOver(const std::vector<double> &xs, const std::vector<double> &bases)
{
    double best = -1e9;
    for (std::size_t i = 0; i < xs.size(); ++i)
        best = std::max(best, pctOver(xs[i], bases[i]));
    return best;
}

/**
 * Run one mechanism over a workload list; progress to stderr. A sweep
 * point that did not pick a DRAM spec explicitly inherits the
 * DSARP_DRAM_SPEC axis, so existing benches re-run per backend without
 * per-figure wiring.
 */
inline std::vector<RunResult>
sweep(Runner &runner, const RunConfig &cfgIn,
      const std::vector<Workload> &workloads)
{
    RunConfig cfg = cfgIn;
    if (cfg.dramSpec.empty())
        cfg.dramSpec = defaultSpec();
    if (sweepJobs() > 1) {
        // Sharded across the bench-wide pool; SweepRunner collects
        // results by point index, so the output (and therefore every
        // printed figure) is byte-identical to the serial path.
        std::fprintf(stderr, "  [%s %s] %zu workloads x %d jobs\r",
                     densityName(cfg.density),
                     cfg.mechanismName().c_str(), workloads.size(),
                     sweepJobs());
        SweepRunner sharded(runner, sweepJobs());
        auto out = sharded.run(cfg, workloads);
        std::fprintf(stderr, "%60s\r", "");
        return out;
    }
    std::vector<RunResult> out;
    out.reserve(workloads.size());
    for (const Workload &w : workloads) {
        std::fprintf(stderr, "  [%s %s] workload %d/%zu\r",
                     densityName(cfg.density),
                     cfg.mechanismName().c_str(), w.index + 1,
                     workloads.size());
        out.push_back(runner.run(cfg, w));
    }
    std::fprintf(stderr, "%60s\r", "");
    return out;
}

/** Pull WS samples from a result vector. */
inline std::vector<double>
wsOf(const std::vector<RunResult> &results)
{
    std::vector<double> out;
    out.reserve(results.size());
    for (const RunResult &r : results)
        out.push_back(r.ws);
    return out;
}

/** Pull energy-per-access samples from a result vector. */
inline std::vector<double>
energyOf(const std::vector<RunResult> &results)
{
    std::vector<double> out;
    out.reserve(results.size());
    for (const RunResult &r : results)
        out.push_back(r.energyPerAccessNj);
    return out;
}

} // namespace dsarp::bench

#endif // DSARP_BENCH_BENCH_COMMON_HH
