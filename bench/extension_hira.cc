/**
 * @file
 * Extension: HiRA (hidden row activation, Yağlıkçı et al., MICRO'22)
 * versus the paper's mechanisms, across every registered DRAM spec.
 *
 * HiRA extends the paper's core idea -- parallelizing refreshes with
 * accesses -- from idle-subarray scheduling (SARP) to overlapping a
 * refresh *beneath* an activation to a different subarray of the same
 * bank, with no chip modification. This bench compares HiRA against
 * the REFab baseline and the paper's headline DSARP on all five
 * registered backends, reporting weighted speedup, mean per-core IPC,
 * energy per access, and how many refreshes actually hid beneath
 * accesses.
 *
 * Each measured point is also emitted as one machine-readable JSON row
 * on stdout (prefix "JSON "), so sweeps can be collected into plots
 * without scraping the human tables.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "dram/spec.hh"

using namespace dsarp;
using namespace dsarp::bench;

namespace {

struct MechPoint
{
    double ws = 0.0;
    double ipc = 0.0;       ///< Mean per-core IPC across workloads.
    double energy = 0.0;    ///< Mean energy/access (nJ).
    double refPb = 0.0;     ///< Mean REFpb commands per run.
    double hidden = 0.0;    ///< Mean hidden refreshes per run.
};

MechPoint
measure(Runner &runner, const std::string &mech, const std::string &spec,
        Density d, const std::vector<Workload> &workloads)
{
    const auto results = sweep(runner, mechNamed(mech, d, spec), workloads);
    MechPoint p;
    for (const RunResult &r : results) {
        double ipc_sum = 0.0;
        for (double ipc : r.ipc)
            ipc_sum += ipc;
        p.ipc += ipc_sum / static_cast<double>(r.ipc.size());
        p.ws += r.ws;
        p.energy += r.energyPerAccessNj;
        p.refPb += static_cast<double>(r.refPb);
        p.hidden += static_cast<double>(r.refPbHidden);
    }
    const double n = static_cast<double>(results.size());
    p.ws /= n;
    p.ipc /= n;
    p.energy /= n;
    p.refPb /= n;
    p.hidden /= n;
    return p;
}

} // namespace

int
main()
{
    banner("Extension: HiRA",
           "hidden row activation vs REFab/DSARP per DRAM spec");

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);
    const Density d = Density::k32Gb;  // Longest refresh: biggest signal.

    std::printf("%-12s %9s %9s %9s %9s %9s %8s\n", "spec", "WS.REFab",
                "WS.DSARP", "WS.HiRA", "HiRAvAB", "hidden%", "E.HiRA");
    for (const std::string &spec : DramSpecRegistry::instance().names()) {
        const MechPoint refab =
            measure(runner, "REFab", spec, d, workloads);
        const MechPoint dsarp =
            measure(runner, "DSARP", spec, d, workloads);
        const MechPoint hira = measure(runner, "HiRA", spec, d, workloads);
        const double hidden_pct =
            hira.refPb > 0.0 ? 100.0 * hira.hidden / hira.refPb : 0.0;
        std::printf("%-12s %9.3f %9.3f %9.3f %8.1f%% %8.1f%% %8.2f\n",
                    spec.c_str(), refab.ws, dsarp.ws, hira.ws,
                    pctOver(hira.ws, refab.ws), hidden_pct, hira.energy);
        const std::pair<const char *, const MechPoint *> rows[] = {
            {"REFab", &refab}, {"DSARP", &dsarp}, {"HiRA", &hira}};
        for (const auto &[mech, p] : rows) {
            std::printf("JSON {\"bench\":\"extension_hira\","
                        "\"spec\":\"%s\",\"density\":\"%s\","
                        "\"mech\":\"%s\",\"ws\":%.4f,\"ipc\":%.4f,"
                        "\"energy_nj\":%.4f,\"refpb\":%.1f,"
                        "\"hidden\":%.1f}\n",
                        spec.c_str(), densityName(d), mech, p->ws,
                        p->ipc, p->energy, p->refPb, p->hidden);
        }
    }

    std::printf("\n[HiRA hides per-bank refreshes beneath demand ACTs to "
                "other subarrays of the same bank -- no chip "
                "modification; WS lands between REFab and DSARP, and "
                "its IPC must not fall below the REFab baseline]\n");
    footer(runner);
    return 0;
}
