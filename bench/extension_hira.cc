/**
 * @file
 * Extension: HiRA (hidden row activation, Yağlıkçı et al., MICRO'22)
 * versus the paper's mechanisms, across every registered DRAM spec.
 *
 * HiRA extends the paper's core idea -- parallelizing refreshes with
 * accesses -- from idle-subarray scheduling (SARP) to overlapping a
 * refresh *beneath* an activation to a different subarray of the same
 * bank, with no chip modification. This bench compares HiRA against
 * the REFab baseline and the paper's headline DSARP on all five
 * registered backends, reporting weighted speedup, mean per-core IPC,
 * energy per access, and how many refreshes actually hid beneath
 * accesses.
 *
 * Each measured point is also emitted as one machine-readable JSON row
 * on stdout (prefix "JSON "), so sweeps can be collected into plots
 * without scraping the human tables.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "dram/spec.hh"

using namespace dsarp;
using namespace dsarp::bench;

namespace {

struct MechPoint
{
    double ws = 0.0;
    double ipc = 0.0;       ///< Mean per-core IPC across workloads.
    double energy = 0.0;    ///< Mean energy/access (nJ).
    double refPb = 0.0;     ///< Mean REFpb commands per run.
    double hidden = 0.0;    ///< Mean hidden refreshes per run.
};

MechPoint
measure(Runner &runner, const std::string &mech, const std::string &spec,
        Density d, const std::vector<Workload> &workloads,
        int fgrRate = 0)
{
    RunConfig cfg = mechNamed(mech, d, spec);
    cfg.fgrRate = fgrRate;
    const auto results = sweep(runner, cfg, workloads);
    MechPoint p;
    for (const RunResult &r : results) {
        double ipc_sum = 0.0;
        for (double ipc : r.ipc)
            ipc_sum += ipc;
        p.ipc += ipc_sum / static_cast<double>(r.ipc.size());
        p.ws += r.ws;
        p.energy += r.energyPerAccessNj;
        p.refPb += static_cast<double>(r.refPb);
        p.hidden += static_cast<double>(r.refPbHidden);
    }
    const double n = static_cast<double>(results.size());
    p.ws /= n;
    p.ipc /= n;
    p.energy /= n;
    p.refPb /= n;
    p.hidden /= n;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Extension: HiRA",
           "hidden row activation vs REFab/DSARP per DRAM spec");

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);
    const Density d = Density::k32Gb;  // Longest refresh: biggest signal.

    std::printf("%-12s %9s %9s %9s %9s %9s %8s\n", "spec", "WS.REFab",
                "WS.DSARP", "WS.HiRA", "HiRAvAB", "hidden%", "E.HiRA");
    for (const std::string &spec : DramSpecRegistry::instance().names()) {
        const MechPoint refab =
            measure(runner, "REFab", spec, d, workloads);
        const MechPoint dsarp =
            measure(runner, "DSARP", spec, d, workloads);
        const MechPoint hira = measure(runner, "HiRA", spec, d, workloads);
        const double hidden_pct =
            hira.refPb > 0.0 ? 100.0 * hira.hidden / hira.refPb : 0.0;
        std::printf("%-12s %9.3f %9.3f %9.3f %8.1f%% %8.1f%% %8.2f\n",
                    spec.c_str(), refab.ws, dsarp.ws, hira.ws,
                    pctOver(hira.ws, refab.ws), hidden_pct, hira.energy);
        const std::pair<const char *, const MechPoint *> rows[] = {
            {"REFab", &refab}, {"DSARP", &dsarp}, {"HiRA", &hira}};
        for (const auto &[mech, p] : rows) {
            std::printf("JSON {\"bench\":\"extension_hira\","
                        "\"spec\":\"%s\",\"density\":\"%s\","
                        "\"mech\":\"%s\",\"ws\":%.4f,\"ipc\":%.4f,"
                        "\"energy_nj\":%.4f,\"refpb\":%.1f,"
                        "\"hidden\":%.1f}\n",
                        spec.c_str(), densityName(d), mech, p->ws,
                        p->ipc, p->energy, p->refPb, p->hidden);
        }
    }

    // HiRA under FGR rates (the PR-3 open item): DDR4-2400's native
    // tRFC1/tRFC2/tRFC4 divisors scale the per-bank refresh latency
    // while the command rate doubles/quadruples (refresh.fgrRate);
    // tHiRA and the coverage draws are rate-invariant device
    // characterization. More frequent refresh commands cost
    // performance, so the rate axis must order monotonically, and at
    // the same rate HiRA's out-of-order + hidden scheduling must beat
    // blocking all-bank FGR. 8 Gb: the only density where per-bank
    // refresh fits its command interval at the 4x rate.
    banner("HiRA x FGR", "DDR4-2400 per-bank HiRA on FGR-scaled timing");
    const Density d8 = Density::k8Gb;
    const std::string ddr4 = "DDR4-2400";
    const MechPoint hira1x = measure(runner, "HiRA", ddr4, d8, workloads);
    const MechPoint hira2x =
        measure(runner, "HiRA", ddr4, d8, workloads, 2);
    const MechPoint hira4x =
        measure(runner, "HiRA", ddr4, d8, workloads, 4);
    const MechPoint fgr2x = measure(runner, "FGR2x", ddr4, d8, workloads);
    const MechPoint fgr4x = measure(runner, "FGR4x", ddr4, d8, workloads);
    std::printf("%-12s %9s %9s %9s %9s %9s\n", "spec", "HiRA.1x",
                "HiRA.2x", "HiRA.4x", "FGR2x", "FGR4x");
    std::printf("%-12s %9.3f %9.3f %9.3f %9.3f %9.3f\n", ddr4.c_str(),
                hira1x.ws, hira2x.ws, hira4x.ws, fgr2x.ws, fgr4x.ws);
    const std::pair<const char *, const MechPoint *> fgr_rows[] = {
        {"HiRA@1x", &hira1x}, {"HiRA@2x", &hira2x}, {"HiRA@4x", &hira4x},
        {"FGR2x", &fgr2x},    {"FGR4x", &fgr4x}};
    for (const auto &[mech, p] : fgr_rows) {
        std::printf("JSON {\"bench\":\"extension_hira_fgr\","
                    "\"spec\":\"%s\",\"density\":\"%s\","
                    "\"mech\":\"%s\",\"ws\":%.4f,\"ipc\":%.4f,"
                    "\"energy_nj\":%.4f,\"hidden\":%.1f}\n",
                    ddr4.c_str(), densityName(d8), mech, p->ws, p->ipc,
                    p->energy, p->hidden);
    }
    // Asserted ordering, with 2% headroom for smoke-scale noise.
    // Blocking all-bank FGR degrades as the rate rises (the paper's
    // Figure 16 trend: tRFC shrinks by less than the rate), while
    // HiRA's out-of-order + hidden per-bank scheduling at the same
    // rate never loses to it. HiRA's own rate axis is deliberately
    // NOT forced monotone: at 8 Gb the shorter 2x/4x per-bank
    // commands hide *better*, so finer granularity can win -- the
    // interesting, density-dependent trade the JSON rows record.
    bool fgr_ok = true;
    if (fgr4x.ws > fgr2x.ws * 1.02) {
        std::printf("ORDERING VIOLATION: blocking FGR must not improve "
                    "with rate (2x %.3f, 4x %.3f)\n", fgr2x.ws,
                    fgr4x.ws);
        fgr_ok = false;
    }
    if (hira2x.ws < fgr2x.ws * 0.98 || hira4x.ws < fgr4x.ws * 0.98) {
        std::printf("ORDERING VIOLATION: HiRA at an FGR rate must not "
                    "lose to blocking FGR (2x %.3f vs %.3f, 4x %.3f vs "
                    "%.3f)\n",
                    hira2x.ws, fgr2x.ws, hira4x.ws, fgr4x.ws);
        fgr_ok = false;
    }

    std::printf("\n[HiRA hides per-bank refreshes beneath demand ACTs to "
                "other subarrays of the same bank -- no chip "
                "modification; WS lands between REFab and DSARP, and "
                "its IPC must not fall below the REFab baseline]\n");
    footer(runner);
    return fgr_ok ? 0 : EXIT_FAILURE;
}
