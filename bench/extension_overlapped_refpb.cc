/**
 * @file
 * Extension study (paper footnote 5): the LPDDR standard serializes
 * per-bank refreshes within a rank "for simplicity"; the paper notes a
 * modified standard could allow overlapping a subset of banks. This
 * bench quantifies what that buys: REFpb and DSARP with overlap limits
 * 1 (standard), 2, and 4, at 32 Gb where REFpb's serialization
 * pathology (8 x tRFCpb ~= 3.5 x tRFCab per rank sweep) is worst.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Extension",
           "overlapped per-bank refresh (footnote 5), 32 Gb");

    Runner runner;
    const auto workloads = makeIntensiveWorkloads(
        runner.workloadsPerCategory() * 2, 8, 41);

    const auto ideal =
        wsOf(sweep(runner, mechNoRef(Density::k32Gb), workloads));

    std::printf("%-10s %10s %12s %12s\n", "overlap", "mech", "WS",
                "loss/ideal");
    for (int overlap : {1, 2, 4}) {
        for (bool dsarp : {false, true}) {
            RunConfig cfg = dsarp ? mechDsarp(Density::k32Gb)
                                  : mechRefPb(Density::k32Gb);
            cfg.maxOverlappedRefPb = overlap;
            const auto ws = wsOf(sweep(runner, cfg, workloads));
            std::printf("%-10d %10s %12.3f %11.1f%%\n", overlap,
                        cfg.mechanismName().c_str(), gmean(ws),
                        -gmeanPctOver(ws, ideal));
        }
    }
    std::printf("\n[extension finding: overlap compresses REFpb's "
                "serialized rank sweep; the\n incremental benefit on top "
                "of DSARP shows how much of the pathology DARP's\n "
                "scheduling already hides]\n");
    footer(runner);
    return 0;
}
