/**
 * @file
 * Extension: DDR5 same-bank refresh (REFsb) versus the paper's
 * mechanisms, across every registered DRAM spec that supports it.
 *
 * REFsb is the standard's own adoption of the paper's idea: one
 * command refreshes one bank-group slice while every other bank group
 * keeps serving accesses -- rank-granularity refresh-access
 * parallelism in the device instead of the controller. This bench
 * compares REFsb (and its HiRA slice-pairing composition HiRAsb)
 * against the REFpb baseline it is built on, the HiRA extension, and
 * the paper's headline DSARP, on every same-bank-capable backend at
 * the canonical 32-banks-per-rank DDR5 geometry.
 *
 * On DDR5 the expected ordering is structural: REFsb must improve on
 * the blocking round-robin REFpb (slices drain less often and pull in
 * on idle channels) while staying below DSARP (which adds subarray
 * parallelism and write-refresh hiding on top). The bench *asserts*
 * this ordering (with a small tolerance for smoke-scale noise) and
 * exits non-zero on violation, so CI catches a regressed REFsb
 * scheduler; run with larger DSARP_BENCH_CYCLES for publication-scale
 * numbers.
 *
 * Each measured point is also emitted as one machine-readable JSON
 * row on stdout (prefix "JSON ").
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "dram/spec.hh"

using namespace dsarp;
using namespace dsarp::bench;

namespace {

struct MechPoint
{
    double ws = 0.0;
    double ipc = 0.0;     ///< Mean per-core IPC across workloads.
    double energy = 0.0;  ///< Mean energy/access (nJ).
    double refCmds = 0.0; ///< Mean refresh commands (REFpb or REFsb).
};

MechPoint
measure(Runner &runner, const std::string &mech, const std::string &spec,
        Density d, const std::vector<Workload> &workloads)
{
    // Every mechanism runs at the same geometry (the 8-bank default:
    // two bank-group slices per rank) -- a 32-bank REFsb point against
    // an 8-bank DSARP would credit REFsb with the extra bank-level
    // parallelism, not its refresh behaviour. The canonical 32-bank
    // DDR5 organization is covered by the golden and end-to-end tests.
    const std::vector<RunResult> results =
        sweep(runner, mechNamed(mech, d, spec), workloads);
    MechPoint p;
    for (const RunResult &r : results) {
        double ipc_sum = 0.0;
        for (double ipc : r.ipc)
            ipc_sum += ipc;
        p.ipc += ipc_sum / static_cast<double>(r.ipc.size());
        p.ws += r.ws;
        p.energy += r.energyPerAccessNj;
        p.refCmds += static_cast<double>(r.refPb + r.refSb);
    }
    const double n = static_cast<double>(results.size());
    p.ws /= n;
    p.ipc /= n;
    p.energy /= n;
    p.refCmds /= n;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Extension: REFsb",
           "DDR5 same-bank refresh vs REFpb/HiRA/DSARP per DRAM spec");

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);
    const Density d = Density::k32Gb;  // Longest refresh: biggest signal.

    bool ordering_ok = true;
    std::printf("%-12s %9s %9s %9s %9s %9s %9s\n", "spec", "WS.REFpb",
                "WS.REFsb", "WS.HiRAsb", "WS.HiRA", "WS.DSARP",
                "E.REFsb");
    for (const std::string &spec : DramSpecRegistry::instance().names()) {
        if (!specSupportsSameBank(spec))
            continue;  // No REFsb command on this device family.
        const MechPoint refpb =
            measure(runner, "REFpb", spec, d, workloads);
        const MechPoint refsb =
            measure(runner, "REFsb", spec, d, workloads);
        const MechPoint hirasb =
            measure(runner, "HiRAsb", spec, d, workloads);
        const MechPoint hira = measure(runner, "HiRA", spec, d, workloads);
        const MechPoint dsarp =
            measure(runner, "DSARP", spec, d, workloads);
        std::printf("%-12s %9.3f %9.3f %9.3f %9.3f %9.3f %9.2f\n",
                    spec.c_str(), refpb.ws, refsb.ws, hirasb.ws, hira.ws,
                    dsarp.ws, refsb.energy);
        const std::pair<const char *, const MechPoint *> rows[] = {
            {"REFpb", &refpb},
            {"REFsb", &refsb},
            {"HiRAsb", &hirasb},
            {"HiRA", &hira},
            {"DSARP", &dsarp}};
        for (const auto &[mech, p] : rows) {
            std::printf("JSON {\"bench\":\"extension_refsb\","
                        "\"spec\":\"%s\",\"density\":\"%s\","
                        "\"mech\":\"%s\",\"ws\":%.4f,\"ipc\":%.4f,"
                        "\"energy_nj\":%.4f,\"ref_cmds\":%.1f}\n",
                        spec.c_str(), densityName(d), mech, p->ws,
                        p->ipc, p->energy, p->refCmds);
        }
        // The structural ordering, with 2% headroom for smoke-scale
        // noise: same-bank refresh lands between the blocking REFpb
        // baseline and the paper's DSARP.
        if (refsb.ws < refpb.ws * 0.98 || refsb.ws > dsarp.ws * 1.02) {
            std::printf("ORDERING VIOLATION on %s: REFpb %.3f, REFsb "
                        "%.3f, DSARP %.3f\n",
                        spec.c_str(), refpb.ws, refsb.ws, dsarp.ws);
            ordering_ok = false;
        }
    }

    std::printf("\n[REFsb refreshes one bank-group slice per command "
                "while other groups keep serving; WS must land between "
                "REFpb and DSARP, with HiRAsb pairing recovering a "
                "little more]\n");
    footer(runner);
    return ordering_ok ? 0 : EXIT_FAILURE;
}
