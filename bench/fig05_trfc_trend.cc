/**
 * @file
 * Figure 5: tRFCab scaling trend versus DRAM density.
 *
 * Reproduces the paper's linear extrapolations: Projection 1 fits the
 * 1/2/4 Gb generations, Projection 2 (the optimistic one the paper uses)
 * fits 4 and 8 Gb. The paper reads ~1.6 us at 64 Gb off Projection 2.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

namespace {

struct Point
{
    double gb;
    double ns;
};

/** Least-squares line through the points. */
void
fitLine(const std::vector<Point> &pts, double &slope, double &intercept)
{
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double n = static_cast<double>(pts.size());
    for (const Point &p : pts) {
        sx += p.gb;
        sy += p.ns;
        sxx += p.gb * p.gb;
        sxy += p.gb * p.ns;
    }
    slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    intercept = (sy - slope * sx) / n;
}

} // namespace

int
main(int argc, char **argv)
{
    dsarp::bench::applyJobsFromArgs(argc, argv);
    dsarp::bench::banner("Figure 5", "refresh latency (tRFCab) trend");

    // Datasheet tRFCab values for shipped DDR3 generations [11, 29].
    const std::vector<Point> present = {
        {1, 110.0}, {2, 160.0}, {4, 260.0}, {8, 350.0}};

    double s1, c1, s2, c2;
    fitLine({present[0], present[1], present[2]}, s1, c1);  // 1/2/4 Gb.
    fitLine({present[2], present[3]}, s2, c2);              // 4/8 Gb.

    std::printf("%-10s %12s %14s %14s\n", "density", "present(ns)",
                "projection1", "projection2");
    for (int gb : {1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64}) {
        std::printf("%-10d", gb);
        bool found = false;
        for (const Point &p : present) {
            if (static_cast<int>(p.gb) == gb) {
                std::printf(" %12.0f", p.ns);
                found = true;
            }
        }
        if (!found)
            std::printf(" %12s", "-");
        std::printf(" %14.0f %14.0f\n", s1 * gb + c1, s2 * gb + c2);
    }

    const double at64 = s2 * 64 + c2;
    std::printf("\nProjection 2 at 64 Gb: %.2f us  (paper: ~1.6 us)\n",
                at64 / 1000.0);
    std::printf("Projection 2 at 16/32 Gb: %.0f / %.0f ns "
                "(paper Table 1 uses 530 / 890 ns)\n\n",
                s2 * 16 + c2, s2 * 32 + c2);
    return 0;
}
