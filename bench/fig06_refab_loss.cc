/**
 * @file
 * Figure 6: system performance degradation due to all-bank refresh
 * versus an ideal no-refresh baseline, by workload memory intensity
 * (% of memory-intensive benchmarks) and DRAM density.
 *
 * Paper reference: loss grows with both density and intensity, reaching
 * ~20%+ for fully intensive workloads at 32 Gb; the 8/32 Gb averages
 * quoted in the introduction are 8.2% / 19.9%.
 */

#include <cstdio>
#include <map>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Figure 6", "performance loss due to REFab vs ideal (no refresh)");

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    std::printf("%-10s %8s %8s %8s %8s %8s %8s\n", "density", "0%", "25%",
                "50%", "75%", "100%", "gmean");
    for (Density d : densities()) {
        const auto ideal = sweep(runner, mechNoRef(d), workloads);
        const auto refab = sweep(runner, mechRefAb(d), workloads);

        std::map<int, std::vector<double>> loss_by_cat;
        std::vector<double> ratios;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const double loss =
                (1.0 - refab[i].ws / ideal[i].ws) * 100.0;
            loss_by_cat[workloads[i].categoryPct].push_back(loss);
            ratios.push_back(refab[i].ws / ideal[i].ws);
        }
        std::printf("%-10s", densityName(d));
        for (int pct : {0, 25, 50, 75, 100})
            std::printf(" %7.1f%%", mean(loss_by_cat[pct]));
        std::printf(" %7.1f%%\n", (1.0 - gmean(ratios)) * 100.0);
    }
    std::printf("\n[paper: loss rises with density and intensity; "
                "8Gb avg 8.2%%, 32Gb avg 19.9%%]\n");
    footer(runner);
    return 0;
}
