/**
 * @file
 * Figure 7: average performance loss of REFab and REFpb versus the ideal
 * no-refresh baseline as density grows.
 *
 * Paper reference: REFpb beats REFab at every density but still loses
 * 16.6% on average at 32 Gb, which motivates DARP/SARP.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Figure 7", "performance loss due to REFab and REFpb vs ideal");

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    std::printf("%-10s %12s %12s\n", "density", "REFab loss", "REFpb loss");
    for (Density d : densities()) {
        const auto ideal = sweep(runner, mechNoRef(d), workloads);
        const auto refab = sweep(runner, mechRefAb(d), workloads);
        const auto refpb = sweep(runner, mechRefPb(d), workloads);

        std::vector<double> ab_ratio, pb_ratio;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            ab_ratio.push_back(refab[i].ws / ideal[i].ws);
            pb_ratio.push_back(refpb[i].ws / ideal[i].ws);
        }
        std::printf("%-10s %11.1f%% %11.1f%%\n", densityName(d),
                    (1.0 - gmean(ab_ratio)) * 100.0,
                    (1.0 - gmean(pb_ratio)) * 100.0);
    }
    std::printf("\n[paper: REFpb < REFab loss at every density; REFpb "
                "still loses 16.6%% at 32Gb]\n");
    footer(runner);
    return 0;
}
