/**
 * @file
 * Figure 12: per-workload weighted-speedup improvement of REFpb, DARP,
 * SARPpb, and DSARP over the REFab baseline, for 8/16/32 Gb densities,
 * sorted by DARP improvement (the paper's presentation).
 *
 * Paper reference shape: all curves above 1.0 for almost all workloads,
 * DSARP on top (up to ~1.36x at 32 Gb), REFpb occasionally dipping below
 * 1.0 (its serialized tRFCpb pathology, Section 6.1).
 */

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Figure 12",
           "sorted per-workload normalized WS over REFab (8/16/32 Gb)");

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    for (Density d : densities()) {
        const auto refab = sweep(runner, mechRefAb(d), workloads);
        const auto refpb = sweep(runner, mechRefPb(d), workloads);
        const auto darp = sweep(runner, mechDarp(d), workloads);
        const auto sarppb = sweep(runner, mechSarpPb(d), workloads);
        const auto dsarp = sweep(runner, mechDsarp(d), workloads);

        // Sort workload indices by DARP improvement, as in the paper.
        std::vector<int> order(workloads.size());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            return darp[a].ws / refab[a].ws < darp[b].ws / refab[b].ws;
        });

        std::printf("\n--- %s ---\n", densityName(d));
        std::printf("%-6s %5s %8s %8s %8s %8s\n", "rank", "wl", "REFpb",
                    "DARP", "SARPpb", "DSARP");
        for (std::size_t i = 0; i < order.size(); ++i) {
            const int w = order[i];
            std::printf("%-6zu %5d %8.3f %8.3f %8.3f %8.3f\n", i,
                        workloads[w].index, refpb[w].ws / refab[w].ws,
                        darp[w].ws / refab[w].ws,
                        sarppb[w].ws / refab[w].ws,
                        dsarp[w].ws / refab[w].ws);
        }
        std::printf("gmean %5s %8.3f %8.3f %8.3f %8.3f\n", "-",
                    1.0 + gmeanPctOver(wsOf(refpb), wsOf(refab)) / 100.0,
                    1.0 + gmeanPctOver(wsOf(darp), wsOf(refab)) / 100.0,
                    1.0 + gmeanPctOver(wsOf(sarppb), wsOf(refab)) / 100.0,
                    1.0 + gmeanPctOver(wsOf(dsarp), wsOf(refab)) / 100.0);
    }
    std::printf("\n[paper shape: DSARP highest everywhere, curves rise "
                "with memory intensity,\n REFpb can dip below 1.0; gains "
                "grow with density]\n");
    footer(runner);
    return 0;
}
