/**
 * @file
 * Figure 13: average WS improvement over REFab for every evaluated
 * mechanism: REFpb, elastic refresh, DARP, SARPab, SARPpb, DSARP, and
 * the ideal no-refresh system.
 *
 * Paper reference: elastic refresh gains only ~1.8%; DSARP captures most
 * of the ideal (within 0.9/1.2/3.7% at 8/16/32 Gb).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    banner("Figure 13", "average WS improvement over REFab (%)");

    // Backend axis: --spec NAME > DSARP_DRAM_SPEC > DDR3-1333 default.
    applyJobsFromArgs(argc, argv);
    const std::string spec = specFromArgs(argc, argv);
    if (!spec.empty())
        std::printf("[dram spec: %s]\n", spec.c_str());
    // Topology axis: --channels N (0 = the library default of 2).
    const int channels = channelsFromArgs(argc, argv);
    if (channels > 0)
        std::printf("[channels: %d]\n", channels);

    const auto point = [&](const char *mech, Density d) {
        RunConfig cfg = mechNamed(mech, d, spec);
        cfg.channels = channels;
        return cfg;
    };

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    // The REFsb column is meaningful only on same-bank-capable specs
    // (DDR5): fig13 gains it automatically when --spec selects one.
    std::vector<const char *> mechs = {"REFpb",  "Elastic", "DARP",
                                       "SARPab", "SARPpb",  "DSARP",
                                       "HiRA",   "NoREF"};
    if (specSupportsSameBank(spec))
        mechs.insert(mechs.begin() + 1, "REFsb");

    std::printf("%-10s", "density");
    for (const char *mech : mechs)
        std::printf(" %7s", mech);
    std::printf("\n");
    for (Density d : densities()) {
        const auto refab =
            wsOf(sweep(runner, point("REFab", d), workloads));
        std::printf("%-10s", densityName(d));
        for (const char *mech : mechs) {
            const auto ws =
                wsOf(sweep(runner, point(mech, d), workloads));
            std::printf(" %6.1f%%", gmeanPctOver(ws, refab));
        }
        std::printf("\n");
    }
    std::printf("\n[paper: Elastic ~1.8%% only; SARPab substantial; DSARP "
                "within 0.9/1.2/3.7%% of NoREF at 8/16/32Gb]\n");
    footer(runner);
    return 0;
}
