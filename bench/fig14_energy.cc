/**
 * @file
 * Figure 14: DRAM energy per memory access for every mechanism and
 * density (Micron power-calculator methodology, per-spec IDD sets).
 *
 * Paper reference: DSARP cuts energy/access by 3.0/5.2/9.0% versus
 * REFab at 8/16/32 Gb, mostly by reducing static energy per access
 * through higher performance.
 *
 * Backend axis: --spec NAME (or DSARP_DRAM_SPEC) re-runs the figure
 * under any registered DRAM spec with that spec's own vdd/IDD energy
 * parameters -- the CI runs DDR4-2400 and LPDDR4-3200 legs so
 * spec-blind energy regressions fail loudly.
 *
 * Self-refresh axis: --sr-idle N arms the command-level SRE/SRX
 * idle-entry policy (refresh.selfRefresh.idleEntry) at N cycles on
 * every mechanism column, so the figure shows the IDD6 residency
 * savings *and* their performance price in one run.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    banner("Figure 14", "energy per access (nJ) by mechanism");

    // Backend axis: --spec NAME > DSARP_DRAM_SPEC > DDR3-1333 default.
    applyJobsFromArgs(argc, argv);
    const std::string spec = specFromArgs(argc, argv);
    if (!spec.empty())
        std::printf("[dram spec: %s]\n", spec.c_str());

    // Self-refresh axis: --sr-idle N (0 = the protocol stays off).
    int srIdle = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sr-idle") == 0 && i + 1 < argc)
            srIdle = std::atoi(argv[i + 1]);
    }
    if (srIdle > 0) {
        std::printf("[self-refresh idle entry: %d cycles]\n", srIdle);
    }
    auto mech = [&](const std::string &name, Density d) {
        RunConfig cfg = mechNamed(name, d, spec);
        cfg.srIdleEntryCycles = srIdle;
        return cfg;
    };

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    std::printf("%-10s %7s %7s %8s %7s %7s %7s %7s %7s %10s\n", "density",
                "REFab", "REFpb", "Elastic", "DARP", "SARPab", "SARPpb",
                "DSARP", "NoREF", "DSARPvAB");
    for (Density d : densities()) {
        const auto refab =
            energyOf(sweep(runner, mech("REFab", d), workloads));
        std::printf("%-10s %7.2f", densityName(d), mean(refab));
        double dsarp_mean = 0.0;
        for (const char *name : {"REFpb", "Elastic", "DARP", "SARPab",
                                 "SARPpb", "DSARP", "NoREF"}) {
            const auto e =
                energyOf(sweep(runner, mech(name, d), workloads));
            if (std::string(name) == "DSARP")
                dsarp_mean = mean(e);
            std::printf(" %7.2f", mean(e));
        }
        std::printf(" %8.1f%%\n",
                    (1.0 - dsarp_mean / mean(refab)) * 100.0);
    }
    std::printf("\n[paper: DSARP reduces energy/access by 3.0/5.2/9.0%% "
                "vs REFab at 8/16/32Gb]\n");
    footer(runner);
    return 0;
}
