/**
 * @file
 * Figure 14: DRAM energy per memory access for every mechanism and
 * density (Micron power-calculator methodology).
 *
 * Paper reference: DSARP cuts energy/access by 3.0/5.2/9.0% versus
 * REFab at 8/16/32 Gb, mostly by reducing static energy per access
 * through higher performance.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main()
{
    banner("Figure 14", "energy per access (nJ) by mechanism");

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    std::printf("%-10s %7s %7s %8s %7s %7s %7s %7s %7s %10s\n", "density",
                "REFab", "REFpb", "Elastic", "DARP", "SARPab", "SARPpb",
                "DSARP", "NoREF", "DSARPvAB");
    for (Density d : densities()) {
        const auto refab =
            energyOf(sweep(runner, mechRefAb(d), workloads));
        std::printf("%-10s %7.2f", densityName(d), mean(refab));
        double dsarp_mean = 0.0;
        for (const RunConfig &cfg :
             {mechRefPb(d), mechElastic(d), mechDarp(d), mechSarpAb(d),
              mechSarpPb(d), mechDsarp(d), mechNoRef(d)}) {
            const auto e = energyOf(sweep(runner, cfg, workloads));
            if (cfg.mechanismName() == "DSARP")
                dsarp_mean = mean(e);
            std::printf(" %7.2f", mean(e));
        }
        std::printf(" %8.1f%%\n",
                    (1.0 - dsarp_mean / mean(refab)) * 100.0);
    }
    std::printf("\n[paper: DSARP reduces energy/access by 3.0/5.2/9.0%% "
                "vs REFab at 8/16/32Gb]\n");
    footer(runner);
    return 0;
}
