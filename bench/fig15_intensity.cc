/**
 * @file
 * Figure 15: WS improvement of DSARP over REFab and over REFpb, broken
 * down by workload memory intensity and density.
 *
 * Paper reference shape: the gain over REFab grows monotonically with
 * intensity; the gain over REFpb plateaus beyond the 25% category
 * (REFpb itself improves with intensity).
 */

#include <cstdio>
#include <map>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Figure 15",
           "DSARP WS improvement by memory intensity (%)");

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    for (const char *base : {"REFab", "REFpb"}) {
        std::printf("\nCompared to %s:\n", base);
        std::printf("%-10s %8s %8s %8s %8s %8s %8s\n", "density", "0%",
                    "25%", "50%", "75%", "100%", "avg");
        for (Density d : densities()) {
            const RunConfig base_cfg = std::string(base) == "REFab"
                ? mechRefAb(d)
                : mechRefPb(d);
            const auto base_res = sweep(runner, base_cfg, workloads);
            const auto dsarp_res = sweep(runner, mechDsarp(d), workloads);

            std::map<int, std::vector<double>> gain_by_cat;
            std::vector<double> ws_d, ws_b;
            for (std::size_t i = 0; i < workloads.size(); ++i) {
                gain_by_cat[workloads[i].categoryPct].push_back(
                    pctOver(dsarp_res[i].ws, base_res[i].ws));
                ws_d.push_back(dsarp_res[i].ws);
                ws_b.push_back(base_res[i].ws);
            }
            std::printf("%-10s", densityName(d));
            for (int pct : {0, 25, 50, 75, 100})
                std::printf(" %7.1f%%", mean(gain_by_cat[pct]));
            std::printf(" %7.1f%%\n", gmeanPctOver(ws_d, ws_b));
        }
    }
    std::printf("\n[paper: gain over REFab rises with intensity; gain "
                "over REFpb plateaus past 25%%]\n");
    footer(runner);
    return 0;
}
