/**
 * @file
 * Figure 16: DDR4 fine granularity refresh (2x/4x), adaptive refresh
 * (AR), and DSARP, as WS normalized to REFab.
 *
 * Paper reference: FGR 2x/4x *lose* 3.9-4.3% / 8.1-15.1% versus REFab;
 * AR sits within ~1% of REFab; DSARP is the only mechanism with solid
 * gains.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    banner("Figure 16", "FGR / AR / DSARP normalized WS (REFab = 1.0)");

    // Backend axis: DDR4-2400 is the interesting one here -- its
    // native tRFC2/tRFC4 divisors replace the Section 6.5 projections.
    applyJobsFromArgs(argc, argv);
    const std::string spec = specFromArgs(argc, argv);
    if (!spec.empty())
        std::printf("[dram spec: %s]\n", spec.c_str());

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    // On same-bank-capable specs (DDR5) the figure gains a REFsb
    // column: the standard's refresh-access parallelism against its
    // own fine-granularity modes.
    const bool same_bank = specSupportsSameBank(spec);
    std::printf("%-10s %8s %8s %8s %8s", "density", "REFab", "FGR2x",
                "FGR4x", "AR");
    if (same_bank)
        std::printf(" %8s", "REFsb");
    std::printf(" %8s\n", "DSARP");
    for (Density d : densities()) {
        RunConfig refabCfg = mechRefAb(d);
        refabCfg.dramSpec = spec;
        const auto refab = wsOf(sweep(runner, refabCfg, workloads));
        std::printf("%-10s %8.3f", densityName(d), 1.0);

        RunConfig fgr2 = mechRefAb(d);
        fgr2.refresh = RefreshMode::kFgr2x;
        RunConfig fgr4 = mechRefAb(d);
        fgr4.refresh = RefreshMode::kFgr4x;
        RunConfig ar = mechRefAb(d);
        ar.refresh = RefreshMode::kAdaptive;

        std::vector<RunConfig> points = {fgr2, fgr4, ar};
        if (same_bank)
            points.push_back(mechNamed("REFsb", d, spec));
        points.push_back(mechDsarp(d));
        for (RunConfig cfg : points) {
            cfg.dramSpec = spec;
            const auto ws = wsOf(sweep(runner, cfg, workloads));
            std::printf(" %8.3f",
                        1.0 + gmeanPctOver(ws, refab) / 100.0);
        }
        std::printf("\n");
    }
    std::printf("\n[paper: FGR2x ~0.96, FGR4x 0.85-0.92, AR ~0.99, DSARP "
                "above 1.0 and growing with density]\n");
    footer(runner);
    return 0;
}
