/**
 * @file
 * Tail-latency figure (beyond the paper): open-loop arrivals vs the
 * refresh mechanism.
 *
 * The paper's closed-loop core model measures throughput (WS/HS); what
 * it cannot show is the *tail* of the read-latency distribution, which
 * is where refresh interference actually lands in latency-sensitive
 * systems: a request that arrives while its rank sits under tRFC waits
 * the full blackout no matter how idle the channel was. This bench
 * drives the memory system with the open-loop TrafficInjector front
 * end (Poisson and bursty arrivals, hot-row skew) and sweeps mechanism
 * x arrival rate, reporting p50/p99/p99.9 read latency per point.
 *
 * Expected shape: p50 is mechanism-insensitive (most requests miss the
 * refresh windows entirely), while p99/p99.9 separate the mechanisms
 * -- REFab's batched all-bank blackouts stretch the tail, DSARP's
 * parallelized refresh pulls it back toward NoREF's floor.
 *
 * The exit code asserts the PR-8 address-map axis stays live under
 * byte-address traffic: with hot-row skew, "row-ch" (channel bits
 * above the row) concentrates each hot row in one channel while
 * "burst-ch" stripes its bursts across all of them, so the two maps
 * must NOT produce bucket-identical latency histograms. A map axis
 * that stopped differentiating would mean the byte-address decode path
 * is being bypassed.
 *
 * Flags: --grid full|smoke, --jobs N (accepted for CLI uniformity;
 * the sweep itself is serial), plus the usual DSARP_BENCH_* knobs.
 * Emits one JSON row per sweep point for the perf trajectory.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

namespace {

/** One open-loop sweep point: mechanism x map x arrival process. */
RunResult
runPoint(Runner &runner, const std::string &mech, const std::string &map,
         const std::string &mode, double ratePerKilocycle)
{
    RunConfig cfg = mechNamed(mech, Density::k8Gb, defaultSpec());
    cfg.addressMap = map;
    cfg.traffic.mode = mode;
    cfg.traffic.ratePerKilocycle = ratePerKilocycle;
    cfg.traffic.hotRowPct = 50.0;
    cfg.traffic.hotRows = 8;
    return runner.runTraffic(cfg);
}

void
printPoint(const std::string &mech, const std::string &mode, double rate,
           const RunResult &res)
{
    std::printf("%-8s %-8s %8.0f %9llu %8.1f %8.0f %8.0f %8.0f\n",
                mech.c_str(), mode.c_str(), rate,
                static_cast<unsigned long long>(res.readsCompleted),
                res.readLatency.mean(), res.readLatency.percentile(50),
                res.readLatency.percentile(99),
                res.readLatency.percentile(99.9));
    std::printf("{\"bench\": \"fig_tail_latency\", \"mech\": \"%s\", "
                "\"mode\": \"%s\", \"rate\": %.17g, \"reads\": %llu, "
                "\"mean\": %.17g, \"p50\": %.17g, \"p99\": %.17g, "
                "\"p999\": %.17g}\n",
                mech.c_str(), mode.c_str(), rate,
                static_cast<unsigned long long>(res.readsCompleted),
                res.readLatency.mean(), res.readLatency.percentile(50),
                res.readLatency.percentile(99),
                res.readLatency.percentile(99.9));
}

/** True when two runs produced bucket-identical latency histograms. */
bool
histogramsIdentical(const RunResult &a, const RunResult &b)
{
    if (a.readLatency.count() != b.readLatency.count())
        return false;
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
        if (a.readLatency.bucket(i) != b.readLatency.bucket(i))
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Tail latency",
           "open-loop arrivals x refresh mechanism (traffic.*)");

    std::string grid = "full";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--grid") == 0)
            grid = argv[i + 1];
    }
    if (grid != "full" && grid != "smoke")
        DSARP_FATALF("--grid: '%s' is not \"full\" or \"smoke\"",
                     grid.c_str());

    const std::vector<std::string> mechs =
        grid == "full"
            ? std::vector<std::string>{"REFab", "REFpb", "DSARP", "NoREF"}
            : std::vector<std::string>{"REFab", "DSARP"};
    const std::vector<double> rates =
        grid == "full" ? std::vector<double>{20, 60, 120}
                       : std::vector<double>{40};
    const std::vector<std::string> modes =
        grid == "full" ? std::vector<std::string>{"poisson", "bursty"}
                       : std::vector<std::string>{"poisson"};

    Runner runner;
    std::printf("%-8s %-8s %8s %9s %8s %8s %8s %8s\n", "mech", "mode",
                "req/kcy", "reads", "mean", "p50", "p99", "p99.9");
    for (const std::string &mode : modes) {
        for (const double rate : rates) {
            for (const std::string &mech : mechs) {
                std::fprintf(stderr, "  [%s %s %.0f/kcy]%10s\r",
                             mech.c_str(), mode.c_str(), rate, "");
                printPoint(mech, mode, rate,
                           runPoint(runner, mech, "burst-ch", mode, rate));
            }
        }
    }
    std::fprintf(stderr, "%40s\r", "");

    // Map-sensitivity gate: the same hot-row Poisson traffic under
    // every map the default spec supports ("ddr5-subch" needs a DDR5
    // device). Hard failure when row-ch and burst-ch coincide.
    const double gateRate = rates.front();
    std::printf("\nmap sensitivity (DSARP, poisson %.0f/kcy, hot rows):\n",
                gateRate);
    std::printf("%-12s %9s %8s %8s %8s\n", "map", "reads", "p50", "p99",
                "p99.9");
    std::vector<RunResult> mapRuns;
    const std::vector<std::string> maps = {"burst-ch", "row-ch",
                                           "perm-bank"};
    for (const std::string &map : maps) {
        std::fprintf(stderr, "  [map %s]%20s\r", map.c_str(), "");
        mapRuns.push_back(
            runPoint(runner, "DSARP", map, "poisson", gateRate));
        const RunResult &r = mapRuns.back();
        std::printf("%-12s %9llu %8.0f %8.0f %8.0f\n", map.c_str(),
                    static_cast<unsigned long long>(r.readsCompleted),
                    r.readLatency.percentile(50),
                    r.readLatency.percentile(99),
                    r.readLatency.percentile(99.9));
    }
    std::fprintf(stderr, "%40s\r", "");
    bool ok = true;
    if (histogramsIdentical(mapRuns[0], mapRuns[1])) {
        std::printf("[FAIL: row-ch and burst-ch produced bucket-identical "
                    "latency histograms under hot-row traffic -- the "
                    "address-map axis is dead]\n");
        ok = false;
    }

    std::printf("\n[finding: p50 barely moves across mechanisms, but the "
                "p99/p99.9 tail\n carries the refresh penalty -- batched "
                "REFab blackouts stretch it, DSARP's\n parallelized "
                "refresh pulls it back toward the NoREF floor; the "
                "address map\n shifts the whole distribution because it "
                "decides which channel absorbs the\n hot rows]\n");
    footer(runner);
    return ok ? 0 : 1;
}
