/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot paths:
 * address decode, FR-FCFS picks, and whole-system tick throughput per
 * refresh mechanism. These guard the simulation speed that the
 * experiment harnesses depend on.
 */

#include <benchmark/benchmark.h>

#include "controller/scheduler.hh"
#include "dram/address.hh"
#include "sim/system.hh"
#include "workload/benchmark.hh"

using namespace dsarp;

namespace {

void
BM_AddressDecode(benchmark::State &state)
{
    MemOrg org;
    AddressMap map(org);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.decode(addr));
        addr = (addr + 8191 * 64) % map.capacityBytes();
    }
}
BENCHMARK(BM_AddressDecode);

void
BM_AddressRoundTrip(benchmark::State &state)
{
    MemOrg org;
    AddressMap map(org);
    Addr addr = 64;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.encode(map.decode(addr)));
        addr = (addr + 12345 * 64) % map.capacityBytes();
    }
}
BENCHMARK(BM_AddressRoundTrip);

void
BM_FrFcfsPickFullQueue(benchmark::State &state)
{
    MemConfig cfg;
    cfg.finalize();
    const TimingParams timing = TimingParams::ddr3_1333(cfg);
    Channel channel(&cfg, &timing);
    RequestQueue queue(64, 2, 8);
    // Fill the queue across banks/rows; none issuable after we consume
    // the first pick, which is the worst-case scan.
    for (int i = 0; i < 64; ++i) {
        Request req;
        req.id = i;
        req.loc.rank = i % 2;
        req.loc.bank = (i / 2) % 8;
        req.loc.row = 100 + i;
        queue.push(req);
    }
    const std::vector<std::uint8_t> no_bank(16, 0);
    const std::vector<std::uint8_t> no_rank(2, 0);
    Tick now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            FrFcfs::pick(queue, channel, now, no_bank, no_rank, 8));
        ++now;
    }
}
BENCHMARK(BM_FrFcfsPickFullQueue);

void
SystemTicks(benchmark::State &state, RefreshMode mode, bool sarp)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.mem.density = Density::k32Gb;
    cfg.mem.refresh = mode;
    cfg.mem.sarp = sarp;
    std::vector<int> mix;
    for (int c = 0; c < 8; ++c)
        mix.push_back(intensiveBenchmarks()[c % 11]);
    System sys(cfg, mix);
    sys.run(5000);  // Warm the queues.
    for (auto _ : state)
        sys.run(1000);
    state.SetItemsProcessed(state.iterations() * 1000);
}

void
BM_SystemTicks_NoRef(benchmark::State &state)
{
    SystemTicks(state, RefreshMode::kNoRefresh, false);
}
BENCHMARK(BM_SystemTicks_NoRef);

void
BM_SystemTicks_RefAb(benchmark::State &state)
{
    SystemTicks(state, RefreshMode::kAllBank, false);
}
BENCHMARK(BM_SystemTicks_RefAb);

void
BM_SystemTicks_RefPb(benchmark::State &state)
{
    SystemTicks(state, RefreshMode::kPerBank, false);
}
BENCHMARK(BM_SystemTicks_RefPb);

void
BM_SystemTicks_Dsarp(benchmark::State &state)
{
    SystemTicks(state, RefreshMode::kDarp, true);
}
BENCHMARK(BM_SystemTicks_Dsarp);

} // namespace

BENCHMARK_MAIN();
