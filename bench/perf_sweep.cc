/**
 * @file
 * Wall-clock benchmark of the simulation engines over the fig13
 * all-mechanisms x all-specs grid, written to BENCH_sweep.json.
 *
 * Three timed passes over the same grid: the seed configuration
 * (cycle engine, one thread), the event engine on one thread, and the
 * event engine sharded across --jobs worker threads. The alone-IPC
 * cache is prewarmed before any pass so the baselines' simulation cost
 * is charged to none of them. Exits non-zero when the event engine is
 * slower than the cycle engine beyond --tolerance, which is the CI
 * perf-smoke gate.
 *
 * Flags: --grid fig13|smoke, --jobs N, --tolerance F, --out FILE
 * (plus the usual DSARP_BENCH_* scale knobs).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

namespace {

/** One (spec, mechanism, density) cell of the timed grid. */
struct GridPoint
{
    std::string spec;
    std::string mech;
    Density density;
};

/** One timed pass over the whole grid. */
struct PassResult
{
    std::string engine;
    int jobs = 0;
    double wallSeconds = 0.0;
    double simCyclesPerSec = 0.0;
    std::vector<double> pointSeconds;
    double wsSum = 0.0;  ///< Fingerprint: identical across passes.
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * Time one full pass over the grid. Each grid point shards its
 * workload list through SweepRunner, exactly like bench sweep() with
 * --jobs; per-point wall seconds land in PassResult::pointSeconds.
 */
PassResult
runPass(Runner &runner, const std::vector<GridPoint> &grid,
        const std::vector<Workload> &workloads, const char *engine,
        int jobs)
{
    PassResult pass;
    pass.engine = engine;
    pass.jobs = jobs;
    SweepRunner sharded(runner, jobs);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const GridPoint &gp = grid[i];
        std::fprintf(stderr, "  [%s %d] %s %s %s (%zu/%zu)%10s\r", engine,
                     jobs, gp.spec.c_str(), gp.mech.c_str(),
                     densityName(gp.density), i + 1, grid.size(), "");
        RunConfig cfg = mechNamed(gp.mech, gp.density, gp.spec);
        cfg.engine = engine;
        const auto p0 = std::chrono::steady_clock::now();
        const auto results = sharded.run(cfg, workloads);
        pass.pointSeconds.push_back(secondsSince(p0));
        for (const RunResult &r : results)
            pass.wsSum += r.ws;
    }
    pass.wallSeconds = secondsSince(t0);
    std::fprintf(stderr, "%70s\r", "");
    const double simCycles =
        static_cast<double>(runner.warmupTicks() + runner.measureTicks()) *
        static_cast<double>(grid.size()) *
        static_cast<double>(workloads.size());
    pass.simCyclesPerSec =
        pass.wallSeconds > 0.0 ? simCycles / pass.wallSeconds : 0.0;
    return pass;
}

void
writeJsonPass(std::FILE *f, const PassResult &p, bool last)
{
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"jobs\": %d, "
                 "\"wall_seconds\": %.6f, \"sim_cycles_per_sec\": %.1f, "
                 "\"ws_sum\": %.9f,\n     \"point_seconds\": [",
                 p.engine.c_str(), p.jobs, p.wallSeconds,
                 p.simCyclesPerSec, p.wsSum);
    for (std::size_t i = 0; i < p.pointSeconds.size(); ++i)
        std::fprintf(f, "%s%.6f", i ? ", " : "", p.pointSeconds[i]);
    std::fprintf(f, "]}%s\n", last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    banner("perf_sweep",
           "engine wall-clock over the fig13 mechanisms x specs grid");

    applyJobsFromArgs(argc, argv);
    // The sharded pass: --jobs N when given, else the acceptance
    // default of 4 workers.
    const int jobs = sweepJobs() > 1 ? sweepJobs() : 4;

    std::string grid_name = "fig13";
    std::string out_path = "BENCH_sweep.json";
    double tolerance = 0.05;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--grid") == 0)
            grid_name = argv[i + 1];
        else if (std::strcmp(argv[i], "--out") == 0)
            out_path = argv[i + 1];
        else if (std::strcmp(argv[i], "--tolerance") == 0)
            tolerance = std::atof(argv[i + 1]);
    }
    if (grid_name != "fig13" && grid_name != "smoke")
        DSARP_FATALF("--grid: '%s' is not \"fig13\" or \"smoke\"",
                     grid_name.c_str());

    // The grid. fig13: every registered spec x the fig13 mechanism
    // list (REFsb only where the spec supports it) x every density.
    // smoke: the two golden-baseline specs x three mechanisms x 8Gb,
    // small enough for a CI gate.
    std::vector<GridPoint> grid;
    const std::vector<const char *> fig13_mechs = {
        "REFab",  "REFpb", "Elastic", "DARP", "SARPab",
        "SARPpb", "DSARP", "HiRA",    "NoREF"};
    if (grid_name == "fig13") {
        for (const std::string &spec :
             DramSpecRegistry::instance().names()) {
            std::vector<std::string> mechs(fig13_mechs.begin(),
                                           fig13_mechs.end());
            if (specSupportsSameBank(spec))
                mechs.insert(mechs.begin() + 2, "REFsb");
            for (const std::string &mech : mechs)
                for (Density d : densities())
                    grid.push_back({spec, mech, d});
        }
    } else {
        for (const char *spec : {"DDR3-1333", "DDR5-4800"}) {
            std::vector<std::string> mechs = {"REFab", "DSARP", "NoREF"};
            if (specSupportsSameBank(spec))
                mechs.push_back("REFsb");
            for (const std::string &mech : mechs)
                grid.push_back({spec, mech, Density::k8Gb});
        }
    }

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);
    std::printf("grid: %s (%zu points x %zu workloads), jobs: %d, "
                "hardware threads: %u\n",
                grid_name.c_str(), grid.size(), workloads.size(), jobs,
                std::thread::hardware_concurrency());

    // Prewarm the process-wide alone-IPC cache so baseline simulation
    // cost is charged to no timed pass (the cache key ignores the
    // engine, so one pass would otherwise get it for free anyway).
    {
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<GridPoint> warm;
        for (const GridPoint &gp : grid) {
            if (gp.mech == fig13_mechs.front())
                warm.push_back(gp);  // One mechanism per (spec, density).
        }
        parallelFor(jobs, warm.size(), [&](std::size_t i) {
            RunConfig cfg = mechNamed("NoREF", warm[i].density,
                                      warm[i].spec);
            for (const Workload &w : workloads)
                for (int bench : w.benchIdx)
                    runner.aloneIpc(bench, cfg);
        });
        std::printf("alone-IPC prewarm: %.2fs\n", secondsSince(t0));
    }

    // Pass 1 is the seed configuration this PR is measured against:
    // the cycle-by-cycle engine on a single thread.
    std::vector<PassResult> passes;
    passes.push_back(runPass(runner, grid, workloads, "cycle", 1));
    std::printf("cycle  x1: %8.2fs  (%.2e sim-cycles/sec)\n",
                passes.back().wallSeconds, passes.back().simCyclesPerSec);
    passes.push_back(runPass(runner, grid, workloads, "event", 1));
    std::printf("event  x1: %8.2fs  (%.2e sim-cycles/sec)\n",
                passes.back().wallSeconds, passes.back().simCyclesPerSec);
    passes.push_back(runPass(runner, grid, workloads, "event", jobs));
    std::printf("event x%-2d: %8.2fs  (%.2e sim-cycles/sec)\n", jobs,
                passes.back().wallSeconds, passes.back().simCyclesPerSec);

    const double cycle1 = passes[0].wallSeconds;
    const double event1 = passes[1].wallSeconds;
    const double eventJ = passes[2].wallSeconds;
    const bool identical = passes[0].wsSum == passes[1].wsSum &&
                           passes[0].wsSum == passes[2].wsSum;
    std::printf("speedup event x1 vs cycle x1: %.3fx\n", cycle1 / event1);
    std::printf("speedup event x%d vs cycle x1: %.3fx\n", jobs,
                cycle1 / eventJ);
    std::printf("results identical across passes: %s\n",
                identical ? "yes" : "NO");

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f)
        DSARP_FATALF("cannot write %s", out_path.c_str());
    std::fprintf(f, "{\n  \"bench\": \"perf_sweep\",\n");
    std::fprintf(f, "  \"grid\": \"%s\",\n", grid_name.c_str());
    std::fprintf(f, "  \"points\": %zu,\n", grid.size());
    std::fprintf(f, "  \"workloads_per_point\": %zu,\n", workloads.size());
    std::fprintf(f, "  \"warmup_cycles\": %llu,\n",
                 static_cast<unsigned long long>(runner.warmupTicks()));
    std::fprintf(f, "  \"measure_cycles\": %llu,\n",
                 static_cast<unsigned long long>(runner.measureTicks()));
    std::fprintf(f, "  \"jobs\": %d,\n", jobs);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"seed_cycle_x1_wall_seconds\": %.6f,\n", cycle1);
    std::fprintf(f, "  \"event_x1_wall_seconds\": %.6f,\n", event1);
    std::fprintf(f, "  \"event_xjobs_wall_seconds\": %.6f,\n", eventJ);
    std::fprintf(f, "  \"speedup_event_x1_vs_cycle_x1\": %.4f,\n",
                 cycle1 / event1);
    std::fprintf(f, "  \"speedup_event_xjobs_vs_cycle_x1\": %.4f,\n",
                 cycle1 / eventJ);
    std::fprintf(f, "  \"results_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"gate_tolerance\": %.4f,\n", tolerance);
    const bool gate_ok = identical && event1 <= cycle1 * (1.0 + tolerance);
    std::fprintf(f, "  \"gate_pass\": %s,\n", gate_ok ? "true" : "false");
    std::fprintf(f, "  \"passes\": [\n");
    for (std::size_t i = 0; i < passes.size(); ++i)
        writeJsonPass(f, passes[i], i + 1 == passes.size());
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    if (!gate_ok) {
        std::fprintf(stderr,
                     "FAIL: event engine %.2fs vs cycle %.2fs "
                     "(tolerance %.1f%%) or results diverged\n",
                     event1, cycle1, tolerance * 100.0);
        return 1;
    }
    footer(runner);
    return 0;
}
