/**
 * @file
 * Section 6.1.2: DARP component breakdown. Out-of-order per-bank refresh
 * alone versus full DARP (adding write-refresh parallelization), both
 * reported as WS improvement over REFab.
 *
 * Paper reference: out-of-order alone gains 3.2/3.9/3.0% on average
 * (up to 16.8/21.3/20.2%); write-refresh parallelization adds another
 * 4.3/5.8/5.2% at 8/16/32 Gb.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Section 6.1.2", "DARP component breakdown (WS over REFab)");

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    std::printf("%-10s %16s %16s %14s\n", "density", "out-of-order",
                "full DARP", "wr-ref delta");
    for (Density d : densities()) {
        const auto refab = wsOf(sweep(runner, mechRefAb(d), workloads));

        RunConfig ooo = mechDarp(d);
        ooo.darpWriteRefresh = false;
        const auto ooo_ws = wsOf(sweep(runner, ooo, workloads));
        const auto darp_ws = wsOf(sweep(runner, mechDarp(d), workloads));

        const double ooo_pct = gmeanPctOver(ooo_ws, refab);
        const double darp_pct = gmeanPctOver(darp_ws, refab);
        std::printf("%-10s %9.1f%% (max %4.1f%%) %9.1f%% %13.1f%%\n",
                    densityName(d), ooo_pct, maxPctOver(ooo_ws, refab),
                    darp_pct, darp_pct - ooo_pct);
    }
    std::printf("\n[paper: out-of-order alone 3.2/3.9/3.0%%; adding "
                "write-refresh parallelization +4.3/5.8/5.2%%]\n");
    footer(runner);
    return 0;
}
