/**
 * @file
 * Cross-backend comparison over every registered DRAM spec.
 *
 * Part 1 (Figure 5 companion): the refresh-latency picture per spec --
 * tRFCab in nanoseconds is a density property, but the *cycle* cost
 * (and therefore the fraction of tREFI a rank is locked out) grows
 * with the interface clock, which is the paper's motivating trend.
 *
 * Part 2: the DSARP win over REFab per spec x density, showing that
 * refresh-access parallelization is a claim about device *families*,
 * not one DDR3-1333 bin: the faster the bus and the bigger the chip,
 * the more WS the mechanism recovers.
 *
 * Each measured point is also emitted as one machine-readable JSON row
 * on stdout (prefix "JSON "), so sweeps can be collected into plots
 * without scraping the human tables.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "dram/spec.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Spec comparison",
           "tRFC trend and DSARP win across registered DRAM specs");

    const auto &registry = DramSpecRegistry::instance();
    const std::vector<std::string> specs = registry.names();

    std::printf("refresh lockout per spec (32 ms retention):\n");
    std::printf("%-12s %8s %10s %12s %12s %12s\n", "spec", "tCK(ns)",
                "density", "tRFCab(ns)", "tRFCab(cyc)", "lockout%");
    for (const std::string &name : specs) {
        const DramSpec &spec = registry.at(name);
        for (Density d : densities()) {
            MemConfig mem;
            mem.dramSpec = name;
            mem.density = d;
            mem.org.rowsPerBank = rowsPerBankFor(d);
            const TimingParams t = spec.timingFor(mem);
            const double lockoutPct =
                100.0 * static_cast<double>(t.tRfcAb.count()) /
                static_cast<double>(t.tRefiAb.count());
            std::printf("%-12s %8.3f %10s %12.0f %12d %11.1f%%\n",
                        name.c_str(), spec.tCkNs.ns(), densityName(d),
                        spec.tRfcAbNsFor(d).ns(),
                        static_cast<int>(t.tRfcAb.count()), lockoutPct);
            std::printf("JSON {\"bench\":\"spec_comparison\","
                        "\"row\":\"trfc\",\"spec\":\"%s\","
                        "\"density\":\"%s\",\"tck_ns\":%.4f,"
                        "\"trfc_ab_ns\":%.1f,\"trfc_ab_cycles\":%d,"
                        "\"trfc_pb_cycles\":%d,\"trefi_ab_cycles\":%llu,"
                        "\"lockout_pct\":%.2f}\n",
                        name.c_str(), densityName(d), spec.tCkNs.ns(),
                        spec.tRfcAbNsFor(d).ns(),
                        static_cast<int>(t.tRfcAb.count()),
                        static_cast<int>(t.tRfcPb.count()),
                        static_cast<unsigned long long>(
                            t.tRefiAb.count()),
                        lockoutPct);
        }
    }

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    std::printf("\nDSARP WS win over REFab per spec (gmean %% across "
                "workloads):\n");
    std::printf("%-12s", "spec");
    for (Density d : densities())
        std::printf(" %9s", densityName(d));
    std::printf("\n");

    struct WinRow
    {
        Density density;
        double wsRefab;
        double wsDsarp;
        double winPct;
    };

    for (const std::string &name : specs) {
        std::vector<WinRow> rows;
        for (Density d : densities()) {
            const auto refab =
                wsOf(sweep(runner, mechNamed("REFab", d, name), workloads));
            const auto dsarp =
                wsOf(sweep(runner, mechNamed("DSARP", d, name), workloads));
            rows.push_back({d, gmean(refab), gmean(dsarp),
                            gmeanPctOver(dsarp, refab)});
        }
        std::printf("%-12s", name.c_str());
        for (const WinRow &row : rows)
            std::printf(" %8.1f%%", row.winPct);
        std::printf("\n");
        for (const WinRow &row : rows) {
            std::printf("JSON {\"bench\":\"spec_comparison\","
                        "\"row\":\"dsarp_win\",\"spec\":\"%s\","
                        "\"density\":\"%s\",\"ws_refab\":%.4f,"
                        "\"ws_dsarp\":%.4f,\"win_pct\":%.2f}\n",
                        name.c_str(), densityName(row.density),
                        row.wsRefab, row.wsDsarp, row.winPct);
        }
    }

    std::printf("\n[the per-spec trend mirrors Fig. 13: wins grow with "
                "density and clock; LPDDR4's native REFpb narrows the "
                "REFab gap DSARP exploits]\n");
    footer(runner);
    return 0;
}
