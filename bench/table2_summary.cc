/**
 * @file
 * Table 2: maximum and geometric-mean WS improvement of DARP, SARPpb,
 * and DSARP over both REFpb and REFab, per density.
 *
 * Paper reference (gmean over REFpb / REFab, %):
 *   8Gb:  DARP 2.8/7.4   SARPpb 3.3/7.9   DSARP 3.3/7.9
 *   16Gb: DARP 4.9/9.8   SARPpb 6.7/11.7  DSARP 7.2/12.3
 *   32Gb: DARP 3.8/8.3   SARPpb 13.7/18.6 DSARP 15.2/20.2
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Table 2",
           "max / gmean WS improvement over REFpb and REFab (%)");

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    std::printf("%-8s %-10s %10s %10s %12s %12s\n", "density", "mech",
                "max/pb", "max/ab", "gmean/pb", "gmean/ab");
    for (Density d : densities()) {
        const auto refab = wsOf(sweep(runner, mechRefAb(d), workloads));
        const auto refpb = wsOf(sweep(runner, mechRefPb(d), workloads));
        const auto darp = wsOf(sweep(runner, mechDarp(d), workloads));
        const auto sarppb = wsOf(sweep(runner, mechSarpPb(d), workloads));
        const auto dsarp = wsOf(sweep(runner, mechDsarp(d), workloads));

        const struct
        {
            const char *name;
            const std::vector<double> &ws;
        } rows[] = {
            {"DARP", darp}, {"SARPpb", sarppb}, {"DSARP", dsarp}};
        for (const auto &row : rows) {
            std::printf("%-8s %-10s %9.1f%% %9.1f%% %11.1f%% %11.1f%%\n",
                        densityName(d), row.name,
                        maxPctOver(row.ws, refpb),
                        maxPctOver(row.ws, refab),
                        gmeanPctOver(row.ws, refpb),
                        gmeanPctOver(row.ws, refab));
        }
    }
    std::printf("\n[paper gmean/pb: DARP 2.8/4.9/3.8, SARPpb 3.3/6.7/13.7, "
                "DSARP 3.3/7.2/15.2 at 8/16/32Gb;\n gains grow with "
                "density, SARPpb overtakes DARP at high density]\n");
    footer(runner);
    return 0;
}
