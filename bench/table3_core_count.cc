/**
 * @file
 * Table 3: effect of core count (2/4/8) on DSARP's benefit over REFab
 * for memory-intensive workloads at 32 Gb: weighted speedup, harmonic
 * speedup, maximum slowdown, and energy per access.
 *
 * Paper reference: WS +16.0/20.0/27.2%, HS +16.1/20.7/27.9%, max
 * slowdown -14.9/19.4/24.1%, energy -10.2/8.1/8.5% for 2/4/8 cores.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Table 3", "DSARP vs REFab by core count (32 Gb, intensive)");

    Runner runner;
    const Density d = Density::k32Gb;

    std::printf("%-6s %10s %10s %14s %12s\n", "cores", "WS impr",
                "HS impr", "maxSlow red", "energy red");
    for (int cores : {2, 4, 8}) {
        const auto workloads = makeIntensiveWorkloads(
            runner.workloadsPerCategory() * 2, cores, 5);

        RunConfig base = mechRefAb(d);
        base.numCores = cores;
        RunConfig dsarp = mechDsarp(d);
        dsarp.numCores = cores;

        std::vector<double> ws_b, ws_d, hs_b, hs_d, ms_b, ms_d, e_b, e_d;
        for (const Workload &w : workloads) {
            const RunResult rb = runner.run(base, w);
            const RunResult rd = runner.run(dsarp, w);
            ws_b.push_back(rb.ws);
            ws_d.push_back(rd.ws);
            hs_b.push_back(rb.hs);
            hs_d.push_back(rd.hs);
            ms_b.push_back(rb.maxSlowdown);
            ms_d.push_back(rd.maxSlowdown);
            e_b.push_back(rb.energyPerAccessNj);
            e_d.push_back(rd.energyPerAccessNj);
        }
        std::printf("%-6d %9.1f%% %9.1f%% %13.1f%% %11.1f%%\n", cores,
                    gmeanPctOver(ws_d, ws_b), gmeanPctOver(hs_d, hs_b),
                    -gmeanPctOver(ms_d, ms_b), -gmeanPctOver(e_d, e_b));
    }
    std::printf("\n[paper: WS +16.0/20.0/27.2%%, HS +16.1/20.7/27.9%%, "
                "max-slowdown -14.9/19.4/24.1%%,\n energy -10.2/8.1/8.5%% "
                "for 2/4/8 cores -- all four metrics improve at every "
                "core count]\n");
    footer(runner);
    return 0;
}
