/**
 * @file
 * Table 4: sensitivity of SARPpb's gain over REFpb to tFAW/tRRD
 * (32 Gb, memory-intensive workloads). SARP inflates these parameters
 * during refresh for power integrity, so tighter windows cost it more.
 *
 * Paper reference: 14.0/13.9/13.5/12.4/11.9/10.3% for tFAW/tRRD of
 * 5/1 .. 30/6 DRAM cycles -- benefit shrinks as tFAW grows.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Table 4", "SARPpb over REFpb vs tFAW/tRRD (32 Gb, intensive)");

    Runner runner;
    const Density d = Density::k32Gb;
    const auto workloads = makeIntensiveWorkloads(
        runner.workloadsPerCategory() * 2, 8, 9);

    std::printf("%-12s %14s\n", "tFAW/tRRD", "WS improvement");
    for (int faw : {5, 10, 15, 20, 25, 30}) {
        const int rrd = faw / 5;

        RunConfig base = mechRefPb(d);
        base.tFawOverride = faw;
        base.tRrdOverride = rrd;
        RunConfig sarp = mechSarpPb(d);
        sarp.tFawOverride = faw;
        sarp.tRrdOverride = rrd;

        std::vector<double> ws_b, ws_s;
        for (const Workload &w : workloads) {
            ws_b.push_back(runner.run(base, w).ws);
            ws_s.push_back(runner.run(sarp, w).ws);
        }
        std::printf("%3d/%-8d %13.1f%%\n", faw, rrd,
                    gmeanPctOver(ws_s, ws_b));
    }
    std::printf("\n[paper: 14.0 / 13.9 / 13.5 / 12.4 / 11.9 / 10.3%% -- "
                "the benefit shrinks as tFAW/tRRD grow]\n");
    footer(runner);
    return 0;
}
