/**
 * @file
 * Table 5: SARPpb's gain over REFpb versus the number of subarrays per
 * bank (32 Gb, memory-intensive workloads). More subarrays mean a lower
 * probability that a demand access collides with the refreshing
 * subarray.
 *
 * Paper reference: 0 / 3.8 / 8.5 / 12.4 / 14.9 / 16.2 / 16.9% for
 * 1 / 2 / 4 / 8 / 16 / 32 / 64 subarrays.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Table 5",
           "SARPpb over REFpb vs subarrays-per-bank (32 Gb, intensive)");

    Runner runner;
    const Density d = Density::k32Gb;
    const auto workloads = makeIntensiveWorkloads(
        runner.workloadsPerCategory() * 2, 8, 13);

    std::printf("%-12s %14s\n", "subarrays", "WS improvement");
    for (int subarrays : {1, 2, 4, 8, 16, 32, 64}) {
        RunConfig base = mechRefPb(d);
        base.subarraysPerBank = subarrays;
        RunConfig sarp = mechSarpPb(d);
        sarp.subarraysPerBank = subarrays;

        std::vector<double> ws_b, ws_s;
        for (const Workload &w : workloads) {
            ws_b.push_back(runner.run(base, w).ws);
            ws_s.push_back(runner.run(sarp, w).ws);
        }
        std::printf("%-12d %13.1f%%\n", subarrays,
                    gmeanPctOver(ws_s, ws_b));
    }
    std::printf("\n[paper: 0 / 3.8 / 8.5 / 12.4 / 14.9 / 16.2 / 16.9%% -- "
                "monotonic, saturating growth]\n");
    footer(runner);
    return 0;
}
