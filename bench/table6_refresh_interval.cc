/**
 * @file
 * Table 6: DSARP's gain at the relaxed 64 ms retention time
 * (tREFIab = 7.8 us), over both baselines, per density.
 *
 * Paper reference (gmean over REFpb / REFab): 1.0/3.3% at 8 Gb,
 * 2.6/5.3% at 16 Gb, 8.0/9.1% at 32 Gb -- smaller than at 32 ms but
 * still consistent gains.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace dsarp;
using namespace dsarp::bench;

int
main(int argc, char **argv)
{
    applyJobsFromArgs(argc, argv);
    banner("Table 6", "DSARP at 64 ms retention (WS improvement)");

    Runner runner;
    const auto workloads =
        makeWorkloads(runner.workloadsPerCategory(), 8, 1);

    std::printf("%-10s %10s %10s %12s %12s\n", "density", "max/pb",
                "max/ab", "gmean/pb", "gmean/ab");
    for (Density d : densities()) {
        RunConfig ab = mechRefAb(d);
        ab.retentionMs = 64;
        RunConfig pb = mechRefPb(d);
        pb.retentionMs = 64;
        RunConfig ds = mechDsarp(d);
        ds.retentionMs = 64;

        const auto ws_ab = wsOf(sweep(runner, ab, workloads));
        const auto ws_pb = wsOf(sweep(runner, pb, workloads));
        const auto ws_ds = wsOf(sweep(runner, ds, workloads));

        std::printf("%-10s %9.1f%% %9.1f%% %11.1f%% %11.1f%%\n",
                    densityName(d), maxPctOver(ws_ds, ws_pb),
                    maxPctOver(ws_ds, ws_ab), gmeanPctOver(ws_ds, ws_pb),
                    gmeanPctOver(ws_ds, ws_ab));
    }
    std::printf("\n[paper: gmean pb/ab = 1.0/3.3, 2.6/5.3, 8.0/9.1%% at "
                "8/16/32Gb -- smaller than 32 ms but consistent]\n");
    footer(runner);
    return 0;
}
