/**
 * @file
 * Quickstart: the smallest end-to-end use of the library's public API.
 *
 * One Simulation per refresh mechanism: pick the mechanism by registry
 * name, build, run, read the metrics. Everything else -- workload
 * construction, warmup, measurement, the alone-run baseline, the
 * energy model -- is inside the facade.
 */

#include <cstdio>

#include "sim/simulation.hh"

using namespace dsarp;

int
main()
{
    std::printf("%-8s %10s %12s %14s\n", "mech", "WS", "energy/acc",
                "reads served");

    // A 50%-intensive 8-core mix on 32 Gb DRAM, the paper's middle
    // category. The same builder accepts any registered policy name --
    // including ones registered by user code.
    for (const char *mech : {"REFab", "REFpb", "DSARP", "NoREF"}) {
        RunResult res = Simulation::builder()
                            .policy(mech)
                            .densityGb(32)
                            .cores(8)
                            .intensityPct(50)
                            .workloadSeed(42)
                            .build()
                            .run();
        std::printf("%-8s %10.3f %10.1fnJ %14llu\n", mech, res.ws,
                    res.energyPerAccessNj,
                    static_cast<unsigned long long>(res.readsCompleted));
    }
    return 0;
}
