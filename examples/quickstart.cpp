/**
 * @file
 * Quickstart: build an 8-core DDR3-1333 system, run one workload under
 * three refresh mechanisms, and print the headline comparison.
 *
 * This is the smallest end-to-end use of the library's public API:
 * configure -> construct System -> run -> read stats.
 */

#include <cstdio>
#include <vector>

#include "sim/metrics.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace dsarp;

int
main()
{
    Runner runner;

    // A 50%-intensive workload mix, as the paper's middle category.
    const std::vector<Workload> mixes = makeWorkloads(1, 8, /*seed=*/42);
    const Workload &workload = mixes[2];  // 50% category.

    std::printf("Workload (50%% memory-intensive mix):\n");
    const auto &table = benchmarkTable();
    for (int idx : workload.benchIdx)
        std::printf("  core: %s (MPKI %.1f)\n", table[idx].name.c_str(),
                    table[idx].profile.mpki);

    std::printf("\n%-8s %10s %12s %14s\n", "mech", "WS", "energy/acc",
                "reads served");

    const Density d = Density::k32Gb;
    for (const RunConfig &cfg :
         {mechRefAb(d), mechRefPb(d), mechDsarp(d), mechNoRef(d)}) {
        const RunResult res = runner.run(cfg, workload);
        std::printf("%-8s %10.3f %10.1fnJ %14llu\n",
                    cfg.mechanismName().c_str(), res.ws,
                    res.energyPerAccessNj,
                    static_cast<unsigned long long>(res.readsCompleted));
    }
    return 0;
}
