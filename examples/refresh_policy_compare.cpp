/**
 * @file
 * Scenario: a server architect sizing a memory system for a consolidated
 * multi-tenant host (the paper's motivating case -- 8 cores, high-density
 * DRAM, 32 ms retention) wants to pick a refresh strategy.
 *
 * Walks the refresh-policy registry and compares every registered
 * mechanism on one fully memory-intensive workload at 32 Gb:
 * weighted/harmonic speedup, worst-tenant slowdown, refresh command
 * counts, and energy per access. A mechanism added to the library (one
 * .cc file with a registrar) shows up here automatically.
 */

#include <cstdio>
#include <string>

#include "refresh/registry.hh"
#include "sim/simulation.hh"
#include "workload/workload.hh"

using namespace dsarp;

int
main()
{
    const Workload workload = makeIntensiveWorkloads(1, 8, 2024)[0];

    std::printf("Tenant mix (all memory-intensive, 32 Gb DRAM):\n");
    for (int idx : workload.benchIdx)
        std::printf("  %s\n", benchmarkTable()[idx].name.c_str());

    std::printf("\n%-9s %7s %7s %9s %8s %8s %10s\n", "mech", "WS", "HS",
                "maxSlow", "REFab#", "REFpb#", "energy/acc");

    double best_ws = 0.0;
    std::string best;
    for (const std::string &mech :
         RefreshPolicyRegistry::instance().names()) {
        // Some mechanisms need device support the host's spec lacks
        // (same-bank refresh has no DDR3 command, for instance); a
        // probe validation skips those instead of dying mid-walk.
        ExperimentConfig probe;
        probe.policy = mech;
        probe.densityGb = 32;
        if (!probe.validate().empty()) {
            std::printf("%-9s %s\n", mech.c_str(),
                        "(unsupported by this DRAM spec; skipped)");
            continue;
        }
        const RunResult res = Simulation::builder()
                                  .policy(mech)
                                  .densityGb(32)
                                  .cores(8)
                                  .workload(workload)
                                  .build()
                                  .run();
        std::printf("%-9s %7.3f %7.3f %8.2fx %8llu %8llu %8.2fnJ\n",
                    mech.c_str(), res.ws, res.hs, res.maxSlowdown,
                    static_cast<unsigned long long>(res.refAb),
                    static_cast<unsigned long long>(res.refPb),
                    res.energyPerAccessNj);
        if (mech != "NoREF" && res.ws > best_ws) {
            best_ws = res.ws;
            best = mech;
        }
    }

    std::printf("\nBest realizable mechanism for this host: %s "
                "(WS %.3f)\n", best.c_str(), best_ws);
    return 0;
}
