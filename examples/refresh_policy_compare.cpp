/**
 * @file
 * Scenario: a server architect sizing a memory system for a consolidated
 * multi-tenant host (the paper's motivating case -- 8 cores, high-density
 * DRAM, 32 ms retention) wants to pick a refresh strategy.
 *
 * Compares all eight refresh mechanisms on one fully memory-intensive
 * workload at 32 Gb: weighted/harmonic speedup, worst-tenant slowdown,
 * refresh command counts, and energy per access.
 */

#include <cstdio>
#include <vector>

#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace dsarp;

int
main()
{
    Runner runner;
    const Density d = Density::k32Gb;
    const Workload workload = makeIntensiveWorkloads(1, 8, 2024)[0];

    std::printf("Tenant mix (all memory-intensive, 32 Gb DRAM):\n");
    for (int idx : workload.benchIdx)
        std::printf("  %s\n", benchmarkTable()[idx].name.c_str());

    std::printf("\n%-9s %7s %7s %9s %8s %8s %10s\n", "mech", "WS", "HS",
                "maxSlow", "REFab#", "REFpb#", "energy/acc");

    RunConfig fgr2 = mechRefAb(d);
    fgr2.refresh = RefreshMode::kFgr2x;
    RunConfig ar = mechRefAb(d);
    ar.refresh = RefreshMode::kAdaptive;

    double best_ws = 0.0;
    std::string best;
    for (const RunConfig &cfg :
         {mechRefAb(d), mechRefPb(d), mechElastic(d), fgr2, ar,
          mechDarp(d), mechSarpPb(d), mechDsarp(d), mechNoRef(d)}) {
        const RunResult res = runner.run(cfg, workload);
        std::printf("%-9s %7.3f %7.3f %8.2fx %8llu %8llu %8.2fnJ\n",
                    cfg.mechanismName().c_str(), res.ws, res.hs,
                    res.maxSlowdown,
                    static_cast<unsigned long long>(res.refAb),
                    static_cast<unsigned long long>(res.refPb),
                    res.energyPerAccessNj);
        if (cfg.refresh != RefreshMode::kNoRefresh && res.ws > best_ws) {
            best_ws = res.ws;
            best = cfg.mechanismName();
        }
    }

    std::printf("\nBest realizable mechanism for this host: %s "
                "(WS %.3f)\n", best.c_str(), best_ws);
    return 0;
}
