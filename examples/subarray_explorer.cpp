/**
 * @file
 * Scenario: a DRAM architect deciding how many subarray groups per bank
 * to expose for SARP (the paper's Section 6.3 design question -- the
 * die-area overhead grows with subarray count, so the knee of the curve
 * matters).
 *
 * Sweeps subarrays-per-bank x density for SARPpb and prints the gain
 * over plain per-bank refresh, marking the knee (the smallest count
 * capturing >= 80% of the 64-subarray gain).
 */

#include <cstdio>
#include <vector>

#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace dsarp;

int
main()
{
    Runner runner;
    const Workload workload = makeIntensiveWorkloads(1, 8, 77)[0];
    const std::vector<int> counts = {1, 2, 4, 8, 16, 32, 64};

    std::printf("SARPpb gain over REFpb (%%) by subarrays-per-bank:\n\n");
    std::printf("%-10s", "density");
    for (int s : counts)
        std::printf(" %6d", s);
    std::printf("   knee\n");

    for (Density d : {Density::k8Gb, Density::k16Gb, Density::k32Gb}) {
        std::vector<double> gains;
        for (int s : counts) {
            RunConfig base = mechRefPb(d);
            base.subarraysPerBank = s;
            RunConfig sarp = mechSarpPb(d);
            sarp.subarraysPerBank = s;
            const double ws_base = runner.run(base, workload).ws;
            const double ws_sarp = runner.run(sarp, workload).ws;
            gains.push_back((ws_sarp / ws_base - 1.0) * 100.0);
        }
        int knee = counts.back();
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (gains[i] >= 0.8 * gains.back()) {
                knee = counts[i];
                break;
            }
        }
        std::printf("%-10s", densityName(d));
        for (double g : gains)
            std::printf(" %5.1f%%", g);
        std::printf("   %d\n", knee);
    }

    std::printf("\nThe paper evaluates 8 subarrays/bank (0.71%% die area) "
                "as the default design point;\ngains saturate beyond "
                "~16-32 subarrays (paper Table 5).\n");
    return 0;
}
