/**
 * @file
 * Scenario: a DRAM architect deciding how many subarray groups per bank
 * to expose for SARP (the paper's Section 6.3 design question -- the
 * die-area overhead grows with subarray count, so the knee of the curve
 * matters).
 *
 * Sweeps subarrays-per-bank x density for SARPpb and prints the gain
 * over plain per-bank refresh, marking the knee (the smallest count
 * capturing >= 80% of the 64-subarray gain).
 */

#include <cstdio>
#include <vector>

#include "sim/simulation.hh"
#include "workload/workload.hh"

using namespace dsarp;

namespace {

/** Weighted speedup of one (mechanism, density, subarrays) point. */
double
wsOf(const char *mech, int density_gb, int subarrays,
     const Workload &workload)
{
    return Simulation::builder()
        .policy(mech)
        .densityGb(density_gb)
        .subarraysPerBank(subarrays)
        .cores(8)
        .workload(workload)
        .build()
        .run()
        .ws;
}

} // namespace

int
main()
{
    const Workload workload = makeIntensiveWorkloads(1, 8, 77)[0];
    const std::vector<int> counts = {1, 2, 4, 8, 16, 32, 64};

    std::printf("SARPpb gain over REFpb (%%) by subarrays-per-bank:\n\n");
    std::printf("%-10s", "density");
    for (int s : counts)
        std::printf(" %6d", s);
    std::printf("   knee\n");

    for (int gb : {8, 16, 32}) {
        std::vector<double> gains;
        for (int s : counts) {
            const double ws_base = wsOf("REFpb", gb, s, workload);
            const double ws_sarp = wsOf("SARPpb", gb, s, workload);
            gains.push_back((ws_sarp / ws_base - 1.0) * 100.0);
        }
        int knee = counts.back();
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (gains[i] >= 0.8 * gains.back()) {
                knee = counts[i];
                break;
            }
        }
        char label[16];
        std::snprintf(label, sizeof(label), "%dGb", gb);
        std::printf("%-10s", label);
        for (double g : gains)
            std::printf(" %5.1f%%", g);
        std::printf("   %d\n", knee);
    }

    std::printf("\nThe paper evaluates 8 subarrays/bank (0.71%% die area) "
                "as the default design point;\ngains saturate beyond "
                "~16-32 subarrays (paper Table 5).\n");
    return 0;
}
