/**
 * @file
 * Scenario: replaying a custom application through the full
 * core -> LLC -> memory-controller -> DRAM path.
 *
 * Demonstrates the extension points of the public API: a user-defined
 * TraceSource (here, a tiled matrix-sweep access pattern), filtered
 * through the 512 KB LLC slice model so only real misses -- and real
 * dirty evictions -- reach DRAM, then run under REFab and DSARP via
 * the Simulation facade's .traces() entry point.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cache.hh"
#include "sim/simulation.hh"

using namespace dsarp;

namespace {

/**
 * A blocked matrix sweep: walks a large array in tiles, revisiting each
 * tile several times (temporal locality the LLC can capture) before
 * moving on, and writing one element in four.
 */
class TiledSweepTrace : public TraceSource
{
  public:
    TiledSweepTrace(Addr base, Addr span, int tileLines, int revisits)
        : base_(base), span_(span), tileLines_(tileLines),
          revisits_(revisits)
    {}

    TraceRecord
    next() override
    {
        TraceRecord rec;
        rec.gap = 6;  // A handful of ALU ops per element.
        rec.readAddr = base_ + (tile_ * tileLines_ + line_) * 64 % span_;
        if (++line_ >= tileLines_) {
            line_ = 0;
            if (++pass_ >= revisits_) {
                pass_ = 0;
                ++tile_;
            }
        }
        return rec;
    }

  private:
    Addr base_;
    Addr span_;
    int tileLines_;
    int revisits_;
    long tile_ = 0;
    int line_ = 0;
    int pass_ = 0;
};

} // namespace

int
main()
{
    const int cores = 4;

    for (const char *mech : {"REFab", "DSARP"}) {
        // Per-core raw traces, LLC slices, and cache-filtered adapters.
        std::vector<std::unique_ptr<TiledSweepTrace>> raw;
        std::vector<std::unique_ptr<CacheSlice>> llc;
        std::vector<std::unique_ptr<CacheFilteredTrace>> filtered;
        std::vector<TraceSource *> sources;
        for (int c = 0; c < cores; ++c) {
            raw.push_back(std::make_unique<TiledSweepTrace>(
                Addr(c) << 28, Addr(1) << 27, 256, 3));
            llc.push_back(
                std::make_unique<CacheSlice>(512 * 1024, 16, 64));
            filtered.push_back(std::make_unique<CacheFilteredTrace>(
                *raw.back(), *llc.back(), 0.25, 1000 + c));
            sources.push_back(filtered.back().get());
        }

        const RunResult res = Simulation::builder()
                                  .policy(mech)
                                  .densityGb(32)
                                  .cores(cores)
                                  .warmupCycles(50000)
                                  .measureCycles(200000)
                                  .traces(sources)
                                  .build()
                                  .run();

        double ipc = 0.0;
        for (double v : res.ipc)
            ipc += v;

        std::printf("%-18s aggregate IPC %6.2f | DRAM reads %8llu | "
                    "writebacks %7llu | LLC0 miss rate %.1f%%\n",
                    std::string(mech) == "DSARP" ? "DSARP (DARP+SARP)"
                                                 : "REFab baseline",
                    ipc,
                    static_cast<unsigned long long>(res.readsCompleted),
                    static_cast<unsigned long long>(res.writesIssued),
                    100.0 * llc[0]->misses() /
                        (llc[0]->hits() + llc[0]->misses()));
    }

    std::printf("\nThe LLC converts the tiled sweep's revisits into hits; "
                "only compulsory/capacity\nmisses and their dirty "
                "evictions reach DRAM, where DSARP hides the refresh "
                "stalls.\n");
    return 0;
}
