#include "common/config.hh"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/log.hh"
#include "dram/address.hh"
#include "dram/spec.hh"
#include "sim/config_keys.hh"

namespace dsarp {

const char *
refreshModeName(RefreshMode mode)
{
    switch (mode) {
      case RefreshMode::kNoRefresh: return "NoREF";
      case RefreshMode::kAllBank: return "REFab";
      case RefreshMode::kPerBank: return "REFpb";
      case RefreshMode::kElastic: return "Elastic";
      case RefreshMode::kDarp: return "DARP";
      case RefreshMode::kFgr2x: return "FGR2x";
      case RefreshMode::kFgr4x: return "FGR4x";
      case RefreshMode::kAdaptive: return "AR";
      case RefreshMode::kSameBank: return "REFsb";
    }
    return "?";
}

const char *
densityName(Density d)
{
    switch (d) {
      case Density::k8Gb: return "8Gb";
      case Density::k16Gb: return "16Gb";
      case Density::k32Gb: return "32Gb";
    }
    return "?";
}

int
rowsPerBankFor(Density d)
{
    switch (d) {
      case Density::k8Gb: return 65536;
      case Density::k16Gb: return 131072;
      case Density::k32Gb: return 262144;
    }
    return 65536;
}

double
tRfcAbNsFor(Density d)
{
    // Paper Table 1: tRFCab = 350/530/890 ns for 8/16/32 Gb chips.
    switch (d) {
      case Density::k8Gb: return 350.0;
      case Density::k16Gb: return 530.0;
      case Density::k32Gb: return 890.0;
    }
    return 350.0;
}

std::string
MemConfig::validate() const
{
    std::ostringstream bad;
    const char *sep = "";
    auto fail = [&](const std::string &msg) {
        bad << sep << msg;
        sep = "; ";
    };
    auto atLeastOne = [&](const char *key, int v) {
        if (v < 1) {
            fail(std::string("config key '") + key + "' must be >= 1 "
                 "(got " + std::to_string(v) + ")");
        }
    };

    atLeastOne(keys::kChannels, org.channels);
    atLeastOne(keys::kRanksPerChannel, org.ranksPerChannel);
    atLeastOne(keys::kBanksPerRank, org.banksPerRank);
    atLeastOne(keys::kSubarraysPerBank, org.subarraysPerBank);

    // SARP's subarray grouping and the address map both require a
    // power-of-two subarray count that tiles the bank's rows evenly.
    if (org.subarraysPerBank >= 1 &&
        (org.subarraysPerBank & (org.subarraysPerBank - 1)) != 0) {
        fail("config key 'subarraysPerBank' must be a power of two "
             "(got " + std::to_string(org.subarraysPerBank) + ")");
    } else if (org.subarraysPerBank >= 1 &&
               org.rowsPerBank % org.subarraysPerBank != 0) {
        fail("config key 'subarraysPerBank' (" +
             std::to_string(org.subarraysPerBank) + ") must divide "
             "rowsPerBank (" + std::to_string(org.rowsPerBank) + ")");
    }
    if (org.lineBytes < 1 || org.rowBytes < 1 ||
        org.rowBytes % org.lineBytes != 0) {
        fail("config key 'lineBytes' (" +
             std::to_string(org.lineBytes) + ") must divide rowBytes (" +
             std::to_string(org.rowBytes) + ")");
    } else if (const DramSpec *spec =
                   DramSpecRegistry::instance().find(dramSpec)) {
        // Address mapping is burst-granular: a line must fit inside one
        // spec burst (2 x tBl transfers x bus width), and bursts must
        // tile the row evenly.
        const int burst = spec->burstBytes();
        if (org.lineBytes > burst || burst % org.lineBytes != 0) {
            fail("config key 'lineBytes' (" +
                 std::to_string(org.lineBytes) + ") is inconsistent "
                 "with DRAM spec '" + spec->name + "': one burst "
                 "transfers " + std::to_string(burst) + " bytes (2 x "
                 "tBl x bus width); lines must evenly divide a burst");
        } else if (org.rowBytes % burst != 0) {
            fail("config key 'rowBytes' (" +
                 std::to_string(org.rowBytes) + ") must be a multiple "
                 "of DRAM spec '" + spec->name + "' burst size (" +
                 std::to_string(burst) + " bytes)");
        }
    }

    atLeastOne(keys::kReadQueueSize, readQueueSize);
    atLeastOne(keys::kWriteQueueSize, writeQueueSize);
    if (writeLowWatermark >= writeHighWatermark) {
        fail("config key 'writeLowWatermark' (" +
             std::to_string(writeLowWatermark) + "): low watermark must "
             "be below writeHighWatermark (" +
             std::to_string(writeHighWatermark) + ")");
    }
    if (writeHighWatermark > writeQueueSize) {
        fail("config key 'writeHighWatermark' (" +
             std::to_string(writeHighWatermark) + "): high watermark "
             "exceeds writeQueueSize (" + std::to_string(writeQueueSize) +
             ")");
    }
    if (writeLowWatermark < 0) {
        fail("config key 'writeLowWatermark' must be >= 0 (got " +
             std::to_string(writeLowWatermark) + ")");
    }

    if (retentionMs != 32 && retentionMs != 64) {
        fail("config key 'retentionMs' must be 32 or 64 (got " +
             std::to_string(retentionMs) + "); retention is modeled "
             "only at the paper's two settings");
    }
    atLeastOne(keys::kRefabStaggerDivisor, refabStaggerDivisor);
    atLeastOne(keys::kMaxOverlappedRefPb, maxOverlappedRefPb);
    if (tFawOverride < 0 || tRrdOverride < 0) {
        fail("config keys 'tFawOverride'/'tRrdOverride' must be >= 0 "
             "(got " + std::to_string(tFawOverride) + "/" +
             std::to_string(tRrdOverride) + ")");
    }
    if (sarpInflationAb < 1.0 || sarpInflationPb < 1.0) {
        fail("config keys 'sarpInflationAb'/'sarpInflationPb' must be "
             ">= 1.0: SARP inflates tFAW/tRRD during refresh, never "
             "shrinks them");
    }
    if (sameBankGroupSize < 0) {
        fail("config key 'refresh.samebank.groupSize' must be >= 0, 0 "
             "for the spec's bank-group geometry (got " +
             std::to_string(sameBankGroupSize) + ")");
    } else if (sameBankGroupSize > 0 &&
               org.banksPerRank % sameBankGroupSize != 0) {
        fail("config key 'refresh.samebank.groupSize' (" +
             std::to_string(sameBankGroupSize) + ") must divide "
             "banksPerRank (" + std::to_string(org.banksPerRank) + ")");
    }
    if (const DramSpec *spec =
            DramSpecRegistry::instance().find(dramSpec)) {
        if (spec->banksPerGroup <= 0) {
            // Same-bank refresh needs the spec's tRFCsb data; neither
            // the REFsb policy nor a slice-size override can conjure
            // it.
            if (refresh == RefreshMode::kSameBank) {
                fail("config key 'policy': same-bank refresh (REFsb) "
                     "requires a DRAM spec with bank-group refresh "
                     "support; '" + spec->name + "' declares none "
                     "(try DDR5-4800)");
            } else if (sameBankGroupSize > 0) {
                fail("config key 'refresh.samebank.groupSize': DRAM "
                     "spec '" + spec->name + "' has no same-bank "
                     "refresh support to re-slice");
            }
        } else if (sameBankGroupSize > spec->banksPerGroup) {
            // Holding the data-sheet tRFCsb is conservative only for
            // slices at or below the device's bank group; a larger
            // slice would refresh more banks in the same window than
            // the device can, which is physically impossible.
            fail("config key 'refresh.samebank.groupSize' (" +
                 std::to_string(sameBankGroupSize) + ") exceeds DRAM "
                 "spec '" + spec->name + "' bank-group size (" +
                 std::to_string(spec->banksPerGroup) + "); slices can "
                 "only be narrowed");
        }
    }
    if (selfRefreshIdleCycles < 0) {
        fail("config key 'energy.selfRefreshIdle' must be >= 0 cycles, "
             "0 to disable the self-refresh energy state (got " +
             std::to_string(selfRefreshIdleCycles) + ")");
    }
    if (srIdleEntryCycles < 0) {
        fail("config key 'refresh.selfRefresh.idleEntry' must be >= 0 "
             "cycles, 0 to disable command-level self-refresh (got " +
             std::to_string(srIdleEntryCycles) + ")");
    }
    if (srIdleEntryCycles > 0 && selfRefreshIdleCycles > 0) {
        fail("config keys 'refresh.selfRefresh.idleEntry' and "
             "'energy.selfRefreshIdle' are mutually exclusive: the "
             "command-level protocol already bills IDD6 from real "
             "self-refresh residency");
    }
    if (selfRefreshIdleCycles > 0 && refresh != RefreshMode::kNoRefresh) {
        // The legacy accounting-only state must not be configured past
        // the point where its claim becomes one the device cannot
        // honour: beyond one tREFIab the rank would sit in the IDD6
        // state across the external refresh commands the schedule
        // keeps issuing (and before the demand/refresh activity split
        // such thresholds silently never fired at all). Long
        // self-refresh residency belongs to the command-level
        // protocol.
        if (const DramSpec *spec =
                DramSpecRegistry::instance().find(dramSpec)) {
            const Cycles trefi_cycles = TimingParams::nsToCyclesFloor(
                Nanoseconds(retentionMs * 1e6 /
                            spec->refreshesPerRetention),
                spec->tCkNs);
            if (selfRefreshIdleCycles > trefi_cycles.count()) {
                fail("config key 'energy.selfRefreshIdle' (" +
                     std::to_string(selfRefreshIdleCycles) + ") exceeds "
                     "tREFIab (~" +
                     std::to_string(trefi_cycles.count()) +
                     " cycles) of DRAM spec '" + spec->name + "'; the "
                     "energy-only state cannot outlast the external "
                     "refresh schedule -- use "
                     "'refresh.selfRefresh.idleEntry' for command-level "
                     "self-refresh");
            }
        }
    }
    if (fgrRate != 0 && fgrRate != 1 && fgrRate != 2 && fgrRate != 4) {
        fail("config key 'refresh.fgrRate' must be 0 (profile default), "
             "1, 2 or 4 (got " + std::to_string(fgrRate) + ")");
    }
    if (hiraCoverage > 1.0 || (hiraCoverage < 0.0 && hiraCoverage != -1.0)) {
        fail("config key 'refresh.hiraCoverage' must be within [0, 1], "
             "or -1 for the spec default (got " +
             std::to_string(hiraCoverage) + ")");
    }
    if (hiraDelayCycles < 0) {
        fail("config key 'refresh.hiraDelay' must be >= 0 cycles, 0 for "
             "the spec default (got " + std::to_string(hiraDelayCycles) +
             ")");
    }
    if (channelStaggerCycles < -1) {
        fail("config key 'refresh.channelStagger' must be >= 0 cycles, "
             "0 to disable staggering or -1 for the even spread "
             "tREFIab / channels (got " +
             std::to_string(channelStaggerCycles) + ")");
    }
    const AddressMapRegistry &maps = AddressMapRegistry::instance();
    if (const AddressMapInfo *map = maps.find(addressMap)) {
        // Map x spec cross-checks are the map's own business (e.g.
        // "ddr5-subch" demands a spec that declares sub-channels,
        // "perm-bank" a power-of-two bank count).
        const DramSpec *spec = DramSpecRegistry::instance().find(dramSpec);
        if (map->check && spec) {
            const std::string err = map->check(org, *spec);
            if (!err.empty())
                fail(err);
        }
    } else {
        fail(maps.unknownMapMessage(addressMap));
    }
    return bad.str();
}

void
MemConfig::finalize()
{
    org.rowsPerBank = rowsPerBankFor(density);
    // Address mapping is burst-granular; the burst size is a property
    // of the selected device spec (LPDDR4's BL16 halves the column
    // count a DDR3 row would have).
    const DramSpec &spec = DramSpecRegistry::instance().at(dramSpec);
    org.burstBytes = spec.burstBytes();

    // A spec-derived address map ("ddr5-subch") may expand each
    // configured channel (one DIMM) into several full channels. Divide
    // any previously applied factor back out first so re-finalizing a
    // config -- or finalizing it against a different spec -- never
    // compounds the expansion.
    int factor = 1;
    if (const AddressMapInfo *map =
            AddressMapRegistry::instance().find(addressMap)) {
        if (map->channelFactor)
            factor = map->channelFactor(spec);
    }
    if (factor >= 1 && org.appliedSubChannels >= 1 &&
        org.channels % org.appliedSubChannels == 0) {
        org.channels = org.channels / org.appliedSubChannels * factor;
        org.appliedSubChannels = factor;
    }

    const std::string errors = validate();
    if (!errors.empty())
        DSARP_FATALF("invalid MemConfig: %s", errors.c_str());
}

std::string
TrafficConfig::validate() const
{
    std::ostringstream bad;
    const char *sep = "";
    auto fail = [&](const std::string &msg) {
        bad << sep << msg;
        sep = "; ";
    };

    const bool knownMode = mode == "off" || mode == "poisson" ||
                           mode == "bursty" || mode == "diurnal" ||
                           mode == "trace";
    if (!knownMode) {
        fail(std::string("config key '") + keys::kTrafficMode +
             "' must be one of off/poisson/bursty/diurnal/trace (got '" +
             mode + "')");
    }
    if (mode != "trace" && !tracePath.empty()) {
        // A trace path under any other mode (including "off") would be
        // silently dead config; demand the modes agree instead of
        // ignoring it.
        fail(std::string("config key '") + keys::kTrafficTrace +
             "' is set but '" + keys::kTrafficMode + "' is '" + mode +
             "'; trace replay needs " + keys::kTrafficMode + "=trace");
    }
    if (!enabled())
        return bad.str();

    if (mode != "trace" &&
        !(ratePerKilocycle > 0.0 && ratePerKilocycle <= 1e6)) {
        fail(std::string("config key '") + keys::kTrafficRate +
             "' must be in (0, 1e6] requests per 1000 cycles (got " +
             std::to_string(ratePerKilocycle) + ")");
    }
    if (readPct < 0 || readPct > 100) {
        fail(std::string("config key '") + keys::kTrafficReadPct +
             "' must be within [0, 100] (got " + std::to_string(readPct) +
             ")");
    }
    if (hotRowPct < 0.0 || hotRowPct > 100.0) {
        fail(std::string("config key '") + keys::kTrafficHotRowPct +
             "' must be within [0, 100] (got " +
             std::to_string(hotRowPct) + ")");
    }
    if (hotRows < 1) {
        fail(std::string("config key '") + keys::kTrafficHotRows +
             "' must be >= 1 (got " + std::to_string(hotRows) + ")");
    }
    if (tenants < 1 || tenants > 64) {
        fail(std::string("config key '") + keys::kTenantCount +
             "' must be within [1, 64] (got " + std::to_string(tenants) +
             ")");
    }
    if (!tenantPriorities.empty()) {
        std::istringstream in(tenantPriorities);
        std::string tok;
        int parsed = 0;
        bool ok = true;
        while (std::getline(in, tok, ',')) {
            char *end = nullptr;
            errno = 0;
            const long v = std::strtol(tok.c_str(), &end, 10);
            // The INT_MAX cap matters: priorityList() narrows to int,
            // so an accepted long must survive that cast unchanged.
            if (end == tok.c_str() || *end != '\0' || errno == ERANGE ||
                v < 1 || v > std::numeric_limits<int>::max()) {
                ok = false;
            }
            ++parsed;
        }
        if (!ok || parsed != tenants) {
            fail(std::string("config key '") + keys::kTenantPriorities +
                 "' must be a comma list of " + std::to_string(tenants) +
                 " positive integers (got '" + tenantPriorities + "')");
        }
    }
    if (mode == "bursty") {
        if (burstFactor <= 1.0) {
            fail(std::string("config key '") + keys::kTrafficBurstFactor +
                 "' must be > 1 (got " + std::to_string(burstFactor) +
                 ")");
        }
        if (burstLenCycles < 1) {
            fail(std::string("config key '") + keys::kTrafficBurstLen +
                 "' must be >= 1 cycle (got " +
                 std::to_string(burstLenCycles) + ")");
        }
    }
    if (mode == "diurnal") {
        if (diurnalPeriod < 2) {
            fail(std::string("config key '") + keys::kTrafficDiurnalPeriod +
                 "' must be >= 2 cycles (got " +
                 std::to_string(diurnalPeriod) + ")");
        }
        if (diurnalAmp < 0.0 || diurnalAmp > 1.0) {
            fail(std::string("config key '") + keys::kTrafficDiurnalAmp +
                 "' must be within [0, 1] (got " +
                 std::to_string(diurnalAmp) + ")");
        }
    }
    if (mode == "trace") {
        if (tracePath.empty()) {
            fail(std::string("config key '") + keys::kTrafficTrace +
                 "' must name a DRAMSim-style trace file in trace mode");
        }
        if (tenants != 1) {
            fail(std::string("config key '") + keys::kTenantCount +
                 "' must be 1 in trace mode: an external trace carries "
                 "its own address stream and cannot be partitioned (got " +
                 std::to_string(tenants) + ")");
        }
    }
    return bad.str();
}

std::vector<int>
TrafficConfig::priorityList() const
{
    std::vector<int> out;
    if (tenantPriorities.empty()) {
        out.assign(static_cast<std::size_t>(tenants), 1);
        return out;
    }
    std::istringstream in(tenantPriorities);
    std::string tok;
    while (std::getline(in, tok, ','))
        out.push_back(static_cast<int>(std::strtol(tok.c_str(), nullptr, 10)));
    return out;
}

void
SystemConfig::finalize()
{
    if (numCores < 1)
        DSARP_FATALF("config key 'numCores' must be >= 1 (got %d)",
                     numCores);
    if (engine != "cycle" && engine != "event") {
        DSARP_FATALF("config key 'sim.engine' must be \"cycle\" or "
                     "\"event\" (got \"%s\")",
                     engine.c_str());
    }
    if (core.cpuCyclesPerTick < 1 || core.windowSize < 1 ||
        core.retireWidth < 1 || core.mshrs < 1) {
        DSARP_FATALF("config keys 'core.cpuCyclesPerTick'/'core."
                     "windowSize'/'core.retireWidth'/'core.mshrs' must "
                     "all be >= 1 (got %d/%d/%d/%d)",
                     core.cpuCyclesPerTick, core.windowSize,
                     core.retireWidth, core.mshrs);
    }
    const std::string trafficErrors = traffic.validate();
    if (!trafficErrors.empty())
        DSARP_FATALF("invalid TrafficConfig: %s", trafficErrors.c_str());
    mem.finalize();
}

} // namespace dsarp
