#include "common/config.hh"

#include "common/log.hh"

namespace dsarp {

const char *
refreshModeName(RefreshMode mode)
{
    switch (mode) {
      case RefreshMode::kNoRefresh: return "NoREF";
      case RefreshMode::kAllBank: return "REFab";
      case RefreshMode::kPerBank: return "REFpb";
      case RefreshMode::kElastic: return "Elastic";
      case RefreshMode::kDarp: return "DARP";
      case RefreshMode::kFgr2x: return "FGR2x";
      case RefreshMode::kFgr4x: return "FGR4x";
      case RefreshMode::kAdaptive: return "AR";
    }
    return "?";
}

const char *
densityName(Density d)
{
    switch (d) {
      case Density::k8Gb: return "8Gb";
      case Density::k16Gb: return "16Gb";
      case Density::k32Gb: return "32Gb";
    }
    return "?";
}

int
rowsPerBankFor(Density d)
{
    switch (d) {
      case Density::k8Gb: return 65536;
      case Density::k16Gb: return 131072;
      case Density::k32Gb: return 262144;
    }
    return 65536;
}

double
tRfcAbNsFor(Density d)
{
    // Paper Table 1: tRFCab = 350/530/890 ns for 8/16/32 Gb chips.
    switch (d) {
      case Density::k8Gb: return 350.0;
      case Density::k16Gb: return 530.0;
      case Density::k32Gb: return 890.0;
    }
    return 350.0;
}

void
MemConfig::finalize()
{
    org.rowsPerBank = rowsPerBankFor(density);

    if (org.channels < 1 || org.ranksPerChannel < 1 || org.banksPerRank < 1)
        DSARP_FATAL("memory geometry must have >= 1 of each level");
    if (org.subarraysPerBank < 1 ||
        org.rowsPerBank % org.subarraysPerBank != 0) {
        DSARP_FATAL("subarraysPerBank must divide rowsPerBank");
    }
    if (org.rowBytes % org.lineBytes != 0)
        DSARP_FATAL("lineBytes must divide rowBytes");
    if (writeLowWatermark >= writeHighWatermark)
        DSARP_FATAL("write low watermark must be below high watermark");
    if (writeHighWatermark > writeQueueSize)
        DSARP_FATAL("write high watermark exceeds write queue size");
    if (retentionMs != 32 && retentionMs != 64)
        DSARP_FATAL("retention must be 32 or 64 ms");
}

} // namespace dsarp
