/**
 * @file
 * Configuration structures for the memory system, cores, and full system.
 *
 * Defaults reproduce Table 1 of Chang et al., HPCA 2014: an 8-core 4 GHz
 * system with 2 DDR3-1333 channels, 2 ranks/channel, 8 banks/rank,
 * 8 subarrays/bank, 64K rows/bank, 8 KB rows, FR-FCFS, closed-row policy,
 * 64/64-entry read/write queues with batched writes (low watermark 32),
 * and 32 ms retention.
 */

#ifndef DSARP_COMMON_CONFIG_HH
#define DSARP_COMMON_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dsarp {

/**
 * Refresh timing profiles evaluated in the paper (Sections 6.1, 6.5).
 *
 * @deprecated as a *selection* mechanism: pick policies by name through
 * MemConfig::policy and the RefreshPolicyRegistry instead. The enum
 * survives as the compact timing-profile descriptor that TimingParams
 * and the checker consume; registry entries set it from their config
 * bundles, and hand-written configs may still assign it directly.
 */
enum class RefreshMode {
    kNoRefresh,  ///< Ideal baseline: refresh eliminated.
    kAllBank,    ///< REFab: rank-level refresh (DDR/LPDDR baseline).
    kPerBank,    ///< REFpb: sequential round-robin per-bank (LPDDR).
    kElastic,    ///< Elastic refresh [Stuecheli+, MICRO'10].
    kDarp,       ///< DARP: out-of-order REFpb + write-refresh parallelization.
    kFgr2x,      ///< DDR4 fine granularity refresh, 2x rate.
    kFgr4x,      ///< DDR4 fine granularity refresh, 4x rate.
    kAdaptive,   ///< Adaptive refresh (AR) [Mukundan+, ISCA'13]: 1x/4x FGR.
    kSameBank,   ///< REFsb: DDR5 same-bank refresh (one bank-group slice).
};

/** Human-readable mechanism name, e.g. for bench table headers. */
const char *refreshModeName(RefreshMode mode);

/** DRAM chip density; determines rows/bank and tRFC (paper Table 1). */
enum class Density { k8Gb, k16Gb, k32Gb };

const char *densityName(Density d);

/** Rows per bank for a density (64K at 8 Gb, doubling per step). */
int rowsPerBankFor(Density d);

/** All-bank refresh latency in nanoseconds (350/530/890 ns, Table 1). */
double tRfcAbNsFor(Density d);

/** DRAM geometry. */
struct MemOrg
{
    int channels = 2;
    int ranksPerChannel = 2;
    int banksPerRank = 8;
    int subarraysPerBank = 8;
    int rowsPerBank = 65536;   ///< Overridden from Density by MemConfig.
    int rowBytes = 8192;       ///< 8 KB rows.
    int lineBytes = 64;        ///< Cache line size.

    /**
     * Bytes one burst of the selected DRAM spec transfers (2 x tBl
     * transfers x bus width), set from the spec by
     * MemConfig::finalize(). The default matches DDR3/DDR4 BL8 on a
     * 64-bit channel; LPDDR4's BL16 doubles it, halving columns().
     */
    int burstBytes = 64;

    /**
     * Sub-channel factor already folded into `channels` by
     * MemConfig::finalize() under a spec-derived address map
     * ("ddr5-subch"). Recorded so finalize() stays idempotent: a
     * re-finalized config divides the factor back out before applying
     * the (possibly different) spec's own.
     */
    int appliedSubChannels = 1;

    /** Bytes per DRAM column address: one burst, never below a line. */
    int columnBytes() const
    {
        return burstBytes > lineBytes ? burstBytes : lineBytes;
    }

    /** Column addresses per row (spec burst aware). */
    int columns() const { return rowBytes / columnBytes(); }

    /** Rows per subarray group. */
    int rowsPerSubarray() const { return rowsPerBank / subarraysPerBank; }
};

/** Memory-system configuration: geometry, density, refresh policy. */
struct MemConfig
{
    MemOrg org;
    Density density = Density::k8Gb;
    int retentionMs = 32;   ///< 32 ms (server/LPDDR) or 64 ms.

    /**
     * DRAM device spec by registry name (config key "dram.spec";
     * case-insensitive, aliases accepted -- see dram/spec.hh). The
     * spec supplies the clock, core timings, density -> tRFC tables,
     * refresh geometry, and FGR divisors that
     * TimingParams::forConfig() resolves; "DDR3-1333" reproduces the
     * paper's Table 1 set bit-identically. Unknown names are a fatal
     * named-key error listing the registered specs.
     */
    std::string dramSpec = "DDR3-1333";

    /**
     * Physical-address interleave by registry name (config key
     * "address.map"; case-insensitive -- see dram/address.hh).
     * "burst-ch" is the default and reproduces every pre-existing
     * result bit-identically; "row-ch" places channel bits above the
     * row, "perm-bank" XOR-permutes the bank index, and "ddr5-subch"
     * derives the channel count from DramSpec::subChannels. Unknown
     * names and map/spec mismatches are fatal named-key errors.
     */
    std::string addressMap = "burst-ch";

    /**
     * Cross-channel phase of every ledger-driven refresh schedule
     * (config key "refresh.channelStagger"): channel c's accrual
     * origin shifts by c x this many DRAM cycles, so all-bank
     * refreshes of different channels stop landing on the same ticks.
     * 0 disables staggering (bit-identical default); -1 picks the
     * even spread tREFIab / channels; positive values are explicit
     * cycle counts.
     */
    int channelStaggerCycles = 0;

    /**
     * Refresh mechanism by registry name ("REFab", "DSARP", "FGR2x",
     * ...; case-insensitive, aliases accepted -- see
     * refresh/registry.hh). This is the canonical selection field: when
     * non-empty, RefreshPolicyRegistry::resolve() applies the named
     * mechanism's config bundle (overwriting `refresh` and `sarp`)
     * before the system is built. When empty, the deprecated
     * (`refresh`, `sarp`) pair below selects the mechanism unchanged.
     */
    std::string policy;

    RefreshMode refresh = RefreshMode::kAllBank;  ///< Timing profile.
    bool sarp = false;      ///< Subarray access refresh parallelization.

    /**
     * HiRA (hidden row activation, Yağlıkçı et al., MICRO'22) support,
     * set by the "HiRA" policy's config bundle: banks accept a hidden
     * per-bank refresh beneath an open row in a different subarray,
     * and tRRD/tFAW inflate while one is in flight (power integrity,
     * same Eq. 1-3 modeling as SARP).
     */
    bool hira = false;

    /**
     * Fraction of activated rows whose refresh can hide beneath the
     * access (config key "refresh.hiraCoverage"); negative keeps the
     * spec's characterized figure (~32%).
     */
    double hiraCoverage = -1.0;

    /**
     * Delay in DRAM cycles between a demand ACT and the hidden
     * refresh activation it covers (config key "refresh.hiraDelay");
     * 0 keeps the spec's tHiRA.
     */
    int hiraDelayCycles = 0;

    /**
     * Same-bank refresh (DDR5 REFsb) slice size in banks: how many
     * banks one REFsb command refreshes together (config key
     * "refresh.samebank.groupSize"). 0 keeps the spec's bank-group
     * geometry (DDR5-4800: 4 banks per group). Must divide
     * banksPerRank; selectable only on specs that declare same-bank
     * refresh support (DramSpec::banksPerGroup > 0).
     */
    int sameBankGroupSize = 0;

    /**
     * Allow the REFsb scheduler to pull in same-bank slices
     * opportunistically while the channel is idle (config key
     * "refresh.samebank.pullIn"). Disabling it isolates the blocking
     * round-robin baseline behaviour.
     */
    bool sameBankPullIn = true;

    /**
     * Command-level self-refresh idle-entry policy (config key
     * "refresh.selfRefresh.idleEntry"): after this many consecutive
     * DRAM cycles without demand activity on a rank, the controller
     * issues SRE (self-refresh entry). The rank then refreshes itself
     * -- its refresh ledger pauses and owed slots retire at the
     * internal rate -- until a demand request arrives, at which point
     * the controller issues SRX (no earlier than tCKESR after entry)
     * and the first command is charged the full tXS exit latency.
     * 0 disables the protocol entirely (bit-identical behaviour).
     * This supersedes the accounting-only "energy.selfRefreshIdle"
     * state below; the two are mutually exclusive.
     */
    int srIdleEntryCycles = 0;

    /**
     * Explicit fine-granularity-refresh rate (config key
     * "refresh.fgrRate"): 0 keeps the rate implied by the refresh
     * profile (FGR2x/FGR4x -> 2/4, everything else 1); 1/2/4 force
     * the rate for *any* mechanism, letting per-bank schedulers
     * (DARP, HiRA) run on FGR-scaled timing -- tREFI shrinks by the
     * rate, tRFC by the spec's native divisor, and each command
     * covers proportionally fewer rows.
     */
    int fgrRate = 0;

    /**
     * Energy-model self-refresh state (config key
     * "energy.selfRefreshIdle"): after this many consecutive
     * demand-idle DRAM cycles a rank is billed the spec's IDD6
     * self-refresh current instead of IDD2N precharge standby.
     * 0 disables the state, which keeps every pre-existing energy
     * number bit-identical. This is an energy accounting state only --
     * the command protocol (and the external refresh schedule) is not
     * altered.
     *
     * @deprecated Use the command-level protocol
     * (refresh.selfRefresh.idleEntry) instead: this state grants IDD6
     * savings with zero performance cost. Thresholds above tREFIab
     * are rejected at validation (before the demand/refresh activity
     * split they could silently never fire).
     */
    int selfRefreshIdleCycles = 0;

    /**
     * Enable DARP's second component (write-refresh parallelization).
     * Disabled only for the Section 6.1.2 breakdown, which isolates the
     * out-of-order per-bank refresh component.
     */
    bool darpWriteRefresh = true;

    int readQueueSize = 64;
    int writeQueueSize = 64;
    int writeHighWatermark = 54;  ///< Enter writeback mode at this occupancy.
    int writeLowWatermark = 32;   ///< Leave writeback mode at this occupancy.

    /**
     * Cross-rank phase of the REFab/Elastic schedules: rank r is offset
     * by tREFIab / (divisor * ranks). Large divisors nearly align the
     * ranks' refreshes (performance-optimal: the channel degrades once
     * per interval instead of twice); divisor 2 spreads them evenly.
     * The ablation bench sweeps this choice.
     */
    int refabStaggerDivisor = 8;

    /**
     * Extension of paper footnote 5: the LPDDR standard disallows
     * overlapping per-bank refreshes within a rank purely for
     * simplicity. Values > 1 model a modified standard that allows up
     * to this many concurrent REFpb per rank, with tFAW/tRRD inflated
     * per in-flight refresh for power integrity (cf. Eq. 1-3).
     * 1 reproduces the standard (and the paper's) behaviour.
     */
    int maxOverlappedRefPb = 1;

    /** Overrides in DRAM cycles for the tFAW sweep (0 = datasheet value). */
    int tFawOverride = 0;
    int tRrdOverride = 0;

    /**
     * SARP power-integrity inflation of tFAW/tRRD while a refresh is in
     * flight (Eq. 1-3): 2.1x during REFab, 1.138x during REFpb, derived
     * from Micron 8 Gb IDD values.
     */
    double sarpInflationAb = 2.1;
    double sarpInflationPb = 1.138;

    /**
     * Check every field for consistency. Returns "" when the config is
     * valid, otherwise a ';'-separated list of errors, each naming the
     * offending config key and its value.
     */
    std::string validate() const;

    /** Apply density defaults (rowsPerBank), then validate(); a fatal
     *  named-key error on inconsistent configs. */
    void finalize();
};

/** Core model configuration (Table 1 processor row). */
struct CoreConfig
{
    int cpuCyclesPerTick = 6;  ///< 4 GHz CPU over 667 MHz DRAM command clk.
    int windowSize = 128;      ///< Instruction window entries.
    int retireWidth = 3;       ///< Instructions retired per CPU cycle.
    int mshrs = 8;             ///< Outstanding read misses per core.
};

/**
 * Open-loop traffic front end: replaces the closed-loop core models
 * with request generators that inject at an externally fixed rate, so
 * queueing delay shows up in the read-latency tail instead of being
 * absorbed by core stall (the SLO framing of the paper's refresh
 * penalties). mode "off" (the default) keeps every closed-loop run
 * bit-identical.
 */
struct TrafficConfig
{
    /**
     * Arrival process (config key "traffic.mode"): "off" (closed-loop
     * cores, the default), "poisson" (memoryless arrivals),
     * "bursty" (two-state Markov-modulated Poisson: ON bursts at
     * burstFactor x the mean rate separated by idle gaps, same
     * long-run average), "diurnal" (sinusoidally modulated rate), or
     * "trace" (replay a DRAMSim-style external trace).
     */
    std::string mode = "off";

    /**
     * Aggregate mean arrival rate in requests per 1000 DRAM cycles
     * (config key "traffic.rate"), split evenly across tenants.
     */
    double ratePerKilocycle = 50.0;

    /** Read share of generated requests, percent (key "traffic.readPct"). */
    int readPct = 67;

    /**
     * Percent of generated requests directed at the tenant's small hot
     * row set (config key "traffic.hotRowPct"); the rest spread
     * uniformly over the tenant's partition. Hot-row skew is what makes
     * the address-map axis (burst-ch vs row-ch vs perm-bank)
     * differentiate under open-loop traffic.
     */
    double hotRowPct = 0.0;

    /** Hot-set size in rows per tenant (config key "traffic.hotRows"). */
    int hotRows = 16;

    /**
     * Number of tenants sharing the channels (config key
     * "tenant.count"). Each tenant owns an equal, disjoint slice of
     * the physical byte-address space and draws from its own RNG
     * stream, so per-tenant latency and max-slowdown fairness are
     * well-defined.
     */
    int tenants = 1;

    /**
     * Per-tenant injection priorities as a comma-separated list of
     * positive integers, highest first served (config key
     * "tenant.priorities"); empty means all tenants equal.
     */
    std::string tenantPriorities;

    /** Bursty mode: ON-state rate multiplier (key
     *  "traffic.burstFactor"). */
    double burstFactor = 8.0;

    /** Bursty mode: mean ON-burst length in cycles (key
     *  "traffic.burstLen"). */
    int burstLenCycles = 200;

    /** Diurnal mode: modulation period in cycles (key
     *  "traffic.diurnalPeriod"). */
    int diurnalPeriod = 100000;

    /** Diurnal mode: modulation amplitude in [0, 1] (key
     *  "traffic.diurnalAmp"). */
    double diurnalAmp = 0.8;

    /**
     * Trace mode: path to a DRAMSim-style trace, one request per line
     * as `0x<addr> READ|WRITE <cycle>` (config key "traffic.trace").
     * The trace loops with a cycle offset when exhausted.
     */
    std::string tracePath;

    bool enabled() const { return mode != "off"; }

    /**
     * Check every field for consistency. Returns "" when valid,
     * otherwise a ';'-separated list of errors naming the offending
     * config key, matching MemConfig::validate()'s contract.
     */
    std::string validate() const;

    /**
     * The per-tenant priority vector: tenantPriorities parsed, or all
     * ones when empty. Call only after validate() passed.
     */
    std::vector<int> priorityList() const;
};

/** Whole-system configuration. */
struct SystemConfig
{
    MemConfig mem;
    CoreConfig core;
    TrafficConfig traffic;
    int numCores = 8;
    std::uint64_t seed = 1;
    bool enableChecker = false;  ///< Attach the timing-invariant checker.

    /**
     * Simulation engine (config key "sim.engine"): "cycle" steps every
     * DRAM tick (the legacy loop, kept forever as the reference);
     * "event" skips to the earliest next deadline any component
     * reports, with bit-identical commands, stats, and RNG streams.
     */
    std::string engine = "cycle";

    /** Validate core/system keys, then the memory config; a fatal
     *  named-key error on inconsistent values. */
    void finalize();
};

} // namespace dsarp

#endif // DSARP_COMMON_CONFIG_HH
