/**
 * @file
 * Error-reporting helpers in the gem5 idiom.
 *
 * panic() is for conditions that indicate a simulator bug and should never
 * happen regardless of configuration; fatal() is for user-caused conditions
 * (bad configuration, invalid arguments); warn() reports suspicious but
 * recoverable situations.
 */

#ifndef DSARP_COMMON_LOG_HH
#define DSARP_COMMON_LOG_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dsarp {

/** Abort due to an internal simulator bug. */
[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/**
 * Optional interception point for fatal(): a harness (the fuzz
 * targets, primarily) installs a handler that throws instead of
 * exiting, so malformed-input rejection is observable in-process. The
 * handler must not return; if it does, the default exit(1) follows.
 * Returns the previously installed handler (nullptr = default).
 */
using FatalHandler = void (*)(const char *file, int line,
                              const char *msg);

inline FatalHandler &
fatalHandlerSlot()
{
    static FatalHandler handler = nullptr;
    return handler;
}

inline FatalHandler
setFatalHandler(FatalHandler handler)
{
    FatalHandler prev = fatalHandlerSlot();
    fatalHandlerSlot() = handler;
    return prev;
}

/** Exit due to a user error (bad configuration or arguments). */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    if (FatalHandler handler = fatalHandlerSlot())
        handler(file, line, msg);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

/** printf-style fatal(), for messages that must name the bad value. */
[[noreturn]] inline void
fatalfImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] inline void
fatalfImpl(const char *file, int line, const char *fmt, ...)
{
    // Large enough for multi-error validation reports (which join every
    // bad key into one message); anything longer is truncated.
    char buf[4096];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    fatalImpl(file, line, buf);
}

/** Report a suspicious but non-fatal condition. */
inline void
warnImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg, file, line);
}

} // namespace dsarp

#define DSARP_PANIC(msg) ::dsarp::panicImpl(__FILE__, __LINE__, (msg))
#define DSARP_FATAL(msg) ::dsarp::fatalImpl(__FILE__, __LINE__, (msg))
#define DSARP_FATALF(...) ::dsarp::fatalfImpl(__FILE__, __LINE__, __VA_ARGS__)
#define DSARP_WARN(msg) ::dsarp::warnImpl(__FILE__, __LINE__, (msg))

/** Cheap always-on invariant check used on hot simulator paths. */
#define DSARP_ASSERT(cond, msg) \
    do { \
        if (!(cond)) \
            DSARP_PANIC(msg); \
    } while (0)

#endif // DSARP_COMMON_LOG_HH
