/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload generation, DARP's
 * random idle-bank selection) flows through Rng so that a run is fully
 * reproducible from its seeds on any platform. The generator is
 * SplitMix64-seeded xoshiro256**, which is tiny, fast, and has no global
 * state.
 */

#ifndef DSARP_COMMON_RNG_HH
#define DSARP_COMMON_RNG_HH

#include <cstdint>

namespace dsarp {

/** Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        ++drawCount_;
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift range reduction; bias is negligible for
        // simulator-sized bounds.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Advance the stream by @p n draws without using them. The
     * event-driven engine replays the draws a skipped tick would have
     * made (every consumer above costs exactly one next()), keeping
     * the stream bit-identical to the cycle-by-cycle loop.
     */
    void
    discard(std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i)
            next();
    }

    /**
     * Draws made since construction. The event engine snapshots this
     * around a component's tick to learn how many draws one inert tick
     * costs, then discard()s that many per skipped tick.
     */
    std::uint64_t draws() const { return drawCount_; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    std::uint64_t drawCount_ = 0;
};

} // namespace dsarp

#endif // DSARP_COMMON_RNG_HH
