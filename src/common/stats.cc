#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace dsarp {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    sum_ += x;
    ++count_;
}

int
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<int>(value);
    // Octave e holds [2^(e+kSubBits), 2^(e+kSubBits+1)), split into
    // kSubBuckets linear steps of width 2^e each.
    const int e = 63 - __builtin_clzll(value) - kSubBits;
    const int sub = static_cast<int>((value >> e) - kSubBuckets);
    return kSubBuckets + e * kSubBuckets + sub;
}

std::uint64_t
LatencyHistogram::bucketLow(int i)
{
    if (i < kSubBuckets)
        return static_cast<std::uint64_t>(i);
    const int e = (i - kSubBuckets) / kSubBuckets;
    const int sub = (i - kSubBuckets) % kSubBuckets;
    return static_cast<std::uint64_t>(kSubBuckets + sub) << e;
}

std::uint64_t
LatencyHistogram::bucketHigh(int i)
{
    if (i == kBuckets - 1)
        return ~0ULL;
    return bucketLow(i + 1);
}

void
LatencyHistogram::add(std::uint64_t value)
{
    ++buckets_[bucketIndex(value)];
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }
    ++count_;
    sum_ += value;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.count_ == 0)
        return;
    for (int i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    const double target = p / 100.0 * static_cast<double>(count_);
    double seen = 0.0;
    for (int i = 0; i < kBuckets; ++i) {
        if (seen + buckets_[i] >= target && buckets_[i] > 0) {
            // Interpolate linearly inside [low, high); the sub-bucket
            // width bounds the error at kMaxRelativeError, and the
            // tracked extremes keep the result inside the sample range.
            const double lo = static_cast<double>(bucketLow(i));
            const double hi = static_cast<double>(bucketHigh(i));
            const double frac = (target - seen) / buckets_[i];
            double v = lo + frac * (hi - lo);
            v = std::max(v, static_cast<double>(min_));
            v = std::min(v, static_cast<double>(max_));
            return v;
        }
        seen += buckets_[i];
    }
    return static_cast<double>(max_);
}

void
LatencyHistogram::reset()
{
    *this = LatencyHistogram{};
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
gmean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        DSARP_ASSERT(x > 0.0, "gmean requires positive samples");
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
maxOf(const std::vector<double> &xs)
{
    double m = 0.0;
    bool first = true;
    for (double x : xs) {
        if (first || x > m)
            m = x;
        first = false;
    }
    return m;
}

} // namespace dsarp
