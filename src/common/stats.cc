#include "common/stats.hh"

#include <cmath>

#include "common/log.hh"

namespace dsarp {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    sum_ += x;
    ++count_;
}

void
LatencyHistogram::add(std::uint64_t value)
{
    int bucket = 0;
    std::uint64_t bound = 2;
    while (bucket < kBuckets - 1 && value >= bound) {
        bound <<= 1;
        ++bucket;
    }
    ++buckets_[bucket];
    ++count_;
    sum_ += value;
}

double
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    const double target = p / 100.0 * static_cast<double>(count_);
    double seen = 0.0;
    for (int i = 0; i < kBuckets; ++i) {
        if (seen + buckets_[i] >= target && buckets_[i] > 0) {
            // Interpolate linearly inside the bucket [2^i, 2^(i+1)).
            const double lo = i == 0 ? 0.0 : static_cast<double>(1ULL << i);
            const double hi = static_cast<double>(1ULL << (i + 1));
            const double frac = (target - seen) / buckets_[i];
            return lo + frac * (hi - lo);
        }
        seen += buckets_[i];
    }
    return static_cast<double>(1ULL << kBuckets);
}

void
LatencyHistogram::reset()
{
    *this = LatencyHistogram{};
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
gmean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        DSARP_ASSERT(x > 0.0, "gmean requires positive samples");
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
maxOf(const std::vector<double> &xs)
{
    double m = 0.0;
    bool first = true;
    for (double x : xs) {
        if (first || x > m)
            m = x;
        first = false;
    }
    return m;
}

} // namespace dsarp
