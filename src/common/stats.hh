/**
 * @file
 * Small statistics helpers: running mean/min/max accumulation and the
 * summary reductions (arithmetic mean, geometric mean) used to report the
 * paper's tables.
 */

#ifndef DSARP_COMMON_STATS_HH
#define DSARP_COMMON_STATS_HH

#include <cstdint>
#include <vector>

namespace dsarp {

/** Incremental accumulator for mean/min/max of a sample stream. */
class RunningStat
{
  public:
    void add(double x);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Log-linear (HDR-style) latency histogram. Values below 2^kSubBits
 * land in exact unit-width buckets; above that, each power-of-two
 * range [2^n, 2^(n+1)) is split into 2^kSubBits equal sub-buckets, so
 * any reported percentile is within a relative error of
 * kMaxRelativeError of the true sample (tracked min/max make the
 * extremes exact). The bucket table spans the full uint64 range --
 * there is no saturation bucket -- and add() stays O(1) for the
 * controller's per-read hot path.
 */
class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^5 = 32 linear steps per octave. */
    static constexpr int kSubBits = 5;
    static constexpr int kSubBuckets = 1 << kSubBits;
    /** 32 exact unit buckets + 59 octaves x 32 sub-buckets. */
    static constexpr int kBuckets = kSubBuckets * (65 - kSubBits);
    /** Worst-case relative error of percentile() vs the true sample. */
    static constexpr double kMaxRelativeError = 1.0 / kSubBuckets;

    void add(std::uint64_t value);

    /** Fold another histogram's samples into this one. */
    void merge(const LatencyHistogram &other);

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(int i) const { return buckets_[i]; }

    /** Index of the bucket @p value lands in. */
    static int bucketIndex(std::uint64_t value);
    /** Inclusive lower bound of bucket @p i. */
    static std::uint64_t bucketLow(int i);
    /** Exclusive upper bound of bucket @p i (saturates for the last). */
    static std::uint64_t bucketHigh(int i);

    /**
     * Approximate p-th percentile (p in [0, 100]); 0 when empty.
     * Interpolated within the hit bucket and clamped to the tracked
     * [min, max], so it is within kMaxRelativeError of the true
     * sorted-sample value.
     */
    double percentile(double p) const;

    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    void reset();

  private:
    std::vector<std::uint64_t> buckets_ =
        std::vector<std::uint64_t>(kBuckets, 0);
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** Arithmetic mean of a sample vector (0 for empty input). */
double mean(const std::vector<double> &xs);

/** Geometric mean; all samples must be positive. */
double gmean(const std::vector<double> &xs);

/** Maximum (0 for empty input). */
double maxOf(const std::vector<double> &xs);

} // namespace dsarp

#endif // DSARP_COMMON_STATS_HH
