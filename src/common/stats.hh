/**
 * @file
 * Small statistics helpers: running mean/min/max accumulation and the
 * summary reductions (arithmetic mean, geometric mean) used to report the
 * paper's tables.
 */

#ifndef DSARP_COMMON_STATS_HH
#define DSARP_COMMON_STATS_HH

#include <cstdint>
#include <vector>

namespace dsarp {

/** Incremental accumulator for mean/min/max of a sample stream. */
class RunningStat
{
  public:
    void add(double x);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Power-of-two bucketed latency histogram: bucket i counts samples in
 * [2^i, 2^(i+1)), bucket 0 covers [0, 2). Cheap enough for the
 * controller's per-read hot path; percentile() interpolates within the
 * hit bucket.
 */
class LatencyHistogram
{
  public:
    static constexpr int kBuckets = 24;  ///< Up to ~16M-cycle latencies.

    void add(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(int i) const { return buckets_[i]; }

    /** Approximate p-th percentile (p in [0, 100]); 0 when empty. */
    double percentile(double p) const;

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    void reset();

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

/** Arithmetic mean of a sample vector (0 for empty input). */
double mean(const std::vector<double> &xs);

/** Geometric mean; all samples must be positive. */
double gmean(const std::vector<double> &xs);

/** Maximum (0 for empty input). */
double maxOf(const std::vector<double> &xs);

} // namespace dsarp

#endif // DSARP_COMMON_STATS_HH
