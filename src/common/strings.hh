/**
 * @file
 * Tiny string helpers shared by the config/registry layers.
 */

#ifndef DSARP_COMMON_STRINGS_HH
#define DSARP_COMMON_STRINGS_HH

#include <algorithm>
#include <cctype>
#include <string>

namespace dsarp {

/** ASCII-lowercased copy (for case-insensitive key/name lookups). */
inline std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

/** Copy of @p s without leading/trailing whitespace. */
inline std::string
trimmed(const std::string &s)
{
    const auto first = s.find_first_not_of(" \t\r\n");
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(" \t\r\n");
    return s.substr(first, last - first + 1);
}

} // namespace dsarp

#endif // DSARP_COMMON_STRINGS_HH
