#include "common/types.hh"

#include <cmath>
#include <ostream>

namespace dsarp {

Cycles
Cycles::ceilScaled(double mult) const
{
    return Cycles(static_cast<std::int64_t>(
        std::ceil(static_cast<double>(n_) * mult - 1e-9)));
}

std::ostream &
operator<<(std::ostream &os, Cycles c)
{
    return os << c.count() << " cycles";
}

std::ostream &
operator<<(std::ostream &os, Nanoseconds ns)
{
    return os << ns.ns() << " ns";
}

} // namespace dsarp
