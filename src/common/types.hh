/**
 * @file
 * Fundamental scalar types and identifiers shared across the simulator.
 *
 * One simulation tick equals one DRAM bus clock cycle (1.5 ns for
 * DDR3-1333). All latencies and timestamps in the DRAM and controller
 * layers are expressed in ticks; the core model internally advances a
 * faster CPU clock (cpuCyclesPerTick CPU cycles per tick).
 */

#ifndef DSARP_COMMON_TYPES_HH
#define DSARP_COMMON_TYPES_HH

#include <cstdint>

namespace dsarp {

/** Simulation time in DRAM bus cycles. */
using Tick = std::uint64_t;

/** A tick value that no real event ever reaches. */
constexpr Tick kTickNever = ~Tick(0);

/** Physical byte address. */
using Addr = std::uint64_t;

/** Identifier types; plain ints keep arithmetic painless. */
using CoreId = int;
using ChannelId = int;
using RankId = int;
using BankId = int;
using SubarrayId = int;
using RowId = int;

/** Marker for "no row open" / "no subarray". */
constexpr int kNone = -1;

} // namespace dsarp

#endif // DSARP_COMMON_TYPES_HH
