/**
 * @file
 * Fundamental scalar types and identifiers shared across the simulator.
 *
 * One simulation tick equals one DRAM bus clock cycle (1.5 ns for
 * DDR3-1333). All latencies and timestamps in the DRAM and controller
 * layers are expressed in ticks; the core model internally advances a
 * faster CPU clock (cpuCyclesPerTick CPU cycles per tick).
 */

#ifndef DSARP_COMMON_TYPES_HH
#define DSARP_COMMON_TYPES_HH

#include <compare>
#include <cstdint>
#include <iosfwd>

namespace dsarp {

/** Simulation time in DRAM bus cycles. */
using Tick = std::uint64_t;

/** A tick value that no real event ever reaches. */
constexpr Tick kTickNever = ~Tick(0);

/**
 * A duration in DRAM bus cycles (a timing constraint such as tRCD or
 * tRFC), as opposed to Tick, which is an absolute instant on the same
 * clock. Construction from a raw integer is explicit and there is no
 * implicit decay back to one, so cycle counts cannot silently mix with
 * nanosecond quantities (see Nanoseconds below); the only blessed
 * ns -> cycles conversion is TimingParams::nsToCycles.
 *
 * Supported arithmetic keeps its units honest:
 *   Cycles +- Cycles -> Cycles        Tick +- Cycles  -> Tick
 *   Cycles * int, Cycles / int        Cycles / Cycles -> plain ratio
 * Comparisons against plain integers are allowed (a count compared to
 * a count), since comparison cannot convert between units.
 */
class Cycles
{
  public:
    constexpr Cycles() = default;
    constexpr explicit Cycles(std::int64_t n) : n_(n) {}

    /** The raw cycle count; the escape hatch for stats and printf. */
    constexpr std::int64_t count() const { return n_; }

    /** True for a non-zero duration (override-style fields use zero
     *  as "unset"). */
    constexpr explicit operator bool() const { return n_ != 0; }

    /**
     * This duration inflated by @p mult and rounded up (SARP's
     * power-integrity factors, Eq. 1-3); the epsilon keeps exact
     * products from rounding one cycle too far.
     */
    Cycles ceilScaled(double mult) const;

    constexpr Cycles &operator+=(Cycles o) { n_ += o.n_; return *this; }
    constexpr Cycles &operator-=(Cycles o) { n_ -= o.n_; return *this; }

    friend constexpr Cycles operator+(Cycles a, Cycles b)
    { return Cycles(a.n_ + b.n_); }
    friend constexpr Cycles operator-(Cycles a, Cycles b)
    { return Cycles(a.n_ - b.n_); }
    friend constexpr Cycles operator-(Cycles a) { return Cycles(-a.n_); }
    friend constexpr Cycles operator*(Cycles a, std::int64_t k)
    { return Cycles(a.n_ * k); }
    friend constexpr Cycles operator*(std::int64_t k, Cycles a)
    { return Cycles(k * a.n_); }
    friend constexpr Cycles operator/(Cycles a, std::int64_t k)
    { return Cycles(a.n_ / k); }
    friend constexpr std::int64_t operator/(Cycles a, Cycles b)
    { return a.n_ / b.n_; }
    friend constexpr Cycles operator%(Cycles a, Cycles b)
    { return Cycles(a.n_ % b.n_); }

    friend constexpr bool operator==(Cycles a, Cycles b)
    { return a.n_ == b.n_; }
    friend constexpr auto operator<=>(Cycles a, Cycles b)
    { return a.n_ <=> b.n_; }
    friend constexpr bool operator==(Cycles a, std::int64_t b)
    { return a.n_ == b; }
    friend constexpr auto operator<=>(Cycles a, std::int64_t b)
    { return a.n_ <=> b; }

    /** Deadline arithmetic: an instant offset by a duration. */
    friend constexpr Tick operator+(Tick t, Cycles c)
    { return t + static_cast<Tick>(c.n_); }
    friend constexpr Tick operator+(Cycles c, Tick t)
    { return t + static_cast<Tick>(c.n_); }
    friend constexpr Tick operator-(Tick t, Cycles c)
    { return t - static_cast<Tick>(c.n_); }
    friend constexpr Tick &operator+=(Tick &t, Cycles c)
    { t += static_cast<Tick>(c.n_); return t; }

    /** Poisoned: a bare int is not an instant, so `Cycles + 2` must
     *  spell its unit (`+ Cycles(2)`) rather than silently promoting
     *  the literal to Tick through the deadline overloads above. */
    friend constexpr Tick operator+(Cycles, int) = delete;
    friend constexpr Tick operator+(int, Cycles) = delete;
    friend constexpr Tick operator-(int, Cycles) = delete;

  private:
    std::int64_t n_ = 0;
};

std::ostream &operator<<(std::ostream &os, Cycles c);

/**
 * A duration in nanoseconds: the unit DRAM data sheets speak
 * (DramSpec's *Ns fields). Deliberately incompatible with Cycles and
 * with raw arithmetic against the clock period -- dividing or
 * multiplying a plain double by tCK is exactly the bug class that
 * understated LPDDR4 refresh energy 2x. Convert through
 * TimingParams::nsToCycles (or nsToCyclesFloor) only.
 */
class Nanoseconds
{
  public:
    constexpr Nanoseconds() = default;
    constexpr explicit Nanoseconds(double ns) : ns_(ns) {}

    /** The raw nanosecond value; for printing, never for conversion. */
    constexpr double ns() const { return ns_; }

    constexpr explicit operator bool() const { return ns_ != 0.0; }

    friend constexpr Nanoseconds operator+(Nanoseconds a, Nanoseconds b)
    { return Nanoseconds(a.ns_ + b.ns_); }
    friend constexpr Nanoseconds operator-(Nanoseconds a, Nanoseconds b)
    { return Nanoseconds(a.ns_ - b.ns_); }
    friend constexpr Nanoseconds operator*(Nanoseconds a, double k)
    { return Nanoseconds(a.ns_ * k); }
    friend constexpr Nanoseconds operator*(double k, Nanoseconds a)
    { return Nanoseconds(k * a.ns_); }
    friend constexpr Nanoseconds operator/(Nanoseconds a, double k)
    { return Nanoseconds(a.ns_ / k); }
    /** Ratio of two durations is a plain number (e.g. tRFCsb/tRFCab). */
    friend constexpr double operator/(Nanoseconds a, Nanoseconds b)
    { return a.ns_ / b.ns_; }

    friend constexpr bool operator==(Nanoseconds a, Nanoseconds b)
    { return a.ns_ == b.ns_; }
    friend constexpr auto operator<=>(Nanoseconds a, Nanoseconds b)
    { return a.ns_ <=> b.ns_; }

  private:
    double ns_ = 0.0;
};

std::ostream &operator<<(std::ostream &os, Nanoseconds ns);

/** Physical byte address. */
using Addr = std::uint64_t;

/** Identifier types; plain ints keep arithmetic painless. */
using CoreId = int;
using ChannelId = int;
using RankId = int;
using BankId = int;
using SubarrayId = int;
using RowId = int;

/** Marker for "no row open" / "no subarray". */
constexpr int kNone = -1;

} // namespace dsarp

#endif // DSARP_COMMON_TYPES_HH
