#include "controller/controller.hh"

#include <algorithm>

#include "common/log.hh"
#include "refresh/registry.hh"

namespace dsarp {


ChannelController::ChannelController(ChannelId id, const MemConfig *cfg,
                                     const TimingParams *timing,
                                     std::uint64_t seed)
    : id_(id), cfg_(cfg), timing_(timing), channel_(cfg, timing),
      rng_(seed ^ (0x5851f42d4c957f2dULL * (id + 1))),
      readQ_(cfg->readQueueSize, cfg->org.ranksPerChannel,
             cfg->org.banksPerRank),
      writeQ_(cfg->writeQueueSize, cfg->org.ranksPerChannel,
              cfg->org.banksPerRank),
      writeDrain_(cfg->writeHighWatermark, cfg->writeLowWatermark)
{
    refreshSched_ =
        RefreshPolicyRegistry::instance().make(*cfg, *timing, *this);
    blockedActBank_.assign(
        cfg->org.ranksPerChannel * cfg->org.banksPerRank, 0);
    blockedActRank_.assign(cfg->org.ranksPerChannel, 0);
    lastDemandActivity_.assign(cfg->org.ranksPerChannel, 0);
    pendingReads_.reserve(cfg->readQueueSize);
    urgentScratch_.reserve(8);
}

bool
ChannelController::enqueueRead(const Request &req, Tick now)
{
    // Forward from the write queue when a not-yet-drained write to the
    // same line exists (the controller holds the freshest data). The
    // completion is delivered on the next tick, never synchronously.
    if (writeQ_.findAddr(req.addr) >= 0) {
        ++stats_.forwardedReads;
        pendingReads_.push_back({now + 1, req});
        enqueuedSinceTick_ = true;
        return true;
    }
    if (!readQ_.push(req)) {
        // The core retries every tick; the event engine re-wakes it
        // when a pop frees a slot (see consumePoppedWithRejection).
        sendRejected_ = true;
        return false;
    }
    ++stats_.readsEnqueued;
    lastDemandActivity_[req.loc.rank] = now;
    enqueuedSinceTick_ = true;
    return true;
}

bool
ChannelController::enqueueWrite(const Request &req, Tick now)
{
    if (!writeQ_.push(req)) {
        sendRejected_ = true;
        return false;
    }
    ++stats_.writesEnqueued;
    lastDemandActivity_[req.loc.rank] = now;
    enqueuedSinceTick_ = true;
    return true;
}

int
ChannelController::pendingDemands(RankId r, BankId b) const
{
    return readQ_.bankCount(r, b) + writeQ_.bankCount(r, b);
}

int
ChannelController::pendingReads(RankId r, BankId b) const
{
    return readQ_.bankCount(r, b);
}

int
ChannelController::pendingWrites(RankId r, BankId b) const
{
    return writeQ_.bankCount(r, b);
}

int
ChannelController::pendingDemandsRank(RankId r) const
{
    return readQ_.rankCount(r) + writeQ_.rankCount(r);
}

Tick
ChannelController::lastDemandActivity(RankId r) const
{
    return lastDemandActivity_[r];
}

bool
ChannelController::srDemandPending(RankId r) const
{
    // Reads are latency-critical: any queued read wakes (or keeps
    // awake) the rank. Writes sit in the queue until the drain
    // watermark fires, so below it they neither block self-refresh
    // entry nor wake a sleeping rank -- once writeback mode starts,
    // the batch needs the DRAM and the rank must be up.
    if (readQ_.rankCount(r) > 0)
        return true;
    return writeDrain_.active() && writeQ_.rankCount(r) > 0;
}

void
ChannelController::resetStats()
{
    stats_ = ControllerStats{};
    channel_.resetStats();
    refreshSched_->resetStats();
}

Command
ChannelController::toCommand(const RefreshRequest &req) const
{
    Command cmd;
    cmd.type = req.allBank ? CommandType::kRefAb
        : req.sameBank     ? CommandType::kRefSb
                           : CommandType::kRefPb;
    cmd.rank = req.rank;
    cmd.bank = req.bank;  // Bank-group index for same-bank requests.
    cmd.tRfcOverride = req.tRfcOverride;
    cmd.rowsOverride = req.rowsOverride;
    cmd.hidden = req.hidden;
    return cmd;
}

bool
ChannelController::tryIssue(const Command &cmd, Tick now)
{
    if (!channel_.canIssue(cmd, now))
        return false;
    channel_.issue(cmd, now);
    issuedThisTick_ = true;
    if (cmdLog_)
        cmdLog_->push_back({now, cmd});
    return true;
}

void
ChannelController::serveDemand(RequestQueue &queue, const CmdChoice &choice,
                               Tick now)
{
    const Tick data_tick = channel_.issue(choice.cmd, now);
    issuedThisTick_ = true;
    if (cmdLog_)
        cmdLog_->push_back({now, choice.cmd});
    lastDemandActivity_[choice.cmd.rank] = now;
    refreshSched_->onDemandCommand(choice.cmd, now);

    if (!isColumnCmd(choice.cmd.type))
        return;  // ACT: the request stays queued for its column command.

    if (sendRejected_) {
        // A queue slot frees while some core sits in fetch-retry:
        // that core's stalled certificate is void from here on.
        poppedWithRejection_ = true;
        sendRejected_ = false;
    }
    Request req = queue.pop(choice.queueIndex);
    if (req.isWrite) {
        ++stats_.writesIssued;
    } else {
        pendingReads_.push_back({data_tick, req});
    }
}

void
ChannelController::arbitrate(Tick now)
{
    // 0. Self-refresh exit: a rank in self-refresh with demand that
    //    needs the DRAM must wake up. SRX is legal once the minimum
    //    residency tCKESR has elapsed; the first command after it then
    //    waits out tXS, so the latency cost of sleeping is paid by the
    //    demand stream (no free lunch).
    for (RankId r = 0; r < channel_.numRanks(); ++r) {
        if (!channel_.rank(r).inSelfRefresh(now))
            continue;
        if (!srDemandPending(r))
            continue;
        Command srx;
        srx.type = CommandType::kSrExit;
        srx.rank = r;
        if (tryIssue(srx, now)) {
            refreshSched_->onSrExit(r, now);
            return;
        }
    }

    urgentScratch_.clear();
    refreshSched_->urgent(now, urgentScratch_);

    // Mark targets of blocking refreshes so FR-FCFS stops opening rows
    // there and the bank/rank drains.
    std::fill(blockedActBank_.begin(), blockedActBank_.end(), 0);
    std::fill(blockedActRank_.begin(), blockedActRank_.end(), 0);
    for (const RefreshRequest &req : urgentScratch_) {
        if (!req.blocking)
            continue;
        if (req.allBank) {
            blockedActRank_[req.rank] = 1;
        } else if (req.sameBank) {
            // A blocking slice refresh drains every bank of its group.
            const int slice = timing_->banksPerGroup;
            for (int b = req.bank * slice; b < (req.bank + 1) * slice;
                 ++b) {
                blockedActBank_[req.rank * cfg_->org.banksPerRank + b] = 1;
            }
        } else {
            blockedActBank_[req.rank * cfg_->org.banksPerRank + req.bank] =
                1;
        }
    }

    // 1. Urgent refreshes, in policy priority order.
    for (const RefreshRequest &req : urgentScratch_) {
        if (tryIssue(toCommand(req), now)) {
            refreshSched_->onIssued(req, now);
            return;
        }
    }

    // 2. Demand commands: writes during writeback mode, reads otherwise.
    //    Skipped wholesale while the frozen-pick certificate holds (see
    //    pickSkipUntil_): this tick was reached by a wake that cannot
    //    change the pick's "nothing issuable" answer -- a read
    //    delivery, a refresh pull-in probe, or an SRE threshold.
    if (now >= pickSkipUntil_) {
        RequestQueue &queue = writeDrain_.active() ? writeQ_ : readQ_;
        CmdChoice choice = FrFcfs::pick(queue, channel_, now,
                                        blockedActBank_, blockedActRank_,
                                        cfg_->org.banksPerRank);
        if (choice.valid) {
            serveDemand(queue, choice, now);
            return;
        }

        // 3. Precharge assist: a blocking refresh target still has a
        //    row open (e.g. read row hits stranded by writeback mode);
        //    close it. Under the certificate its answer is frozen too:
        //    the urgent set, every open row, and PRE legality are all
        //    unchanged since it last found nothing.
        for (const RefreshRequest &req : urgentScratch_) {
            if (!req.blocking)
                continue;
            int lo = req.bank, hi = req.bank;
            if (req.allBank) {
                lo = 0;
                hi = cfg_->org.banksPerRank - 1;
            } else if (req.sameBank) {
                lo = req.bank * timing_->banksPerGroup;
                hi = lo + timing_->banksPerGroup - 1;
            }
            for (BankId b = lo; b <= hi; ++b) {
                const Bank &bank = channel_.rank(req.rank).bank(b);
                if (!bank.isOpen())
                    continue;
                Command pre;
                pre.type = CommandType::kPre;
                pre.rank = req.rank;
                pre.bank = b;
                if (tryIssue(pre, now))
                    return;
            }
        }
    }

    // 4. Self-refresh entry: no urgent refresh or demand wanted the
    //    bus this tick. A rank that has seen no demand for the
    //    idle-entry threshold, has none queued, and is fully quiesced
    //    enters self-refresh; its refresh ledger pauses (the device
    //    retires owed slots at the internal rate) until demand wakes
    //    it. Deliberately ahead of the opportunistic pull-in: for a
    //    rank idle enough to sleep, the device's internal refresh
    //    covers the same obligations a pull-in would, at IDD6 instead
    //    of a command -- and a pull-in issued every idle tick would
    //    otherwise starve entry forever.
    if (cfg_->srIdleEntryCycles > 0) {
        for (RankId r = 0; r < channel_.numRanks(); ++r) {
            if (channel_.rank(r).inSelfRefresh(now))
                continue;
            if (srDemandPending(r))
                continue;
            if (now - lastDemandActivity_[r] <
                static_cast<Tick>(cfg_->srIdleEntryCycles)) {
                continue;
            }
            Command sre;
            sre.type = CommandType::kSrEnter;
            sre.rank = r;
            if (tryIssue(sre, now)) {
                refreshSched_->onSrEnter(r, now);
                return;
            }
        }
    }

    // 5. Opportunistic refresh (DARP's idle-bank pull-in). Measure the
    //    probe's RNG appetite: an inert tick reaches this point, so the
    //    event engine replays exactly these draws per skipped tick.
    RefreshRequest opp;
    const std::uint64_t draws_before = rng_.draws();
    const bool opp_wanted = refreshSched_->opportunistic(now, opp);
    oppDraws_ = rng_.draws() - draws_before;
    if (opp_wanted) {
        if (tryIssue(toCommand(opp), now)) {
            refreshSched_->onIssued(opp, now);
            return;
        }
    }
}

void
ChannelController::tick(Tick now)
{
    ++stats_.ticks;
    if (issuedThisTick_ || enqueuedSinceTick_) {
        deadlineCacheValid_ = false;
        pickSkipUntil_ = 0;
    }
    issuedThisTick_ = false;
    enqueuedSinceTick_ = false;

    refreshSched_->tick(now);
    writeDrain_.update(writeQ_.size());
    if (writeDrain_.active())
        ++stats_.writebackModeTicks;

    // Deliver read data that has arrived.
    for (std::size_t i = 0; i < pendingReads_.size();) {
        if (pendingReads_[i].done <= now) {
            const PendingRead pr = pendingReads_[i];
            pendingReads_[i] = pendingReads_.back();
            pendingReads_.pop_back();
            deadlineCacheValid_ = false;
            ++stats_.readsCompleted;
            stats_.readLatencySum += pr.done - pr.req.arrival;
            stats_.readLatency.add(pr.done - pr.req.arrival);
            if (readCallback_)
                readCallback_(pr.req, pr.done);
        } else {
            ++i;
        }
    }

    arbitrate(now);

    stats_.readQueueOccupancySum += readQ_.size();
    stats_.writeQueueOccupancySum += writeQ_.size();
    channel_.sampleActivity(now);
}

Tick
ChannelController::nextWake(Tick now)
{
    // A tick that issued a command, or fresh work enqueued by a core
    // after this controller ticked, may enable another command on the
    // very next tick: step.
    if (issuedThisTick_ || enqueuedSinceTick_)
        return now;

    // The DRAM deadline set only moves when a command issues, work is
    // enqueued, or read data is delivered -- every such event
    // invalidates the cache -- so an inert controller re-enumerates at
    // most once per event rather than at every wake. The refresh
    // scheduler is deliberately outside the cache: its wake is cheap
    // and its internal state (ledger accrual, policy decisions) moves
    // on its own schedule.
    if (!deadlineCacheValid_ || cachedDeadline_ <= now) {
        Tick issu = kTickNever;
        const auto addIssu = [&](Tick t) {
            if (t > now && t < issu)
                issu = t;
        };
        addIssu(channel_.nextDeadline(now));
        // Self-refresh idle-entry thresholds (arbitrate step 4). Added
        // unconditionally per rank: a spurious wake costs one tick, a
        // missed one would diverge.
        if (cfg_->srIdleEntryCycles > 0) {
            for (RankId r = 0; r < channel_.numRanks(); ++r) {
                addIssu(lastDemandActivity_[r] +
                        static_cast<Tick>(cfg_->srIdleEntryCycles));
            }
        }
        Tick wake = issu;
        for (const PendingRead &pr : pendingReads_) {
            if (pr.done > now && pr.done < wake)
                wake = pr.done;
        }
        cachedDeadline_ = wake;
        cachedIssuDeadline_ = issu;
        deadlineCacheValid_ = true;
    }
    Tick wake = cachedDeadline_;
    const Tick sched = refreshSched_->nextWake(now);
    if (sched > now && sched < wake)
        wake = sched;
    // This tick was inert and everything the demand pick reads is
    // frozen until the issuability deadline or the policy's next state
    // change, whichever is first: later wakes (deliveries, refresh
    // pull-ins, SRE probes) may skip the FR-FCFS scan until then.
    pickSkipUntil_ = cachedIssuDeadline_;
    if (sched > now && sched < pickSkipUntil_)
        pickSkipUntil_ = sched;
    return wake;
}

void
ChannelController::skipTicks(Tick firstTick, Tick ticks)
{
    // Replay the linear per-tick effects of an inert tick() across the
    // span [firstTick, firstTick + ticks). Queue sizes, drain state,
    // and every DRAM predicate are frozen: nothing issued, nothing was
    // enqueued, and the engine wakes at every timing threshold.
    stats_.ticks += ticks;
    if (writeDrain_.active())
        stats_.writebackModeTicks += ticks;
    stats_.readQueueOccupancySum +=
        ticks * static_cast<std::uint64_t>(readQ_.size());
    stats_.writeQueueOccupancySum +=
        ticks * static_cast<std::uint64_t>(writeQ_.size());
    rng_.discard(oppDraws_ * ticks);
    refreshSched_->skipTicks(firstTick, ticks);
    channel_.sampleActivitySpan(firstTick, ticks);
}

} // namespace dsarp
