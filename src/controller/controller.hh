/**
 * @file
 * Per-channel memory controller.
 *
 * Implements the paper's controller (Table 1): 64/64-entry read/write
 * queues, FR-FCFS, closed-row policy, batched writes with a low
 * watermark, and a pluggable refresh scheduling policy. Arbitration each
 * tick: urgent refreshes, then demand commands (writes during writeback
 * mode, reads otherwise), then a precharge assist for blocked refreshes,
 * then opportunistic refreshes.
 *
 * The controller implements ControllerView so refresh policies can
 * observe queue occupancies (DARP) and idleness (elastic refresh), and
 * exposes the DRAM-side refresh state (SARP's shadow refresh-subarray
 * counters, Section 4.3.2, are realized by reading the modeled refresh
 * unit the controller mirrors).
 */

#ifndef DSARP_CONTROLLER_CONTROLLER_HH
#define DSARP_CONTROLLER_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "controller/queues.hh"
#include "controller/scheduler.hh"
#include "controller/write_drain.hh"
#include "dram/channel.hh"
#include "refresh/scheduler.hh"

namespace dsarp {

/** A command with its issue tick, for the offline timing checker. */
struct TimedCommand
{
    Tick tick;
    Command cmd;
};

struct ControllerStats
{
    std::uint64_t readsEnqueued = 0;
    std::uint64_t writesEnqueued = 0;
    std::uint64_t readsCompleted = 0;
    std::uint64_t writesIssued = 0;
    std::uint64_t readLatencySum = 0;  ///< Arrival to data return, ticks.
    LatencyHistogram readLatency;      ///< Same samples, bucketed.
    std::uint64_t forwardedReads = 0;  ///< Served from the write queue.
    std::uint64_t writebackModeTicks = 0;
    std::uint64_t ticks = 0;
    std::uint64_t readQueueOccupancySum = 0;
    std::uint64_t writeQueueOccupancySum = 0;
};

class ChannelController : public ControllerView
{
  public:
    using ReadCallback =
        std::function<void(const Request &, Tick doneTick)>;

    ChannelController(ChannelId id, const MemConfig *cfg,
                      const TimingParams *timing, std::uint64_t seed);

    /** Enqueue a demand request; false when the relevant queue is full. */
    bool enqueueRead(const Request &req, Tick now);
    bool enqueueWrite(const Request &req, Tick now);

    bool readQueueFull() const { return readQ_.full(); }
    bool writeQueueFull() const { return writeQ_.full(); }

    /** Invoked when read data returns (at its data-burst end tick). */
    void setReadCallback(ReadCallback cb) { readCallback_ = std::move(cb); }

    /** Advance one DRAM cycle: refresh policy, arbitration, stats. */
    void tick(Tick now);

    /**
     * Earliest tick strictly after @p now at which this controller
     * could act differently than it just did: the next read-data
     * delivery, refresh-policy wake, DRAM timing threshold, or
     * self-refresh idle-entry instant. Returns @p now (forcing the
     * legacy one-tick step) whenever the tick at @p now issued a
     * command or a core enqueued since -- only provably inert state
     * may be skipped.
     */
    Tick nextWake(Tick now);

    /**
     * Account the @p ticks skipped ticks [firstTick, firstTick+ticks)
     * for the event-driven engine: linear stat accrual (tick/occupancy/
     * writeback counters, activity sampling) plus a replay of the
     * per-tick RNG draws the opportunistic-refresh probe would have
     * made. Bit-identical to ticking cycle by cycle across an inert
     * span.
     */
    void skipTicks(Tick firstTick, Tick ticks);

    /**
     * True once, after a demand-queue pop that followed a rejected
     * enqueue: some core is spinning in fetch-retry against the full
     * queue, and its stalled-core certificate ends at the pop. The
     * event engine re-wakes every core at such ticks (reads the flag
     * destructively).
     */
    bool
    consumePoppedWithRejection()
    {
        const bool v = poppedWithRejection_;
        poppedWithRejection_ = false;
        return v;
    }

    /** @name ControllerView */
    /// @{
    int pendingDemands(RankId r, BankId b) const override;
    int pendingReads(RankId r, BankId b) const override;
    int pendingWrites(RankId r, BankId b) const override;
    int pendingDemandsRank(RankId r) const override;
    bool inWritebackMode() const override { return writeDrain_.active(); }
    Tick lastDemandActivity(RankId r) const override;
    ChannelId channelId() const override { return id_; }
    const Channel &dram() const override { return channel_; }
    Rng &schedulerRng() override { return rng_; }
    /// @}

    Channel &channel() { return channel_; }
    const ControllerStats &stats() const { return stats_; }
    const RefreshSchedStats &refreshStats() const
    {
        return refreshSched_->stats();
    }
    const RefreshScheduler &refreshScheduler() const
    {
        return *refreshSched_;
    }

    /** Attach a command log for the offline timing checker (or nullptr). */
    void setCommandLog(std::vector<TimedCommand> *log) { cmdLog_ = log; }

    /** Zero all measurement counters (queues and DRAM state persist). */
    void resetStats();

    ChannelId id() const { return id_; }

  private:
    void arbitrate(Tick now);
    bool tryIssue(const Command &cmd, Tick now);
    Command toCommand(const RefreshRequest &req) const;

    /** Demand that needs the rank awake: queued reads, or queued
     *  writes once a write drain is active. */
    bool srDemandPending(RankId r) const;

    /** Issue the chosen demand command and retire its request if column. */
    void serveDemand(RequestQueue &queue, const CmdChoice &choice, Tick now);

    ChannelId id_;
    const MemConfig *cfg_;
    const TimingParams *timing_;
    Channel channel_;
    Rng rng_;

    RequestQueue readQ_;
    RequestQueue writeQ_;
    WriteDrain writeDrain_;
    std::unique_ptr<RefreshScheduler> refreshSched_;

    struct PendingRead
    {
        Tick done;
        Request req;
    };
    std::vector<PendingRead> pendingReads_;

    std::vector<std::uint8_t> blockedActBank_;
    std::vector<std::uint8_t> blockedActRank_;
    std::vector<RefreshRequest> urgentScratch_;
    std::vector<Tick> lastDemandActivity_;

    ReadCallback readCallback_;
    ControllerStats stats_;
    std::vector<TimedCommand> *cmdLog_ = nullptr;

    /** @name Event-engine bookkeeping (see nextWake/skipTicks). */
    /// @{
    bool issuedThisTick_ = false;    ///< Any command went out at tick().
    bool enqueuedSinceTick_ = false; ///< A core enqueued after tick().
    bool sendRejected_ = false;      ///< An enqueue bounced off a full queue.
    bool poppedWithRejection_ = false; ///< ...and a slot has freed since.
    /** RNG draws the last inert opportunistic() probe made (replayed
     *  once per skipped tick; lazy draws in urgent() cache themselves
     *  and must not be replayed). */
    std::uint64_t oppDraws_ = 0;
    /** Memoized DRAM-side deadline minimum (see nextWake()). */
    Tick cachedDeadline_ = 0;
    /** Same minimum without the read-delivery instants: the earliest
     *  tick any command's legality can flip (deliveries never do). */
    Tick cachedIssuDeadline_ = 0;
    bool deadlineCacheValid_ = false;
    /**
     * Frozen-pick certificate: while now < pickSkipUntil_, the demand
     * pick (and the precharge assist behind it) provably repeats its
     * last "nothing issuable" answer -- the queues are unchanged (an
     * enqueue zeroes this), no command issued (ditto), no DRAM timing
     * threshold expires before the issuability deadline, and the
     * refresh policy's urgent set is fixed until its own wake. Set by
     * nextWake() after an inert tick, so only event-engine runs
     * benefit; the cycle engine always runs the full pick.
     */
    Tick pickSkipUntil_ = 0;
    /// @}
};

} // namespace dsarp

#endif // DSARP_CONTROLLER_CONTROLLER_HH
