#include "controller/queues.hh"

#include "common/log.hh"

namespace dsarp {

RequestQueue::RequestQueue(int capacity, int ranks, int banks_per_rank)
    : capacity_(capacity), banks_(banks_per_rank)
{
    bankCount_.assign(ranks * banks_per_rank, 0);
    entries_.reserve(capacity);
}

bool
RequestQueue::push(const Request &req)
{
    if (full())
        return false;
    entries_.push_back(req);
    ++bankCount_[req.loc.rank * banks_ + req.loc.bank];
    ++rowCount_[rowKey(req.loc.rank, req.loc.bank, req.loc.row)];
    return true;
}

Request
RequestQueue::pop(int i)
{
    DSARP_ASSERT(i >= 0 && i < size(), "queue index out of range");
    Request req = entries_[i];
    entries_.erase(entries_.begin() + i);
    --bankCount_[req.loc.rank * banks_ + req.loc.bank];
    DSARP_ASSERT(bankCount_[req.loc.rank * banks_ + req.loc.bank] >= 0,
                 "bank count underflow");
    const auto it =
        rowCount_.find(rowKey(req.loc.rank, req.loc.bank, req.loc.row));
    DSARP_ASSERT(it != rowCount_.end() && it->second > 0,
                 "row count underflow");
    if (--it->second == 0)
        rowCount_.erase(it);
    return req;
}

int
RequestQueue::rankCount(RankId r) const
{
    int total = 0;
    for (int b = 0; b < banks_; ++b)
        total += bankCount_[r * banks_ + b];
    return total;
}

int
RequestQueue::findAddr(Addr addr) const
{
    for (int i = 0; i < size(); ++i) {
        if (entries_[i].addr == addr)
            return i;
    }
    return -1;
}

} // namespace dsarp
