#include "controller/queues.hh"

#include "common/log.hh"

namespace dsarp {

RequestQueue::RequestQueue(int capacity, int ranks, int banks_per_rank)
    : capacity_(capacity), banks_(banks_per_rank)
{
    bankCount_.assign(ranks * banks_per_rank, 0);
    entries_.reserve(capacity);
}

bool
RequestQueue::push(const Request &req)
{
    if (full())
        return false;
    entries_.push_back(req);
    ++bankCount_[req.loc.rank * banks_ + req.loc.bank];
    return true;
}

Request
RequestQueue::pop(int i)
{
    DSARP_ASSERT(i >= 0 && i < size(), "queue index out of range");
    Request req = entries_[i];
    entries_.erase(entries_.begin() + i);
    --bankCount_[req.loc.rank * banks_ + req.loc.bank];
    DSARP_ASSERT(bankCount_[req.loc.rank * banks_ + req.loc.bank] >= 0,
                 "bank count underflow");
    return req;
}

int
RequestQueue::rankCount(RankId r) const
{
    int total = 0;
    for (int b = 0; b < banks_; ++b)
        total += bankCount_[r * banks_ + b];
    return total;
}

int
RequestQueue::findAddr(Addr addr) const
{
    for (int i = 0; i < size(); ++i) {
        if (entries_[i].addr == addr)
            return i;
    }
    return -1;
}

int
RequestQueue::rowCount(RankId r, BankId b, RowId row) const
{
    int count = 0;
    for (const Request &req : entries_) {
        if (req.loc.rank == r && req.loc.bank == b && req.loc.row == row)
            ++count;
    }
    return count;
}

} // namespace dsarp
