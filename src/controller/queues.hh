/**
 * @file
 * Bounded request queue with per-bank occupancy counters.
 *
 * Requests are kept in arrival order (index 0 is the oldest) so the
 * FR-FCFS scan can honour age. The per-bank counters are what DARP's
 * out-of-order refresh monitors (paper Section 4.2.1).
 */

#ifndef DSARP_CONTROLLER_QUEUES_HH
#define DSARP_CONTROLLER_QUEUES_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "controller/request.hh"

namespace dsarp {

class RequestQueue
{
  public:
    RequestQueue(int capacity, int ranks, int banksPerRank);

    bool full() const { return size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    int size() const { return static_cast<int>(entries_.size()); }
    int capacity() const { return capacity_; }

    /** Append a request; returns false when the queue is full. */
    bool push(const Request &req);

    /** Oldest-first access. */
    const Request &at(int i) const { return entries_[i]; }

    /** Remove and return the request at index @p i. */
    Request pop(int i);

    /** Queued requests targeting a bank. */
    int bankCount(RankId r, BankId b) const
    {
        return bankCount_[r * banks_ + b];
    }

    /** Queued requests targeting a rank. */
    int rankCount(RankId r) const;

    /** First index whose request matches @p addr, or -1. */
    int findAddr(Addr addr) const;

    /** Requests queued for (rank, bank, row), e.g. row-hit bookkeeping.
     *  O(1): counts are maintained incrementally on push/pop -- this
     *  sits on the FR-FCFS fast path (row-hit and conflict-precharge
     *  decisions every arbitration tick). */
    int
    rowCount(RankId r, BankId b, RowId row) const
    {
        const auto it = rowCount_.find(rowKey(r, b, row));
        return it == rowCount_.end() ? 0 : it->second;
    }

  private:
    std::uint64_t
    rowKey(RankId r, BankId b, RowId row) const
    {
        return (static_cast<std::uint64_t>(r * banks_ + b) << 32) |
               static_cast<std::uint32_t>(row);
    }

    int capacity_;
    int banks_;
    std::vector<Request> entries_;
    std::vector<int> bankCount_;
    std::unordered_map<std::uint64_t, int> rowCount_;
};

} // namespace dsarp

#endif // DSARP_CONTROLLER_QUEUES_HH
