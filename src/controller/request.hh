/**
 * @file
 * A memory request as seen by the memory controller.
 */

#ifndef DSARP_CONTROLLER_REQUEST_HH
#define DSARP_CONTROLLER_REQUEST_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/address.hh"

namespace dsarp {

struct Request
{
    std::uint64_t id = 0;
    CoreId core = 0;
    bool isWrite = false;
    Addr addr = 0;
    DecodedAddr loc;
    Tick arrival = 0;  ///< Tick the request entered the controller.
};

} // namespace dsarp

#endif // DSARP_CONTROLLER_REQUEST_HH
