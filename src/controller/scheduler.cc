#include "controller/scheduler.hh"

#include <algorithm>

#include "common/log.hh"

namespace dsarp {

CmdChoice
FrFcfs::pick(const RequestQueue &queue, const Channel &channel, Tick now,
             const std::vector<std::uint8_t> &act_blocked_bank,
             const std::vector<std::uint8_t> &act_blocked_rank,
             int banks_per_rank)
{
    CmdChoice choice;

    // Snapshot the open rows once: under the closed-row policy most
    // banks are closed most ticks, so the row-hit scan below reduces to
    // a bitmask test per entry (and vanishes when nothing is open)
    // instead of a bank lookup per queued request.
    DSARP_ASSERT(channel.numRanks() <= kMaxRanksScan &&
                     channel.numRanks() * banks_per_rank <= kMaxBanksScan,
                 "geometry exceeds FR-FCFS scan buffers");
    const int num_ranks = channel.numRanks();
    std::uint64_t open_mask = 0;
    std::uint64_t refreshing_mask = 0;
    RowId open_rows[kMaxBanksScan];
    for (RankId r = 0; r < num_ranks; ++r) {
        const Rank &rank = channel.rank(r);
        for (BankId b = 0; b < banks_per_rank; ++b) {
            const Bank &bank = rank.bank(b);
            const int idx = r * banks_per_rank + b;
            if (bank.isOpen()) {
                open_mask |= std::uint64_t(1) << idx;
                open_rows[idx] = bank.openRow();
            }
            if (bank.refreshing(now))
                refreshing_mask |= std::uint64_t(1) << idx;
        }
    }

    // Phase 1: row hits. Oldest request whose row is open and whose
    // column command is legal right now.
    for (int i = 0; open_mask && i < queue.size(); ++i) {
        const Request &req = queue.at(i);
        const int open_idx = req.loc.rank * banks_per_rank + req.loc.bank;
        if (!(open_mask >> open_idx & 1) ||
            open_rows[open_idx] != req.loc.row) {
            continue;
        }

        // Keep the row open only if another request for it is queued;
        // otherwise auto-precharge (closed-row policy). A pending
        // blocking refresh on the bank also forces the precharge.
        const bool last_for_row =
            queue.rowCount(req.loc.rank, req.loc.bank, req.loc.row) <= 1;
        const bool blocked =
            act_blocked_bank[req.loc.rank * banks_per_rank + req.loc.bank] ||
            act_blocked_rank[req.loc.rank];
        const bool auto_pre = last_for_row || blocked;

        Command cmd;
        cmd.type = req.isWrite
            ? (auto_pre ? CommandType::kWrA : CommandType::kWr)
            : (auto_pre ? CommandType::kRdA : CommandType::kRd);
        cmd.rank = req.loc.rank;
        cmd.bank = req.loc.bank;
        cmd.row = req.loc.row;
        cmd.column = req.loc.column;
        cmd.subarray = req.loc.subarray;
        if (channel.canIssue(cmd, now)) {
            choice.valid = true;
            choice.cmd = cmd;
            choice.queueIndex = i;
            return choice;
        }
    }

    // Phase 2: the oldest request needing an ACT whose ACT is legal.
    // Rank-level legality (tRRD/tFAW) is hoisted out of the scan, and
    // each (rank, bank) pair is attempted at most once -- a younger
    // request to a bank whose oldest request cannot activate must not
    // jump ahead of it.
    bool rank_act_ok[kMaxRanksScan] = {};
    bool any_rank_ok = false;
    for (RankId r = 0; r < num_ranks; ++r) {
        rank_act_ok[r] = channel.rank(r).canActRankLevel(now);
        any_rank_ok |= rank_act_ok[r] && !act_blocked_rank[r];
    }
    std::uint64_t tried_banks = 0;
    for (int i = 0; any_rank_ok && i < queue.size(); ++i) {
        const Request &req = queue.at(i);
        const int bank_idx = req.loc.rank * banks_per_rank + req.loc.bank;
        const std::uint64_t bit = std::uint64_t(1) << bank_idx;
        if (tried_banks & bit)
            continue;
        // A refreshing bank stays eligible for younger requests: under
        // SARP they may target a different, accessible subarray.
        if (!(refreshing_mask & bit))
            tried_banks |= bit;
        if (!rank_act_ok[req.loc.rank] || act_blocked_rank[req.loc.rank] ||
            act_blocked_bank[bank_idx]) {
            continue;
        }
        if (open_mask >> bank_idx & 1)
            continue;  // Handled by phase 3 if the row is stranded.
        const Bank &bank = channel.rank(req.loc.rank).bank(req.loc.bank);
        if (!bank.canAct(now, req.loc.row))
            continue;

        Command cmd;
        cmd.type = CommandType::kAct;
        cmd.rank = req.loc.rank;
        cmd.bank = req.loc.bank;
        cmd.row = req.loc.row;
        cmd.subarray = req.loc.subarray;
        choice.valid = true;
        choice.cmd = cmd;
        choice.queueIndex = -1;
        return choice;
    }

    // Phase 3: conflict precharge. A bank can be left open for a row this
    // queue does not want -- e.g. read row hits stranded by writeback
    // mode, or a plain-RD stream whose tail was served elsewhere. Close
    // it so the waiting request can activate next cycle. Scanning the
    // oldest few requests is enough: this is a liveness path, not a
    // throughput path, and rowCount makes it quadratic otherwise.
    const int phase3_limit = std::min(queue.size(), 16);
    for (int i = 0; i < phase3_limit; ++i) {
        const Request &req = queue.at(i);
        const Bank &bank = channel.rank(req.loc.rank).bank(req.loc.bank);
        if (!bank.isOpen() || bank.openRow() == req.loc.row)
            continue;
        if (queue.rowCount(req.loc.rank, req.loc.bank, bank.openRow()) > 0)
            continue;  // This queue still has hits for the open row.

        Command cmd;
        cmd.type = CommandType::kPre;
        cmd.rank = req.loc.rank;
        cmd.bank = req.loc.bank;
        if (channel.canIssue(cmd, now)) {
            choice.valid = true;
            choice.cmd = cmd;
            choice.queueIndex = -1;
            return choice;
        }
    }

    return choice;
}

} // namespace dsarp
