/**
 * @file
 * FR-FCFS command selection (Rixner et al., ISCA 2000) with the paper's
 * closed-row policy.
 *
 * Priority: (1) the oldest request whose row is already open and whose
 * column command is legal this cycle -- issued with auto-precharge when it
 * is the last queued request for that row; (2) the oldest request whose
 * bank is closed and whose ACT is legal. ACTs to banks (or ranks) with a
 * blocking refresh pending are suppressed so the target can drain.
 */

#ifndef DSARP_CONTROLLER_SCHEDULER_HH
#define DSARP_CONTROLLER_SCHEDULER_HH

#include <vector>

#include "common/types.hh"
#include "controller/queues.hh"
#include "dram/channel.hh"
#include "dram/command.hh"

namespace dsarp {

/** Outcome of one FR-FCFS pick. */
struct CmdChoice
{
    bool valid = false;
    Command cmd;
    /** Queue index of the serviced request; -1 for ACT (request stays). */
    int queueIndex = -1;
};

class FrFcfs
{
  public:
    /** Scan-buffer bounds: ranks per channel and (rank, bank) pairs. */
    static constexpr int kMaxRanksScan = 8;
    static constexpr int kMaxBanksScan = 64;

    /**
     * Select the next command for @p queue.
     *
     * @param actBlockedBank per-(rank,bank) flags: suppress new ACTs.
     * @param actBlockedRank per-rank flags (all-bank refresh pending).
     */
    static CmdChoice pick(const RequestQueue &queue, const Channel &channel,
                          Tick now,
                          const std::vector<std::uint8_t> &actBlockedBank,
                          const std::vector<std::uint8_t> &actBlockedRank,
                          int banksPerRank);
};

} // namespace dsarp

#endif // DSARP_CONTROLLER_SCHEDULER_HH
