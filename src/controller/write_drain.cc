#include "controller/write_drain.hh"

#include "common/log.hh"

namespace dsarp {

WriteDrain::WriteDrain(int high_watermark, int low_watermark)
    : high_(high_watermark), low_(low_watermark)
{
    DSARP_ASSERT(low_ < high_, "watermarks inverted");
}

void
WriteDrain::update(int write_queue_size)
{
    if (!active_ && write_queue_size >= high_) {
        active_ = true;
        ++batches_;
    } else if (active_ && write_queue_size <= low_) {
        active_ = false;
    }
}

} // namespace dsarp
