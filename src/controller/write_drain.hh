/**
 * @file
 * Write-batching (writeback mode) hysteresis.
 *
 * Modern controllers buffer writes and drain them in batches to amortize
 * the bus-turnaround penalty (paper Section 4.2.2): the channel enters
 * writeback mode when write-queue occupancy reaches the high watermark
 * and leaves when it falls to the low watermark. While active, the
 * channel serves only writes. DARP's write-refresh parallelization keys
 * off this state.
 */

#ifndef DSARP_CONTROLLER_WRITE_DRAIN_HH
#define DSARP_CONTROLLER_WRITE_DRAIN_HH

#include <cstdint>

namespace dsarp {

class WriteDrain
{
  public:
    WriteDrain(int highWatermark, int lowWatermark);

    /** Re-evaluate the mode against the current write-queue occupancy. */
    void update(int writeQueueSize);

    bool active() const { return active_; }

    /** Number of times writeback mode was entered. */
    std::uint64_t batches() const { return batches_; }

  private:
    int high_;
    int low_;
    bool active_ = false;
    std::uint64_t batches_ = 0;
};

} // namespace dsarp

#endif // DSARP_CONTROLLER_WRITE_DRAIN_HH
