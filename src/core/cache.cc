#include "core/cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace dsarp {

CacheSlice::CacheSlice(int size_bytes, int ways, int line_bytes)
    : lineBytes_(line_bytes), ways_(ways)
{
    DSARP_ASSERT(ways > 0 && line_bytes > 0, "bad cache shape");
    sets_ = size_bytes / (ways * line_bytes);
    DSARP_ASSERT(sets_ > 0, "cache too small for its associativity");
    lines_.assign(static_cast<std::size_t>(sets_) * ways_, Line{});
}

CacheSlice::AccessResult
CacheSlice::access(Addr addr, bool is_write)
{
    AccessResult res;
    const Addr line_addr = addr / lineBytes_;
    const int set = static_cast<int>(line_addr % sets_);
    const Addr tag = line_addr / sets_;
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];

    ++useClock_;

    for (int w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            line.dirty = line.dirty || is_write;
            ++hits_;
            res.hit = true;
            return res;
        }
    }

    // Miss: prefer an invalid way, otherwise evict the LRU line.
    int victim = 0;
    for (int w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lastUse < base[victim].lastUse)
            victim = w;
    }

    ++misses_;
    Line &line = base[victim];
    if (line.valid && line.dirty) {
        res.writeback = true;
        res.victimAddr = (line.tag * sets_ + set) * lineBytes_;
        ++writebacks_;
    }
    line.valid = true;
    line.tag = tag;
    line.dirty = is_write;
    line.lastUse = useClock_;
    return res;
}

bool
CacheSlice::contains(Addr addr) const
{
    const Addr line_addr = addr / lineBytes_;
    const int set = static_cast<int>(line_addr % sets_);
    const Addr tag = line_addr / sets_;
    const Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (int w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

CacheFilteredTrace::CacheFilteredTrace(TraceSource &raw, CacheSlice &cache,
                                       double write_probability,
                                       std::uint64_t seed)
    : raw_(raw), cache_(cache), writeProbability_(write_probability),
      rng_(seed)
{
}

TraceRecord
CacheFilteredTrace::next()
{
    long accumulated_gap = 0;
    for (;;) {
        TraceRecord rec = raw_.next();
        accumulated_gap += rec.gap;
        const bool is_write = rng_.chance(writeProbability_);
        const CacheSlice::AccessResult res =
            cache_.access(rec.readAddr, is_write);
        if (res.hit) {
            // A hit is just another (fast) instruction.
            accumulated_gap += 1;
            continue;
        }
        TraceRecord out;
        out.gap = static_cast<int>(
            std::min<long>(accumulated_gap, 1 << 20));
        out.readAddr = rec.readAddr;
        out.hasWriteback = res.writeback;
        out.writebackAddr = res.victimAddr;
        return out;
    }
}

} // namespace dsarp
