/**
 * @file
 * Last-level cache slice and a cache-filtered trace adapter.
 *
 * Table 1 gives each core a private 512 KB, 16-way, 64 B-line LLC slice.
 * CacheSlice is a plain LRU writeback model; CacheFilteredTrace wraps a
 * raw *access* trace and emits only the misses (with genuine dirty
 * evictions as writebacks), demonstrating the full core->LLC->DRAM path.
 * The calibrated workloads drive miss streams directly (DESIGN.md §5).
 */

#ifndef DSARP_CORE_CACHE_HH
#define DSARP_CORE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/trace.hh"

namespace dsarp {

class CacheSlice
{
  public:
    CacheSlice(int sizeBytes, int ways, int lineBytes);

    struct AccessResult
    {
        bool hit = false;
        bool writeback = false;  ///< A dirty victim was evicted.
        Addr victimAddr = 0;
    };

    /** Look up @p addr; on a miss the line is filled (LRU victim). */
    AccessResult access(Addr addr, bool isWrite);

    /** True if the line is currently resident (no state change). */
    bool contains(Addr addr) const;

    int numSets() const { return sets_; }
    int numWays() const { return ways_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    int lineBytes_;
    int sets_;
    int ways_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

/**
 * Adapts a raw access-level trace into the miss-level stream the core
 * model consumes: hits fold into the instruction gap, misses become
 * records, and writebacks come from real dirty evictions.
 */
class CacheFilteredTrace : public TraceSource
{
  public:
    CacheFilteredTrace(TraceSource &raw, CacheSlice &cache,
                       double writeProbability, std::uint64_t seed);

    TraceRecord next() override;

  private:
    TraceSource &raw_;
    CacheSlice &cache_;
    double writeProbability_;
    Rng rng_;
};

} // namespace dsarp

#endif // DSARP_CORE_CACHE_HH
