#include "core/core.hh"

#include <algorithm>

#include "common/log.hh"

namespace dsarp {

Core::Core(CoreId id, const CoreConfig *cfg, TraceSource *trace)
    : id_(id), cfg_(cfg), trace_(trace),
      nextLoadId_((static_cast<std::uint64_t>(id) << 48) + 1)
{
}

void
Core::bind(SendRead send_read, SendWrite send_write)
{
    sendRead_ = std::move(send_read);
    sendWrite_ = std::move(send_write);
}

void
Core::onReadComplete(std::uint64_t id)
{
    completed_.insert(id);
    --outstanding_;
    DSARP_ASSERT(outstanding_ >= 0, "read completion underflow");
}

void
Core::resetStats()
{
    stats_ = CoreStats{};
}

void
Core::fetch()
{
    while (windowInstrs_ < cfg_->windowSize) {
        if (!havePending_) {
            pending_ = trace_->next();
            havePending_ = true;
            pendingGapLeft_ = pending_.gap;
            writebackSent_ = false;
        }

        if (pendingGapLeft_ > 0) {
            const int take =
                std::min(pendingGapLeft_, cfg_->windowSize - windowInstrs_);
            if (!window_.empty() && !window_.back().isLoad) {
                window_.back().instrs += take;
            } else {
                window_.push_back({false, 0, take});
            }
            windowInstrs_ += take;
            pendingGapLeft_ -= take;
            continue;
        }

        // The record's read. Its writeback (dirty eviction) goes out
        // first, fire-and-forget; a full write queue stalls fetch.
        if (pending_.hasWriteback && !writebackSent_) {
            if (!sendWrite_(pending_.writebackAddr))
                return;
            writebackSent_ = true;
            ++stats_.writebacksIssued;
        }
        if (outstanding_ >= cfg_->mshrs)
            return;
        const std::uint64_t load_id = nextLoadId_++;
        if (!sendRead_(load_id, pending_.readAddr))
            return;
        ++outstanding_;
        ++stats_.readsIssued;
        window_.push_back({true, load_id, 1});
        windowInstrs_ += 1;
        havePending_ = false;
    }
}

void
Core::retire()
{
    int budget = cfg_->retireWidth;
    while (budget > 0 && !window_.empty()) {
        WindowEntry &head = window_.front();
        if (head.isLoad) {
            auto it = completed_.find(head.loadId);
            if (it == completed_.end()) {
                ++stats_.readStallCycles;
                return;  // Oldest instruction is a pending load: stall.
            }
            completed_.erase(it);
            window_.pop_front();
            windowInstrs_ -= 1;
            stats_.instructionsRetired += 1;
            budget -= 1;
        } else {
            const int take = std::min(budget, head.instrs);
            head.instrs -= take;
            windowInstrs_ -= take;
            stats_.instructionsRetired += take;
            budget -= take;
            if (head.instrs == 0)
                window_.pop_front();
        }
    }
}

void
Core::tick()
{
    for (int c = 0; c < cfg_->cpuCyclesPerTick; ++c) {
        ++stats_.cpuCycles;
        retire();
        fetch();
    }
}

} // namespace dsarp
