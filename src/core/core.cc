#include "core/core.hh"

#include <algorithm>

#include "common/log.hh"

namespace dsarp {

Core::Core(CoreId id, const CoreConfig *cfg, TraceSource *trace)
    : id_(id), cfg_(cfg), trace_(trace),
      nextLoadId_((static_cast<std::uint64_t>(id) << 48) + 1)
{
}

void
Core::bind(SendRead send_read, SendWrite send_write)
{
    sendRead_ = std::move(send_read);
    sendWrite_ = std::move(send_write);
}

void
Core::onReadComplete(std::uint64_t id)
{
    completed_.insert(id);
    --outstanding_;
    DSARP_ASSERT(outstanding_ >= 0, "read completion underflow");
}

void
Core::resetStats()
{
    stats_ = CoreStats{};
}

void
Core::fetch()
{
    while (windowInstrs_ < cfg_->windowSize) {
        if (!havePending_) {
            pending_ = trace_->next();
            havePending_ = true;
            pendingGapLeft_ = pending_.gap;
            writebackSent_ = false;
        }

        if (pendingGapLeft_ > 0) {
            const int take =
                std::min(pendingGapLeft_, cfg_->windowSize - windowInstrs_);
            if (!window_.empty() && !window_.back().isLoad) {
                window_.back().instrs += take;
            } else {
                window_.push_back({false, 0, take});
            }
            windowInstrs_ += take;
            pendingGapLeft_ -= take;
            continue;
        }

        // The record's read. Its writeback (dirty eviction) goes out
        // first, fire-and-forget; a full write queue stalls fetch.
        if (pending_.hasWriteback && !writebackSent_) {
            if (!sendWrite_(pending_.writebackAddr))
                return;
            writebackSent_ = true;
            ++stats_.writebacksIssued;
        }
        if (outstanding_ >= cfg_->mshrs)
            return;
        const std::uint64_t load_id = nextLoadId_++;
        if (!sendRead_(load_id, pending_.readAddr))
            return;
        ++outstanding_;
        ++stats_.readsIssued;
        window_.push_back({true, load_id, 1});
        windowInstrs_ += 1;
        havePending_ = false;
    }
}

void
Core::retire()
{
    int budget = cfg_->retireWidth;
    while (budget > 0 && !window_.empty()) {
        WindowEntry &head = window_.front();
        if (head.isLoad) {
            auto it = completed_.find(head.loadId);
            if (it == completed_.end()) {
                ++stats_.readStallCycles;
                return;  // Oldest instruction is a pending load: stall.
            }
            completed_.erase(it);
            window_.pop_front();
            windowInstrs_ -= 1;
            stats_.instructionsRetired += 1;
            budget -= 1;
        } else {
            const int take = std::min(budget, head.instrs);
            head.instrs -= take;
            windowInstrs_ -= take;
            stats_.instructionsRetired += take;
            budget -= take;
            if (head.instrs == 0)
                window_.pop_front();
        }
    }
}

void
Core::tick()
{
    // Snapshot every field retire()/fetch() can move except the pure
    // stall/cycle counters: if none changed, this tick was inert and
    // the event engine may skip ahead (see nextWake()).
    const std::uint64_t retired_before = stats_.instructionsRetired;
    const std::uint64_t reads_before = stats_.readsIssued;
    const std::uint64_t wb_before = stats_.writebacksIssued;
    const int window_before = windowInstrs_;
    const bool have_pending_before = havePending_;
    const int gap_before = pendingGapLeft_;
    const bool wb_sent_before = writebackSent_;

    for (int c = 0; c < cfg_->cpuCyclesPerTick; ++c) {
        ++stats_.cpuCycles;
        retire();
        fetch();
    }

    const bool progress =
        retired_before != stats_.instructionsRetired ||
        reads_before != stats_.readsIssued ||
        wb_before != stats_.writebacksIssued ||
        window_before != windowInstrs_ ||
        have_pending_before != havePending_ ||
        gap_before != pendingGapLeft_ || wb_sent_before != writebackSent_;
    mode_ = progress ? TickMode::kActive : TickMode::kStalled;
    streamTicks_ = 0;

    // Gap-streaming certificate: with a full window whose head and
    // tail are non-load batches and a deep non-memory gap still
    // pending, every following tick retires exactly retireWidth x
    // cpuCyclesPerTick gap instructions from the head and refetches as
    // many at the tail -- pure linear motion with no memory traffic,
    // no trace advance and no stalls, so the event engine may replay
    // the whole span in skipTicks(). The span is cut one tick short of
    // any boundary (head batch or pending gap running low) so every
    // skipped tick stays strictly in this regime.
    if (progress && windowInstrs_ == cfg_->windowSize && havePending_ &&
        !window_.empty() && !window_.front().isLoad &&
        !window_.back().isLoad) {
        const int rate = cfg_->retireWidth * cfg_->cpuCyclesPerTick;
        std::int64_t span = pendingGapLeft_ / rate - 1;
        if (window_.size() > 1)
            span = std::min<std::int64_t>(
                span, window_.front().instrs / rate - 1);
        if (span > 0) {
            mode_ = TickMode::kStreaming;
            streamTicks_ = static_cast<Tick>(span);
        }
    }
}

Tick
Core::nextWake(Tick now) const
{
    switch (mode_) {
    case TickMode::kActive:
        return now;
    case TickMode::kStalled:
        return kTickNever;
    case TickMode::kStreaming:
        return now + streamTicks_ + 1;
    }
    return now;
}

void
Core::skipTicks(Tick ticks)
{
    const std::uint64_t cycles =
        ticks * static_cast<std::uint64_t>(cfg_->cpuCyclesPerTick);
    stats_.cpuCycles += cycles;

    if (mode_ == TickMode::kStreaming) {
        DSARP_ASSERT(ticks <= streamTicks_,
                     "skip span exceeds streaming certificate");
        const int drained = static_cast<int>(
            ticks * static_cast<std::uint64_t>(cfg_->retireWidth *
                                               cfg_->cpuCyclesPerTick));
        stats_.instructionsRetired += static_cast<std::uint64_t>(drained);
        pendingGapLeft_ -= drained;
        if (window_.size() > 1) {
            window_.front().instrs -= drained;
            window_.back().instrs += drained;
        }
        return;
    }

    if (!window_.empty() && window_.front().isLoad &&
        completed_.find(window_.front().loadId) == completed_.end()) {
        stats_.readStallCycles += cycles;
    }
}

} // namespace dsarp
