/**
 * @file
 * Trace-driven core model (paper Table 1): 4 GHz, 3-wide retire,
 * 128-entry instruction window, 8 MSHRs.
 *
 * The window retires up to retireWidth instructions per CPU cycle in
 * order; a read at the window head blocks retirement until its data
 * returns (reads are latency-critical). Writebacks are fire-and-forget
 * into the memory controller's write queue (DRAM writes are not
 * latency-critical, Section 4.2.2) -- the core only stalls on them when
 * the write queue is full.
 */

#ifndef DSARP_CORE_CORE_HH
#define DSARP_CORE_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "common/config.hh"
#include "common/types.hh"
#include "core/trace.hh"

namespace dsarp {

struct CoreStats
{
    std::uint64_t instructionsRetired = 0;
    std::uint64_t cpuCycles = 0;
    std::uint64_t readsIssued = 0;
    std::uint64_t writebacksIssued = 0;
    std::uint64_t readStallCycles = 0;  ///< Retire blocked on a load.

    double
    ipc() const
    {
        return cpuCycles
            ? static_cast<double>(instructionsRetired) / cpuCycles
            : 0.0;
    }
};

class Core
{
  public:
    /** Returns false when the memory system cannot accept the request. */
    using SendRead = std::function<bool(std::uint64_t id, Addr addr)>;
    using SendWrite = std::function<bool(Addr addr)>;

    Core(CoreId id, const CoreConfig *cfg, TraceSource *trace);

    void bind(SendRead sendRead, SendWrite sendWrite);

    /** Advance cpuCyclesPerTick CPU cycles. */
    void tick();

    /**
     * Earliest tick strictly after @p now at which this core could do
     * more than linearly replayable work. A fully blocked core
     * (pending-load head or stalled fetch) waits on controller-side
     * events, which only fire at controller wakes -- where the core
     * ticks again. A core streaming non-memory gap instructions at the
     * fixed retire rate certifies the whole linear span (see tick()).
     * Any other progress forces the one-tick step.
     */
    Tick nextWake(Tick now) const;

    /**
     * Account @p ticks skipped ticks for the event-driven engine,
     * replaying exactly what the certified-inert (or certified-linear)
     * ticks would have done: a blocked core advances the cycle counter
     * and, iff the window head is a pending load, the read-stall
     * counter; a gap-streaming core additionally retires and refills
     * retireWidth x cpuCyclesPerTick instructions per tick.
     */
    void skipTicks(Tick ticks);

    /** Read data for request @p id has returned. */
    void onReadComplete(std::uint64_t id);

    /** Zero the measurement counters (state is preserved). */
    void resetStats();

    CoreId id() const { return id_; }
    const CoreStats &stats() const { return stats_; }
    int outstandingReads() const { return outstanding_; }

  private:
    void fetch();
    void retire();

    struct WindowEntry
    {
        bool isLoad = false;
        std::uint64_t loadId = 0;
        int instrs = 0;  ///< For non-load batches.
    };

    CoreId id_;
    const CoreConfig *cfg_;
    TraceSource *trace_;
    SendRead sendRead_;
    SendWrite sendWrite_;

    std::deque<WindowEntry> window_;
    int windowInstrs_ = 0;
    int outstanding_ = 0;
    std::unordered_set<std::uint64_t> completed_;

    TraceRecord pending_;
    bool havePending_ = false;
    int pendingGapLeft_ = 0;
    bool writebackSent_ = false;

    std::uint64_t nextLoadId_;
    CoreStats stats_;

    /** How the last tick() ended, deciding nextWake()/skipTicks(). */
    enum class TickMode
    {
        kActive,     ///< Non-linear progress: step one tick.
        kStalled,    ///< Blocked: only stall/cycle counters move.
        kStreaming,  ///< Draining gap instrs at the fixed retire rate.
    };
    TickMode mode_ = TickMode::kActive;
    Tick streamTicks_ = 0;  ///< Certified linear span (kStreaming).
};

} // namespace dsarp

#endif // DSARP_CORE_CORE_HH
