#include "core/trace.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace dsarp {

SyntheticTrace::SyntheticTrace(const TraceProfile &profile,
                               const AddressMap &map, CoreId core_id,
                               int core_partitions, std::uint64_t seed)
    : profile_(profile), map_(map),
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * (core_id + 1)))
{
    DSARP_ASSERT(profile.mpki > 0.0, "MPKI must be positive");
    const MemOrg &org = map.org();
    const int region = org.rowsPerBank / std::max(core_partitions, 1);
    rowBase_ = core_id % std::max(core_partitions, 1) * region;
    rowSpan_ = std::min(profile.footprintRows, region);
    if (rowSpan_ < 1)
        rowSpan_ = 1;
    meanGap_ = 1000.0 / profile.mpki;
    jump();
}

void
SyntheticTrace::jump()
{
    const MemOrg &org = map_.org();
    cursor_.channel = static_cast<ChannelId>(rng_.below(org.channels));
    cursor_.rank = static_cast<RankId>(rng_.below(org.ranksPerChannel));
    cursor_.bank = static_cast<BankId>(rng_.below(org.banksPerRank));
    cursor_.row = rowBase_ + static_cast<RowId>(rng_.below(rowSpan_));
    cursor_.column = static_cast<int>(rng_.below(org.columns()));
    cursor_.subarray = cursor_.row / org.rowsPerSubarray();
}

Addr
SyntheticTrace::randomLine()
{
    const MemOrg &org = map_.org();
    DecodedAddr d;
    d.channel = static_cast<ChannelId>(rng_.below(org.channels));
    d.rank = static_cast<RankId>(rng_.below(org.ranksPerChannel));
    d.bank = static_cast<BankId>(rng_.below(org.banksPerRank));
    d.row = rowBase_ + static_cast<RowId>(rng_.below(rowSpan_));
    d.column = static_cast<int>(rng_.below(org.columns()));
    return map_.encode(d);
}

TraceRecord
SyntheticTrace::next()
{
    TraceRecord rec;

    // Exponentially distributed instruction gap with the profile's mean,
    // matching the bursty arrival behaviour of cache-filtered streams.
    const double u = std::max(rng_.uniform(), 1e-12);
    rec.gap = static_cast<int>(-meanGap_ * std::log(u));

    if (profile_.randomAccess || !rng_.chance(profile_.rowLocality)) {
        jump();
    } else {
        // Continue streaming through the current row.
        const MemOrg &org = map_.org();
        if (++cursor_.column >= org.columns()) {
            cursor_.column = 0;
            cursor_.row = rowBase_ + (cursor_.row - rowBase_ + 1) % rowSpan_;
            cursor_.subarray = cursor_.row / org.rowsPerSubarray();
        }
    }
    rec.readAddr = map_.encode(cursor_);

    if (rng_.chance(profile_.writebackFraction)) {
        rec.hasWriteback = true;
        rec.writebackAddr = randomLine();
    }
    return rec;
}

} // namespace dsarp
