/**
 * @file
 * Memory trace records and synthetic trace generation.
 *
 * The core model is trace-driven in the style of the paper's Pin-based
 * front end: a trace is an infinite stream of records, each carrying the
 * number of non-memory instructions preceding one memory read (an LLC
 * miss) and, optionally, the dirty-eviction writeback that miss caused.
 *
 * SyntheticTrace is the statistical substitute for the paper's SPEC
 * CPU2006 / STREAM / TPC / HPCC traces (see DESIGN.md Section 5): a
 * profile fixes the miss rate (MPKI), row-buffer locality, writeback
 * fraction, and footprint, which are the stream properties that determine
 * refresh/access interference.
 */

#ifndef DSARP_CORE_TRACE_HH
#define DSARP_CORE_TRACE_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/address.hh"

namespace dsarp {

struct TraceRecord
{
    int gap = 0;  ///< Non-memory instructions before the read.
    Addr readAddr = 0;
    bool hasWriteback = false;
    Addr writebackAddr = 0;
};

/** Infinite stream of trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    virtual TraceRecord next() = 0;
};

/** Statistical properties of one synthetic benchmark. */
struct TraceProfile
{
    double mpki = 10.0;           ///< LLC-miss reads per kilo-instruction.
    double rowLocality = 0.5;     ///< P(continue walking the current row).
    double writebackFraction = 0.3;  ///< P(miss evicts a dirty line).
    int footprintRows = 512;      ///< Rows per bank in the working set.
    bool randomAccess = false;    ///< HPCC-style: every access jumps.
};

class SyntheticTrace : public TraceSource
{
  public:
    /**
     * @param coreId / @p corePartitions  private row-region selection:
     * core i touches rows [i, i + footprint) * rowsPerBank/partitions.
     */
    SyntheticTrace(const TraceProfile &profile, const AddressMap &map,
                   CoreId coreId, int corePartitions, std::uint64_t seed);

    TraceRecord next() override;

    const TraceProfile &profile() const { return profile_; }

  private:
    Addr randomLine();
    void jump();

    TraceProfile profile_;
    const AddressMap &map_;
    Rng rng_;

    RowId rowBase_;   ///< First row of this core's private region.
    int rowSpan_;     ///< Usable rows in the region.
    double meanGap_;

    DecodedAddr cursor_;  ///< Current streaming position.
};

} // namespace dsarp

#endif // DSARP_CORE_TRACE_HH
