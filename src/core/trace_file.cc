#include "core/trace_file.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace dsarp {

TraceFileSource::TraceFileSource(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DSARP_FATAL("cannot open trace file");

    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments and whitespace-only lines.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        bool blank = true;
        for (char c : line) {
            if (!std::isspace(static_cast<unsigned char>(c)))
                blank = false;
        }
        if (blank)
            continue;

        std::istringstream fields(line);
        TraceRecord rec;
        std::string read_hex, wb_hex;
        if (!(fields >> rec.gap >> read_hex)) {
            std::fprintf(stderr, "trace %s:%d malformed\n", path.c_str(),
                         lineno);
            DSARP_FATAL("malformed trace line");
        }
        rec.readAddr =
            static_cast<Addr>(std::stoull(read_hex, nullptr, 16));
        if (fields >> wb_hex) {
            rec.hasWriteback = true;
            rec.writebackAddr =
                static_cast<Addr>(std::stoull(wb_hex, nullptr, 16));
        }
        if (rec.gap < 0)
            DSARP_FATAL("negative gap in trace");
        records_.push_back(rec);
    }
    if (records_.empty())
        DSARP_FATAL("trace file has no records");
}

TraceFileSource::TraceFileSource(std::vector<TraceRecord> records)
    : records_(std::move(records))
{
    DSARP_ASSERT(!records_.empty(), "empty programmatic trace");
}

TraceRecord
TraceFileSource::next()
{
    const TraceRecord rec = records_[cursor_];
    if (++cursor_ >= records_.size()) {
        cursor_ = 0;
        ++loops_;
    }
    return rec;
}

void
TraceFileSource::write(const std::string &path,
                       const std::vector<TraceRecord> &records)
{
    std::ofstream out(path);
    if (!out)
        DSARP_FATAL("cannot write trace file");
    out << "# dsarp trace: gap readAddr [writebackAddr]\n";
    for (const TraceRecord &rec : records) {
        out << rec.gap << " " << std::hex << rec.readAddr;
        if (rec.hasWriteback)
            out << " " << rec.writebackAddr;
        out << std::dec << "\n";
    }
}

} // namespace dsarp
