#include "core/trace_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace dsarp {

namespace {

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::uint64_t
parseTraceHex(const std::string &token, const char *what,
              const std::string &path, int lineno)
{
    std::size_t i = 0;
    if (token.size() >= 2 && token[0] == '0' &&
        (token[1] == 'x' || token[1] == 'X')) {
        i = 2;
    }
    if (i >= token.size()) {
        DSARP_FATALF("malformed trace line: %s '%s' is not a hex "
                     "address (%s:%d)",
                     what, token.c_str(), path.c_str(), lineno);
    }
    std::uint64_t value = 0;
    int significant = 0;
    for (; i < token.size(); ++i) {
        const int d = hexDigit(token[i]);
        if (d < 0) {
            DSARP_FATALF("malformed trace line: %s '%s' has a non-hex "
                         "character '%c' (%s:%d)",
                         what, token.c_str(), token[i], path.c_str(),
                         lineno);
        }
        if (significant > 0 || d != 0)
            ++significant;
        if (significant > 16) {
            DSARP_FATALF("malformed trace line: %s '%s' exceeds 64 "
                         "bits (%s:%d)",
                         what, token.c_str(), path.c_str(), lineno);
        }
        value = value * 16 + static_cast<std::uint64_t>(d);
    }
    return value;
}

TraceFileSource::TraceFileSource(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DSARP_FATALF("cannot open trace file '%s'", path.c_str());
    *this = TraceFileSource(in, path);
}

TraceFileSource::TraceFileSource(std::istream &in, const std::string &path)
{
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments and whitespace-only lines.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::vector<std::string> tokens;
        std::string tok;
        while (fields >> tok)
            tokens.push_back(tok);
        if (tokens.empty())
            continue;

        if (tokens.size() < 2 || tokens.size() > 3) {
            DSARP_FATALF("malformed trace line: expected 'gap "
                         "readAddrHex [writebackAddrHex]', got %zu "
                         "field(s) (%s:%d)",
                         tokens.size(), path.c_str(), lineno);
        }
        TraceRecord rec;
        char *end = nullptr;
        errno = 0;
        const long long gap = std::strtoll(tokens[0].c_str(), &end, 10);
        if (end == tokens[0].c_str() || *end != '\0' || errno == ERANGE ||
            gap < 0) {
            DSARP_FATALF("malformed trace line: gap '%s' is not a "
                         "non-negative integer (%s:%d)",
                         tokens[0].c_str(), path.c_str(), lineno);
        }
        rec.gap = gap;
        rec.readAddr = static_cast<Addr>(
            parseTraceHex(tokens[1], "read address", path, lineno));
        if (tokens.size() == 3) {
            rec.hasWriteback = true;
            rec.writebackAddr = static_cast<Addr>(parseTraceHex(
                tokens[2], "writeback address", path, lineno));
        }
        records_.push_back(rec);
    }
    if (records_.empty())
        DSARP_FATALF("trace file '%s' has no records", path.c_str());
}

TraceFileSource::TraceFileSource(std::vector<TraceRecord> records)
    : records_(std::move(records))
{
    DSARP_ASSERT(!records_.empty(), "empty programmatic trace");
}

TraceRecord
TraceFileSource::next()
{
    const TraceRecord rec = records_[cursor_];
    if (++cursor_ >= records_.size()) {
        cursor_ = 0;
        ++loops_;
    }
    return rec;
}

void
TraceFileSource::write(const std::string &path,
                       const std::vector<TraceRecord> &records)
{
    std::ofstream out(path);
    if (!out)
        DSARP_FATAL("cannot write trace file");
    out << "# dsarp trace: gap readAddr [writebackAddr]\n";
    for (const TraceRecord &rec : records) {
        out << rec.gap << " " << std::hex << rec.readAddr;
        if (rec.hasWriteback)
            out << " " << rec.writebackAddr;
        out << std::dec << "\n";
    }
}

} // namespace dsarp
