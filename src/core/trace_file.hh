/**
 * @file
 * File-backed traces.
 *
 * Downstream users with real miss traces (e.g. Pin- or simulator-
 * generated, like the paper's) can replay them instead of the synthetic
 * generators. The format is line-oriented text:
 *
 *     # comment
 *     <gap> <readAddrHex> [<writebackAddrHex>]
 *
 * gap is the number of non-memory instructions before the read;
 * addresses are hex with or without the 0x prefix. The trace loops when
 * it reaches the end (the core model expects an infinite stream), which
 * matches the paper's fixed-cycle-count methodology.
 */

#ifndef DSARP_CORE_TRACE_FILE_HH
#define DSARP_CORE_TRACE_FILE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/trace.hh"

namespace dsarp {

/**
 * Checked hex parse for trace address fields: optional 0x/0X prefix,
 * hex digits only (no sign, no trailing junk), must fit in 64 bits.
 * Fatal with a named error carrying @p path and @p lineno context;
 * @p what names the offending field in the message.
 */
std::uint64_t parseTraceHex(const std::string &token, const char *what,
                            const std::string &path, int lineno);

class TraceFileSource : public TraceSource
{
  public:
    /** Load a trace file; fatal on unreadable files or malformed lines. */
    explicit TraceFileSource(const std::string &path);

    /**
     * Parse trace lines from @p in; @p name labels malformed-line
     * errors the way a path would. The parsing layer of the path
     * constructor with the I/O separated, so tests and the fuzz
     * harnesses can drive it from memory.
     */
    TraceFileSource(std::istream &in, const std::string &name);

    /** Build from in-memory records (testing, programmatic traces). */
    explicit TraceFileSource(std::vector<TraceRecord> records);

    TraceRecord next() override;

    std::size_t size() const { return records_.size(); }

    /** Number of times the trace has wrapped around. */
    std::uint64_t loops() const { return loops_; }

    /** Serialize records to @p path in the same format. */
    static void write(const std::string &path,
                      const std::vector<TraceRecord> &records);

  private:
    std::vector<TraceRecord> records_;
    std::size_t cursor_ = 0;
    std::uint64_t loops_ = 0;
};

} // namespace dsarp

#endif // DSARP_CORE_TRACE_FILE_HH
