#include "dram/address.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"
#include "common/strings.hh"

namespace dsarp {

AddressMap::AddressMap(const MemOrg &org) : org_(org)
{
    // columns() x columnBytes() == rowBytes, so capacity is independent
    // of the mapping granularity.
    capacity_ = static_cast<Addr>(org.columnBytes()) * org.channels *
        org.columns() * org.banksPerRank * org.ranksPerChannel *
        org.rowsPerBank;
}

void
AddressMap::checkCoords(const DecodedAddr &d) const
{
    DSARP_ASSERT(d.channel >= 0 && d.channel < org_.channels, "bad channel");
    DSARP_ASSERT(d.rank >= 0 && d.rank < org_.ranksPerChannel, "bad rank");
    DSARP_ASSERT(d.bank >= 0 && d.bank < org_.banksPerRank, "bad bank");
    DSARP_ASSERT(d.row >= 0 && d.row < org_.rowsPerBank, "bad row");
    DSARP_ASSERT(d.column >= 0 && d.column < org_.columns(), "bad column");
}

DecodedAddr
AddressMap::decode(Addr addr) const
{
    DSARP_ASSERT(addr < capacity_, "address beyond mapped capacity");

    // The mapping unit is one DRAM column: a full spec burst, which is
    // a cache line on DDR3/DDR4 but two lines on LPDDR4 (BL16).
    Addr x = addr / org_.columnBytes();

    DecodedAddr d;
    d.channel = static_cast<ChannelId>(x % org_.channels);
    x /= org_.channels;
    d.column = static_cast<int>(x % org_.columns());
    x /= org_.columns();
    d.bank = static_cast<BankId>(x % org_.banksPerRank);
    x /= org_.banksPerRank;
    d.rank = static_cast<RankId>(x % org_.ranksPerChannel);
    x /= org_.ranksPerChannel;
    d.row = static_cast<RowId>(x);
    d.subarray = d.row / org_.rowsPerSubarray();
    return d;
}

Addr
AddressMap::encode(const DecodedAddr &d) const
{
    checkCoords(d);

    Addr x = static_cast<Addr>(d.row);
    x = x * org_.ranksPerChannel + d.rank;
    x = x * org_.banksPerRank + d.bank;
    x = x * org_.columns() + d.column;
    x = x * org_.channels + d.channel;
    return x * org_.columnBytes();
}

AddressMapRegistry &
AddressMapRegistry::instance()
{
    static AddressMapRegistry registry;
    return registry;
}

bool
AddressMapRegistry::add(AddressMapInfo info,
                        std::vector<std::string> aliases)
{
    DSARP_ASSERT(!info.name.empty(), "address map needs a name");
    DSARP_ASSERT(info.make != nullptr, "address map needs a factory");

    const std::lock_guard<std::mutex> lock(mutex_);
    aliases.push_back(info.name);
    const std::size_t slot = entries_.size();
    entries_.push_back(std::move(info));
    for (const std::string &alias : aliases) {
        const auto [it, inserted] = index_.emplace(lowered(alias), slot);
        (void)it;
        if (!inserted) {
            std::fprintf(stderr,
                         "address map name '%s' registered twice\n",
                         alias.c_str());
            std::abort();
        }
    }
    return true;
}

const AddressMapInfo *
AddressMapRegistry::findLocked(const std::string &name) const
{
    const auto it = index_.find(lowered(name));
    return it == index_.end() ? nullptr : &entries_[it->second];
}

bool
AddressMapRegistry::has(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return findLocked(name) != nullptr;
}

const AddressMapInfo *
AddressMapRegistry::find(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return findLocked(name);
}

const AddressMapInfo &
AddressMapRegistry::at(const std::string &name) const
{
    std::string unknown;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (const AddressMapInfo *info = findLocked(name))
            return *info;
        unknown = unknownMapMessageLocked(name);
    }
    DSARP_FATAL(unknown.c_str());
}

std::string
AddressMapRegistry::unknownMapMessageLocked(const std::string &name) const
{
    std::ostringstream msg;
    msg << "config key 'address.map': unknown address map '" << name
        << "'; known:";
    for (const std::string &known : namesLocked())
        msg << ' ' << known;
    return msg.str();
}

std::string
AddressMapRegistry::unknownMapMessage(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return unknownMapMessageLocked(name);
}

std::vector<std::string>
AddressMapRegistry::namesLocked() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const AddressMapInfo &info : entries_)
        out.push_back(info.name);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
AddressMapRegistry::names() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return namesLocked();
}

std::unique_ptr<AddressMap>
AddressMapRegistry::make(const std::string &name, const MemOrg &org) const
{
    return at(name).make(org);
}

} // namespace dsarp
