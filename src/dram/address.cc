#include "dram/address.hh"

#include "common/log.hh"

namespace dsarp {

AddressMap::AddressMap(const MemOrg &org) : org_(org)
{
    // columns() x columnBytes() == rowBytes, so capacity is independent
    // of the mapping granularity.
    capacity_ = static_cast<Addr>(org.columnBytes()) * org.channels *
        org.columns() * org.banksPerRank * org.ranksPerChannel *
        org.rowsPerBank;
}

DecodedAddr
AddressMap::decode(Addr addr) const
{
    DSARP_ASSERT(addr < capacity_, "address beyond mapped capacity");

    // The mapping unit is one DRAM column: a full spec burst, which is
    // a cache line on DDR3/DDR4 but two lines on LPDDR4 (BL16).
    Addr x = addr / org_.columnBytes();

    DecodedAddr d;
    d.channel = static_cast<ChannelId>(x % org_.channels);
    x /= org_.channels;
    d.column = static_cast<int>(x % org_.columns());
    x /= org_.columns();
    d.bank = static_cast<BankId>(x % org_.banksPerRank);
    x /= org_.banksPerRank;
    d.rank = static_cast<RankId>(x % org_.ranksPerChannel);
    x /= org_.ranksPerChannel;
    d.row = static_cast<RowId>(x);
    d.subarray = d.row / org_.rowsPerSubarray();
    return d;
}

Addr
AddressMap::encode(const DecodedAddr &d) const
{
    DSARP_ASSERT(d.channel >= 0 && d.channel < org_.channels, "bad channel");
    DSARP_ASSERT(d.rank >= 0 && d.rank < org_.ranksPerChannel, "bad rank");
    DSARP_ASSERT(d.bank >= 0 && d.bank < org_.banksPerRank, "bad bank");
    DSARP_ASSERT(d.row >= 0 && d.row < org_.rowsPerBank, "bad row");
    DSARP_ASSERT(d.column >= 0 && d.column < org_.columns(), "bad column");

    Addr x = static_cast<Addr>(d.row);
    x = x * org_.ranksPerChannel + d.rank;
    x = x * org_.banksPerRank + d.bank;
    x = x * org_.columns() + d.column;
    x = x * org_.channels + d.channel;
    return x * org_.columnBytes();
}

} // namespace dsarp
