/**
 * @file
 * Physical address mapping.
 *
 * The interleaving is burst:channel:column:bank:rank:row from least to
 * most significant, i.e. consecutive bursts alternate across channels,
 * then walk the columns of one row within a channel. This gives
 * streaming workloads both channel-level parallelism and row-buffer
 * locality, the standard layout for FR-FCFS studies.
 *
 * The mapping unit is one DRAM column = one spec burst
 * (MemOrg::columnBytes()): a 64 B cache line on DDR3/DDR4, but 128 B
 * on LPDDR4 whose BL16 halves the column count per row. Lines smaller
 * than a burst alias into the same column (the burst over-fetches).
 */

#ifndef DSARP_DRAM_ADDRESS_HH
#define DSARP_DRAM_ADDRESS_HH

#include "common/config.hh"
#include "common/types.hh"

namespace dsarp {

/** A fully decoded physical address. */
struct DecodedAddr
{
    ChannelId channel = 0;
    RankId rank = 0;
    BankId bank = 0;
    RowId row = 0;
    int column = 0;
    SubarrayId subarray = 0;

    bool
    operator==(const DecodedAddr &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank &&
            row == o.row && column == o.column && subarray == o.subarray;
    }
};

/** Bidirectional mapping between physical addresses and DRAM coordinates. */
class AddressMap
{
  public:
    explicit AddressMap(const MemOrg &org);

    /** Decode a physical byte address. */
    DecodedAddr decode(Addr addr) const;

    /** Compose a physical byte address from DRAM coordinates. */
    Addr encode(const DecodedAddr &d) const;

    /** Total bytes covered by the mapping. */
    Addr capacityBytes() const { return capacity_; }

    const MemOrg &org() const { return org_; }

  private:
    MemOrg org_;
    Addr capacity_;
};

} // namespace dsarp

#endif // DSARP_DRAM_ADDRESS_HH
