/**
 * @file
 * Physical address mapping, pluggable through a string-keyed registry.
 *
 * AddressMap itself is the default `"burst-ch"` interleave --
 * burst:channel:column:bank:rank:row from least to most significant,
 * i.e. consecutive bursts alternate across channels, then walk the
 * columns of one row within a channel. This gives streaming workloads
 * both channel-level parallelism and row-buffer locality, the standard
 * layout for FR-FCFS studies.
 *
 * Alternative interleaves (per-channel streaming regions, XOR bank
 * permutation, DDR5 sub-channel expansion) subclass it and register
 * themselves from static initializers in their own translation units
 * under src/dram/address_maps/ (see DSARP_REGISTER_ADDRESS_MAP),
 * exactly like DRAM specs and refresh policies: adding a mapping
 * strategy is one new .cc file. Selection is MemConfig::addressMap
 * (config key "address.map"); unknown names are a fatal named-key
 * error listing the registered maps.
 *
 * The mapping unit is one DRAM column = one spec burst
 * (MemOrg::columnBytes()): a 64 B cache line on DDR3/DDR4, but 128 B
 * on LPDDR4 whose BL16 halves the column count per row. Lines smaller
 * than a burst alias into the same column (the burst over-fetches).
 */

#ifndef DSARP_DRAM_ADDRESS_HH
#define DSARP_DRAM_ADDRESS_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace dsarp {

struct DramSpec;

/** A fully decoded physical address. */
struct DecodedAddr
{
    ChannelId channel = 0;
    RankId rank = 0;
    BankId bank = 0;
    RowId row = 0;
    int column = 0;
    SubarrayId subarray = 0;

    bool
    operator==(const DecodedAddr &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank &&
            row == o.row && column == o.column && subarray == o.subarray;
    }
};

/**
 * Bidirectional mapping between physical addresses and DRAM
 * coordinates. Concretely instantiable: AddressMap(org) *is* the
 * default "burst-ch" interleave (pinned bit-identical by the golden
 * baselines), and the registered strategies subclass it.
 */
class AddressMap
{
  public:
    explicit AddressMap(const MemOrg &org);
    virtual ~AddressMap() = default;

    /** The registry name of this mapping strategy. */
    virtual const char *name() const { return "burst-ch"; }

    /** Decode a physical byte address. */
    virtual DecodedAddr decode(Addr addr) const;

    /** Compose a physical byte address from DRAM coordinates. */
    virtual Addr encode(const DecodedAddr &d) const;

    /** Total bytes covered by the mapping. */
    Addr capacityBytes() const { return capacity_; }

    const MemOrg &org() const { return org_; }

  protected:
    /** Range-check @p d against the organization (encode precondition). */
    void checkCoords(const DecodedAddr &d) const;

    MemOrg org_;
    Addr capacity_;
};

/** One registered mapping strategy. */
struct AddressMapInfo
{
    std::string name;     ///< Canonical spelling, e.g. "burst-ch".
    std::string summary;  ///< One-liner for --list-maps and docs.

    /** Build the map for a (finalized) organization. */
    std::function<std::unique_ptr<AddressMap>(const MemOrg &)> make;

    /**
     * Cross-check map x organization x device spec; "" when supported,
     * otherwise a named-key error ("config key 'address.map': ...").
     * Null means no constraints.
     */
    std::function<std::string(const MemOrg &, const DramSpec &)> check;

    /**
     * How many independent channels each *configured* channel (DIMM)
     * expands to under this map ("ddr5-subch" returns the spec's
     * sub-channel count). Null means 1: configured channels are the
     * physical channels.
     */
    std::function<int(const DramSpec &)> channelFactor;
};

class AddressMapRegistry
{
  public:
    /**
     * The process-wide registry; a function-local static with
     * mutex-guarded members, same thread-safety contract as
     * DramSpecRegistry (safe against concurrent registration and the
     * parallel sweep harness).
     */
    static AddressMapRegistry &instance();

    /**
     * Register @p info under its canonical name and every alias.
     * Returns true so static registrars can capture the result; a
     * duplicate name is a fatal error at startup.
     */
    bool add(AddressMapInfo info, std::vector<std::string> aliases = {});

    bool has(const std::string &name) const;

    /** Case-insensitive lookup; nullptr when unknown. */
    const AddressMapInfo *find(const std::string &name) const;

    /** find(), but a fatal named-key error listing known maps. */
    const AddressMapInfo &at(const std::string &name) const;

    /** The named-key error text at() dies with (for callers that
     *  collect errors instead of exiting). */
    std::string unknownMapMessage(const std::string &name) const;

    /** Canonical names, sorted; aliases are not repeated. */
    std::vector<std::string> names() const;

    /** Build the named map for @p org (fatal named-key error when
     *  unknown). */
    std::unique_ptr<AddressMap> make(const std::string &name,
                                     const MemOrg &org) const;

  private:
    const AddressMapInfo *findLocked(const std::string &name) const;
    std::string unknownMapMessageLocked(const std::string &name) const;
    std::vector<std::string> namesLocked() const;

    /** Guards index_/entries_; never held while calling out. */
    mutable std::mutex mutex_;

    std::map<std::string, std::size_t> index_;  ///< lowercase name -> slot.

    /** A deque so references returned by find()/at() stay valid when
     *  later registrations grow the registry. */
    std::deque<AddressMapInfo> entries_;
};

/**
 * Define a static registrar. Use at namespace scope in the map's
 * translation unit:
 *
 *   DSARP_REGISTER_ADDRESS_MAP(row_ch, {
 *       "row-ch", "channel bits above row (per-channel regions)",
 *       [](const MemOrg &org) { return std::make_unique<RowChMap>(org); },
 *       nullptr, nullptr})
 */
#define DSARP_REGISTER_ADDRESS_MAP(ident, ...) \
    namespace { \
    const bool dsarpAddressMapRegistrar_##ident [[maybe_unused]] = \
        ::dsarp::AddressMapRegistry::instance().add(__VA_ARGS__); \
    }

} // namespace dsarp

#endif // DSARP_DRAM_ADDRESS_HH
