/**
 * @file
 * "burst-ch": the default interleave -- burst:channel:column:bank:rank:
 * row from least to most significant. Consecutive bursts alternate
 * across channels, then walk the columns of one row within a channel,
 * giving streaming workloads channel-level parallelism and row-buffer
 * locality at once. The implementation *is* the AddressMap base class;
 * this registrar only gives it its registry slot (and keeps the
 * pre-registry behaviour pinned bit-identical via the goldens).
 */

#include <memory>

#include "dram/address.hh"

namespace dsarp {

DSARP_REGISTER_ADDRESS_MAP(burst_ch, {
    "burst-ch",
    "bursts alternate across channels, then columns (default)",
    [](const MemOrg &org) { return std::make_unique<AddressMap>(org); },
    nullptr, nullptr})

} // namespace dsarp
