/**
 * @file
 * "ddr5-subch": DDR5 dual sub-channel topology derived from the device
 * spec. A DDR5 DIMM splits its 64 data bits into two *independent*
 * 32-bit sub-channels, each with its own command bus and BL16 bursts;
 * our DDR5-4800 spec already models exactly one such sub-channel
 * (busWidthBits = 32, 64 B bursts), so the map's only job is topology:
 * its channelFactor() hook tells MemConfig::finalize() to expand every
 * configured channel (one DIMM) into DramSpec::subChannels full
 * channels -- no burst or row rescaling. Over that expanded channel
 * set the interleave is the plain burst-ch walk, where channel index
 * = dimm x subChannels + subch: consecutive bursts alternate across
 * the sub-channels of a DIMM first, then across DIMMs.
 *
 * Selecting this map on a spec without sub-channels (subChannels < 2)
 * is a named-key config error: the topology must fall out of the spec,
 * never be conjured by the mapping.
 */

#include <memory>
#include <string>

#include "dram/address.hh"
#include "dram/spec.hh"

namespace dsarp {

namespace {

class Ddr5SubChMap : public AddressMap
{
  public:
    explicit Ddr5SubChMap(const MemOrg &org) : AddressMap(org) {}

    // The burst-ch walk over the sub-channel-expanded org is the whole
    // mapping; only the registry identity differs.
    const char *name() const override { return "ddr5-subch"; }
};

std::string
subChCheck(const MemOrg &, const DramSpec &spec)
{
    if (spec.subChannels < 2) {
        return "config key 'address.map': map 'ddr5-subch' needs a DRAM "
               "spec with independent sub-channels; '" + spec.name +
               "' declares " + std::to_string(spec.subChannels) +
               " (try DDR5-4800)";
    }
    return "";
}

int
subChFactor(const DramSpec &spec)
{
    return spec.subChannels > 1 ? spec.subChannels : 1;
}

} // namespace

DSARP_REGISTER_ADDRESS_MAP(ddr5_subch, {
    "ddr5-subch",
    "spec-derived sub-channels: each DIMM splits into independent "
    "32-bit channels",
    [](const MemOrg &org) { return std::make_unique<Ddr5SubChMap>(org); },
    subChCheck, subChFactor})

} // namespace dsarp
