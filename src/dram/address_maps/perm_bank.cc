/**
 * @file
 * "perm-bank": the default burst-ch walk with an XOR bank permutation
 * on top, after Zhang et al.'s permutation-based page interleaving
 * (MICRO'00): the bank index is XORed with the low row bits, so rows
 * that conflict in one bank under the plain interleave spread across
 * all banks. XOR is its own inverse, so the permutation is a bijection
 * for free: decode() applies it after the plain walk, encode() applies
 * it before.
 *
 * Requires a power-of-two bank count (the XOR mask must cover the bank
 * index exactly); anything else is a named-key config error.
 */

#include <memory>
#include <string>

#include "dram/address.hh"
#include "dram/spec.hh"

namespace dsarp {

namespace {

class PermBankMap : public AddressMap
{
  public:
    explicit PermBankMap(const MemOrg &org)
        : AddressMap(org), mask_(org.banksPerRank - 1)
    {}

    const char *name() const override { return "perm-bank"; }

    DecodedAddr
    decode(Addr addr) const override
    {
        DecodedAddr d = AddressMap::decode(addr);
        d.bank ^= static_cast<BankId>(d.row) & mask_;
        return d;
    }

    Addr
    encode(const DecodedAddr &d) const override
    {
        DecodedAddr p = d;
        p.bank ^= static_cast<BankId>(p.row) & mask_;
        return AddressMap::encode(p);
    }

  private:
    BankId mask_;
};

std::string
permBankCheck(const MemOrg &org, const DramSpec &)
{
    if ((org.banksPerRank & (org.banksPerRank - 1)) != 0) {
        return "config key 'address.map': map 'perm-bank' needs a "
               "power-of-two banksPerRank for its XOR permutation "
               "(got " + std::to_string(org.banksPerRank) + ")";
    }
    return "";
}

} // namespace

DSARP_REGISTER_ADDRESS_MAP(perm_bank, {
    "perm-bank",
    "burst-ch with XOR bank permutation (row-conflict spreading)",
    [](const MemOrg &org) { return std::make_unique<PermBankMap>(org); },
    permBankCheck, nullptr})

} // namespace dsarp
