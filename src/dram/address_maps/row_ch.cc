/**
 * @file
 * "row-ch": channel bits above the row bits -- burst:column:bank:rank:
 * row:channel from least to most significant. Each channel owns one
 * large contiguous region of the physical address space, so a
 * streaming core stays on one channel (per-channel locality) instead
 * of striping across all of them. The interesting contrast to the
 * default "burst-ch": channel parallelism now comes only from *distinct
 * cores'* footprints landing on distinct channels, which is exactly the
 * regime where cross-channel refresh staggering pays.
 */

#include <memory>

#include "dram/address.hh"
#include "common/log.hh"

namespace dsarp {

namespace {

class RowChMap : public AddressMap
{
  public:
    explicit RowChMap(const MemOrg &org) : AddressMap(org) {}

    const char *name() const override { return "row-ch"; }

    DecodedAddr
    decode(Addr addr) const override
    {
        DSARP_ASSERT(addr < capacityBytes(),
                     "address beyond mapped capacity");
        Addr x = addr / org_.columnBytes();

        DecodedAddr d;
        d.column = static_cast<int>(x % org_.columns());
        x /= org_.columns();
        d.bank = static_cast<BankId>(x % org_.banksPerRank);
        x /= org_.banksPerRank;
        d.rank = static_cast<RankId>(x % org_.ranksPerChannel);
        x /= org_.ranksPerChannel;
        d.row = static_cast<RowId>(x % org_.rowsPerBank);
        x /= org_.rowsPerBank;
        d.channel = static_cast<ChannelId>(x);
        d.subarray = d.row / org_.rowsPerSubarray();
        return d;
    }

    Addr
    encode(const DecodedAddr &d) const override
    {
        checkCoords(d);
        Addr x = static_cast<Addr>(d.channel);
        x = x * org_.rowsPerBank + d.row;
        x = x * org_.ranksPerChannel + d.rank;
        x = x * org_.banksPerRank + d.bank;
        x = x * org_.columns() + d.column;
        return x * org_.columnBytes();
    }
};

} // namespace

DSARP_REGISTER_ADDRESS_MAP(row_ch, {
    "row-ch",
    "channel bits above row: contiguous per-channel regions",
    [](const MemOrg &org) { return std::make_unique<RowChMap>(org); },
    nullptr, nullptr})

} // namespace dsarp
