#include "dram/bank.hh"

#include <algorithm>

#include "common/log.hh"

namespace dsarp {

Bank::Bank(const TimingParams *timing, int rows_per_subarray,
           int rows_per_bank, bool sarp)
    : timing_(timing), rowsPerSubarray_(rows_per_subarray),
      rowsPerBank_(rows_per_bank), sarp_(sarp)
{
}

bool
Bank::canAct(Tick now, RowId row) const
{
    if (openRow_ != kNone || now < actAllowedAt_)
        return false;
    if (refreshing(now)) {
        // Without SARP a refreshing bank accepts nothing. With SARP, an
        // ACT may target any subarray other than the refreshing one.
        if (!sarp_ || subarrayOf(row) == refreshSubarray_)
            return false;
    }
    return true;
}

bool
Bank::canRead(Tick now) const
{
    return openRow_ != kNone && now >= colAllowedAt_;
}

bool
Bank::canWrite(Tick now) const
{
    return openRow_ != kNone && now >= colAllowedAt_;
}

bool
Bank::canPre(Tick now) const
{
    return openRow_ != kNone && now >= preAllowedAt_;
}

bool
Bank::canRefresh(Tick now) const
{
    return openRow_ == kNone && !refreshing(now) && now >= actAllowedAt_;
}

bool
Bank::canHiddenRefresh(Tick now) const
{
    if (openRow_ == kNone || refreshing(now))
        return false;
    if (lastActAt_ == kTickNever || now < lastActAt_ + timing_->tHiRA)
        return false;
    return subarrayOf(refRowCounter_) != openSubarray_;
}

Tick
Bank::nextDeadline(Tick now, bool hira) const
{
    Tick deadline = kTickNever;
    const auto add = [&](Tick t) {
        if (t > now && t < deadline)
            deadline = t;
    };
    add(actAllowedAt_);
    add(colAllowedAt_);
    add(preAllowedAt_);
    add(refreshUntil_);
    // canHiddenRefresh() flips tHiRA after the demand ACT.
    if (hira && lastActAt_ != kTickNever)
        add(lastActAt_ + timing_->tHiRA);
    return deadline;
}

void
Bank::onAct(Tick now, RowId row, SubarrayId subarray)
{
    DSARP_ASSERT(canAct(now, row), "illegal ACT");
    openRow_ = row;
    openSubarray_ = subarray;
    lastActAt_ = now;
    colAllowedAt_ = now + timing_->tRcd;
    actAllowedAt_ = std::max(actAllowedAt_, now + timing_->tRc);
    preAllowedAt_ = now + timing_->tRas;
}

void
Bank::onRead(Tick now, bool auto_precharge)
{
    DSARP_ASSERT(canRead(now), "illegal RD");
    colAllowedAt_ = std::max(colAllowedAt_, now + timing_->tCcd);
    // Read-to-precharge constraint.
    const Tick pre_ready =
        std::max(preAllowedAt_, now + timing_->tRtp);
    preAllowedAt_ = pre_ready;
    if (auto_precharge) {
        openRow_ = kNone;
        openSubarray_ = kNone;
        actAllowedAt_ = std::max(actAllowedAt_, pre_ready + timing_->tRp);
    }
}

void
Bank::onWrite(Tick now, bool auto_precharge)
{
    DSARP_ASSERT(canWrite(now), "illegal WR");
    colAllowedAt_ = std::max(colAllowedAt_, now + timing_->tCcd);
    // Write recovery: precharge may start tWR after the write data ends.
    const Tick data_end = now + timing_->tCwl + timing_->tBl;
    const Tick pre_ready =
        std::max(preAllowedAt_, data_end + timing_->tWr);
    preAllowedAt_ = pre_ready;
    if (auto_precharge) {
        openRow_ = kNone;
        openSubarray_ = kNone;
        actAllowedAt_ = std::max(actAllowedAt_, pre_ready + timing_->tRp);
    }
}

void
Bank::onPre(Tick now)
{
    DSARP_ASSERT(canPre(now), "illegal PRE");
    openRow_ = kNone;
    openSubarray_ = kNone;
    actAllowedAt_ = std::max(actAllowedAt_, now + timing_->tRp);
}

void
Bank::onRefresh(Tick now, Cycles t_rfc, int rows, bool hidden)
{
    DSARP_ASSERT(hidden ? canHiddenRefresh(now) : canRefresh(now),
                 "illegal refresh");
    if (rows == 0)
        rows = timing_->rowsPerRefresh;
    refreshSubarray_ = subarrayOf(refRowCounter_);
    refreshHidden_ = hidden;
    refreshUntil_ = now + t_rfc;
    refRowCounter_ = (refRowCounter_ + rows) % rowsPerBank_;
    if (!sarp_) {
        // No new ACT until the refresh completes. For a hidden refresh
        // the open row keeps serving column commands -- only further
        // activations wait (HiRA interleaves exactly two activations).
        actAllowedAt_ = std::max(actAllowedAt_, refreshUntil_);
    }
}

} // namespace dsarp
