/**
 * @file
 * Per-bank DRAM state machine.
 *
 * Tracks the open row, earliest-allowed command times, and refresh state.
 * SARP support (Section 4.3): while the bank is refreshing, the refreshing
 * subarray is recorded; ACTs to *other* subarrays are permitted when SARP
 * is enabled, and the refresh neither uses nor blocks the global bitlines
 * (the AND-gate isolation of Figure 11b).
 *
 * HiRA support (Yağlıkçı et al., MICRO'22): a *hidden* refresh may start
 * while a row is open, provided the refresh-counter row lives in a
 * different subarray and at least tHiRA cycles passed since the demand
 * ACT -- the refresh activation hides beneath the access. The open row
 * keeps serving column commands; new ACTs still wait for the refresh to
 * finish (off-the-shelf chips interleave exactly two activations).
 */

#ifndef DSARP_DRAM_BANK_HH
#define DSARP_DRAM_BANK_HH

#include "common/types.hh"
#include "dram/timing.hh"

namespace dsarp {

class Bank
{
  public:
    Bank(const TimingParams *timing, int rowsPerSubarray, int rowsPerBank,
         bool sarp);

    /** @name Command legality (bank-local constraints only). */
    /// @{
    bool canAct(Tick now, RowId row) const;
    bool canRead(Tick now) const;
    bool canWrite(Tick now) const;
    bool canPre(Tick now) const;

    /** Bank idle (precharged, no refresh) so a refresh may start. */
    bool canRefresh(Tick now) const;

    /**
     * A HiRA hidden refresh may start: a row is open, no refresh is in
     * flight, the demand ACT is at least tHiRA cycles old, and the
     * refresh counter targets a different subarray than the open row.
     */
    bool canHiddenRefresh(Tick now) const;
    /// @}

    /** @name State transitions; caller must have checked legality. */
    /// @{
    void onAct(Tick now, RowId row, SubarrayId subarray);
    void onRead(Tick now, bool autoPrecharge);
    void onWrite(Tick now, bool autoPrecharge);
    void onPre(Tick now);

    /**
     * Begin refreshing @p rows rows (0 = the TimingParams default)
     * starting at the internal row counter; occupies the counter's
     * subarray for tRfc cycles. With @p hidden the refresh starts
     * beneath the open row (HiRA); the caller must have checked
     * canHiddenRefresh() instead of canRefresh().
     */
    void onRefresh(Tick now, Cycles tRfc, int rows = 0,
                   bool hidden = false);
    /// @}

    /** @name Observers. */
    /// @{
    RowId openRow() const { return openRow_; }
    bool isOpen() const { return openRow_ != kNone; }
    bool refreshing(Tick now) const { return refreshUntil_ > now; }
    Tick refreshUntil() const { return refreshUntil_; }

    /** True while a HiRA hidden refresh is in flight. */
    bool
    hiddenRefreshing(Tick now) const
    {
        return refreshing(now) && refreshHidden_;
    }

    /** Tick of the last ACT accepted (kTickNever before the first). */
    Tick lastActAt() const { return lastActAt_; }

    /** Subarray currently being refreshed (kNone when not refreshing). */
    SubarrayId
    refreshingSubarray(Tick now) const
    {
        return refreshing(now) ? refreshSubarray_ : kNone;
    }

    /** Next row the refresh unit will refresh (DARP keeps these per bank). */
    RowId refreshRowCounter() const { return refRowCounter_; }

    SubarrayId subarrayOf(RowId row) const { return row / rowsPerSubarray_; }

    /** Earliest tick an ACT could be accepted (ignores rank constraints). */
    Tick actReadyAt() const { return actAllowedAt_; }

    /**
     * Earliest pending bank-local threshold strictly after @p now
     * (kTickNever when none): the instants at which any legality
     * predicate above can flip. The event-driven engine wakes at each
     * so a skipped span never crosses a legality change. @p hira
     * includes the canHiddenRefresh() flip after each ACT -- only the
     * HiRA schedulers consult that predicate, so other mechanisms
     * skip the spurious per-ACT wake.
     */
    Tick nextDeadline(Tick now, bool hira) const;
    /// @}

  private:
    const TimingParams *timing_;
    int rowsPerSubarray_;
    int rowsPerBank_;
    bool sarp_;

    RowId openRow_ = kNone;
    SubarrayId openSubarray_ = kNone;

    Tick actAllowedAt_ = 0;   ///< Earliest next ACT (tRC/tRP/refresh).
    Tick colAllowedAt_ = 0;   ///< Earliest column command (ACT + tRCD).
    Tick preAllowedAt_ = 0;   ///< Earliest precharge (tRAS/tRTP/tWR).

    Tick refreshUntil_ = 0;
    SubarrayId refreshSubarray_ = kNone;
    bool refreshHidden_ = false;
    RowId refRowCounter_ = 0;
    Tick lastActAt_ = kTickNever;
};

} // namespace dsarp

#endif // DSARP_DRAM_BANK_HH
