#include "dram/channel.hh"

#include <algorithm>

#include "common/log.hh"

namespace dsarp {

Channel::Channel(const MemConfig *cfg, const TimingParams *timing)
    : cfg_(cfg), timing_(timing)
{
    ranks_.reserve(cfg->org.ranksPerChannel);
    for (int r = 0; r < cfg->org.ranksPerChannel; ++r)
        ranks_.emplace_back(cfg, timing);
    wrDataEnd_.assign(cfg->org.ranksPerChannel, 0);
    lastDemandActiveAt_.assign(cfg->org.ranksPerChannel, 0);
    rankDeadlineCache_.assign(cfg->org.ranksPerChannel, 0);
    rankDeadlineDirty_.assign(cfg->org.ranksPerChannel, 1);
}

bool
Channel::busOkForRead(RankId r, Tick now) const
{
    const Tick data_start = now + timing_->tCl;
    // The burst must find the bus free, plus a rank-switch gap.
    Tick bus_free = busBusyUntil_;
    if (lastBurstRank_ != kNone && lastBurstRank_ != r)
        bus_free += timing_->tRtrs;
    if (data_start < bus_free)
        return false;
    // Write-to-read turnaround within the same rank (tWTR counts from the
    // end of write data to the read command).
    if (now < wrDataEnd_[r] + timing_->tWtr)
        return false;
    return true;
}

bool
Channel::busOkForWrite(RankId r, Tick now) const
{
    const Tick data_start = now + timing_->tCwl;
    Tick bus_free = busBusyUntil_;
    if (lastBurstRank_ != kNone && lastBurstRank_ != r)
        bus_free += timing_->tRtrs;
    if (data_start < bus_free)
        return false;
    // Read-to-write command turnaround on the shared bus.
    if (lastRdCmdAt_ != kTickNever &&
        now < lastRdCmdAt_ + timing_->tRtw) {
        return false;
    }
    return true;
}

bool
Channel::canIssue(const Command &cmd, Tick now) const
{
    const Rank &rk = ranks_[cmd.rank];
    // A rank in self-refresh accepts only SRX, and nothing at all
    // inside the tXS exit window. The rank-level can* checks repeat
    // this for refresh commands (schedulers query them directly); the
    // bank-level paths are covered only here.
    if (rk.selfRefreshLockout(now) && cmd.type != CommandType::kSrExit)
        return false;
    switch (cmd.type) {
      case CommandType::kAct:
        return rk.bank(cmd.bank).canAct(now, cmd.row) &&
            rk.canActRankLevel(now);
      case CommandType::kRd:
      case CommandType::kRdA:
        return rk.bank(cmd.bank).canRead(now) && busOkForRead(cmd.rank, now);
      case CommandType::kWr:
      case CommandType::kWrA:
        return rk.bank(cmd.bank).canWrite(now) &&
            busOkForWrite(cmd.rank, now);
      case CommandType::kPre:
        return rk.bank(cmd.bank).canPre(now);
      case CommandType::kRefPb:
        return rk.canRefPbRankLevel(now) &&
            (cmd.hidden ? rk.bank(cmd.bank).canHiddenRefresh(now)
                        : rk.bank(cmd.bank).canRefresh(now));
      case CommandType::kRefAb:
        return rk.canRefAb(now);
      case CommandType::kRefSb:
        return rk.canRefSb(now, cmd.bank);
      case CommandType::kSrEnter:
        return rk.canSrEnter(now);
      case CommandType::kSrExit:
        return rk.canSrExit(now);
    }
    return false;
}

Tick
Channel::issue(const Command &cmd, Tick now)
{
    DSARP_ASSERT(canIssue(cmd, now), "issuing illegal command");
    Rank &rk = ranks_[cmd.rank];
    rankDeadlineDirty_[cmd.rank] = 1;
    if (!isRefreshCmd(cmd.type) && !isSelfRefreshCmd(cmd.type))
        lastDemandActiveAt_[cmd.rank] = now;
    switch (cmd.type) {
      case CommandType::kAct:
        rk.bank(cmd.bank).onAct(now, cmd.row, cmd.subarray);
        rk.onAct(now);
        ++stats_.acts;
        return 0;

      case CommandType::kRd:
      case CommandType::kRdA: {
        rk.bank(cmd.bank).onRead(now, cmd.type == CommandType::kRdA);
        const Tick data_end = now + timing_->tCl + timing_->tBl;
        busBusyUntil_ = data_end;
        lastBurstWasWrite_ = false;
        lastBurstRank_ = cmd.rank;
        lastRdCmdAt_ = now;
        ++stats_.reads;
        return data_end;
      }

      case CommandType::kWr:
      case CommandType::kWrA: {
        rk.bank(cmd.bank).onWrite(now, cmd.type == CommandType::kWrA);
        const Tick data_end = now + timing_->tCwl + timing_->tBl;
        busBusyUntil_ = data_end;
        lastBurstWasWrite_ = true;
        lastBurstRank_ = cmd.rank;
        wrDataEnd_[cmd.rank] = data_end;
        ++stats_.writes;
        return data_end;
      }

      case CommandType::kPre:
        rk.bank(cmd.bank).onPre(now);
        ++stats_.pres;
        return 0;

      case CommandType::kRefPb: {
        rk.onRefPb(now, cmd.bank, cmd.tRfcOverride, cmd.rowsOverride,
                   cmd.hidden);
        ++stats_.refPb;
        if (cmd.hidden)
            ++stats_.refPbHidden;
        const std::uint64_t dur = static_cast<std::uint64_t>(
            (cmd.tRfcOverride ? cmd.tRfcOverride : timing_->tRfcPb)
                .count());
        stats_.refPbCycles += dur;
        if (refreshSpanCb_)
            refreshSpanCb_(now, now + dur);
        return 0;
      }

      case CommandType::kRefAb: {
        rk.onRefAb(now, cmd.tRfcOverride, cmd.rowsOverride);
        ++stats_.refAb;
        const std::uint64_t dur = static_cast<std::uint64_t>(
            (cmd.tRfcOverride ? cmd.tRfcOverride : timing_->tRfcAb)
                .count());
        stats_.refAbCycles += dur;
        if (refreshSpanCb_)
            refreshSpanCb_(now, now + dur);
        return 0;
      }

      case CommandType::kRefSb: {
        rk.onRefSb(now, cmd.bank, cmd.tRfcOverride, cmd.rowsOverride);
        ++stats_.refSb;
        const std::uint64_t dur = static_cast<std::uint64_t>(
            (cmd.tRfcOverride ? cmd.tRfcOverride : timing_->tRfcSb)
                .count());
        stats_.refSbCycles += dur;
        if (refreshSpanCb_)
            refreshSpanCb_(now, now + dur);
        return 0;
      }

      case CommandType::kSrEnter:
        rk.onSrEnter(now);
        ++stats_.srEnter;
        return 0;

      case CommandType::kSrExit:
        rk.onSrExit(now);
        ++stats_.srExit;
        return 0;
    }
    return 0;
}

Tick
Channel::nextDeadline(Tick now) const
{
    Tick deadline = kTickNever;
    const auto add = [&](Tick t) {
        if (t > now && t < deadline)
            deadline = t;
    };
    // A column command leads its burst by tCL/tCWL, so the command
    // legality instant is that much *before* the bus frees (with the
    // tRTRS variant for a rank switch).
    const auto addLead = [&](Tick busFree, Cycles lead) {
        const Tick c = static_cast<Tick>(lead.count());
        if (busFree > c)
            add(busFree - c);
    };
    addLead(busBusyUntil_, timing_->tCl);
    addLead(busBusyUntil_ + timing_->tRtrs, timing_->tCl);
    addLead(busBusyUntil_, timing_->tCwl);
    addLead(busBusyUntil_ + timing_->tRtrs, timing_->tCwl);
    if (lastRdCmdAt_ != kTickNever)
        add(lastRdCmdAt_ + timing_->tRtw);
    for (RankId r = 0; r < static_cast<RankId>(ranks_.size()); ++r) {
        add(wrDataEnd_[r] + timing_->tWtr);
        if (cfg_->selfRefreshIdleCycles > 0) {
            add(lastDemandActiveAt_[r] +
                static_cast<Tick>(cfg_->selfRefreshIdleCycles));
        }
        // A rank's deadline set only moves when a command issues to it
        // (every eff* flip instant -- refresh start/end -- is either an
        // issue or itself an enumerated deadline capping the cached
        // value), so the O(banks) walk reruns only after an issue or
        // once the cached instant has passed.
        if (rankDeadlineDirty_[r] || rankDeadlineCache_[r] <= now) {
            rankDeadlineCache_[r] = ranks_[r].nextDeadline(now);
            rankDeadlineDirty_[r] = 0;
        }
        add(rankDeadlineCache_[r]);
    }
    return deadline;
}

void
Channel::sampleActivitySpan(Tick firstTick, Tick ticks)
{
    // One evaluation per rank stands for the whole span: the event
    // engine wakes at every threshold nextDeadline() enumerates, so
    // within a skipped span every predicate below is constant.
    for (RankId r = 0; r < static_cast<RankId>(ranks_.size()); ++r) {
        const Rank &rk = ranks_[r];
        stats_.rankTotalTicks += ticks;

        if (rk.inSelfRefresh(firstTick)) {
            stats_.srTicks += ticks;
            continue;
        }

        if (cfg_->selfRefreshIdleCycles > 0 &&
            firstTick - lastDemandActiveAt_[r] >=
                static_cast<Tick>(cfg_->selfRefreshIdleCycles) &&
            !rk.hasOpenRow()) {
            stats_.rankSelfRefTicks += ticks;
            if (rk.refAbInFlight(firstTick))
                stats_.refAbCyclesSrMasked += ticks;
            stats_.refPbCyclesSrMasked +=
                ticks * static_cast<std::uint64_t>(rk.refPbCount(firstTick));
            if (rk.refSbInFlight(firstTick))
                stats_.refSbCyclesSrMasked += ticks;
            continue;
        }

        if (rk.isActive(firstTick))
            stats_.rankActiveTicks += ticks;
    }
}

void
Channel::sampleActivity(Tick now)
{
    for (RankId r = 0; r < static_cast<RankId>(ranks_.size()); ++r) {
        const Rank &rk = ranks_[r];
        ++stats_.rankTotalTicks;

        // Command-level self-refresh: real residency, billed IDD6.
        if (rk.inSelfRefresh(now)) {
            ++stats_.srTicks;
            continue;
        }

        // Legacy energy-model self-refresh state: a rank past the
        // demand-idle threshold is billed IDD6 instead of IDD2N.
        // The clock is *demand* activity only -- a refresh in flight
        // must not reset it (under any enabled schedule a rank
        // refreshes at least once per tREFI, so a refresh-reset clock
        // could never cross a threshold above that). Accounting only:
        // commands and the external refresh schedule are unchanged.
        if (cfg_->selfRefreshIdleCycles > 0 &&
            now - lastDemandActiveAt_[r] >=
                static_cast<Tick>(cfg_->selfRefreshIdleCycles) &&
            !rk.hasOpenRow()) {
            ++stats_.rankSelfRefTicks;
            // External refresh bursts landing inside the IDD6 window
            // are what the state's current already prices: record
            // their in-flight ticks so the energy model does not bill
            // the burst premium on top (per kind -- the per-cycle
            // currents differ).
            if (rk.refAbInFlight(now))
                ++stats_.refAbCyclesSrMasked;
            stats_.refPbCyclesSrMasked +=
                static_cast<std::uint64_t>(rk.refPbCount(now));
            if (rk.refSbInFlight(now))
                ++stats_.refSbCyclesSrMasked;
            continue;
        }

        if (rk.isActive(now))
            ++stats_.rankActiveTicks;
    }
}

} // namespace dsarp
