/**
 * @file
 * Per-channel DRAM model: owns the ranks, enforces the shared data-bus
 * constraints (burst occupancy, read/write turnaround tWTR/tRTW, rank
 * switch tRTRS), and dispatches commands to rank/bank state machines.
 *
 * The command bus allows one command per cycle; the controller enforces
 * that by issuing at most one command per channel per tick.
 */

#ifndef DSARP_DRAM_CHANNEL_HH
#define DSARP_DRAM_CHANNEL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "dram/command.hh"
#include "dram/rank.hh"

namespace dsarp {

/** Command counters consumed by the energy model and tests. */
struct ChannelStats
{
    std::uint64_t acts = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t pres = 0;
    std::uint64_t refAb = 0;
    std::uint64_t refPb = 0;
    /** Same-bank (bank-group slice) refresh commands (DDR5 REFsb). */
    std::uint64_t refSb = 0;
    /** Subset of refPb issued hidden beneath an open row (HiRA). */
    std::uint64_t refPbHidden = 0;
    /** Cycles actually spent in refresh, honouring FGR/AR overrides. */
    std::uint64_t refAbCycles = 0;
    std::uint64_t refPbCycles = 0;
    std::uint64_t refSbCycles = 0;
    /** Rank-ticks with an open row or refresh in flight (background pwr). */
    std::uint64_t rankActiveTicks = 0;
    std::uint64_t rankTotalTicks = 0;
    /**
     * Rank-ticks billed at the IDD6 self-refresh current under the
     * legacy accounting-only state: demand-idle past the
     * MemConfig::selfRefreshIdleCycles threshold with no bank open (a
     * refresh in flight no longer resets the clock -- it is not
     * demand activity). Always 0 when the knob is disabled, keeping
     * legacy energy numbers bit-identical.
     */
    std::uint64_t rankSelfRefTicks = 0;

    /**
     * Refresh cycles that elapsed while their rank qualified for the
     * legacy IDD6 state (per command kind, counted per in-flight
     * tick). The energy model subtracts these from the burst billing:
     * IDD6 already prices the refresh work, so charging the external
     * burst on top would bill the same ticks twice.
     */
    std::uint64_t refAbCyclesSrMasked = 0;
    std::uint64_t refPbCyclesSrMasked = 0;
    std::uint64_t refSbCyclesSrMasked = 0;

    /** @name Command-level self-refresh protocol (SRE/SRX). */
    /// @{
    std::uint64_t srEnter = 0;  ///< SRE commands issued.
    std::uint64_t srExit = 0;   ///< SRX commands issued.
    std::uint64_t srTicks = 0;  ///< Rank-ticks spent in self-refresh.
    /// @}

    /**
     * Ticks during which this channel's refresh bursts overlapped a
     * refresh in flight on a *sibling* channel (the per-system sum is
     * sum_t max(0, refreshing channels - 1)). Computed by the owning
     * System from the refresh spans the channels report; the
     * cross-channel stagger exists to drive this to zero.
     */
    std::uint64_t refOverlapTicks = 0;
};

class Channel
{
  public:
    Channel(const MemConfig *cfg, const TimingParams *timing);

    Rank &rank(RankId r) { return ranks_[r]; }
    const Rank &rank(RankId r) const { return ranks_[r]; }
    int numRanks() const { return static_cast<int>(ranks_.size()); }

    /** Full legality check: bank, rank, and data-bus constraints. */
    bool canIssue(const Command &cmd, Tick now) const;

    /**
     * Issue a command (must be legal). Returns the tick the data burst
     * completes for column commands (read data arrival / write data end);
     * 0 for non-column commands.
     */
    Tick issue(const Command &cmd, Tick now);

    /** Accumulate per-tick activity for the energy model. */
    void sampleActivity(Tick now);

    /**
     * Bulk form of sampleActivity() for the event-driven engine: one
     * evaluation at @p firstTick stands for @p ticks consecutive
     * skipped ticks. Legal only inside an inert span -- the engine
     * wakes at every threshold below, so no predicate can change.
     */
    void sampleActivitySpan(Tick firstTick, Tick ticks);

    /**
     * Earliest pending channel/rank/bank threshold strictly after
     * @p now (kTickNever when none): bus-turnaround instants (command
     * legality leads the burst by tCL/tCWL), tWTR/tRTW windows, the
     * legacy IDD6 idle threshold, and every rank/bank deadline.
     */
    Tick nextDeadline(Tick now) const;

    const ChannelStats &stats() const { return stats_; }
    const TimingParams &timing() const { return *timing_; }

    /**
     * Observer for refresh bursts: invoked at every REFab/REFpb/REFsb
     * issue with the burst's [start, end) tick span (end honours
     * FGR/AR tRFC overrides). The System uses it for cross-channel
     * refresh-overlap accounting.
     */
    using RefreshSpanCallback = std::function<void(Tick start, Tick end)>;
    void setRefreshSpanCallback(RefreshSpanCallback cb)
    {
        refreshSpanCb_ = std::move(cb);
    }

    /** Overlap ticks attributed to this channel (see stats above). */
    void addRefOverlapTicks(std::uint64_t t) { stats_.refOverlapTicks += t; }

    /** Zero the counters (DRAM state is preserved). */
    void resetStats() { stats_ = ChannelStats{}; }

  private:
    bool busOkForRead(RankId r, Tick now) const;
    bool busOkForWrite(RankId r, Tick now) const;

    const MemConfig *cfg_;
    const TimingParams *timing_;
    std::vector<Rank> ranks_;

    Tick busBusyUntil_ = 0;        ///< End of the last data burst.
    bool lastBurstWasWrite_ = false;
    RankId lastBurstRank_ = kNone;
    Tick lastRdCmdAt_ = kTickNever;
    std::vector<Tick> wrDataEnd_;  ///< Per-rank last write-data end (tWTR).
    /** Per-rank memo of Rank::nextDeadline, dirtied by issue(). */
    mutable std::vector<Tick> rankDeadlineCache_;
    mutable std::vector<std::uint8_t> rankDeadlineDirty_;

    /**
     * Per-rank tick of the last *demand* command (ACT/RD/WR/PRE).
     * Refresh commands deliberately do not update it: under any
     * enabled refresh schedule a rank sees a refresh at least every
     * tREFI, so a clock reset by refresh activity could never cross a
     * threshold above it -- the idle-detection bug that kept the
     * self-refresh energy state from ever firing.
     */
    std::vector<Tick> lastDemandActiveAt_;

    RefreshSpanCallback refreshSpanCb_;

    ChannelStats stats_;
};

} // namespace dsarp

#endif // DSARP_DRAM_CHANNEL_HH
