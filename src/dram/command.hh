/**
 * @file
 * DRAM command vocabulary.
 *
 * The controller uses a closed-row policy (paper Table 1): the common path
 * is ACT followed by RDA/WRA (column access with auto-precharge). Plain
 * RD/WR are used to batch row hits before the final auto-precharging
 * access; PRE appears only when a refresh must force a bank closed.
 */

#ifndef DSARP_DRAM_COMMAND_HH
#define DSARP_DRAM_COMMAND_HH

#include "common/types.hh"

namespace dsarp {

enum class CommandType {
    kAct,    ///< Activate a row.
    kRd,     ///< Column read, row stays open.
    kWr,     ///< Column write, row stays open.
    kRdA,    ///< Column read with auto-precharge.
    kWrA,    ///< Column write with auto-precharge.
    kPre,    ///< Explicit precharge.
    kRefAb,  ///< All-bank (rank-level) refresh.
    kRefPb,  ///< Per-bank refresh.
    kRefSb,  ///< Same-bank refresh (DDR5): one bank-group slice.
    kSrEnter,///< Self-refresh entry (SRE): rank refreshes itself.
    kSrExit, ///< Self-refresh exit (SRX): tXS before the next command.
};

/** True for RD/WR/RDA/WRA. */
inline bool
isColumnCmd(CommandType t)
{
    return t == CommandType::kRd || t == CommandType::kWr ||
        t == CommandType::kRdA || t == CommandType::kWrA;
}

/** True for the read flavours. */
inline bool
isReadCmd(CommandType t)
{
    return t == CommandType::kRd || t == CommandType::kRdA;
}

/** True for the write flavours. */
inline bool
isWriteCmd(CommandType t)
{
    return t == CommandType::kWr || t == CommandType::kWrA;
}

/** True for REFab/REFpb/REFsb. */
inline bool
isRefreshCmd(CommandType t)
{
    return t == CommandType::kRefAb || t == CommandType::kRefPb ||
        t == CommandType::kRefSb;
}

/** True for the self-refresh protocol pair SRE/SRX. */
inline bool
isSelfRefreshCmd(CommandType t)
{
    return t == CommandType::kSrEnter || t == CommandType::kSrExit;
}

/** A decoded command as it appears on a channel's command bus. */
struct Command
{
    CommandType type;
    RankId rank = 0;
    BankId bank = 0;       ///< Unused for REFab; group index for REFsb.
    RowId row = 0;         ///< Valid for ACT.
    int column = 0;        ///< Valid for column commands.
    SubarrayId subarray = 0;

    /**
     * Refresh-command overrides used by DDR4 FGR / adaptive refresh,
     * whose commands have a different latency and cover fewer rows than
     * the datasheet default. Zero selects the TimingParams values.
     */
    Cycles tRfcOverride{};
    int rowsOverride = 0;

    /**
     * HiRA hidden refresh: a REFpb issued to a bank with an open row,
     * refreshing a *different* subarray beneath the in-progress access
     * (legal only tHiRA cycles after the demand ACT).
     */
    bool hidden = false;
};

const char *commandName(CommandType t);

inline const char *
commandName(CommandType t)
{
    switch (t) {
      case CommandType::kAct: return "ACT";
      case CommandType::kRd: return "RD";
      case CommandType::kWr: return "WR";
      case CommandType::kRdA: return "RDA";
      case CommandType::kWrA: return "WRA";
      case CommandType::kPre: return "PRE";
      case CommandType::kRefAb: return "REFab";
      case CommandType::kRefPb: return "REFpb";
      case CommandType::kRefSb: return "REFsb";
      case CommandType::kSrEnter: return "SRE";
      case CommandType::kSrExit: return "SRX";
    }
    return "?";
}

} // namespace dsarp

#endif // DSARP_DRAM_COMMAND_HH
