#include "dram/rank.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace dsarp {

Rank::Rank(const MemConfig *cfg, const TimingParams *timing)
    : cfg_(cfg), timing_(timing)
{
    banks_.reserve(cfg->org.banksPerRank);
    for (int b = 0; b < cfg->org.banksPerRank; ++b) {
        banks_.emplace_back(timing, cfg->org.rowsPerSubarray(),
                            cfg->org.rowsPerBank, cfg->sarp);
    }
    const auto inflate = [](int base, double mult) {
        return static_cast<int>(std::ceil(base * mult - 1e-9));
    };
    tRrdInflAb_ = inflate(timing->tRrd,
                          refreshInflationMult(*cfg, true, 0));
    tRrdInflPb_ = inflate(timing->tRrd,
                          refreshInflationMult(*cfg, false, 1));
    tFawInflAb_ = inflate(timing->tFaw,
                          refreshInflationMult(*cfg, true, 0));
    tFawInflPb_ = inflate(timing->tFaw,
                          refreshInflationMult(*cfg, false, 1));
    refPbEnds_.reserve(cfg->maxOverlappedRefPb);
}

double
Rank::refreshInflationMult(const MemConfig &cfg, bool ab_in_flight,
                           int pb_in_flight)
{
    // Without SARP and without the overlapped-REFpb extension, the
    // baseline never activates during refresh, so no inflation applies.
    const bool extended = cfg.sarp || cfg.maxOverlappedRefPb > 1;
    if (!extended)
        return 1.0;
    if (ab_in_flight)
        return cfg.sarpInflationAb;
    if (pb_in_flight > 0) {
        // Each in-flight per-bank refresh adds one refresh current's
        // worth of overhead on top of the four-activate budget.
        return 1.0 + pb_in_flight * (cfg.sarpInflationPb - 1.0);
    }
    return 1.0;
}

int
Rank::refPbCount(Tick now) const
{
    // Prune completed refreshes; the vector never exceeds the overlap
    // cap, so this is a handful of comparisons.
    auto it = std::remove_if(refPbEnds_.begin(), refPbEnds_.end(),
                             [now](Tick end) { return end <= now; });
    refPbEnds_.erase(it, refPbEnds_.end());
    return static_cast<int>(refPbEnds_.size());
}

int
Rank::effTRrd(Tick now) const
{
    if (cfg_->sarp || cfg_->maxOverlappedRefPb > 1) {
        if (refAbInFlight(now))
            return tRrdInflAb_;
        const int pb = refPbCount(now);
        if (pb == 1)
            return tRrdInflPb_;
        if (pb > 1) {
            return static_cast<int>(std::ceil(
                timing_->tRrd *
                    refreshInflationMult(*cfg_, false, pb) -
                1e-9));
        }
    }
    return timing_->tRrd;
}

int
Rank::effTFaw(Tick now) const
{
    if (cfg_->sarp || cfg_->maxOverlappedRefPb > 1) {
        if (refAbInFlight(now))
            return tFawInflAb_;
        const int pb = refPbCount(now);
        if (pb == 1)
            return tFawInflPb_;
        if (pb > 1) {
            return static_cast<int>(std::ceil(
                timing_->tFaw *
                    refreshInflationMult(*cfg_, false, pb) -
                1e-9));
        }
    }
    return timing_->tFaw;
}

bool
Rank::canActRankLevel(Tick now) const
{
    if (lastActAt_ != kTickNever &&
        now < lastActAt_ + static_cast<Tick>(effTRrd(now))) {
        return false;
    }
    if (actsSeen_ >= 4) {
        // Oldest of the last four ACTs bounds the four-activate window.
        if (now < actWindow_[0] + static_cast<Tick>(effTFaw(now)))
            return false;
    }
    return true;
}

bool
Rank::canRefPbRankLevel(Tick now) const
{
    return refPbCount(now) < cfg_->maxOverlappedRefPb &&
        !refAbInFlight(now);
}

bool
Rank::canRefAb(Tick now) const
{
    if (refPbInFlight(now) || refAbInFlight(now))
        return false;
    for (const Bank &b : banks_) {
        if (!b.canRefresh(now))
            return false;
    }
    return true;
}

void
Rank::onAct(Tick now)
{
    lastActAt_ = now;
    // Slide the four-entry window.
    actWindow_[0] = actWindow_[1];
    actWindow_[1] = actWindow_[2];
    actWindow_[2] = actWindow_[3];
    actWindow_[3] = now;
    if (actsSeen_ < 4)
        ++actsSeen_;
}

void
Rank::onRefPb(Tick now, BankId bank, int t_rfc_override, int rows_override)
{
    DSARP_ASSERT(canRefPbRankLevel(now), "REFpb exceeds the overlap limit");
    const int t_rfc = t_rfc_override ? t_rfc_override : timing_->tRfcPb;
    banks_[bank].onRefresh(now, t_rfc, rows_override);
    refPbEnds_.push_back(now + t_rfc);
}

void
Rank::onRefAb(Tick now, int t_rfc_override, int rows_override)
{
    DSARP_ASSERT(canRefAb(now), "REFab while rank not idle");
    const int t_rfc = t_rfc_override ? t_rfc_override : timing_->tRfcAb;
    for (Bank &b : banks_)
        b.onRefresh(now, t_rfc, rows_override);
    refAbUntil_ = now + t_rfc;
}

bool
Rank::isActive(Tick now) const
{
    if (refAbInFlight(now) || refPbInFlight(now))
        return true;
    for (const Bank &b : banks_) {
        if (b.isOpen())
            return true;
    }
    return false;
}

Tick
Rank::refreshBusyUntil() const
{
    Tick latest = refAbUntil_;
    for (Tick end : refPbEnds_)
        latest = std::max(latest, end);
    return latest;
}

} // namespace dsarp
