#include "dram/rank.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace dsarp {

Rank::Rank(const MemConfig *cfg, const TimingParams *timing)
    : cfg_(cfg), timing_(timing)
{
    banks_.reserve(cfg->org.banksPerRank);
    for (int b = 0; b < cfg->org.banksPerRank; ++b) {
        banks_.emplace_back(timing, cfg->org.rowsPerSubarray(),
                            cfg->org.rowsPerBank, cfg->sarp);
    }
    tRrdInflAb_ =
        timing->tRrd.ceilScaled(refreshInflationMult(*cfg, true, 0));
    tRrdInflPb_ =
        timing->tRrd.ceilScaled(refreshInflationMult(*cfg, false, 1));
    tFawInflAb_ =
        timing->tFaw.ceilScaled(refreshInflationMult(*cfg, true, 0));
    tFawInflPb_ =
        timing->tFaw.ceilScaled(refreshInflationMult(*cfg, false, 1));
    refPbEnds_.reserve(cfg->maxOverlappedRefPb);
}

double
Rank::refreshInflationMult(const MemConfig &cfg, bool ab_in_flight,
                           int pb_in_flight)
{
    // Without SARP, HiRA, or the overlapped-REFpb extension, the
    // baseline never activates during refresh, so no inflation applies.
    const bool extended =
        cfg.sarp || cfg.hira || cfg.maxOverlappedRefPb > 1;
    if (!extended)
        return 1.0;
    if (ab_in_flight)
        return cfg.sarpInflationAb;
    if (pb_in_flight > 0) {
        // Each in-flight per-bank refresh adds one refresh current's
        // worth of overhead on top of the four-activate budget.
        return 1.0 + pb_in_flight * (cfg.sarpInflationPb - 1.0);
    }
    return 1.0;
}

int
Rank::pruneInFlight(std::vector<Tick> &ends, Tick now)
{
    // Prune completed refreshes; the vectors never exceed the overlap
    // cap, so this is a handful of comparisons.
    auto it = std::remove_if(ends.begin(), ends.end(),
                             [now](Tick end) { return end <= now; });
    ends.erase(it, ends.end());
    return static_cast<int>(ends.size());
}

int
Rank::refPbCount(Tick now) const
{
    return pruneInFlight(refPbEnds_, now);
}

int
Rank::hiddenRefPbCount(Tick now) const
{
    return pruneInFlight(hiddenPbEnds_, now);
}

int
Rank::inflationPbCount(const MemConfig &cfg, int pb_in_flight,
                       int hidden_pb_in_flight)
{
    // SARP (and the footnote-5 overlap extension) activates during any
    // in-flight refresh, so every REFpb counts. HiRA alone only
    // overlaps activations with its *hidden* refreshes -- a plain
    // blocking REFpb under HiRA behaves exactly like DARP's and must
    // not be penalized.
    if (cfg.sarp || cfg.maxOverlappedRefPb > 1)
        return pb_in_flight;
    return hidden_pb_in_flight;
}

int
Rank::inflationRefPbCount(Tick now) const
{
    return inflationPbCount(*cfg_, refPbCount(now),
                            hiddenRefPbCount(now));
}

Cycles
Rank::effTRrd(Tick now) const
{
    if (cfg_->sarp || cfg_->hira || cfg_->maxOverlappedRefPb > 1) {
        if (refAbInFlight(now))
            return tRrdInflAb_;
        const int pb = inflationRefPbCount(now);
        if (pb == 1)
            return tRrdInflPb_;
        if (pb > 1) {
            return timing_->tRrd.ceilScaled(
                refreshInflationMult(*cfg_, false, pb));
        }
    }
    return timing_->tRrd;
}

Cycles
Rank::effTFaw(Tick now) const
{
    if (cfg_->sarp || cfg_->hira || cfg_->maxOverlappedRefPb > 1) {
        if (refAbInFlight(now))
            return tFawInflAb_;
        const int pb = inflationRefPbCount(now);
        if (pb == 1)
            return tFawInflPb_;
        if (pb > 1) {
            return timing_->tFaw.ceilScaled(
                refreshInflationMult(*cfg_, false, pb));
        }
    }
    return timing_->tFaw;
}

bool
Rank::canActRankLevel(Tick now) const
{
    if (selfRefreshLockout(now))
        return false;
    if (lastActAt_ != kTickNever && now < lastActAt_ + effTRrd(now))
        return false;
    if (actsSeen_ >= 4) {
        // Oldest of the last four ACTs bounds the four-activate window.
        if (now < actWindow_[0] + effTFaw(now))
            return false;
    }
    return true;
}

bool
Rank::refSbInFlight(Tick now) const
{
    return pruneInFlight(refSbEnds_, now) > 0;
}

bool
Rank::canRefPbRankLevel(Tick now) const
{
    return !selfRefreshLockout(now) &&
        refPbCount(now) < cfg_->maxOverlappedRefPb &&
        !refAbInFlight(now) && !refSbInFlight(now);
}

bool
Rank::canRefAb(Tick now) const
{
    if (selfRefreshLockout(now))
        return false;
    if (refPbInFlight(now) || refAbInFlight(now) || refSbInFlight(now))
        return false;
    for (const Bank &b : banks_) {
        if (!b.canRefresh(now))
            return false;
    }
    return true;
}

bool
Rank::canRefSb(Tick now, int group) const
{
    if (selfRefreshLockout(now))
        return false;
    // Refreshes of any granularity never overlap within a rank; banks
    // outside the slice are unconstrained (they keep serving).
    if (refAbInFlight(now) || refPbInFlight(now) || refSbInFlight(now))
        return false;
    const int slice = timing_->banksPerGroup;
    if (slice <= 0 || group < 0 ||
        (group + 1) * slice > static_cast<int>(banks_.size())) {
        return false;
    }
    for (int b = group * slice; b < (group + 1) * slice; ++b) {
        if (!banks_[b].canRefresh(now))
            return false;
    }
    return true;
}

void
Rank::onAct(Tick now)
{
    lastActAt_ = now;
    // Slide the four-entry window.
    actWindow_[0] = actWindow_[1];
    actWindow_[1] = actWindow_[2];
    actWindow_[2] = actWindow_[3];
    actWindow_[3] = now;
    if (actsSeen_ < 4)
        ++actsSeen_;
}

void
Rank::onRefPb(Tick now, BankId bank, Cycles t_rfc_override,
              int rows_override, bool hidden)
{
    DSARP_ASSERT(canRefPbRankLevel(now), "REFpb exceeds the overlap limit");
    const Cycles t_rfc = t_rfc_override ? t_rfc_override : timing_->tRfcPb;
    banks_[bank].onRefresh(now, t_rfc, rows_override, hidden);
    refPbEnds_.push_back(now + t_rfc);
    if (hidden)
        hiddenPbEnds_.push_back(now + t_rfc);
}

void
Rank::onRefSb(Tick now, int group, Cycles t_rfc_override,
              int rows_override)
{
    DSARP_ASSERT(canRefSb(now, group), "illegal same-bank refresh");
    const Cycles t_rfc = t_rfc_override ? t_rfc_override : timing_->tRfcSb;
    const int slice = timing_->banksPerGroup;
    for (int b = group * slice; b < (group + 1) * slice; ++b)
        banks_[b].onRefresh(now, t_rfc, rows_override);
    refSbEnds_.push_back(now + t_rfc);
}

void
Rank::onRefAb(Tick now, Cycles t_rfc_override, int rows_override)
{
    DSARP_ASSERT(canRefAb(now), "REFab while rank not idle");
    const Cycles t_rfc = t_rfc_override ? t_rfc_override : timing_->tRfcAb;
    for (Bank &b : banks_)
        b.onRefresh(now, t_rfc, rows_override);
    refAbUntil_ = now + t_rfc;
}

bool
Rank::canSrEnter(Tick now) const
{
    // SRE needs a fully quiesced rank: the device assumes control of
    // refresh from a precharged, refresh-idle state (JEDEC: all banks
    // precharged, tRFC of any refresh satisfied).
    if (srActive_ || now < srExitLockoutUntil_)
        return false;
    if (refAbInFlight(now) || refPbInFlight(now) || refSbInFlight(now))
        return false;
    for (const Bank &b : banks_) {
        if (!b.canRefresh(now))
            return false;
    }
    return true;
}

bool
Rank::canSrExit(Tick now) const
{
    return srActive_ && srEnteredAt_ != kTickNever &&
        now >= srEnteredAt_ + timing_->tCkesr;
}

void
Rank::onSrEnter(Tick now)
{
    DSARP_ASSERT(canSrEnter(now), "SRE on a non-idle rank");
    srActive_ = true;
    srEnteredAt_ = now;
}

void
Rank::onSrExit(Tick now)
{
    DSARP_ASSERT(canSrExit(now), "SRX outside self-refresh or below "
                                 "the tCKESR minimum residency");
    srActive_ = false;
    // The device finishes its in-progress internal refresh burst on
    // exit: nothing is legal on the rank until tXS has elapsed.
    srExitLockoutUntil_ = now + timing_->tXs;
}

Tick
Rank::nextDeadline(Tick now) const
{
    Tick deadline = kTickNever;
    const auto add = [&](Tick t) {
        if (t > now && t < deadline)
            deadline = t;
    };
    if (lastActAt_ != kTickNever)
        add(lastActAt_ + effTRrd(now));
    if (actsSeen_ >= 4)
        add(actWindow_[0] + effTFaw(now));
    add(refAbUntil_);
    for (Tick end : refPbEnds_)
        add(end);
    for (Tick end : hiddenPbEnds_)
        add(end);
    for (Tick end : refSbEnds_)
        add(end);
    add(srExitLockoutUntil_);
    if (srActive_ && srEnteredAt_ != kTickNever)
        add(srEnteredAt_ + timing_->tCkesr);
    for (const Bank &b : banks_)
        add(b.nextDeadline(now, cfg_->hira));
    return deadline;
}

bool
Rank::isActive(Tick now) const
{
    // A self-refreshing rank draws IDD6, not active standby; its
    // residency is billed separately (ChannelStats::srTicks).
    if (srActive_)
        return false;
    if (refAbInFlight(now) || refPbInFlight(now) || refSbInFlight(now))
        return true;
    for (const Bank &b : banks_) {
        if (b.isOpen())
            return true;
    }
    return false;
}

bool
Rank::hasOpenRow() const
{
    for (const Bank &b : banks_) {
        if (b.isOpen())
            return true;
    }
    return false;
}

Tick
Rank::refreshBusyUntil() const
{
    Tick latest = refAbUntil_;
    for (Tick end : refPbEnds_)
        latest = std::max(latest, end);
    for (Tick end : refSbEnds_)
        latest = std::max(latest, end);
    return latest;
}

} // namespace dsarp
