/**
 * @file
 * Per-rank DRAM state: tRRD/tFAW activation throttling (with SARP's
 * power-integrity inflation while a refresh is in flight, Eq. 1-3),
 * REFpb serialization (the LPDDR standard disallows overlapping per-bank
 * refreshes within a rank), and REFab occupancy.
 */

#ifndef DSARP_DRAM_RANK_HH
#define DSARP_DRAM_RANK_HH

#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "dram/bank.hh"

namespace dsarp {

class Rank
{
  public:
    Rank(const MemConfig *cfg, const TimingParams *timing);

    Bank &bank(BankId b) { return banks_[b]; }
    const Bank &bank(BankId b) const { return banks_[b]; }
    int numBanks() const { return static_cast<int>(banks_.size()); }

    /** @name Rank-level command legality. */
    /// @{

    /** tRRD/tFAW check for a new ACT (inflated during refresh if SARP). */
    bool canActRankLevel(Tick now) const;

    /** A REFpb may start: previous REFpb done and no REFab in flight. */
    bool canRefPbRankLevel(Tick now) const;

    /** A REFab may start: all banks idle, no refresh in flight. */
    bool canRefAb(Tick now) const;

    /**
     * A same-bank refresh (DDR5 REFsb) of bank-group slice @p group
     * may start: every bank of the slice idle, and no other refresh
     * of any kind in flight in the rank. Banks outside the slice keep
     * serving accesses throughout -- the standard's own refresh-access
     * parallelism.
     */
    bool canRefSb(Tick now, int group) const;

    /**
     * Self-refresh entry (SRE) may issue: not already in self-refresh,
     * past any tXS lockout from a previous exit, no refresh of any
     * kind in flight, and every bank precharged -- the device takes
     * over its own refresh from a fully idle rank.
     */
    bool canSrEnter(Tick now) const;

    /** Self-refresh exit (SRX) may issue: in self-refresh and the
     *  minimum residency tCKESR has elapsed since entry. */
    bool canSrExit(Tick now) const;
    /// @}

    /** @name State transitions. */
    /// @{
    void onAct(Tick now);
    void onRefPb(Tick now, BankId bank, Cycles tRfcOverride = Cycles(),
                 int rowsOverride = 0, bool hidden = false);
    void onRefAb(Tick now, Cycles tRfcOverride = Cycles(),
                 int rowsOverride = 0);
    void onRefSb(Tick now, int group, Cycles tRfcOverride = Cycles(),
                 int rowsOverride = 0);
    void onSrEnter(Tick now);
    void onSrExit(Tick now);
    /// @}

    /** True while the rank is in self-refresh (SRE issued, no SRX). */
    bool inSelfRefresh(Tick) const { return srActive_; }

    /**
     * True while the rank can accept no command: in self-refresh
     * (only SRX is legal then) or inside the tXS exit window, during
     * which the device completes the internal refresh burst it
     * started on exit.
     */
    bool selfRefreshLockout(Tick now) const
    {
        return srActive_ || now < srExitLockoutUntil_;
    }

    /** Tick the current self-refresh residency began (kTickNever when
     *  the rank has never entered). */
    Tick srEnteredAt() const { return srEnteredAt_; }

    /** First tick a command is legal after the last SRX (tXS). */
    Tick srExitLockoutUntil() const { return srExitLockoutUntil_; }

    /** True while an all-bank refresh occupies the rank. */
    bool refAbInFlight(Tick now) const { return refAbUntil_ > now; }

    /** True while any per-bank refresh is in flight in this rank. */
    bool refPbInFlight(Tick now) const { return refPbCount(now) > 0; }

    /** True while a same-bank refresh slice is in flight. */
    bool refSbInFlight(Tick now) const;

    /** Number of per-bank refreshes currently in flight. */
    int refPbCount(Tick now) const;

    /**
     * The in-flight REFpb count that drives power-integrity inflation
     * (shared with the offline checker so both sides agree): under
     * SARP / the overlap extension every in-flight refresh counts;
     * under HiRA alone only the hidden ones, which overlap a demand
     * activation -- a plain blocking REFpb behaves exactly like
     * DARP's.
     */
    static int inflationPbCount(const MemConfig &cfg, int pbInFlight,
                                int hiddenPbInFlight);

    /**
     * Power-integrity multiplier for tRRD/tFAW given the refresh state
     * (shared with the offline checker so both sides agree): the SARP
     * factors from Eq. 1-3, and per-in-flight scaling when overlapped
     * per-bank refresh (footnote 5 extension) is enabled.
     */
    static double refreshInflationMult(const MemConfig &cfg,
                                       bool abInFlight, int pbInFlight);

    /** Any bank active (open row) or refreshing; drives background power. */
    bool isActive(Tick now) const;

    /** Any bank with an open row (demand activity, refresh excluded). */
    bool hasOpenRow() const;

    /** End tick of the newest in-flight refresh (0 when none). */
    Tick refreshBusyUntil() const;

    /**
     * Effective tRRD/tFAW at @p now: the datasheet value, multiplied by
     * the SARP power-integrity factor while a refresh is in flight.
     */
    Cycles effTRrd(Tick now) const;
    Cycles effTFaw(Tick now) const;

    /**
     * Earliest pending rank- or bank-level threshold strictly after
     * @p now (kTickNever when none). Every legality predicate of this
     * rank flips only at one of these instants, so the event-driven
     * engine is safe to sleep to the minimum. tRRD/tFAW use the
     * inflation effective at @p now; the refresh-end ticks that change
     * the inflation are themselves deadlines, so the value is exact
     * within the span.
     */
    Tick nextDeadline(Tick now) const;

  private:
    /** Prune ended entries from an in-flight list; return the count. */
    static int pruneInFlight(std::vector<Tick> &ends, Tick now);

    /** HiRA-hidden subset of refPbCount. */
    int hiddenRefPbCount(Tick now) const;

    /** inflationPbCount() on this rank's live refresh state. */
    int inflationRefPbCount(Tick now) const;

    const MemConfig *cfg_;
    const TimingParams *timing_;
    std::vector<Bank> banks_;

    Tick lastActAt_ = kTickNever;  ///< kTickNever encodes "no ACT yet".
    /** Timestamps of the last four ACTs, oldest first, for tFAW. */
    Tick actWindow_[4] = {0, 0, 0, 0};
    int actsSeen_ = 0;

    /** End ticks of in-flight per-bank refreshes (pruned lazily). */
    mutable std::vector<Tick> refPbEnds_;
    /** End ticks of the HiRA-hidden subset of refPbEnds_. */
    mutable std::vector<Tick> hiddenPbEnds_;
    /** End ticks of in-flight same-bank refresh slices. */
    mutable std::vector<Tick> refSbEnds_;
    Tick refAbUntil_ = 0;

    /** @name Self-refresh protocol state. */
    /// @{
    bool srActive_ = false;
    Tick srEnteredAt_ = kTickNever;
    Tick srExitLockoutUntil_ = 0;  ///< SRX tick + tXS.
    /// @}

    /** Precomputed inflated values for the common cases (no fp math on
     *  the hot path); counts above one in-flight REFpb fall back to the
     *  shared formula. */
    Cycles tRrdInflAb_;
    Cycles tRrdInflPb_;
    Cycles tFawInflAb_;
    Cycles tFawInflPb_;
};

} // namespace dsarp

#endif // DSARP_DRAM_RANK_HH
