#include "dram/spec.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"
#include "common/strings.hh"

namespace dsarp {

int
densityIndex(Density d)
{
    switch (d) {
      case Density::k8Gb: return 0;
      case Density::k16Gb: return 1;
      case Density::k32Gb: return 2;
    }
    DSARP_PANIC("unknown density");
}

TimingParams
DramSpec::timingFor(const MemConfig &cfg) const
{
    TimingParams t;
    t.spec = name;
    t.tCkNs = tCkNs;
    t.tCl = tCl;
    t.tCwl = tCwl;
    t.tRcd = tRcd;
    t.tRp = tRp;
    t.tRas = tRas;
    t.tRc = tRc;
    t.tBl = tBl;
    t.tCcd = tCcd;
    t.tRtp = tRtp;
    t.tWr = tWr;
    t.tWtr = tWtr;
    t.tRrd = tRrd;
    t.tFaw = tFaw;
    t.tRtrs = tRtrs;

    // Derived, never stored per spec: the read-to-write gap covers the
    // read burst plus the bus turnaround before the write preamble.
    t.tRtw = tCl + tBl + Cycles(2) - tCwl;
    DSARP_ASSERT(t.tRtw > 0, "derived tRtw must be positive");

    t.refreshesPerRetention = refreshesPerRetention;
    t.fgrDivisor2x = fgrDivisor2x;
    t.fgrDivisor4x = fgrDivisor4x;

    // HiRA: the spec's characterized delay/coverage figures, with the
    // layered refresh.hiraDelay / refresh.hiraCoverage overrides on top.
    t.tHiRA = cfg.hiraDelayCycles > 0
        ? Cycles(cfg.hiraDelayCycles)
        : TimingParams::nsToCycles(tHiRANs, t.tCkNs);
    t.hiraActCoverage =
        cfg.hiraCoverage >= 0.0 ? cfg.hiraCoverage : hiraActCoverage;
    t.hiraRefCoverage = hiraRefCoverage;

    // Retention: refreshesPerRetention slots spread over the period.
    const Nanoseconds retentionNs{cfg.retentionMs * 1e6};
    Nanoseconds tRefiAbNs = retentionNs / refreshesPerRetention;

    Nanoseconds tRfcAbNs = tRfcAbNsFor(cfg.density);
    Nanoseconds tRfcPbNative = nativePerBankRefresh
        ? tRfcPbNs[densityIndex(cfg.density)]
        : Nanoseconds{};
    Nanoseconds tRfcSbNsVal = banksPerGroup > 0
        ? tRfcSbNs[densityIndex(cfg.density)]
        : Nanoseconds{};

    // Fine granularity refresh: the command rate rises by 2x/4x while
    // tRFC shrinks only by the spec's divisors (Section 6.5; native
    // tRFC2/tRFC4 ratios on DDR4). The explicit refresh.fgrRate key
    // generalizes the rate axis beyond the FGR2x/FGR4x profiles, so
    // per-bank mechanisms (HiRA, DARP) can run on FGR-scaled timing.
    int rate = 1;
    if (cfg.refresh == RefreshMode::kFgr2x)
        rate = 2;
    else if (cfg.refresh == RefreshMode::kFgr4x)
        rate = 4;
    if (cfg.fgrRate > 0)
        rate = cfg.fgrRate;
    if (rate > 1) {
        const double divisor = t.rfcDivisorFor(rate);
        tRefiAbNs = tRefiAbNs / rate;
        tRfcAbNs = tRfcAbNs / divisor;
        tRfcPbNative = tRfcPbNative / divisor;
        tRfcSbNsVal = tRfcSbNsVal / divisor;
    }
    const Nanoseconds tRfcPbNsVal = nativePerBankRefresh
        ? tRfcPbNative
        : tRfcAbNs / pbRfcDivisor;

    t.tRefiAb = TimingParams::nsToCyclesFloor(tRefiAbNs, t.tCkNs);
    t.tRfcAb = TimingParams::nsToCycles(tRfcAbNs, t.tCkNs);

    // Self-refresh protocol: the exit latency tracks the *active*
    // all-bank refresh latency (tRfcAbNs is already FGR-scaled here,
    // so FGR modes get their shorter exit -- DDR5's tXS_FGR
    // semantics); tXsFgr reports the data-sheet figure at the native
    // 2x granularity regardless of the selected rate. tCKESR is the
    // minimum residency, never below one cycle.
    t.tXs = TimingParams::nsToCycles(tRfcAbNs + tXsDeltaNs, t.tCkNs);
    t.tXsFgr = TimingParams::nsToCycles(
        tRfcAbNsFor(cfg.density) / fgrDivisor2x + tXsDeltaNs, t.tCkNs);
    t.tCkesr = std::max(Cycles(1),
                        TimingParams::nsToCycles(tCkesrNs, t.tCkNs));

    // Per-bank refresh: tREFIpb = tREFIab / banks; tRFCpb from the
    // native LPDDR table when the device has first-class REFpb,
    // otherwise the LPDDR2-derived tRFCab ratio (Section 3.1).
    t.tRefiPb = t.tRefiAb / cfg.org.banksPerRank;
    t.tRfcPb = TimingParams::nsToCycles(tRfcPbNsVal, t.tCkNs);

    // Same-bank refresh (DDR5 REFsb): one command refreshes a whole
    // bank-group slice, so a slice command is due every tREFIab /
    // (banks / slice size). The latency is the device's tRFCsb --
    // held at the data-sheet value even for re-sliced what-if
    // geometries (a conservative simplification). All three fields
    // stay zero on specs without same-bank refresh.
    if (banksPerGroup > 0) {
        const int slice = cfg.sameBankGroupSize > 0
            ? cfg.sameBankGroupSize
            : banksPerGroup;
        if (cfg.org.banksPerRank % slice == 0) {
            const int groups = cfg.org.banksPerRank / slice;
            t.banksPerGroup = slice;
            t.tRefiSb = t.tRefiAb / groups;
            t.tRfcSb = TimingParams::nsToCycles(tRfcSbNsVal, t.tCkNs);
            // Energy geometry at the resolved organization/density: a
            // full sweep of `groups` slice commands costs one REFab's
            // charge (FGR scales tRFCsb and tRFCab together, so the
            // ratio is rate-invariant).
            t.refSbEnergyDivisor =
                groups * (tRfcSbNs[densityIndex(cfg.density)] /
                          tRfcAbNsFor(cfg.density));
        }
    }

    // Each refresh command covers rowsPerBank/refreshesPerRetention
    // rows per bank, scaled by the FGR rate (more frequent commands
    // refresh fewer rows). Retention length does not change the
    // per-command row count, only the command spacing.
    t.rowsPerRefresh = cfg.org.rowsPerBank / refreshesPerRetention;
    if (rate > 1)
        t.rowsPerRefresh = std::max(1, t.rowsPerRefresh / rate);
    if (t.rowsPerRefresh < 1)
        t.rowsPerRefresh = 1;

    if (cfg.tFawOverride > 0)
        t.tFaw = Cycles(cfg.tFawOverride);
    if (cfg.tRrdOverride > 0)
        t.tRrd = Cycles(cfg.tRrdOverride);

    // Per-bank refresh must fit inside its command interval; FGR modes
    // never issue REFpb, so the constraint only binds when REFpb is
    // used.
    if (cfg.refresh == RefreshMode::kPerBank ||
        cfg.refresh == RefreshMode::kDarp) {
        if (t.tRefiPb <= t.tRfcPb) {
            DSARP_FATALF(
                "config key 'refresh.fgrRate'/'densityGb': per-bank "
                "refresh does not fit its command interval on spec "
                "'%s' (tREFIpb %lld <= tRFCpb %lld cycles at %s, FGR "
                "rate %dx); lower the rate or the density",
                name.c_str(),
                static_cast<long long>(t.tRefiPb.count()),
                static_cast<long long>(t.tRfcPb.count()),
                densityName(cfg.density), rate);
        }
    }
    if (cfg.refresh == RefreshMode::kSameBank) {
        DSARP_ASSERT(t.banksPerGroup > 0,
                     "same-bank refresh needs a spec with bank-group "
                     "support (and a slice that divides banksPerRank)");
        DSARP_ASSERT(t.tRefiSb > t.tRfcSb, "tREFIsb must exceed tRFCsb");
    }
    return t;
}

DramSpecRegistry &
DramSpecRegistry::instance()
{
    static DramSpecRegistry registry;
    return registry;
}

bool
DramSpecRegistry::add(DramSpec spec, std::vector<std::string> aliases)
{
    DSARP_ASSERT(!spec.name.empty(), "DRAM spec needs a name");
    DSARP_ASSERT(spec.tCkNs > Nanoseconds(0.0),
                 "DRAM spec needs a positive tCK");

    const std::lock_guard<std::mutex> lock(mutex_);
    aliases.push_back(spec.name);
    const std::size_t slot = entries_.size();
    entries_.push_back(std::move(spec));
    for (const std::string &alias : aliases) {
        const auto [it, inserted] = index_.emplace(lowered(alias), slot);
        (void)it;
        if (!inserted) {
            std::fprintf(stderr, "DRAM spec name '%s' registered twice\n",
                         alias.c_str());
            std::abort();
        }
    }
    return true;
}

const DramSpec *
DramSpecRegistry::findLocked(const std::string &name) const
{
    const auto it = index_.find(lowered(name));
    return it == index_.end() ? nullptr : &entries_[it->second];
}

bool
DramSpecRegistry::has(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return findLocked(name) != nullptr;
}

const DramSpec *
DramSpecRegistry::find(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return findLocked(name);
}

const DramSpec &
DramSpecRegistry::at(const std::string &name) const
{
    std::string unknown;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (const DramSpec *spec = findLocked(name))
            return *spec;
        unknown = unknownSpecMessageLocked(name);
    }
    DSARP_FATAL(unknown.c_str());
}

std::string
DramSpecRegistry::unknownSpecMessageLocked(const std::string &name) const
{
    std::ostringstream msg;
    msg << "config key 'dram.spec': unknown DRAM spec '" << name
        << "'; known:";
    for (const std::string &known : namesLocked())
        msg << ' ' << known;
    return msg.str();
}

std::string
DramSpecRegistry::unknownSpecMessage(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return unknownSpecMessageLocked(name);
}

std::vector<std::string>
DramSpecRegistry::namesLocked() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const DramSpec &spec : entries_)
        out.push_back(spec.name);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
DramSpecRegistry::names() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return namesLocked();
}

} // namespace dsarp
