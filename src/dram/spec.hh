/**
 * @file
 * String-keyed, self-registering registry of DRAM device specs.
 *
 * A DramSpec is the complete data sheet the simulator needs for one
 * device family x speed bin: base clock, core timings in bus cycles,
 * the density -> tRFCab table, refresh geometry (slots per retention,
 * the per-bank tRFC ratio or a native REFpb latency table), and the
 * fine-granularity-refresh tRFC divisors. Everything derivable from
 * those inputs -- tRtw, tREFIab/pb in cycles, FGR rate scaling,
 * rows-per-refresh coverage -- is computed centrally by timingFor(),
 * never copy-pasted per spec.
 *
 * Specs register themselves from static initializers in their own
 * translation units under src/dram/specs/ (see the
 * DSARP_REGISTER_DRAM_SPEC macro), exactly like the refresh-policy
 * registry: adding a DRAM generation is one new .cc file -- no enum,
 * no switch, no name table to edit. The core is linked as a CMake
 * OBJECT library so the registrars are never dead-stripped.
 *
 * Selection: set MemConfig::dramSpec (config key "dram.spec") to a
 * registered name; lookups are case-insensitive and aliases are
 * accepted. "DDR3-1333" is the default and reproduces the paper's
 * Table 1 numbers bit-identically.
 */

#ifndef DSARP_DRAM_SPEC_HH
#define DSARP_DRAM_SPEC_HH

#include <array>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.hh"
#include "dram/timing.hh"

namespace dsarp {

/** Index into the per-density tables (8/16/32 Gb). */
int densityIndex(Density d);

/**
 * Datasheet currents in mA and the supply voltage for the energy model
 * (sim/energy.hh). Every DramSpec carries its own set; the defaults
 * are the Micron 8 Gb TwinDie DDR3-1333 approximation the paper's
 * Section 5 methodology uses, which keeps DDR3-1333 bit-identical.
 */
struct EnergyParams
{
    double vdd = 1.5;     ///< Volts.
    double idd0 = 95.0;   ///< One-bank ACT-PRE current.
    double idd2n = 42.0;  ///< Precharge standby.
    double idd3n = 45.0;  ///< Active standby.
    double idd4r = 180.0; ///< Burst read.
    double idd4w = 185.0; ///< Burst write.
    double idd5b = 215.0; ///< Burst (all-bank) refresh.

    /**
     * Per-cycle current of a per-bank refresh, as a divisor of the
     * all-bank refresh current above background: (IDD5B - IDD3N) /
     * refPbCurrentDivisor. This encodes the *spec's* refresh geometry
     * -- the bank count its tRFC tables assume (8), not whatever
     * banksPerRank the config picked -- and native-REFpb parts derive
     * it from their per-bank tRFC table (banks x tRFCpb / tRFCab) so
     * a full-rank REFpb sweep costs the same charge as one REFab.
     */
    double refPbCurrentDivisor = 8.0;

    /**
     * IDD6-style self-refresh current in mA, billed per rank-cycle
     * while the energy model's self-refresh state is armed
     * (MemConfig::selfRefreshIdleCycles > 0) and the rank has been
     * idle past the threshold. Always below IDD2N.
     */
    double idd6 = 12.0;

    /** Micron 8 Gb TwinDie DDR3-1333 approximation [29]. */
    static EnergyParams micron8GbDdr3() { return EnergyParams{}; }
};

/** One DRAM device spec: the data-sheet inputs for timingFor(). */
struct DramSpec
{
    std::string name;     ///< Canonical spelling, e.g. "DDR4-2400".
    std::string summary;  ///< One-liner for --list and docs.

    Nanoseconds tCkNs{1.5};  ///< Bus clock period.

    // Core timings in bus cycles (same meanings as TimingParams).
    Cycles tCl{9};
    Cycles tCwl{7};
    Cycles tRcd{9};
    Cycles tRp{9};
    Cycles tRas{24};
    Cycles tRc{33};
    Cycles tBl{4};
    Cycles tCcd{4};
    Cycles tRtp{5};
    Cycles tWr{10};
    Cycles tWtr{5};
    Cycles tRrd{4};
    Cycles tFaw{20};
    Cycles tRtrs{2};

    /** All-bank refresh latency per density (8/16/32 Gb). */
    std::array<Nanoseconds, 3> tRfcAbNs = {
        Nanoseconds(350.0), Nanoseconds(530.0), Nanoseconds(890.0)};

    /**
     * Per-bank refresh latency. Specs without a native REFpb command
     * (DDR3/DDR4) leave tRfcPbNs zeroed and model REFpb through the
     * LPDDR2-derived ratio tRFCpb = tRFCab / pbRfcDivisor (Section
     * 3.1). LPDDR parts with first-class per-bank refresh supply the
     * native ns table instead, which then takes precedence.
     */
    double pbRfcDivisor = 2.3;
    std::array<Nanoseconds, 3> tRfcPbNs = {};

    /** True when REFpb/SARPpb run on a native per-bank latency table. */
    bool nativePerBankRefresh = false;

    /**
     * Same-bank refresh (DDR5 REFsb): banks per bank group, i.e. how
     * many banks one REFsb command refreshes together (DDR5: 4, the
     * banks of one bank-group slice). 0 means the device has no
     * same-bank refresh command (DDR3/DDR4/LPDDR4). When set, the
     * native per-slice latency table below must be populated;
     * timingFor() derives tREFIsb = tREFIab / (banksPerRank /
     * banksPerGroup) so the slices cover every bank exactly once per
     * tREFIab window. MemConfig::sameBankGroupSize can re-slice a
     * supporting spec for what-if sweeps.
     */
    int banksPerGroup = 0;

    /** Same-bank refresh latency per density (8/16/32 Gb). */
    std::array<Nanoseconds, 3> tRfcSbNs = {};

    /**
     * Self-refresh protocol data. tXS (exit to the first valid
     * command) is tRFCab plus this settle delta (JEDEC keeps the two
     * coupled: the device finishes an internal refresh burst on
     * exit), so timingFor() derives it from the *active* tRFC --
     * under FGR rates the exit shortens with the refresh commands,
     * which on DDR5 is exactly the data-sheet tXS_FGR. tCKESR is the
     * minimum self-refresh residency (the CKE-low pulse width).
     */
    Nanoseconds tXsDeltaNs{10.0};
    Nanoseconds tCkesrNs{7.5};

    /** REFab slots per retention period (JEDEC: 8192). */
    int refreshesPerRetention = 8192;

    /**
     * Fine granularity refresh: tRFC shrinks by these divisors while
     * the command rate rises 2x/4x. DDR3 parts have no native FGR;
     * they carry the paper's Section 6.5 projections (1.35/1.63).
     * DDR4 carries its data-sheet tRFC1/tRFC2/tRFC4 ratios.
     */
    double fgrDivisor2x = 1.35;
    double fgrDivisor4x = 1.63;

    /** Data-bus width of one channel in bits; with tBl bus cycles per
     *  burst (DDR: 2 x tBl transfers), one burst moves burstBytes(). */
    int busWidthBits = 64;

    /**
     * Independent sub-channels per DIMM (DDR5: 2, everything else 1).
     * The spec's channel-level fields above describe *one* sub-channel
     * (DDR5-4800: 32 data bits, BL16, 64 B bursts); under the
     * "ddr5-subch" address map MemConfig::finalize() expands every
     * configured channel into this many full channels, so DDR5
     * topology falls out of the spec, not the config.
     */
    int subChannels = 1;

    /**
     * HiRA (hidden row activation, Yağlıkçı et al., MICRO'22)
     * characterization: the delay between a demand activation and the
     * hidden refresh activation tucked beneath it, and the fraction of
     * row pairs for which hiding is reliable -- ~32% for refresh
     * beneath an access, ~78% for refresh parallelized with another
     * refresh of the same bank.
     */
    Nanoseconds tHiRANs{7.5};
    double hiraActCoverage = 0.32;
    double hiraRefCoverage = 0.78;

    /** Datasheet IDD/vdd set for the energy model. */
    EnergyParams energy;

    /** Bytes one burst transfers: 2 x tBl transfers x bus width. */
    int burstBytes() const
    {
        return static_cast<int>(2 * tBl.count()) * (busWidthBits / 8);
    }

    /** tRFCab for a density (before FGR scaling). */
    Nanoseconds tRfcAbNsFor(Density d) const
    {
        return tRfcAbNs[densityIndex(d)];
    }

    /**
     * Derive the full TimingParams for @p cfg: copies the core
     * timings, computes tRtw = tCL + tBL + 2 - tCWL, scales tREFI/tRFC
     * for density, retention, and the FGR rate selected by
     * cfg.refresh, derives tREFIpb = tREFIab / banks and the per-bank
     * tRFC (native table or ratio), applies the tFAW/tRRD overrides,
     * and checks that REFpb schedules fit their command interval.
     */
    TimingParams timingFor(const MemConfig &cfg) const;
};

class DramSpecRegistry
{
  public:
    /**
     * The process-wide registry. A function-local static, so the
     * first registrar to run -- in whatever translation-unit order
     * the linker chose -- constructs it before using it (no
     * static-init-order hazard), and C++11 magic-static semantics
     * make that construction race-free. All member functions are
     * additionally mutex-guarded, so runtime registration (tests,
     * plugins) is safe against concurrent lookups from the parallel
     * sweep harness.
     */
    static DramSpecRegistry &instance();

    /**
     * Register @p spec under its canonical name and every alias.
     * Returns true so static registrars can capture the result; a
     * duplicate name is a fatal error at startup.
     */
    bool add(DramSpec spec, std::vector<std::string> aliases = {});

    bool has(const std::string &name) const;

    /** Case-insensitive lookup; nullptr when unknown. */
    const DramSpec *find(const std::string &name) const;

    /** find(), but a fatal named-key error listing known specs. */
    const DramSpec &at(const std::string &name) const;

    /** The named-key error text at() dies with (for callers that
     *  collect errors instead of exiting). */
    std::string unknownSpecMessage(const std::string &name) const;

    /** Canonical names, sorted; aliases are not repeated. */
    std::vector<std::string> names() const;

  private:
    const DramSpec *findLocked(const std::string &name) const;
    std::string unknownSpecMessageLocked(const std::string &name) const;
    std::vector<std::string> namesLocked() const;

    /** Guards index_/entries_; never held while calling out. */
    mutable std::mutex mutex_;

    std::map<std::string, std::size_t> index_;  ///< lowercase name -> slot.

    /** A deque so references returned by find()/at() stay valid when
     *  later registrations grow the registry (Simulation caches one
     *  for its whole lifetime). */
    std::deque<DramSpec> entries_;
};

/**
 * Define a static registrar. Use at namespace scope in the spec's
 * translation unit:
 *
 *   DSARP_REGISTER_DRAM_SPEC(ddr4_2400, []() {
 *       DramSpec s;
 *       s.name = "DDR4-2400";
 *       ...
 *       return s;
 *   }(), {"DDR4"})
 */
#define DSARP_REGISTER_DRAM_SPEC(ident, ...) \
    namespace { \
    const bool dsarpDramSpecRegistrar_##ident [[maybe_unused]] = \
        ::dsarp::DramSpecRegistry::instance().add(__VA_ARGS__); \
    }

} // namespace dsarp

#endif // DSARP_DRAM_SPEC_HH
