/**
 * @file
 * String-keyed, self-registering registry of DRAM device specs.
 *
 * A DramSpec is the complete data sheet the simulator needs for one
 * device family x speed bin: base clock, core timings in bus cycles,
 * the density -> tRFCab table, refresh geometry (slots per retention,
 * the per-bank tRFC ratio or a native REFpb latency table), and the
 * fine-granularity-refresh tRFC divisors. Everything derivable from
 * those inputs -- tRtw, tREFIab/pb in cycles, FGR rate scaling,
 * rows-per-refresh coverage -- is computed centrally by timingFor(),
 * never copy-pasted per spec.
 *
 * Specs register themselves from static initializers in their own
 * translation units under src/dram/specs/ (see the
 * DSARP_REGISTER_DRAM_SPEC macro), exactly like the refresh-policy
 * registry: adding a DRAM generation is one new .cc file -- no enum,
 * no switch, no name table to edit. The core is linked as a CMake
 * OBJECT library so the registrars are never dead-stripped.
 *
 * Selection: set MemConfig::dramSpec (config key "dram.spec") to a
 * registered name; lookups are case-insensitive and aliases are
 * accepted. "DDR3-1333" is the default and reproduces the paper's
 * Table 1 numbers bit-identically.
 */

#ifndef DSARP_DRAM_SPEC_HH
#define DSARP_DRAM_SPEC_HH

#include <array>
#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "dram/timing.hh"

namespace dsarp {

/** Index into the per-density tables (8/16/32 Gb). */
int densityIndex(Density d);

/** One DRAM device spec: the data-sheet inputs for timingFor(). */
struct DramSpec
{
    std::string name;     ///< Canonical spelling, e.g. "DDR4-2400".
    std::string summary;  ///< One-liner for --list and docs.

    double tCkNs = 1.5;   ///< Bus clock period in nanoseconds.

    // Core timings in bus cycles (same meanings as TimingParams).
    int tCl = 9;
    int tCwl = 7;
    int tRcd = 9;
    int tRp = 9;
    int tRas = 24;
    int tRc = 33;
    int tBl = 4;
    int tCcd = 4;
    int tRtp = 5;
    int tWr = 10;
    int tWtr = 5;
    int tRrd = 4;
    int tFaw = 20;
    int tRtrs = 2;

    /** All-bank refresh latency in ns per density (8/16/32 Gb). */
    std::array<double, 3> tRfcAbNs = {350.0, 530.0, 890.0};

    /**
     * Per-bank refresh latency. Specs without a native REFpb command
     * (DDR3/DDR4) leave tRfcPbNs zeroed and model REFpb through the
     * LPDDR2-derived ratio tRFCpb = tRFCab / pbRfcDivisor (Section
     * 3.1). LPDDR parts with first-class per-bank refresh supply the
     * native ns table instead, which then takes precedence.
     */
    double pbRfcDivisor = 2.3;
    std::array<double, 3> tRfcPbNs = {0.0, 0.0, 0.0};

    /** True when REFpb/SARPpb run on a native per-bank latency table. */
    bool nativePerBankRefresh = false;

    /** REFab slots per retention period (JEDEC: 8192). */
    int refreshesPerRetention = 8192;

    /**
     * Fine granularity refresh: tRFC shrinks by these divisors while
     * the command rate rises 2x/4x. DDR3 parts have no native FGR;
     * they carry the paper's Section 6.5 projections (1.35/1.63).
     * DDR4 carries its data-sheet tRFC1/tRFC2/tRFC4 ratios.
     */
    double fgrDivisor2x = 1.35;
    double fgrDivisor4x = 1.63;

    /** tRFCab in ns for a density (before FGR scaling). */
    double tRfcAbNsFor(Density d) const { return tRfcAbNs[densityIndex(d)]; }

    /**
     * Derive the full TimingParams for @p cfg: copies the core
     * timings, computes tRtw = tCL + tBL + 2 - tCWL, scales tREFI/tRFC
     * for density, retention, and the FGR rate selected by
     * cfg.refresh, derives tREFIpb = tREFIab / banks and the per-bank
     * tRFC (native table or ratio), applies the tFAW/tRRD overrides,
     * and checks that REFpb schedules fit their command interval.
     */
    TimingParams timingFor(const MemConfig &cfg) const;
};

class DramSpecRegistry
{
  public:
    /** The process-wide registry (initialized on first use). */
    static DramSpecRegistry &instance();

    /**
     * Register @p spec under its canonical name and every alias.
     * Returns true so static registrars can capture the result; a
     * duplicate name is a fatal error at startup.
     */
    bool add(DramSpec spec, std::vector<std::string> aliases = {});

    bool has(const std::string &name) const;

    /** Case-insensitive lookup; nullptr when unknown. */
    const DramSpec *find(const std::string &name) const;

    /** find(), but a fatal named-key error listing known specs. */
    const DramSpec &at(const std::string &name) const;

    /** The named-key error text at() dies with (for callers that
     *  collect errors instead of exiting). */
    std::string unknownSpecMessage(const std::string &name) const;

    /** Canonical names, sorted; aliases are not repeated. */
    std::vector<std::string> names() const;

  private:
    std::map<std::string, std::size_t> index_;  ///< lowercase name -> slot.

    /** A deque so references returned by find()/at() stay valid when
     *  later registrations grow the registry (Simulation caches one
     *  for its whole lifetime). */
    std::deque<DramSpec> entries_;
};

/**
 * Define a static registrar. Use at namespace scope in the spec's
 * translation unit:
 *
 *   DSARP_REGISTER_DRAM_SPEC(ddr4_2400, []() {
 *       DramSpec s;
 *       s.name = "DDR4-2400";
 *       ...
 *       return s;
 *   }(), {"DDR4"})
 */
#define DSARP_REGISTER_DRAM_SPEC(ident, ...) \
    namespace { \
    const bool dsarpDramSpecRegistrar_##ident [[maybe_unused]] = \
        ::dsarp::DramSpecRegistry::instance().add(__VA_ARGS__); \
    }

} // namespace dsarp

#endif // DSARP_DRAM_SPEC_HH
