/**
 * @file
 * DDR3-1066: the slower 7-7-7 bin at tCK = 1.875 ns. Core latencies
 * are near-constant in nanoseconds across DDR3 bins, so the cycle
 * counts shrink with the clock; the density -> tRFCab table is a chip
 * property and is shared with the other DDR3 bins -- which is exactly
 * the Figure 5 observation that refresh latency does not improve with
 * interface speed.
 */

#include "dram/spec.hh"

namespace dsarp {

DSARP_REGISTER_DRAM_SPEC(ddr3_1066, []() {
    DramSpec s;
    s.name = "DDR3-1066";
    s.summary = "slow DDR3 bin: 7-7-7, tCK 1.875 ns";
    s.tCkNs = Nanoseconds(1.875);
    s.tCl = Cycles(7);
    s.tCwl = Cycles(6);
    s.tRcd = Cycles(7);
    s.tRp = Cycles(7);
    s.tRas = Cycles(20);   // 37.5 ns.
    s.tRc = Cycles(27);
    s.tBl = Cycles(4);
    s.tCcd = Cycles(4);
    s.tRtp = Cycles(4);    // 7.5 ns.
    s.tWr = Cycles(8);     // 15 ns.
    s.tWtr = Cycles(4);
    s.tRrd = Cycles(4);    // 7.5 ns.
    s.tFaw = Cycles(20);   // 37.5 ns.
    s.tRtrs = Cycles(2);
    s.tRfcAbNs = {Nanoseconds(350.0), Nanoseconds(530.0),
                  Nanoseconds(890.0)};  // Density property, not bin.
    // Self-refresh: tXS = tRFCab + 10 ns; DDR3 family tCKESR.
    s.tXsDeltaNs = Nanoseconds(10.0);
    s.tCkesrNs = Nanoseconds(7.5);
    s.pbRfcDivisor = 2.3;
    s.fgrDivisor2x = 1.35;
    s.fgrDivisor4x = 1.63;
    s.busWidthBits = 64;   // BL8 x 64-bit channel: 64 B bursts.
    // Same Micron 8 Gb DDR3 IDD set as DDR3-1333; the slower clock
    // shows up through tCK in the energy integration, not the currents.
    s.energy = EnergyParams::micron8GbDdr3();
    return s;
}())

} // namespace dsarp
