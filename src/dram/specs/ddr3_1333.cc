/**
 * @file
 * DDR3-1333: the paper's baseline device (Table 1) and the simulator
 * default. Core timings are the 9-9-9 bin at tCK = 1.5 ns; tRFCab =
 * 350/530/890 ns for 8/16/32 Gb (the paper's Projection 2 values);
 * REFpb is modeled through the LPDDR2-derived tRFCab/2.3 ratio of
 * Section 3.1; FGR carries the Section 6.5 projections.
 *
 * This spec must reproduce the pre-registry hard-coded parameter set
 * bit-identically -- tests/test_timing.cc pins the derived values.
 */

#include "dram/spec.hh"

namespace dsarp {

DSARP_REGISTER_DRAM_SPEC(ddr3_1333, []() {
    DramSpec s;
    s.name = "DDR3-1333";
    s.summary = "paper baseline (Table 1): 9-9-9, tCK 1.5 ns";
    s.tCkNs = 1.5;
    s.tCl = 9;
    s.tCwl = 7;
    s.tRcd = 9;
    s.tRp = 9;
    s.tRas = 24;
    s.tRc = 33;
    s.tBl = 4;
    s.tCcd = 4;
    s.tRtp = 5;
    s.tWr = 10;
    s.tWtr = 5;
    s.tRrd = 4;
    s.tFaw = 20;
    s.tRtrs = 2;
    s.tRfcAbNs = {350.0, 530.0, 890.0};
    // Self-refresh: tXS = tRFCab + 10 ns; tCKESR = tCKE(min) + 1 tCK
    // (5.625 ns + 1.5 ns, rounded into the 7.5 ns family figure).
    s.tXsDeltaNs = 10.0;
    s.tCkesrNs = 7.5;
    s.pbRfcDivisor = 2.3;
    s.fgrDivisor2x = 1.35;
    s.fgrDivisor4x = 1.63;
    s.busWidthBits = 64;   // BL8 x 64-bit channel: 64 B bursts.
    s.tHiRANs = 7.5;       // Hidden ACT follows the demand ACT by 5 tCK.
    s.hiraActCoverage = 0.32;
    s.hiraRefCoverage = 0.78;
    // The paper's Section 5 energy set: Micron 8 Gb TwinDie DDR3 at
    // 1.5 V (the EnergyParams defaults; spelled out so the golden
    // energy numbers are pinned in data, not by accident).
    s.energy.vdd = 1.5;
    s.energy.idd0 = 95.0;
    s.energy.idd2n = 42.0;
    s.energy.idd3n = 45.0;
    s.energy.idd4r = 180.0;
    s.energy.idd4w = 185.0;
    s.energy.idd5b = 215.0;
    s.energy.refPbCurrentDivisor = 8.0;  // Ratio-model geometry: 8 banks.
    return s;
}(), {"DDR3"})

} // namespace dsarp
