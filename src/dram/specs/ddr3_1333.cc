/**
 * @file
 * DDR3-1333: the paper's baseline device (Table 1) and the simulator
 * default. Core timings are the 9-9-9 bin at tCK = 1.5 ns; tRFCab =
 * 350/530/890 ns for 8/16/32 Gb (the paper's Projection 2 values);
 * REFpb is modeled through the LPDDR2-derived tRFCab/2.3 ratio of
 * Section 3.1; FGR carries the Section 6.5 projections.
 *
 * This spec must reproduce the pre-registry hard-coded parameter set
 * bit-identically -- tests/test_timing.cc pins the derived values.
 */

#include "dram/spec.hh"

namespace dsarp {

DSARP_REGISTER_DRAM_SPEC(ddr3_1333, []() {
    DramSpec s;
    s.name = "DDR3-1333";
    s.summary = "paper baseline (Table 1): 9-9-9, tCK 1.5 ns";
    s.tCkNs = Nanoseconds(1.5);
    s.tCl = Cycles(9);
    s.tCwl = Cycles(7);
    s.tRcd = Cycles(9);
    s.tRp = Cycles(9);
    s.tRas = Cycles(24);
    s.tRc = Cycles(33);
    s.tBl = Cycles(4);
    s.tCcd = Cycles(4);
    s.tRtp = Cycles(5);
    s.tWr = Cycles(10);
    s.tWtr = Cycles(5);
    s.tRrd = Cycles(4);
    s.tFaw = Cycles(20);
    s.tRtrs = Cycles(2);
    s.tRfcAbNs = {Nanoseconds(350.0), Nanoseconds(530.0), Nanoseconds(890.0)};
    // Self-refresh: tXS = tRFCab + 10 ns; tCKESR = tCKE(min) + 1 tCK
    // (5.625 ns + 1.5 ns, rounded into the 7.5 ns family figure).
    s.tXsDeltaNs = Nanoseconds(10.0);
    s.tCkesrNs = Nanoseconds(7.5);
    s.pbRfcDivisor = 2.3;
    s.fgrDivisor2x = 1.35;
    s.fgrDivisor4x = 1.63;
    s.busWidthBits = 64;   // BL8 x 64-bit channel: 64 B bursts.
    // Hidden ACT follows the demand ACT by 5 tCK.
    s.tHiRANs = Nanoseconds(7.5);
    s.hiraActCoverage = 0.32;
    s.hiraRefCoverage = 0.78;
    // The paper's Section 5 energy set: Micron 8 Gb TwinDie DDR3 at
    // 1.5 V (the EnergyParams defaults; spelled out so the golden
    // energy numbers are pinned in data, not by accident).
    s.energy.vdd = 1.5;
    s.energy.idd0 = 95.0;
    s.energy.idd2n = 42.0;
    s.energy.idd3n = 45.0;
    s.energy.idd4r = 180.0;
    s.energy.idd4w = 185.0;
    s.energy.idd5b = 215.0;
    s.energy.refPbCurrentDivisor = 8.0;  // Ratio-model geometry: 8 banks.
    return s;
}(), {"DDR3"})

} // namespace dsarp
