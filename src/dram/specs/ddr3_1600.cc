/**
 * @file
 * DDR3-1600: the faster 11-11-11 bin at tCK = 1.25 ns. Same
 * density -> tRFCab table as the other DDR3 bins (refresh latency is a
 * chip property); the higher clock turns the same nanoseconds into
 * more lockout cycles, which is why refresh overhead worsens with
 * interface speed.
 */

#include "dram/spec.hh"

namespace dsarp {

DSARP_REGISTER_DRAM_SPEC(ddr3_1600, []() {
    DramSpec s;
    s.name = "DDR3-1600";
    s.summary = "fast DDR3 bin: 11-11-11, tCK 1.25 ns";
    s.tCkNs = Nanoseconds(1.25);
    s.tCl = Cycles(11);
    s.tCwl = Cycles(8);
    s.tRcd = Cycles(11);
    s.tRp = Cycles(11);
    s.tRas = Cycles(28);   // 35 ns.
    s.tRc = Cycles(39);
    s.tBl = Cycles(4);
    s.tCcd = Cycles(4);
    s.tRtp = Cycles(6);    // 7.5 ns.
    s.tWr = Cycles(12);    // 15 ns.
    s.tWtr = Cycles(6);
    s.tRrd = Cycles(5);    // 6 ns (1 KB pages).
    s.tFaw = Cycles(24);   // 30 ns.
    s.tRtrs = Cycles(2);
    s.tRfcAbNs = {Nanoseconds(350.0), Nanoseconds(530.0),
                  Nanoseconds(890.0)};  // Density property, not bin.
    // Self-refresh: tXS = tRFCab + 10 ns; DDR3 family tCKESR.
    s.tXsDeltaNs = Nanoseconds(10.0);
    s.tCkesrNs = Nanoseconds(7.5);
    s.pbRfcDivisor = 2.3;
    s.fgrDivisor2x = 1.35;
    s.fgrDivisor4x = 1.63;
    s.busWidthBits = 64;   // BL8 x 64-bit channel: 64 B bursts.
    // Same Micron 8 Gb DDR3 IDD set as DDR3-1333 (family property).
    s.energy = EnergyParams::micron8GbDdr3();
    return s;
}())

} // namespace dsarp
