/**
 * @file
 * DDR4-2400: 16-16-16 bin at tCK = 0.833 ns with *native* fine
 * granularity refresh -- the 2x/4x divisors are the data-sheet
 * tRFC1/tRFC2/tRFC4 ratios (350/260/160 ns at 8 Gb), not the paper's
 * Section 6.5 DDR3 projections. Refresh granularity stays at 8192
 * slots per retention; the 16 Gb point uses the later-generation
 * 550 ns tRFC1 and 32 Gb keeps the paper's 890 ns projection.
 */

#include "dram/spec.hh"

namespace dsarp {

DSARP_REGISTER_DRAM_SPEC(ddr4_2400, []() {
    DramSpec s;
    s.name = "DDR4-2400";
    s.summary = "DDR4 with native FGR: 16-16-16, tCK 0.833 ns";
    s.tCkNs = Nanoseconds(0.833);
    s.tCl = Cycles(16);
    s.tCwl = Cycles(12);
    s.tRcd = Cycles(16);
    s.tRp = Cycles(16);
    s.tRas = Cycles(39);   // 32 ns.
    s.tRc = Cycles(55);
    s.tBl = Cycles(4);
    s.tCcd = Cycles(6);    // tCCD_L.
    s.tRtp = Cycles(9);    // 7.5 ns.
    s.tWr = Cycles(18);    // 15 ns.
    s.tWtr = Cycles(9);    // tWTR_L.
    s.tRrd = Cycles(7);    // tRRD_L, 5.3 ns.
    s.tFaw = Cycles(26);   // 21 ns (x8).
    s.tRtrs = Cycles(2);
    s.tRfcAbNs = {Nanoseconds(350.0), Nanoseconds(550.0),
                  Nanoseconds(890.0)};  // tRFC1; 16 Gb is the real part.
    // Self-refresh: tXS = tRFC1 + 10 ns; tCKESR = tCKE (5 ns) + 1 tCK.
    s.tXsDeltaNs = Nanoseconds(10.0);
    s.tCkesrNs = Nanoseconds(5.833);
    s.pbRfcDivisor = 2.3;  // DDR4 has no REFpb; same Section 3.1 model.
    // Native FGR: tRFC2 = 260 ns, tRFC4 = 160 ns at 8 Gb.
    s.fgrDivisor2x = 350.0 / 260.0;
    s.fgrDivisor4x = 350.0 / 160.0;
    s.busWidthBits = 64;   // BL8 x 64-bit channel: 64 B bursts.
    s.tHiRANs = Nanoseconds(7.5);
    s.hiraActCoverage = 0.32;
    s.hiraRefCoverage = 0.78;
    // Micron 8 Gb DDR4-2400 x8 approximation at 1.2 V: lower currents
    // and supply than DDR3, higher burst-read draw per the data sheet.
    s.energy.vdd = 1.2;
    s.energy.idd0 = 58.0;
    s.energy.idd2n = 37.0;
    s.energy.idd3n = 48.0;
    s.energy.idd4r = 145.0;
    s.energy.idd4w = 130.0;
    s.energy.idd5b = 190.0;
    s.energy.idd6 = 22.0;  // Self-refresh (energy-model state only).
    s.energy.refPbCurrentDivisor = 8.0;  // Ratio-model geometry: 8 banks.
    return s;
}(), {"DDR4"})

} // namespace dsarp
