/**
 * @file
 * DDR5-4800: one 32-bit subchannel of the 40-40-40 bin at tCK =
 * 0.417 ns, with the standard's own adoption of refresh-access
 * parallelism -- *same-bank refresh* (REFsb). The canonical device is
 * 2 ranks x 8 bank groups x 4 banks (32 banks/rank; run it with
 * banksPerRank=32); one REFsb command refreshes one bank-group slice
 * of 4 banks in tRFCsb while every other bank group keeps serving
 * accesses, which is exactly the rank-granularity half of what the
 * paper's DARP/SARP build in controller logic (Section 3).
 *
 * Fine granularity refresh is native at 2x (the data-sheet
 * tRFC1/tRFC2 ratio); DDR5 defines no 4x all-bank mode, so the 4x
 * divisor is a projection in the spirit of the paper's Section 6.5.
 * BL16 on the 32-bit subchannel moves 64 B per burst -- the same
 * column granularity as DDR3's BL8 x 64-bit.
 */

#include "dram/spec.hh"

namespace dsarp {

DSARP_REGISTER_DRAM_SPEC(ddr5_4800, []() {
    DramSpec s;
    s.name = "DDR5-4800";
    s.summary = "DDR5 with same-bank refresh: 40-40-40, tCK 0.417 ns";
    s.tCkNs = Nanoseconds(0.417);
    s.tCl = Cycles(40);
    s.tCwl = Cycles(38);
    s.tRcd = Cycles(40);   // 16.67 ns.
    s.tRp = Cycles(40);
    s.tRas = Cycles(77);   // 32 ns.
    s.tRc = Cycles(117);
    s.tBl = Cycles(8);     // BL16.
    s.tCcd = Cycles(8);    // tCCD_L.
    s.tRtp = Cycles(18);   // 7.5 ns.
    s.tWr = Cycles(72);    // 30 ns.
    s.tWtr = Cycles(24);   // tWTR_L, 10 ns.
    s.tRrd = Cycles(12);   // tRRD_L, 5 ns.
    s.tFaw = Cycles(32);   // 13.33 ns.
    s.tRtrs = Cycles(2);
    s.tRfcAbNs = {Nanoseconds(195.0), Nanoseconds(295.0),
                  Nanoseconds(410.0)};  // tRFC1; 32 Gb projected.
    // Self-refresh: tXS = tRFC1 + 10 ns; with FGR active the exit
    // tracks tRFC2 instead (the data-sheet tXS_FGR -- timingFor()
    // derives both). tCKESR approximates DDR5's tCKSRE/tCKSRX pair.
    s.tXsDeltaNs = Nanoseconds(10.0);
    s.tCkesrNs = Nanoseconds(10.0);
    s.pbRfcDivisor = 2.3;  // No native REFpb; Section 3.1 ratio model.
    // Native FGR at 2x: tRFC2 = 130/160/220 ns. No native 4x mode --
    // the 4x divisor projects the tRFC2 trend one step further.
    s.fgrDivisor2x = 195.0 / 130.0;
    s.fgrDivisor4x = 195.0 / 115.0;
    // Same-bank refresh: 4 banks per bank group; one REFsb command
    // refreshes one group slice in tRFCsb = 115/130/190 ns while the
    // other bank groups stay available.
    s.banksPerGroup = 4;
    s.tRfcSbNs = {Nanoseconds(115.0), Nanoseconds(130.0), Nanoseconds(190.0)};
    // One 32-bit subchannel at BL16: 64 B bursts, DDR3-equivalent
    // column granularity. A DIMM carries two such independent
    // sub-channels; the "ddr5-subch" address map expands each
    // configured channel accordingly.
    s.busWidthBits = 32;
    s.subChannels = 2;
    s.tHiRANs = Nanoseconds(7.5);
    s.hiraActCoverage = 0.32;
    s.hiraRefCoverage = 0.78;
    // DDR5 x8 approximation at 1.1 V: DDR4-class currents on the
    // lower supply, with the higher burst-read draw of the 4800 MT/s
    // interface and a deep IDD6 self-refresh state.
    s.energy.vdd = 1.1;
    s.energy.idd0 = 65.0;
    s.energy.idd2n = 50.0;
    s.energy.idd3n = 57.0;
    s.energy.idd4r = 170.0;
    s.energy.idd4w = 160.0;
    s.energy.idd5b = 210.0;
    s.energy.idd6 = 30.0;
    s.energy.refPbCurrentDivisor = 8.0;  // Ratio-model geometry.
    // Same-bank slice energy needs no constant here: timingFor()
    // derives the per-cycle divisor (groups x tRFCsb / tRFCab) at the
    // resolved geometry and density.
    return s;
}(), {"DDR5"})

} // namespace dsarp
