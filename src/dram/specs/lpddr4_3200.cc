/**
 * @file
 * LPDDR4-3200: command clock 1600 MHz (tCK = 0.625 ns), BL16, and
 * *native per-bank refresh* -- REFpb/SARPpb run on the data-sheet
 * per-bank tRFC table (tRFCpb = tRFCab / 2) instead of the
 * LPDDR2-derived 2.3 ratio hack the paper applies to DDR3. This is
 * the device family whose standard actually ships the REFpb command
 * the paper's per-bank mechanisms assume (Section 3.1).
 */

#include "dram/spec.hh"

namespace dsarp {

DSARP_REGISTER_DRAM_SPEC(lpddr4_3200, []() {
    DramSpec s;
    s.name = "LPDDR4-3200";
    s.summary = "LPDDR4 with native REFpb: RL28, tCK 0.625 ns";
    s.tCkNs = Nanoseconds(0.625);
    s.tCl = Cycles(28);    // RL at 3200 MT/s.
    s.tCwl = Cycles(14);   // WL set A.
    s.tRcd = Cycles(29);   // 18 ns.
    s.tRp = Cycles(29);    // tRPpb, 18 ns.
    s.tRas = Cycles(68);   // 42 ns.
    s.tRc = Cycles(97);
    s.tBl = Cycles(8);     // BL16 on the half-width bus.
    s.tCcd = Cycles(8);
    s.tRtp = Cycles(12);   // 7.5 ns.
    s.tWr = Cycles(29);    // 18 ns.
    s.tWtr = Cycles(16);   // 10 ns.
    s.tRrd = Cycles(16);   // 10 ns.
    s.tFaw = Cycles(64);   // 40 ns.
    s.tRtrs = Cycles(2);
    s.tRfcAbNs = {Nanoseconds(280.0), Nanoseconds(380.0), Nanoseconds(560.0)};
    // Self-refresh: LPDDR4's tXSR = tRFCab + 7.5 ns; tSR(min) = 15 ns.
    s.tXsDeltaNs = Nanoseconds(7.5);
    s.tCkesrNs = Nanoseconds(15.0);
    // First-class per-bank refresh: tRFCpb = tRFCab / 2 per data sheet.
    s.nativePerBankRefresh = true;
    s.tRfcPbNs = {Nanoseconds(140.0), Nanoseconds(190.0), Nanoseconds(280.0)};
    s.pbRfcDivisor = 2.0;  // Matches the native table; kept coherent.
    s.fgrDivisor2x = 1.35;  // No native FGR; Section 6.5 projections.
    s.fgrDivisor4x = 1.63;
    // BL16 on the 64-bit (4 x x16) channel: one burst moves 128 B,
    // halving the column count of an 8 KB row versus DDR3/DDR4.
    s.busWidthBits = 64;
    s.tHiRANs = Nanoseconds(7.5);
    s.hiraActCoverage = 0.32;
    s.hiraRefCoverage = 0.78;
    // LPDDR4 x16 approximation at 1.1 V: mobile-class currents; the
    // faster, lower-voltage interface makes every operation cheaper
    // than DDR3 despite the longer burst.
    s.energy.vdd = 1.1;
    s.energy.idd0 = 60.0;
    s.energy.idd2n = 28.0;
    s.energy.idd3n = 32.0;
    s.energy.idd4r = 155.0;
    s.energy.idd4w = 160.0;
    s.energy.idd5b = 130.0;
    s.energy.idd6 = 8.0;  // Mobile-class self-refresh draw.
    // Native per-bank refresh: derived from the spec's own per-bank
    // tRFC table so the two stay coherent -- a full 8-bank REFpb sweep
    // must cost one REFab's charge, so the per-cycle divisor is
    // banks x tRFCpb/tRFCab (= 8 x 0.5 at every density).
    s.energy.refPbCurrentDivisor = 8.0 * (s.tRfcPbNs[0] / s.tRfcAbNs[0]);
    return s;
}(), {"LPDDR4"})

} // namespace dsarp
