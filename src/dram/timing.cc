#include "dram/timing.hh"

#include <cmath>

#include "common/log.hh"
#include "dram/spec.hh"

namespace dsarp {

Cycles
TimingParams::nsToCycles(Nanoseconds ns, Nanoseconds tCk)
{
    return Cycles(static_cast<std::int64_t>(std::ceil(ns / tCk - 1e-9)));
}

Cycles
TimingParams::nsToCyclesFloor(Nanoseconds ns, Nanoseconds tCk)
{
    return Cycles(static_cast<std::int64_t>(ns / tCk));
}

double
TimingParams::fgrRfcDivisor(int rateMultiplier)
{
    switch (rateMultiplier) {
      case 1: return 1.0;
      case 2: return 1.35;
      case 4: return 1.63;
    }
    DSARP_PANIC("unsupported FGR rate");
}

double
TimingParams::rfcDivisorFor(int rateMultiplier) const
{
    switch (rateMultiplier) {
      case 1: return 1.0;
      case 2: return fgrDivisor2x;
      case 4: return fgrDivisor4x;
    }
    DSARP_PANIC("unsupported FGR rate");
}

TimingParams
TimingParams::forConfig(const MemConfig &cfg)
{
    return DramSpecRegistry::instance().at(cfg.dramSpec).timingFor(cfg);
}

TimingParams
TimingParams::ddr3_1333(const MemConfig &cfg)
{
    return DramSpecRegistry::instance().at("DDR3-1333").timingFor(cfg);
}

} // namespace dsarp
