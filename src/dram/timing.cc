#include "dram/timing.hh"

#include <cmath>

#include "common/log.hh"

namespace dsarp {

int
TimingParams::nsToCycles(double ns, double tCkNs)
{
    return static_cast<int>(std::ceil(ns / tCkNs - 1e-9));
}

double
TimingParams::fgrRfcDivisor(int rateMultiplier)
{
    switch (rateMultiplier) {
      case 1: return 1.0;
      case 2: return 1.35;
      case 4: return 1.63;
    }
    DSARP_PANIC("unsupported FGR rate");
}

TimingParams
TimingParams::ddr3_1333(const MemConfig &cfg)
{
    TimingParams t;

    // Retention: 8192 refresh slots spread over the retention period.
    const double retentionNs = cfg.retentionMs * 1e6;
    double tRefiAbNs = retentionNs / t.refreshesPerRetention;

    double tRfcAbNs = tRfcAbNsFor(cfg.density);

    // DDR4 fine granularity refresh: the command rate rises by 2x/4x while
    // tRFC shrinks only by 1.35x/1.63x (Section 6.5).
    int rate = 1;
    if (cfg.refresh == RefreshMode::kFgr2x)
        rate = 2;
    else if (cfg.refresh == RefreshMode::kFgr4x)
        rate = 4;
    if (rate > 1) {
        tRefiAbNs /= rate;
        tRfcAbNs /= fgrRfcDivisor(rate);
    }

    t.tRefiAb = static_cast<Tick>(tRefiAbNs / t.tCkNs);
    t.tRfcAb = nsToCycles(tRfcAbNs, t.tCkNs);

    // Per-bank refresh: tREFIpb = tREFIab / banks, tRFCpb = tRFCab / 2.3
    // (LPDDR2-derived ratio; Section 3.1).
    t.tRefiPb = t.tRefiAb / cfg.org.banksPerRank;
    t.tRfcPb = nsToCycles(tRfcAbNs / 2.3, t.tCkNs);

    // Each refresh command covers rowsPerBank/refreshesPerRetention rows
    // per bank, scaled by the FGR rate (more frequent commands refresh
    // fewer rows). Retention length does not change the per-command row
    // count, only the command spacing.
    t.rowsPerRefresh = cfg.org.rowsPerBank / t.refreshesPerRetention;
    if (rate > 1)
        t.rowsPerRefresh = std::max(1, t.rowsPerRefresh / rate);
    if (t.rowsPerRefresh < 1)
        t.rowsPerRefresh = 1;

    if (cfg.tFawOverride > 0)
        t.tFaw = cfg.tFawOverride;
    if (cfg.tRrdOverride > 0)
        t.tRrd = cfg.tRrdOverride;

    // Per-bank refresh must fit inside its command interval; FGR modes
    // never issue REFpb, so the constraint only binds when REFpb is used.
    if (cfg.refresh == RefreshMode::kPerBank ||
        cfg.refresh == RefreshMode::kDarp) {
        DSARP_ASSERT(t.tRefiPb > static_cast<Tick>(t.tRfcPb),
                     "tREFIpb must exceed tRFCpb");
    }
    return t;
}

} // namespace dsarp
