/**
 * @file
 * Resolved DRAM timing parameters consumed by the channel/rank/bank
 * state machines.
 *
 * Values are in bus cycles of the selected spec's clock (tCkNs). The
 * numbers now come from the data-driven DramSpecRegistry
 * (dram/spec.hh): each registered device spec declares its clock, core
 * timings, density -> tRFC table, refresh geometry, and FGR divisors,
 * and DramSpec::timingFor() derives everything else (tRtw, cycle
 * conversions, tREFIpb, rate scaling) centrally. The member defaults
 * below are the paper's DDR3-1333 values, which the default
 * "DDR3-1333" spec reproduces bit-identically: tRFCab = 350/530/890 ns
 * for 8/16/32 Gb chips, tRFCpb = tRFCab / 2.3 (the LPDDR2-derived
 * ratio of Section 3.1), and tREFIab = retention / 8192 (3.9 us at
 * 32 ms retention).
 */

#ifndef DSARP_DRAM_TIMING_HH
#define DSARP_DRAM_TIMING_HH

#include <string>

#include "common/config.hh"
#include "common/types.hh"

namespace dsarp {

/** Complete timing parameter set used by the channel state machines. */
struct TimingParams
{
    std::string spec = "DDR3-1333";  ///< Registry name this set came from.

    Nanoseconds tCkNs{1.5};  ///< Bus clock period.

    // Core DDR3-1333 parameters (cycles).
    Cycles tCl{9};    ///< CAS latency.
    Cycles tCwl{7};   ///< CAS write latency.
    Cycles tRcd{9};   ///< ACT to column command.
    Cycles tRp{9};    ///< Precharge period.
    Cycles tRas{24};  ///< ACT to PRE.
    Cycles tRc{33};   ///< ACT to ACT, same bank.
    Cycles tBl{4};    ///< Burst length on the data bus (BL8).
    Cycles tCcd{4};   ///< Column command to column command.
    Cycles tRtp{5};   ///< Read to precharge.
    Cycles tWr{10};   ///< Write recovery (end of write data to precharge).
    Cycles tWtr{5};   ///< End of write data to read command, same rank.
    Cycles tRtw{8};   ///< Read to write gap, derived: tCL + tBL + 2 - tCWL.
    Cycles tRrd{4};   ///< ACT to ACT, different banks, same rank.
    Cycles tFaw{20};  ///< Four-activate window.
    Cycles tRtrs{2};  ///< Rank-to-rank data-bus switch.

    // Refresh parameters (cycles).
    Cycles tRefiAb{2600};  ///< All-bank refresh command interval.
    Cycles tRefiPb{325};   ///< Per-bank interval, derived: tREFIab/banks.
    Cycles tRfcAb{234};    ///< All-bank refresh latency.
    Cycles tRfcPb{102};    ///< Per-bank refresh latency.

    /**
     * Same-bank refresh (DDR5 REFsb) geometry, derived from the spec's
     * bank-group declaration: one REFsb command refreshes every bank
     * of one bank-group slice (banksPerGroup banks) in tRfcSb cycles,
     * and a slice is due every tRefiSb = tREFIab / (banks / group
     * size). All three stay 0 when the selected spec has no same-bank
     * refresh (DDR3/DDR4/LPDDR4), which is what the checker and the
     * REFsb policy key off.
     */
    Cycles tRefiSb{0};    ///< Same-bank refresh command interval.
    Cycles tRfcSb{0};     ///< Same-bank refresh latency.
    int banksPerGroup = 0;///< Banks one REFsb command covers (0 = none).

    /**
     * Per-cycle current of one same-bank slice for the energy model,
     * as a divisor of the all-bank refresh current above background:
     * (IDD5B - IDD3N) / refSbEnergyDivisor. Derived, never spec data:
     * a full sweep of `groups` REFsb commands must cost one REFab's
     * charge, so the divisor is groups x tRFCsb / tRFCab at the
     * *resolved* geometry and density (a static per-spec constant
     * would silently misprice re-sliced or non-canonical bank
     * counts).
     */
    double refSbEnergyDivisor = 1.0;

    /**
     * Self-refresh protocol timings, derived from the spec's data by
     * timingFor(): tXS is the exit-to-first-valid-command latency
     * (JEDEC: the active tRFCab plus a settle delta, so FGR modes get
     * their shorter exit automatically), tXsFgr is the data-sheet
     * exit latency at the spec's native 2x fine granularity (DDR5's
     * tXS_FGR; reported for all specs from the same derivation), and
     * tCkesr is the minimum self-refresh residency (CKE-low pulse
     * width). The defaults reproduce DDR3-1333 at 8 Gb.
     */
    Cycles tXs{240};
    Cycles tXsFgr{180};
    Cycles tCkesr{5};

    /** Rows refreshed in each bank by one refresh command. */
    int rowsPerRefresh = 8;

    /** Number of REFab slots per retention period (JEDEC: 8192). */
    int refreshesPerRetention = 8192;

    /**
     * Spec-provided FGR tRFC divisors at 2x/4x command rate. The
     * defaults are the paper's Section 6.5 DDR3 projections; DDR4
     * specs carry their native tRFC1/tRFC2/tRFC4 ratios.
     */
    double fgrDivisor2x = 1.35;
    double fgrDivisor4x = 1.63;

    /**
     * HiRA (hidden row activation) parameters, derived from the spec's
     * characterization (dram/spec.hh) with the refresh.hiraDelay /
     * refresh.hiraCoverage config overrides applied: the cycles
     * between a demand ACT and the hidden refresh activation beneath
     * it, and the fraction of row pairs hiding is reliable for.
     */
    Cycles tHiRA{5};
    double hiraActCoverage = 0.32;
    double hiraRefCoverage = 0.78;

    /** This parameter set's FGR divisor for a 1x/2x/4x rate. */
    double rfcDivisorFor(int rateMultiplier) const;

    /**
     * Resolve the spec named by cfg.dramSpec through the
     * DramSpecRegistry and derive its parameter set (density scaling,
     * retention scaling, FGR rate scaling, tFAW/tRRD overrides). A
     * fatal named-key error listing registered specs when the name is
     * unknown.
     */
    static TimingParams forConfig(const MemConfig &cfg);

    /**
     * The DDR3-1333 parameter set for a memory configuration,
     * regardless of cfg.dramSpec. Kept for pre-registry callers; a
     * shim over forConfig()'s derivation with the "DDR3-1333" spec.
     */
    static TimingParams ddr3_1333(const MemConfig &cfg);

    /**
     * Convert nanoseconds to (rounded-up) bus cycles. The single
     * blessed ns -> cycles conversion point: all other arithmetic
     * between Nanoseconds and Cycles is a compile error, and the repo
     * lint (tools/lint) rejects raw arithmetic against tCkNs outside
     * this translation unit and spec.cc.
     */
    static Cycles nsToCycles(Nanoseconds ns, Nanoseconds tCk);

    /** nsToCycles, but truncating (tREFI intervals round down). */
    static Cycles nsToCyclesFloor(Nanoseconds ns, Nanoseconds tCk);

    /**
     * The paper's Section 6.5 DDR3 FGR projections (1.35x/1.63x),
     * independent of any spec.
     * @deprecated use rfcDivisorFor() on a resolved parameter set so
     * DDR4's native divisors are honoured.
     */
    static double fgrRfcDivisor(int rateMultiplier);
};

} // namespace dsarp

#endif // DSARP_DRAM_TIMING_HH
