/**
 * @file
 * DDR3-1333 timing parameters, density scaling, and FGR scaling.
 *
 * All values are in DRAM bus cycles (tCK = 1.5 ns). Refresh latencies
 * follow the paper: tRFCab = 350/530/890 ns for 8/16/32 Gb chips,
 * tRFCpb = tRFCab / 2.3 (the LPDDR2-derived ratio of Section 3.1), and
 * tREFIab = retention / 8192 (3.9 us at 32 ms retention).
 */

#ifndef DSARP_DRAM_TIMING_HH
#define DSARP_DRAM_TIMING_HH

#include "common/config.hh"
#include "common/types.hh"

namespace dsarp {

/** Complete timing parameter set used by the channel state machines. */
struct TimingParams
{
    double tCkNs = 1.5;  ///< Bus clock period in nanoseconds.

    // Core DDR3-1333 parameters (cycles).
    int tCl = 9;    ///< CAS latency.
    int tCwl = 7;   ///< CAS write latency.
    int tRcd = 9;   ///< ACT to column command.
    int tRp = 9;    ///< Precharge period.
    int tRas = 24;  ///< ACT to PRE.
    int tRc = 33;   ///< ACT to ACT, same bank.
    int tBl = 4;    ///< Burst length on the data bus (BL8).
    int tCcd = 4;   ///< Column command to column command.
    int tRtp = 5;   ///< Read to precharge.
    int tWr = 10;   ///< Write recovery (end of write data to precharge).
    int tWtr = 5;   ///< End of write data to read command, same rank.
    int tRtw = 8;   ///< Read to write command gap: tCL + tBL + 2 - tCWL.
    int tRrd = 4;   ///< ACT to ACT, different banks, same rank.
    int tFaw = 20;  ///< Four-activate window.
    int tRtrs = 2;  ///< Rank-to-rank data-bus switch.

    // Refresh parameters (cycles).
    Tick tRefiAb = 2600;  ///< All-bank refresh command interval.
    Tick tRefiPb = 325;   ///< Per-bank refresh command interval (tREFIab/8).
    int tRfcAb = 234;     ///< All-bank refresh latency.
    int tRfcPb = 102;     ///< Per-bank refresh latency (tRFCab/2.3).

    /** Rows refreshed in each bank by one refresh command. */
    int rowsPerRefresh = 8;

    /** Number of REFab slots per retention period (JEDEC: 8192). */
    int refreshesPerRetention = 8192;

    /**
     * Construct the DDR3-1333 parameter set for a memory configuration:
     * applies density scaling, retention scaling (32/64 ms), FGR rate
     * scaling for the kFgr* refresh modes, and the tFAW/tRRD overrides
     * used by the Table 4 sweep.
     */
    static TimingParams ddr3_1333(const MemConfig &cfg);

    /** Convert nanoseconds to (rounded-up) bus cycles. */
    static int nsToCycles(double ns, double tCkNs);

    /**
     * DDR4 FGR scaling of tRFCab relative to the 1x value (Section 6.5):
     * tRFC shrinks by 1.35x at 2x rate and 1.63x at 4x rate.
     */
    static double fgrRfcDivisor(int rateMultiplier);
};

} // namespace dsarp

#endif // DSARP_DRAM_TIMING_HH
