#include "refresh/all_bank.hh"

#include "refresh/registry.hh"

namespace dsarp {

DSARP_REGISTER_REFRESH_POLICY(refab, {
    "REFab", "rank-level all-bank refresh (DDR baseline)",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kAllBank;
        m.sarp = false;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<AllBankScheduler>(&c, &t, &v);
    }}, {"all_bank"})

DSARP_REGISTER_REFRESH_POLICY(sarpab, {
    "SARPab", "all-bank refresh + subarray access-refresh parallelization",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kAllBank;
        m.sarp = true;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<AllBankScheduler>(&c, &t, &v);
    }}, {"sarp_ab"})

AllBankScheduler::AllBankScheduler(const MemConfig *cfg,
                                   const TimingParams *timing,
                                   ControllerView *view)
    : RefreshScheduler(cfg, timing, view),
      // One unit per rank, with a small phase offset between ranks: just
      // enough that the commands do not collide on the command bus.
      // Wide staggering is strictly worse for throughput -- it doubles
      // the fraction of time the channel runs at half capacity -- so the
      // near-aligned schedule is the strongest (fairest) baseline.
      ledger_(cfg->org.ranksPerChannel, 1, timing->tRefiAb,
              timing->tRefiAb /
                  (cfg->refabStaggerDivisor * cfg->org.ranksPerChannel),
              Cycles(), 8, channelPhase())
{
}

void
AllBankScheduler::tick(Tick now)
{
    ledger_.advanceTo(now);
}

void
AllBankScheduler::urgent(Tick now, std::vector<RefreshRequest> &out)
{
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        if (rankInSelfRefresh(r, now))
            continue;  // The device refreshes itself; ledger paused.
        if (ledger_.due(r)) {
            RefreshRequest req;
            req.allBank = true;
            req.rank = r;
            req.blocking = true;
            out.push_back(req);
        }
    }
}

void
AllBankScheduler::onIssued(const RefreshRequest &req, Tick)
{
    ledger_.onRefresh(req.rank);
    ++stats_.issued;
}

void
AllBankScheduler::onSrEnter(RankId rank, Tick now)
{
    ledger_.pauseRank(rank, now);
}

void
AllBankScheduler::onSrExit(RankId rank, Tick now)
{
    ledger_.resumeRank(rank, now);
}

} // namespace dsarp
