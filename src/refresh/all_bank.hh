/**
 * @file
 * Baseline all-bank refresh (REFab): one rank-level refresh command per
 * tREFIab, issued on schedule with priority over demand requests (the
 * commodity DDR controller behaviour of paper Section 2.2.1).
 *
 * Also serves DDR4 FGR 2x/4x (Section 6.5): the factory hands it a
 * TimingParams whose tREFIab/tRFCab were already rate-scaled.
 */

#ifndef DSARP_REFRESH_ALL_BANK_HH
#define DSARP_REFRESH_ALL_BANK_HH

#include "refresh/ledger.hh"
#include "refresh/scheduler.hh"

namespace dsarp {

class AllBankScheduler : public RefreshScheduler
{
  public:
    AllBankScheduler(const MemConfig *cfg, const TimingParams *timing,
                     ControllerView *view);

    void tick(Tick now) override;
    void urgent(Tick now, std::vector<RefreshRequest> &out) override;
    bool opportunistic(Tick, RefreshRequest &) override { return false; }
    void onIssued(const RefreshRequest &req, Tick now) override;
    void onSrEnter(RankId rank, Tick now) override;
    void onSrExit(RankId rank, Tick now) override;

    /** Nothing changes between ledger accrual instants. */
    Tick nextWake(Tick) override { return ledger_.nextAccrualTick(); }

    const RefreshLedger &ledger() const { return ledger_; }

  private:
    RefreshLedger ledger_;
};

} // namespace dsarp

#endif // DSARP_REFRESH_ALL_BANK_HH
