#include "refresh/darp.hh"

#include "refresh/registry.hh"

namespace dsarp {

DSARP_REGISTER_REFRESH_POLICY(darp, {
    "DARP", "out-of-order per-bank refresh + write-refresh "
            "parallelization (paper Section 4.2)",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kDarp;
        m.sarp = false;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<DarpScheduler>(&c, &t, &v);
    }})

DSARP_REGISTER_REFRESH_POLICY(dsarp, {
    "DSARP", "DARP + SARP combined (the paper's headline mechanism)",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kDarp;
        m.sarp = true;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<DarpScheduler>(&c, &t, &v);
    }})

DarpScheduler::DarpScheduler(const MemConfig *cfg,
                             const TimingParams *timing,
                             ControllerView *view)
    : RefreshScheduler(cfg, timing, view),
      ledger_(cfg->org.ranksPerChannel, cfg->org.banksPerRank,
              timing->tRefiAb, timing->tRefiPb / 2, timing->tRefiPb, 8,
              channelPhase()),
      banks_(cfg->org.banksPerRank),
      writeRefreshEnabled_(cfg->darpWriteRefresh)
{
    dueNow_.assign(cfg->org.ranksPerChannel * banks_, 0);
}

bool
DarpScheduler::refreshable(RankId r, BankId b, Tick now) const
{
    const Rank &rk = view_->dram().rank(r);
    return rk.canRefPbRankLevel(now) && rk.bank(b).canRefresh(now);
}

void
DarpScheduler::tick(Tick now)
{
    ledger_.advanceTo(now);

    // Figure 8, step 1: at each bank's nominal refresh instant, decide
    // whether to postpone. A refresh is postponed when the bank has
    // pending demand requests and the postpone window has room; otherwise
    // the bank is marked for an on-time refresh.
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        if (rankInSelfRefresh(r, now))
            continue;  // Ledger paused; the device refreshes itself.
        for (BankId b = 0; b < banks_; ++b) {
            if (!ledger_.accruedBetween(r, b, lastTick_, now))
                continue;
            if (ledger_.owed(r, b) <= 0) {
                // Already covered by earlier pull-ins; nothing due.
                continue;
            }
            if (view_->pendingDemands(r, b) > 0 && !ledger_.mustForce(r, b)) {
                ++stats_.postponed;
            } else {
                dueNow_[index(r, b)] = 1;
            }
        }
    }
    lastTick_ = now;
}

void
DarpScheduler::urgent(Tick now, std::vector<RefreshRequest> &out)
{
    // Forced and on-time refreshes first (blocking so the bank drains).
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        if (rankInSelfRefresh(r, now))
            continue;
        for (BankId b = 0; b < banks_; ++b) {
            if (ledger_.mustForce(r, b) || dueNow_[index(r, b)]) {
                RefreshRequest req;
                req.rank = r;
                req.bank = b;
                req.blocking = true;
                out.push_back(req);
            }
        }
    }

    // Algorithm 1 (write-refresh parallelization): while draining writes,
    // if a rank has no refresh in flight, refresh its bank with the
    // fewest pending demands, credit permitting.
    if (!writeRefreshEnabled_ || !view_->inWritebackMode())
        return;
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        const Rank &rk = view_->dram().rank(r);
        if (rk.selfRefreshLockout(now) || rk.refPbInFlight(now) ||
            rk.refAbInFlight(now)) {
            continue;
        }
        BankId best = kNone;
        int best_count = 0;
        for (BankId b = 0; b < banks_; ++b) {
            if (!ledger_.canPullIn(r, b) || !refreshable(r, b, now))
                continue;
            const int count = view_->pendingDemands(r, b);
            if (best == kNone || count < best_count) {
                best = b;
                best_count = count;
            }
        }
        if (best != kNone) {
            RefreshRequest req;
            req.rank = r;
            req.bank = best;
            req.blocking = false;  // Issue only if legal this tick.
            out.push_back(req);
        }
    }
}

bool
DarpScheduler::opportunistic(Tick now, RefreshRequest &out)
{
    // Figure 8, step 3: the channel is idle; pick a random bank with no
    // pending demand requests and refresh it (a postponed refresh being
    // made up, or a new pull-in).
    const int ranks = ledger_.numRanks();
    const int total = ranks * banks_;
    const int start = static_cast<int>(view_->schedulerRng().below(total));
    for (int i = 0; i < total; ++i) {
        const int idx = (start + i) % total;
        const RankId r = idx / banks_;
        const BankId b = idx % banks_;
        if (view_->pendingDemands(r, b) > 0)
            continue;
        if (!ledger_.canPullIn(r, b) || !refreshable(r, b, now))
            continue;
        out = RefreshRequest{};
        out.rank = r;
        out.bank = b;
        out.blocking = false;
        return true;
    }
    return false;
}

void
DarpScheduler::onIssued(const RefreshRequest &req, Tick)
{
    if (ledger_.mustForce(req.rank, req.bank))
        ++stats_.forced;
    if (ledger_.owed(req.rank, req.bank) <= 0)
        ++stats_.pulledIn;
    ledger_.onRefresh(req.rank, req.bank);
    dueNow_[index(req.rank, req.bank)] = 0;
    ++stats_.issued;
}

void
DarpScheduler::onSrEnter(RankId rank, Tick now)
{
    ledger_.pauseRank(rank, now);
    // Anything marked due is covered by the device's internal refresh;
    // the flags would otherwise survive the residency and fire stale
    // blocking requests at exit.
    for (BankId b = 0; b < banks_; ++b)
        dueNow_[index(rank, b)] = 0;
}

void
DarpScheduler::onSrExit(RankId rank, Tick now)
{
    ledger_.resumeRank(rank, now);
}

} // namespace dsarp
