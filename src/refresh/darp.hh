/**
 * @file
 * DARP: Dynamic Access Refresh Parallelization (paper Section 4.2), the
 * first of the paper's two mechanisms.
 *
 * Component 1, out-of-order per-bank refresh (Figure 8): at each nominal
 * per-bank refresh instant the scheduler postpones the round-robin bank's
 * refresh if that bank has pending demand requests and its credit allows
 * (the erratum bounds postponement to 8 commands; we force a refresh at
 * the limit). When the channel is otherwise idle, a *random* bank with no
 * pending demands receives a postponed or pulled-in refresh.
 *
 * Component 2, write-refresh parallelization (Algorithm 1): while the
 * channel drains a write batch, every tRFCpb the scheduler refreshes the
 * bank with the fewest pending demands (credit permitting), hiding the
 * refresh under the batched writes.
 */

#ifndef DSARP_REFRESH_DARP_HH
#define DSARP_REFRESH_DARP_HH

#include <vector>

#include "refresh/ledger.hh"
#include "refresh/scheduler.hh"

namespace dsarp {

class DarpScheduler : public RefreshScheduler
{
  public:
    DarpScheduler(const MemConfig *cfg, const TimingParams *timing,
                  ControllerView *view);

    void tick(Tick now) override;
    void urgent(Tick now, std::vector<RefreshRequest> &out) override;
    bool opportunistic(Tick now, RefreshRequest &out) override;
    void onIssued(const RefreshRequest &req, Tick now) override;
    void onSrEnter(RankId rank, Tick now) override;
    void onSrExit(RankId rank, Tick now) override;

    /**
     * Postpone/force decisions and the dueNow_ marks only change at
     * ledger accrual instants; between them urgent()/opportunistic()
     * are pure functions of frozen controller and DRAM state (the
     * controller replays the per-tick RNG draw itself).
     */
    Tick nextWake(Tick) override { return ledger_.nextAccrualTick(); }

    const RefreshLedger &ledger() const { return ledger_; }

  protected:
    // Protected, not private: HiRA (refresh/hira.hh) extends DARP's
    // out-of-order scheduling with hidden-refresh issue paths.
    int index(RankId r, BankId b) const { return r * banks_ + b; }

    /** Bank eligible to receive a refresh right now (DRAM-state check). */
    bool refreshable(RankId r, BankId b, Tick now) const;

    RefreshLedger ledger_;
    int banks_;
    bool writeRefreshEnabled_;

    /** Banks whose nominal refresh could not be postponed (Figure 8 "R"). */
    std::vector<std::uint8_t> dueNow_;

    Tick lastTick_ = 0;
};

} // namespace dsarp

#endif // DSARP_REFRESH_DARP_HH
