#include "refresh/elastic.hh"

#include "refresh/registry.hh"

namespace dsarp {

DSARP_REGISTER_REFRESH_POLICY(elastic, {
    "Elastic", "elastic refresh [Stuecheli+, MICRO'10]: postpone while "
               "the rank is busy",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kElastic;
        m.sarp = false;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<ElasticScheduler>(&c, &t, &v);
    }})

ElasticScheduler::ElasticScheduler(const MemConfig *cfg,
                                   const TimingParams *timing,
                                   ControllerView *view)
    : RefreshScheduler(cfg, timing, view),
      // Same rank phasing as the REFab baseline.
      ledger_(cfg->org.ranksPerChannel, 1, timing->tRefiAb,
              timing->tRefiAb /
                  (cfg->refabStaggerDivisor * cfg->org.ranksPerChannel),
              Cycles(), 8, channelPhase())
{
    // The most patient threshold: wait for an idle gap about as long as
    // the average rank idle period that would hide a refresh.
    maxIdleDelay_ = static_cast<Tick>((timing->tRfcAb / 2).count());
}

Tick
ElasticScheduler::idleThreshold(int owed) const
{
    if (owed <= 0)
        return maxIdleDelay_;
    const int slack = ledger_.maxSlack();
    if (owed >= slack)
        return 0;
    // Linear decay: more postponed refreshes -> less patience.
    return maxIdleDelay_ * static_cast<Tick>(slack - owed) / slack;
}

void
ElasticScheduler::tick(Tick now)
{
    ledger_.advanceTo(now);
}

void
ElasticScheduler::urgent(Tick now, std::vector<RefreshRequest> &out)
{
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        if (rankInSelfRefresh(r, now))
            continue;  // The device refreshes itself; ledger paused.
        if (!ledger_.due(r))
            continue;
        if (ledger_.mustForce(r)) {
            RefreshRequest req;
            req.allBank = true;
            req.rank = r;
            req.blocking = true;
            out.push_back(req);
            ++stats_.forced;
            continue;
        }
        // Release early if the rank has no demand and has been idle long
        // enough for the current elasticity level.
        if (view_->pendingDemandsRank(r) == 0) {
            const Tick idle_for = now - view_->lastDemandActivity(r);
            if (idle_for >= idleThreshold(ledger_.owed(r))) {
                RefreshRequest req;
                req.allBank = true;
                req.rank = r;
                req.blocking = true;
                out.push_back(req);
            }
        }
    }
}

Tick
ElasticScheduler::nextWake(Tick now)
{
    Tick wake = ledger_.nextAccrualTick();
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        if (rankInSelfRefresh(r, now) || !ledger_.due(r) ||
            ledger_.mustForce(r)) {
            continue;
        }
        if (view_->pendingDemandsRank(r) != 0)
            continue;  // Next demand dequeue is a command, hence a wake.
        const Tick release =
            view_->lastDemandActivity(r) + idleThreshold(ledger_.owed(r));
        if (release > now && release < wake)
            wake = release;
    }
    return wake;
}

void
ElasticScheduler::skipTicks(Tick firstTick, Tick ticks)
{
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        if (!rankInSelfRefresh(r, firstTick) && ledger_.due(r) &&
            ledger_.mustForce(r)) {
            stats_.forced += ticks;
        }
    }
}

bool
ElasticScheduler::opportunistic(Tick, RefreshRequest &)
{
    // Elastic refresh never pulls in refreshes ahead of schedule
    // (Section 6.1.1 calls this out as a shortcoming).
    return false;
}

void
ElasticScheduler::onIssued(const RefreshRequest &req, Tick)
{
    if (ledger_.owed(req.rank) > 1)
        ++stats_.postponed;
    ledger_.onRefresh(req.rank);
    ++stats_.issued;
}

void
ElasticScheduler::onSrEnter(RankId rank, Tick now)
{
    ledger_.pauseRank(rank, now);
}

void
ElasticScheduler::onSrExit(RankId rank, Tick now)
{
    ledger_.resumeRank(rank, now);
}

} // namespace dsarp
