/**
 * @file
 * Elastic refresh [Stuecheli et al., MICRO 2010], the prior-work policy
 * evaluated in paper Section 6.
 *
 * All-bank refreshes may be postponed (up to the JEDEC window of 8) while
 * the rank looks busy. A refresh is released when the rank has been idle
 * for an idle-delay threshold that *shrinks linearly* as the number of
 * postponed refreshes grows (the "elastic" schedule), and is forced at
 * the postpone limit. The policy never pulls refreshes in early and does
 * not overlap refreshes with accesses; both shortcomings are what DARP
 * and SARP attack (Section 7).
 */

#ifndef DSARP_REFRESH_ELASTIC_HH
#define DSARP_REFRESH_ELASTIC_HH

#include "refresh/ledger.hh"
#include "refresh/scheduler.hh"

namespace dsarp {

class ElasticScheduler : public RefreshScheduler
{
  public:
    ElasticScheduler(const MemConfig *cfg, const TimingParams *timing,
                     ControllerView *view);

    void tick(Tick now) override;
    void urgent(Tick now, std::vector<RefreshRequest> &out) override;
    bool opportunistic(Tick now, RefreshRequest &out) override;
    void onIssued(const RefreshRequest &req, Tick now) override;
    void onSrEnter(RankId rank, Tick now) override;
    void onSrExit(RankId rank, Tick now) override;

    /**
     * Ledger accrual instants plus each due rank's elastic release
     * instant (lastDemandActivity + the owed-dependent idle threshold).
     */
    Tick nextWake(Tick now) override;

    /**
     * urgent() bumps the forced counter every tick a rank sits at the
     * postpone limit; replay those bumps across the skipped span.
     */
    void skipTicks(Tick firstTick, Tick ticks) override;

    const RefreshLedger &ledger() const { return ledger_; }

    /** Idle delay demanded before releasing a refresh, given owed count. */
    Tick idleThreshold(int owed) const;

  private:
    RefreshLedger ledger_;
    Tick maxIdleDelay_;  ///< Threshold when nothing is postponed.
};

} // namespace dsarp

#endif // DSARP_REFRESH_ELASTIC_HH
