#include "common/log.hh"
#include "refresh/all_bank.hh"
#include "refresh/darp.hh"
#include "refresh/elastic.hh"
#include "refresh/fgr.hh"
#include "refresh/no_refresh.hh"
#include "refresh/per_bank.hh"
#include "refresh/scheduler.hh"

namespace dsarp {

std::unique_ptr<RefreshScheduler>
makeRefreshScheduler(const MemConfig &cfg, const TimingParams &timing,
                     ControllerView &view)
{
    switch (cfg.refresh) {
      case RefreshMode::kNoRefresh:
        return std::make_unique<NoRefreshScheduler>(&cfg, &timing, &view);
      case RefreshMode::kAllBank:
        return std::make_unique<AllBankScheduler>(&cfg, &timing, &view);
      case RefreshMode::kPerBank:
        return std::make_unique<PerBankScheduler>(&cfg, &timing, &view);
      case RefreshMode::kElastic:
        return std::make_unique<ElasticScheduler>(&cfg, &timing, &view);
      case RefreshMode::kDarp:
        return std::make_unique<DarpScheduler>(&cfg, &timing, &view);
      case RefreshMode::kFgr2x:
      case RefreshMode::kFgr4x:
        // Timing parameters are already rate-scaled; the schedule itself
        // is the plain on-time all-bank policy.
        return std::make_unique<AllBankScheduler>(&cfg, &timing, &view);
      case RefreshMode::kAdaptive:
        return std::make_unique<AdaptiveScheduler>(&cfg, &timing, &view);
    }
    DSARP_PANIC("unknown refresh mode");
}

} // namespace dsarp
