/**
 * @file
 * Deprecated construction shim.
 *
 * Policy construction is owned by RefreshPolicyRegistry (registry.hh);
 * each policy registers itself from its own translation unit. This
 * wrapper only survives so pre-registry callers keep compiling.
 */

#include "refresh/registry.hh"
#include "refresh/scheduler.hh"

namespace dsarp {

std::unique_ptr<RefreshScheduler>
makeRefreshScheduler(const MemConfig &cfg, const TimingParams &timing,
                     ControllerView &view)
{
    return RefreshPolicyRegistry::instance().make(cfg, timing, view);
}

} // namespace dsarp
