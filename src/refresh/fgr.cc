#include "refresh/fgr.hh"

#include <algorithm>
#include <cmath>

#include "refresh/all_bank.hh"
#include "refresh/registry.hh"

namespace dsarp {

// Static FGR is the on-time all-bank schedule run on rate-scaled timing
// (DramSpec::timingFor applies the spec's 2x/4x divisors when the
// config bundle sets the kFgr* profile); only AR needs its own
// scheduler.

DSARP_REGISTER_REFRESH_POLICY(fgr2x, {
    "FGR2x", "DDR4 fine granularity refresh at 2x rate",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kFgr2x;
        m.sarp = false;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<AllBankScheduler>(&c, &t, &v);
    }})

DSARP_REGISTER_REFRESH_POLICY(fgr4x, {
    "FGR4x", "DDR4 fine granularity refresh at 4x rate",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kFgr4x;
        m.sarp = false;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<AllBankScheduler>(&c, &t, &v);
    }})

DSARP_REGISTER_REFRESH_POLICY(adaptive, {
    "AR", "adaptive refresh [Mukundan+, ISCA'13]: dynamic 1x/4x FGR mix",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kAdaptive;
        m.sarp = false;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<AdaptiveScheduler>(&c, &t, &v);
    }}, {"adaptive"})

AdaptiveScheduler::AdaptiveScheduler(const MemConfig *cfg,
                                     const TimingParams *timing,
                                     ControllerView *view)
    : RefreshScheduler(cfg, timing, view),
      // Quarter-slot accrual: one quarter per tREFIab/4, forcing at
      // 8 full commands' worth (32 quarters) of postponement.
      ledger_(cfg->org.ranksPerChannel, 1, timing->tRefiAb / 4,
              timing->tRefiAb / (8 * cfg->org.ranksPerChannel), Cycles(),
              8 * 4, channelPhase())
{
    // The spec's own 4x divisor: DDR4 parts use their native tRFC4
    // ratio rather than the Section 6.5 DDR3 projection.
    tRfc4x_ = Cycles(static_cast<std::int64_t>(std::ceil(
        static_cast<double>(timing->tRfcAb.count()) /
            timing->rfcDivisorFor(4) -
        1e-9)));
    rows4x_ = std::max(1, timing->rowsPerRefresh / 4);
    // Start with a full budget: a fresh system has banked no overrun.
    budget_.assign(cfg->org.ranksPerChannel,
                   4.0 * static_cast<double>(timing->tRfcAb.count()));
    pending4x_.assign(cfg->org.ranksPerChannel, 0);
}

void
AdaptiveScheduler::tick(Tick now)
{
    ledger_.advanceTo(now);
    // Grant busy-time budget as obligations accrue: each quarter-slot is
    // worth a quarter of a (slightly padded) 1x command. The cap keeps a
    // long idle stretch from banking an unbounded 4x burst.
    const std::uint64_t accrued = ledger_.totalAccrued();
    if (accrued > lastAccrued_) {
        const double t_rfc_ab =
            static_cast<double>(timing_->tRfcAb.count());
        const double grant = (accrued - lastAccrued_) *
            (t_rfc_ab * arBudgetSlack / 4.0) /
            ledger_.numRanks();
        for (double &b : budget_)
            b = std::min(b + grant, 4.0 * t_rfc_ab);
        lastAccrued_ = accrued;
    }
    // 4x is attractive while the channel drains writes: the short
    // lockout tucks under the batch.
    fastMode_ = view_->inWritebackMode();
}

void
AdaptiveScheduler::urgent(Tick now, std::vector<RefreshRequest> &out)
{
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        if (rankInSelfRefresh(r, now))
            continue;  // The device refreshes itself; ledger paused.
        // A slot already being executed fine-grained finishes in 4x
        // mode regardless of the current writeback state.
        bool use_fast = pending4x_[r] > 0;

        if (!use_fast) {
            // AR keeps REFab's schedule: a refresh goes out when a full
            // slot is due. The only choice is its granularity: split
            // into 4x commands when a write drain is in progress and
            // the busy-time budget covers the 2.45x inflation.
            if (ledger_.owed(r) < 4)
                continue;
            if (ledger_.mustForce(r))
                ++stats_.forced;
            use_fast = fastMode_ && !ledger_.mustForce(r) &&
                budget_[r] >= 4.0 * static_cast<double>(tRfc4x_.count());
            if (use_fast)
                pending4x_[r] = 4;
        }

        RefreshRequest req;
        req.allBank = true;
        req.rank = r;
        req.blocking = true;
        if (use_fast) {
            req.tRfcOverride = tRfc4x_;
            req.rowsOverride = rows4x_;
            req.ledgerParts = 1;
        } else {
            req.ledgerParts = 4;
        }
        out.push_back(req);
    }
}

void
AdaptiveScheduler::skipTicks(Tick firstTick, Tick ticks)
{
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        if (!rankInSelfRefresh(r, firstTick) && pending4x_[r] == 0 &&
            ledger_.owed(r) >= 4 && ledger_.mustForce(r)) {
            stats_.forced += ticks;
        }
    }
}

void
AdaptiveScheduler::onIssued(const RefreshRequest &req, Tick)
{
    const int parts = req.ledgerParts ? req.ledgerParts : 4;
    ledger_.onPartialRefresh(req.rank, 0, parts);
    budget_[req.rank] -= static_cast<double>(
        (req.tRfcOverride ? req.tRfcOverride : timing_->tRfcAb).count());
    if (req.ledgerParts == 1 && pending4x_[req.rank] > 0)
        --pending4x_[req.rank];
    ++stats_.issued;
}

void
AdaptiveScheduler::onSrEnter(RankId rank, Tick now)
{
    ledger_.pauseRank(rank, now);
    // A partially-executed 4x slot is finished by the device's own
    // refresh; restart granularity selection cleanly at exit.
    pending4x_[rank] = 0;
}

void
AdaptiveScheduler::onSrExit(RankId rank, Tick now)
{
    ledger_.resumeRank(rank, now);
}

} // namespace dsarp
