/**
 * @file
 * Adaptive refresh (AR) [Mukundan et al., ISCA 2013], evaluated against
 * DDR4 fine granularity refresh in paper Section 6.5.
 *
 * Plain FGR 2x/4x is AllBankScheduler running on rate-scaled timing
 * parameters (DramSpec::timingFor applies the spec's 2x/4x tRFC
 * divisors). AR dynamically mixes the 1x and 4x command granularities:
 * 4x commands have a much shorter per-command lockout (good under
 * demand pressure, e.g. inside a write drain) but cost 2.45x the total
 * refresh busy time, which is why static 4x FGR loses badly.
 *
 * AR therefore spends 4x commands against a *busy-time budget*: each
 * nominal slot grants slightly more budget than a 1x command costs
 * (arBudgetSlack); 4x commands are only issued while the budget covers
 * their inflated cost. This bounds AR's aggregate overhead to within a
 * few percent of REFab, matching the paper's observation that AR can
 * only mitigate the 4x losses, not beat REFab (Figure 16).
 *
 * The ledger tracks obligations in quarter-slots so the two command
 * sizes compose: a 1x REFab retires four quarters, a 4x REFab one.
 */

#ifndef DSARP_REFRESH_FGR_HH
#define DSARP_REFRESH_FGR_HH

#include "refresh/ledger.hh"
#include "refresh/scheduler.hh"

namespace dsarp {

class AdaptiveScheduler : public RefreshScheduler
{
  public:
    AdaptiveScheduler(const MemConfig *cfg, const TimingParams *timing,
                      ControllerView *view);

    void tick(Tick now) override;
    void urgent(Tick now, std::vector<RefreshRequest> &out) override;
    bool opportunistic(Tick, RefreshRequest &) override { return false; }
    void onIssued(const RefreshRequest &req, Tick now) override;
    void onSrEnter(RankId rank, Tick now) override;
    void onSrExit(RankId rank, Tick now) override;

    /**
     * Budget grants and granularity choices only change at ledger
     * accrual instants (fastMode_ tracks writeback mode, which is
     * frozen while the controller is inert).
     */
    Tick nextWake(Tick) override { return ledger_.nextAccrualTick(); }

    /**
     * urgent() bumps the forced counter every tick a rank sits at the
     * postpone limit with a full slot due; replay those bumps.
     */
    void skipTicks(Tick firstTick, Tick ticks) override;

    const RefreshLedger &ledger() const { return ledger_; }

    /** True when the policy would currently prefer 4x commands. */
    bool inFastMode() const { return fastMode_; }

    Cycles tRfc4x() const { return tRfc4x_; }

    /** Remaining busy-time budget for 4x commands on a rank (cycles). */
    double busyBudget(RankId r) const { return budget_[r]; }

  private:
    RefreshLedger ledger_;  ///< Quarter-slot obligations per rank.
    Cycles tRfc4x_;
    int rows4x_;
    bool fastMode_ = false;

    /** Busy-time slack granted per slot, relative to a 1x command. */
    static constexpr double arBudgetSlack = 1.05;

    std::vector<double> budget_;  ///< Per-rank busy-time budget.
    /** Remaining 4x commands of a slot being executed fine-grained. */
    std::vector<int> pending4x_;
    std::uint64_t lastAccrued_ = 0;
};

} // namespace dsarp

#endif // DSARP_REFRESH_FGR_HH
