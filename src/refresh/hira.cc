#include "refresh/hira.hh"

#include "refresh/registry.hh"

namespace dsarp {

DSARP_REGISTER_REFRESH_POLICY(hira, {
    "HiRA", "hidden row activation: refresh beneath ACTs to other "
            "subarrays of the same bank (Yağlıkçı+, MICRO'22)",
    [](MemConfig &m) {
        // DARP's per-bank timing profile and out-of-order scheduling,
        // without SARP's chip modification; the hira flag arms the
        // hidden-refresh paths and the tRRD/tFAW power-integrity
        // inflation while one is in flight.
        m.refresh = RefreshMode::kDarp;
        m.sarp = false;
        m.hira = true;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<HiraScheduler>(&c, &t, &v);
    }}, {"hidden-row-activation"})

HiraScheduler::HiraScheduler(const MemConfig *cfg,
                             const TimingParams *timing,
                             ControllerView *view)
    : DarpScheduler(cfg, timing, view),
      rowsPerSlot_(timing->rowsPerRefresh)
{
    // Fractional ledger accounting: a hidden refresh is one row (one
    // activation), a nominal REFpb slot is rowsPerRefresh rows.
    ledger_.setDenominator(rowsPerSlot_);
    windows_.assign(cfg->org.ranksPerChannel * banks_, HiddenWindow{});
    refRefDraw_.assign(cfg->org.ranksPerChannel * banks_, -1);
}

void
HiraScheduler::onDemandCommand(const Command &cmd, Tick now)
{
    if (cmd.type != CommandType::kAct)
        return;
    HiddenWindow &win = windows_[index(cmd.rank, cmd.bank)];
    // Coverage draw per activation: only a characterized fraction of
    // row pairs tolerate the interleaved hidden activation; the pair
    // is fixed by this ACT and the bank's refresh counter, so the draw
    // happens once here, not per issue attempt.
    if (!view_->schedulerRng().chance(timing_->hiraActCoverage)) {
        win.armed = false;
        return;
    }
    win.armed = true;
    win.readyAt = now + timing_->tHiRA;
    // Stale once the access that would hide it has surely closed.
    win.expiresAt = win.readyAt + timing_->tRc;
}

void
HiraScheduler::urgent(Tick now, std::vector<RefreshRequest> &out)
{
    DarpScheduler::urgent(now, out);

    // Refresh-refresh parallelization: a due blocking REFpb may cover
    // two slots' rows at unchanged tRFCpb when the bank is two or more
    // slots behind. In HiRA hardware the refresh controller pairs each
    // row with a victim from a *different* subarray; the model's
    // sequential refresh counter is a coverage-accounting
    // simplification (which rows retire in which command does not
    // affect retention correctness within the postpone window), so the
    // pairing feasibility is modeled by the characterized 78% coverage
    // draw plus the requirement that the bank has a second subarray at
    // all.
    for (RefreshRequest &req : out) {
        if (req.allBank || !req.blocking || req.hidden ||
            req.tRfcOverride || req.rowsOverride) {
            continue;
        }
        if (cfg_->org.subarraysPerBank < 2)
            continue;  // No partner subarray to parallelize with.
        if (ledger_.owed(req.rank, req.bank) < 2 * rowsPerSlot_)
            continue;
        int &draw = refRefDraw_[index(req.rank, req.bank)];
        if (draw < 0) {
            draw = view_->schedulerRng().chance(timing_->hiraRefCoverage)
                ? 1
                : 0;
        }
        if (draw == 1) {
            req.rowsOverride = 2 * timing_->rowsPerRefresh;
            req.ledgerParts = 2 * rowsPerSlot_;
        }
    }

    // Hidden refresh beneath an ACT: tHiRA cycles after a covered
    // demand activation, refresh one row of a *different* subarray of
    // the same bank while the open row keeps serving. Non-blocking --
    // issued only when legal this tick.
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        const Rank &rk = view_->dram().rank(r);
        for (BankId b = 0; b < banks_; ++b) {
            HiddenWindow &win = windows_[index(r, b)];
            if (!win.armed || now < win.readyAt)
                continue;
            if (now > win.expiresAt) {
                win.armed = false;
                continue;
            }
            if (!ledger_.canPullInParts(r, b, 1))
                continue;
            if (!rk.canRefPbRankLevel(now) ||
                !rk.bank(b).canHiddenRefresh(now)) {
                continue;
            }
            RefreshRequest req;
            req.rank = r;
            req.bank = b;
            req.blocking = false;
            req.hidden = true;
            // An activation-based refresh of a single row: the hidden
            // ACT-PRE cycle, not a full multi-row REFpb.
            req.tRfcOverride = timing_->tRc;
            req.rowsOverride = 1;
            req.ledgerParts = 1;
            out.push_back(req);
        }
    }
}

Tick
HiraScheduler::nextWake(Tick now)
{
    Tick wake = DarpScheduler::nextWake(now);
    for (const HiddenWindow &win : windows_) {
        if (win.armed && win.readyAt > now && win.readyAt < wake)
            wake = win.readyAt;
    }
    return wake;
}

void
HiraScheduler::onIssued(const RefreshRequest &req, Tick now)
{
    if (req.hidden) {
        if (ledger_.owed(req.rank, req.bank) <= 0)
            ++stats_.pulledIn;
        ledger_.onPartialRefresh(req.rank, req.bank, req.ledgerParts);
        windows_[index(req.rank, req.bank)].armed = false;
        ++hiddenIssued_;
        ++stats_.issued;
        return;
    }
    DarpScheduler::onIssued(req, now);
    // The base slot is retired by DARP; a refresh-refresh doubled
    // command retires the second slot here.
    if (req.ledgerParts > rowsPerSlot_) {
        ledger_.onPartialRefresh(req.rank, req.bank,
                                 req.ledgerParts - rowsPerSlot_);
    }
    refRefDraw_[index(req.rank, req.bank)] = -1;
}

} // namespace dsarp
