/**
 * @file
 * HiRA: Hidden Row Activation (Yağlıkçı et al., "HiRA: Hidden Row
 * Activation for Reducing Refresh Latency of Off-the-Shelf DRAM
 * Chips", MICRO 2022), extended onto this paper's refresh machinery.
 *
 * Where the paper's SARP parallelizes refreshes with accesses by
 * steering refreshes to *idle* subarrays, HiRA overlaps a refresh
 * *beneath* an activation to a different subarray of the same bank:
 * tHiRA cycles after a demand ACT, the controller may issue a hidden
 * per-bank refresh whose target subarray differs from the activated
 * row's. The open row keeps serving column commands while the hidden
 * activation refreshes rows in the background; off-the-shelf chips
 * support this for a characterized fraction of row pairs (~32% for
 * refresh-beneath-access, ~78% for refresh-with-refresh), which the
 * per-spec coverage knobs model stochastically.
 *
 * Composition: HiRA extends DarpScheduler, so DARP's out-of-order
 * per-bank scheduling, its write-refresh parallelization (which obeys
 * the existing write watermarks), and the postpone/pull-in ledger all
 * keep working; HiRA adds two issue paths on top:
 *
 *   1. Hidden refresh under ACT: every demand ACT opens a tHiRA-delayed
 *      window in which a one-row hidden refresh (an activation-based
 *      refresh taking tRC) may issue to the same bank, credited as a
 *      fractional ledger slot. Gated by hiraActCoverage.
 *   2. Refresh-refresh parallelization: a due blocking REFpb may cover
 *      two slots' rows in one command when the bank is at least two
 *      slots behind and has a second subarray, modeling the concurrent
 *      refresh of row pairs across subarrays. Gated by
 *      hiraRefCoverage.
 *
 * tRRD/tFAW inflate while a *hidden* refresh is in flight (the same
 * Eq. 1-3 power-integrity modeling SARP uses; MemConfig::hira arms
 * it); plain blocking REFpb under HiRA behaves exactly like DARP's.
 */

#ifndef DSARP_REFRESH_HIRA_HH
#define DSARP_REFRESH_HIRA_HH

#include <vector>

#include "refresh/darp.hh"

namespace dsarp {

class HiraScheduler : public DarpScheduler
{
  public:
    HiraScheduler(const MemConfig *cfg, const TimingParams *timing,
                  ControllerView *view);

    void urgent(Tick now, std::vector<RefreshRequest> &out) override;
    void onIssued(const RefreshRequest &req, Tick now) override;
    void onDemandCommand(const Command &cmd, Tick now) override;

    /**
     * DARP's accrual instants plus pending hidden-window openings
     * (readyAt of each armed window). Expiry needs no wake: past
     * expiresAt the window merely stops *trying*, and an inert try has
     * no side effects.
     */
    Tick nextWake(Tick now) override;

    /** Hidden refreshes issued beneath ACTs (subset of stats().issued). */
    std::uint64_t hiddenIssued() const { return hiddenIssued_; }

  private:
    /** One ACT-opened hidden-refresh opportunity per bank. */
    struct HiddenWindow
    {
        bool armed = false;  ///< Coverage draw passed for this ACT.
        Tick readyAt = 0;    ///< Demand ACT + tHiRA.
        Tick expiresAt = 0;  ///< Stale once the access has surely closed.
    };

    std::vector<HiddenWindow> windows_;

    /**
     * Per-bank refresh-refresh coverage draw for the *next* due slot:
     * -1 undecided, else 0/1. Drawn once per slot (redrawing every
     * tick would inflate the effective probability) and reset when the
     * bank's refresh issues.
     */
    std::vector<int> refRefDraw_;

    int rowsPerSlot_;  ///< Ledger denominator: rows in one REFpb slot.
    std::uint64_t hiddenIssued_ = 0;
};

} // namespace dsarp

#endif // DSARP_REFRESH_HIRA_HH
