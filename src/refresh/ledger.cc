#include "refresh/ledger.hh"

#include <algorithm>

#include "common/log.hh"

namespace dsarp {

RefreshLedger::RefreshLedger(int ranks, int banks, Cycles period,
                             Cycles rank_stagger, Cycles unit_stagger,
                             int max_slack, Cycles channel_phase)
    : ranks_(ranks), banks_(banks),
      period_(static_cast<Tick>(period.count())), maxSlack_(max_slack)
{
    DSARP_ASSERT(ranks > 0 && banks > 0 && period > Cycles(0),
                 "bad ledger shape");
    owed_.assign(ranks * banks, 0);
    nextAccrual_.resize(ranks * banks);
    firstAccrual_.resize(ranks * banks);
    pausedAt_.assign(ranks, kTickNever);
    for (int r = 0; r < ranks; ++r) {
        for (int b = 0; b < banks; ++b) {
            // Stagger banks within a rank (the REFpb round-robin origin)
            // and phase-shift ranks against each other; the first
            // obligation lands one full period in, so a fresh system is
            // not instantly behind. The channel phase shifts the whole
            // ledger so sibling channels' schedules interleave instead
            // of refreshing in lockstep.
            const Tick offset =
                Tick(0) + (period + rank_stagger * r + unit_stagger * b +
                           channel_phase);
            firstAccrual_[index(r, b)] = offset;
            nextAccrual_[index(r, b)] = offset;
        }
    }
}

void
RefreshLedger::setDenominator(int denom)
{
    DSARP_ASSERT(denom >= 1, "bad denominator");
    if (denom == denom_)
        return;
    // The denominator may change mid-window (e.g. a policy that turns
    // fractional accounting on once slice pairing arms -- REFsb
    // retiring multiple banks at once composed with HiRA). Balances
    // are stored in 1/denom sub-units, so they must be rescaled in
    // place; without this, an existing balance silently reinterprets
    // against the new denominator while canPullInParts() compares it
    // to the rescaled window -maxSlack * denom, letting a unit pull in
    // far beyond (or short of) the JEDEC window.
    for (int &balance : owed_) {
        const long long scaled =
            static_cast<long long>(balance) * denom;
        DSARP_ASSERT(scaled % denom_ == 0,
                     "denominator change would truncate a fractional "
                     "refresh balance");
        balance = static_cast<int>(scaled / denom_);
    }
    denom_ = denom;
}

void
RefreshLedger::advanceTo(Tick now)
{
    for (int i = 0; i < static_cast<int>(owed_.size()); ++i) {
        if (pausedAt_[i / banks_] != kTickNever)
            continue;  // Rank in self-refresh: the device accrues.
        while (nextAccrual_[i] <= now) {
            owed_[i] += denom_;
            nextAccrual_[i] += period_;
            ++totalAccrued_;
        }
    }
}

void
RefreshLedger::pauseRank(RankId r, Tick now)
{
    DSARP_ASSERT(r >= 0 && r < ranks_, "pauseRank: bad rank");
    DSARP_ASSERT(pausedAt_[r] == kTickNever, "rank already paused");
    pausedAt_[r] = now;
}

void
RefreshLedger::resumeRank(RankId r, Tick now)
{
    DSARP_ASSERT(r >= 0 && r < ranks_, "resumeRank: bad rank");
    DSARP_ASSERT(pausedAt_[r] != kTickNever, "rank not paused");
    const Tick paused = now - pausedAt_[r];
    pausedAt_[r] = kTickNever;

    // Internal retirement: the device refreshed one slot's worth of
    // rows per period of residency, first paying down anything owed at
    // entry. It never banks pull-in credit -- a device emerging from a
    // long sleep owes nothing, it is not ahead.
    const int internally_retired =
        static_cast<int>(std::min<Tick>(paused / period_,
                                        static_cast<Tick>(maxSlack_))) *
        denom_;
    for (int b = 0; b < banks_; ++b) {
        const int i = index(r, b);
        if (owed_[i] > 0)
            owed_[i] = std::max(0, owed_[i] - internally_retired);
        // Re-anchor every accrual instant by the paused duration so
        // the postpone/pull-in window restarts from the exit tick;
        // firstAccrual_ shifts with it so accruedBetween() never
        // reports phantom accruals from inside the residency.
        nextAccrual_[i] += paused;
        firstAccrual_[i] += paused;
    }
}

bool
RefreshLedger::rankPaused(RankId r) const
{
    return pausedAt_[r] != kTickNever;
}

bool
RefreshLedger::mustForce(RankId r, BankId b) const
{
    return owed(r, b) >= maxSlack_ * denom_;
}

bool
RefreshLedger::canPullIn(RankId r, BankId b) const
{
    // Equivalent to owed > -maxSlack for whole-slot accounting
    // (denom == 1), and generalizes to fractional denominators: the
    // retired slot must not push the balance past the window.
    return canPullInParts(r, b, denom_);
}

bool
RefreshLedger::canPullInParts(RankId r, BankId b, int parts) const
{
    return owed(r, b) - parts >= -maxSlack_ * denom_;
}

void
RefreshLedger::onRefresh(RankId r, BankId b)
{
    onPartialRefresh(r, b, denom_);
}

void
RefreshLedger::onPartialRefresh(RankId r, BankId b, int parts)
{
    owed_[index(r, b)] -= parts;
    ++totalRetired_;
    DSARP_ASSERT(owed_[index(r, b)] >= -maxSlack_ * denom_,
                 "pulled in beyond the JEDEC window");
}

Tick
RefreshLedger::nextAccrualTick() const
{
    Tick earliest = kTickNever;
    for (int i = 0; i < static_cast<int>(owed_.size()); ++i) {
        if (pausedAt_[i / banks_] != kTickNever)
            continue;
        earliest = std::min(earliest, nextAccrual_[i]);
    }
    return earliest;
}

bool
RefreshLedger::accruedBetween(RankId r, BankId b, Tick prev, Tick now) const
{
    const Tick first = firstAccrual_[index(r, b)];
    if (now < first)
        return false;
    // Largest accrual instant <= now; check it is > prev.
    const Tick k = (now - first) / period_;
    const Tick instant = first + k * period_;
    return instant > prev;
}

} // namespace dsarp
