/**
 * @file
 * Refresh obligation ledger.
 *
 * Each tracked unit (a bank for REFpb policies, a whole rank for REFab
 * policies) accrues one refresh obligation per nominal refresh interval;
 * issuing a refresh retires one. The signed balance ("owed") implements
 * the JEDEC postpone/pull-in window:
 *
 *   owed ==  maxSlack : a refresh MUST be issued now (8 postponed is the
 *                       limit; this enforces the paper's erratum -- a bank
 *                       never goes more than 9 intervals unrefreshed).
 *   owed == -maxSlack : no further refresh may be pulled in.
 *
 * Accrual instants are staggered across units so refreshes do not
 * synchronize (bank b of rank r accrues at offset b*tREFIpb within its
 * period, matching the round-robin origin of per-bank refresh).
 */

#ifndef DSARP_REFRESH_LEDGER_HH
#define DSARP_REFRESH_LEDGER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dsarp {

class RefreshLedger
{
  public:
    /**
     * @param ranks       number of ranks tracked
     * @param banks       units per rank (1 for all-bank policies)
     * @param period      nominal interval between accruals of one unit
     * @param rankStagger phase offset between consecutive ranks
     * @param unitStagger phase offset between banks within a rank
     * @param maxSlack    postpone/pull-in window (JEDEC: 8)
     * @param channelPhase whole-ledger phase origin: the owning
     *                     channel's cross-channel refresh stagger
     *                     (0 keeps channels aligned)
     */
    RefreshLedger(int ranks, int banks, Cycles period, Cycles rankStagger,
                  Cycles unitStagger, int maxSlack = 8,
                  Cycles channelPhase = Cycles(0));

    /** Accrue any obligations whose nominal instant has passed. */
    void advanceTo(Tick now);

    int owed(RankId r, BankId b = 0) const { return owed_[index(r, b)]; }

    /** The unit reached the postpone limit; a refresh is mandatory. */
    bool mustForce(RankId r, BankId b = 0) const;

    /** Below the postpone limit but owes at least one refresh. */
    bool due(RankId r, BankId b = 0) const { return owed(r, b) > 0; }

    /** A full-slot refresh may be pulled in without overdrawing the
     *  JEDEC pull-in window. */
    bool canPullIn(RankId r, BankId b = 0) const;

    /** Same, for a refresh retiring @p parts sub-units (fractional
     *  accounting: HiRA's one-row hidden refreshes). */
    bool canPullInParts(RankId r, BankId b, int parts) const;

    /** Record an issued refresh for the unit. */
    void onRefresh(RankId r, BankId b = 0);

    /**
     * Record an issued refresh worth a fraction of a nominal slot, in
     * 1/denom units (used by FGR/AR where a 4x command retires 1/4 of a
     * 1x obligation). The ledger internally tracks quarters in that case;
     * plain onRefresh retires denom quarters.
     */
    void onPartialRefresh(RankId r, BankId b, int parts);

    /** Units accrued since construction (for tests). */
    std::uint64_t totalAccrued() const { return totalAccrued_; }
    std::uint64_t totalRetired() const { return totalRetired_; }

    int maxSlack() const { return maxSlack_; }
    int numRanks() const { return ranks_; }
    int banksPerRank() const { return banks_; }

    /**
     * Did an accrual for (r, b) happen in (prev, now]? Used by DARP to
     * detect "the nominal refresh time of bank R has arrived".
     */
    bool accruedBetween(RankId r, BankId b, Tick prev, Tick now) const;

    /**
     * Earliest pending accrual instant over all units of unpaused
     * ranks (kTickNever when every rank is paused). The event-driven
     * engine must wake the scheduler at every accrual, or postpone
     * decisions and mustForce flips would land late.
     */
    Tick nextAccrualTick() const;

    /**
     * @name Self-refresh pause.
     *
     * While a rank is in self-refresh the device refreshes itself:
     * the controller-side ledger stops accruing for that rank's units
     * (pauseRank), and on exit (resumeRank) any owed balance is
     * retired at the internal rate -- one slot per period of
     * residency, floored at zero (the device catches up, it never
     * banks pull-in credit) -- while every accrual instant is shifted
     * by the paused duration so the postpone/pull-in window re-anchors
     * on the exit tick instead of instantly accusing the rank of
     * missing slots the device already covered.
     */
    /// @{
    void pauseRank(RankId r, Tick now);
    void resumeRank(RankId r, Tick now);
    bool rankPaused(RankId r) const;
    /// @}

  private:
    int index(RankId r, BankId b) const { return r * banks_ + b; }

    int ranks_;
    int banks_;
    Tick period_;
    int maxSlack_;
    std::vector<int> owed_;         ///< In denom_ sub-units.
    std::vector<Tick> nextAccrual_;
    std::vector<Tick> firstAccrual_;
    std::vector<Tick> pausedAt_;    ///< Per rank; kTickNever = running.
    int denom_ = 1;
    std::uint64_t totalAccrued_ = 0;
    std::uint64_t totalRetired_ = 0;

  public:
    /**
     * Switch the ledger to fractional accounting: balances are kept in
     * 1/denom sub-units from here on. Legal at any time -- existing
     * balances are rescaled in place so the postpone/pull-in window
     * (maxSlack * denom) keeps its meaning across the change; a change
     * that would truncate a fractional balance (old sub-units not
     * representable in the new denominator) is a fatal error.
     */
    void setDenominator(int denom);
};

} // namespace dsarp

#endif // DSARP_REFRESH_LEDGER_HH
