#include "refresh/no_refresh.hh"

// All behaviour is inline; this translation unit anchors the vtable.
