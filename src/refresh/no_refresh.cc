#include "refresh/no_refresh.hh"

#include "refresh/registry.hh"

// All scheduler behaviour is inline; this translation unit anchors the
// vtable and registers the policy.

namespace dsarp {

DSARP_REGISTER_REFRESH_POLICY(noref, {
    "NoREF", "ideal refresh-free baseline (upper bound)",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kNoRefresh;
        m.sarp = false;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<NoRefreshScheduler>(&c, &t, &v);
    }}, {"none", "no_refresh"})

} // namespace dsarp
