/**
 * @file
 * Ideal refresh-free baseline ("No REF" in the paper's figures).
 */

#ifndef DSARP_REFRESH_NO_REFRESH_HH
#define DSARP_REFRESH_NO_REFRESH_HH

#include "refresh/scheduler.hh"

namespace dsarp {

class NoRefreshScheduler : public RefreshScheduler
{
  public:
    using RefreshScheduler::RefreshScheduler;

    void tick(Tick) override {}
    void urgent(Tick, std::vector<RefreshRequest> &) override {}
    bool opportunistic(Tick, RefreshRequest &) override { return false; }
    void onIssued(const RefreshRequest &, Tick) override {}
    Tick nextWake(Tick) override { return kTickNever; }
};

} // namespace dsarp

#endif // DSARP_REFRESH_NO_REFRESH_HH
