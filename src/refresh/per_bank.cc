#include "refresh/per_bank.hh"

#include "refresh/registry.hh"

namespace dsarp {

DSARP_REGISTER_REFRESH_POLICY(refpb, {
    "REFpb", "sequential round-robin per-bank refresh (LPDDR baseline)",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kPerBank;
        m.sarp = false;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<PerBankScheduler>(&c, &t, &v);
    }}, {"per_bank"})

DSARP_REGISTER_REFRESH_POLICY(sarppb, {
    "SARPpb", "per-bank refresh + subarray access-refresh parallelization",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kPerBank;
        m.sarp = true;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<PerBankScheduler>(&c, &t, &v);
    }}, {"sarp_pb"})

PerBankScheduler::PerBankScheduler(const MemConfig *cfg,
                                   const TimingParams *timing,
                                   ControllerView *view)
    : RefreshScheduler(cfg, timing, view),
      // One unit per bank, accruing every tREFIab, staggered by tREFIpb
      // within the rank so each rank sees one obligation per tREFIpb in
      // round-robin order; ranks are phase-shifted by half a slot.
      ledger_(cfg->org.ranksPerChannel, cfg->org.banksPerRank,
              timing->tRefiAb, timing->tRefiPb / 2, timing->tRefiPb, 8,
              channelPhase()),
      rrIndex_(cfg->org.ranksPerChannel, 0)
{
}

void
PerBankScheduler::tick(Tick now)
{
    ledger_.advanceTo(now);
    lastTick_ = now;
}

void
PerBankScheduler::urgent(Tick now, std::vector<RefreshRequest> &out)
{
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        if (rankInSelfRefresh(r, now))
            continue;  // The device refreshes itself; ledger paused.
        // Strict sequential order: only the round-robin bank may refresh.
        const BankId b = rrIndex_[r];
        if (ledger_.due(r, b)) {
            RefreshRequest req;
            req.rank = r;
            req.bank = b;
            req.blocking = true;
            out.push_back(req);
        }
    }
}

void
PerBankScheduler::onIssued(const RefreshRequest &req, Tick)
{
    ledger_.onRefresh(req.rank, req.bank);
    rrIndex_[req.rank] = (req.bank + 1) % ledger_.banksPerRank();
    ++stats_.issued;
}

void
PerBankScheduler::onSrEnter(RankId rank, Tick now)
{
    ledger_.pauseRank(rank, now);
}

void
PerBankScheduler::onSrExit(RankId rank, Tick now)
{
    ledger_.resumeRank(rank, now);
}

} // namespace dsarp
