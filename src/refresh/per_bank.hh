/**
 * @file
 * Baseline per-bank refresh (REFpb): the LPDDR round-robin scheme of paper
 * Section 2.2.2. A REFpb command is due every tREFIpb; the DRAM-internal
 * counter dictates a strict sequential bank order, so the controller has
 * no say in which bank refreshes next, and refreshes take priority over
 * demands once due.
 */

#ifndef DSARP_REFRESH_PER_BANK_HH
#define DSARP_REFRESH_PER_BANK_HH

#include <deque>

#include "refresh/ledger.hh"
#include "refresh/scheduler.hh"

namespace dsarp {

class PerBankScheduler : public RefreshScheduler
{
  public:
    PerBankScheduler(const MemConfig *cfg, const TimingParams *timing,
                     ControllerView *view);

    void tick(Tick now) override;
    void urgent(Tick now, std::vector<RefreshRequest> &out) override;
    bool opportunistic(Tick, RefreshRequest &) override { return false; }
    void onIssued(const RefreshRequest &req, Tick now) override;
    void onSrEnter(RankId rank, Tick now) override;
    void onSrExit(RankId rank, Tick now) override;

    /** Nothing changes between ledger accrual instants. */
    Tick nextWake(Tick) override { return ledger_.nextAccrualTick(); }

    const RefreshLedger &ledger() const { return ledger_; }

    /** Next bank the round-robin order will refresh for a rank. */
    BankId rrIndex(RankId r) const { return rrIndex_[r]; }

  private:
    RefreshLedger ledger_;
    std::vector<BankId> rrIndex_;  ///< Internal round-robin counters.
    Tick lastTick_ = 0;
};

} // namespace dsarp

#endif // DSARP_REFRESH_PER_BANK_HH
