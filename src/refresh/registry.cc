#include "refresh/registry.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "common/strings.hh"

namespace dsarp {

RefreshPolicyRegistry &
RefreshPolicyRegistry::instance()
{
    static RefreshPolicyRegistry registry;
    return registry;
}

bool
RefreshPolicyRegistry::add(Entry entry, std::vector<std::string> aliases)
{
    DSARP_ASSERT(!entry.name.empty(), "refresh policy needs a name");
    DSARP_ASSERT(static_cast<bool>(entry.make),
                 "refresh policy needs a factory");

    const std::lock_guard<std::mutex> lock(mutex_);
    aliases.push_back(entry.name);
    const std::size_t slot = entries_.size();
    entries_.push_back(std::move(entry));
    for (const std::string &alias : aliases) {
        const auto [it, inserted] = index_.emplace(lowered(alias), slot);
        (void)it;
        if (!inserted) {
            std::fprintf(stderr, "refresh policy name '%s' registered "
                                 "twice\n", alias.c_str());
            std::abort();
        }
    }
    return true;
}

const RefreshPolicyRegistry::Entry *
RefreshPolicyRegistry::findLocked(const std::string &name) const
{
    const auto it = index_.find(lowered(name));
    return it == index_.end() ? nullptr : &entries_[it->second];
}

const RefreshPolicyRegistry::Entry &
RefreshPolicyRegistry::atLocked(const std::string &name) const
{
    if (const Entry *entry = findLocked(name))
        return *entry;
    DSARP_FATAL(unknownPolicyMessageLocked(name).c_str());
}

bool
RefreshPolicyRegistry::has(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return findLocked(name) != nullptr;
}

const RefreshPolicyRegistry::Entry *
RefreshPolicyRegistry::find(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return findLocked(name);
}

const RefreshPolicyRegistry::Entry &
RefreshPolicyRegistry::at(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return atLocked(name);
}

std::string
RefreshPolicyRegistry::unknownPolicyMessageLocked(
    const std::string &name) const
{
    std::ostringstream msg;
    msg << "config key 'policy': unknown refresh policy '" << name
        << "'; known:";
    for (const std::string &known : namesLocked())
        msg << ' ' << known;
    return msg.str();
}

std::string
RefreshPolicyRegistry::unknownPolicyMessage(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return unknownPolicyMessageLocked(name);
}

std::vector<std::string>
RefreshPolicyRegistry::namesLocked() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &entry : entries_)
        out.push_back(entry.name);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
RefreshPolicyRegistry::names() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return namesLocked();
}

const RefreshPolicyRegistry::Entry &
RefreshPolicyRegistry::resolve(MemConfig &cfg) const
{
    // Entry references are stable (deque), so the lock protects only
    // the lookup -- config bundles run unlocked and may re-enter the
    // registry.
    if (cfg.policy.empty()) {
        // Deprecated enum-pair path: never touch the config -- unnamed
        // combinations (e.g. Elastic+SARP) are legal there and must
        // keep their hand-assembled semantics. Canonicalise the name
        // only when its bundle reproduces this exact config, so
        // re-resolving the result (e.g. a config copied out of a built
        // System) can never reinterpret it.
        const Entry &entry = at(legacyPolicyName(cfg.refresh, cfg.sarp));
        if (entry.configure) {
            MemConfig probe = cfg;
            entry.configure(probe);
            if (probe.refresh == cfg.refresh && probe.sarp == cfg.sarp)
                cfg.policy = entry.name;
        } else {
            cfg.policy = entry.name;
        }
        return entry;
    }
    const Entry &entry = at(cfg.policy);
    cfg.policy = entry.name;
    if (entry.configure)
        entry.configure(cfg);
    return entry;
}

std::unique_ptr<RefreshScheduler>
RefreshPolicyRegistry::make(const MemConfig &cfg, const TimingParams &timing,
                            ControllerView &view) const
{
    const std::string key = cfg.policy.empty()
        ? legacyPolicyName(cfg.refresh, cfg.sarp)
        : cfg.policy;
    return at(key).make(cfg, timing, view);
}

std::string
legacyPolicyName(RefreshMode mode, bool sarp)
{
    if (sarp) {
        // The three named SARP combinations of the paper; any other
        // SARP pairing has no canonical mechanism name and is reported
        // under its base schedule.
        if (mode == RefreshMode::kAllBank)
            return "SARPab";
        if (mode == RefreshMode::kPerBank)
            return "SARPpb";
        if (mode == RefreshMode::kDarp)
            return "DSARP";
    }
    return refreshModeName(mode);
}

} // namespace dsarp
