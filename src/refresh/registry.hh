/**
 * @file
 * String-keyed, self-registering registry of refresh mechanisms.
 *
 * Every mechanism the simulator knows -- the paper's eleven (NoREF,
 * REFab, REFpb, Elastic, DARP, SARPab, SARPpb, DSARP, FGR2x, FGR4x,
 * AR) and any user-defined policy -- is one registry entry carrying:
 *
 *   - the canonical name (plus aliases; lookups are case-insensitive),
 *   - a config bundle applied before the system is built (the refresh
 *     timing profile and the SARP flag, e.g. "DSARP" = DARP + SARP),
 *   - a factory building the per-channel scheduler.
 *
 * Policies register themselves from static initializers in their own
 * translation units (see the DSARP_REGISTER_REFRESH_POLICY macro), so
 * adding a mechanism is one new .cc file -- no enum, no switch, no
 * name table to edit. The core is linked as a CMake OBJECT library so
 * the registrars are never dead-stripped.
 *
 * Selection: set MemConfig::policy to a registered name. When the
 * field is empty, the deprecated (RefreshMode, sarp) pair is mapped to
 * its canonical name instead, which keeps pre-registry code working.
 */

#ifndef DSARP_REFRESH_REGISTRY_HH
#define DSARP_REFRESH_REGISTRY_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "refresh/scheduler.hh"

namespace dsarp {

class RefreshPolicyRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<RefreshScheduler>(
        const MemConfig &, const TimingParams &, ControllerView &)>;

    struct Entry
    {
        std::string name;     ///< Canonical spelling, e.g. "DSARP".
        std::string summary;  ///< One-liner for --list-mechs and docs.

        /**
         * Apply the mechanism's config bundle: the legacy timing-profile
         * enum (which TimingParams and the checker still consume) and
         * flags such as MemConfig::sarp. Run by resolve() when the
         * mechanism was selected by name.
         */
        std::function<void(MemConfig &)> configure;

        /** Build the scheduler for one channel. */
        Factory make;
    };

    /**
     * The process-wide registry. A function-local static, so the
     * first registrar to run -- in whatever translation-unit order
     * the linker chose -- constructs it before using it (no
     * static-init-order hazard), and C++11 magic-static semantics
     * make that construction race-free. All member functions are
     * additionally mutex-guarded, so runtime registration (tests,
     * custom policies) is safe against concurrent lookups from the
     * parallel sweep harness.
     */
    static RefreshPolicyRegistry &instance();

    /**
     * Register @p entry under its canonical name and every alias.
     * Returns true so static registrars can capture the result; a
     * duplicate name is a fatal error at startup.
     */
    bool add(Entry entry, std::vector<std::string> aliases = {});

    bool has(const std::string &name) const;

    /** Case-insensitive lookup; nullptr when unknown. */
    const Entry *find(const std::string &name) const;

    /** find(), but a fatal named-key error listing known mechanisms. */
    const Entry &at(const std::string &name) const;

    /** The named-key error text at() dies with (for callers that
     *  collect errors instead of exiting). */
    std::string unknownPolicyMessage(const std::string &name) const;

    /** Canonical names, sorted; aliases are not repeated. */
    std::vector<std::string> names() const;

    /**
     * Resolve @p cfg to its registry entry and canonicalise it:
     * cfg.policy is rewritten to the canonical spelling and the entry's
     * config bundle is applied. An empty cfg.policy is first derived
     * from the deprecated (refresh, sarp) pair, in which case the
     * bundle is *not* applied so hand-built legacy configs (including
     * unnamed combinations such as Elastic+SARP) keep their exact
     * semantics.
     */
    const Entry &resolve(MemConfig &cfg) const;

    /**
     * Build the scheduler selected by @p cfg (by name, or by the
     * deprecated enum pair when cfg.policy is empty).
     */
    std::unique_ptr<RefreshScheduler> make(const MemConfig &cfg,
                                           const TimingParams &timing,
                                           ControllerView &view) const;

  private:
    const Entry *findLocked(const std::string &name) const;
    const Entry &atLocked(const std::string &name) const;
    std::string unknownPolicyMessageLocked(const std::string &name) const;
    std::vector<std::string> namesLocked() const;

    /** Guards index_/entries_; never held while running a factory or
     *  config bundle (those may re-enter the registry). */
    mutable std::mutex mutex_;

    std::map<std::string, std::size_t> index_;  ///< lowercase name → slot.

    /** A deque so Entry pointers returned by find()/at() stay valid
     *  when later (runtime) registrations grow the registry. */
    std::deque<Entry> entries_;
};

/**
 * Canonical mechanism name for a deprecated (RefreshMode, sarp) pair:
 * the bridge that keeps enum-configured code addressable by the
 * registry ("DARP"+sarp → "DSARP", etc.).
 */
std::string legacyPolicyName(RefreshMode mode, bool sarp);

/**
 * Define a static registrar. Use at namespace scope in the policy's
 * translation unit:
 *
 *   DSARP_REGISTER_REFRESH_POLICY(darp, {
 *       "DARP", "out-of-order per-bank refresh",
 *       [](MemConfig &m) { m.refresh = RefreshMode::kDarp; },
 *       [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
 *           return std::make_unique<DarpScheduler>(&c, &t, &v);
 *       }})
 */
#define DSARP_REGISTER_REFRESH_POLICY(ident, ...) \
    namespace { \
    const bool dsarpRefreshRegistrar_##ident [[maybe_unused]] = \
        ::dsarp::RefreshPolicyRegistry::instance().add(__VA_ARGS__); \
    }

} // namespace dsarp

#endif // DSARP_REFRESH_REGISTRY_HH
