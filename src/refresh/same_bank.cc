#include "refresh/same_bank.hh"

#include "common/log.hh"
#include "refresh/registry.hh"

namespace dsarp {

DSARP_REGISTER_REFRESH_POLICY(refsb, {
    "REFsb", "DDR5 same-bank refresh: one command refreshes a "
             "bank-group slice while other groups keep serving",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kSameBank;
        m.sarp = false;
        m.hira = false;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<SameBankScheduler>(&c, &t, &v);
    }}, {"same_bank", "samebank"})

DSARP_REGISTER_REFRESH_POLICY(hirasb, {
    "HiRAsb", "REFsb + HiRA refresh-refresh pairing: doubled same-bank "
              "slices when a bank group falls two slots behind",
    [](MemConfig &m) {
        m.refresh = RefreshMode::kSameBank;
        m.sarp = false;
        m.hira = true;
    },
    [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
        return std::make_unique<SameBankScheduler>(&c, &t, &v);
    }}, {"refsb+hira"})

SameBankScheduler::SameBankScheduler(const MemConfig *cfg,
                                     const TimingParams *timing,
                                     ControllerView *view)
    : RefreshScheduler(cfg, timing, view),
      // One ledger unit per bank-group slice, accruing every tREFIab,
      // staggered by tREFIsb within the rank (the slice round-robin
      // origin); ranks are phase-shifted by half a slot, mirroring the
      // per-bank policies.
      ledger_(cfg->org.ranksPerChannel,
              timing->banksPerGroup > 0
                  ? cfg->org.banksPerRank / timing->banksPerGroup
                  : 1,
              timing->tRefiAb, timing->tRefiSb / 2, timing->tRefiSb, 8,
              channelPhase()),
      groups_(timing->banksPerGroup > 0
                  ? cfg->org.banksPerRank / timing->banksPerGroup
                  : 1),
      banksPerGroup_(timing->banksPerGroup),
      pullInEnabled_(cfg->sameBankPullIn),
      pairingEnabled_(cfg->hira && cfg->org.subarraysPerBank >= 2)
{
    DSARP_ASSERT(timing->banksPerGroup > 0,
                 "REFsb scheduler needs a spec with same-bank refresh");
    dueNow_.assign(cfg->org.ranksPerChannel * groups_, 0);
    pairDraw_.assign(cfg->org.ranksPerChannel * groups_, -1);
}

int
SameBankScheduler::pendingDemandsGroup(RankId r, int g) const
{
    int count = 0;
    for (int b = g * banksPerGroup_; b < (g + 1) * banksPerGroup_; ++b)
        count += view_->pendingDemands(r, b);
    return count;
}

void
SameBankScheduler::tick(Tick now)
{
    ledger_.advanceTo(now);

    // DARP's postpone decision (Figure 8, step 1) at slice
    // granularity: at a slice's nominal refresh instant, postpone when
    // any bank of the group has pending demands and the postpone
    // window has room; otherwise mark the slice for an on-time
    // refresh.
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        if (rankInSelfRefresh(r, now))
            continue;  // Ledger paused; the device refreshes itself.
        for (int g = 0; g < groups_; ++g) {
            if (!ledger_.accruedBetween(r, g, lastTick_, now))
                continue;
            if (ledger_.owed(r, g) <= 0)
                continue;  // Covered by earlier pull-ins.
            // A slice refresh must drain a whole bank group before it
            // becomes legal, so stop postponing two slots ahead of the
            // hard JEDEC limit -- the drain headroom keeps the bound
            // (never > 9 intervals unrefreshed) safe under load.
            if (pendingDemandsGroup(r, g) > 0 &&
                ledger_.owed(r, g) + 2 < ledger_.maxSlack() &&
                !ledger_.mustForce(r, g)) {
                ++stats_.postponed;
            } else {
                dueNow_[index(r, g)] = 1;
            }
        }
    }
    lastTick_ = now;
}

void
SameBankScheduler::urgent(Tick now, std::vector<RefreshRequest> &out)
{
    for (RankId r = 0; r < ledger_.numRanks(); ++r) {
        if (rankInSelfRefresh(r, now))
            continue;
        for (int g = 0; g < groups_; ++g) {
            if (!ledger_.mustForce(r, g) && !dueNow_[index(r, g)])
                continue;
            RefreshRequest req;
            req.sameBank = true;
            req.rank = r;
            req.bank = g;
            req.blocking = true;
            // HiRA refresh-refresh pairing extended to slices: a
            // group two or more slots behind may retire two slots in
            // one command at unchanged tRFCsb, coverage permitting.
            // One draw per due slot (redrawing every tick would
            // inflate the probability); reset when the slice issues.
            if (pairingEnabled_ && ledger_.owed(r, g) >= 2) {
                int &draw = pairDraw_[index(r, g)];
                if (draw < 0) {
                    draw = view_->schedulerRng().chance(
                               timing_->hiraRefCoverage)
                        ? 1
                        : 0;
                }
                if (draw == 1) {
                    req.rowsOverride = 2 * timing_->rowsPerRefresh;
                    req.ledgerParts = 2;
                }
            }
            out.push_back(req);
        }
    }
}

bool
SameBankScheduler::opportunistic(Tick now, RefreshRequest &out)
{
    // Idle-channel pull-in (Figure 8, step 3, at slice granularity):
    // a random slice with no pending demands in any of its banks
    // receives a postponed or pulled-in refresh, credit permitting.
    if (!pullInEnabled_)
        return false;
    const int total = ledger_.numRanks() * groups_;
    const int start = static_cast<int>(view_->schedulerRng().below(total));
    for (int i = 0; i < total; ++i) {
        const int idx = (start + i) % total;
        const RankId r = idx / groups_;
        const int g = idx % groups_;
        if (pendingDemandsGroup(r, g) > 0)
            continue;
        if (!ledger_.canPullInParts(r, g, 1) ||
            !view_->dram().rank(r).canRefSb(now, g)) {
            continue;
        }
        out = RefreshRequest{};
        out.sameBank = true;
        out.rank = r;
        out.bank = g;
        out.blocking = false;
        return true;
    }
    return false;
}

void
SameBankScheduler::onIssued(const RefreshRequest &req, Tick)
{
    const int g = req.bank;
    if (ledger_.mustForce(req.rank, g))
        ++stats_.forced;
    if (ledger_.owed(req.rank, g) <= 0)
        ++stats_.pulledIn;
    // One command retires the whole slice's obligation -- all banks
    // sharing the bank-group index at once; a paired command retires
    // two slots' worth.
    if (req.ledgerParts > 0) {
        ledger_.onPartialRefresh(req.rank, g, req.ledgerParts);
        if (req.ledgerParts > 1)
            ++pairedIssued_;
    } else {
        ledger_.onRefresh(req.rank, g);
    }
    dueNow_[index(req.rank, g)] = 0;
    pairDraw_[index(req.rank, g)] = -1;
    ++stats_.issued;
}

void
SameBankScheduler::onSrEnter(RankId rank, Tick now)
{
    ledger_.pauseRank(rank, now);
    // Due slices and pairing draws are covered by the device's own
    // refresh during the residency.
    for (int g = 0; g < groups_; ++g) {
        dueNow_[index(rank, g)] = 0;
        pairDraw_[index(rank, g)] = -1;
    }
}

void
SameBankScheduler::onSrExit(RankId rank, Tick now)
{
    ledger_.resumeRank(rank, now);
}

} // namespace dsarp
