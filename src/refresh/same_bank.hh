/**
 * @file
 * REFsb: DDR5 same-bank refresh, the standard's own adoption of the
 * paper's refresh-access parallelism.
 *
 * One REFsb command refreshes every bank of one bank-group slice
 * (TimingParams::banksPerGroup banks, 4 on DDR5) in tRFCsb cycles
 * while all other bank groups keep serving demand accesses -- what
 * DARP/SARP build in controller logic, DDR5 ships in the device. A
 * slice is due every tREFIsb = tREFIab / (banks / slice).
 *
 * The scheduler maps the slices onto the per-bank refresh machinery:
 * the ledger tracks one unit per (rank, group); issuing one command
 * retires the obligations of all banks sharing that bank-group index
 * at once. Scheduling is DARP-flavoured at group granularity
 * (Section 4.2 transplanted): a due slice is postponed while any of
 * its banks has pending demand requests (credit permitting, forced at
 * the JEDEC postpone limit), and idle channels pull slices in
 * opportunistically (gated by MemConfig::sameBankPullIn, config key
 * "refresh.samebank.pullIn").
 *
 * HiRA composition (Yağlıkçı+, MICRO'22): under the "HiRAsb" registry
 * entry (MemConfig::hira set), a due slice that is two or more slots
 * behind may cover two slots' rows in one command at unchanged
 * tRFCsb, pairing each row with a partner from another subarray --
 * HiRA's refresh-refresh doubling extended from single banks to
 * same-bank slices, gated by the spec's characterized
 * hiraRefCoverage.
 */

#ifndef DSARP_REFRESH_SAME_BANK_HH
#define DSARP_REFRESH_SAME_BANK_HH

#include <vector>

#include "refresh/ledger.hh"
#include "refresh/scheduler.hh"

namespace dsarp {

class SameBankScheduler : public RefreshScheduler
{
  public:
    SameBankScheduler(const MemConfig *cfg, const TimingParams *timing,
                      ControllerView *view);

    void tick(Tick now) override;
    void urgent(Tick now, std::vector<RefreshRequest> &out) override;
    bool opportunistic(Tick now, RefreshRequest &out) override;
    void onIssued(const RefreshRequest &req, Tick now) override;
    void onSrEnter(RankId rank, Tick now) override;
    void onSrExit(RankId rank, Tick now) override;

    /**
     * Postpone decisions and dueNow_ marks only change at ledger
     * accrual instants; the pairing draw is lazy (cached after the
     * first evaluation) and the per-tick pull-in draw is replayed by
     * the controller.
     */
    Tick nextWake(Tick) override { return ledger_.nextAccrualTick(); }

    const RefreshLedger &ledger() const { return ledger_; }

    /** Bank-group slices per rank. */
    int numGroups() const { return groups_; }

    /** Commands that covered two slots (HiRA slice pairing). */
    std::uint64_t pairedIssued() const { return pairedIssued_; }

  private:
    int index(RankId r, int g) const { return r * groups_ + g; }

    /** Demand requests pending for any bank of the slice. */
    int pendingDemandsGroup(RankId r, int g) const;

    RefreshLedger ledger_;  ///< One unit per (rank, bank-group slice).
    int groups_;
    int banksPerGroup_;
    bool pullInEnabled_;
    bool pairingEnabled_;   ///< HiRA refresh-refresh slice doubling.

    /** Slices whose nominal refresh could not be postponed. */
    std::vector<std::uint8_t> dueNow_;

    /** Per-slice pairing coverage draw for the next due slot: -1
     *  undecided, else 0/1 (one draw per slot, reset on issue). */
    std::vector<int> pairDraw_;

    std::uint64_t pairedIssued_ = 0;
    Tick lastTick_ = 0;
};

} // namespace dsarp

#endif // DSARP_REFRESH_SAME_BANK_HH
