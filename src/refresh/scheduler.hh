/**
 * @file
 * Refresh scheduling policy interface.
 *
 * A scheduler is consulted by its channel controller every tick. It may
 * demand *urgent* refreshes (issued with priority over demand requests;
 * blocking urgent requests also stop new ACTs to their target so the bank
 * or rank drains) and *opportunistic* refreshes (issued only when the
 * channel had nothing better to do this tick).
 */

#ifndef DSARP_REFRESH_SCHEDULER_HH
#define DSARP_REFRESH_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "dram/channel.hh"
#include "dram/timing.hh"

namespace dsarp {

/** Controller state a refresh policy may observe (paper Section 4.2.1:
 *  DARP monitors the bank request queues' occupancies). */
class ControllerView
{
  public:
    virtual ~ControllerView() = default;

    /** Pending read+write demand requests queued for a bank. */
    virtual int pendingDemands(RankId r, BankId b) const = 0;
    virtual int pendingReads(RankId r, BankId b) const = 0;
    virtual int pendingWrites(RankId r, BankId b) const = 0;
    virtual int pendingDemandsRank(RankId r) const = 0;

    /** True while the channel drains a write batch (writeback mode). */
    virtual bool inWritebackMode() const = 0;

    /** Tick of the last demand activity on a rank (for idle prediction). */
    virtual Tick lastDemandActivity(RankId r) const = 0;

    /** Index of the channel this controller drives, for cross-channel
     *  refresh phasing. Defaulted so single-channel mocks need not
     *  care. */
    virtual ChannelId channelId() const { return 0; }

    virtual const Channel &dram() const = 0;
    virtual Rng &schedulerRng() = 0;
};

/** One refresh the policy wants issued. */
struct RefreshRequest
{
    bool allBank = false;
    /** Same-bank refresh (DDR5 REFsb): `bank` holds the bank-group
     *  index; the command refreshes that whole slice. */
    bool sameBank = false;
    RankId rank = 0;
    BankId bank = 0;        ///< Ignored for all-bank requests.
    bool blocking = false;  ///< Stop new ACTs to the target until issued.
    /** Nonzero: refresh latency in cycles (FGR/AR). */
    Cycles tRfcOverride{};
    int rowsOverride = 0;   ///< Nonzero: rows advanced by this refresh.
    int ledgerParts = 0;    ///< Ledger sub-units retired (0 = full slot).
    bool hidden = false;    ///< HiRA: refresh beneath the bank's open row.
};

/** Counters reported by every policy. */
struct RefreshSchedStats
{
    std::uint64_t postponed = 0;  ///< Refreshes deferred past nominal time.
    std::uint64_t pulledIn = 0;   ///< Refreshes issued ahead of schedule.
    std::uint64_t forced = 0;     ///< Issued at the postpone limit.
    std::uint64_t issued = 0;     ///< Total refresh commands issued.
};

class RefreshScheduler
{
  public:
    RefreshScheduler(const MemConfig *cfg, const TimingParams *timing,
                     ControllerView *view)
        : cfg_(cfg), timing_(timing), view_(view)
    {}

    virtual ~RefreshScheduler() = default;

    /** Advance internal obligation tracking to @p now. */
    virtual void tick(Tick now) = 0;

    /**
     * Append refreshes that should be issued with priority over demands.
     * Order matters: the controller issues the first legal one.
     */
    virtual void urgent(Tick now, std::vector<RefreshRequest> &out) = 0;

    /** A refresh to issue only because the channel is otherwise idle. */
    virtual bool opportunistic(Tick now, RefreshRequest &out) = 0;

    /** Notification that @p req was put on the command bus at @p now. */
    virtual void onIssued(const RefreshRequest &req, Tick now) = 0;

    /**
     * Notification that a *demand* command went on the bus at @p now.
     * Default no-op; HiRA watches ACTs so it can pair a hidden refresh
     * with the activation (tHiRA cycles later, different subarray).
     */
    virtual void
    onDemandCommand(const Command &cmd, Tick now)
    {
        (void)cmd;
        (void)now;
    }

    /**
     * Self-refresh entry/exit notifications (SRE/SRX issued by the
     * controller's idle-entry policy). Ledger-driven policies pause
     * the rank's obligation tracking across the residency -- the
     * device refreshes itself internally -- and re-anchor on exit.
     * Default no-op (NoREF has nothing to pause).
     */
    virtual void
    onSrEnter(RankId rank, Tick now)
    {
        (void)rank;
        (void)now;
    }

    virtual void
    onSrExit(RankId rank, Tick now)
    {
        (void)rank;
        (void)now;
    }

    /**
     * Earliest tick strictly after @p now at which this policy could
     * behave differently than it just did (ledger accrual instants,
     * HiRA window arming, elastic idle-release thresholds, ...). The
     * event-driven engine sleeps to the minimum over all components;
     * returning @p now is the always-safe default and forces the
     * legacy one-tick step. Called only on ticks where the controller
     * issued nothing.
     */
    virtual Tick
    nextWake(Tick now)
    {
        return now;
    }

    /**
     * Account @p ticks consecutive skipped ticks starting at
     * @p firstTick. A skipped tick is one the cycle engine would have
     * executed with no command issued and no threshold crossed; the
     * policy must replay whatever per-tick side effects it has on that
     * path (RNG draws from opportunistic(), per-tick stat counters in
     * urgent()) so the event engine stays bit-identical. Default: none.
     */
    virtual void
    skipTicks(Tick firstTick, Tick ticks)
    {
        (void)firstTick;
        (void)ticks;
    }

    const RefreshSchedStats &stats() const { return stats_; }

    /** Zero the counters (obligation state is preserved). */
    void resetStats() { stats_ = RefreshSchedStats{}; }

  protected:
    /** A rank in self-refresh (or its tXS exit window) accepts no
     *  refresh commands; policies skip it when emitting requests. */
    bool
    rankInSelfRefresh(RankId r, Tick now) const
    {
        return view_->dram().rank(r).selfRefreshLockout(now);
    }

    /**
     * This channel's cross-channel refresh phase (config key
     * "refresh.channelStagger"): the ledger origin offset that keeps
     * sibling channels from refreshing on the same ticks. 0 when
     * staggering is off (the bit-identical default) or the system has
     * one channel; -1 selects the even spread tREFIab / channels.
     * Ledger-driven policies pass this as their ledger's channelPhase.
     */
    Cycles
    channelPhase() const
    {
        const int s = cfg_->channelStaggerCycles;
        if (s == 0 || cfg_->org.channels <= 1)
            return Cycles(0);
        const Cycles per =
            s < 0 ? timing_->tRefiAb / cfg_->org.channels : Cycles(s);
        return per * view_->channelId();
    }

    const MemConfig *cfg_;
    const TimingParams *timing_;
    ControllerView *view_;
    RefreshSchedStats stats_;
};

/**
 * Build the policy selected by cfg for one channel.
 *
 * @deprecated Use RefreshPolicyRegistry::instance().make() (or better,
 * select mechanisms by name via MemConfig::policy / the Simulation
 * facade); this wrapper only remains so pre-registry callers compile.
 */
[[deprecated("use RefreshPolicyRegistry (refresh/registry.hh)")]]
std::unique_ptr<RefreshScheduler>
makeRefreshScheduler(const MemConfig &cfg, const TimingParams &timing,
                     ControllerView &view);

} // namespace dsarp

#endif // DSARP_REFRESH_SCHEDULER_HH
