#include "sim/checker.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>

namespace dsarp {

namespace {

struct BankModel
{
    bool open = false;
    RowId openRow = kNone;
    Tick lastAct = kTickNever;
    Tick actLegalAt = 0;   ///< After precharge completion.
    Tick colLegalAt = 0;
    Tick refreshUntil = 0;
    SubarrayId refreshSubarray = kNone;
    RowId refRowCounter = 0;
    std::uint64_t refreshes = 0;
    /** Nominal tREFIab slots' worth of rows refreshed so far. */
    double slotsCovered = 0.0;
};

struct RankModel
{
    std::vector<BankModel> banks;
    std::deque<Tick> acts;       ///< ACT history for tRRD/tFAW.
    Tick refAbUntil = 0;         ///< All-bank refresh in flight.
    std::vector<Tick> refPbEnds; ///< In-flight per-bank refresh ends.
    std::vector<Tick> hiddenPbEnds;  ///< HiRA-hidden subset.
    std::vector<Tick> refSbEnds; ///< In-flight same-bank slice ends.

    /** @name Self-refresh protocol state. */
    /// @{
    bool sr = false;             ///< SRE seen, no SRX yet.
    Tick srSince = 0;            ///< Entry tick of the residency.
    Tick srLockoutUntil = 0;     ///< SRX tick + tXS.
    /// @}

    int
    pbInFlight(Tick now)
    {
        std::erase_if(refPbEnds, [now](Tick end) { return end <= now; });
        return static_cast<int>(refPbEnds.size());
    }

    int
    hiddenPbInFlight(Tick now)
    {
        std::erase_if(hiddenPbEnds,
                      [now](Tick end) { return end <= now; });
        return static_cast<int>(hiddenPbEnds.size());
    }

    int
    sbInFlight(Tick now)
    {
        std::erase_if(refSbEnds, [now](Tick end) { return end <= now; });
        return static_cast<int>(refSbEnds.size());
    }
};

class Verifier
{
  public:
    Verifier(const MemConfig &cfg, const TimingParams &timing)
        : cfg_(cfg), t_(timing)
    {
        ranks_.resize(cfg.org.ranksPerChannel);
        for (auto &r : ranks_)
            r.banks.resize(cfg.org.banksPerRank);
    }

    void
    fail(Tick tick, const Command &cmd, const char *what)
    {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "t=%llu %s rank=%d bank=%d row=%d: %s",
                      static_cast<unsigned long long>(tick),
                      commandName(cmd.type), cmd.rank, cmd.bank, cmd.row,
                      what);
        report_.violations.push_back(buf);
    }

    double
    inflation(RankModel &rank, Tick now) const
    {
        // Both which-count-inflates and the multiplier are shared with
        // the live Rank model so the two sides cannot drift.
        const int pb = Rank::inflationPbCount(
            cfg_, rank.pbInFlight(now), rank.hiddenPbInFlight(now));
        return Rank::refreshInflationMult(cfg_, rank.refAbUntil > now,
                                          pb);
    }

    void
    checkAct(Tick now, const Command &cmd)
    {
        RankModel &rank = ranks_[cmd.rank];
        BankModel &bank = rank.banks[cmd.bank];

        if (bank.open)
            fail(now, cmd, "ACT to an open bank");
        if (bank.lastAct != kTickNever &&
            now < bank.lastAct + t_.tRc) {
            fail(now, cmd, "tRC violated");
        }
        if (now < bank.actLegalAt)
            fail(now, cmd, "tRP/refresh lockout violated");
        if (bank.refreshUntil > now) {
            const SubarrayId target =
                cmd.row / cfg_.org.rowsPerSubarray();
            if (!cfg_.sarp)
                fail(now, cmd, "ACT to refreshing bank without SARP");
            else if (target == bank.refreshSubarray)
                fail(now, cmd, "ACT to the refreshing subarray");
        }

        const double mult = inflation(rank, now);
        const Cycles trrd = t_.tRrd.ceilScaled(mult);
        if (!rank.acts.empty() && now < rank.acts.back() + trrd)
            fail(now, cmd, "tRRD violated");
        if (rank.acts.size() >= 4) {
            const Cycles tfaw = t_.tFaw.ceilScaled(mult);
            const Tick fourth_last = rank.acts[rank.acts.size() - 4];
            if (now < fourth_last + tfaw)
                fail(now, cmd, "tFAW violated");
        }

        bank.open = true;
        bank.openRow = cmd.row;
        bank.lastAct = now;
        bank.colLegalAt = now + t_.tRcd;
        rank.acts.push_back(now);
        if (rank.acts.size() > 8)
            rank.acts.pop_front();
    }

    void
    checkColumn(Tick now, const Command &cmd)
    {
        BankModel &bank = ranks_[cmd.rank].banks[cmd.bank];
        if (!bank.open)
            fail(now, cmd, "column command to closed bank");
        else if (bank.openRow != cmd.row)
            fail(now, cmd, "column command to the wrong row");
        if (now < bank.colLegalAt)
            fail(now, cmd, "tRCD/tCCD violated");
        bank.colLegalAt = now + t_.tCcd;

        // Data-bus occupancy.
        const bool is_read = isReadCmd(cmd.type);
        const Tick start = now + (is_read ? t_.tCl : t_.tCwl);
        if (start < busBusyUntil_)
            fail(now, cmd, "data bus burst overlap");
        busBusyUntil_ = start + t_.tBl;

        const bool auto_pre = cmd.type == CommandType::kRdA ||
            cmd.type == CommandType::kWrA;
        if (auto_pre) {
            bank.open = false;
            bank.openRow = kNone;
            Tick pre_start;
            if (is_read) {
                pre_start = std::max(now + t_.tRtp,
                                     bank.lastAct + t_.tRas);
            } else {
                pre_start = std::max(now + t_.tCwl + t_.tBl + t_.tWr,
                                     bank.lastAct + t_.tRas);
            }
            bank.actLegalAt =
                std::max(bank.actLegalAt, pre_start + t_.tRp);
        }
    }

    void
    checkPre(Tick now, const Command &cmd)
    {
        BankModel &bank = ranks_[cmd.rank].banks[cmd.bank];
        if (!bank.open)
            fail(now, cmd, "PRE to closed bank");
        if (bank.lastAct != kTickNever &&
            now < bank.lastAct + t_.tRas) {
            fail(now, cmd, "tRAS violated by PRE");
        }
        bank.open = false;
        bank.openRow = kNone;
        bank.actLegalAt = std::max(bank.actLegalAt, now + t_.tRp);
    }

    void
    refreshBank(Tick now, const Command &cmd, BankModel &bank,
                Cycles t_rfc, int rows, bool hidden)
    {
        if (hidden) {
            // HiRA hidden refresh: beneath an open row, in a different
            // subarray, no earlier than tHiRA after the demand ACT.
            if (!cfg_.hira)
                fail(now, cmd, "hidden refresh without HiRA enabled");
            if (!bank.open) {
                fail(now, cmd, "hidden refresh to a closed bank");
            } else if (bank.openRow / cfg_.org.rowsPerSubarray() ==
                       bank.refRowCounter / cfg_.org.rowsPerSubarray()) {
                fail(now, cmd,
                     "hidden refresh conflicts with the open row's "
                     "subarray");
            }
            if (bank.lastAct == kTickNever ||
                now < bank.lastAct + t_.tHiRA) {
                fail(now, cmd, "hidden refresh violates tHiRA");
            }
        } else {
            if (bank.open)
                fail(now, cmd, "refresh to an open bank");
            if (now < bank.actLegalAt)
                fail(now, cmd, "refresh before precharge completion");
        }
        if (bank.refreshUntil > now)
            fail(now, cmd, "refresh overlaps refresh in the same bank");
        bank.refreshUntil = now + t_rfc;
        bank.refreshSubarray =
            bank.refRowCounter / cfg_.org.rowsPerSubarray();
        bank.refRowCounter =
            (bank.refRowCounter + rows) % cfg_.org.rowsPerBank;
        if (!cfg_.sarp)
            bank.actLegalAt = std::max(bank.actLegalAt, bank.refreshUntil);
        ++bank.refreshes;
        bank.slotsCovered +=
            static_cast<double>(rows) / t_.rowsPerRefresh;
        ++report_.refreshesChecked;
    }

    void
    checkRefresh(Tick now, const Command &cmd)
    {
        RankModel &rank = ranks_[cmd.rank];
        const bool all_bank = cmd.type == CommandType::kRefAb;
        const bool same_bank = cmd.type == CommandType::kRefSb;
        const int pb_in_flight = rank.pbInFlight(now);
        const int sb_in_flight = rank.sbInFlight(now);
        if (rank.refAbUntil > now) {
            fail(now, cmd, "refresh overlaps an all-bank refresh");
        } else if (sb_in_flight > 0) {
            // Same-bank slices never overlap any other refresh of the
            // rank (DDR5 serializes refresh commands per rank).
            fail(now, cmd, "refresh overlaps a same-bank refresh");
        } else if ((all_bank || same_bank) && pb_in_flight > 0) {
            fail(now, cmd, all_bank
                     ? "REFab overlaps a per-bank refresh"
                     : "REFsb overlaps a per-bank refresh");
        } else if (!all_bank && !same_bank &&
                   pb_in_flight >= cfg_.maxOverlappedRefPb) {
            // LPDDR disallows overlap (limit 1); the footnote-5
            // extension raises the limit.
            fail(now, cmd, "REFpb exceeds the rank overlap limit");
        }
        const Cycles t_rfc = cmd.tRfcOverride ? cmd.tRfcOverride
            : all_bank                        ? t_.tRfcAb
            : same_bank                       ? t_.tRfcSb
                                              : t_.tRfcPb;
        const int rows =
            cmd.rowsOverride ? cmd.rowsOverride : t_.rowsPerRefresh;
        if (all_bank) {
            for (auto &bank : rank.banks)
                refreshBank(now, cmd, bank, t_rfc, rows, false);
            rank.refAbUntil = now + t_rfc;
        } else if (same_bank) {
            // One command retires a whole bank-group slice; every bank
            // of the slice must individually satisfy the non-hidden
            // refresh rules (closed, precharge complete, no overlap).
            const int slice = t_.banksPerGroup;
            if (slice <= 0) {
                fail(now, cmd,
                     "REFsb on a spec without same-bank refresh");
                return;
            }
            if (cmd.bank < 0 ||
                (cmd.bank + 1) * slice > cfg_.org.banksPerRank) {
                fail(now, cmd, "REFsb bank-group index out of range");
                return;
            }
            for (int b = cmd.bank * slice; b < (cmd.bank + 1) * slice;
                 ++b) {
                refreshBank(now, cmd, rank.banks[b], t_rfc, rows, false);
            }
            rank.refSbEnds.push_back(now + t_rfc);
        } else {
            refreshBank(now, cmd, rank.banks[cmd.bank], t_rfc, rows,
                        cmd.hidden);
            rank.refPbEnds.push_back(now + t_rfc);
            if (cmd.hidden)
                rank.hiddenPbEnds.push_back(now + t_rfc);
        }
    }

    void
    checkSrEnter(Tick now, const Command &cmd)
    {
        RankModel &rank = ranks_[cmd.rank];
        if (rank.sr) {
            fail(now, cmd, "SRE while already in self-refresh");
            return;
        }
        if (now < rank.srLockoutUntil)
            fail(now, cmd, "SRE inside the tXS exit window");
        if (rank.refAbUntil > now || rank.pbInFlight(now) > 0 ||
            rank.sbInFlight(now) > 0) {
            fail(now, cmd, "SRE while a refresh is in flight");
        }
        for (const BankModel &bank : rank.banks) {
            if (bank.open) {
                fail(now, cmd, "SRE while a bank has an open row");
                break;
            }
        }
        rank.sr = true;
        rank.srSince = now;
    }

    /** Credit the device's internal refresh for a residency window:
     *  one nominal slot's worth of rows per tREFIab, every bank. */
    void
    creditSelfRefresh(RankModel &rank, Tick from, Tick to)
    {
        const double slots = static_cast<double>(to - from) /
            static_cast<double>(t_.tRefiAb.count());
        for (BankModel &bank : rank.banks)
            // dsarp-analyze: allow(fp-accumulation-order): each bank
            // owns its accumulator; nothing is reduced across banks.
            bank.slotsCovered += slots;
    }

    void
    checkSrExit(Tick now, const Command &cmd)
    {
        RankModel &rank = ranks_[cmd.rank];
        if (!rank.sr) {
            fail(now, cmd, "SRX outside self-refresh");
            return;
        }
        if (now < rank.srSince + t_.tCkesr)
            fail(now, cmd, "SRX below the tCKESR minimum residency");
        rank.sr = false;
        rank.srLockoutUntil = now + t_.tXs;
        creditSelfRefresh(rank, rank.srSince, now);
    }

    CheckerReport
    run(const std::vector<TimedCommand> &log, Tick end_tick)
    {
        Tick prev = 0;
        for (const TimedCommand &tc : log) {
            if (tc.tick < prev) {
                fail(tc.tick, tc.cmd, "log not in tick order");
                break;
            }
            prev = tc.tick;
            ++report_.commandsChecked;
            // Self-refresh gating: a rank in self-refresh accepts only
            // SRX, and nothing at all before tXS has elapsed after it.
            if (!isSelfRefreshCmd(tc.cmd.type)) {
                RankModel &rank = ranks_[tc.cmd.rank];
                if (rank.sr) {
                    fail(tc.tick, tc.cmd,
                         "command to a rank in self-refresh");
                } else if (tc.tick < rank.srLockoutUntil) {
                    fail(tc.tick, tc.cmd,
                         "command violates tXS after self-refresh exit");
                }
            }
            switch (tc.cmd.type) {
              case CommandType::kAct:
                checkAct(tc.tick, tc.cmd);
                break;
              case CommandType::kRd:
              case CommandType::kWr:
              case CommandType::kRdA:
              case CommandType::kWrA:
                checkColumn(tc.tick, tc.cmd);
                break;
              case CommandType::kPre:
                checkPre(tc.tick, tc.cmd);
                break;
              case CommandType::kRefAb:
              case CommandType::kRefPb:
              case CommandType::kRefSb:
                checkRefresh(tc.tick, tc.cmd);
                break;
              case CommandType::kSrEnter:
                checkSrEnter(tc.tick, tc.cmd);
                break;
              case CommandType::kSrExit:
                checkSrExit(tc.tick, tc.cmd);
                break;
            }
            if (report_.violations.size() > 50)
                break;  // Enough evidence.
        }

        // A residency still open at the end of the log covers rows up
        // to endTick.
        if (end_tick > 0) {
            for (auto &rank : ranks_) {
                if (rank.sr && end_tick > rank.srSince)
                    creditSelfRefresh(rank, rank.srSince, end_tick);
            }
        }

        // Refresh-completeness: over [0, endTick] every bank must have
        // received its obligations within the 8-command JEDEC window
        // (+1 for a boundary command still draining).
        if (end_tick > 0 && cfg_.refresh != RefreshMode::kNoRefresh) {
            // Slots are counted in rows: one nominal command's worth of
            // rows per tREFIab (FGR timing already scales both together;
            // AR's mixed 1x/4x commands contribute their row fraction).
            const double slots = static_cast<double>(end_tick) /
                static_cast<double>(t_.tRefiAb.count());
            for (RankId r = 0; r < cfg_.org.ranksPerChannel; ++r) {
                for (BankId b = 0; b < cfg_.org.banksPerRank; ++b) {
                    const double behind =
                        slots - ranks_[r].banks[b].slotsCovered;
                    if (behind > 9.0) {
                        char buf[128];
                        std::snprintf(
                            buf, sizeof(buf),
                            "rank=%d bank=%d fell %.1f slots behind on "
                            "refresh", r, b, behind);
                        report_.violations.push_back(buf);
                    }
                }
            }
        }
        return report_;
    }

  private:
    const MemConfig &cfg_;
    const TimingParams &t_;
    std::vector<RankModel> ranks_;
    Tick busBusyUntil_ = 0;
    CheckerReport report_;
};

} // namespace

CheckerReport
verifyCommandLog(const std::vector<TimedCommand> &log, const MemConfig &cfg,
                 const TimingParams &timing, Tick end_tick)
{
    Verifier verifier(cfg, timing);
    return verifier.run(log, end_tick);
}

} // namespace dsarp
