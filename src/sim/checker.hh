/**
 * @file
 * Offline command-stream verifier.
 *
 * Replays one channel's command log against an independent, simplified
 * model of the JEDEC constraints and the paper's refresh rules:
 *
 *   - tRC between ACTs to a bank; tRRD between ACTs in a rank; at most
 *     four ACTs per (SARP-inflated) tFAW window;
 *   - column commands only to an open row, no earlier than tRCD;
 *   - no ACT to a refreshing bank unless SARP is enabled and the target
 *     subarray differs from the refreshing one;
 *   - per-bank/all-bank refreshes never overlap within a rank; all-bank
 *     refresh only on a fully precharged rank;
 *   - same-bank refreshes (DDR5 REFsb) only on specs that declare
 *     bank-group support, to an in-range group whose banks are all
 *     precharged, never overlapping another refresh of the rank;
 *   - HiRA hidden refreshes only beneath an open row, targeting a
 *     different subarray, no earlier than tHiRA after the demand ACT;
 *   - data-bus bursts never overlap;
 *   - every bank's refresh obligation balance stays within the JEDEC
 *     postpone window (the erratum's data-integrity requirement).
 *
 * Tests run every refresh policy through this checker.
 */

#ifndef DSARP_SIM_CHECKER_HH
#define DSARP_SIM_CHECKER_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "controller/controller.hh"
#include "dram/timing.hh"

namespace dsarp {

struct CheckerReport
{
    std::vector<std::string> violations;
    std::uint64_t commandsChecked = 0;
    std::uint64_t refreshesChecked = 0;

    bool ok() const { return violations.empty(); }
};

/**
 * Verify one channel's command log.
 *
 * @param endTick   last simulated tick, used for the final obligation
 *                  balance check (pass 0 to skip it, e.g. for hand-built
 *                  fragments).
 */
CheckerReport verifyCommandLog(const std::vector<TimedCommand> &log,
                               const MemConfig &cfg,
                               const TimingParams &timing, Tick endTick);

} // namespace dsarp

#endif // DSARP_SIM_CHECKER_HH
