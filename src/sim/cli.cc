#include "sim/cli.hh"

#include <cstdlib>

#include "sim/config_keys.hh"

namespace dsarp {

namespace {

/** Flags that are plain sugar for one config key. */
struct KeyFlag
{
    const char *flag;
    const char *key;
};

constexpr KeyFlag kKeyFlags[] = {
    {"--mech", keys::kPolicy},
    {"--spec", keys::kDramSpec},
    {"--map", keys::kAddressMap},
    {"--channels", keys::kChannels},
    {"--density", keys::kDensityGb},
    {"--cores", keys::kNumCores},
    {"--retention", keys::kRetentionMs},
    {"--subarrays", keys::kSubarraysPerBank},
    {"--cycles", keys::kMeasureCycles},
    {"--warmup", keys::kWarmupCycles},
    {"--seed", keys::kSeed},
    {"--workload-seed", keys::kWorkloadSeed},
    {"--intensity", keys::kIntensityPct},
    {"--engine", keys::kSimEngine},
    {"--traffic", keys::kTrafficMode},
    {"--rate", keys::kTrafficRate},
    {"--tenants", keys::kTenantCount},
};

} // namespace

CliResult
parseCommandLine(const std::vector<std::string> &args)
{
    CliResult res;
    auto fail = [&](std::string msg, bool unknown = false) {
        res.action = CliAction::Error;
        res.error = std::move(msg);
        res.unknownOption = unknown;
        return res;
    };

    // Two passes keep the layering honest regardless of flag order:
    // the config file first, then DSARP_SET, then every other flag.
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--config") {
            if (i + 1 >= args.size())
                return fail("--config needs a value");
            res.config.applyFile(args[i + 1]);
        }
    }
    res.config.applyEnv();

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        bool missingValue = false;
        auto value = [&]() -> const std::string & {
            static const std::string empty;
            if (i + 1 >= args.size()) {
                missingValue = true;
                return empty;
            }
            return args[++i];
        };
        if (arg == "--help" || arg == "-h") {
            res.action = CliAction::Help;
            return res;
        } else if (arg == "--list") {
            res.action = CliAction::ListAll;
            return res;
        } else if (arg == "--list-mechs") {
            res.action = CliAction::ListMechs;
            return res;
        } else if (arg == "--list-specs") {
            res.action = CliAction::ListSpecs;
            return res;
        } else if (arg == "--list-maps") {
            res.action = CliAction::ListMaps;
            return res;
        } else if (arg == "--list-keys") {
            res.action = CliAction::ListKeys;
            return res;
        } else if (arg == "--list-benchmarks") {
            res.action = CliAction::ListBenchmarks;
            return res;
        } else if (arg == "--config") {
            value(); // Already applied in the first pass.
        } else if (arg == "--set") {
            const std::string &v = value();
            if (!missingValue)
                res.config.applyOverride(v);
        } else if (arg == "--trace") {
            const std::string &v = value();
            if (!missingValue) {
                res.config.set(keys::kTrafficTrace, v);
                res.config.set(keys::kTrafficMode, "trace");
            }
        } else if (arg == "--jobs") {
            const std::string &v = value();
            if (!missingValue) {
                char *end = nullptr;
                const long jobs = std::strtol(v.c_str(), &end, 10);
                if (end == v.c_str() || *end != '\0' || jobs < 1 ||
                    jobs > 1 << 16) {
                    return fail("--jobs: '" + v +
                                "' is not a positive integer");
                }
                res.jobs = static_cast<int>(jobs);
            }
        } else {
            bool matched = false;
            for (const KeyFlag &kf : kKeyFlags) {
                if (arg == kf.flag) {
                    const std::string &v = value();
                    if (!missingValue)
                        res.config.set(kf.key, v);
                    matched = true;
                    break;
                }
            }
            if (!matched)
                return fail("unknown option '" + arg + "'", true);
        }
        if (missingValue)
            return fail(arg + " needs a value");
    }
    return res;
}

} // namespace dsarp
