/**
 * @file
 * Command-line parsing for dsarp_sim, as a library.
 *
 * The flag sugar (--mech, --channels, ...) and the layering order
 * (defaults < --config file < DSARP_SET env < CLI) live here so they
 * can be unit-tested and fuzzed without spawning the binary. The
 * dsarp_sim tool delegates to parseCommandLine() and only keeps the
 * printing.
 */

#ifndef DSARP_SIM_CLI_HH
#define DSARP_SIM_CLI_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace dsarp {

/** What the parsed command line asks the tool to do. */
enum class CliAction
{
    Run,            ///< Run the experiment described by `config`.
    Help,           ///< --help / -h.
    ListAll,        ///< --list.
    ListMechs,      ///< --list-mechs.
    ListSpecs,      ///< --list-specs.
    ListMaps,       ///< --list-maps.
    ListKeys,       ///< --list-keys.
    ListBenchmarks, ///< --list-benchmarks.
    Error,          ///< Malformed command line; see `error`.
};

struct CliResult
{
    CliAction action = CliAction::Run;
    ExperimentConfig config;
    /** Threads for the alone-IPC baselines (--jobs). */
    int jobs = 1;
    /** Non-empty exactly when action == Error. */
    std::string error;
    /** The unknown option that produced Error, when that was the
     *  cause (the caller prints usage in that case). */
    bool unknownOption = false;
};

/**
 * Parse dsarp_sim arguments (argv[1..argc), i.e. without the program
 * name). Layering is two-pass regardless of flag order: every
 * --config file first, then the DSARP_SET environment variable, then
 * the remaining flags left to right.
 *
 * Flag-syntax problems (missing value, unknown option, bad --jobs)
 * come back as CliAction::Error with a message; bad *values* routed
 * into ExperimentConfig keep that layer's contract and raise fatal
 * named-key errors (DSARP_FATAL), as does an unreadable --config file.
 */
CliResult parseCommandLine(const std::vector<std::string> &args);

} // namespace dsarp

#endif // DSARP_SIM_CLI_HH
