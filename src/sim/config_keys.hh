/**
 * @file
 * The canonical spelling of every ExperimentConfig key, declared once.
 *
 * Key strings are user-facing API: a typo in a setter, a validator or
 * an error message silently forks the vocabulary. All code that names
 * a key (the keyTable() parsers, validate() diagnostics, tests) must
 * use these constants; tools/lint/lint.py rejects a bare string
 * literal that respells one of them anywhere else in the tree.
 */

#ifndef DSARP_SIM_CONFIG_KEYS_HH
#define DSARP_SIM_CONFIG_KEYS_HH

namespace dsarp::keys {

inline constexpr char kPolicy[] = "policy";
inline constexpr char kDramSpec[] = "dram.spec";
inline constexpr char kDensityGb[] = "densityGb";
inline constexpr char kRetentionMs[] = "retentionMs";
inline constexpr char kSubarraysPerBank[] = "subarraysPerBank";
inline constexpr char kChannels[] = "channels";
inline constexpr char kAddressMap[] = "address.map";
inline constexpr char kChannelStagger[] = "refresh.channelStagger";
inline constexpr char kRanksPerChannel[] = "ranksPerChannel";
inline constexpr char kBanksPerRank[] = "banksPerRank";
inline constexpr char kReadQueueSize[] = "readQueueSize";
inline constexpr char kWriteQueueSize[] = "writeQueueSize";
inline constexpr char kWriteHighWatermark[] = "writeHighWatermark";
inline constexpr char kWriteLowWatermark[] = "writeLowWatermark";
inline constexpr char kRefabStaggerDivisor[] = "refabStaggerDivisor";
inline constexpr char kMaxOverlappedRefPb[] = "maxOverlappedRefPb";
inline constexpr char kTFawOverride[] = "tFawOverride";
inline constexpr char kTRrdOverride[] = "tRrdOverride";
inline constexpr char kDarpWriteRefresh[] = "darpWriteRefresh";
inline constexpr char kHiraCoverage[] = "refresh.hiraCoverage";
inline constexpr char kHiraDelay[] = "refresh.hiraDelay";
inline constexpr char kSameBankGroupSize[] = "refresh.samebank.groupSize";
inline constexpr char kSameBankPullIn[] = "refresh.samebank.pullIn";
inline constexpr char kSrIdleEntry[] = "refresh.selfRefresh.idleEntry";
inline constexpr char kFgrRate[] = "refresh.fgrRate";
inline constexpr char kSelfRefreshIdle[] = "energy.selfRefreshIdle";
inline constexpr char kNumCores[] = "numCores";
inline constexpr char kSeed[] = "seed";
inline constexpr char kEnableChecker[] = "enableChecker";
inline constexpr char kWarmupCycles[] = "warmupCycles";
inline constexpr char kMeasureCycles[] = "measureCycles";
inline constexpr char kWorkloadSeed[] = "workloadSeed";
inline constexpr char kIntensityPct[] = "intensityPct";
inline constexpr char kSimEngine[] = "sim.engine";
inline constexpr char kTrafficMode[] = "traffic.mode";
inline constexpr char kTrafficRate[] = "traffic.rate";
inline constexpr char kTrafficReadPct[] = "traffic.readPct";
inline constexpr char kTrafficHotRowPct[] = "traffic.hotRowPct";
inline constexpr char kTrafficHotRows[] = "traffic.hotRows";
inline constexpr char kTrafficBurstFactor[] = "traffic.burstFactor";
inline constexpr char kTrafficBurstLen[] = "traffic.burstLen";
inline constexpr char kTrafficDiurnalPeriod[] = "traffic.diurnalPeriod";
inline constexpr char kTrafficDiurnalAmp[] = "traffic.diurnalAmp";
inline constexpr char kTrafficTrace[] = "traffic.trace";
inline constexpr char kTenantCount[] = "tenant.count";
inline constexpr char kTenantPriorities[] = "tenant.priorities";

/** Every key, for exhaustiveness checks (tests, lint self-test). */
inline constexpr const char *const kAllKeys[] = {
    kPolicy,          kDramSpec,           kDensityGb,
    kRetentionMs,     kSubarraysPerBank,   kChannels,
    kAddressMap,      kChannelStagger,
    kRanksPerChannel, kBanksPerRank,       kReadQueueSize,
    kWriteQueueSize,  kWriteHighWatermark, kWriteLowWatermark,
    kRefabStaggerDivisor, kMaxOverlappedRefPb, kTFawOverride,
    kTRrdOverride,    kDarpWriteRefresh,   kHiraCoverage,
    kHiraDelay,       kSameBankGroupSize,  kSameBankPullIn,
    kSrIdleEntry,     kFgrRate,            kSelfRefreshIdle,
    kNumCores,        kSeed,               kEnableChecker,
    kWarmupCycles,    kMeasureCycles,      kWorkloadSeed,
    kIntensityPct,    kSimEngine,          kTrafficMode,
    kTrafficRate,     kTrafficReadPct,     kTrafficHotRowPct,
    kTrafficHotRows,  kTrafficBurstFactor, kTrafficBurstLen,
    kTrafficDiurnalPeriod, kTrafficDiurnalAmp, kTrafficTrace,
    kTenantCount,     kTenantPriorities,
};

} // namespace dsarp::keys

#endif // DSARP_SIM_CONFIG_KEYS_HH
