#include "sim/energy.hh"

namespace dsarp {

EnergyBreakdown
channelEnergy(const ChannelStats &stats, const TimingParams &timing,
              const EnergyParams &p)
{
    EnergyBreakdown e;
    // mA * V * ns = pJ; divide by 1000 for nJ.
    const double tck = timing.tCkNs.ns();
    const double to_nj = 1e-3;

    // Cycle counts as doubles for the current-time products.
    const double t_rc = static_cast<double>(timing.tRc.count());
    const double t_ras = static_cast<double>(timing.tRas.count());
    const double t_bl = static_cast<double>(timing.tBl.count());

    // Activate/precharge energy: IDD0 covers a full tRC cycle including
    // the background component, which is subtracted to avoid double
    // counting (Micron TN-41-01 formulation).
    const double act_one = p.vdd *
        (p.idd0 * t_rc - (p.idd3n * t_ras + p.idd2n * (t_rc - t_ras))) *
        tck * to_nj;
    e.activateNj = act_one * static_cast<double>(stats.acts);

    const double rd_one =
        p.vdd * (p.idd4r - p.idd3n) * t_bl * tck * to_nj;
    const double wr_one =
        p.vdd * (p.idd4w - p.idd3n) * t_bl * tck * to_nj;
    e.readNj = rd_one * static_cast<double>(stats.reads);
    e.writeNj = wr_one * static_cast<double>(stats.writes);

    // Refresh: all-bank commands draw IDD5B; a per-bank refresh draws a
    // spec-geometry fraction of that above background (Section 4.3.3) --
    // the divisor comes from the spec's per-bank tRFC table, not from
    // whatever banksPerRank the config happens to use. Cycles that
    // elapsed while their rank sat in the legacy IDD6 state are
    // excluded: that state's current already prices the refresh work,
    // so billing the external burst too would charge the same ticks
    // twice. (Masked ticks are counted in flight, issue cycles
    // wholesale, so a burst straddling a stats reset can leave more
    // masked than billed -- clamp at zero.)
    auto billed = [](std::uint64_t cycles, std::uint64_t masked) {
        return static_cast<double>(cycles > masked ? cycles - masked : 0);
    };
    const double ref_cur = p.vdd * (p.idd5b - p.idd3n) * tck * to_nj;
    e.refreshNj =
        ref_cur * billed(stats.refAbCycles, stats.refAbCyclesSrMasked) +
        ref_cur / p.refPbCurrentDivisor *
            billed(stats.refPbCycles, stats.refPbCyclesSrMasked) +
        // Same-bank slices: the divisor is derived per resolved
        // geometry/density (timing), not static spec data.
        ref_cur / timing.refSbEnergyDivisor *
            billed(stats.refSbCycles, stats.refSbCyclesSrMasked);

    // Background: active standby while any bank is open or refreshing;
    // IDD6 for real self-refresh residency (srTicks, the SRE/SRX
    // protocol) and for the legacy demand-idle energy state
    // (rankSelfRefTicks; 0 unless energy.selfRefreshIdle is set);
    // precharge standby otherwise.
    const double sref_ticks = static_cast<double>(
        stats.rankSelfRefTicks + stats.srTicks);
    const double idle_ticks = static_cast<double>(
        stats.rankTotalTicks - stats.rankActiveTicks) - sref_ticks;
    e.backgroundNj = p.vdd *
        (p.idd3n * static_cast<double>(stats.rankActiveTicks) +
         p.idd2n * idle_ticks + p.idd6 * sref_ticks) *
        tck * to_nj;
    return e;
}

double
energyPerAccessNj(const ChannelStats &stats, const TimingParams &timing,
                  const EnergyParams &params)
{
    const double accesses =
        static_cast<double>(stats.reads + stats.writes);
    if (accesses <= 0.0)
        return 0.0;
    return channelEnergy(stats, timing, params).totalNj() / accesses;
}

} // namespace dsarp
