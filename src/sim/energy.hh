/**
 * @file
 * DRAM energy model following the Micron power-calculator methodology
 * (paper Section 5): per-operation energies derived from datasheet IDD
 * currents, plus state-dependent background power. Reported, like the
 * paper's Figure 14, as energy per serviced memory access.
 *
 * A per-bank refresh draws roughly 1/banks of an all-bank refresh's
 * current (Section 4.3.3), which the refresh term accounts for.
 */

#ifndef DSARP_SIM_ENERGY_HH
#define DSARP_SIM_ENERGY_HH

#include "dram/channel.hh"
#include "dram/timing.hh"

namespace dsarp {

/** Datasheet currents in mA and the supply voltage. */
struct EnergyParams
{
    double vdd = 1.5;     ///< Volts.
    double idd0 = 95.0;   ///< One-bank ACT-PRE current.
    double idd2n = 42.0;  ///< Precharge standby.
    double idd3n = 45.0;  ///< Active standby.
    double idd4r = 180.0; ///< Burst read.
    double idd4w = 185.0; ///< Burst write.
    double idd5b = 215.0; ///< Burst (all-bank) refresh.

    /** Micron 8 Gb TwinDie DDR3-1333 approximation [29]. */
    static EnergyParams micron8GbDdr3() { return EnergyParams{}; }
};

/** Energy in nanojoules, broken down by source. */
struct EnergyBreakdown
{
    double activateNj = 0.0;
    double readNj = 0.0;
    double writeNj = 0.0;
    double refreshNj = 0.0;
    double backgroundNj = 0.0;

    double
    totalNj() const
    {
        return activateNj + readNj + writeNj + refreshNj + backgroundNj;
    }
};

/** Energy consumed by one channel over its counted window. */
EnergyBreakdown channelEnergy(const ChannelStats &stats,
                              const TimingParams &timing,
                              const EnergyParams &params, int banksPerRank);

/** Energy per serviced access (reads + writes) in nJ; 0 if no accesses. */
double energyPerAccessNj(const ChannelStats &stats,
                         const TimingParams &timing,
                         const EnergyParams &params, int banksPerRank);

} // namespace dsarp

#endif // DSARP_SIM_ENERGY_HH
