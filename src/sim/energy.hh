/**
 * @file
 * DRAM energy model following the Micron power-calculator methodology
 * (paper Section 5): per-operation energies derived from datasheet IDD
 * currents, plus state-dependent background power. Reported, like the
 * paper's Figure 14, as energy per serviced memory access.
 *
 * The IDD/vdd sets live on the DramSpec (dram/spec.hh), so each
 * registered backend carries its own parameters; the runner resolves
 * them from the selected spec. A per-bank refresh draws a fraction of
 * an all-bank refresh's current given by the spec's refresh geometry
 * (EnergyParams::refPbCurrentDivisor, Section 4.3.3) -- native-REFpb
 * parts derive it from their per-bank tRFC table -- and a same-bank
 * slice (DDR5 REFsb) likewise via refSbCurrentDivisor.
 *
 * Self-refresh: real SRE/SRX residency (ChannelStats::srTicks, the
 * refresh.selfRefresh.idleEntry protocol) is billed at the spec's
 * IDD6, as is the legacy demand-idle accounting state
 * (rankSelfRefTicks, key energy.selfRefreshIdle; disabled by
 * default). Refresh cycles that elapsed inside the legacy IDD6 window
 * are excluded from the burst billing -- IDD6 already prices refresh,
 * so the same ticks are never charged twice.
 */

#ifndef DSARP_SIM_ENERGY_HH
#define DSARP_SIM_ENERGY_HH

#include "dram/channel.hh"
#include "dram/spec.hh"
#include "dram/timing.hh"

namespace dsarp {

/** Energy in nanojoules, broken down by source. */
struct EnergyBreakdown
{
    double activateNj = 0.0;
    double readNj = 0.0;
    double writeNj = 0.0;
    double refreshNj = 0.0;
    double backgroundNj = 0.0;

    double
    totalNj() const
    {
        return activateNj + readNj + writeNj + refreshNj + backgroundNj;
    }
};

/** Energy consumed by one channel over its counted window. */
EnergyBreakdown channelEnergy(const ChannelStats &stats,
                              const TimingParams &timing,
                              const EnergyParams &params);

/** Energy per serviced access (reads + writes) in nJ; 0 if no accesses. */
double energyPerAccessNj(const ChannelStats &stats,
                         const TimingParams &timing,
                         const EnergyParams &params);

} // namespace dsarp

#endif // DSARP_SIM_ENERGY_HH
