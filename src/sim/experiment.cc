#include "sim/experiment.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/log.hh"
#include "sim/config_keys.hh"
#include "common/strings.hh"
#include "dram/spec.hh"
#include "refresh/registry.hh"

namespace dsarp {

namespace {

/** One settable field: its canonical key and a string-form setter that
 *  returns "" or a value-error description. */
struct KeyDesc
{
    const char *key;
    std::function<std::string(ExperimentConfig &, const std::string &)> set;
};

std::string
parseInt(const std::string &value, int &out)
{
    try {
        std::size_t pos = 0;
        const int parsed = std::stoi(value, &pos);
        if (pos != value.size())
            return "expected an integer, got '" + value + "'";
        out = parsed;
        return "";
    } catch (const std::exception &) {
        return "expected an integer, got '" + value + "'";
    }
}

std::string
parseU64(const std::string &value, std::uint64_t &out)
{
    try {
        std::size_t pos = 0;
        const unsigned long long parsed = std::stoull(value, &pos);
        if (pos != value.size() || value[0] == '-')
            return "expected a non-negative integer, got '" + value + "'";
        out = parsed;
        return "";
    } catch (const std::exception &) {
        return "expected a non-negative integer, got '" + value + "'";
    }
}

std::string
parseDouble(const std::string &value, double &out)
{
    try {
        std::size_t pos = 0;
        const double parsed = std::stod(value, &pos);
        if (pos != value.size())
            return "expected a number, got '" + value + "'";
        out = parsed;
        return "";
    } catch (const std::exception &) {
        return "expected a number, got '" + value + "'";
    }
}

std::string
parseBool(const std::string &value, bool &out)
{
    const std::string v = lowered(value);
    if (v == "1" || v == "true" || v == "yes" || v == "on") {
        out = true;
        return "";
    }
    if (v == "0" || v == "false" || v == "no" || v == "off") {
        out = false;
        return "";
    }
    return "expected a boolean (true/false/1/0), got '" + value + "'";
}

KeyDesc
intKey(const char *key, int ExperimentConfig::*field)
{
    return {key, [field](ExperimentConfig &cfg, const std::string &v) {
                return parseInt(v, cfg.*field);
            }};
}

KeyDesc
u64Key(const char *key, std::uint64_t ExperimentConfig::*field)
{
    return {key, [field](ExperimentConfig &cfg, const std::string &v) {
                return parseU64(v, cfg.*field);
            }};
}

KeyDesc
doubleKey(const char *key, double ExperimentConfig::*field)
{
    return {key, [field](ExperimentConfig &cfg, const std::string &v) {
                return parseDouble(v, cfg.*field);
            }};
}

KeyDesc
boolKey(const char *key, bool ExperimentConfig::*field)
{
    return {key, [field](ExperimentConfig &cfg, const std::string &v) {
                return parseBool(v, cfg.*field);
            }};
}

KeyDesc
trafficIntKey(const char *key, int TrafficConfig::*field)
{
    return {key, [field](ExperimentConfig &cfg, const std::string &v) {
                return parseInt(v, cfg.traffic.*field);
            }};
}

KeyDesc
trafficDoubleKey(const char *key, double TrafficConfig::*field)
{
    return {key, [field](ExperimentConfig &cfg, const std::string &v) {
                return parseDouble(v, cfg.traffic.*field);
            }};
}

const std::vector<KeyDesc> &
keyTable()
{
    static const std::vector<KeyDesc> table = {
        {keys::kPolicy,
         [](ExperimentConfig &cfg, const std::string &v) -> std::string {
             if (v.empty())
                 return "expected a refresh mechanism name";
             cfg.policy = v;
             return "";
         }},
        {keys::kDramSpec,
         [](ExperimentConfig &cfg, const std::string &v) -> std::string {
             if (v.empty())
                 return "expected a DRAM spec name";
             cfg.dramSpec = v;
             return "";
         }},
        {keys::kAddressMap,
         [](ExperimentConfig &cfg, const std::string &v) -> std::string {
             if (v.empty())
                 return "expected an address map name";
             cfg.addressMap = v;
             return "";
         }},
        intKey(keys::kDensityGb, &ExperimentConfig::densityGb),
        intKey(keys::kRetentionMs, &ExperimentConfig::retentionMs),
        intKey(keys::kSubarraysPerBank, &ExperimentConfig::subarraysPerBank),
        intKey(keys::kChannels, &ExperimentConfig::channels),
        intKey(keys::kRanksPerChannel, &ExperimentConfig::ranksPerChannel),
        intKey(keys::kBanksPerRank, &ExperimentConfig::banksPerRank),
        intKey(keys::kReadQueueSize, &ExperimentConfig::readQueueSize),
        intKey(keys::kWriteQueueSize, &ExperimentConfig::writeQueueSize),
        intKey(keys::kWriteHighWatermark, &ExperimentConfig::writeHighWatermark),
        intKey(keys::kWriteLowWatermark, &ExperimentConfig::writeLowWatermark),
        intKey(keys::kRefabStaggerDivisor,
               &ExperimentConfig::refabStaggerDivisor),
        intKey(keys::kMaxOverlappedRefPb, &ExperimentConfig::maxOverlappedRefPb),
        intKey(keys::kTFawOverride, &ExperimentConfig::tFawOverride),
        intKey(keys::kTRrdOverride, &ExperimentConfig::tRrdOverride),
        boolKey(keys::kDarpWriteRefresh, &ExperimentConfig::darpWriteRefresh),
        doubleKey(keys::kHiraCoverage, &ExperimentConfig::hiraCoverage),
        intKey(keys::kHiraDelay, &ExperimentConfig::hiraDelay),
        intKey(keys::kSameBankGroupSize,
               &ExperimentConfig::sameBankGroupSize),
        boolKey(keys::kSameBankPullIn,
                &ExperimentConfig::sameBankPullIn),
        intKey(keys::kSrIdleEntry,
               &ExperimentConfig::srIdleEntry),
        intKey(keys::kFgrRate, &ExperimentConfig::fgrRate),
        intKey(keys::kChannelStagger, &ExperimentConfig::channelStagger),
        intKey(keys::kSelfRefreshIdle,
               &ExperimentConfig::selfRefreshIdle),
        intKey(keys::kNumCores, &ExperimentConfig::numCores),
        u64Key(keys::kSeed, &ExperimentConfig::seed),
        boolKey(keys::kEnableChecker, &ExperimentConfig::enableChecker),
        u64Key(keys::kWarmupCycles, &ExperimentConfig::warmupCycles),
        u64Key(keys::kMeasureCycles, &ExperimentConfig::measureCycles),
        u64Key(keys::kWorkloadSeed, &ExperimentConfig::workloadSeed),
        intKey(keys::kIntensityPct, &ExperimentConfig::intensityPct),
        {keys::kSimEngine,
         [](ExperimentConfig &cfg, const std::string &v) -> std::string {
             if (v.empty())
                 return "expected a simulation engine name";
             cfg.engine = v;
             return "";
         }},
        {keys::kTrafficMode,
         [](ExperimentConfig &cfg, const std::string &v) -> std::string {
             if (v.empty())
                 return "expected an arrival-process name "
                        "(off/poisson/bursty/diurnal/trace)";
             cfg.traffic.mode = lowered(v);
             return "";
         }},
        trafficDoubleKey(keys::kTrafficRate,
                         &TrafficConfig::ratePerKilocycle),
        trafficIntKey(keys::kTrafficReadPct, &TrafficConfig::readPct),
        trafficDoubleKey(keys::kTrafficHotRowPct,
                         &TrafficConfig::hotRowPct),
        trafficIntKey(keys::kTrafficHotRows, &TrafficConfig::hotRows),
        trafficDoubleKey(keys::kTrafficBurstFactor,
                         &TrafficConfig::burstFactor),
        trafficIntKey(keys::kTrafficBurstLen,
                      &TrafficConfig::burstLenCycles),
        trafficIntKey(keys::kTrafficDiurnalPeriod,
                      &TrafficConfig::diurnalPeriod),
        trafficDoubleKey(keys::kTrafficDiurnalAmp,
                         &TrafficConfig::diurnalAmp),
        {keys::kTrafficTrace,
         [](ExperimentConfig &cfg, const std::string &v) -> std::string {
             if (v.empty())
                 return "expected a DRAMSim-style trace file path";
             cfg.traffic.tracePath = v;
             return "";
         }},
        trafficIntKey(keys::kTenantCount, &TrafficConfig::tenants),
        {keys::kTenantPriorities,
         [](ExperimentConfig &cfg, const std::string &v) -> std::string {
             cfg.traffic.tenantPriorities = v;
             return "";
         }},
    };
    return table;
}

} // namespace

std::string
ExperimentConfig::trySet(const std::string &key, const std::string &value)
{
    const std::string wanted = lowered(trimmed(key));
    for (const KeyDesc &desc : keyTable()) {
        if (lowered(desc.key) != wanted)
            continue;
        std::string err = desc.set(*this, trimmed(value));
        if (!err.empty())
            err = "config key '" + std::string(desc.key) + "': " + err;
        return err;
    }
    std::ostringstream msg;
    msg << "unknown config key '" << key << "'; known:";
    for (const std::string &known : knownKeys())
        msg << ' ' << known;
    return msg.str();
}

void
ExperimentConfig::set(const std::string &key, const std::string &value)
{
    const std::string err = trySet(key, value);
    if (!err.empty())
        DSARP_FATALF("%s", err.c_str());
}

void
ExperimentConfig::applyOverride(const std::string &assignment)
{
    const auto eq = assignment.find('=');
    if (eq == std::string::npos) {
        DSARP_FATALF("override '%s' is not of the form key=value",
                     assignment.c_str());
    }
    set(assignment.substr(0, eq), assignment.substr(eq + 1));
}

void
ExperimentConfig::applyFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DSARP_FATALF("cannot open config file '%s'", path.c_str());
    applyStream(in, path);
}

void
ExperimentConfig::applyStream(std::istream &in, const std::string &path)
{
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trimmed(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            DSARP_FATALF("%s:%d: '%s' is not of the form key=value",
                         path.c_str(), lineno, line.c_str());
        }
        const std::string err =
            trySet(line.substr(0, eq), line.substr(eq + 1));
        if (!err.empty()) {
            DSARP_FATALF("%s:%d: %s", path.c_str(), lineno, err.c_str());
        }
    }
}

void
ExperimentConfig::applyEnv()
{
    const char *env = std::getenv("DSARP_SET");
    if (!env || !*env)
        return;
    applyEnvString(env);
}

void
ExperimentConfig::applyEnvString(const std::string &overrides)
{
    std::istringstream stream(overrides);
    std::string item;
    while (std::getline(stream, item, ',')) {
        item = trimmed(item);
        if (!item.empty())
            applyOverride(item);
    }
}

std::vector<std::string>
ExperimentConfig::knownKeys()
{
    std::vector<std::string> out;
    out.reserve(keyTable().size());
    for (const KeyDesc &desc : keyTable())
        out.push_back(desc.key);
    std::sort(out.begin(), out.end());
    return out;
}

std::string
ExperimentConfig::validate() const
{
    std::ostringstream bad;
    const char *sep = "";
    auto fail = [&](const std::string &msg) {
        bad << sep << msg;
        sep = "; ";
    };

    const auto &registry = RefreshPolicyRegistry::instance();
    if (!registry.has(policy))
        fail(registry.unknownPolicyMessage(policy));
    const auto &specs = DramSpecRegistry::instance();
    if (!specs.has(dramSpec))
        fail(specs.unknownSpecMessage(dramSpec));
    if (densityGb != 8 && densityGb != 16 && densityGb != 32) {
        fail(std::string("config key '") + keys::kDensityGb +
             "' must be 8, 16 or 32 (got " +
             std::to_string(densityGb) + ")");
    }
    if (intensityPct != 0 && intensityPct != 25 && intensityPct != 50 &&
        intensityPct != 75 && intensityPct != 100) {
        fail(std::string("config key '") + keys::kIntensityPct +
             "' must be one of 0/25/50/75/100 (got " +
             std::to_string(intensityPct) + ")");
    }
    if (numCores < 1) {
        fail(std::string("config key '") + keys::kNumCores +
             "' must be >= 1 (got " + std::to_string(numCores) + ")");
    }
    if (engine != "cycle" && engine != "event") {
        fail(std::string("config key '") + keys::kSimEngine +
             "' must be \"cycle\" or \"event\" (got \"" + engine + "\")");
    }
    // -1 means "keep the MemConfig default"; anything else must be an
    // explicit (non-negative) value so a bad override never silently
    // falls back to the default.
    auto explicitOrDefault = [&](const char *key, int v) {
        if (v < -1) {
            fail(std::string("config key '") + key + "' must be >= 0, "
                 "or -1 for the default (got " + std::to_string(v) + ")");
        }
    };
    explicitOrDefault(keys::kWriteHighWatermark, writeHighWatermark);
    explicitOrDefault(keys::kWriteLowWatermark, writeLowWatermark);
    explicitOrDefault(keys::kRefabStaggerDivisor, refabStaggerDivisor);
    explicitOrDefault(keys::kMaxOverlappedRefPb, maxOverlappedRefPb);
    const std::string trafficErrors = traffic.validate();
    if (!trafficErrors.empty())
        fail(trafficErrors);
    // refresh.hiraCoverage / refresh.hiraDelay are checked by the
    // delegated MemConfig::validate() below, like the other mem keys.

    // Delegate the memory-system cross-checks; their messages already
    // name keys. rowsPerBank must be applied first, as finalize()
    // would, and the policy's config bundle resolved so checks that
    // depend on the selected mechanism (e.g. REFsb needing a spec
    // with bank-group support) fire here, not at System construction.
    if (densityGb == 8 || densityGb == 16 || densityGb == 32) {
        SystemConfig sys = toSystemConfig();
        sys.mem.org.rowsPerBank = rowsPerBankFor(sys.mem.density);
        if (registry.has(sys.mem.policy))
            registry.resolve(sys.mem);
        const std::string memErrors = sys.mem.validate();
        if (!memErrors.empty())
            fail(memErrors);
    }
    return bad.str();
}

std::string
ExperimentConfig::mechanismName() const
{
    return RefreshPolicyRegistry::instance().at(policy).name;
}

std::string
ExperimentConfig::dramSpecName() const
{
    return DramSpecRegistry::instance().at(dramSpec).name;
}

SystemConfig
ExperimentConfig::toSystemConfig() const
{
    SystemConfig sys;
    sys.mem.policy = policy;
    sys.mem.dramSpec = dramSpec;
    sys.mem.addressMap = addressMap;
    sys.mem.channelStaggerCycles = channelStagger;
    sys.mem.density = densityGb == 8 ? Density::k8Gb
        : densityGb == 16            ? Density::k16Gb
                                     : Density::k32Gb;
    sys.mem.retentionMs = retentionMs;
    sys.mem.org.subarraysPerBank = subarraysPerBank;
    sys.mem.org.channels = channels;
    sys.mem.org.ranksPerChannel = ranksPerChannel;
    sys.mem.org.banksPerRank = banksPerRank;
    sys.mem.readQueueSize = readQueueSize;
    sys.mem.writeQueueSize = writeQueueSize;
    if (writeHighWatermark >= 0)
        sys.mem.writeHighWatermark = writeHighWatermark;
    if (writeLowWatermark >= 0)
        sys.mem.writeLowWatermark = writeLowWatermark;
    if (refabStaggerDivisor >= 0)
        sys.mem.refabStaggerDivisor = refabStaggerDivisor;
    if (maxOverlappedRefPb >= 0)
        sys.mem.maxOverlappedRefPb = maxOverlappedRefPb;
    sys.mem.tFawOverride = tFawOverride;
    sys.mem.tRrdOverride = tRrdOverride;
    sys.mem.darpWriteRefresh = darpWriteRefresh;
    sys.mem.hiraCoverage = hiraCoverage;
    sys.mem.hiraDelayCycles = hiraDelay;
    sys.mem.sameBankGroupSize = sameBankGroupSize;
    sys.mem.sameBankPullIn = sameBankPullIn;
    sys.mem.srIdleEntryCycles = srIdleEntry;
    sys.mem.fgrRate = fgrRate;
    sys.mem.selfRefreshIdleCycles = selfRefreshIdle;
    sys.traffic = traffic;
    sys.numCores = numCores;
    sys.seed = seed;
    sys.enableChecker = enableChecker;
    sys.engine = engine;
    return sys;
}

} // namespace dsarp
