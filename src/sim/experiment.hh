/**
 * @file
 * ExperimentConfig: the single, layered configuration surface for one
 * simulated experiment.
 *
 * It subsumes what used to be spread over three structs (SystemConfig,
 * the runner's RunConfig, and the CLI tool's private Options): the
 * refresh mechanism by registry name, DRAM geometry and density, core
 * count, queue/watermark knobs, run lengths, and the workload mix.
 *
 * Every field is settable as a "key=value" string override, so the
 * same config can be assembled from (in order of increasing
 * precedence) defaults, a config file, the DSARP_SET environment
 * variable, and CLI arguments:
 *
 *   ExperimentConfig cfg;
 *   cfg.applyFile("experiment.cfg");   // lines of key=value
 *   cfg.applyEnv();                    // DSARP_SET="key=value,key=value"
 *   cfg.set("policy", "DSARP");        // programmatic / CLI
 *
 * Errors always name the offending key: unknown keys list the known
 * ones, bad values say what was expected, and validate() reports every
 * inconsistent field (not just the first).
 */

#ifndef DSARP_SIM_EXPERIMENT_HH
#define DSARP_SIM_EXPERIMENT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.hh"

namespace dsarp {

struct ExperimentConfig
{
    // --- Refresh mechanism (registry name, case-insensitive) ---------
    std::string policy = "DSARP";

    // --- Memory system ----------------------------------------------
    /** DRAM device spec by registry name (key "dram.spec"; see
     *  dram/spec.hh). Unknown names fail validation with a named-key
     *  error listing the registered specs. */
    std::string dramSpec = "DDR3-1333";

    /** Physical-address interleave by registry name (key "address.map";
     *  see dram/address.hh). Unknown names fail validation with a
     *  named-key error listing the registered maps. */
    std::string addressMap = "burst-ch";

    int densityGb = 32;          ///< 8 | 16 | 32.
    int retentionMs = 32;        ///< 32 | 64.
    int subarraysPerBank = 8;
    int channels = 2;
    int ranksPerChannel = 2;
    int banksPerRank = 8;
    int readQueueSize = 64;
    int writeQueueSize = 64;
    int writeHighWatermark = -1; ///< -1 = MemConfig default (54).
    int writeLowWatermark = -1;  ///< -1 = MemConfig default (32).
    int refabStaggerDivisor = -1;///< -1 = MemConfig default (8).
    int maxOverlappedRefPb = -1; ///< -1 = MemConfig default (1).
    int tFawOverride = 0;        ///< Cycles; 0 = datasheet value.
    int tRrdOverride = 0;        ///< Cycles; 0 = datasheet value.
    bool darpWriteRefresh = true;

    /** HiRA hidden-refresh coverage fraction (key
     *  "refresh.hiraCoverage"); -1 = the spec's characterized ~32%. */
    double hiraCoverage = -1.0;

    /** Demand-ACT to hidden-refresh delay in cycles (key
     *  "refresh.hiraDelay"); 0 = the spec's tHiRA. */
    int hiraDelay = 0;

    /** Same-bank refresh slice size in banks (key
     *  "refresh.samebank.groupSize"); 0 = the spec's bank-group
     *  geometry. Must divide banksPerRank. */
    int sameBankGroupSize = 0;

    /** Allow opportunistic pull-in of same-bank slices on idle
     *  channels (key "refresh.samebank.pullIn"). */
    bool sameBankPullIn = true;

    /** Command-level self-refresh idle-entry threshold in demand-idle
     *  cycles (key "refresh.selfRefresh.idleEntry"); 0 disables the
     *  SRE/SRX protocol. */
    int srIdleEntry = 0;

    /** Explicit FGR rate for any mechanism (key "refresh.fgrRate");
     *  0 keeps the profile default, else 1/2/4. */
    int fgrRate = 0;

    /** Cross-channel refresh-schedule phase in cycles (key
     *  "refresh.channelStagger"): 0 = off (bit-identical default),
     *  -1 = the even spread tREFIab / channels, > 0 = explicit. */
    int channelStagger = 0;

    /** Legacy accounting-only self-refresh energy state (key
     *  "energy.selfRefreshIdle"); 0 disables. Deprecated in favour of
     *  refresh.selfRefresh.idleEntry. */
    int selfRefreshIdle = 0;

    // --- Open-loop traffic front end ---------------------------------
    /**
     * The traffic.* / tenant.* key family (see TrafficConfig):
     * traffic.mode selects the arrival process ("off" keeps the
     * closed-loop cores), traffic.rate/readPct/hotRowPct/hotRows shape
     * it, tenant.count/tenant.priorities split the address space into
     * prioritized partitions, and traffic.trace replays an external
     * DRAMSim-style trace.
     */
    TrafficConfig traffic;

    // --- System ------------------------------------------------------
    int numCores = 8;
    std::uint64_t seed = 1;
    bool enableChecker = false;

    /** Simulation engine (key "sim.engine"): "cycle" steps every tick,
     *  "event" skips to the next component deadline. Commands, stats,
     *  and RNG streams are bit-identical between the two. */
    std::string engine = "cycle";

    // --- Run lengths (0 = DSARP_BENCH_* env knob, then default) ------
    std::uint64_t warmupCycles = 0;
    std::uint64_t measureCycles = 0;

    // --- Workload ----------------------------------------------------
    std::uint64_t workloadSeed = 1;
    int intensityPct = 100;      ///< 0 | 25 | 50 | 75 | 100.

    /**
     * Set one field from its string form. Returns "" on success,
     * otherwise an error naming the key (unknown key, or bad value and
     * what was expected).
     */
    std::string trySet(const std::string &key, const std::string &value);

    /** trySet(), but a fatal named-key error on failure. */
    void set(const std::string &key, const std::string &value);

    /** Apply one "key=value" override (fatal named-key error). */
    void applyOverride(const std::string &assignment);

    /**
     * Apply a config file: one "key=value" per line, '#' comments and
     * blank lines ignored. Errors are fatal and name file:line and key.
     */
    void applyFile(const std::string &path);

    /**
     * Apply config-file-format lines from @p in; @p name labels error
     * messages the way a path would. The file layer of applyFile()
     * with the I/O separated, so tests and the fuzz harnesses can
     * drive the parser from memory.
     */
    void applyStream(std::istream &in, const std::string &name);

    /**
     * Apply overrides from the DSARP_SET environment variable, a
     * comma-separated list of "key=value" pairs. No-op when unset.
     */
    void applyEnv();

    /**
     * Apply a DSARP_SET-format list ("key=value,key=value"). The env
     * layer of applyEnv() with the getenv separated, for tests and
     * the fuzz harnesses.
     */
    void applyEnvString(const std::string &overrides);

    /** Every override key, sorted (for help text and error messages). */
    static std::vector<std::string> knownKeys();

    /**
     * Cross-field validation. Returns "" when consistent, otherwise a
     * ';'-separated list of errors, each naming the bad key. Includes
     * the refresh-policy name check against the registry and the full
     * MemConfig/SystemConfig validation.
     */
    std::string validate() const;

    /** Canonical mechanism name from the registry ("dsarp" → "DSARP");
     *  a fatal named-key error when the policy is unknown. */
    std::string mechanismName() const;

    /** Canonical DRAM spec name from the registry ("ddr4" →
     *  "DDR4-2400"); a fatal named-key error when unknown. */
    std::string dramSpecName() const;

    /** Project onto the SystemConfig consumed by System (not yet
     *  finalized; System resolves + validates on construction). */
    SystemConfig toSystemConfig() const;
};

} // namespace dsarp

#endif // DSARP_SIM_EXPERIMENT_HH
