#include "sim/metrics.hh"

#include "common/log.hh"

namespace dsarp {

namespace {

void
checkShapes(const std::vector<double> &shared,
            const std::vector<double> &alone)
{
    DSARP_ASSERT(shared.size() == alone.size() && !shared.empty(),
                 "metric vectors must match and be non-empty");
    for (std::size_t i = 0; i < shared.size(); ++i)
        DSARP_ASSERT(shared[i] > 0.0 && alone[i] > 0.0,
                     "IPCs must be positive");
}

} // namespace

double
weightedSpeedup(const std::vector<double> &shared_ipc,
                const std::vector<double> &alone_ipc)
{
    checkShapes(shared_ipc, alone_ipc);
    double ws = 0.0;
    for (std::size_t i = 0; i < shared_ipc.size(); ++i)
        ws += shared_ipc[i] / alone_ipc[i];
    return ws;
}

double
harmonicSpeedup(const std::vector<double> &shared_ipc,
                const std::vector<double> &alone_ipc)
{
    checkShapes(shared_ipc, alone_ipc);
    double denom = 0.0;
    for (std::size_t i = 0; i < shared_ipc.size(); ++i)
        denom += alone_ipc[i] / shared_ipc[i];
    return static_cast<double>(shared_ipc.size()) / denom;
}

double
maxSlowdown(const std::vector<double> &shared_ipc,
            const std::vector<double> &alone_ipc)
{
    checkShapes(shared_ipc, alone_ipc);
    double worst = 0.0;
    for (std::size_t i = 0; i < shared_ipc.size(); ++i) {
        const double slowdown = alone_ipc[i] / shared_ipc[i];
        if (slowdown > worst)
            worst = slowdown;
    }
    return worst;
}

} // namespace dsarp
