/**
 * @file
 * Multi-programmed performance metrics used throughout the paper's
 * evaluation: weighted speedup (WS) [Snavely & Tullsen, ASPLOS'00;
 * Eyerman & Eeckhout], harmonic speedup [Luo et al., ISPASS'01], and
 * maximum slowdown [Das+, Kim+].
 */

#ifndef DSARP_SIM_METRICS_HH
#define DSARP_SIM_METRICS_HH

#include <vector>

namespace dsarp {

/** WS = sum_i IPC_shared,i / IPC_alone,i. */
double weightedSpeedup(const std::vector<double> &sharedIpc,
                       const std::vector<double> &aloneIpc);

/** HS = N / sum_i (IPC_alone,i / IPC_shared,i). */
double harmonicSpeedup(const std::vector<double> &sharedIpc,
                       const std::vector<double> &aloneIpc);

/** Max slowdown = max_i IPC_alone,i / IPC_shared,i. */
double maxSlowdown(const std::vector<double> &sharedIpc,
                   const std::vector<double> &aloneIpc);

} // namespace dsarp

#endif // DSARP_SIM_METRICS_HH
