#include "sim/parallel.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace dsarp {

void
parallelFor(int jobs, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs > static_cast<int>(n))
        jobs = static_cast<int>(n);
    if (jobs <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex errorMutex;
    std::exception_ptr firstError;

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

SweepRunner::SweepRunner(Runner &runner, int jobs)
    : runner_(&runner), jobs_(jobs < 1 ? 1 : jobs)
{
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepPoint> &points)
{
    std::vector<RunResult> out(points.size());
    parallelFor(jobs_, points.size(), [&](std::size_t i) {
        out[i] = runner_->run(points[i].cfg, points[i].workload);
    });
    return out;
}

std::vector<RunResult>
SweepRunner::run(const RunConfig &cfg,
                 const std::vector<Workload> &workloads)
{
    std::vector<RunResult> out(workloads.size());
    parallelFor(jobs_, workloads.size(), [&](std::size_t i) {
        out[i] = runner_->run(cfg, workloads[i]);
    });
    return out;
}

std::uint64_t
SweepRunner::pointSeed(std::uint64_t base, std::size_t index)
{
    // splitmix64 finalizer over (base, index): well distributed and a
    // pure function of the point's identity.
    std::uint64_t z = base + 0x9e3779b97f4a7c15ULL *
        (static_cast<std::uint64_t>(index) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace dsarp
