/**
 * @file
 * Sharded parallel sweep execution.
 *
 * A sweep is a list of independent (RunConfig, Workload) points; the
 * SweepRunner shards them across a std::thread pool with an atomic
 * work-stealing index and writes each result into its point's slot, so
 * the output vector is byte-identical for any job count and any shard
 * order. Runner::run is safe to call concurrently: it holds no mutable
 * state beyond the process-wide alone-IPC memo cache, which is
 * mutex-guarded (see sim/runner.cc), and the registries are
 * thread-clean singletons (tests/test_thread_clean.cc).
 *
 * This file is the repo's single audited thread-spawn point: raw
 * std::thread/std::async anywhere else under src/ is a lint error
 * (tools/lint/lint.py), so every parallel code path funnels through
 * parallelFor() and inherits its exception handling and determinism
 * contract.
 */

#ifndef DSARP_SIM_PARALLEL_HH
#define DSARP_SIM_PARALLEL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/runner.hh"
#include "workload/workload.hh"

namespace dsarp {

/**
 * Run fn(0) .. fn(n-1) on @p jobs worker threads (clamped to [1, n];
 * jobs <= 1 runs inline on the caller). Items are claimed from an
 * atomic counter, so scheduling is dynamic but each index runs exactly
 * once. The first exception thrown by any item is rethrown on the
 * caller after all workers drain; @p fn must only touch shared state
 * through its own index's slot (or other synchronized paths).
 */
void parallelFor(int jobs, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/** One sweep point: a full system config plus the workload to run. */
struct SweepPoint
{
    RunConfig cfg;
    Workload workload;
};

class SweepRunner
{
  public:
    /**
     * @p jobs worker threads (values < 1 clamp to 1 = serial). The
     * Runner is shared by all workers and must outlive the sweep.
     */
    SweepRunner(Runner &runner, int jobs);

    int jobs() const { return jobs_; }

    /**
     * Evaluate every point; result i corresponds to points[i]
     * regardless of job count or completion order.
     */
    std::vector<RunResult> run(const std::vector<SweepPoint> &points);

    /** The bench_common sweep() shape: one config, many workloads. */
    std::vector<RunResult> run(const RunConfig &cfg,
                               const std::vector<Workload> &workloads);

    /**
     * Deterministic per-point seed: a splitmix64 mix of the sweep's
     * base seed and the point index, so a seed axis depends only on
     * (base, index) -- never on thread assignment or shard order.
     */
    static std::uint64_t pointSeed(std::uint64_t base, std::size_t index);

  private:
    Runner *runner_;
    int jobs_;
};

} // namespace dsarp

#endif // DSARP_SIM_PARALLEL_HH
