#include "sim/runner.hh"

#include <cstdlib>
#include <sstream>

#include "common/log.hh"
#include "sim/metrics.hh"

namespace dsarp {

std::uint64_t
envKnob(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || parsed == 0)
        return fallback;
    return parsed;
}

std::string
RunConfig::mechanismName() const
{
    if (sarp) {
        if (refresh == RefreshMode::kAllBank)
            return "SARPab";
        if (refresh == RefreshMode::kPerBank)
            return "SARPpb";
        if (refresh == RefreshMode::kDarp)
            return "DSARP";
    }
    return refreshModeName(refresh);
}

RunConfig
mechRefAb(Density d)
{
    RunConfig cfg;
    cfg.density = d;
    cfg.refresh = RefreshMode::kAllBank;
    return cfg;
}

RunConfig
mechRefPb(Density d)
{
    RunConfig cfg = mechRefAb(d);
    cfg.refresh = RefreshMode::kPerBank;
    return cfg;
}

RunConfig
mechElastic(Density d)
{
    RunConfig cfg = mechRefAb(d);
    cfg.refresh = RefreshMode::kElastic;
    return cfg;
}

RunConfig
mechDarp(Density d)
{
    RunConfig cfg = mechRefAb(d);
    cfg.refresh = RefreshMode::kDarp;
    return cfg;
}

RunConfig
mechSarpAb(Density d)
{
    RunConfig cfg = mechRefAb(d);
    cfg.sarp = true;
    return cfg;
}

RunConfig
mechSarpPb(Density d)
{
    RunConfig cfg = mechRefPb(d);
    cfg.sarp = true;
    return cfg;
}

RunConfig
mechDsarp(Density d)
{
    RunConfig cfg = mechDarp(d);
    cfg.sarp = true;
    return cfg;
}

RunConfig
mechNoRef(Density d)
{
    RunConfig cfg = mechRefAb(d);
    cfg.refresh = RefreshMode::kNoRefresh;
    return cfg;
}

SystemConfig
Runner::makeSystemConfig(const RunConfig &cfg)
{
    SystemConfig sys;
    sys.mem.density = cfg.density;
    sys.mem.retentionMs = cfg.retentionMs;
    sys.mem.refresh = cfg.refresh;
    sys.mem.sarp = cfg.sarp;
    sys.mem.darpWriteRefresh = cfg.darpWriteRefresh;
    sys.mem.org.subarraysPerBank = cfg.subarraysPerBank;
    sys.mem.tFawOverride = cfg.tFawOverride;
    sys.mem.tRrdOverride = cfg.tRrdOverride;
    if (cfg.writeHighWatermark > 0)
        sys.mem.writeHighWatermark = cfg.writeHighWatermark;
    if (cfg.writeLowWatermark > 0)
        sys.mem.writeLowWatermark = cfg.writeLowWatermark;
    if (cfg.refabStaggerDivisor > 0)
        sys.mem.refabStaggerDivisor = cfg.refabStaggerDivisor;
    if (cfg.maxOverlappedRefPb > 0)
        sys.mem.maxOverlappedRefPb = cfg.maxOverlappedRefPb;
    sys.numCores = cfg.numCores;
    sys.seed = cfg.seed;
    return sys;
}

Runner::Runner()
{
    measure_ = envKnob("DSARP_BENCH_CYCLES", 250000);
    warmup_ = envKnob("DSARP_BENCH_WARMUP", 30000);
    perCategory_ =
        static_cast<int>(envKnob("DSARP_BENCH_WORKLOADS_PER_CAT", 3));
}

double
Runner::aloneIpc(int bench_idx, const RunConfig &cfg)
{
    std::ostringstream key;
    key << bench_idx << ':' << densityName(cfg.density) << ':'
        << cfg.retentionMs << ':' << cfg.subarraysPerBank << ':'
        << cfg.tFawOverride << ':' << cfg.tRrdOverride;
    const auto it = aloneCache_.find(key.str());
    if (it != aloneCache_.end())
        return it->second;

    // Alone baseline: the benchmark alone on one core with refresh
    // eliminated, same DRAM geometry.
    RunConfig alone = cfg;
    alone.refresh = RefreshMode::kNoRefresh;
    alone.sarp = false;
    alone.numCores = 1;
    SystemConfig sys = makeSystemConfig(alone);
    System system(sys, std::vector<int>{bench_idx});
    system.run(warmup_);
    system.resetStats();
    system.run(measure_);
    const double ipc = system.coreIpc()[0];
    DSARP_ASSERT(ipc > 0.0, "alone run produced zero IPC");
    aloneCache_[key.str()] = ipc;
    return ipc;
}

RunResult
Runner::run(const RunConfig &cfg, const Workload &workload)
{
    DSARP_ASSERT(static_cast<int>(workload.benchIdx.size()) ==
                     cfg.numCores,
                 "workload size does not match core count");

    SystemConfig sys = makeSystemConfig(cfg);
    System system(sys, workload.benchIdx);
    system.run(warmup_);
    system.resetStats();
    system.run(measure_);

    RunResult res;
    res.ipc = system.coreIpc();
    for (int bench : workload.benchIdx)
        res.aloneIpc.push_back(aloneIpc(bench, cfg));
    res.ws = weightedSpeedup(res.ipc, res.aloneIpc);
    res.hs = harmonicSpeedup(res.ipc, res.aloneIpc);
    res.maxSlowdown = maxSlowdown(res.ipc, res.aloneIpc);

    const EnergyParams energy = EnergyParams::micron8GbDdr3();
    double total_nj = 0.0;
    double accesses = 0.0;
    for (int ch = 0; ch < system.numChannels(); ++ch) {
        const ChannelStats &cs = system.controller(ch).channel().stats();
        total_nj += channelEnergy(cs, system.timing(), energy,
                                  sys.mem.org.banksPerRank)
                        .totalNj();
        accesses += static_cast<double>(cs.reads + cs.writes);
        res.refAb += cs.refAb;
        res.refPb += cs.refPb;
        res.readsCompleted += system.controller(ch).stats().readsCompleted;
        res.writesIssued += system.controller(ch).stats().writesIssued;
    }
    res.energyPerAccessNj = accesses > 0.0 ? total_nj / accesses : 0.0;
    return res;
}

} // namespace dsarp
