#include "sim/runner.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "common/log.hh"
#include "dram/address.hh"
#include "dram/spec.hh"
#include "refresh/registry.hh"
#include "sim/metrics.hh"

namespace dsarp {

std::uint64_t
envKnob(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0' || errno == ERANGE ||
        *value == '-' || parsed == 0) {
        DSARP_FATALF("environment knob %s: '%s' is not a positive "
                     "integer",
                     name, value);
    }
    return parsed;
}

std::string
RunConfig::mechanismName() const
{
    if (!policy.empty())
        return RefreshPolicyRegistry::instance().at(policy).name;
    if (sarp) {
        if (refresh == RefreshMode::kAllBank)
            return "SARPab";
        if (refresh == RefreshMode::kPerBank)
            return "SARPpb";
        if (refresh == RefreshMode::kDarp)
            return "DSARP";
    }
    return refreshModeName(refresh);
}

RunConfig
mechRefAb(Density d)
{
    RunConfig cfg;
    cfg.density = d;
    cfg.refresh = RefreshMode::kAllBank;
    return cfg;
}

RunConfig
mechRefPb(Density d)
{
    RunConfig cfg = mechRefAb(d);
    cfg.refresh = RefreshMode::kPerBank;
    return cfg;
}

RunConfig
mechElastic(Density d)
{
    RunConfig cfg = mechRefAb(d);
    cfg.refresh = RefreshMode::kElastic;
    return cfg;
}

RunConfig
mechDarp(Density d)
{
    RunConfig cfg = mechRefAb(d);
    cfg.refresh = RefreshMode::kDarp;
    return cfg;
}

RunConfig
mechSarpAb(Density d)
{
    RunConfig cfg = mechRefAb(d);
    cfg.sarp = true;
    return cfg;
}

RunConfig
mechSarpPb(Density d)
{
    RunConfig cfg = mechRefPb(d);
    cfg.sarp = true;
    return cfg;
}

RunConfig
mechDsarp(Density d)
{
    RunConfig cfg = mechDarp(d);
    cfg.sarp = true;
    return cfg;
}

RunConfig
mechNoRef(Density d)
{
    RunConfig cfg = mechRefAb(d);
    cfg.refresh = RefreshMode::kNoRefresh;
    return cfg;
}

SystemConfig
Runner::makeSystemConfig(const RunConfig &cfg)
{
    SystemConfig sys;
    sys.mem.policy = cfg.policy;
    if (!cfg.dramSpec.empty())
        sys.mem.dramSpec = cfg.dramSpec;
    if (!cfg.addressMap.empty())
        sys.mem.addressMap = cfg.addressMap;
    if (cfg.channels > 0)
        sys.mem.org.channels = cfg.channels;
    sys.mem.channelStaggerCycles = cfg.channelStaggerCycles;
    sys.mem.density = cfg.density;
    sys.mem.retentionMs = cfg.retentionMs;
    sys.mem.refresh = cfg.refresh;
    sys.mem.sarp = cfg.sarp;
    sys.mem.darpWriteRefresh = cfg.darpWriteRefresh;
    sys.mem.org.subarraysPerBank = cfg.subarraysPerBank;
    sys.mem.tFawOverride = cfg.tFawOverride;
    sys.mem.tRrdOverride = cfg.tRrdOverride;
    if (cfg.writeHighWatermark > 0)
        sys.mem.writeHighWatermark = cfg.writeHighWatermark;
    if (cfg.writeLowWatermark > 0)
        sys.mem.writeLowWatermark = cfg.writeLowWatermark;
    if (cfg.refabStaggerDivisor > 0)
        sys.mem.refabStaggerDivisor = cfg.refabStaggerDivisor;
    if (cfg.maxOverlappedRefPb > 0)
        sys.mem.maxOverlappedRefPb = cfg.maxOverlappedRefPb;
    sys.mem.srIdleEntryCycles = cfg.srIdleEntryCycles;
    sys.mem.fgrRate = cfg.fgrRate;
    if (!cfg.engine.empty())
        sys.engine = cfg.engine;
    sys.traffic = cfg.traffic;
    sys.numCores = cfg.numCores;
    sys.seed = cfg.seed;
    return sys;
}

Runner::Runner()
{
    measure_ = envKnob("DSARP_BENCH_CYCLES", 250000);
    warmup_ = envKnob("DSARP_BENCH_WARMUP", 30000);
    perCategory_ =
        static_cast<int>(envKnob("DSARP_BENCH_WORKLOADS_PER_CAT", 3));
}

Runner::Runner(Tick warmup, Tick measure, int per_category)
    : warmup_(warmup), measure_(measure), perCategory_(per_category)
{
    DSARP_ASSERT(measure_ > 0, "measurement window must be positive");
}

namespace {

/** Fold per-channel counters and the energy model into @p res. */
void
collectChannelStats(System &system, const SystemConfig &sys,
                    RunResult &res)
{
    // Per-spec IDD/vdd sets: the selected backend's datasheet values,
    // not a hard-coded Micron DDR3 approximation for every spec.
    const EnergyParams &energy =
        DramSpecRegistry::instance().at(sys.mem.dramSpec).energy;
    double total_nj = 0.0;
    double accesses = 0.0;
    for (int ch = 0; ch < system.numChannels(); ++ch) {
        const ChannelStats &cs = system.controller(ch).channel().stats();
        // dsarp-analyze: allow(fp-accumulation-order): the channel
        // index order is fixed, so this fp fold is bit-stable.
        total_nj += channelEnergy(cs, system.timing(), energy).totalNj();
        // dsarp-analyze: allow(fp-accumulation-order): same fixed
        // channel order as above.
        accesses += static_cast<double>(cs.reads + cs.writes);
        res.refAb += cs.refAb;
        res.refPb += cs.refPb;
        res.refSb += cs.refSb;
        res.refPbHidden += cs.refPbHidden;
        res.srEnters += cs.srEnter;
        res.srExits += cs.srExit;
        res.srTicks += cs.srTicks;
        res.refOverlapTicks += cs.refOverlapTicks;
        res.readsCompleted += system.controller(ch).stats().readsCompleted;
        res.writesIssued += system.controller(ch).stats().writesIssued;
        res.readLatency.merge(system.controller(ch).stats().readLatency);
    }
    res.energyPerAccessNj = accesses > 0.0 ? total_nj / accesses : 0.0;
}

} // namespace

double
Runner::aloneIpc(int bench_idx, const RunConfig &cfg)
{
    return aloneIpc(bench_idx, makeSystemConfig(cfg));
}

double
Runner::aloneIpc(int bench_idx, const SystemConfig &sys)
{
    // Process-wide memoization: keyed on every field the single-core
    // refresh-free run depends on (geometry, queues, timing overrides,
    // core model) plus this runner's run lengths. The simulator seed is
    // deliberately excluded -- the baseline is treated as a property of
    // the benchmark, matching the paper's alone-run methodology.
    //
    // Mutex-guarded for the parallel sweep harness: the lock covers
    // only the lookup and the insert, never the alone-run simulation
    // itself, so a miss does not serialize unrelated sweep points. Two
    // threads racing on the same key both simulate (deterministically,
    // to the same value) and the first insert wins.
    static std::mutex cacheMutex;
    static std::map<std::string, double> cache;
    std::ostringstream key;
    // The canonical spec name (not the user's alias/case) so
    // "ddr4" and "DDR4-2400" share one baseline.
    key << bench_idx << ':' << warmup_ << ':' << measure_ << ':'
        << DramSpecRegistry::instance().at(sys.mem.dramSpec).name << ':'
        << AddressMapRegistry::instance().at(sys.mem.addressMap).name
        << ':'
        << densityName(sys.mem.density) << ':' << sys.mem.retentionMs
        << ':' << sys.mem.org.subarraysPerBank << ':'
        << sys.mem.tFawOverride << ':' << sys.mem.tRrdOverride << ':'
        << sys.mem.org.channels << ':' << sys.mem.org.ranksPerChannel
        << ':' << sys.mem.org.banksPerRank << ':'
        << sys.mem.org.rowBytes << ':' << sys.mem.org.lineBytes << ':'
        << sys.mem.readQueueSize << ':' << sys.mem.writeQueueSize << ':'
        << sys.mem.writeHighWatermark << ':' << sys.mem.writeLowWatermark
        << ':' << sys.core.cpuCyclesPerTick << ':' << sys.core.windowSize
        << ':' << sys.core.retireWidth << ':' << sys.core.mshrs;
    {
        const std::lock_guard<std::mutex> lock(cacheMutex);
        const auto it = cache.find(key.str());
        if (it != cache.end())
            return it->second;
    }

    // Alone baseline: the benchmark alone on one core with refresh
    // eliminated, same DRAM geometry. Self-refresh is disabled too --
    // the baseline is the *ideal* memory system, and an idle-entry
    // policy would otherwise charge the mostly-idle alone run its tXS
    // exits (and, being absent from the cache key, poison the shared
    // baselines).
    SystemConfig alone = sys;
    alone.mem.policy = "NoREF";
    alone.mem.refresh = RefreshMode::kNoRefresh;
    alone.mem.sarp = false;
    alone.mem.srIdleEntryCycles = 0;
    alone.mem.selfRefreshIdleCycles = 0;
    alone.numCores = 1;
    alone.enableChecker = false;
    System system(alone, std::vector<int>{bench_idx});
    system.run(warmup_);
    system.resetStats();
    system.run(measure_);
    const double ipc = system.coreIpc()[0];
    DSARP_ASSERT(ipc > 0.0, "alone run produced zero IPC");
    const std::lock_guard<std::mutex> lock(cacheMutex);
    return cache.emplace(key.str(), ipc).first->second;
}

RunResult
Runner::run(const RunConfig &cfg, const Workload &workload)
{
    return run(makeSystemConfig(cfg), workload);
}

RunResult
Runner::run(const SystemConfig &sys, const Workload &workload)
{
    DSARP_ASSERT(static_cast<int>(workload.benchIdx.size()) ==
                     sys.numCores,
                 "workload size does not match core count");

    System system(sys, workload.benchIdx);
    system.run(warmup_);
    system.resetStats();
    system.run(measure_);

    RunResult res;
    res.ipc = system.coreIpc();
    for (int bench : workload.benchIdx)
        res.aloneIpc.push_back(aloneIpc(bench, sys));
    res.ws = weightedSpeedup(res.ipc, res.aloneIpc);
    res.hs = harmonicSpeedup(res.ipc, res.aloneIpc);
    res.maxSlowdown = maxSlowdown(res.ipc, res.aloneIpc);
    collectChannelStats(system, sys, res);
    return res;
}

RunResult
Runner::run(const SystemConfig &sys,
            const std::vector<TraceSource *> &traces)
{
    System system(sys, traces);
    system.run(warmup_);
    system.resetStats();
    system.run(measure_);

    RunResult res;
    res.ipc = system.coreIpc();
    collectChannelStats(system, sys, res);
    return res;
}

RunResult
Runner::runTraffic(const SystemConfig &sys)
{
    DSARP_ASSERT(sys.traffic.enabled(),
                 "runTraffic needs traffic.mode != off");
    System system(sys);
    system.run(warmup_);
    system.resetStats();
    system.run(measure_);

    RunResult res;
    collectChannelStats(system, sys, res);

    const TrafficInjector &inj = *system.injector();
    double minMean = 0.0;
    bool haveMean = false;
    res.tenants.resize(static_cast<std::size_t>(inj.tenants()));
    for (int i = 0; i < inj.tenants(); ++i) {
        TenantResult &t = res.tenants[static_cast<std::size_t>(i)];
        const TrafficInjector::TenantStats &ts = inj.tenantStats(i);
        const LatencyHistogram &lat = system.tenantLatency(i);
        t.priority = inj.tenantPriority(i);
        t.generated = ts.generated;
        t.injected = ts.injected;
        t.reads = lat.count();
        t.avgBacklog = ts.ticks
            ? static_cast<double>(ts.backlogSum) /
                static_cast<double>(ts.ticks)
            : 0.0;
        t.meanLatency = lat.mean();
        t.p50 = lat.percentile(50.0);
        t.p99 = lat.percentile(99.0);
        t.p999 = lat.percentile(99.9);
        if (lat.count() > 0 &&
            (!haveMean || t.meanLatency < minMean)) {
            minMean = t.meanLatency;
            haveMean = true;
        }
    }
    // Max-slowdown fairness: every tenant's mean latency against the
    // best-served tenant's. 1.0 = perfectly fair; tenants that
    // completed no reads are left at slowdown 0.
    res.tenantFairness = 0.0;
    for (TenantResult &t : res.tenants) {
        if (t.reads > 0 && haveMean && minMean > 0.0) {
            t.slowdown = t.meanLatency / minMean;
            res.tenantFairness =
                std::max(res.tenantFairness, t.slowdown);
        }
    }
    return res;
}

RunResult
Runner::runTraffic(const RunConfig &cfg)
{
    return runTraffic(makeSystemConfig(cfg));
}

} // namespace dsarp
