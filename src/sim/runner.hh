/**
 * @file
 * Experiment runner shared by the bench harnesses, examples, and
 * integration tests.
 *
 * Wraps System construction, warmup, measurement, metric computation
 * (WS/HS/max-slowdown against cached alone-run IPCs), and the energy
 * model. Run lengths come from environment knobs so the same binaries
 * scale from smoke tests to paper-fidelity sweeps:
 *
 *   DSARP_BENCH_CYCLES             measurement ticks   (default 250000)
 *   DSARP_BENCH_WARMUP             warmup ticks        (default 30000)
 *   DSARP_BENCH_WORKLOADS_PER_CAT  mixes per category  (default 3)
 */

#ifndef DSARP_SIM_RUNNER_HH
#define DSARP_SIM_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "sim/energy.hh"
#include "sim/system.hh"
#include "workload/workload.hh"

namespace dsarp {

/**
 * One evaluated system point (mechanism x density x knobs).
 *
 * Pre-dates ExperimentConfig (sim/experiment.hh), which is the full
 * layered configuration surface; RunConfig remains as the compact
 * sweep point the bench harnesses iterate over.
 */
struct RunConfig
{
    Density density = Density::k8Gb;

    /**
     * DRAM device spec by registry name (see dram/spec.hh); empty
     * keeps the MemConfig default ("DDR3-1333"). Gives every bench
     * sweep a backend axis orthogonal to mechanism x density.
     */
    std::string dramSpec;

    /**
     * Address map by registry name (see dram/address.hh); empty keeps
     * the MemConfig default ("burst-ch").
     */
    std::string addressMap;

    /** Channels per system; 0 keeps the MemOrg default (2). */
    int channels = 0;

    /** Cross-channel refresh stagger in cycles (= the
     *  refresh.channelStagger key): 0 off, -1 = tREFIab / channels. */
    int channelStaggerCycles = 0;

    /**
     * Refresh mechanism by registry name; when non-empty it wins over
     * the (refresh, sarp) pair below (see MemConfig::policy).
     */
    std::string policy;

    RefreshMode refresh = RefreshMode::kAllBank;
    bool sarp = false;
    int retentionMs = 32;
    int numCores = 8;
    int subarraysPerBank = 8;
    int tFawOverride = 0;
    int tRrdOverride = 0;
    bool darpWriteRefresh = true;
    /** 0 keeps the MemConfig defaults for the following four knobs. */
    int writeHighWatermark = 0;
    int writeLowWatermark = 0;
    int refabStaggerDivisor = 0;
    int maxOverlappedRefPb = 0;  ///< Footnote-5 extension (>1 overlaps).

    /** Command-level self-refresh idle-entry threshold in cycles
     *  (= refresh.selfRefresh.idleEntry); 0 disables SRE/SRX. */
    int srIdleEntryCycles = 0;

    /** Explicit FGR rate for any mechanism (= refresh.fgrRate);
     *  0 keeps the profile default, else 1/2/4. */
    int fgrRate = 0;

    /**
     * Simulation engine (= sim.engine): empty keeps the SystemConfig
     * default ("cycle"); "event" selects the skip-to-next-deadline
     * loop. Results are bit-identical either way, so the alone-IPC
     * cache deliberately ignores it.
     */
    std::string engine;

    std::uint64_t seed = 1;

    /**
     * Open-loop traffic front end (traffic.* / tenant.* keys); mode
     * "off" keeps the closed-loop cores and every legacy result
     * bit-identical. When enabled, run the point through
     * Runner::runTraffic().
     */
    TrafficConfig traffic;

    /** The paper's mechanism names (REFab, REFpb, DARP, SARPab, ...). */
    std::string mechanismName() const;
};

/** Canonical mechanism configurations from Section 6. */
RunConfig mechRefAb(Density d);
RunConfig mechRefPb(Density d);
RunConfig mechElastic(Density d);
RunConfig mechDarp(Density d);
RunConfig mechSarpAb(Density d);
RunConfig mechSarpPb(Density d);
RunConfig mechDsarp(Density d);
RunConfig mechNoRef(Density d);

/** Per-tenant figures of an open-loop (traffic) run. */
struct TenantResult
{
    int priority = 1;
    std::uint64_t generated = 0;   ///< Arrivals produced.
    std::uint64_t injected = 0;    ///< Accepted by a controller.
    std::uint64_t reads = 0;       ///< Reads completed (delivered).
    double avgBacklog = 0.0;       ///< Mean injector-backlog occupancy.
    double meanLatency = 0.0;      ///< Mean read latency, cycles.
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    /** meanLatency / min over tenants of meanLatency (>= 1). */
    double slowdown = 0.0;
};

struct RunResult
{
    std::vector<double> ipc;       ///< Shared-run per-core IPC.
    std::vector<double> aloneIpc;  ///< Cached single-core ideal IPC.
    double ws = 0.0;
    double hs = 0.0;
    double maxSlowdown = 0.0;
    double energyPerAccessNj = 0.0;

    /**
     * Aggregate read-latency distribution, merged across every
     * channel controller (arrival-to-delivery in DRAM cycles; under
     * open-loop traffic the arrival stamp is the generation tick, so
     * injector-backlog queueing is included). Populated on every run
     * path -- closed-loop runs report it too.
     */
    LatencyHistogram readLatency;

    /** Per-tenant breakdown (open-loop multi-tenant runs only). */
    std::vector<TenantResult> tenants;

    /** Max-slowdown fairness across tenants (1.0 = perfectly fair). */
    double tenantFairness = 0.0;
    std::uint64_t readsCompleted = 0;
    std::uint64_t writesIssued = 0;
    std::uint64_t refAb = 0;
    std::uint64_t refPb = 0;
    std::uint64_t refSb = 0;        ///< DDR5 same-bank slice refreshes.
    std::uint64_t refPbHidden = 0;  ///< HiRA refreshes hidden under ACTs.
    std::uint64_t srEnters = 0;     ///< Self-refresh entries (SRE).
    std::uint64_t srExits = 0;      ///< Self-refresh exits (SRX).
    std::uint64_t srTicks = 0;      ///< Rank-ticks spent in self-refresh.
    /** Ticks a channel's refresh overlapped a sibling channel's (the
     *  simultaneous-refresh exposure channel staggering removes). */
    std::uint64_t refOverlapTicks = 0;
};

class Runner
{
  public:
    /** Run lengths from the DSARP_BENCH_* environment knobs. */
    Runner();

    /** Explicit run lengths (the Simulation facade's constructor). */
    Runner(Tick warmup, Tick measure, int perCategory = 3);

    Tick warmupTicks() const { return warmup_; }
    Tick measureTicks() const { return measure_; }
    int workloadsPerCategory() const { return perCategory_; }

    /** Simulate @p workload under @p cfg and compute all metrics. */
    RunResult run(const RunConfig &cfg, const Workload &workload);

    /** Same pipeline on a fully-specified SystemConfig. */
    RunResult run(const SystemConfig &sys, const Workload &workload);

    /**
     * Warmup/measure caller-provided trace sources (no benchmark
     * catalogue, so no alone baseline: ws/hs/maxSlowdown stay 0).
     */
    RunResult run(const SystemConfig &sys,
                  const std::vector<TraceSource *> &traces);

    /**
     * Open-loop traffic run: sys.traffic must be enabled. No cores,
     * so ipc/ws/hs stay empty/0; the latency histogram, per-tenant
     * breakdown, and fairness figure carry the result.
     */
    RunResult runTraffic(const SystemConfig &sys);

    /** Same, from a compact sweep point (cfg.traffic enabled). */
    RunResult runTraffic(const RunConfig &cfg);

    /**
     * Single-core refresh-free IPC for a benchmark under the same
     * geometry, queues, and core model (used as the alone baseline for
     * WS). Memoized process-wide -- the cache key covers every config
     * field the alone run depends on plus the run lengths, so Runner
     * instances (and Simulations) share baselines safely.
     */
    double aloneIpc(int benchIdx, const RunConfig &cfg);
    double aloneIpc(int benchIdx, const SystemConfig &sys);

    /** Build a SystemConfig from a RunConfig (public for tests). */
    static SystemConfig makeSystemConfig(const RunConfig &cfg);

  private:
    Tick warmup_;
    Tick measure_;
    int perCategory_;
};

/** Read a positive integer environment knob with a default. */
std::uint64_t envKnob(const char *name, std::uint64_t fallback);

} // namespace dsarp

#endif // DSARP_SIM_RUNNER_HH
