#include "sim/simulation.hh"

#include "common/log.hh"
#include "dram/address.hh"
#include "sim/config_keys.hh"
#include "refresh/registry.hh"
#include "sim/parallel.hh"

namespace dsarp {

Simulation::Builder &
Simulation::Builder::config(const ExperimentConfig &cfg)
{
    cfg_ = cfg;
    return *this;
}

Simulation::Builder &
Simulation::Builder::policy(const std::string &name)
{
    cfg_.policy = name;
    return *this;
}

Simulation::Builder &
Simulation::Builder::dramSpec(const std::string &name)
{
    cfg_.dramSpec = name;
    return *this;
}

Simulation::Builder &
Simulation::Builder::addressMap(const std::string &name)
{
    cfg_.addressMap = name;
    return *this;
}

Simulation::Builder &
Simulation::Builder::channels(int n)
{
    cfg_.channels = n;
    return *this;
}

Simulation::Builder &
Simulation::Builder::channelStagger(int cycles)
{
    cfg_.channelStagger = cycles;
    return *this;
}

Simulation::Builder &
Simulation::Builder::densityGb(int gb)
{
    cfg_.densityGb = gb;
    return *this;
}

Simulation::Builder &
Simulation::Builder::cores(int n)
{
    cfg_.numCores = n;
    return *this;
}

Simulation::Builder &
Simulation::Builder::retentionMs(int ms)
{
    cfg_.retentionMs = ms;
    return *this;
}

Simulation::Builder &
Simulation::Builder::subarraysPerBank(int n)
{
    cfg_.subarraysPerBank = n;
    return *this;
}

Simulation::Builder &
Simulation::Builder::seed(std::uint64_t s)
{
    cfg_.seed = s;
    return *this;
}

Simulation::Builder &
Simulation::Builder::workloadSeed(std::uint64_t s)
{
    cfg_.workloadSeed = s;
    return *this;
}

Simulation::Builder &
Simulation::Builder::hiraCoverage(double fraction)
{
    cfg_.hiraCoverage = fraction;
    return *this;
}

Simulation::Builder &
Simulation::Builder::hiraDelay(int cycles)
{
    cfg_.hiraDelay = cycles;
    return *this;
}

Simulation::Builder &
Simulation::Builder::intensityPct(int pct)
{
    cfg_.intensityPct = pct;
    return *this;
}

Simulation::Builder &
Simulation::Builder::warmupCycles(std::uint64_t ticks)
{
    cfg_.warmupCycles = ticks;
    return *this;
}

Simulation::Builder &
Simulation::Builder::measureCycles(std::uint64_t ticks)
{
    cfg_.measureCycles = ticks;
    return *this;
}

Simulation::Builder &
Simulation::Builder::set(const std::string &key, const std::string &value)
{
    cfg_.set(key, value);
    return *this;
}

Simulation::Builder &
Simulation::Builder::apply(const std::string &assignment)
{
    cfg_.applyOverride(assignment);
    return *this;
}

Simulation::Builder &
Simulation::Builder::configFile(const std::string &path)
{
    cfg_.applyFile(path);
    return *this;
}

Simulation::Builder &
Simulation::Builder::env()
{
    cfg_.applyEnv();
    return *this;
}

Simulation::Builder &
Simulation::Builder::workload(const Workload &w)
{
    haveWorkload_ = true;
    workload_ = w;
    return *this;
}

Simulation::Builder &
Simulation::Builder::traces(const std::vector<TraceSource *> &sources)
{
    traces_ = sources;
    return *this;
}

Simulation
Simulation::Builder::build()
{
    const std::string errors = cfg_.validate();
    if (!errors.empty())
        DSARP_FATALF("invalid experiment: %s", errors.c_str());

    if (cfg_.traffic.enabled()) {
        if (haveWorkload_ || !traces_.empty()) {
            DSARP_FATALF("Simulation: workload()/traces() are mutually "
                         "exclusive with config key '%s'=%s",
                         keys::kTrafficMode, cfg_.traffic.mode.c_str());
        }
        return Simulation(cfg_, Workload{}, {});
    }

    if (!traces_.empty()) {
        if (haveWorkload_)
            DSARP_FATAL("Simulation: workload() and traces() are "
                        "mutually exclusive");
        if (static_cast<int>(traces_.size()) != cfg_.numCores) {
            DSARP_FATALF("Simulation: %zu trace sources for config key "
                         "'numCores'=%d; need exactly one per core",
                         traces_.size(), cfg_.numCores);
        }
        return Simulation(cfg_, Workload{}, traces_);
    }

    Workload workload = workload_;
    if (haveWorkload_) {
        if (static_cast<int>(workload.benchIdx.size()) != cfg_.numCores) {
            DSARP_FATALF("Simulation: workload has %zu benchmarks for "
                         "config key 'numCores'=%d",
                         workload.benchIdx.size(), cfg_.numCores);
        }
    } else {
        // One mix per category; pick the requested intensity.
        for (const Workload &w :
             makeWorkloads(1, cfg_.numCores, cfg_.workloadSeed)) {
            if (w.categoryPct == cfg_.intensityPct)
                workload = w;
        }
    }
    return Simulation(cfg_, workload, {});
}

const std::string &
Simulation::dramSpecName() const
{
    return spec_->name;
}

Simulation::Simulation(ExperimentConfig cfg, Workload workload,
                       std::vector<TraceSource *> traces)
    : cfg_(std::move(cfg)),
      spec_(&DramSpecRegistry::instance().at(cfg_.dramSpec)),
      workload_(std::move(workload)), traces_(std::move(traces)),
      runner_(cfg_.warmupCycles > 0
                  ? cfg_.warmupCycles
                  : envKnob("DSARP_BENCH_WARMUP", 30000),
              cfg_.measureCycles > 0
                  ? cfg_.measureCycles
                  : envKnob("DSARP_BENCH_CYCLES", 250000))
{
    // Canonicalise so config() and every SystemConfig projected from
    // it carry the registry spelling, not the user's alias/case.
    cfg_.dramSpec = spec_->name;
    cfg_.addressMap =
        AddressMapRegistry::instance().at(cfg_.addressMap).name;
}

MemOrg
Simulation::resolvedOrg() const
{
    SystemConfig sys = cfg_.toSystemConfig();
    RefreshPolicyRegistry::instance().resolve(sys.mem);
    sys.mem.finalize();
    return sys.mem.org;
}

RunResult
Simulation::run()
{
    const SystemConfig sys = cfg_.toSystemConfig();
    if (cfg_.traffic.enabled())
        return runner_.runTraffic(sys);
    if (!traces_.empty())
        return runner_.run(sys, traces_);
    return runner_.run(sys, workload_);
}

void
Simulation::prewarmBaselines(int jobs)
{
    // Traffic runs have no cores, so no alone-IPC baseline to warm.
    if (cfg_.traffic.enabled() || !traces_.empty())
        return;
    const SystemConfig sys = cfg_.toSystemConfig();
    parallelFor(jobs, workload_.benchIdx.size(), [&](std::size_t i) {
        runner_.aloneIpc(workload_.benchIdx[i], sys);
    });
}

} // namespace dsarp
