/**
 * @file
 * Simulation: the fluent entry point to the library.
 *
 * One builder assembles an experiment from any mix of programmatic
 * calls, key=value overrides, config files, and the environment, then
 * build() validates everything (errors name the bad key) and run()
 * drives the full warmup/measure/metrics/energy pipeline:
 *
 *   RunResult res = Simulation::builder()
 *                       .policy("DSARP")
 *                       .densityGb(32)
 *                       .cores(8)
 *                       .set("writeLowWatermark", "24")
 *                       .build()
 *                       .run();
 *
 * The CLI tool, the examples, and the tests all drive this same API.
 * Custom trace sources (instead of catalogue benchmarks) plug in via
 * .traces(); those runs report IPC, refresh counters, and energy, but
 * no alone-baseline metrics (ws/hs/maxSlowdown stay 0).
 *
 * Setting traffic.mode (see TrafficConfig) replaces the closed-loop
 * cores with the open-loop TrafficInjector front end: run() routes to
 * Runner::runTraffic() and the result carries the read-latency
 * distribution, per-tenant breakdown, and fairness instead of IPC.
 * Mutually exclusive with .workload() and .traces().
 */

#ifndef DSARP_SIM_SIMULATION_HH
#define DSARP_SIM_SIMULATION_HH

#include <string>
#include <vector>

#include "core/trace.hh"
#include "dram/spec.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

namespace dsarp {

class Simulation
{
  public:
    class Builder
    {
      public:
        /** Replace the whole config (then refine with the calls below). */
        Builder &config(const ExperimentConfig &cfg);

        Builder &policy(const std::string &name);
        Builder &dramSpec(const std::string &name);
        Builder &addressMap(const std::string &name);
        Builder &channels(int n);
        Builder &channelStagger(int cycles);
        Builder &densityGb(int gb);
        Builder &cores(int n);
        Builder &retentionMs(int ms);
        Builder &subarraysPerBank(int n);
        Builder &seed(std::uint64_t s);
        Builder &workloadSeed(std::uint64_t s);

        /** HiRA knobs (= "refresh.hiraCoverage" / "refresh.hiraDelay"):
         *  hidden-refresh coverage fraction (-1 = spec default) and the
         *  demand-ACT to hidden-refresh delay (0 = spec tHiRA). */
        Builder &hiraCoverage(double fraction);
        Builder &hiraDelay(int cycles);
        Builder &intensityPct(int pct);
        Builder &warmupCycles(std::uint64_t ticks);
        Builder &measureCycles(std::uint64_t ticks);

        /** One key=value override; a fatal named-key error if bad. */
        Builder &set(const std::string &key, const std::string &value);
        Builder &apply(const std::string &assignment);

        /** Layer a config file / the DSARP_SET environment variable. */
        Builder &configFile(const std::string &path);
        Builder &env();

        /** Run an explicit workload mix instead of generating one. */
        Builder &workload(const Workload &w);

        /**
         * Drive caller-provided trace sources (one per core; they must
         * outlive the Simulation). Mutually exclusive with workload().
         */
        Builder &traces(const std::vector<TraceSource *> &sources);

        /** Validate and assemble; fatal named-key error when invalid. */
        Simulation build();

      private:
        ExperimentConfig cfg_;
        bool haveWorkload_ = false;
        Workload workload_;
        std::vector<TraceSource *> traces_;
    };

    static Builder builder() { return Builder{}; }

    const ExperimentConfig &config() const { return cfg_; }

    /** The resolved workload mix (meaningless under .traces()). */
    const Workload &workload() const { return workload_; }

    /** Canonical mechanism name, e.g. for table headers. */
    std::string mechanismName() const { return cfg_.mechanismName(); }

    /**
     * The resolved DRAM device spec (cached at build(); cfg_.dramSpec
     * is already canonicalised, so aliases/case never leak into
     * output). The reference stays valid for the process lifetime --
     * registry entries are never removed.
     */
    const DramSpec &dramSpec() const { return *spec_; }

    /** Canonical DRAM spec name, e.g. "DDR4-2400". */
    const std::string &dramSpecName() const;

    /** Canonical address map name, e.g. "burst-ch" (cached at
     *  build(), like the spec). */
    const std::string &addressMapName() const { return cfg_.addressMap; }

    /**
     * The fully-resolved DRAM geometry this simulation will run on:
     * the configured MemOrg after the policy bundle and finalize()
     * (density-derived rows, spec burst size, and any spec-derived
     * sub-channel expansion of the channel count). For topology
     * reporting -- run() re-resolves from scratch.
     */
    MemOrg resolvedOrg() const;

    Tick warmupTicks() const { return runner_.warmupTicks(); }
    Tick measureTicks() const { return runner_.measureTicks(); }

    /**
     * Warmup, measure, and compute metrics/energy.
     *
     * Catalogue-workload runs are repeatable (each run() builds a
     * fresh System; the alone-IPC baseline is memoized). Runs driven
     * by .traces() consume the caller's TraceSource state, so a
     * second run() continues from wherever the sources stopped --
     * rebuild the sources to repeat one.
     */
    RunResult run();

    /**
     * Simulate the workload's alone-IPC baselines now, sharded across
     * @p jobs worker threads (sim/parallel.hh), so the single-threaded
     * run() that follows finds them memoized. A no-op for .traces()
     * runs, which have no baselines.
     */
    void prewarmBaselines(int jobs);

  private:
    Simulation(ExperimentConfig cfg, Workload workload,
               std::vector<TraceSource *> traces);

    ExperimentConfig cfg_;
    const DramSpec *spec_;  ///< Resolved once; registry-owned.
    Workload workload_;
    std::vector<TraceSource *> traces_;
    Runner runner_;
};

} // namespace dsarp

#endif // DSARP_SIM_SIMULATION_HH
