#include "sim/system.hh"

#include <algorithm>

#include "common/log.hh"
#include "refresh/registry.hh"

namespace dsarp {

namespace {

SystemConfig
finalized(SystemConfig cfg)
{
    // Canonicalise the refresh mechanism first: a named policy's config
    // bundle may rewrite the timing profile the rest of finalize() and
    // TimingParams depend on.
    RefreshPolicyRegistry::instance().resolve(cfg.mem);
    cfg.finalize();
    return cfg;
}

} // namespace

System::System(const SystemConfig &cfg, const std::vector<int> &bench_idx)
    : cfg_(finalized(cfg)), timing_(TimingParams::forConfig(cfg_.mem)),
      map_(AddressMapRegistry::instance().make(cfg_.mem.addressMap,
                                               cfg_.mem.org))
{
    DSARP_ASSERT(static_cast<int>(bench_idx.size()) == cfg_.numCores,
                 "one benchmark per core required");
    DSARP_ASSERT(!cfg_.traffic.enabled(),
                 "closed-loop ctor with traffic enabled; use "
                 "System(cfg)");

    // Cores share the row space in eight fixed partitions so footprints
    // are comparable across core counts (Table 3 sweeps 2/4/8 cores).
    const int partitions = std::max(8, cfg_.numCores);
    const auto &table = benchmarkTable();
    for (int c = 0; c < cfg_.numCores; ++c) {
        const int idx = bench_idx[c];
        DSARP_ASSERT(idx >= 0 && idx < static_cast<int>(table.size()),
                     "benchmark index out of range");
        ownedTraces_.push_back(std::make_unique<SyntheticTrace>(
            table[idx].profile, *map_, c, partitions,
            cfg_.seed + 0x1000 * (c + 1)));
        traces_.push_back(ownedTraces_.back().get());
    }
    build();
}

System::System(const SystemConfig &cfg,
               const std::vector<TraceSource *> &traces)
    : cfg_(finalized(cfg)), timing_(TimingParams::forConfig(cfg_.mem)),
      map_(AddressMapRegistry::instance().make(cfg_.mem.addressMap,
                                               cfg_.mem.org)),
      traces_(traces)
{
    DSARP_ASSERT(static_cast<int>(traces_.size()) == cfg_.numCores,
                 "one trace per core required");
    DSARP_ASSERT(!cfg_.traffic.enabled(),
                 "closed-loop ctor with traffic enabled; use "
                 "System(cfg)");
    build();
}

System::System(const SystemConfig &cfg)
    : cfg_(finalized(cfg)), timing_(TimingParams::forConfig(cfg_.mem)),
      map_(AddressMapRegistry::instance().make(cfg_.mem.addressMap,
                                               cfg_.mem.org))
{
    DSARP_ASSERT(cfg_.traffic.enabled(),
                 "open-loop ctor needs traffic.mode != off");
    build();
}

void
System::build()
{
    const bool openLoop = cfg_.traffic.enabled();
    if (openLoop)
        tenantLat_.resize(cfg_.traffic.tenants);

    cmdLogs_.resize(cfg_.mem.org.channels);
    refBusyUntil_.assign(cfg_.mem.org.channels, 0);
    for (ChannelId ch = 0; ch < cfg_.mem.org.channels; ++ch) {
        controllers_.push_back(std::make_unique<ChannelController>(
            ch, &cfg_.mem, &timing_, cfg_.seed));
        if (cfg_.enableChecker)
            controllers_.back()->setCommandLog(&cmdLogs_[ch]);
        controllers_.back()->channel().setRefreshSpanCallback(
            [this, ch](Tick start, Tick end) {
                onRefreshSpan(ch, start, end);
            });
        if (openLoop) {
            // Open-loop deliveries only feed the per-tenant latency
            // tally (req.core carries the tenant id, req.arrival the
            // generation tick, so backlog queueing is included). A
            // completion cannot enable any injection, so the injector
            // needs no wake here.
            controllers_.back()->setReadCallback(
                [this](const Request &req, Tick done) {
                    tenantLat_[req.core].add(done - req.arrival);
                });
            continue;
        }
        controllers_.back()->setReadCallback(
            [this](const Request &req, Tick) {
                // A delivery voids the target core's dormant certificate:
                // settle its inert span against the pre-delivery state
                // (the stall accounting reads completed_), then make it
                // execute this tick -- cores run after controllers, so
                // the cycle engine's order is preserved.
                if (eventRun_) {
                    const std::size_t c =
                        static_cast<std::size_t>(req.core);
                    coreCatchUp(c, now_);
                    coreWake_[c] = std::min(coreWake_[c], now_);
                }
                cores_[req.core]->onReadComplete(req.id);
            });
    }

    if (openLoop) {
        injector_ = std::make_unique<TrafficInjector>(cfg_.traffic,
                                                      *map_, cfg_.seed);
        injector_->bind(
            [this](const Request &reqIn) {
                Request req = reqIn;
                req.loc = map_->decode(req.addr);
                const std::size_t ch =
                    static_cast<std::size_t>(req.loc.channel);
                // Same dance as the core bind hooks: the injector runs
                // in the core phase, so the dormant target controller
                // must account through now_ + 1 before mutating, then
                // wake for the first tick that can see the request.
                if (eventRun_)
                    ctlCatchUp(ch, now_ + 1);
                const bool ok = controllers_[ch]->enqueueRead(req, now_);
                if (ok && eventRun_)
                    ctlWake_[ch] = std::min(ctlWake_[ch], now_ + 1);
                return ok;
            },
            [this](const Request &reqIn) {
                Request req = reqIn;
                req.loc = map_->decode(req.addr);
                const std::size_t ch =
                    static_cast<std::size_t>(req.loc.channel);
                if (eventRun_)
                    ctlCatchUp(ch, now_ + 1);
                const bool ok = controllers_[ch]->enqueueWrite(req, now_);
                if (ok && eventRun_)
                    ctlWake_[ch] = std::min(ctlWake_[ch], now_ + 1);
                return ok;
            });
        return;
    }

    for (int c = 0; c < cfg_.numCores; ++c) {
        cores_.push_back(
            std::make_unique<Core>(c, &cfg_.core, traces_[c]));
        Core *core = cores_.back().get();
        core->bind(
            [this, c](std::uint64_t id, Addr addr) {
                Request req;
                req.id = id;
                req.core = c;
                req.isWrite = false;
                req.addr = addr;
                req.loc = map_->decode(addr);
                req.arrival = now_;
                const std::size_t ch =
                    static_cast<std::size_t>(req.loc.channel);
                // Controllers tick before cores, so a dormant target's
                // tick at now_ sampled the pre-enqueue queues: account
                // it through now_ before mutating, then wake it for the
                // tick that can first see the request.
                if (eventRun_)
                    ctlCatchUp(ch, now_ + 1);
                const bool ok =
                    controllers_[ch]->enqueueRead(req, now_);
                if (ok && eventRun_)
                    ctlWake_[ch] = std::min(ctlWake_[ch], now_ + 1);
                return ok;
            },
            [this, c](Addr addr) {
                Request req;
                req.id = 0;
                req.core = c;
                req.isWrite = true;
                req.addr = addr;
                req.loc = map_->decode(addr);
                req.arrival = now_;
                const std::size_t ch =
                    static_cast<std::size_t>(req.loc.channel);
                if (eventRun_)
                    ctlCatchUp(ch, now_ + 1);
                const bool ok =
                    controllers_[ch]->enqueueWrite(req, now_);
                if (ok && eventRun_)
                    ctlWake_[ch] = std::min(ctlWake_[ch], now_ + 1);
                return ok;
            });
    }
}

void
System::run(Tick ticks)
{
    const Tick end = now_ + ticks;
    if (cfg_.engine == "event")
        runEvent(end);
    else
        runCycle(end);
}

void
System::runCycle(Tick end)
{
    while (now_ < end) {
        for (auto &ctl : controllers_)
            ctl->tick(now_);
        if (injector_)
            injector_->tick(now_);
        for (auto &core : cores_)
            core->tick();
        ++now_;
    }
}

void
System::runEvent(Tick end)
{
    // Per-component skip-to-next-deadline loop. Each controller and
    // core keeps its own clock: a wake tick (the earliest instant it
    // could act differently, per its nextWake() certificate) and an
    // accounted-through cursor. A component executes only at its wake
    // ticks; the inert span in between is bulk-accounted through
    // skipTicks() -- linear stat accrual and RNG replay -- exactly
    // when the component is next touched. Every executed tick runs in
    // the cycle loop's order (controllers ascending, then cores
    // ascending), and every cross-component interaction re-wakes its
    // target first (enqueues via the bind() hooks, read deliveries via
    // the read callback, queue-slot frees via poppedWithRejection), so
    // commands, stats, and random streams stay bit-identical to
    // runCycle().
    // The open-loop injector occupies the single core slot: it ticks
    // in the core phase, pop-wakes re-arm its blocked backlog heads,
    // and its nextWake() certificate is the next arrival instant.
    const std::size_t ncs = controllers_.size();
    const std::size_t nks = injector_ ? 1 : cores_.size();
    ctlWake_.assign(ncs, now_);
    ctlNext_.assign(ncs, now_);
    coreWake_.assign(nks, now_);
    coreNext_.assign(nks, now_);
    ctlRan_.assign(ncs, 0);
    coreRan_.assign(nks, 0);
    eventRun_ = true;

    while (now_ < end) {
        const Tick t = now_;

        for (std::size_t i = 0; i < ncs; ++i) {
            if (ctlWake_[i] > t)
                continue;
            ctlCatchUp(i, t);
            controllers_[i]->tick(t);
            ctlNext_[i] = t + 1;
            ctlRan_[i] = 1;
            if (controllers_[i]->consumePoppedWithRejection()) {
                for (std::size_t j = 0; j < nks; ++j)
                    coreWake_[j] = std::min(coreWake_[j], t);
            }
        }
        for (std::size_t j = 0; j < nks; ++j) {
            if (coreWake_[j] > t)
                continue;
            coreCatchUp(j, t);
            if (injector_)
                injector_->tick(t);
            else
                cores_[j]->tick();
            coreNext_[j] = t + 1;
            coreRan_[j] = 1;
        }

        // Re-certify what executed; hook-set wakes (always t+1) stand.
        Tick next = end;
        for (std::size_t i = 0; i < ncs; ++i) {
            if (ctlRan_[i]) {
                ctlRan_[i] = 0;
                const Tick w = controllers_[i]->nextWake(t);
                ctlWake_[i] = w <= t ? t + 1 : w;
            }
            next = std::min(next, ctlWake_[i]);
        }
        for (std::size_t j = 0; j < nks; ++j) {
            if (coreRan_[j]) {
                coreRan_[j] = 0;
                const Tick w = injector_ ? injector_->nextWake(t)
                                         : cores_[j]->nextWake(t);
                coreWake_[j] = w <= t ? t + 1 : w;
            }
            next = std::min(next, coreWake_[j]);
        }
        now_ = std::max(next, t + 1);
    }

    // The cycle loop's last tick is end-1: account every dormant tail.
    for (std::size_t i = 0; i < ncs; ++i)
        ctlCatchUp(i, end);
    for (std::size_t j = 0; j < nks; ++j)
        coreCatchUp(j, end);
    eventRun_ = false;
}

void
System::ctlCatchUp(std::size_t i, Tick t)
{
    if (ctlNext_[i] < t) {
        controllers_[i]->skipTicks(ctlNext_[i], t - ctlNext_[i]);
        ctlNext_[i] = t;
    }
}

void
System::coreCatchUp(std::size_t j, Tick t)
{
    if (coreNext_[j] < t) {
        if (injector_)
            injector_->skipTicks(t - coreNext_[j]);
        else
            cores_[j]->skipTicks(t - coreNext_[j]);
        coreNext_[j] = t;
    }
}

void
System::onRefreshSpan(ChannelId ch, Tick start, Tick end)
{
    // Spans arrive in issue order, so every sibling frontier > s below
    // belongs to a burst already running at s; billing the span's
    // intersection with the union of the others' makes the system-wide
    // sum exactly sum_t max(0, refreshing channels - 1).
    if (end <= refBusyUntil_[ch])
        return;  // Re-billing time this channel already accounted.
    const Tick s = std::max(start, refBusyUntil_[ch]);
    Tick others = 0;
    for (std::size_t c = 0; c < refBusyUntil_.size(); ++c) {
        if (static_cast<ChannelId>(c) != ch)
            others = std::max(others, refBusyUntil_[c]);
    }
    if (others > s) {
        controllers_[ch]->channel().addRefOverlapTicks(
            std::min(end, others) - s);
    }
    refBusyUntil_[ch] = end;
}

void
System::resetStats()
{
    for (auto &core : cores_)
        core->resetStats();
    if (injector_)
        injector_->resetStats();
    for (auto &hist : tenantLat_)
        hist.reset();
    for (auto &ctl : controllers_)
        ctl->resetStats();
}

std::vector<double>
System::coreIpc() const
{
    std::vector<double> out;
    out.reserve(cores_.size());
    for (const auto &core : cores_)
        out.push_back(core->stats().ipc());
    return out;
}

} // namespace dsarp
