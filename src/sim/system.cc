#include "sim/system.hh"

#include <algorithm>

#include "common/log.hh"
#include "refresh/registry.hh"

namespace dsarp {

namespace {

SystemConfig
finalized(SystemConfig cfg)
{
    // Canonicalise the refresh mechanism first: a named policy's config
    // bundle may rewrite the timing profile the rest of finalize() and
    // TimingParams depend on.
    RefreshPolicyRegistry::instance().resolve(cfg.mem);
    cfg.finalize();
    return cfg;
}

} // namespace

System::System(const SystemConfig &cfg, const std::vector<int> &bench_idx)
    : cfg_(finalized(cfg)), timing_(TimingParams::forConfig(cfg_.mem)),
      map_(cfg_.mem.org)
{
    DSARP_ASSERT(static_cast<int>(bench_idx.size()) == cfg_.numCores,
                 "one benchmark per core required");

    // Cores share the row space in eight fixed partitions so footprints
    // are comparable across core counts (Table 3 sweeps 2/4/8 cores).
    const int partitions = std::max(8, cfg_.numCores);
    const auto &table = benchmarkTable();
    for (int c = 0; c < cfg_.numCores; ++c) {
        const int idx = bench_idx[c];
        DSARP_ASSERT(idx >= 0 && idx < static_cast<int>(table.size()),
                     "benchmark index out of range");
        ownedTraces_.push_back(std::make_unique<SyntheticTrace>(
            table[idx].profile, map_, c, partitions,
            cfg_.seed + 0x1000 * (c + 1)));
        traces_.push_back(ownedTraces_.back().get());
    }
    build();
}

System::System(const SystemConfig &cfg,
               const std::vector<TraceSource *> &traces)
    : cfg_(finalized(cfg)), timing_(TimingParams::forConfig(cfg_.mem)),
      map_(cfg_.mem.org), traces_(traces)
{
    DSARP_ASSERT(static_cast<int>(traces_.size()) == cfg_.numCores,
                 "one trace per core required");
    build();
}

void
System::build()
{
    cmdLogs_.resize(cfg_.mem.org.channels);
    for (ChannelId ch = 0; ch < cfg_.mem.org.channels; ++ch) {
        controllers_.push_back(std::make_unique<ChannelController>(
            ch, &cfg_.mem, &timing_, cfg_.seed));
        if (cfg_.enableChecker)
            controllers_.back()->setCommandLog(&cmdLogs_[ch]);
        controllers_.back()->setReadCallback(
            [this](const Request &req, Tick) {
                cores_[req.core]->onReadComplete(req.id);
            });
    }

    for (int c = 0; c < cfg_.numCores; ++c) {
        cores_.push_back(
            std::make_unique<Core>(c, &cfg_.core, traces_[c]));
        Core *core = cores_.back().get();
        core->bind(
            [this, c](std::uint64_t id, Addr addr) {
                Request req;
                req.id = id;
                req.core = c;
                req.isWrite = false;
                req.addr = addr;
                req.loc = map_.decode(addr);
                req.arrival = now_;
                return controllers_[req.loc.channel]->enqueueRead(req,
                                                                  now_);
            },
            [this, c](Addr addr) {
                Request req;
                req.id = 0;
                req.core = c;
                req.isWrite = true;
                req.addr = addr;
                req.loc = map_.decode(addr);
                req.arrival = now_;
                return controllers_[req.loc.channel]->enqueueWrite(req,
                                                                   now_);
            });
    }
}

void
System::run(Tick ticks)
{
    const Tick end = now_ + ticks;
    while (now_ < end) {
        for (auto &ctl : controllers_)
            ctl->tick(now_);
        for (auto &core : cores_)
            core->tick();
        ++now_;
    }
}

void
System::resetStats()
{
    for (auto &core : cores_)
        core->resetStats();
    for (auto &ctl : controllers_)
        ctl->resetStats();
}

std::vector<double>
System::coreIpc() const
{
    std::vector<double> out;
    out.reserve(cores_.size());
    for (const auto &core : cores_)
        out.push_back(core->stats().ipc());
    return out;
}

} // namespace dsarp
