/**
 * @file
 * The full simulated system: cores driving synthetic traces through
 * per-channel memory controllers into the DRAM model.
 *
 * Most callers should not construct a System directly: the Simulation
 * facade (sim/simulation.hh) wraps construction, warmup, measurement,
 * metrics, and the energy model behind a fluent builder -- see
 * examples/quickstart.cpp. System remains public for code that needs
 * tick-level control or direct controller access.
 */

#ifndef DSARP_SIM_SYSTEM_HH
#define DSARP_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "controller/controller.hh"
#include "core/core.hh"
#include "core/trace.hh"
#include "dram/address.hh"
#include "dram/timing.hh"
#include "workload/arrival.hh"
#include "workload/benchmark.hh"

namespace dsarp {

class System
{
  public:
    /**
     * Build a system running one benchmark (by catalogue index) per core.
     * @p benchIdx must have cfg.numCores entries.
     */
    System(const SystemConfig &cfg, const std::vector<int> &benchIdx);

    /**
     * Build a system with caller-provided trace sources (one per core);
     * the sources must outlive the System.
     */
    System(const SystemConfig &cfg,
           const std::vector<TraceSource *> &traces);

    /**
     * Build an open-loop system: cfg.traffic must be enabled. The
     * TrafficInjector replaces the core models; per-tenant read
     * latencies accumulate in tenantLatency().
     */
    explicit System(const SystemConfig &cfg);

    /**
     * Advance the simulation by @p ticks DRAM cycles using the engine
     * selected by SystemConfig::engine ("cycle" or "event"); both
     * produce bit-identical commands, stats, and RNG streams.
     */
    void run(Tick ticks);

    /** Zero all measurement counters; microarchitectural state persists. */
    void resetStats();

    Tick now() const { return now_; }
    int numCores() const { return static_cast<int>(cores_.size()); }
    int numChannels() const
    {
        return static_cast<int>(controllers_.size());
    }

    const Core &core(int i) const { return *cores_[i]; }
    ChannelController &controller(int ch) { return *controllers_[ch]; }
    const ChannelController &controller(int ch) const
    {
        return *controllers_[ch];
    }

    const AddressMap &addressMap() const { return *map_; }
    const TimingParams &timing() const { return timing_; }
    const SystemConfig &config() const { return cfg_; }

    /** The open-loop front end (null in closed-loop runs). */
    const TrafficInjector *injector() const { return injector_.get(); }

    /** Per-tenant read-latency histogram (open-loop runs only). */
    const LatencyHistogram &tenantLatency(int i) const
    {
        return tenantLat_[i];
    }

    /** Per-core IPC over the current measurement window. */
    std::vector<double> coreIpc() const;

    /** Per-channel command logs (non-null only with enableChecker). */
    const std::vector<TimedCommand> &commandLog(int ch) const
    {
        return cmdLogs_[ch];
    }

  private:
    void build();
    void runCycle(Tick end);
    void runEvent(Tick end);
    /** Bulk-account a component's inert span [itsNext, t) (event engine). */
    void ctlCatchUp(std::size_t i, Tick t);
    void coreCatchUp(std::size_t j, Tick t);

    /**
     * Cross-channel refresh-overlap accounting: channel @p ch put a
     * refresh burst spanning [start, end) on its bus. Ticks the span
     * shares with a sibling channel's in-flight refresh are billed to
     * @p ch's ChannelStats::refOverlapTicks (the system-wide sum is
     * sum_t max(0, refreshing channels - 1): each arriving span bills
     * its intersection with the union of the others').
     */
    void onRefreshSpan(ChannelId ch, Tick start, Tick end);

    SystemConfig cfg_;
    TimingParams timing_;
    std::unique_ptr<AddressMap> map_;  ///< Registry-resolved interleave.
    Tick now_ = 0;

    std::vector<std::unique_ptr<SyntheticTrace>> ownedTraces_;
    std::vector<TraceSource *> traces_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::unique_ptr<TrafficInjector> injector_;
    std::vector<LatencyHistogram> tenantLat_;
    std::vector<std::unique_ptr<ChannelController>> controllers_;
    std::vector<std::vector<TimedCommand>> cmdLogs_;

    /** Per-channel end of the latest refresh burst (onRefreshSpan). */
    std::vector<Tick> refBusyUntil_;

    /** @name Per-component clocks of the event engine (see runEvent()).
     *  wake = earliest tick the component must execute; next = first
     *  tick not yet accounted (executed or skipped). */
    /// @{
    std::vector<Tick> ctlWake_, ctlNext_, coreWake_, coreNext_;
    std::vector<std::uint8_t> ctlRan_, coreRan_;
    bool eventRun_ = false;
    /// @}
};

} // namespace dsarp

#endif // DSARP_SIM_SYSTEM_HH
