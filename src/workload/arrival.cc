#include "workload/arrival.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "common/strings.hh"
#include "core/trace_file.hh"

namespace dsarp {

namespace {

/** Standard exponential variate (mean 1); u in [0,1) keeps log finite. */
double
expDraw(Rng &rng)
{
    return -std::log(1.0 - rng.uniform());
}

} // namespace

std::vector<TrafficRecord>
readDramSimTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DSARP_FATALF("cannot open trace file '%s'", path.c_str());
    return readDramSimTrace(in, path);
}

std::vector<TrafficRecord>
readDramSimTrace(std::istream &in, const std::string &path)
{
    std::vector<TrafficRecord> records;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::vector<std::string> tokens;
        std::string tok;
        while (fields >> tok)
            tokens.push_back(tok);
        if (tokens.empty())
            continue;

        if (tokens.size() != 3) {
            DSARP_FATALF("malformed trace line: expected '0x<addr> "
                         "READ|WRITE <cycle>', got %zu field(s) (%s:%d)",
                         tokens.size(), path.c_str(), lineno);
        }
        TrafficRecord rec;
        rec.addr = static_cast<Addr>(
            parseTraceHex(tokens[0], "address", path, lineno));
        const std::string op = lowered(tokens[1]);
        if (op == "read") {
            rec.isWrite = false;
        } else if (op == "write") {
            rec.isWrite = true;
        } else {
            DSARP_FATALF("malformed trace line: op '%s' must be READ or "
                         "WRITE (%s:%d)",
                         tokens[1].c_str(), path.c_str(), lineno);
        }
        char *end = nullptr;
        errno = 0;
        const long long cycle = std::strtoll(tokens[2].c_str(), &end, 10);
        if (end == tokens[2].c_str() || *end != '\0' ||
            errno == ERANGE || cycle < 0) {
            DSARP_FATALF("malformed trace line: cycle '%s' is not a "
                         "non-negative integer (%s:%d)",
                         tokens[2].c_str(), path.c_str(), lineno);
        }
        rec.cycle = static_cast<Tick>(cycle);
        if (!records.empty() && rec.cycle < records.back().cycle) {
            DSARP_FATALF("malformed trace line: cycle %lld goes "
                         "backwards (previous %llu) (%s:%d)",
                         cycle,
                         static_cast<unsigned long long>(
                             records.back().cycle),
                         path.c_str(), lineno);
        }
        records.push_back(rec);
    }
    if (records.empty())
        DSARP_FATALF("trace file '%s' has no records", path.c_str());
    return records;
}

void
writeDramSimTrace(const std::string &path,
                  const std::vector<TrafficRecord> &records)
{
    std::ofstream out(path);
    if (!out)
        DSARP_FATALF("cannot write trace file '%s'", path.c_str());
    out << "# dramsim trace: 0x<addr> READ|WRITE <cycle>\n";
    for (const TrafficRecord &rec : records) {
        out << "0x" << std::hex << rec.addr << std::dec << " "
            << (rec.isWrite ? "WRITE" : "READ") << " " << rec.cycle
            << "\n";
    }
}

TrafficInjector::TrafficInjector(const TrafficConfig &cfg,
                                 const AddressMap &map,
                                 std::uint64_t seed)
    : cfg_(cfg), rowBytes_(map.org().rowBytes),
      lineBytes_(map.org().lineBytes)
{
    DSARP_ASSERT(cfg_.enabled(), "TrafficInjector needs traffic.mode");

    const Addr capacity = map.capacityBytes();
    const Addr rowBytes = static_cast<Addr>(rowBytes_);
    Addr slice = capacity / static_cast<Addr>(cfg_.tenants);
    slice -= slice % rowBytes;
    DSARP_ASSERT(slice >= rowBytes,
                 "tenant partition smaller than one row");

    const std::vector<int> prios = cfg_.priorityList();
    tenants_.resize(static_cast<std::size_t>(cfg_.tenants));
    for (int i = 0; i < cfg_.tenants; ++i) {
        Tenant &t = tenants_[static_cast<std::size_t>(i)];
        t.id = i;
        t.priority = prios[static_cast<std::size_t>(i)];
        t.base = static_cast<Addr>(i) * slice;
        t.size = slice;
        t.rng = Rng(seed + 0x2000 * static_cast<std::uint64_t>(i + 1));
        const Addr rows = slice / rowBytes;
        t.hotRows.reserve(static_cast<std::size_t>(cfg_.hotRows));
        for (int h = 0; h < cfg_.hotRows; ++h)
            t.hotRows.push_back(t.base + t.rng.below(rows) * rowBytes);
        if (cfg_.mode == "bursty") {
            // Start inside an ON window beginning at time 0.
            t.burstEnd = expDraw(t.rng) * cfg_.burstLenCycles;
        }
        if (cfg_.mode != "trace")
            t.nextArrival = drawGap(t);
    }

    if (cfg_.mode == "trace") {
        trace_ = readDramSimTrace(cfg_.tracePath);
        traceSpan_ = trace_.back().cycle + 1;
        tenants_[0].nextArrival =
            static_cast<double>(trace_.front().cycle);
    }

    drainOrder_.resize(tenants_.size());
    for (std::size_t i = 0; i < tenants_.size(); ++i)
        drainOrder_[i] = static_cast<int>(i);
    std::stable_sort(drainOrder_.begin(), drainOrder_.end(),
                     [this](int a, int b) {
                         return tenants_[static_cast<std::size_t>(a)]
                                    .priority >
                             tenants_[static_cast<std::size_t>(b)]
                                 .priority;
                     });
}

void
TrafficInjector::bind(Enqueue enqueueRead, Enqueue enqueueWrite)
{
    enqueueRead_ = std::move(enqueueRead);
    enqueueWrite_ = std::move(enqueueWrite);
}

double
TrafficInjector::drawGap(Tenant &t)
{
    // Per-tenant mean rate in requests per cycle: the aggregate key is
    // split evenly across tenants.
    const double rate =
        cfg_.ratePerKilocycle / 1000.0 / cfg_.tenants;
    if (cfg_.mode == "poisson")
        return t.nextArrival + expDraw(t.rng) / rate;
    if (cfg_.mode == "bursty") {
        // Two-state MMPP: ON windows at burstFactor x the mean rate,
        // OFF gaps sized so the long-run average stays `rate`.
        const double onRate = rate * cfg_.burstFactor;
        const double meanOn = cfg_.burstLenCycles;
        const double meanOff = meanOn * (cfg_.burstFactor - 1.0);
        double cur = t.nextArrival;
        for (;;) {
            const double gap = expDraw(t.rng) / onRate;
            if (cur + gap <= t.burstEnd)
                return cur + gap;
            // Crossed the ON end (memoryless, so redrawing in the
            // next window keeps the process exact): jump the OFF gap
            // and open the next ON window.
            cur = t.burstEnd + expDraw(t.rng) * meanOff;
            t.burstEnd = cur + expDraw(t.rng) * meanOn;
        }
    }
    // Diurnal: inhomogeneous Poisson by thinning against the peak
    // rate, so the instantaneous rate tracks the sinusoid exactly.
    const double peak = rate * (1.0 + cfg_.diurnalAmp);
    double cur = t.nextArrival;
    for (;;) {
        // dsarp-analyze: allow(fp-accumulation-order): one tenant's
        // arrival instants are a single serial stream; the sum order
        // is the stream order and cannot be resharded.
        cur += expDraw(t.rng) / peak;
        const double phase =
            2.0 * M_PI * cur / cfg_.diurnalPeriod;
        const double inst =
            rate * (1.0 + cfg_.diurnalAmp * std::sin(phase));
        if (t.rng.uniform() * peak <= inst)
            return cur;
    }
}

Request
TrafficInjector::makeRequest(Tenant &t, Tick now)
{
    Request req;
    req.id = nextId_++;
    req.core = t.id;
    req.arrival = now;
    if (cfg_.mode == "trace") {
        const TrafficRecord &rec = trace_[traceCursor_];
        req.addr = rec.addr;
        req.isWrite = rec.isWrite;
        if (++traceCursor_ >= trace_.size()) {
            traceCursor_ = 0;
            traceOffset_ += traceSpan_;
        }
        return req;
    }
    const Addr lineBytes = static_cast<Addr>(lineBytes_);
    const bool hot = t.rng.uniform() * 100.0 < cfg_.hotRowPct;
    if (hot) {
        const Addr rowBase = t.hotRows[t.rng.below(t.hotRows.size())];
        const Addr lines = static_cast<Addr>(rowBytes_) / lineBytes;
        req.addr = rowBase + t.rng.below(lines) * lineBytes;
    } else {
        req.addr = t.base + t.rng.below(t.size / lineBytes) * lineBytes;
    }
    req.isWrite = t.rng.uniform() * 100.0 >= cfg_.readPct;
    return req;
}

void
TrafficInjector::generate(Tenant &t, Tick now)
{
    while (t.nextArrival <= static_cast<double>(now)) {
        t.backlog.push_back(makeRequest(t, now));
        ++t.stats.generated;
        if (cfg_.mode == "trace") {
            t.nextArrival = static_cast<double>(
                trace_[traceCursor_].cycle + traceOffset_);
        } else {
            t.nextArrival = drawGap(t);
        }
    }
}

void
TrafficInjector::tick(Tick now)
{
    for (auto &t : tenants_)
        generate(t, now);
    for (int id : drainOrder_) {
        Tenant &t = tenants_[static_cast<std::size_t>(id)];
        while (!t.backlog.empty()) {
            const Request &req = t.backlog.front();
            const bool ok = req.isWrite ? enqueueWrite_(req)
                                        : enqueueRead_(req);
            if (!ok)
                break;  // Head-of-line per tenant; retry on pop-wake.
            ++t.stats.injected;
            if (!req.isWrite)
                ++t.stats.reads;
            t.backlog.pop_front();
        }
    }
    for (auto &t : tenants_) {
        t.stats.backlogSum += t.backlog.size();
        ++t.stats.ticks;
    }
}

Tick
TrafficInjector::nextWake(Tick now) const
{
    Tick wake = kTickNever;
    for (const auto &t : tenants_) {
        const Tick w =
            static_cast<Tick>(std::ceil(t.nextArrival));
        wake = std::min(wake, w);
    }
    return std::max(wake, now + 1);
}

void
TrafficInjector::skipTicks(Tick ticks)
{
    // Dormant spans cannot change any backlog: no arrivals are due
    // (nextWake certifies it) and blocked heads only unblock at pops,
    // which re-wake the injector. Occupancy accrues linearly.
    for (auto &t : tenants_) {
        t.stats.backlogSum +=
            ticks * static_cast<std::uint64_t>(t.backlog.size());
        t.stats.ticks += ticks;
    }
}

void
TrafficInjector::resetStats()
{
    for (auto &t : tenants_)
        t.stats = TenantStats{};
}

std::size_t
TrafficInjector::backlog() const
{
    std::size_t n = 0;
    for (const auto &t : tenants_)
        n += t.backlog.size();
    return n;
}

} // namespace dsarp
