/**
 * @file
 * Open-loop traffic front end: arrival processes, tenant partitions,
 * and the injector that replaces the closed-loop core models.
 *
 * The closed-loop cores absorb memory pressure in stall time, which
 * hides exactly the signal the paper's refresh mechanisms differ on:
 * the read-latency tail. The TrafficInjector generates requests at an
 * externally fixed rate -- Poisson, bursty (two-state Markov-modulated
 * Poisson), diurnal (sinusoidally modulated), or an external
 * DRAMSim-style trace -- and keeps injecting regardless of
 * backpressure, so queueing delay lands in the latency distribution
 * where an SLO analysis can see it.
 *
 * Determinism contract: every stochastic choice flows through one Rng
 * per tenant, and draws happen only at arrival-generation instants
 * (never per tick), so the cycle and event engines -- and any
 * `--jobs` sharding -- produce bit-identical request streams.
 */

#ifndef DSARP_WORKLOAD_ARRIVAL_HH
#define DSARP_WORKLOAD_ARRIVAL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "controller/request.hh"
#include "dram/address.hh"

namespace dsarp {

/** One request of a DRAMSim-style external trace. */
struct TrafficRecord
{
    Addr addr = 0;
    bool isWrite = false;
    Tick cycle = 0;
};

/**
 * Parse a DRAMSim-style trace: one request per line as
 * `0x<addr> READ|WRITE <cycle>` (op case-insensitive, cycles
 * non-negative and non-decreasing), '#' comments and blank lines
 * ignored. Fatal named errors with file:line context on malformed
 * input, matching TraceFileSource's contract.
 */
std::vector<TrafficRecord> readDramSimTrace(const std::string &path);

/**
 * Parse DRAMSim-style trace lines from @p in; @p name labels
 * malformed-line errors the way a path would. The parsing layer of
 * the path overload with the I/O separated, so tests and the fuzz
 * harnesses can drive it from memory.
 */
std::vector<TrafficRecord> readDramSimTrace(std::istream &in,
                                            const std::string &name);

/** Serialize records to @p path in the same format. */
void writeDramSimTrace(const std::string &path,
                       const std::vector<TrafficRecord> &records);

/**
 * The open-loop request generator. Occupies the System's core slot:
 * it ticks after the controllers, exposes the same
 * nextWake()/skipTicks() certificates the event engine needs, and
 * injects through bound callbacks that mirror Core::bind().
 */
class TrafficInjector
{
  public:
    /**
     * Inject one request (arrival tick and tenant id pre-set by the
     * injector); returns false when the target queue rejected it.
     */
    using Enqueue = std::function<bool(const Request &)>;

    /** Per-tenant measurement counters. */
    struct TenantStats
    {
        std::uint64_t generated = 0;  ///< Arrivals produced.
        std::uint64_t injected = 0;   ///< Accepted by a controller.
        std::uint64_t reads = 0;      ///< Read share of `injected`.
        std::uint64_t backlogSum = 0; ///< Backlog occupancy integral.
        Tick ticks = 0;               ///< Measurement ticks observed.
    };

    /**
     * @p cfg must already be validated (TrafficConfig::validate()).
     * Tenant partitions, hot sets, and RNG streams derive from
     * @p map's capacity and @p seed at construction.
     */
    TrafficInjector(const TrafficConfig &cfg, const AddressMap &map,
                    std::uint64_t seed);

    /** Bind the read/write injection paths (System::build()). */
    void bind(Enqueue enqueueRead, Enqueue enqueueWrite);

    /**
     * Generate the arrivals due at @p now, then drain backlogs in
     * (priority desc, tenant id asc) order, head-of-line per tenant.
     */
    void tick(Tick now);

    /**
     * Earliest future tick this injector could act differently on its
     * own: the next arrival instant of any tenant. Blocked backlog
     * heads need no self-wake -- the only event that unblocks them is
     * a queue pop, and the engine re-wakes the core slot on every pop
     * from a rejected channel.
     */
    Tick nextWake(Tick now) const;

    /** Bulk-account @p ticks dormant ticks (backlog occupancy). */
    void skipTicks(Tick ticks);

    void resetStats();

    int tenants() const { return static_cast<int>(tenants_.size()); }
    const TenantStats &tenantStats(int i) const
    {
        return tenants_[i].stats;
    }
    int tenantPriority(int i) const { return tenants_[i].priority; }

    /** [base, base+size) byte partition of tenant @p i. */
    Addr tenantBase(int i) const { return tenants_[i].base; }
    Addr tenantSize(int i) const { return tenants_[i].size; }

    /** Total queued requests across tenants (tests, debugging). */
    std::size_t backlog() const;

  private:
    struct Tenant
    {
        int id = 0;
        int priority = 1;
        Addr base = 0;
        Addr size = 0;
        std::vector<Addr> hotRows;  ///< Hot-set row base addresses.
        Rng rng{0};
        double nextArrival = 0.0;   ///< Continuous-time cursor.
        double burstEnd = 0.0;      ///< Bursty: current ON span end.
        std::deque<Request> backlog;
        TenantStats stats;
    };

    void generate(Tenant &t, Tick now);
    double drawGap(Tenant &t);
    Request makeRequest(Tenant &t, Tick now);

    TrafficConfig cfg_;
    int rowBytes_;
    int lineBytes_;
    std::vector<Tenant> tenants_;
    std::vector<int> drainOrder_;  ///< Tenant ids, priority desc.
    Enqueue enqueueRead_;
    Enqueue enqueueWrite_;
    std::uint64_t nextId_ = 1;

    /** Trace replay state (mode "trace"; single tenant). */
    std::vector<TrafficRecord> trace_;
    std::size_t traceCursor_ = 0;
    Tick traceOffset_ = 0;
    Tick traceSpan_ = 0;
};

} // namespace dsarp

#endif // DSARP_WORKLOAD_ARRIVAL_HH
