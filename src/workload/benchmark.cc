#include "workload/benchmark.hh"

#include "common/log.hh"

namespace dsarp {

namespace {

Benchmark
make(const char *name, double mpki, double row_locality,
     double writeback_fraction, int footprint_rows, bool random_access)
{
    Benchmark b;
    b.name = name;
    b.profile.mpki = mpki;
    b.profile.rowLocality = row_locality;
    b.profile.writebackFraction = writeback_fraction;
    b.profile.footprintRows = footprint_rows;
    b.profile.randomAccess = random_access;
    return b;
}

} // namespace

const std::vector<Benchmark> &
benchmarkTable()
{
    // Profiles are loosely modelled on the published MPKI / locality
    // behaviour of the named applications; the names are suffixed "-like"
    // because only the stream statistics are reproduced (DESIGN.md §5).
    static const std::vector<Benchmark> table = {
        // Memory non-intensive (MPKI < 10).
        make("povray-like", 0.1, 0.80, 0.10, 64, false),
        make("perlbench-like", 0.8, 0.70, 0.20, 128, false),
        make("calculix-like", 1.5, 0.75, 0.15, 128, false),
        make("gobmk-like", 2.2, 0.55, 0.25, 256, false),
        make("gcc-like", 3.0, 0.60, 0.30, 512, false),
        make("sjeng-like", 4.5, 0.40, 0.25, 512, false),
        make("h264ref-like", 6.0, 0.70, 0.30, 512, false),
        make("astar-like", 8.5, 0.35, 0.30, 1024, false),

        // Memory intensive (MPKI >= 10).
        make("omnetpp-like", 12.0, 0.25, 0.35, 2048, false),
        make("tpcc-like", 14.0, 0.15, 0.40, 4096, false),
        make("leslie3d-like", 15.0, 0.65, 0.35, 2048, false),
        make("GemsFDTD-like", 18.0, 0.60, 0.40, 4096, false),
        make("milc-like", 22.0, 0.45, 0.40, 4096, false),
        make("soplex-like", 25.0, 0.50, 0.30, 4096, false),
        make("libquantum-like", 28.0, 0.85, 0.25, 2048, false),
        make("lbm-like", 30.0, 0.75, 0.50, 4096, false),
        make("mcf-like", 35.0, 0.20, 0.35, 8192, false),
        make("stream-like", 40.0, 0.90, 0.50, 4096, false),
        make("randacc-like", 45.0, 0.00, 0.30, 8192, true),
    };
    return table;
}

int
benchmarkIndex(const std::string &name)
{
    const auto &table = benchmarkTable();
    for (int i = 0; i < static_cast<int>(table.size()); ++i) {
        if (table[i].name == name)
            return i;
    }
    DSARP_FATAL("unknown benchmark name");
}

std::vector<int>
intensiveBenchmarks()
{
    std::vector<int> out;
    const auto &table = benchmarkTable();
    for (int i = 0; i < static_cast<int>(table.size()); ++i) {
        if (table[i].isIntensive())
            out.push_back(i);
    }
    return out;
}

std::vector<int>
nonIntensiveBenchmarks()
{
    std::vector<int> out;
    const auto &table = benchmarkTable();
    for (int i = 0; i < static_cast<int>(table.size()); ++i) {
        if (!table[i].isIntensive())
            out.push_back(i);
    }
    return out;
}

} // namespace dsarp
