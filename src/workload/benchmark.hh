/**
 * @file
 * Synthetic benchmark catalogue.
 *
 * Each entry is a statistical stand-in for one of the paper's benchmarks
 * (SPEC CPU2006, STREAM, TPC, and an HPCC-RandomAccess-like
 * microbenchmark; Section 5). Following the paper, a benchmark is
 * memory-intensive when its LLC MPKI is at least 10.
 */

#ifndef DSARP_WORKLOAD_BENCHMARK_HH
#define DSARP_WORKLOAD_BENCHMARK_HH

#include <string>
#include <vector>

#include "core/trace.hh"

namespace dsarp {

struct Benchmark
{
    std::string name;
    TraceProfile profile;

    /** Paper classification: memory intensive iff MPKI >= 10. */
    bool isIntensive() const { return profile.mpki >= 10.0; }
};

/** The full catalogue (stable order and indices). */
const std::vector<Benchmark> &benchmarkTable();

/** Index lookup by name; fatal on unknown names. */
int benchmarkIndex(const std::string &name);

/** Indices of all intensive / non-intensive benchmarks. */
std::vector<int> intensiveBenchmarks();
std::vector<int> nonIntensiveBenchmarks();

} // namespace dsarp

#endif // DSARP_WORKLOAD_BENCHMARK_HH
