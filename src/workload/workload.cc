#include "workload/workload.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace dsarp {

namespace {

Workload
mixWorkload(int index, int category_pct, int num_cores, Rng &rng)
{
    const std::vector<int> intensive = intensiveBenchmarks();
    const std::vector<int> non_intensive = nonIntensiveBenchmarks();

    Workload w;
    w.index = index;
    w.categoryPct = category_pct;
    const int num_intensive = num_cores * category_pct / 100;
    for (int c = 0; c < num_cores; ++c) {
        const bool pick_intensive = c < num_intensive;
        const auto &pool = pick_intensive ? intensive : non_intensive;
        w.benchIdx.push_back(
            pool[static_cast<int>(rng.below(pool.size()))]);
    }
    return w;
}

} // namespace

std::vector<Workload>
makeWorkloads(int per_category, int num_cores, std::uint64_t seed)
{
    DSARP_ASSERT(per_category > 0 && num_cores > 0, "bad workload shape");
    Rng rng(seed);
    std::vector<Workload> out;
    int index = 0;
    for (int pct : {0, 25, 50, 75, 100}) {
        for (int i = 0; i < per_category; ++i)
            out.push_back(mixWorkload(index++, pct, num_cores, rng));
    }
    return out;
}

std::vector<Workload>
makeIntensiveWorkloads(int count, int num_cores, std::uint64_t seed)
{
    DSARP_ASSERT(count > 0 && num_cores > 0, "bad workload shape");
    Rng rng(seed);
    std::vector<Workload> out;
    for (int i = 0; i < count; ++i)
        out.push_back(mixWorkload(i, 100, num_cores, rng));
    return out;
}

} // namespace dsarp
