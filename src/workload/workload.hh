/**
 * @file
 * Multi-programmed workload construction (paper Section 5).
 *
 * Workloads are random mixes of benchmarks grouped into five categories
 * by the fraction of memory-intensive members: 0%, 25%, 50%, 75%, 100%.
 * The paper uses 20 mixes per category (100 workloads); the count per
 * category is a parameter so benches can scale fidelity.
 */

#ifndef DSARP_WORKLOAD_WORKLOAD_HH
#define DSARP_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "workload/benchmark.hh"

namespace dsarp {

struct Workload
{
    int index = 0;        ///< Global workload number (sort key in Fig 12).
    int categoryPct = 0;  ///< 0 / 25 / 50 / 75 / 100.
    std::vector<int> benchIdx;  ///< One benchmark index per core.
};

/**
 * Build perCategory workloads for each of the five intensity categories,
 * with numCores benchmarks each, deterministically from @p seed.
 */
std::vector<Workload> makeWorkloads(int perCategory, int numCores,
                                    std::uint64_t seed);

/** Workloads where every member is intensive (sensitivity studies). */
std::vector<Workload> makeIntensiveWorkloads(int count, int numCores,
                                             std::uint64_t seed);

} // namespace dsarp

#endif // DSARP_WORKLOAD_WORKLOAD_HH
