// Fixture: rule 5 (pointer-ordered-containers).  Pointer order is
// allocator order; it varies under ASLR and across --jobs shards.
#include <map>

struct Bank;

std::map<Bank *, int> pendingByBank_;
