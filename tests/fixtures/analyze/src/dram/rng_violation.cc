// Fixture: rule 2 (blessed-rng-sites).  A DRAM-layer draw is outside
// every blessed site and desynchronizes skipTicks replay.
struct Rng
{
    double uniform();
};

double
refreshJitter(Rng &rng)
{
    return rng.uniform();
}
