// Fixture: rule 3 (fp-accumulation-order).  A double reduction in a
// loop outside the blessed accumulation points.
double
totalEnergy(const double *per_shard, int shards)
{
    double nj = 0.0;
    for (int s = 0; s < shards; ++s)
        nj += per_shard[s];
    return nj;
}
