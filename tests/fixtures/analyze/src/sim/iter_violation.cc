// Fixture: rule 1 (ordered-iteration).  Iterating an unordered map
// into an accumulator leaks hash order into results.
#include <unordered_map>

struct RunResult
{
    long long hits = 0;
};

struct HistBuckets
{
    std::unordered_map<unsigned long long, long long> buckets_;
};

void
fold(const HistBuckets &h, RunResult &res)
{
    for (const auto &kv : h.buckets_)
        res.hits += kv.second;
}
