// Fixture: rule 4 (stat-write-outside-accounting).  A foreign TU
// poking a component's counters.
struct ChannelStats
{
    unsigned long long reads = 0;
};

struct Channel
{
    ChannelStats stats_;
};

void
fixupReads(Channel &ch)
{
    ++ch.stats_.reads;
}
