// Fixture: a documented suppression must silence the finding; this
// file contributes no expected lines.
double
serialStream(const double *gaps, int n)
{
    double at = 0.0;
    for (int i = 0; i < n; ++i) {
        // dsarp-analyze: allow(fp-accumulation-order): one serial
        // stream; the order cannot be resharded.
        at += gaps[i];
    }
    return at;
}
