/**
 * @file
 * Fuzz the dsarp_sim command-line front end (sim/cli.hh).
 *
 * The input is split on newlines into an argv vector, except that
 * --config (and its value) is dropped: it names a file to read, and a
 * fuzzer feeding it arbitrary paths would only measure the
 * filesystem. The file-parsing layer behind it is covered separately
 * by fuzz_experiment_config. DSARP_SET is cleared once so the real
 * environment cannot leak into the parse.
 *
 * Malformed flag syntax must come back as CliAction::Error with a
 * message; bad values routed into ExperimentConfig must be named
 * DSARP_FATAL errors (thrown by the FatalCatcher). Anything else is a
 * bug.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/cli.hh"
#include "tests/fuzz/fuzz_common.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    static const bool envCleared = [] {
        unsetenv("DSARP_SET");
        return true;
    }();
    (void)envCleared;

    const std::string text(reinterpret_cast<const char *>(data), size);
    std::vector<std::string> args;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t nl = text.find('\n', start);
        const std::size_t end = nl == std::string::npos ? text.size() : nl;
        if (end > start) {
            std::string arg = text.substr(start, end - start);
            if (arg == "--config") {
                // Skip the flag and its value (see file comment).
                if (nl == std::string::npos)
                    break;
                const std::size_t vnl = text.find('\n', nl + 1);
                start = vnl == std::string::npos ? text.size() + 1
                                                 : vnl + 1;
                continue;
            }
            args.push_back(std::move(arg));
        }
        if (nl == std::string::npos)
            break;
        start = nl + 1;
    }

    dsarp::fuzz::FatalCatcher catcher;
    try {
        const dsarp::CliResult res = dsarp::parseCommandLine(args);
        if (res.action == dsarp::CliAction::Error &&
            res.error.empty())
            DSARP_PANIC("CLI error without a message");
        if (res.action != dsarp::CliAction::Error &&
            !res.error.empty())
            DSARP_PANIC("CLI message without an error");
    } catch (const dsarp::fuzz::FatalError &) {
        // Named rejection of bad input: the expected failure mode.
    }
    return 0;
}
