/**
 * @file
 * Shared scaffolding for the libFuzzer harnesses.
 *
 * Two pieces:
 *
 *  - FatalCatcher installs a FatalHandler (common/log.hh) that throws
 *    instead of exit(1), so DSARP_FATAL -- the *expected* rejection
 *    path for malformed input -- is an observable non-crash. Anything
 *    else that escapes (abort from DSARP_PANIC, a sanitizer report, a
 *    real crash) is a finding.
 *
 *  - A standalone main() for toolchains without libFuzzer (the
 *    container's gcc): it replays every file or directory of files
 *    named on the command line through LLVMFuzzerTestOneInput, which
 *    is exactly what the ctest corpus-regression entries need. When
 *    the target is built with clang's -fsanitize=fuzzer, CMake defines
 *    DSARP_FUZZ_LIBFUZZER and libFuzzer's own main takes over.
 */

#ifndef DSARP_TESTS_FUZZ_COMMON_HH
#define DSARP_TESTS_FUZZ_COMMON_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/log.hh"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

namespace dsarp::fuzz {

/** Thrown by the installed handler in place of exit(1). */
struct FatalError
{
    std::string message;
};

[[noreturn]] inline void
throwingFatalHandler(const char *, int, const char *msg)
{
    throw FatalError{msg};
}

/**
 * RAII guard a harness creates at the top of LLVMFuzzerTestOneInput:
 * while alive, DSARP_FATAL throws FatalError instead of exiting.
 */
class FatalCatcher
{
  public:
    FatalCatcher() : prev_(setFatalHandler(&throwingFatalHandler)) {}
    ~FatalCatcher() { setFatalHandler(prev_); }
    FatalCatcher(const FatalCatcher &) = delete;
    FatalCatcher &operator=(const FatalCatcher &) = delete;

  private:
    FatalHandler prev_;
};

} // namespace dsarp::fuzz

#ifndef DSARP_FUZZ_LIBFUZZER

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

int
main(int argc, char **argv)
{
    namespace fs = std::filesystem;
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s CORPUS_FILE_OR_DIR...\n"
                     "(standalone corpus replayer; build with clang "
                     "-fsanitize=fuzzer for real fuzzing)\n",
                     argv[0]);
        return 2;
    }
    std::vector<fs::path> inputs;
    for (int i = 1; i < argc; ++i) {
        const fs::path arg(argv[i]);
        if (fs::is_directory(arg)) {
            for (const auto &entry : fs::directory_iterator(arg)) {
                if (entry.is_regular_file())
                    inputs.push_back(entry.path());
            }
        } else {
            inputs.push_back(arg);
        }
    }
    // Directory iteration order is filesystem-dependent; sort so the
    // replay order (and any crash it surfaces) is reproducible.
    std::sort(inputs.begin(), inputs.end());
    for (const fs::path &path : inputs) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return 2;
        }
        const std::vector<char> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        LLVMFuzzerTestOneInput(
            reinterpret_cast<const std::uint8_t *>(bytes.data()),
            bytes.size());
        std::printf("ok %s (%zu bytes)\n", path.c_str(), bytes.size());
    }
    std::printf("replayed %zu input(s)\n", inputs.size());
    return 0;
}

#endif // DSARP_FUZZ_LIBFUZZER

#endif // DSARP_TESTS_FUZZ_COMMON_HH
