/**
 * @file
 * Fuzz the ExperimentConfig override layers.
 *
 * The first input byte selects the layer -- 0: config-file lines via
 * applyStream(), 1: DSARP_SET-format list via applyEnvString(), other:
 * a single key=value via trySet() -- and the rest is the payload.
 * Malformed input must come back as a named DSARP_FATAL (thrown by the
 * FatalCatcher) or a trySet() error string; anything else (panic,
 * sanitizer report, crash) is a bug.
 */

#include <sstream>
#include <string>

#include "sim/experiment.hh"
#include "tests/fuzz/fuzz_common.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size < 1)
        return 0;
    const std::uint8_t mode = data[0];
    const std::string payload(reinterpret_cast<const char *>(data + 1),
                              size - 1);

    dsarp::fuzz::FatalCatcher catcher;
    dsarp::ExperimentConfig cfg;
    try {
        if (mode == 0) {
            std::istringstream in(payload);
            cfg.applyStream(in, "<fuzz>");
        } else if (mode == 1) {
            cfg.applyEnvString(payload);
        } else {
            const std::size_t eq = payload.find('=');
            if (eq == std::string::npos)
                return 0;
            // trySet() reports bad keys/values as a string; only an
            // escape from that contract can throw here.
            (void)cfg.trySet(payload.substr(0, eq),
                             payload.substr(eq + 1));
        }
        // A config the layers accepted must survive validation without
        // crashing (errors are fine; they are the point of validate()).
        (void)cfg.validate();
    } catch (const dsarp::fuzz::FatalError &) {
        // Named rejection of bad input: the expected failure mode.
    }
    return 0;
}
