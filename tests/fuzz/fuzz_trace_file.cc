/**
 * @file
 * Fuzz the two trace-file readers.
 *
 * The first input byte selects the format -- 0: the native
 * `gap readAddrHex [writebackAddrHex]` format via TraceFileSource,
 * other: the DRAMSim-style `0x<addr> READ|WRITE <cycle>` format via
 * readDramSimTrace() -- and the rest is the trace text. Malformed
 * traces must be rejected with a named DSARP_FATAL (thrown by the
 * FatalCatcher); anything else is a bug.
 */

#include <sstream>
#include <string>

#include "core/trace_file.hh"
#include "tests/fuzz/fuzz_common.hh"
#include "workload/arrival.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    if (size < 1)
        return 0;
    const std::uint8_t mode = data[0];
    const std::string payload(reinterpret_cast<const char *>(data + 1),
                              size - 1);

    dsarp::fuzz::FatalCatcher catcher;
    try {
        std::istringstream in(payload);
        if (mode == 0) {
            dsarp::TraceFileSource source(in, "<fuzz>");
            // A parsed trace must be replayable: next() loops forever,
            // so a couple of wraps exercise the cursor arithmetic.
            for (std::size_t i = 0; i < 2 * source.size() + 1; ++i)
                (void)source.next();
        } else {
            const auto records = dsarp::readDramSimTrace(in, "<fuzz>");
            // The reader guarantees non-empty, monotone cycles.
            for (std::size_t i = 1; i < records.size(); ++i) {
                if (records[i].cycle < records[i - 1].cycle)
                    DSARP_PANIC("reader let cycles go backwards");
            }
        }
    } catch (const dsarp::fuzz::FatalError &) {
        // Named rejection of bad input: the expected failure mode.
    }
    return 0;
}
