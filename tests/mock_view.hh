/**
 * @file
 * A scriptable ControllerView for unit-testing refresh policies without a
 * full controller: pending-demand counts, writeback-mode flag, and idle
 * timestamps are set directly by the test; the DRAM state is a real
 * Channel the test drives.
 */

#ifndef DSARP_TESTS_MOCK_VIEW_HH
#define DSARP_TESTS_MOCK_VIEW_HH

#include <vector>

#include "common/config.hh"
#include "dram/channel.hh"
#include "refresh/scheduler.hh"

namespace dsarp {

class MockView : public ControllerView
{
  public:
    MockView(const MemConfig *cfg, const TimingParams *timing)
        : cfg_(cfg), channel_(cfg, timing), rng_(42)
    {
        reads_.assign(cfg->org.ranksPerChannel * cfg->org.banksPerRank, 0);
        writes_.assign(reads_.size(), 0);
        lastActivity_.assign(cfg->org.ranksPerChannel, 0);
    }

    int
    pendingDemands(RankId r, BankId b) const override
    {
        return reads_[index(r, b)] + writes_[index(r, b)];
    }

    int
    pendingReads(RankId r, BankId b) const override
    {
        return reads_[index(r, b)];
    }

    int
    pendingWrites(RankId r, BankId b) const override
    {
        return writes_[index(r, b)];
    }

    int
    pendingDemandsRank(RankId r) const override
    {
        int total = 0;
        for (BankId b = 0; b < cfg_->org.banksPerRank; ++b)
            total += pendingDemands(r, b);
        return total;
    }

    bool inWritebackMode() const override { return writeback_; }

    Tick
    lastDemandActivity(RankId r) const override
    {
        return lastActivity_[r];
    }

    const Channel &dram() const override { return channel_; }
    Rng &schedulerRng() override { return rng_; }

    /** @name Test controls. */
    /// @{
    void setReads(RankId r, BankId b, int n) { reads_[index(r, b)] = n; }
    void setWrites(RankId r, BankId b, int n) { writes_[index(r, b)] = n; }
    void setWriteback(bool on) { writeback_ = on; }
    void setLastActivity(RankId r, Tick t) { lastActivity_[r] = t; }
    Channel &channel() { return channel_; }
    /// @}

  private:
    int
    index(RankId r, BankId b) const
    {
        return r * cfg_->org.banksPerRank + b;
    }

    const MemConfig *cfg_;
    Channel channel_;
    Rng rng_;
    std::vector<int> reads_;
    std::vector<int> writes_;
    std::vector<Tick> lastActivity_;
    bool writeback_ = false;
};

} // namespace dsarp

#endif // DSARP_TESTS_MOCK_VIEW_HH
