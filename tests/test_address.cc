/**
 * @file
 * Unit and property tests for the address mapping.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/address.hh"
#include "dram/spec.hh"

using namespace dsarp;

namespace {

MemOrg
defaultOrg()
{
    MemOrg org;
    return org;
}

/** The finalized org for a registered spec (burstBytes resolved). */
MemOrg
orgFor(const std::string &spec)
{
    MemConfig cfg;
    cfg.dramSpec = spec;
    cfg.finalize();
    return cfg.org;
}

} // namespace

TEST(Address, Capacity)
{
    AddressMap map(defaultOrg());
    // 2 ch * 2 ranks * 8 banks * 64K rows * 8 KB rows = 16 GiB.
    EXPECT_EQ(map.capacityBytes(), 16ULL << 30);
}

TEST(Address, RoundTripProperty)
{
    AddressMap map(defaultOrg());
    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr =
            rng.below(map.capacityBytes() / 64) * 64;  // Line aligned.
        const DecodedAddr d = map.decode(addr);
        EXPECT_EQ(map.encode(d), addr);
    }
}

TEST(Address, EncodeDecodeRoundTripCoordinates)
{
    AddressMap map(defaultOrg());
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        DecodedAddr d;
        d.channel = static_cast<int>(rng.below(2));
        d.rank = static_cast<int>(rng.below(2));
        d.bank = static_cast<int>(rng.below(8));
        d.row = static_cast<int>(rng.below(65536));
        d.column = static_cast<int>(rng.below(128));
        d.subarray = d.row / 8192;
        EXPECT_EQ(map.decode(map.encode(d)), d);
    }
}

TEST(Address, ConsecutiveLinesAlternateChannels)
{
    AddressMap map(defaultOrg());
    const DecodedAddr a = map.decode(0);
    const DecodedAddr b = map.decode(64);
    EXPECT_NE(a.channel, b.channel);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
}

TEST(Address, LinesWithinChannelWalkColumns)
{
    AddressMap map(defaultOrg());
    const DecodedAddr a = map.decode(0);
    const DecodedAddr c = map.decode(128);  // Two lines later: same chan.
    EXPECT_EQ(a.channel, c.channel);
    EXPECT_EQ(a.row, c.row);
    EXPECT_EQ(c.column, a.column + 1);
}

TEST(Address, SubarrayDerivedFromRow)
{
    AddressMap map(defaultOrg());
    DecodedAddr d;
    d.row = 8192 * 3 + 17;
    d.column = 5;
    const DecodedAddr round = map.decode(map.encode(d));
    EXPECT_EQ(round.subarray, 3);
}

TEST(Address, SingleChannelOrg)
{
    MemOrg org;
    org.channels = 1;
    org.ranksPerChannel = 1;
    AddressMap map(org);
    for (Addr a = 0; a < 64 * 300; a += 64)
        EXPECT_EQ(map.decode(a).channel, 0);
}

TEST(Address, DenserOrgRoundTrip)
{
    MemOrg org;
    org.rowsPerBank = 262144;  // 32 Gb.
    AddressMap map(org);
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const Addr addr = rng.below(map.capacityBytes() / 64) * 64;
        EXPECT_EQ(map.encode(map.decode(addr)), addr);
    }
}

// ---------------------------------------------------------------------
// Spec-aware mapping: the column unit is one spec burst.
// ---------------------------------------------------------------------

TEST(Address, Lpddr4Bl16HalvesColumnCount)
{
    const MemOrg ddr3 = orgFor("DDR3-1333");
    const MemOrg lpddr4 = orgFor("LPDDR4-3200");
    EXPECT_EQ(ddr3.burstBytes, 64);    // BL8 x 64-bit bus.
    EXPECT_EQ(lpddr4.burstBytes, 128); // BL16 x 64-bit bus.
    EXPECT_EQ(ddr3.columns(), 128);    // 8 KB row / 64 B.
    EXPECT_EQ(lpddr4.columns(), 64);   // 8 KB row / 128 B: halved.
    // Capacity is unchanged: columns x columnBytes == rowBytes.
    EXPECT_EQ(AddressMap(ddr3).capacityBytes(),
              AddressMap(lpddr4).capacityBytes());
}

TEST(Address, RoundTripsUnderEveryRegisteredSpec)
{
    for (const std::string &name : DramSpecRegistry::instance().names()) {
        const MemOrg org = orgFor(name);
        AddressMap map(org);
        Rng rng(11);
        // Coordinate round trip: every field survives encode/decode.
        for (int i = 0; i < 5000; ++i) {
            DecodedAddr d;
            d.channel = static_cast<int>(rng.below(org.channels));
            d.rank = static_cast<int>(rng.below(org.ranksPerChannel));
            d.bank = static_cast<int>(rng.below(org.banksPerRank));
            d.row = static_cast<int>(rng.below(org.rowsPerBank));
            d.column = static_cast<int>(rng.below(org.columns()));
            d.subarray = d.row / org.rowsPerSubarray();
            EXPECT_EQ(map.decode(map.encode(d)), d) << name;
        }
        // Address round trip at the mapping granularity (one burst).
        const Addr unit = org.columnBytes();
        for (int i = 0; i < 5000; ++i) {
            const Addr addr = rng.below(map.capacityBytes() / unit) * unit;
            EXPECT_EQ(map.encode(map.decode(addr)), addr) << name;
        }
    }
}

TEST(Address, LinesWithinABurstAliasToOneColumn)
{
    // On LPDDR4 two consecutive 64 B lines share one 128 B burst:
    // same channel, same column -- the burst over-fetches.
    AddressMap map(orgFor("LPDDR4-3200"));
    const DecodedAddr a = map.decode(0);
    const DecodedAddr b = map.decode(64);
    EXPECT_EQ(a, b);
    const DecodedAddr c = map.decode(128);  // Next burst: next channel.
    EXPECT_NE(a.channel, c.channel);
}

TEST(Address, InconsistentLineSizeRejected)
{
    // A line larger than the spec's burst would need multiple bursts
    // per access, which the request model does not support: reject
    // with an error naming the key.
    MemConfig cfg;
    cfg.org.lineBytes = 256;  // DDR3 bursts move 64 B.
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("lineBytes"), std::string::npos);
    EXPECT_NE(err.find("burst"), std::string::npos);

    // A line equal to LPDDR4's 128 B burst is fine.
    MemConfig lp;
    lp.dramSpec = "LPDDR4-3200";
    lp.org.lineBytes = 128;
    EXPECT_EQ(lp.validate(), "");

    // ...but 128 B lines over DDR3's 64 B bursts are not.
    MemConfig ddr3;
    ddr3.org.lineBytes = 128;
    EXPECT_NE(ddr3.validate().find("lineBytes"), std::string::npos);
}
