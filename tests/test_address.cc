/**
 * @file
 * Unit and property tests for the address mapping.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/address.hh"

using namespace dsarp;

namespace {

MemOrg
defaultOrg()
{
    MemOrg org;
    return org;
}

} // namespace

TEST(Address, Capacity)
{
    AddressMap map(defaultOrg());
    // 2 ch * 2 ranks * 8 banks * 64K rows * 8 KB rows = 16 GiB.
    EXPECT_EQ(map.capacityBytes(), 16ULL << 30);
}

TEST(Address, RoundTripProperty)
{
    AddressMap map(defaultOrg());
    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr =
            rng.below(map.capacityBytes() / 64) * 64;  // Line aligned.
        const DecodedAddr d = map.decode(addr);
        EXPECT_EQ(map.encode(d), addr);
    }
}

TEST(Address, EncodeDecodeRoundTripCoordinates)
{
    AddressMap map(defaultOrg());
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        DecodedAddr d;
        d.channel = static_cast<int>(rng.below(2));
        d.rank = static_cast<int>(rng.below(2));
        d.bank = static_cast<int>(rng.below(8));
        d.row = static_cast<int>(rng.below(65536));
        d.column = static_cast<int>(rng.below(128));
        d.subarray = d.row / 8192;
        EXPECT_EQ(map.decode(map.encode(d)), d);
    }
}

TEST(Address, ConsecutiveLinesAlternateChannels)
{
    AddressMap map(defaultOrg());
    const DecodedAddr a = map.decode(0);
    const DecodedAddr b = map.decode(64);
    EXPECT_NE(a.channel, b.channel);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
}

TEST(Address, LinesWithinChannelWalkColumns)
{
    AddressMap map(defaultOrg());
    const DecodedAddr a = map.decode(0);
    const DecodedAddr c = map.decode(128);  // Two lines later: same chan.
    EXPECT_EQ(a.channel, c.channel);
    EXPECT_EQ(a.row, c.row);
    EXPECT_EQ(c.column, a.column + 1);
}

TEST(Address, SubarrayDerivedFromRow)
{
    AddressMap map(defaultOrg());
    DecodedAddr d;
    d.row = 8192 * 3 + 17;
    d.column = 5;
    const DecodedAddr round = map.decode(map.encode(d));
    EXPECT_EQ(round.subarray, 3);
}

TEST(Address, SingleChannelOrg)
{
    MemOrg org;
    org.channels = 1;
    org.ranksPerChannel = 1;
    AddressMap map(org);
    for (Addr a = 0; a < 64 * 300; a += 64)
        EXPECT_EQ(map.decode(a).channel, 0);
}

TEST(Address, DenserOrgRoundTrip)
{
    MemOrg org;
    org.rowsPerBank = 262144;  // 32 Gb.
    AddressMap map(org);
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const Addr addr = rng.below(map.capacityBytes() / 64) * 64;
        EXPECT_EQ(map.encode(map.decode(addr)), addr);
    }
}
