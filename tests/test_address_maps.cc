/**
 * @file
 * Tests for the address-map registry (dram/address.hh): registry
 * semantics, encode/decode bijection for every registered map across
 * specs and channel counts, spec-derived sub-channel expansion, and
 * the golden pin that the default "burst-ch" map is bit-identical to
 * the pre-registry hard-wired interleave.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <set>
#include <string>

#include "common/rng.hh"
#include "dram/address.hh"
#include "dram/spec.hh"
#include "sim/system.hh"

using namespace dsarp;

namespace {

/** The finalized org for spec x map x configured channels. */
MemOrg
orgFor(const std::string &spec, const std::string &map, int channels)
{
    MemConfig cfg;
    cfg.dramSpec = spec;
    cfg.addressMap = map;
    cfg.org.channels = channels;
    cfg.finalize();
    return cfg.org;
}

/** Can @p map legally run on @p spec (its check hook passes)? */
bool
compatible(const std::string &map, const std::string &spec)
{
    const AddressMapInfo &info = AddressMapRegistry::instance().at(map);
    if (!info.check)
        return true;
    MemConfig cfg;
    cfg.dramSpec = spec;
    return info
        .check(cfg.org, DramSpecRegistry::instance().at(spec))
        .empty();
}

} // namespace

// ---------------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------------

TEST(AddressMapRegistry, BuiltinMapsRegistered)
{
    const auto &reg = AddressMapRegistry::instance();
    for (const char *name :
         {"burst-ch", "row-ch", "perm-bank", "ddr5-subch"}) {
        EXPECT_TRUE(reg.has(name)) << name;
        ASSERT_NE(reg.find(name), nullptr) << name;
        EXPECT_EQ(reg.find(name)->name, name);
        EXPECT_FALSE(reg.find(name)->summary.empty()) << name;
    }
}

TEST(AddressMapRegistry, NamesRoundTripThroughLookup)
{
    const auto &reg = AddressMapRegistry::instance();
    const auto names = reg.names();
    EXPECT_GE(names.size(), 4u);
    for (const std::string &name : names) {
        const AddressMapInfo *info = reg.find(name);
        ASSERT_NE(info, nullptr) << name;
        EXPECT_EQ(info->name, name);
        // Lookups are case-insensitive.
        std::string upper = name;
        for (char &c : upper)
            c = static_cast<char>(std::toupper(c));
        EXPECT_EQ(reg.find(upper), info) << name;
        // make() produces a map whose self-reported name matches.
        MemOrg org;
        EXPECT_EQ(std::string(reg.make(name, org)->name()), name);
    }
}

TEST(AddressMapRegistryDeathTest, UnknownNameDiesWithNamedKeyError)
{
    EXPECT_DEATH(AddressMapRegistry::instance().at("no-such-map"),
                 "address.map.*unknown address map 'no-such-map'");
}

TEST(AddressMapRegistry, UnknownMapMessageListsKnownMaps)
{
    const std::string msg =
        AddressMapRegistry::instance().unknownMapMessage("bogus");
    EXPECT_NE(msg.find("config key 'address.map'"), std::string::npos);
    EXPECT_NE(msg.find("'bogus'"), std::string::npos);
    EXPECT_NE(msg.find("burst-ch"), std::string::npos);
    EXPECT_NE(msg.find("row-ch"), std::string::npos);
}

TEST(AddressMapRegistry, RuntimeRegisteredMapDrivesASystem)
{
    // A map registered at runtime (no static registrar) is selectable
    // by name like any built-in; the System resolves it through the
    // registry, not a hard-wired constructor.
    class TestMap : public AddressMap
    {
      public:
        explicit TestMap(const MemOrg &org) : AddressMap(org) {}
        const char *name() const override { return "test-runtime"; }
    };
    auto &reg = AddressMapRegistry::instance();
    if (!reg.has("test-runtime")) {
        reg.add({"test-runtime", "runtime-registered burst-ch clone",
                 [](const MemOrg &org) {
                     return std::make_unique<TestMap>(org);
                 },
                 nullptr, nullptr});
    }

    SystemConfig sys;
    sys.mem.addressMap = "test-runtime";
    sys.numCores = 2;
    System system(sys, std::vector<int>{0, 1});
    EXPECT_EQ(std::string(system.addressMap().name()), "test-runtime");
    system.run(2000);
    std::uint64_t commands = 0;
    for (int ch = 0; ch < system.numChannels(); ++ch) {
        const ChannelStats &cs = system.controller(ch).channel().stats();
        commands += cs.acts + cs.reads + cs.writes;
    }
    EXPECT_GT(commands, 0u);
}

// ---------------------------------------------------------------------
// Bijection: every map x spec x channels in {1, 2, 4}.
// ---------------------------------------------------------------------

TEST(AddressMaps, BijectionForEveryMapSpecAndChannelCount)
{
    const auto &reg = AddressMapRegistry::instance();
    for (const std::string &map : reg.names()) {
        if (map.rfind("test-", 0) == 0)
            continue;  // Runtime test registrations.
        for (const std::string &spec :
             DramSpecRegistry::instance().names()) {
            if (!compatible(map, spec))
                continue;
            for (const int channels : {1, 2, 4}) {
                const MemOrg org = orgFor(spec, map, channels);
                const auto m = reg.make(map, org);
                Rng rng(17);
                // Coordinate round trip over the finalized geometry.
                for (int i = 0; i < 2000; ++i) {
                    DecodedAddr d;
                    d.channel = static_cast<int>(rng.below(org.channels));
                    d.rank = static_cast<int>(
                        rng.below(org.ranksPerChannel));
                    d.bank =
                        static_cast<int>(rng.below(org.banksPerRank));
                    d.row = static_cast<int>(rng.below(org.rowsPerBank));
                    d.column =
                        static_cast<int>(rng.below(org.columns()));
                    d.subarray = d.row / org.rowsPerSubarray();
                    EXPECT_EQ(m->decode(m->encode(d)), d)
                        << map << " x " << spec << " x " << channels;
                }
                // Address round trip at the mapping unit.
                const Addr unit = org.columnBytes();
                for (int i = 0; i < 2000; ++i) {
                    const Addr addr =
                        rng.below(m->capacityBytes() / unit) * unit;
                    EXPECT_EQ(m->encode(m->decode(addr)), addr)
                        << map << " x " << spec << " x " << channels;
                }
            }
        }
    }
}

TEST(AddressMaps, CapacityInvariantAcrossMaps)
{
    // The interleave permutes the address space, it never grows or
    // shrinks it: all maps agree on capacity over one org.
    const auto &reg = AddressMapRegistry::instance();
    const MemOrg org = orgFor("DDR3-1333", "burst-ch", 2);
    const Addr expect = reg.make("burst-ch", org)->capacityBytes();
    for (const std::string &map : reg.names())
        EXPECT_EQ(reg.make(map, org)->capacityBytes(), expect) << map;
}

// ---------------------------------------------------------------------
// Per-map placement properties.
// ---------------------------------------------------------------------

TEST(AddressMaps, RowChKeepsConsecutiveBurstsInOneChannel)
{
    const MemOrg org = orgFor("DDR3-1333", "row-ch", 2);
    const auto m = AddressMapRegistry::instance().make("row-ch", org);
    // Consecutive bursts walk columns of one channel...
    const DecodedAddr a = m->decode(0);
    const DecodedAddr b = m->decode(64);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(b.column, a.column + 1);
    // ...and the channel index forms contiguous halves of the space.
    EXPECT_EQ(m->decode(0).channel, 0);
    EXPECT_EQ(m->decode(m->capacityBytes() / 2).channel, 1);
    EXPECT_EQ(m->decode(m->capacityBytes() - 64).channel, 1);
}

TEST(AddressMaps, PermBankSpreadsRowConflicts)
{
    const MemOrg org = orgFor("DDR3-1333", "perm-bank", 2);
    const auto &reg = AddressMapRegistry::instance();
    const auto plain = reg.make("burst-ch", org);
    const auto perm = reg.make("perm-bank", org);
    // Addresses that land in one bank under the plain walk (same
    // channel/rank/bank, consecutive rows) spread across all banks.
    std::set<int> banks;
    for (int row = 0; row < 16; ++row) {
        DecodedAddr d;
        d.row = row;
        d.subarray = 0;
        banks.insert(perm->decode(plain->encode(d)).bank);
    }
    EXPECT_EQ(banks.size(), 8u);
    // The permutation is pure bank relabeling: other coords unchanged.
    DecodedAddr d;
    d.row = 12345;
    d.column = 7;
    d.rank = 1;
    d.subarray = 12345 / org.rowsPerSubarray();
    const DecodedAddr p = perm->decode(perm->encode(d));
    EXPECT_EQ(p, d);
}

// ---------------------------------------------------------------------
// Spec-derived sub-channels (ddr5-subch).
// ---------------------------------------------------------------------

TEST(AddressMaps, Ddr5SubChExpandsChannelsFromSpec)
{
    // 2 configured DIMMs x DramSpec::subChannels (DDR5-4800: 2) = 4
    // channels, derived from the spec alone.
    MemConfig cfg;
    cfg.dramSpec = "DDR5-4800";
    cfg.addressMap = "ddr5-subch";
    cfg.org.channels = 2;
    cfg.finalize();
    EXPECT_EQ(cfg.org.channels, 4);
    EXPECT_EQ(cfg.org.appliedSubChannels, 2);
    // finalize() is idempotent: re-finalizing never compounds.
    cfg.finalize();
    EXPECT_EQ(cfg.org.channels, 4);

    MemConfig one = cfg;
    one.org.channels = 1;
    one.org.appliedSubChannels = 1;
    one.finalize();
    EXPECT_EQ(one.org.channels, 2);
}

TEST(AddressMaps, Ddr5SubChRejectedOnSpecsWithoutSubChannels)
{
    MemConfig cfg;
    cfg.dramSpec = "DDR3-1333";
    cfg.addressMap = "ddr5-subch";
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("config key 'address.map'"), std::string::npos);
    EXPECT_NE(err.find("ddr5-subch"), std::string::npos);
    EXPECT_NE(err.find("DDR3-1333"), std::string::npos);
}

TEST(AddressMaps, PermBankRejectsNonPowerOfTwoBanks)
{
    MemConfig cfg;
    cfg.addressMap = "perm-bank";
    cfg.org.banksPerRank = 6;
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("config key 'address.map'"), std::string::npos);
    EXPECT_NE(err.find("power-of-two"), std::string::npos);
}

TEST(AddressMaps, UnknownMapFailsMemConfigValidation)
{
    MemConfig cfg;
    cfg.addressMap = "no-such-map";
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("config key 'address.map'"), std::string::npos);
    EXPECT_NE(err.find("no-such-map"), std::string::npos);
}

// ---------------------------------------------------------------------
// Golden pin: "burst-ch" is the pre-registry interleave, bit for bit.
// ---------------------------------------------------------------------

TEST(AddressMaps, BurstChMatchesDirectAddressMapBitForBit)
{
    const MemOrg org = orgFor("DDR3-1333", "burst-ch", 2);
    const AddressMap direct(org);  // The pre-registry construction.
    const auto viaRegistry =
        AddressMapRegistry::instance().make("burst-ch", org);
    Rng rng(23);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.below(direct.capacityBytes() / 64) * 64;
        EXPECT_EQ(viaRegistry->decode(addr), direct.decode(addr));
    }
    // And the hard pin of the walk itself: burst 0 -> channel 0,
    // burst 1 -> channel 1, burst 2 -> column 1 of channel 0.
    EXPECT_EQ(viaRegistry->decode(0).channel, 0);
    EXPECT_EQ(viaRegistry->decode(64).channel, 1);
    EXPECT_EQ(viaRegistry->decode(128).channel, 0);
    EXPECT_EQ(viaRegistry->decode(128).column, 1);
}
