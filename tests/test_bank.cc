/**
 * @file
 * Unit tests for the per-bank state machine, including the SARP
 * modifications (subarray-aware refresh acceptance).
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"

using namespace dsarp;

namespace {

/** A duration read as an instant on a clock that started at tick 0. */
Tick
at(Cycles c)
{
    return Tick(0) + c;
}

class BankTest : public ::testing::Test
{
  protected:
    BankTest()
    {
        MemConfig cfg;
        cfg.finalize();
        timing_ = TimingParams::ddr3_1333(cfg);
    }

    Bank
    makeBank(bool sarp = false)
    {
        return Bank(&timing_, 8192, 65536, sarp);
    }

    TimingParams timing_;
};

} // namespace

TEST_F(BankTest, FreshBankAcceptsAct)
{
    Bank bank = makeBank();
    EXPECT_TRUE(bank.canAct(0, 10));
    EXPECT_FALSE(bank.canRead(0));
    EXPECT_FALSE(bank.canPre(0));
    EXPECT_TRUE(bank.canRefresh(0));
}

TEST_F(BankTest, ActOpensRowAfterTrcd)
{
    Bank bank = makeBank();
    bank.onAct(0, 42, 0);
    EXPECT_TRUE(bank.isOpen());
    EXPECT_EQ(bank.openRow(), 42);
    EXPECT_FALSE(bank.canRead(at(timing_.tRcd) - 1));
    EXPECT_TRUE(bank.canRead(at(timing_.tRcd)));
    EXPECT_FALSE(bank.canAct(0, 43));  // Already open.
    EXPECT_FALSE(bank.canRefresh(5));  // Not precharged.
}

TEST_F(BankTest, ReadAutoPrechargeClosesAndTimesNextAct)
{
    Bank bank = makeBank();
    bank.onAct(0, 42, 0);
    const Tick rd = at(timing_.tRcd);
    bank.onRead(rd, true);
    EXPECT_FALSE(bank.isOpen());
    // Precharge starts at max(rd + tRTP, act + tRAS) = tRAS here.
    const Tick next_act = at(timing_.tRas + timing_.tRp);
    EXPECT_FALSE(bank.canAct(next_act - 1, 7));
    EXPECT_TRUE(bank.canAct(next_act, 7));
}

TEST_F(BankTest, WriteAutoPrechargeUsesWriteRecovery)
{
    Bank bank = makeBank();
    bank.onAct(0, 42, 0);
    const Tick wr = at(timing_.tRcd);
    bank.onWrite(wr, true);
    EXPECT_FALSE(bank.isOpen());
    const Tick pre_start = wr + timing_.tCwl + timing_.tBl + timing_.tWr;
    const Tick next_act = pre_start + timing_.tRp;
    EXPECT_FALSE(bank.canAct(next_act - 1, 7));
    EXPECT_TRUE(bank.canAct(next_act, 7));
}

TEST_F(BankTest, PlainReadKeepsRowOpen)
{
    Bank bank = makeBank();
    bank.onAct(0, 42, 0);
    bank.onRead(at(timing_.tRcd), false);
    EXPECT_TRUE(bank.isOpen());
    // tCCD between column commands.
    EXPECT_FALSE(bank.canRead(at(timing_.tRcd + timing_.tCcd) - 1));
    EXPECT_TRUE(bank.canRead(at(timing_.tRcd + timing_.tCcd)));
}

TEST_F(BankTest, PrechargeRespectsTras)
{
    Bank bank = makeBank();
    bank.onAct(0, 42, 0);
    EXPECT_FALSE(bank.canPre(at(timing_.tRas) - 1));
    EXPECT_TRUE(bank.canPre(at(timing_.tRas)));
    bank.onPre(at(timing_.tRas));
    EXPECT_FALSE(bank.isOpen());
    EXPECT_FALSE(bank.canAct(at(timing_.tRas + timing_.tRp) - 1, 1));
    EXPECT_TRUE(bank.canAct(at(timing_.tRas + timing_.tRp), 1));
}

TEST_F(BankTest, TrcBetweenActs)
{
    Bank bank = makeBank();
    bank.onAct(0, 1, 0);
    bank.onRead(at(timing_.tRcd), true);
    // Even if precharge completes earlier, tRC gates the next ACT.
    const Tick earliest = std::max(at(timing_.tRc),
                                   at(timing_.tRas + timing_.tRp));
    EXPECT_FALSE(bank.canAct(earliest - 1, 2));
    EXPECT_TRUE(bank.canAct(earliest, 2));
}

TEST_F(BankTest, RefreshLocksBankWithoutSarp)
{
    Bank bank = makeBank(false);
    bank.onRefresh(0, timing_.tRfcPb);
    EXPECT_TRUE(bank.refreshing(10));
    EXPECT_FALSE(bank.canAct(10, 0));
    EXPECT_FALSE(bank.canAct(at(timing_.tRfcPb) - 1, 0));
    EXPECT_TRUE(bank.canAct(at(timing_.tRfcPb), 0));
    EXPECT_FALSE(bank.refreshing(at(timing_.tRfcPb)));
}

TEST_F(BankTest, SarpAllowsOtherSubarrayDuringRefresh)
{
    Bank bank = makeBank(true);
    // Refresh starts at row counter 0 => subarray 0.
    bank.onRefresh(0, timing_.tRfcPb);
    EXPECT_EQ(bank.refreshingSubarray(1), 0);
    EXPECT_FALSE(bank.canAct(1, 100)) << "row 100 is in subarray 0";
    EXPECT_TRUE(bank.canAct(1, 8192)) << "row 8192 is in subarray 1";
    EXPECT_TRUE(bank.canAct(1, 65535));
}

TEST_F(BankTest, SarpStillSerializesRefreshes)
{
    Bank bank = makeBank(true);
    bank.onRefresh(0, timing_.tRfcPb);
    EXPECT_FALSE(bank.canRefresh(1));
    EXPECT_TRUE(bank.canRefresh(at(timing_.tRfcPb)));
}

TEST_F(BankTest, RefreshRowCounterAdvances)
{
    Bank bank = makeBank();
    EXPECT_EQ(bank.refreshRowCounter(), 0);
    bank.onRefresh(0, timing_.tRfcPb);
    EXPECT_EQ(bank.refreshRowCounter(), timing_.rowsPerRefresh);
    bank.onRefresh(at(timing_.tRfcPb), timing_.tRfcPb);
    EXPECT_EQ(bank.refreshRowCounter(), 2 * timing_.rowsPerRefresh);
}

TEST_F(BankTest, RefreshRowCounterWraps)
{
    Bank bank = makeBank();
    Tick now = 0;
    const int steps = 65536 / timing_.rowsPerRefresh;
    for (int i = 0; i < steps; ++i) {
        bank.onRefresh(now, timing_.tRfcPb);
        now += timing_.tRfcPb;
    }
    EXPECT_EQ(bank.refreshRowCounter(), 0);
}

TEST_F(BankTest, RefreshSubarrayFollowsCounter)
{
    Bank bank = makeBank(true);
    Tick now = 0;
    // 8192 rows/subarray at 8 rows per refresh: 1024 refreshes per
    // subarray group.
    for (int i = 0; i < 1024; ++i) {
        bank.onRefresh(now, timing_.tRfcPb);
        EXPECT_EQ(bank.refreshingSubarray(now + 1), 0);
        now += timing_.tRfcPb;
    }
    bank.onRefresh(now, timing_.tRfcPb);
    EXPECT_EQ(bank.refreshingSubarray(now + 1), 1);
}

TEST_F(BankTest, SubarrayOf)
{
    Bank bank = makeBank();
    EXPECT_EQ(bank.subarrayOf(0), 0);
    EXPECT_EQ(bank.subarrayOf(8191), 0);
    EXPECT_EQ(bank.subarrayOf(8192), 1);
    EXPECT_EQ(bank.subarrayOf(65535), 7);
}

TEST_F(BankTest, RowsOverrideAdvancesCounterByOverride)
{
    Bank bank = makeBank();
    bank.onRefresh(0, Cycles(50), 2);
    EXPECT_EQ(bank.refreshRowCounter(), 2);
}
