/**
 * @file
 * Unit tests for the LLC slice and the cache-filtered trace adapter.
 */

#include <gtest/gtest.h>

#include "core/cache.hh"

using namespace dsarp;

TEST(Cache, Geometry)
{
    CacheSlice cache(512 * 1024, 16, 64);  // Table 1 slice.
    EXPECT_EQ(cache.numSets(), 512);
    EXPECT_EQ(cache.numWays(), 16);
}

TEST(Cache, MissThenHit)
{
    CacheSlice cache(4096, 4, 64);
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1008, false).hit) << "same line";
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, ContainsDoesNotMutate)
{
    CacheSlice cache(4096, 4, 64);
    EXPECT_FALSE(cache.contains(0x1000));
    cache.access(0x1000, false);
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(Cache, LruEviction)
{
    // 4 sets x 2 ways, 64 B lines: lines 0, 256, 512... map to set 0.
    CacheSlice cache(512, 2, 64);
    EXPECT_EQ(cache.numSets(), 4);
    cache.access(0 * 256, false);
    cache.access(1 * 256, false);
    cache.access(0 * 256, false);   // Touch line 0: line 256 is LRU.
    cache.access(2 * 256, false);   // Evicts 256.
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(256));
    EXPECT_TRUE(cache.contains(512));
}

TEST(Cache, DirtyEvictionProducesWriteback)
{
    CacheSlice cache(512, 2, 64);
    cache.access(0, true);          // Dirty.
    cache.access(256, false);
    const auto res = cache.access(512, false);  // Evicts line 0 (LRU).
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.victimAddr, 0u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, CleanEvictionSilent)
{
    CacheSlice cache(512, 2, 64);
    cache.access(0, false);
    cache.access(256, false);
    const auto res = cache.access(512, false);
    EXPECT_FALSE(res.writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    CacheSlice cache(512, 2, 64);
    cache.access(0, false);         // Clean fill.
    cache.access(0, true);          // Dirty on hit.
    cache.access(256, false);
    const auto res = cache.access(512, false);
    EXPECT_TRUE(res.writeback);
}

TEST(Cache, VictimAddrRoundTrips)
{
    CacheSlice cache(4096, 4, 64);
    const Addr addr = 0x12340;  // Some line.
    cache.access(addr, true);
    // Fill the same set until the victim must be our line.
    const Addr set_stride = 64 * cache.numSets();
    Addr evictor = addr + set_stride;
    CacheSlice::AccessResult res;
    for (int i = 0; i < 4; ++i) {
        res = cache.access(evictor, false);
        evictor += set_stride;
    }
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.victimAddr, addr & ~Addr(63));
}

namespace {

/** Access trace that cycles through a fixed set of lines. */
class CyclicTrace : public TraceSource
{
  public:
    CyclicTrace(int lines, int gap) : lines_(lines), gap_(gap) {}

    TraceRecord
    next() override
    {
        TraceRecord rec;
        rec.gap = gap_;
        rec.readAddr = static_cast<Addr>(i_ % lines_) * 64;
        ++i_;
        return rec;
    }

  private:
    int lines_;
    int gap_;
    long i_ = 0;
};

} // namespace

TEST(CacheFilteredTrace, HitsFoldIntoGap)
{
    // 8 lines cycling through a big cache: after the compulsory misses
    // everything hits, so emitted records get ever-larger gaps.
    CyclicTrace raw(8, 10);
    CacheSlice cache(512 * 1024, 16, 64);
    CacheFilteredTrace filtered(raw, cache, 0.0, 1);
    for (int i = 0; i < 8; ++i) {
        const TraceRecord rec = filtered.next();
        EXPECT_FALSE(rec.hasWriteback);
    }
    EXPECT_EQ(cache.misses(), 8u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheFilteredTrace, MissRateDropsWithSmallWorkingSet)
{
    CyclicTrace raw(8, 10);
    CacheSlice cache(512 * 1024, 16, 64);
    CacheFilteredTrace filtered(raw, cache, 0.0, 1);
    for (int i = 0; i < 8; ++i)
        filtered.next();
    // The working set now fits: hits accumulate without new records
    // being emitted; verify through the cache counters directly.
    const std::uint64_t misses_before = cache.misses();
    for (int i = 0; i < 100; ++i)
        cache.access(static_cast<Addr>(i % 8) * 64, false);
    EXPECT_EQ(cache.misses(), misses_before);
}

TEST(CacheFilteredTrace, DirtyEvictionsBecomeWritebacks)
{
    // Working set far larger than the cache with write probability 1:
    // every miss eventually carries a dirty eviction.
    CyclicTrace raw(4096, 2);
    CacheSlice cache(4096, 4, 64);  // 64 lines.
    CacheFilteredTrace filtered(raw, cache, 1.0, 1);
    int writebacks = 0;
    for (int i = 0; i < 500; ++i) {
        if (filtered.next().hasWriteback)
            ++writebacks;
    }
    EXPECT_GT(writebacks, 300);
}
