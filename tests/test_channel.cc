/**
 * @file
 * Unit tests for channel-level constraints: data-bus occupancy, read/write
 * turnaround, rank-switch gaps, and command dispatch bookkeeping.
 */

#include <gtest/gtest.h>

#include "dram/channel.hh"

using namespace dsarp;

namespace {

/** A duration read as an instant on a clock that started at tick 0. */
Tick
at(Cycles c)
{
    return Tick(0) + c;
}

class ChannelTest : public ::testing::Test
{
  protected:
    ChannelTest()
    {
        cfg_.finalize();
        timing_ = TimingParams::ddr3_1333(cfg_);
    }

    Command
    act(RankId r, BankId b, RowId row)
    {
        Command cmd;
        cmd.type = CommandType::kAct;
        cmd.rank = r;
        cmd.bank = b;
        cmd.row = row;
        return cmd;
    }

    Command
    col(CommandType type, RankId r, BankId b, int column = 0)
    {
        Command cmd;
        cmd.type = type;
        cmd.rank = r;
        cmd.bank = b;
        cmd.column = column;
        return cmd;
    }

    Command
    refresh(CommandType type, RankId r, BankId b = 0)
    {
        Command cmd;
        cmd.type = type;
        cmd.rank = r;
        cmd.bank = b;
        return cmd;
    }

    MemConfig cfg_;
    TimingParams timing_;
};

} // namespace

TEST_F(ChannelTest, ReadReturnsDataTick)
{
    Channel ch(&cfg_, &timing_);
    ch.issue(act(0, 0, 5), 0);
    const Tick t = at(timing_.tRcd);
    const Tick done = ch.issue(col(CommandType::kRdA, 0, 0), t);
    EXPECT_EQ(done, t + timing_.tCl + timing_.tBl);
    EXPECT_EQ(ch.stats().acts, 1u);
    EXPECT_EQ(ch.stats().reads, 1u);
}

TEST_F(ChannelTest, BackToBackReadsSameBankSpacedByTccd)
{
    Channel ch(&cfg_, &timing_);
    ch.issue(act(0, 0, 5), 0);
    const Tick t = at(timing_.tRcd);
    ch.issue(col(CommandType::kRd, 0, 0), t);
    EXPECT_FALSE(ch.canIssue(col(CommandType::kRd, 0, 0), t + 3));
    EXPECT_TRUE(ch.canIssue(col(CommandType::kRd, 0, 0), t + timing_.tCcd));
}

TEST_F(ChannelTest, ReadsAcrossBanksShareDataBus)
{
    Channel ch(&cfg_, &timing_);
    ch.issue(act(0, 0, 5), 0);
    ch.issue(act(0, 1, 6), at(timing_.tRrd));
    const Tick t = at(timing_.tRrd + timing_.tRcd);
    ch.issue(col(CommandType::kRd, 0, 0), t);
    // The second read's burst may not overlap the first: effectively
    // tBL spacing (tCCD = tBL here).
    EXPECT_FALSE(ch.canIssue(col(CommandType::kRd, 0, 1), t + 1));
    EXPECT_TRUE(
        ch.canIssue(col(CommandType::kRd, 0, 1), t + timing_.tBl));
}

TEST_F(ChannelTest, WriteToReadTurnaround)
{
    Channel ch(&cfg_, &timing_);
    ch.issue(act(0, 0, 5), 0);
    ch.issue(act(0, 1, 6), at(timing_.tRrd));
    const Tick tw = at(timing_.tRcd);
    ch.issue(col(CommandType::kWr, 0, 0), tw);
    const Tick data_end = tw + timing_.tCwl + timing_.tBl;
    // tWTR counts from the end of write data to the read command.
    EXPECT_FALSE(ch.canIssue(col(CommandType::kRd, 0, 1),
                             data_end + timing_.tWtr - Cycles(1)));
    EXPECT_TRUE(
        ch.canIssue(col(CommandType::kRd, 0, 1), data_end + timing_.tWtr));
}

TEST_F(ChannelTest, ReadToWriteTurnaround)
{
    Channel ch(&cfg_, &timing_);
    ch.issue(act(0, 0, 5), 0);
    ch.issue(act(0, 1, 6), at(timing_.tRrd));
    const Tick tr = at(timing_.tRcd);
    ch.issue(col(CommandType::kRd, 0, 0), tr);
    EXPECT_FALSE(
        ch.canIssue(col(CommandType::kWr, 0, 1), tr + timing_.tRtw - Cycles(1)));
    EXPECT_TRUE(
        ch.canIssue(col(CommandType::kWr, 0, 1), tr + timing_.tRtw));
}

TEST_F(ChannelTest, RankSwitchAddsTrtrs)
{
    Channel ch(&cfg_, &timing_);
    ch.issue(act(0, 0, 5), 0);
    ch.issue(act(1, 0, 6), 1);  // Different rank: no tRRD coupling.
    const Tick t = Tick(1) + timing_.tRcd;
    ch.issue(col(CommandType::kRd, 0, 0), t);
    // Same-rank back-to-back would be legal at t + tBL; the rank switch
    // adds tRTRS.
    EXPECT_FALSE(ch.canIssue(col(CommandType::kRd, 1, 0), t + timing_.tBl));
    EXPECT_TRUE(ch.canIssue(col(CommandType::kRd, 1, 0),
                            t + timing_.tBl + timing_.tRtrs));
}

TEST_F(ChannelTest, RefreshCommandsTracked)
{
    Channel ch(&cfg_, &timing_);
    ch.issue(refresh(CommandType::kRefPb, 0, 2), 0);
    EXPECT_EQ(ch.stats().refPb, 1u);
    EXPECT_EQ(ch.stats().refPbCycles,
              static_cast<std::uint64_t>(timing_.tRfcPb.count()));
    ch.issue(refresh(CommandType::kRefAb, 1), 5);
    EXPECT_EQ(ch.stats().refAb, 1u);
    EXPECT_EQ(ch.stats().refAbCycles,
              static_cast<std::uint64_t>(timing_.tRfcAb.count()));
}

TEST_F(ChannelTest, RefreshOverrideChangesAccountedCycles)
{
    Channel ch(&cfg_, &timing_);
    Command cmd = refresh(CommandType::kRefAb, 0);
    cmd.tRfcOverride = Cycles(100);
    ch.issue(cmd, 0);
    EXPECT_EQ(ch.stats().refAbCycles, 100u);
}

TEST_F(ChannelTest, IndependentRanksActFreely)
{
    Channel ch(&cfg_, &timing_);
    ch.issue(act(0, 0, 1), 0);
    // tRRD does not couple ranks.
    EXPECT_TRUE(ch.canIssue(act(1, 0, 1), 1));
}

TEST_F(ChannelTest, SampleActivityCountsRankTicks)
{
    Channel ch(&cfg_, &timing_);
    ch.sampleActivity(0);
    EXPECT_EQ(ch.stats().rankTotalTicks, 2u);
    EXPECT_EQ(ch.stats().rankActiveTicks, 0u);
    ch.issue(act(0, 0, 1), 0);
    ch.sampleActivity(1);
    EXPECT_EQ(ch.stats().rankTotalTicks, 4u);
    EXPECT_EQ(ch.stats().rankActiveTicks, 1u);
}

TEST_F(ChannelTest, ResetStatsClearsCounters)
{
    Channel ch(&cfg_, &timing_);
    ch.issue(act(0, 0, 1), 0);
    ch.resetStats();
    EXPECT_EQ(ch.stats().acts, 0u);
}
