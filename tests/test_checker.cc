/**
 * @file
 * Tests for the offline command verifier itself: it must accept legal
 * sequences and flag each class of violation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/checker.hh"

using namespace dsarp;

namespace {

/** A duration read as an instant on a clock that started at tick 0. */
Tick
at(Cycles c)
{
    return Tick(0) + c;
}

class CheckerTest : public ::testing::Test
{
  protected:
    CheckerTest()
    {
        cfg_.finalize();
        timing_ = TimingParams::ddr3_1333(cfg_);
    }

    TimedCommand
    act(Tick t, RankId r, BankId b, RowId row)
    {
        Command cmd;
        cmd.type = CommandType::kAct;
        cmd.rank = r;
        cmd.bank = b;
        cmd.row = row;
        return {t, cmd};
    }

    TimedCommand
    col(Tick t, CommandType type, RankId r, BankId b, RowId row)
    {
        Command cmd;
        cmd.type = type;
        cmd.rank = r;
        cmd.bank = b;
        cmd.row = row;
        return {t, cmd};
    }

    TimedCommand
    ref(Tick t, CommandType type, RankId r, BankId b = 0)
    {
        Command cmd;
        cmd.type = type;
        cmd.rank = r;
        cmd.bank = b;
        return {t, cmd};
    }

    CheckerReport
    verify(const std::vector<TimedCommand> &log)
    {
        return verifyCommandLog(log, cfg_, timing_, 0);
    }

    MemConfig cfg_;
    TimingParams timing_;
};

} // namespace

TEST_F(CheckerTest, AcceptsLegalReadPair)
{
    const std::vector<TimedCommand> log = {
        act(0, 0, 0, 5),
        col(at(timing_.tRcd), CommandType::kRdA, 0, 0, 5),
    };
    const CheckerReport report = verify(log);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.commandsChecked, 2u);
}

TEST_F(CheckerTest, FlagsEarlyColumnCommand)
{
    const std::vector<TimedCommand> log = {
        act(0, 0, 0, 5),
        col(at(timing_.tRcd) - 1, CommandType::kRdA, 0, 0, 5),
    };
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, FlagsColumnToClosedBank)
{
    const std::vector<TimedCommand> log = {
        col(10, CommandType::kRd, 0, 0, 5),
    };
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, FlagsWrongRow)
{
    const std::vector<TimedCommand> log = {
        act(0, 0, 0, 5),
        col(at(timing_.tRcd), CommandType::kRd, 0, 0, 6),
    };
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, FlagsTrcViolation)
{
    const std::vector<TimedCommand> log = {
        act(0, 0, 0, 5),
        col(at(timing_.tRcd), CommandType::kRdA, 0, 0, 5),
        act(at(timing_.tRc) - 1, 0, 0, 6),
    };
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, FlagsTrrdViolation)
{
    const std::vector<TimedCommand> log = {
        act(0, 0, 0, 5),
        act(at(timing_.tRrd) - 1, 0, 1, 5),
    };
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, AcceptsTrrdSpacedActs)
{
    const std::vector<TimedCommand> log = {
        act(0, 0, 0, 5),
        act(at(timing_.tRrd), 0, 1, 5),
    };
    EXPECT_TRUE(verify(log).ok());
}

TEST_F(CheckerTest, FlagsTfawViolation)
{
    std::vector<TimedCommand> log;
    Tick t = 0;
    for (int i = 0; i < 4; ++i) {
        log.push_back(act(t, 0, i, 5));
        t += timing_.tRrd;
    }
    log.push_back(act(at(timing_.tFaw) - 1, 0, 4, 5));
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, FlagsActDuringRefreshWithoutSarp)
{
    const std::vector<TimedCommand> log = {
        ref(0, CommandType::kRefPb, 0, 0),
        act(1, 0, 0, 5),
    };
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, SarpAllowsOtherSubarrayAct)
{
    cfg_.sarp = true;
    const std::vector<TimedCommand> log = {
        ref(0, CommandType::kRefPb, 0, 0),  // Refreshing subarray 0.
        act(1, 0, 0, cfg_.org.rowsPerSubarray() + 3),
    };
    EXPECT_TRUE(verify(log).ok());
}

TEST_F(CheckerTest, SarpFlagsSameSubarrayAct)
{
    cfg_.sarp = true;
    const std::vector<TimedCommand> log = {
        ref(0, CommandType::kRefPb, 0, 0),
        act(1, 0, 0, 3),  // Subarray 0: conflicts with the refresh.
    };
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, SarpEnforcesInflatedTrrd)
{
    cfg_.sarp = true;
    const Cycles inflated =
        timing_.tRrd.ceilScaled(cfg_.sarpInflationPb);
    const std::vector<TimedCommand> log = {
        ref(0, CommandType::kRefPb, 0, 0),
        act(1, 0, 1, 5),
        act(Tick(1) + inflated - Cycles(1), 0, 2, 5),  // Legal at base tRRD only.
    };
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, FlagsOverlappingPerBankRefreshes)
{
    const std::vector<TimedCommand> log = {
        ref(0, CommandType::kRefPb, 0, 0),
        ref(at(timing_.tRfcPb) - 1, CommandType::kRefPb, 0, 1),
    };
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, AcceptsSerializedPerBankRefreshes)
{
    const std::vector<TimedCommand> log = {
        ref(0, CommandType::kRefPb, 0, 0),
        ref(at(timing_.tRfcPb), CommandType::kRefPb, 0, 1),
    };
    EXPECT_TRUE(verify(log).ok());
}

TEST_F(CheckerTest, FlagsRefreshToOpenBank)
{
    const std::vector<TimedCommand> log = {
        act(0, 0, 0, 5),
        ref(1, CommandType::kRefAb, 0),
    };
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, FlagsDataBusOverlap)
{
    const std::vector<TimedCommand> log = {
        act(0, 0, 0, 5),
        act(at(timing_.tRrd), 0, 1, 6),
        col(at(timing_.tRcd), CommandType::kRd, 0, 0, 5),
        // Second read one cycle later: bursts overlap on the bus.
        col(at(timing_.tRcd) + 1, CommandType::kRd, 0, 1, 6),
    };
    EXPECT_FALSE(verify(log).ok());
}

TEST_F(CheckerTest, FlagsRefreshStarvation)
{
    // One refresh over a 20-interval window: hopelessly behind.
    std::vector<TimedCommand> log = {ref(0, CommandType::kRefAb, 0)};
    const CheckerReport report = verifyCommandLog(
        log, cfg_, timing_, at(20 * timing_.tRefiAb));
    EXPECT_FALSE(report.ok());
}

TEST_F(CheckerTest, RefreshKeepingPaceIsAccepted)
{
    std::vector<TimedCommand> log;
    const Tick horizon = at(20 * timing_.tRefiAb);
    for (Tick t = 0; t < horizon; t += timing_.tRefiAb) {
        log.push_back(ref(t, CommandType::kRefAb, 0));
        log.push_back(ref(t + timing_.tRfcAb, CommandType::kRefAb, 1));
    }
    const CheckerReport report =
        verifyCommandLog(log, cfg_, timing_, horizon);
    EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                     ? ""
                                     : report.violations.front());
    EXPECT_EQ(report.refreshesChecked, 2u * 20u * 8u);
}

TEST_F(CheckerTest, FlagsOutOfOrderLog)
{
    const std::vector<TimedCommand> log = {
        act(100, 0, 0, 5),
        act(50, 0, 1, 6),
    };
    EXPECT_FALSE(verify(log).ok());
}
