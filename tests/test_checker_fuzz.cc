/**
 * @file
 * Cross-spec checker fuzzer: seeded randomized workloads driven
 * end-to-end -- cores, controllers, refresh policy, DRAM model --
 * through every registered DRAM spec x {REFab, REFpb, DSARP, HiRA,
 * REFsb(+HiRAsb)}, with the offline checker replaying every channel's
 * command log against its independent model of the JEDEC constraints.
 *
 * Every case asserts zero timing/legality violations AND that no
 * bank's refresh ledger fell behind the erratum bound (the checker's
 * completeness pass over [0, endTick]) while refreshes were actually
 * issued. The deterministic case seed is part of every failure
 * message, so a red run reproduces with a one-line filter (the seed
 * count is an environment variable and must precede the command so
 * the failing seed is actually reached):
 *
 *   DSARP_FUZZ_SEEDS=<N> ./test_checker_fuzz \
 *       --gtest_filter='*<failing spec>*'
 *
 * DSARP_FUZZ_SEEDS scales the seeds per (spec, mechanism) combination
 * (default 2 -- ~50 cases over six specs; CI runs a dedicated job).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dram/address.hh"
#include "dram/spec.hh"
#include "refresh/registry.hh"
#include "sim/checker.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "workload/workload.hh"

using namespace dsarp;

namespace {

/** The mechanism slice of the fuzz matrix (NoREF has nothing to
 *  check; FGR/AR/Elastic stay covered by their own suites). */
const char *const kMechs[] = {"REFab", "REFpb", "DSARP", "HiRA",
                              "REFsb", "HiRAsb"};

bool
sameBankMech(const std::string &mech)
{
    return mech == "REFsb" || mech == "HiRAsb";
}

/** One randomized end-to-end case; all choices derive from @p seed.
 *  With @p self_refresh the command-level SRE/SRX idle-entry policy
 *  is armed at a random threshold (and fewer cores, so ranks really
 *  do idle into it). @p channels and @p map (empty = default) span
 *  the multi-channel topology axis; with more than one channel, half
 *  the cases arm the auto cross-channel refresh stagger. */
void
fuzzOne(const std::string &spec, const std::string &mech,
        std::uint64_t seed, bool self_refresh = false, int channels = 1,
        const std::string &map = "")
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + (self_refresh ? 2 : 1));

    SystemConfig cfg;
    cfg.mem.dramSpec = spec;
    cfg.mem.policy = mech;
    cfg.mem.org.channels = channels;
    if (!map.empty())
        cfg.mem.addressMap = map;
    if (channels > 1)
        cfg.mem.channelStaggerCycles = rng.chance(0.5) ? -1 : 0;
    cfg.mem.org.subarraysPerBank = rng.chance(0.5) ? 8 : 4;
    const Density densities[] = {Density::k8Gb, Density::k16Gb,
                                 Density::k32Gb};
    cfg.mem.density = densities[rng.below(3)];
    // The canonical DDR5 geometry (32 banks/rank) for some same-bank
    // cases; per-bank mechanisms keep 8 banks, where tREFIpb > tRFCpb
    // holds at every density.
    if (sameBankMech(mech) && rng.chance(0.5))
        cfg.mem.org.banksPerRank = 32;
    cfg.numCores = 2 + static_cast<int>(rng.below(3));
    if (self_refresh) {
        cfg.mem.srIdleEntryCycles =
            200 + static_cast<int>(rng.below(1200));
        cfg.numCores = 1 + static_cast<int>(rng.below(2));
    }
    cfg.seed = seed;
    cfg.enableChecker = true;

    const auto workloads = makeWorkloads(1, cfg.numCores, seed);
    const Workload &w = workloads[rng.below(workloads.size())];

    System sys(cfg, w.benchIdx);
    sys.run(Tick(0) + 8 * sys.timing().tRefiAb);

    std::ostringstream ctx;
    ctx << "spec=" << spec << " mech=" << mech << " seed=" << seed
        << " density=" << densityName(cfg.mem.density)
        << " cores=" << cfg.numCores
        << " banks=" << cfg.mem.org.banksPerRank
        << " subarrays=" << cfg.mem.org.subarraysPerBank
        << " srIdleEntry=" << cfg.mem.srIdleEntryCycles
        << " channels=" << channels << " map="
        << (map.empty() ? "default" : map)
        << " stagger=" << cfg.mem.channelStaggerCycles
        << " workload=" << w.index;

    std::uint64_t refreshes = 0;
    std::uint64_t sr_enters = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch) {
        const CheckerReport report = verifyCommandLog(
            sys.commandLog(ch), sys.config().mem, sys.timing(),
            sys.now());
        std::ostringstream detail;
        for (std::size_t i = 0;
             i < report.violations.size() && i < 3; ++i) {
            detail << "\n  " << report.violations[i];
        }
        EXPECT_TRUE(report.ok())
            << ctx.str() << " channel=" << ch << detail.str();
        EXPECT_GT(report.commandsChecked, 0u) << ctx.str();
        const ChannelStats &cs = sys.controller(ch).channel().stats();
        refreshes += cs.refAb + cs.refPb + cs.refSb;
        sr_enters += cs.srEnter;
    }
    // The run spans eight tREFIab windows: every mechanism must have
    // issued refreshes (a self-refresh residency counts -- the device
    // refreshed internally), and (via the checker's completeness pass
    // above) every bank's ledger must have retired within the
    // postpone bound.
    EXPECT_GT(refreshes + sr_enters, 0u) << ctx.str();
}

/** One randomized open-loop (traffic-driven) case: the TrafficInjector
 *  replaces the cores, so the command streams under checker scrutiny
 *  come from externally-paced arrivals with hot-row skew and tenant
 *  partitioning instead of the closed-loop core models. */
void
fuzzTrafficOne(const std::string &spec, const std::string &mech,
               std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 5);

    SystemConfig cfg;
    cfg.mem.dramSpec = spec;
    cfg.mem.policy = mech;
    cfg.traffic.mode = rng.chance(0.5) ? "poisson" : "bursty";
    cfg.traffic.ratePerKilocycle =
        20.0 + static_cast<double>(rng.below(120));
    cfg.traffic.hotRowPct = rng.chance(0.5) ? 60.0 : 0.0;
    cfg.traffic.tenants = 1 + static_cast<int>(rng.below(3));
    cfg.seed = seed;
    cfg.enableChecker = true;

    System sys(cfg);
    sys.run(Tick(0) + 8 * sys.timing().tRefiAb);

    std::ostringstream ctx;
    ctx << "spec=" << spec << " mech=" << mech << " seed=" << seed
        << " traffic=" << cfg.traffic.mode
        << " rate=" << cfg.traffic.ratePerKilocycle
        << " hotRowPct=" << cfg.traffic.hotRowPct
        << " tenants=" << cfg.traffic.tenants;

    std::uint64_t refreshes = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch) {
        const CheckerReport report = verifyCommandLog(
            sys.commandLog(ch), sys.config().mem, sys.timing(),
            sys.now());
        std::ostringstream detail;
        for (std::size_t i = 0;
             i < report.violations.size() && i < 3; ++i) {
            detail << "\n  " << report.violations[i];
        }
        EXPECT_TRUE(report.ok())
            << ctx.str() << " channel=" << ch << detail.str();
        EXPECT_GT(report.commandsChecked, 0u) << ctx.str();
        const ChannelStats &cs = sys.controller(ch).channel().stats();
        refreshes += cs.refAb + cs.refPb + cs.refSb;
    }
    EXPECT_GT(refreshes, 0u) << ctx.str();
}

} // namespace

class CheckerFuzz : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CheckerFuzz, RandomWorkloadsProduceLegalCommandStreams)
{
    const std::string spec = GetParam();
    const bool sameBankSupported =
        DramSpecRegistry::instance().at(spec).banksPerGroup > 0;
    const std::uint64_t seeds = envKnob("DSARP_FUZZ_SEEDS", 2);

    for (const char *mech : kMechs) {
        if (sameBankMech(mech) && !sameBankSupported)
            continue;  // REFsb needs bank-group support (DDR5).
        for (std::uint64_t s = 1; s <= seeds; ++s)
            fuzzOne(spec, mech, s);
        // The same matrix with command-level self-refresh armed:
        // SRE/SRX must stay legal (tCKESR/tXS/no-command-in-SR) and
        // the ledgers must still retire -- residency credits internal
        // refresh.
        for (std::uint64_t s = 1; s <= seeds; ++s)
            fuzzOne(spec, mech, s, /*self_refresh=*/true);
    }
}

TEST_P(CheckerFuzz, TrafficDrivenStreamsStayLegal)
{
    // The open-loop axis: externally-paced arrivals (Poisson or bursty
    // by seed, hot-row skew, 1-3 tenants) must keep every channel's
    // command stream as legal as the closed-loop cores do.
    const std::string spec = GetParam();
    const std::uint64_t seeds = envKnob("DSARP_FUZZ_SEEDS", 2);
    for (const char *mech : {"REFab", "DSARP"}) {
        for (std::uint64_t s = 1; s <= seeds; ++s)
            fuzzTrafficOne(spec, mech, s);
    }
}

TEST_P(CheckerFuzz, MultiChannelMapMatrixStaysLegal)
{
    // The topology axis: every registered address map x channels in
    // {1, 2, 4}, mechanisms round-robined across combos so the matrix
    // stays bounded. Covers the per-channel command streams staying
    // legal when the interleave changes and when the cross-channel
    // refresh stagger (armed randomly inside fuzzOne) shifts every
    // ledger's phase origin.
    const std::string spec = GetParam();
    const DramSpec &dev = DramSpecRegistry::instance().at(spec);
    std::vector<std::string> mechs;
    for (const char *mech : kMechs) {
        if (!sameBankMech(mech) || dev.banksPerGroup > 0)
            mechs.push_back(mech);
    }

    std::uint64_t seed = 0;
    for (const std::string &map :
         AddressMapRegistry::instance().names()) {
        const AddressMapInfo &info =
            AddressMapRegistry::instance().at(map);
        if (info.check && !info.check(MemOrg{}, dev).empty())
            continue;  // e.g. ddr5-subch on a spec without sub-channels.
        for (const int channels : {1, 2, 4}) {
            ++seed;
            fuzzOne(spec, mechs[seed % mechs.size()], seed,
                    /*self_refresh=*/false, channels, map);
        }
    }
}

namespace {

std::string
fuzzName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string out = info.param;
    for (char &c : out) {
        if (c == '-')
            c = '_';
    }
    return out;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, CheckerFuzz,
    ::testing::ValuesIn(DramSpecRegistry::instance().names()), fuzzName);

TEST(CheckerFuzz, SameBankCombosRejectedOnUnsupportedSpecs)
{
    // The REFsb legs the fuzzer skips are not silently unsupported:
    // selecting them must die with a named-key error.
    SystemConfig cfg;
    cfg.mem.policy = "REFsb";
    cfg.mem.dramSpec = "DDR3-1333";
    cfg.numCores = 1;
    const std::vector<int> bench = {0};
    EXPECT_DEATH(System(cfg, bench), "bank-group");
}
