/**
 * @file
 * The dsarp_sim command line as a library (sim/cli.hh): flag sugar,
 * layering order, and error routing. The tool itself only prints;
 * everything decidable lives in parseCommandLine() and is pinned here.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "common/log.hh"
#include "sim/cli.hh"

using namespace dsarp;

namespace {

CliResult
parse(std::vector<std::string> args)
{
    return parseCommandLine(args);
}

} // namespace

TEST(Cli, FlagSugarSetsConfigKeys)
{
    const CliResult res =
        parse({"--mech", "REFpb", "--channels", "4", "--engine", "event",
               "--cores", "2", "--seed", "42", "--jobs", "3"});
    ASSERT_EQ(res.action, CliAction::Run);
    EXPECT_EQ(res.config.policy, "REFpb");
    EXPECT_EQ(res.config.channels, 4);
    EXPECT_EQ(res.config.engine, "event");
    EXPECT_EQ(res.config.numCores, 2);
    EXPECT_EQ(res.config.seed, 42u);
    EXPECT_EQ(res.jobs, 3);
}

TEST(Cli, TraceImpliesTraceMode)
{
    const CliResult res = parse({"--trace", "mixed.trc"});
    ASSERT_EQ(res.action, CliAction::Run);
    EXPECT_EQ(res.config.traffic.tracePath, "mixed.trc");
    EXPECT_EQ(res.config.traffic.mode, "trace");
}

TEST(Cli, ListAndHelpShortCircuit)
{
    EXPECT_EQ(parse({"--help"}).action, CliAction::Help);
    EXPECT_EQ(parse({"-h"}).action, CliAction::Help);
    EXPECT_EQ(parse({"--list"}).action, CliAction::ListAll);
    EXPECT_EQ(parse({"--list-mechs"}).action, CliAction::ListMechs);
    EXPECT_EQ(parse({"--list-keys"}).action, CliAction::ListKeys);
    // A list action wins even with bad flags behind it: the parse
    // stops there, like the original tool's early returns.
    EXPECT_EQ(parse({"--list-maps", "--bogus"}).action,
              CliAction::ListMaps);
}

TEST(Cli, FlagSyntaxErrorsAreNamed)
{
    const CliResult unknown = parse({"--frobnicate"});
    ASSERT_EQ(unknown.action, CliAction::Error);
    EXPECT_TRUE(unknown.unknownOption);
    EXPECT_NE(unknown.error.find("--frobnicate"), std::string::npos);

    const CliResult missing = parse({"--seed"});
    ASSERT_EQ(missing.action, CliAction::Error);
    EXPECT_FALSE(missing.unknownOption);
    EXPECT_NE(missing.error.find("--seed needs a value"),
              std::string::npos);

    for (const char *bad : {"0", "-3", "junk", "4x", "99999999999"}) {
        const CliResult jobs = parse({"--jobs", bad});
        ASSERT_EQ(jobs.action, CliAction::Error) << bad;
        EXPECT_NE(jobs.error.find("--jobs"), std::string::npos) << bad;
    }
}

TEST(Cli, BadConfigValuesStayFatalNamedErrors)
{
    // Value errors are the config layer's contract, not the flag
    // parser's: they must still route through DSARP_FATAL with the
    // key named.
    struct Catcher
    {
        static void handler(const char *, int, const char *) { throw 1; }
    };
    const FatalHandler prev = setFatalHandler(&Catcher::handler);
    EXPECT_THROW(parse({"--channels", "many"}), int);
    EXPECT_THROW(parse({"--set", "no.such.key=1"}), int);
    setFatalHandler(prev);
}

TEST(Cli, LayeringConfigFileThenEnvThenFlags)
{
    const std::string path = testing::TempDir() + "cli_layering.cfg";
    {
        std::ofstream out(path);
        out << "channels=8\nnumCores=2\nseed=5\n";
    }
    setenv("DSARP_SET", "numCores=6,intensityPct=50", 1);
    // Flag order must not matter: --config is layered first even when
    // it appears last.
    const CliResult res =
        parse({"--seed", "9", "--config", path});
    unsetenv("DSARP_SET");
    ASSERT_EQ(res.action, CliAction::Run);
    EXPECT_EQ(res.config.channels, 8);      // File (nothing overrides).
    EXPECT_EQ(res.config.numCores, 6);      // Env beats file.
    EXPECT_EQ(res.config.intensityPct, 50); // Env (nothing overrides).
    EXPECT_EQ(res.config.seed, 9u);         // Flag beats file.
}
