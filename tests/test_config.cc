/**
 * @file
 * Unit tests for configuration structures and density tables.
 */

#include <gtest/gtest.h>

#include "common/config.hh"

using namespace dsarp;

TEST(Config, DensityRows)
{
    EXPECT_EQ(rowsPerBankFor(Density::k8Gb), 65536);
    EXPECT_EQ(rowsPerBankFor(Density::k16Gb), 131072);
    EXPECT_EQ(rowsPerBankFor(Density::k32Gb), 262144);
}

TEST(Config, DensityRefreshLatency)
{
    // Paper Table 1.
    EXPECT_DOUBLE_EQ(tRfcAbNsFor(Density::k8Gb), 350.0);
    EXPECT_DOUBLE_EQ(tRfcAbNsFor(Density::k16Gb), 530.0);
    EXPECT_DOUBLE_EQ(tRfcAbNsFor(Density::k32Gb), 890.0);
}

TEST(Config, Names)
{
    EXPECT_STREQ(refreshModeName(RefreshMode::kAllBank), "REFab");
    EXPECT_STREQ(refreshModeName(RefreshMode::kPerBank), "REFpb");
    EXPECT_STREQ(refreshModeName(RefreshMode::kDarp), "DARP");
    EXPECT_STREQ(refreshModeName(RefreshMode::kNoRefresh), "NoREF");
    EXPECT_STREQ(densityName(Density::k16Gb), "16Gb");
}

TEST(Config, FinalizeAppliesDensity)
{
    MemConfig cfg;
    cfg.density = Density::k16Gb;
    cfg.finalize();
    EXPECT_EQ(cfg.org.rowsPerBank, 131072);
}

TEST(Config, OrgDerived)
{
    MemOrg org;
    EXPECT_EQ(org.columns(), 128);          // 8 KB row / 64 B line.
    EXPECT_EQ(org.rowsPerSubarray(), 8192); // 64K rows / 8 subarrays.
}

TEST(Config, DefaultsMatchTable1)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.numCores, 8);
    EXPECT_EQ(cfg.core.cpuCyclesPerTick, 6);  // 4 GHz over DDR3-1333.
    EXPECT_EQ(cfg.core.windowSize, 128);
    EXPECT_EQ(cfg.core.mshrs, 8);
    EXPECT_EQ(cfg.mem.org.channels, 2);
    EXPECT_EQ(cfg.mem.org.ranksPerChannel, 2);
    EXPECT_EQ(cfg.mem.org.banksPerRank, 8);
    EXPECT_EQ(cfg.mem.org.subarraysPerBank, 8);
    EXPECT_EQ(cfg.mem.readQueueSize, 64);
    EXPECT_EQ(cfg.mem.writeQueueSize, 64);
    EXPECT_EQ(cfg.mem.writeLowWatermark, 32);
    EXPECT_EQ(cfg.mem.retentionMs, 32);
}

TEST(Config, ValidateNamesEveryBadKey)
{
    MemConfig cfg;
    cfg.org.rowsPerBank = rowsPerBankFor(cfg.density);
    EXPECT_EQ(cfg.validate(), "");

    cfg.writeLowWatermark = 60;
    cfg.writeHighWatermark = 50;
    cfg.retentionMs = 48;
    cfg.maxOverlappedRefPb = 0;
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("'writeLowWatermark'"), std::string::npos) << err;
    EXPECT_NE(err.find("'retentionMs'"), std::string::npos) << err;
    EXPECT_NE(err.find("'maxOverlappedRefPb'"), std::string::npos) << err;
}

TEST(ConfigDeath, RejectsBadWatermarks)
{
    MemConfig cfg;
    cfg.writeLowWatermark = 60;
    cfg.writeHighWatermark = 50;
    EXPECT_EXIT(cfg.finalize(), testing::ExitedWithCode(1), "watermark");
}

TEST(ConfigDeath, RejectsWatermarkAboveQueueSize)
{
    MemConfig cfg;
    cfg.writeHighWatermark = 80;  // > writeQueueSize (64).
    EXPECT_EXIT(cfg.finalize(), testing::ExitedWithCode(1),
                "writeHighWatermark.*writeQueueSize");
}

TEST(ConfigDeath, RejectsZeroQueues)
{
    MemConfig cfg;
    cfg.readQueueSize = 0;
    cfg.writeQueueSize = 0;
    cfg.writeHighWatermark = 0;
    cfg.writeLowWatermark = -1;
    EXPECT_EXIT(cfg.finalize(), testing::ExitedWithCode(1),
                "readQueueSize");
}

TEST(ConfigDeath, RejectsNonPowerOfTwoSubarrays)
{
    MemConfig cfg;
    cfg.org.subarraysPerBank = 12;  // Divides nothing power-of-two-ly.
    EXPECT_EXIT(cfg.finalize(), testing::ExitedWithCode(1),
                "subarraysPerBank.*power of two");
}

TEST(ConfigDeath, RejectsZeroOverlappedRefPb)
{
    MemConfig cfg;
    cfg.maxOverlappedRefPb = 0;
    EXPECT_EXIT(cfg.finalize(), testing::ExitedWithCode(1),
                "maxOverlappedRefPb");
}

TEST(ConfigDeath, RejectsBadCoreCount)
{
    SystemConfig cfg;
    cfg.numCores = 0;
    EXPECT_EXIT(cfg.finalize(), testing::ExitedWithCode(1), "numCores");
}

TEST(ConfigDeath, RejectsBadRetention)
{
    MemConfig cfg;
    cfg.retentionMs = 48;
    EXPECT_EXIT(cfg.finalize(), testing::ExitedWithCode(1), "retention");
}

TEST(ConfigDeath, RejectsIndivisibleSubarrays)
{
    MemConfig cfg;
    cfg.org.subarraysPerBank = 7;
    EXPECT_EXIT(cfg.finalize(), testing::ExitedWithCode(1), "subarrays");
}
