/**
 * @file
 * Unit tests for the channel controller's arbitration: demand service,
 * refresh priority and blocking semantics, writeback-mode switching,
 * write-queue forwarding, and the precharge assist.
 */

#include <gtest/gtest.h>

#include <vector>

#include "controller/controller.hh"
#include "dram/address.hh"

using namespace dsarp;

namespace {

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
    {
        cfg_.org.channels = 1;
        cfg_.refresh = RefreshMode::kNoRefresh;
        cfg_.finalize();
        timing_ = TimingParams::ddr3_1333(cfg_);
        map_ = std::make_unique<AddressMap>(cfg_.org);
        rebuild();
    }

    void
    rebuild()
    {
        ctl_ = std::make_unique<ChannelController>(0, &cfg_, &timing_, 1);
        completions_.clear();
        ctl_->setReadCallback([this](const Request &req, Tick done) {
            completions_.push_back({req.id, done});
        });
    }

    Request
    req(std::uint64_t id, RankId r, BankId b, RowId row, int col = 0,
        bool is_write = false)
    {
        Request rq;
        rq.id = id;
        rq.isWrite = is_write;
        rq.loc.rank = r;
        rq.loc.bank = b;
        rq.loc.row = row;
        rq.loc.column = col;
        DecodedAddr d = rq.loc;
        d.channel = 0;
        rq.addr = map_->encode(d);
        rq.loc = map_->decode(rq.addr);
        return rq;
    }

    void
    runTicks(int n)
    {
        for (int i = 0; i < n; ++i) {
            ctl_->tick(now_);
            ++now_;
        }
    }

    MemConfig cfg_;
    TimingParams timing_;
    std::unique_ptr<AddressMap> map_;
    std::unique_ptr<ChannelController> ctl_;
    std::vector<std::pair<std::uint64_t, Tick>> completions_;
    Tick now_ = 0;
};

} // namespace

TEST_F(ControllerTest, ReadCompletesWithExpectedLatency)
{
    ASSERT_TRUE(ctl_->enqueueRead(req(1, 0, 0, 10), now_));
    runTicks(60);
    ASSERT_EQ(completions_.size(), 1u);
    EXPECT_EQ(completions_[0].first, 1u);
    // ACT at t=0 (request visible at tick 0), RDA at tRCD, data at
    // +tCL+tBL; delivery happens on the controller tick at/after that.
    const Tick expected =
        Tick(0) + (timing_.tRcd + timing_.tCl + timing_.tBl);
    EXPECT_GE(completions_[0].second, expected);
    EXPECT_LE(completions_[0].second, expected + 4);
}

TEST_F(ControllerTest, RowHitsBatchAndPipelinedReads)
{
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ctl_->enqueueRead(req(i, 0, 0, 10, i), now_));
    runTicks(120);
    EXPECT_EQ(completions_.size(), 4u);
    // One ACT served all four column commands (row-hit batching).
    EXPECT_EQ(ctl_->channel().stats().acts, 1u);
    EXPECT_EQ(ctl_->channel().stats().reads, 4u);
}

TEST_F(ControllerTest, ReadsToDistinctBanksOverlap)
{
    ASSERT_TRUE(ctl_->enqueueRead(req(1, 0, 0, 10), now_));
    ASSERT_TRUE(ctl_->enqueueRead(req(2, 0, 1, 20), now_));
    runTicks(80);
    ASSERT_EQ(completions_.size(), 2u);
    // Bank-level parallelism: the second read finishes well before two
    // serialized accesses would.
    const Tick serialized =
        Tick(0) + 2 * (timing_.tRcd + timing_.tCl + timing_.tBl);
    EXPECT_LT(completions_[1].second, serialized);
}

TEST_F(ControllerTest, WritesWaitForWritebackMode)
{
    for (int i = 0; i < cfg_.writeHighWatermark - 1; ++i) {
        ASSERT_TRUE(
            ctl_->enqueueWrite(req(100 + i, 0, i % 8, 5, i % 64, true),
                               now_));
    }
    runTicks(200);
    EXPECT_EQ(ctl_->stats().writesIssued, 0u)
        << "below the high watermark no writes drain";
    EXPECT_FALSE(ctl_->inWritebackMode());

    ASSERT_TRUE(ctl_->enqueueWrite(req(999, 0, 0, 5, 63, true), now_));
    runTicks(10);
    EXPECT_TRUE(ctl_->inWritebackMode());
    runTicks(800);
    EXPECT_GT(ctl_->stats().writesIssued, 0u);
    EXPECT_FALSE(ctl_->inWritebackMode())
        << "drain stops at the low watermark";
    // Exactly highWatermark - lowWatermark writes drained.
    EXPECT_EQ(static_cast<int>(ctl_->stats().writesIssued),
              cfg_.writeHighWatermark - cfg_.writeLowWatermark);
}

TEST_F(ControllerTest, ReadsStallDuringWritebackMode)
{
    // Fill the write queue to trigger writeback mode, then enqueue a
    // read: it must not be served until the drain completes.
    for (int i = 0; i < cfg_.writeHighWatermark; ++i) {
        ASSERT_TRUE(
            ctl_->enqueueWrite(req(100 + i, 0, i % 8, 5, i % 64, true),
                               now_));
    }
    runTicks(3);
    ASSERT_TRUE(ctl_->inWritebackMode());
    ASSERT_TRUE(ctl_->enqueueRead(req(1, 0, 0, 10), now_));
    while (ctl_->inWritebackMode() && now_ < 5000)
        runTicks(1);
    const Tick drain_end = now_;
    runTicks(100);
    ASSERT_EQ(completions_.size(), 1u);
    EXPECT_GT(completions_[0].second, drain_end);
}

TEST_F(ControllerTest, ForwardedReadServedFromWriteQueue)
{
    const Request write = req(50, 0, 3, 7, 9, true);
    ASSERT_TRUE(ctl_->enqueueWrite(write, now_));
    Request read = req(51, 0, 3, 7, 9, false);
    read.addr = write.addr;
    read.loc = write.loc;
    ASSERT_TRUE(ctl_->enqueueRead(read, now_));
    runTicks(5);
    ASSERT_EQ(completions_.size(), 1u);
    EXPECT_EQ(completions_[0].first, 51u);
    EXPECT_EQ(ctl_->stats().forwardedReads, 1u);
    EXPECT_EQ(ctl_->channel().stats().reads, 0u)
        << "no DRAM read for a forwarded request";
}

TEST_F(ControllerTest, QueueFullRejects)
{
    for (int i = 0; i < cfg_.readQueueSize; ++i)
        ASSERT_TRUE(ctl_->enqueueRead(req(i, 1, i % 8, i), now_));
    // One may have issued its ACT but stays queued until the column
    // command; without ticking, the queue must be full now.
    EXPECT_FALSE(ctl_->enqueueRead(req(999, 0, 0, 0), now_));
}

TEST_F(ControllerTest, UrgentRefreshBlocksNewActsToTargetBank)
{
    cfg_.refresh = RefreshMode::kPerBank;
    rebuild();
    // Keep bank 0 of rank 0 under continuous load; once its refresh is
    // forced (credit exhausted), a refresh must still get through.
    std::uint64_t id = 0;
    for (Tick end = Tick(0) + 12 * timing_.tRefiAb; now_ < end;) {
        if (ctl_->pendingReads(0, 0) < 4)
            ctl_->enqueueRead(req(id++, 0, 0, static_cast<RowId>(id % 64)),
                              now_);
        runTicks(1);
    }
    EXPECT_GT(ctl_->channel().stats().refPb, 0u);
    EXPECT_GT(ctl_->stats().readsCompleted, 100u)
        << "reads keep flowing around refreshes";
}

TEST_F(ControllerTest, RefreshSchedulerStatsExposed)
{
    cfg_.refresh = RefreshMode::kAllBank;
    rebuild();
    runTicks(static_cast<int>((4 * timing_.tRefiAb).count()));
    EXPECT_GT(ctl_->refreshStats().issued, 0u);
    EXPECT_EQ(ctl_->refreshStats().issued,
              ctl_->channel().stats().refAb);
}

TEST_F(ControllerTest, ResetStatsClearsEverything)
{
    ASSERT_TRUE(ctl_->enqueueRead(req(1, 0, 0, 10), now_));
    runTicks(60);
    ctl_->resetStats();
    EXPECT_EQ(ctl_->stats().readsCompleted, 0u);
    EXPECT_EQ(ctl_->stats().ticks, 0u);
    EXPECT_EQ(ctl_->channel().stats().acts, 0u);
}

TEST_F(ControllerTest, CommandLogRecordsIssuedCommands)
{
    std::vector<TimedCommand> log;
    ctl_->setCommandLog(&log);
    ASSERT_TRUE(ctl_->enqueueRead(req(1, 0, 0, 10), now_));
    runTicks(60);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].cmd.type, CommandType::kAct);
    EXPECT_EQ(log[1].cmd.type, CommandType::kRdA);
    EXPECT_LT(log[0].tick, log[1].tick);
}

TEST_F(ControllerTest, OccupancyStatsAccumulate)
{
    ASSERT_TRUE(ctl_->enqueueRead(req(1, 0, 0, 10), now_));
    runTicks(10);
    EXPECT_GT(ctl_->stats().readQueueOccupancySum, 0u);
    EXPECT_EQ(ctl_->stats().ticks, 10u);
}

TEST_F(ControllerTest, LastDemandActivityTracksRanks)
{
    EXPECT_EQ(ctl_->lastDemandActivity(1), 0u);
    now_ = 100;
    ASSERT_TRUE(ctl_->enqueueRead(req(1, 1, 0, 10), now_));
    EXPECT_EQ(ctl_->lastDemandActivity(1), 100u);
    EXPECT_EQ(ctl_->lastDemandActivity(0), 0u);
}
