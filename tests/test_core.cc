/**
 * @file
 * Unit tests for the trace-driven core model: retire width, window
 * blocking on loads, MSHR limits, and write-queue backpressure.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/core.hh"

using namespace dsarp;

namespace {

/** Deterministic trace: fixed gap, sequential addresses. */
class FixedTrace : public TraceSource
{
  public:
    explicit FixedTrace(int gap, bool writeback = false)
        : gap_(gap), writeback_(writeback)
    {}

    TraceRecord
    next() override
    {
        TraceRecord rec;
        rec.gap = gap_;
        rec.readAddr = nextAddr_;
        nextAddr_ += 64;
        rec.hasWriteback = writeback_;
        rec.writebackAddr = rec.readAddr + (1 << 20);
        return rec;
    }

  private:
    int gap_;
    bool writeback_;
    Addr nextAddr_ = 0;
};

class CoreHarness
{
  public:
    CoreHarness(TraceSource *trace, bool accept_reads = true,
                bool accept_writes = true, bool instant_complete = true)
        : core_(0, &cfg_, trace)
    {
        core_.bind(
            [this, accept_reads,
             instant_complete](std::uint64_t id, Addr) {
                if (!accept_reads)
                    return false;
                if (instant_complete)
                    toComplete_.push_back(id);
                else
                    pending_.push_back(id);
                return true;
            },
            [this, accept_writes](Addr) {
                if (!accept_writes)
                    return false;
                ++writes_;
                return true;
            });
    }

    /** One DRAM tick; completions issued last tick land first. */
    void
    tick()
    {
        for (std::uint64_t id : toComplete_)
            core_.onReadComplete(id);
        toComplete_.clear();
        core_.tick();
    }

    CoreConfig cfg_;
    Core core_;
    std::vector<std::uint64_t> toComplete_;
    std::vector<std::uint64_t> pending_;
    int writes_ = 0;
};

} // namespace

TEST(Core, RetireWidthBoundsIpc)
{
    FixedTrace trace(1000000);  // Essentially no memory operations.
    CoreHarness h(&trace);
    for (int i = 0; i < 1000; ++i)
        h.tick();
    const CoreStats &s = h.core_.stats();
    EXPECT_EQ(s.cpuCycles, 6000u);
    // 3-wide: IPC must be exactly at the width for a compute-only trace.
    EXPECT_NEAR(s.ipc(), 3.0, 0.01);
}

TEST(Core, WindowBlocksOnOutstandingLoad)
{
    FixedTrace trace(0);  // Every instruction is a load.
    CoreHarness h(&trace, true, true, /*instant_complete=*/false);
    for (int i = 0; i < 100; ++i)
        h.tick();
    const CoreStats &s = h.core_.stats();
    // No load ever completes: nothing can retire past the first one.
    EXPECT_EQ(s.instructionsRetired, 0u);
    EXPECT_GT(s.readStallCycles, 0u);
}

TEST(Core, MshrLimitCapsOutstandingReads)
{
    FixedTrace trace(0);
    CoreHarness h(&trace, true, true, /*instant_complete=*/false);
    for (int i = 0; i < 100; ++i)
        h.tick();
    EXPECT_EQ(h.core_.outstandingReads(), h.cfg_.mshrs);
    EXPECT_EQ(h.core_.stats().readsIssued,
              static_cast<std::uint64_t>(h.cfg_.mshrs));
}

TEST(Core, CompletionsUnblockRetirement)
{
    FixedTrace trace(10);
    CoreHarness h(&trace);  // Instant completion.
    for (int i = 0; i < 500; ++i)
        h.tick();
    const CoreStats &s = h.core_.stats();
    EXPECT_GT(s.instructionsRetired, 1000u);
    EXPECT_GT(s.readsIssued, 50u);
    // Only the loads issued during the last tick can still be in flight.
    EXPECT_LE(h.core_.outstandingReads(), h.cfg_.mshrs);
}

TEST(Core, RejectedReadsRetryWithoutLoss)
{
    FixedTrace trace(5);
    CoreHarness h(&trace, /*accept_reads=*/false);
    for (int i = 0; i < 50; ++i)
        h.tick();
    EXPECT_EQ(h.core_.stats().readsIssued, 0u);
    // The window fills with the gap instructions and retires them.
    EXPECT_GT(h.core_.stats().instructionsRetired, 0u);
}

TEST(Core, WritebacksGoOutBeforeTheRead)
{
    FixedTrace trace(5, /*writeback=*/true);
    CoreHarness h(&trace);
    for (int i = 0; i < 200; ++i)
        h.tick();
    EXPECT_EQ(h.core_.stats().writebacksIssued,
              static_cast<std::uint64_t>(h.writes_));
    EXPECT_GE(h.writes_, 1);
    // One writeback per read record.
    EXPECT_EQ(h.core_.stats().writebacksIssued,
              h.core_.stats().readsIssued);
}

TEST(Core, FullWriteQueueStallsFetchNotRetire)
{
    FixedTrace trace(5, /*writeback=*/true);
    CoreHarness h(&trace, true, /*accept_writes=*/false);
    for (int i = 0; i < 100; ++i)
        h.tick();
    // No read can issue because its writeback cannot drain...
    EXPECT_EQ(h.core_.stats().readsIssued, 0u);
    // ...but the already-fetched gap instructions retire fine.
    EXPECT_GT(h.core_.stats().instructionsRetired, 0u);
}

TEST(Core, ResetStatsPreservesProgress)
{
    FixedTrace trace(10);
    CoreHarness h(&trace);
    for (int i = 0; i < 100; ++i)
        h.tick();
    h.core_.resetStats();
    EXPECT_EQ(h.core_.stats().instructionsRetired, 0u);
    EXPECT_EQ(h.core_.stats().cpuCycles, 0u);
    for (int i = 0; i < 100; ++i)
        h.tick();
    EXPECT_GT(h.core_.stats().instructionsRetired, 0u);
}

TEST(Core, IpcScalesWithMemoryLatencyPressure)
{
    // A memory-light trace must out-IPC a memory-heavy one when loads
    // never complete quickly; with instant completion both do well.
    FixedTrace light(500);
    FixedTrace heavy(5);
    CoreHarness hl(&light);
    CoreHarness hh(&heavy);
    for (int i = 0; i < 500; ++i) {
        hl.tick();
        hh.tick();
    }
    EXPECT_GT(hl.core_.stats().ipc(), 2.5);
    EXPECT_GT(hh.core_.stats().ipc(), 1.0);
}
