/**
 * @file
 * Unit tests for DARP (Section 4.2): out-of-order per-bank refresh with
 * the erratum's credit bounds, idle-bank pull-in, and write-refresh
 * parallelization during writeback mode.
 */

#include <gtest/gtest.h>

#include "mock_view.hh"
#include "refresh/darp.hh"

using namespace dsarp;

namespace {

class DarpTest : public ::testing::Test
{
  protected:
    DarpTest()
    {
        cfg_.refresh = RefreshMode::kDarp;
        cfg_.finalize();
        timing_ = TimingParams::ddr3_1333(cfg_);
        view_ = std::make_unique<MockView>(&cfg_, &timing_);
        sched_ = std::make_unique<DarpScheduler>(&cfg_, &timing_,
                                                 view_.get());
    }

    /** Issue the first legal request from a list; true if issued. */
    bool
    issueFirstLegal(const std::vector<RefreshRequest> &reqs, Tick t)
    {
        for (const RefreshRequest &req : reqs) {
            Command cmd;
            cmd.type = CommandType::kRefPb;
            cmd.rank = req.rank;
            cmd.bank = req.bank;
            if (view_->channel().canIssue(cmd, t)) {
                view_->channel().issue(cmd, t);
                sched_->onIssued(req, t);
                return true;
            }
        }
        return false;
    }

    MemConfig cfg_;
    TimingParams timing_;
    std::unique_ptr<MockView> view_;
    std::unique_ptr<DarpScheduler> sched_;
};

} // namespace

TEST_F(DarpTest, PostponesRefreshOfBusyBank)
{
    // Bank (0,0) always busy: its nominal refreshes get postponed.
    view_->setReads(0, 0, 4);
    std::vector<RefreshRequest> urgent;
    for (Tick t = 0; t <= 2 * timing_.tRefiAb; ++t) {
        sched_->tick(t);
        urgent.clear();
        sched_->urgent(t, urgent);
        for (const RefreshRequest &req : urgent)
            EXPECT_FALSE(req.rank == 0 && req.bank == 0)
                << "busy bank must not be refreshed while credit remains";
    }
    EXPECT_GT(sched_->stats().postponed, 0u);
    EXPECT_GT(sched_->ledger().owed(0, 0), 0);
}

TEST_F(DarpTest, RefreshesIdleBankOnTime)
{
    // All banks idle: nominal refreshes issue on schedule.
    std::vector<RefreshRequest> urgent;
    std::uint64_t issued = 0;
    for (Tick t = 0; t <= 2 * timing_.tRefiAb; ++t) {
        sched_->tick(t);
        urgent.clear();
        sched_->urgent(t, urgent);
        if (issueFirstLegal(urgent, t))
            ++issued;
    }
    // Accrual starts one period in: one full interval of obligations
    // (8 banks x 2 ranks) plus the first banks of the next wave.
    EXPECT_GE(issued, 16u);
}

TEST_F(DarpTest, ForcesBusyBankAtCreditLimit)
{
    view_->setReads(0, 0, 4);
    std::vector<RefreshRequest> urgent;
    bool forced_bank0 = false;
    Tick forced_at = 0;
    for (Tick t = 0; t <= 10 * timing_.tRefiAb; ++t) {
        sched_->tick(t);
        // The erratum bound: never more than 8 postponed.
        ASSERT_LE(sched_->ledger().owed(0, 0), 8);
        urgent.clear();
        sched_->urgent(t, urgent);
        for (const RefreshRequest &req : urgent) {
            if (req.rank == 0 && req.bank == 0) {
                Command cmd;
                cmd.type = CommandType::kRefPb;
                cmd.rank = 0;
                cmd.bank = 0;
                if (view_->channel().canIssue(cmd, t)) {
                    view_->channel().issue(cmd, t);
                    sched_->onIssued(req, t);
                    forced_bank0 = true;
                    if (!forced_at)
                        forced_at = t;
                }
            }
        }
        if (forced_bank0)
            break;
    }
    EXPECT_TRUE(forced_bank0);
    EXPECT_GE(forced_at, 8 * timing_.tRefiAb)
        << "the full credit window should be used first";
    EXPECT_GT(sched_->stats().forced, 0u);
}

TEST_F(DarpTest, OpportunisticPullsInIdleBank)
{
    // Banks 0..3 of rank 0 busy; the rest idle.
    for (BankId b = 0; b < 4; ++b)
        view_->setReads(0, b, 2);
    sched_->tick(1);
    RefreshRequest opp;
    ASSERT_TRUE(sched_->opportunistic(1, opp));
    EXPECT_EQ(view_->pendingDemands(opp.rank, opp.bank), 0)
        << "pull-in target must be idle";
    EXPECT_FALSE(opp.blocking);
}

TEST_F(DarpTest, OpportunisticRespectsPullInBound)
{
    // Pull in as aggressively as the policy allows for a while; the
    // per-bank balance must never cross the JEDEC -8 bound.
    Tick t = 1;
    int issued = 0;
    for (int iter = 0; iter < 200; ++iter) {
        sched_->tick(t);
        RefreshRequest opp;
        if (!sched_->opportunistic(t, opp)) {
            t += 1;
            continue;
        }
        Command cmd;
        cmd.type = CommandType::kRefPb;
        cmd.rank = opp.rank;
        cmd.bank = opp.bank;
        ASSERT_TRUE(view_->channel().canIssue(cmd, t));
        view_->channel().issue(cmd, t);
        sched_->onIssued(opp, t);
        ++issued;
        t += timing_.tRfcPb + Cycles(1);
    }
    for (RankId r = 0; r < 2; ++r)
        for (BankId b = 0; b < 8; ++b)
            EXPECT_GE(sched_->ledger().owed(r, b), -8);
    EXPECT_GT(issued, 0);
    EXPECT_GT(sched_->stats().pulledIn, 0u);
}

TEST_F(DarpTest, OpportunisticSkipsBusyBanks)
{
    // Everything busy: no opportunistic refresh.
    for (RankId r = 0; r < 2; ++r)
        for (BankId b = 0; b < 8; ++b)
            view_->setReads(r, b, 1);
    sched_->tick(1);
    RefreshRequest opp;
    EXPECT_FALSE(sched_->opportunistic(1, opp));
}

TEST_F(DarpTest, WriteRefreshParallelizationPicksLeastLoadedBank)
{
    view_->setWriteback(true);
    view_->setWrites(0, 0, 6);
    view_->setWrites(0, 1, 3);
    view_->setWrites(0, 2, 9);  // Bank 3..7 idle -> min demand = bank 3+.
    view_->setWrites(0, 3, 1);
    for (BankId b = 4; b < 8; ++b)
        view_->setWrites(0, b, 2);

    sched_->tick(1);
    std::vector<RefreshRequest> urgent;
    sched_->urgent(1, urgent);
    // Find the rank-0 injection (non-blocking request).
    bool found = false;
    for (const RefreshRequest &req : urgent) {
        if (!req.blocking && req.rank == 0) {
            EXPECT_EQ(view_->pendingDemands(0, req.bank), 1)
                << "bank 3 has the fewest pending demands";
            EXPECT_EQ(req.bank, 3);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(DarpTest, NoInjectionOutsideWritebackMode)
{
    view_->setWriteback(false);
    view_->setWrites(0, 0, 6);
    sched_->tick(1);
    std::vector<RefreshRequest> urgent;
    sched_->urgent(1, urgent);
    for (const RefreshRequest &req : urgent)
        EXPECT_TRUE(req.blocking) << "no write-drain injection expected";
}

TEST_F(DarpTest, NoInjectionWhileRefreshInFlight)
{
    view_->setWriteback(true);
    // Start a refresh in rank 0.
    Command cmd;
    cmd.type = CommandType::kRefPb;
    cmd.rank = 0;
    cmd.bank = 7;
    view_->channel().issue(cmd, 0);

    sched_->tick(1);
    std::vector<RefreshRequest> urgent;
    sched_->urgent(1, urgent);
    for (const RefreshRequest &req : urgent)
        EXPECT_NE(req.rank, 0)
            << "Algorithm 1 waits for the in-flight refresh";
}

TEST_F(DarpTest, WriteRefreshDisabledByConfig)
{
    MemConfig cfg = cfg_;
    cfg.darpWriteRefresh = false;
    DarpScheduler sched(&cfg, &timing_, view_.get());
    view_->setWriteback(true);
    sched.tick(1);
    std::vector<RefreshRequest> urgent;
    sched.urgent(1, urgent);
    EXPECT_TRUE(urgent.empty());
}
