/**
 * @file
 * Bit-identity regression for the repo's determinism contracts.
 *
 * One experiment, run under every combination the contracts promise is
 * equivalent -- {cycle, event} engine x {1, 4} baseline-sharding jobs
 * -- must produce a bit-identical RunResult: every counter equal and
 * every double equal as a bit pattern, not within a tolerance. A
 * tolerance would hide exactly the bug class this test exists for
 * (iteration-order-dependent floating-point folds, RNG draws keyed to
 * engine scheduling, shard-count-dependent accumulation).
 *
 * Three seeds guard against a fix that happens to work for one
 * arrival pattern.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulation.hh"

using namespace dsarp;

namespace {

/** The exact bits of a double, so EQ means identical, not close. */
std::uint64_t
bits(double v)
{
    std::uint64_t out;
    static_assert(sizeof(out) == sizeof(v));
    std::memcpy(&out, &v, sizeof(out));
    return out;
}

/**
 * Serialize everything RunResult reports into one comparable string.
 * Doubles go in as hex bit patterns; a mismatch anywhere shows up as
 * a readable diff in the assertion message.
 */
std::string
signature(const RunResult &res)
{
    std::ostringstream out;
    out << std::hex;
    out << "ipc:";
    for (double v : res.ipc)
        out << " " << bits(v);
    out << "\nalone:";
    for (double v : res.aloneIpc)
        out << " " << bits(v);
    out << "\nws=" << bits(res.ws) << " hs=" << bits(res.hs)
        << " maxSlowdown=" << bits(res.maxSlowdown)
        << " energy=" << bits(res.energyPerAccessNj);
    out << "\nlatency: n=" << res.readLatency.count()
        << " mean=" << bits(res.readLatency.mean())
        << " p50=" << bits(res.readLatency.percentile(50))
        << " p99=" << bits(res.readLatency.percentile(99));
    out << "\ncounters: " << res.readsCompleted << " "
        << res.writesIssued << " " << res.refAb << " " << res.refPb
        << " " << res.refSb << " " << res.refPbHidden << " "
        << res.srEnters << " " << res.srExits << " " << res.srTicks
        << " " << res.refOverlapTicks;
    out << "\ntenants:";
    for (const TenantResult &t : res.tenants) {
        out << " [" << t.priority << " " << t.generated << " "
            << t.injected << " " << bits(t.meanLatency) << " "
            << bits(t.p50) << " " << bits(t.p99) << " " << bits(t.p999)
            << " " << bits(t.slowdown) << "]";
    }
    out << " fairness=" << bits(res.tenantFairness);
    return out.str();
}

ExperimentConfig
smallConfig(std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.policy = "DSARP";
    cfg.numCores = 4;
    cfg.channels = 2;
    cfg.seed = seed;
    cfg.workloadSeed = seed + 1;
    // Explicit run lengths: the DSARP_BENCH_* env knobs must not be
    // able to change what this test pins.
    cfg.warmupCycles = 4000;
    cfg.measureCycles = 24000;
    return cfg;
}

RunResult
runOne(const ExperimentConfig &cfg, const std::string &engine, int jobs)
{
    ExperimentConfig c = cfg;
    c.engine = engine;
    Simulation sim = Simulation::builder().config(c).build();
    sim.prewarmBaselines(jobs);
    return sim.run();
}

} // namespace

TEST(Determinism, BitIdenticalAcrossEnginesAndJobShards)
{
    for (const std::uint64_t seed : {2ull, 7ull, 19ull}) {
        const ExperimentConfig cfg = smallConfig(seed);
        const std::string reference =
            signature(runOne(cfg, "cycle", 1));
        for (const char *engine : {"cycle", "event"}) {
            for (const int jobs : {1, 4}) {
                if (std::string(engine) == "cycle" && jobs == 1)
                    continue;
                EXPECT_EQ(signature(runOne(cfg, engine, jobs)),
                          reference)
                    << "seed=" << seed << " engine=" << engine
                    << " jobs=" << jobs;
            }
        }
    }
}

TEST(Determinism, BitIdenticalOpenLoopTraffic)
{
    // The open-loop front end has its own RNG streams (one per
    // tenant) and its own latency accounting; pin those the same way.
    for (const std::uint64_t seed : {3ull, 11ull}) {
        ExperimentConfig cfg = smallConfig(seed);
        cfg.traffic.mode = "poisson";
        cfg.traffic.ratePerKilocycle = 60.0;
        cfg.traffic.tenants = 2;
        const std::string reference =
            signature(runOne(cfg, "cycle", 1));
        for (const char *engine : {"cycle", "event"}) {
            for (const int jobs : {1, 4}) {
                if (std::string(engine) == "cycle" && jobs == 1)
                    continue;
                EXPECT_EQ(signature(runOne(cfg, engine, jobs)),
                          reference)
                    << "seed=" << seed << " engine=" << engine
                    << " jobs=" << jobs;
            }
        }
    }
}
