/**
 * @file
 * DramSpecRegistry tests: registration/lookup semantics, a
 * parameterized invariant suite over every registered spec x density,
 * the bit-identical DDR3-1333 equivalence with the pre-registry
 * derivation, config-layer round-trips for the "dram.spec" key, and an
 * end-to-end smoke run per spec.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <tuple>

#include "dram/spec.hh"
#include "sim/simulation.hh"
#include "sim/system.hh"
#include "workload/benchmark.hh"

using namespace dsarp;

namespace {

MemConfig
cfgFor(const std::string &spec, Density d, int retention_ms = 32,
       RefreshMode mode = RefreshMode::kAllBank)
{
    MemConfig cfg;
    cfg.dramSpec = spec;
    cfg.density = d;
    cfg.retentionMs = retention_ms;
    cfg.refresh = mode;
    cfg.finalize();
    return cfg;
}

} // namespace

TEST(DramSpecRegistry, AllSixSpecsRegistered)
{
    const auto &registry = DramSpecRegistry::instance();
    for (const char *name : {"DDR3-1066", "DDR3-1333", "DDR3-1600",
                             "DDR4-2400", "LPDDR4-3200", "DDR5-4800"}) {
        EXPECT_TRUE(registry.has(name)) << name;
    }
    EXPECT_GE(registry.names().size(), 6u);
}

TEST(DramSpecRegistry, LookupIsCaseInsensitiveAndAliased)
{
    const auto &registry = DramSpecRegistry::instance();
    EXPECT_EQ(registry.at("ddr3-1333").name, "DDR3-1333");
    EXPECT_EQ(registry.at("DDR3").name, "DDR3-1333");
    EXPECT_EQ(registry.at("ddr4").name, "DDR4-2400");
    EXPECT_EQ(registry.at("LPDDR4").name, "LPDDR4-3200");
    EXPECT_EQ(registry.at("ddr5").name, "DDR5-4800");
    EXPECT_EQ(registry.find("no-such-spec"), nullptr);
}

TEST(DramSpecRegistry, UnknownSpecIsNamedKeyError)
{
    const auto &registry = DramSpecRegistry::instance();
    const std::string msg = registry.unknownSpecMessage("DDR9-9999");
    EXPECT_NE(msg.find("config key 'dram.spec'"), std::string::npos);
    EXPECT_NE(msg.find("DDR9-9999"), std::string::npos);
    // The error must list every registered spec by canonical name.
    for (const std::string &name : registry.names())
        EXPECT_NE(msg.find(name), std::string::npos) << name;
    EXPECT_DEATH(registry.at("DDR9-9999"), "dram.spec");
}

// ---------------------------------------------------------------------
// Invariants that must hold for every registered spec x density.
// ---------------------------------------------------------------------

class SpecInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, Density>>
{
};

TEST_P(SpecInvariants, TimingConsistency)
{
    const auto [name, density] = GetParam();
    const DramSpec &spec = DramSpecRegistry::instance().at(name);
    const TimingParams t = spec.timingFor(cfgFor(name, density));

    // Refresh geometry: a per-bank refresh must fit inside its command
    // interval (otherwise REFpb schedules can never keep up), and the
    // per-bank interval must be the all-bank interval split over banks.
    EXPECT_GT(t.tRefiPb, t.tRfcPb);
    EXPECT_EQ(t.tRefiPb, t.tRefiAb / 8);
    EXPECT_GT(t.tRfcAb, 0);
    EXPECT_GE(t.tRfcAb, t.tRfcPb);

    // Core timing sanity: a row cycle covers activation + precharge.
    EXPECT_GE(t.tRc, t.tRas + t.tRp);

    // Derived values must match their defining formulas.
    EXPECT_EQ(t.tRtw, t.tCl + t.tBl + Cycles(2) - t.tCwl);
    EXPECT_GT(t.tRtw, 0);

    // FGR divisors: monotonically increasing in rate, yet sub-linear
    // (each finer command refreshes fewer rows but pays fixed
    // overheads), which is what makes FGR a net loss in the paper.
    EXPECT_DOUBLE_EQ(t.rfcDivisorFor(1), 1.0);
    EXPECT_GT(t.rfcDivisorFor(2), t.rfcDivisorFor(1));
    EXPECT_GT(t.rfcDivisorFor(4), t.rfcDivisorFor(2));
    EXPECT_LT(t.rfcDivisorFor(2), 2.0);
    EXPECT_LT(t.rfcDivisorFor(4), 4.0);
}

TEST_P(SpecInvariants, FgrRateScaling)
{
    const auto [name, density] = GetParam();
    const DramSpec &spec = DramSpecRegistry::instance().at(name);
    const TimingParams base = spec.timingFor(cfgFor(name, density));
    const TimingParams f2 = spec.timingFor(
        cfgFor(name, density, 32, RefreshMode::kFgr2x));
    const TimingParams f4 = spec.timingFor(
        cfgFor(name, density, 32, RefreshMode::kFgr4x));

    EXPECT_EQ(f2.tRefiAb, base.tRefiAb / 2);
    EXPECT_EQ(f4.tRefiAb, base.tRefiAb / 4);
    EXPECT_NEAR(static_cast<double>(base.tRfcAb.count()) /
                    static_cast<double>(f2.tRfcAb.count()),
                spec.fgrDivisor2x, 0.03);
    EXPECT_NEAR(static_cast<double>(base.tRfcAb.count()) /
                    static_cast<double>(f4.tRfcAb.count()),
                spec.fgrDivisor4x, 0.03);
    // Worst-case lockout per retention period grows with the rate (the
    // paper's complaint about FGR).
    EXPECT_GT(2 * f2.tRfcAb, base.tRfcAb);
    EXPECT_GT(4 * f4.tRfcAb, 2 * f2.tRfcAb);
}

TEST_P(SpecInvariants, SameBankGeometry)
{
    const auto [name, density] = GetParam();
    const DramSpec &spec = DramSpecRegistry::instance().at(name);
    const TimingParams t = spec.timingFor(cfgFor(name, density));

    if (spec.banksPerGroup <= 0) {
        // No same-bank refresh: every derived field must stay zeroed
        // (the checker and the REFsb policy key off this).
        EXPECT_EQ(t.banksPerGroup, 0);
        EXPECT_EQ(t.tRefiSb, 0u);
        EXPECT_EQ(t.tRfcSb, 0);
        return;
    }

    // A slice command must fit inside its interval, cover banks the
    // bank-group declaration promises, and cost no more than a full
    // all-bank refresh while beating one per-bank command per bank.
    EXPECT_GT(t.tRefiSb, t.tRfcSb);
    EXPECT_EQ(t.banksPerGroup, spec.banksPerGroup);
    EXPECT_EQ(8 % spec.banksPerGroup, 0)
        << "groups must tile the default 8-bank rank";
    EXPECT_EQ(t.tRefiSb, t.tRefiAb / (8 / spec.banksPerGroup));
    EXPECT_GT(t.tRfcSb, 0);
    EXPECT_LE(t.tRfcSb, t.tRfcAb);
    EXPECT_GE(t.tRfcSb, t.tRfcPb);
    EXPECT_LT(t.tRfcSb, spec.banksPerGroup * t.tRfcPb)
        << "one slice must beat refreshing its banks one by one";
}

TEST_P(SpecInvariants, RefreshGeometryCoversAllBanksPerRetention)
{
    // All-specs coverage property: the burst must tile the row, and
    // each refresh geometry -- all-bank, per-bank, same-bank -- must
    // cover every row of every bank exactly once per retention window
    // (tREFW): slots x rows-per-slot = rows-per-bank, and the
    // per-unit command interval tiles tREFIab with no uncovered
    // remainder larger than the unit count.
    const auto [name, density] = GetParam();
    const DramSpec &spec = DramSpecRegistry::instance().at(name);
    const MemConfig cfg = cfgFor(name, density);
    const TimingParams t = spec.timingFor(cfg);

    EXPECT_EQ(cfg.org.rowBytes % spec.burstBytes(), 0) << name;
    EXPECT_EQ(spec.burstBytes() % cfg.org.lineBytes, 0) << name;

    EXPECT_EQ(t.rowsPerRefresh * spec.refreshesPerRetention,
              cfg.org.rowsPerBank)
        << "refresh slots must cover the bank exactly once per tREFW";

    const int banks = cfg.org.banksPerRank;
    EXPECT_LE(t.tRefiPb * banks, t.tRefiAb);
    EXPECT_LT(t.tRefiAb - t.tRefiPb * banks, static_cast<Tick>(banks))
        << "per-bank slots must tile the all-bank interval";
    if (t.banksPerGroup > 0) {
        const int groups = banks / t.banksPerGroup;
        EXPECT_LE(t.tRefiSb * groups, t.tRefiAb);
        EXPECT_LT(t.tRefiAb - t.tRefiSb * groups,
                  static_cast<Tick>(groups))
            << "same-bank slices must tile the all-bank interval";
    }
}

TEST_P(SpecInvariants, RetentionScaling)
{
    const auto [name, density] = GetParam();
    const DramSpec &spec = DramSpecRegistry::instance().at(name);
    const TimingParams t32 = spec.timingFor(cfgFor(name, density, 32));
    const TimingParams t64 = spec.timingFor(cfgFor(name, density, 64));

    // Doubling retention doubles the command spacing but never the
    // latency or the per-command row coverage.
    EXPECT_NEAR(static_cast<double>(t64.tRefiAb.count()),
                2.0 * static_cast<double>(t32.tRefiAb.count()), 2.0);
    EXPECT_EQ(t64.tRfcAb, t32.tRfcAb);
    EXPECT_EQ(t64.rowsPerRefresh, t32.rowsPerRefresh);
}

namespace {

std::string
invariantName(
    const ::testing::TestParamInfo<std::tuple<std::string, Density>> &info)
{
    std::string out = std::get<0>(info.param) + "_" +
        densityName(std::get<1>(info.param));
    for (char &c : out) {
        if (c == '-')
            c = '_';
    }
    return out;
}

std::vector<std::string>
allSpecNames()
{
    return DramSpecRegistry::instance().names();
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, SpecInvariants,
    ::testing::Combine(::testing::ValuesIn(allSpecNames()),
                       ::testing::Values(Density::k8Gb, Density::k16Gb,
                                         Density::k32Gb)),
    invariantName);

// ---------------------------------------------------------------------
// Density monotonicity per spec: bigger chips refresh longer.
// ---------------------------------------------------------------------

TEST(DramSpec, TrfcGrowsWithDensity)
{
    for (const std::string &name : allSpecNames()) {
        const DramSpec &spec = DramSpecRegistry::instance().at(name);
        const TimingParams t8 = spec.timingFor(cfgFor(name, Density::k8Gb));
        const TimingParams t16 =
            spec.timingFor(cfgFor(name, Density::k16Gb));
        const TimingParams t32 =
            spec.timingFor(cfgFor(name, Density::k32Gb));
        EXPECT_LT(t8.tRfcAb, t16.tRfcAb) << name;
        EXPECT_LT(t16.tRfcAb, t32.tRfcAb) << name;
        EXPECT_LT(t8.tRfcPb, t16.tRfcPb) << name;
        EXPECT_LT(t16.tRfcPb, t32.tRfcPb) << name;
    }
}

TEST(DramSpec, LpddrUsesNativePerBankTable)
{
    const DramSpec &lp = DramSpecRegistry::instance().at("LPDDR4-3200");
    ASSERT_TRUE(lp.nativePerBankRefresh);
    const TimingParams t = lp.timingFor(cfgFor("LPDDR4-3200",
                                               Density::k8Gb));
    // 140 ns at tCK = 0.625 ns -> 224 cycles, straight from the native
    // table rather than tRFCab / 2.3 (= 179 cycles).
    EXPECT_EQ(t.tRfcPb,
              TimingParams::nsToCycles(Nanoseconds(140.0),
                                       Nanoseconds(0.625)));
    const double ratio = static_cast<double>(t.tRfcAb.count()) /
        static_cast<double>(t.tRfcPb.count());
    EXPECT_NEAR(ratio, 2.0, 0.01);
}

TEST(DramSpec, Ddr5CarriesSameBankRefresh)
{
    const DramSpec &d5 = DramSpecRegistry::instance().at("DDR5-4800");
    EXPECT_EQ(d5.banksPerGroup, 4);
    // tRFCsb = 115/130/190 ns at 8/16/32 Gb, always below tRFC1.
    for (int i = 0; i < 3; ++i) {
        EXPECT_GT(d5.tRfcSbNs[i].ns(), 0.0) << i;
        EXPECT_LT(d5.tRfcSbNs[i], d5.tRfcAbNs[i]) << i;
    }
    // Native tRFC1/tRFC2 FGR divisor (195/130 ns at 8 Gb); the 4x
    // divisor is a projection but must stay steeper than 2x.
    EXPECT_NEAR(d5.fgrDivisor2x, 195.0 / 130.0, 1e-9);
    EXPECT_GT(d5.fgrDivisor4x, d5.fgrDivisor2x);
    // Same-bank slice energy is derived at the resolved geometry and
    // density -- a full sweep of slices costs one REFab's charge
    // (groups x tRFCsb / tRFCab) -- never a static spec constant that
    // would misprice re-sliced or non-canonical bank counts.
    const TimingParams t8 =
        d5.timingFor(cfgFor("DDR5-4800", Density::k8Gb));
    EXPECT_NEAR(t8.refSbEnergyDivisor, 2.0 * 115.0 / 195.0, 1e-9)
        << "8 banks -> 2 groups";
    MemConfig canonical = cfgFor("DDR5-4800", Density::k32Gb);
    canonical.org.banksPerRank = 32;
    EXPECT_NEAR(d5.timingFor(canonical).refSbEnergyDivisor,
                8.0 * 190.0 / 410.0, 1e-9)
        << "32 banks -> 8 groups at the 32 Gb ratio";
    EXPECT_LT(d5.energy.idd6, d5.energy.idd2n)
        << "self-refresh must undercut precharge standby";
}

TEST(DramSpec, Ddr4CarriesNativeFgrDivisors)
{
    const DramSpec &d4 = DramSpecRegistry::instance().at("DDR4-2400");
    // tRFC1/tRFC2/tRFC4 = 350/260/160 ns at 8 Gb.
    EXPECT_NEAR(d4.fgrDivisor2x, 350.0 / 260.0, 1e-9);
    EXPECT_NEAR(d4.fgrDivisor4x, 350.0 / 160.0, 1e-9);
    // Strictly steeper than the paper's DDR3 projections at 4x.
    EXPECT_GT(d4.fgrDivisor4x, TimingParams::fgrRfcDivisor(4));
}

// ---------------------------------------------------------------------
// The default spec must reproduce the pre-registry derivation exactly.
// ---------------------------------------------------------------------

namespace {

void
expectIdenticalTimings(const TimingParams &a, const TimingParams &b)
{
    EXPECT_DOUBLE_EQ(a.tCkNs.ns(), b.tCkNs.ns());
    EXPECT_EQ(a.tCl, b.tCl);
    EXPECT_EQ(a.tCwl, b.tCwl);
    EXPECT_EQ(a.tRcd, b.tRcd);
    EXPECT_EQ(a.tRp, b.tRp);
    EXPECT_EQ(a.tRas, b.tRas);
    EXPECT_EQ(a.tRc, b.tRc);
    EXPECT_EQ(a.tBl, b.tBl);
    EXPECT_EQ(a.tCcd, b.tCcd);
    EXPECT_EQ(a.tRtp, b.tRtp);
    EXPECT_EQ(a.tWr, b.tWr);
    EXPECT_EQ(a.tWtr, b.tWtr);
    EXPECT_EQ(a.tRtw, b.tRtw);
    EXPECT_EQ(a.tRrd, b.tRrd);
    EXPECT_EQ(a.tFaw, b.tFaw);
    EXPECT_EQ(a.tRtrs, b.tRtrs);
    EXPECT_EQ(a.tRefiAb, b.tRefiAb);
    EXPECT_EQ(a.tRefiPb, b.tRefiPb);
    EXPECT_EQ(a.tRfcAb, b.tRfcAb);
    EXPECT_EQ(a.tRfcPb, b.tRfcPb);
    EXPECT_EQ(a.rowsPerRefresh, b.rowsPerRefresh);
    EXPECT_EQ(a.refreshesPerRetention, b.refreshesPerRetention);
}

} // namespace

TEST(DramSpec, DefaultSpecMatchesLegacyDerivation)
{
    for (Density d : {Density::k8Gb, Density::k16Gb, Density::k32Gb}) {
        for (int retention : {32, 64}) {
            for (RefreshMode mode :
                 {RefreshMode::kAllBank, RefreshMode::kPerBank,
                  RefreshMode::kDarp, RefreshMode::kFgr2x,
                  RefreshMode::kFgr4x}) {
                const MemConfig cfg =
                    cfgFor("DDR3-1333", d, retention, mode);
                expectIdenticalTimings(TimingParams::ddr3_1333(cfg),
                                       TimingParams::forConfig(cfg));
            }
        }
    }

    // The legacy frozen tRtw = 8 must equal the derived formula on the
    // default spec, or the pre-refactor seed would not be reproduced.
    const TimingParams t =
        TimingParams::forConfig(cfgFor("DDR3-1333", Density::k8Gb));
    EXPECT_EQ(t.tRtw, 8);
    EXPECT_EQ(t.tRefiPb, t.tRefiAb / 8);
}

TEST(DramSpec, DefaultSpecSmokeRunIsBitIdentical)
{
    // Same seed, same workload: selecting DDR3-1333 through the
    // registry (via an alias, even) must produce the exact IPC/WS of a
    // config that never mentions dram.spec.
    auto run = [](const std::string &spec) {
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.mem.org.channels = 1;
        cfg.mem.refresh = RefreshMode::kDarp;
        cfg.mem.sarp = true;
        cfg.seed = 7;
        if (!spec.empty())
            cfg.mem.dramSpec = spec;
        System sys(cfg, {benchmarkIndex("mcf-like"),
                         benchmarkIndex("gcc-like")});
        sys.run(30000);
        return sys.coreIpc();
    };
    const auto base = run("");
    const auto named = run("ddr3-1333");
    ASSERT_EQ(base.size(), named.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        EXPECT_EQ(base[i], named[i]) << "core " << i;
}

// ---------------------------------------------------------------------
// Config-layer round-trips for the "dram.spec" key.
// ---------------------------------------------------------------------

TEST(DramSpecConfig, KeyRoundTripsThroughSetFileAndEnv)
{
    ExperimentConfig cfg;
    EXPECT_EQ(cfg.dramSpec, "DDR3-1333");

    // Programmatic / CLI layer.
    cfg.set("dram.spec", "ddr4");
    EXPECT_EQ(cfg.dramSpecName(), "DDR4-2400");

    // Config-file layer.
    const std::string path = ::testing::TempDir() + "dram_spec_test.cfg";
    {
        std::ofstream out(path);
        out << "# backend selection\n"
            << "dram.spec = DDR3-1600\n";
    }
    cfg.applyFile(path);
    EXPECT_EQ(cfg.dramSpec, "DDR3-1600");
    std::remove(path.c_str());

    // Environment layer (highest of the three applied here).
    ::setenv("DSARP_SET", "dram.spec=lpddr4-3200", 1);
    cfg.applyEnv();
    ::unsetenv("DSARP_SET");
    EXPECT_EQ(cfg.dramSpecName(), "LPDDR4-3200");
}

TEST(DramSpecConfig, UnknownSpecFailsValidationWithNamedKey)
{
    ExperimentConfig cfg;
    cfg.dramSpec = "HBM3-9999";
    const std::string errors = cfg.validate();
    EXPECT_NE(errors.find("config key 'dram.spec'"), std::string::npos);
    EXPECT_NE(errors.find("HBM3-9999"), std::string::npos);
    EXPECT_NE(errors.find("DDR4-2400"), std::string::npos);
}

TEST(DramSpecConfig, EmptySpecValueIsRejected)
{
    ExperimentConfig cfg;
    const std::string err = cfg.trySet("dram.spec", "");
    EXPECT_NE(err.find("dram.spec"), std::string::npos);
    EXPECT_EQ(cfg.dramSpec, "DDR3-1333");
}

TEST(DramSpecConfig, SimulationResolvesAndCachesSpec)
{
    Simulation sim = Simulation::builder()
                         .policy("REFab")
                         .dramSpec("lpddr4")
                         .cores(2)
                         .warmupCycles(500)
                         .measureCycles(2000)
                         .build();
    EXPECT_EQ(sim.dramSpecName(), "LPDDR4-3200");
    EXPECT_EQ(sim.config().dramSpec, "LPDDR4-3200");
    EXPECT_TRUE(sim.dramSpec().nativePerBankRefresh);
}

// ---------------------------------------------------------------------
// Every registered spec must run end-to-end.
// ---------------------------------------------------------------------

class SpecEndToEnd : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SpecEndToEnd, SystemMakesProgressUnderDsarp)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.mem.org.channels = 1;
    cfg.mem.policy = "DSARP";
    cfg.mem.dramSpec = GetParam();
    cfg.seed = 11;
    System sys(cfg, {benchmarkIndex("milc-like"),
                     benchmarkIndex("soplex-like")});
    sys.run(Tick(0) + 4 * sys.timing().tRefiAb);

    EXPECT_EQ(sys.timing().spec, GetParam());
    std::uint64_t reads = 0, refreshes = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch) {
        reads += sys.controller(ch).stats().readsCompleted;
        const auto &cs = sys.controller(ch).channel().stats();
        refreshes += cs.refAb + cs.refPb;
    }
    EXPECT_GT(reads, 100u);
    EXPECT_GT(refreshes, 0u);
}

namespace {

std::string
specName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string out = info.param;
    for (char &c : out) {
        if (c == '-')
            c = '_';
    }
    return out;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllSpecs, SpecEndToEnd,
                         ::testing::ValuesIn(allSpecNames()), specName);
