/**
 * @file
 * Unit tests for the IDD-based energy model.
 */

#include <gtest/gtest.h>

#include "sim/energy.hh"

using namespace dsarp;

namespace {

TimingParams
timing()
{
    MemConfig cfg;
    cfg.finalize();
    return TimingParams::ddr3_1333(cfg);
}

} // namespace

TEST(Energy, ZeroStatsZeroEnergy)
{
    ChannelStats stats;
    const EnergyBreakdown e = channelEnergy(
        stats, timing(), EnergyParams::micron8GbDdr3(), 8);
    EXPECT_DOUBLE_EQ(e.totalNj(), 0.0);
}

TEST(Energy, ComponentsScaleLinearlyWithCounts)
{
    const TimingParams t = timing();
    const EnergyParams p = EnergyParams::micron8GbDdr3();
    ChannelStats one;
    one.acts = 1;
    one.reads = 1;
    one.writes = 1;
    ChannelStats ten;
    ten.acts = 10;
    ten.reads = 10;
    ten.writes = 10;
    const EnergyBreakdown e1 = channelEnergy(one, t, p, 8);
    const EnergyBreakdown e10 = channelEnergy(ten, t, p, 8);
    EXPECT_NEAR(e10.activateNj, 10 * e1.activateNj, 1e-9);
    EXPECT_NEAR(e10.readNj, 10 * e1.readNj, 1e-9);
    EXPECT_NEAR(e10.writeNj, 10 * e1.writeNj, 1e-9);
}

TEST(Energy, AllComponentsPositive)
{
    const TimingParams t = timing();
    ChannelStats stats;
    stats.acts = 100;
    stats.reads = 80;
    stats.writes = 20;
    stats.refAb = 4;
    stats.refAbCycles = 4ULL * t.tRfcAb;
    stats.refPb = 8;
    stats.refPbCycles = 8ULL * t.tRfcPb;
    stats.rankActiveTicks = 5000;
    stats.rankTotalTicks = 20000;
    const EnergyBreakdown e =
        channelEnergy(stats, t, EnergyParams::micron8GbDdr3(), 8);
    EXPECT_GT(e.activateNj, 0.0);
    EXPECT_GT(e.readNj, 0.0);
    EXPECT_GT(e.writeNj, 0.0);
    EXPECT_GT(e.refreshNj, 0.0);
    EXPECT_GT(e.backgroundNj, 0.0);
    EXPECT_DOUBLE_EQ(e.totalNj(), e.activateNj + e.readNj + e.writeNj +
                                      e.refreshNj + e.backgroundNj);
}

TEST(Energy, PerBankRefreshCheaperPerCycle)
{
    // Equal refresh cycle counts: the per-bank variant must cost ~1/8.
    const TimingParams t = timing();
    ChannelStats ab;
    ab.refAbCycles = 1000;
    ChannelStats pb;
    pb.refPbCycles = 1000;
    const EnergyParams p = EnergyParams::micron8GbDdr3();
    const double e_ab = channelEnergy(ab, t, p, 8).refreshNj;
    const double e_pb = channelEnergy(pb, t, p, 8).refreshNj;
    EXPECT_NEAR(e_pb, e_ab / 8.0, 1e-9);
}

TEST(Energy, ActiveStandbyCostsMoreThanIdle)
{
    const TimingParams t = timing();
    const EnergyParams p = EnergyParams::micron8GbDdr3();
    ChannelStats active;
    active.rankTotalTicks = 1000;
    active.rankActiveTicks = 1000;
    ChannelStats idle;
    idle.rankTotalTicks = 1000;
    idle.rankActiveTicks = 0;
    EXPECT_GT(channelEnergy(active, t, p, 8).backgroundNj,
              channelEnergy(idle, t, p, 8).backgroundNj);
}

TEST(Energy, PerAccessDivision)
{
    const TimingParams t = timing();
    ChannelStats stats;
    stats.acts = 10;
    stats.reads = 8;
    stats.writes = 2;
    const EnergyParams p = EnergyParams::micron8GbDdr3();
    const double total = channelEnergy(stats, t, p, 8).totalNj();
    EXPECT_NEAR(energyPerAccessNj(stats, t, p, 8), total / 10.0, 1e-12);
    ChannelStats empty;
    EXPECT_DOUBLE_EQ(energyPerAccessNj(empty, t, p, 8), 0.0);
}

TEST(Energy, SingleAccessEnergyInPlausibleRange)
{
    // One activate + one read should land in the nJ range, not pJ or uJ.
    const TimingParams t = timing();
    ChannelStats stats;
    stats.acts = 1;
    stats.reads = 1;
    const double nj =
        channelEnergy(stats, t, EnergyParams::micron8GbDdr3(), 8).totalNj();
    EXPECT_GT(nj, 0.5);
    EXPECT_LT(nj, 20.0);
}
