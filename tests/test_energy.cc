/**
 * @file
 * Unit tests for the IDD-based energy model: the DDR3-1333 golden
 * values (pinned to the pre-spec-registry numbers), linearity and
 * positivity invariants, the spec-geometry per-bank refresh divisor,
 * and per-spec invariants over every registered backend (vdd ordering,
 * LPDDR4 cheaper than DDR3 per access).
 */

#include <gtest/gtest.h>

#include "dram/spec.hh"
#include "sim/energy.hh"

using namespace dsarp;

namespace {

TimingParams
timing()
{
    MemConfig cfg;
    cfg.finalize();
    return TimingParams::ddr3_1333(cfg);
}

/** Timing + energy set of a registered spec at the default org. */
std::pair<TimingParams, EnergyParams>
specParams(const std::string &name)
{
    MemConfig cfg;
    cfg.dramSpec = name;
    cfg.finalize();
    const DramSpec &spec = DramSpecRegistry::instance().at(name);
    return {spec.timingFor(cfg), spec.energy};
}

/** A representative counted window, identical across specs. */
ChannelStats
goldenStats(const TimingParams &t)
{
    ChannelStats stats;
    stats.acts = 1000;
    stats.reads = 800;
    stats.writes = 200;
    stats.refAb = 40;
    stats.refAbCycles = 40ULL * static_cast<std::uint64_t>(t.tRfcAb.count());
    stats.refPb = 320;
    stats.refPbCycles =
        320ULL * static_cast<std::uint64_t>(t.tRfcPb.count());
    stats.rankActiveTicks = 500000;
    stats.rankTotalTicks = 2000000;
    return stats;
}

} // namespace

TEST(Energy, ZeroStatsZeroEnergy)
{
    ChannelStats stats;
    const EnergyBreakdown e =
        channelEnergy(stats, timing(), EnergyParams::micron8GbDdr3());
    EXPECT_DOUBLE_EQ(e.totalNj(), 0.0);
}

TEST(Energy, Ddr3GoldenValuesUnchanged)
{
    // Golden pin: these literals were produced by the pre-change model
    // (hard-coded Micron 8 Gb DDR3 parameters, division by the config's
    // 8 banks/rank). Moving EnergyParams onto the spec must reproduce
    // DDR3-1333 bit-identically.
    const auto [t, p] = specParams("DDR3-1333");
    const ChannelStats stats = goldenStats(t);
    const EnergyBreakdown e = channelEnergy(stats, t, p);
    EXPECT_NEAR(e.activateNj, 3773.25, 1e-9);
    EXPECT_NEAR(e.readNj, 972.0, 1e-9);
    EXPECT_NEAR(e.writeNj, 252.0, 1e-9);
    EXPECT_NEAR(e.refreshNj, 5140.8, 1e-9);
    EXPECT_NEAR(e.backgroundNj, 192375.0, 1e-9);
    EXPECT_NEAR(e.totalNj(), 202513.05, 1e-8);
    EXPECT_NEAR(energyPerAccessNj(stats, t, p), 202.51305, 1e-9);
}

TEST(Energy, SpecEnergyMatchesLegacyDefaults)
{
    // The registered DDR3-1333 energy set IS the legacy micron set.
    const EnergyParams legacy = EnergyParams::micron8GbDdr3();
    const EnergyParams spec =
        DramSpecRegistry::instance().at("DDR3-1333").energy;
    EXPECT_DOUBLE_EQ(spec.vdd, legacy.vdd);
    EXPECT_DOUBLE_EQ(spec.idd0, legacy.idd0);
    EXPECT_DOUBLE_EQ(spec.idd2n, legacy.idd2n);
    EXPECT_DOUBLE_EQ(spec.idd3n, legacy.idd3n);
    EXPECT_DOUBLE_EQ(spec.idd4r, legacy.idd4r);
    EXPECT_DOUBLE_EQ(spec.idd4w, legacy.idd4w);
    EXPECT_DOUBLE_EQ(spec.idd5b, legacy.idd5b);
    EXPECT_DOUBLE_EQ(spec.refPbCurrentDivisor,
                     legacy.refPbCurrentDivisor);
}

TEST(Energy, ComponentsScaleLinearlyWithCounts)
{
    const TimingParams t = timing();
    const EnergyParams p = EnergyParams::micron8GbDdr3();
    ChannelStats one;
    one.acts = 1;
    one.reads = 1;
    one.writes = 1;
    ChannelStats ten;
    ten.acts = 10;
    ten.reads = 10;
    ten.writes = 10;
    const EnergyBreakdown e1 = channelEnergy(one, t, p);
    const EnergyBreakdown e10 = channelEnergy(ten, t, p);
    EXPECT_NEAR(e10.activateNj, 10 * e1.activateNj, 1e-9);
    EXPECT_NEAR(e10.readNj, 10 * e1.readNj, 1e-9);
    EXPECT_NEAR(e10.writeNj, 10 * e1.writeNj, 1e-9);
}

TEST(Energy, AllComponentsPositive)
{
    const TimingParams t = timing();
    ChannelStats stats;
    stats.acts = 100;
    stats.reads = 80;
    stats.writes = 20;
    stats.refAb = 4;
    stats.refAbCycles = 4ULL * static_cast<std::uint64_t>(t.tRfcAb.count());
    stats.refPb = 8;
    stats.refPbCycles = 8ULL * static_cast<std::uint64_t>(t.tRfcPb.count());
    stats.rankActiveTicks = 5000;
    stats.rankTotalTicks = 20000;
    const EnergyBreakdown e =
        channelEnergy(stats, t, EnergyParams::micron8GbDdr3());
    EXPECT_GT(e.activateNj, 0.0);
    EXPECT_GT(e.readNj, 0.0);
    EXPECT_GT(e.writeNj, 0.0);
    EXPECT_GT(e.refreshNj, 0.0);
    EXPECT_GT(e.backgroundNj, 0.0);
    EXPECT_DOUBLE_EQ(e.totalNj(), e.activateNj + e.readNj + e.writeNj +
                                      e.refreshNj + e.backgroundNj);
}

TEST(Energy, PerBankRefreshUsesSpecGeometryDivisor)
{
    // Equal refresh cycle counts: the ratio-model specs (DDR3) draw
    // 1/8 of the all-bank current per cycle -- the 8 banks the spec's
    // tRFC table assumes, NOT whatever banksPerRank the config uses.
    const TimingParams t = timing();
    ChannelStats ab;
    ab.refAbCycles = 1000;
    ChannelStats pb;
    pb.refPbCycles = 1000;
    const EnergyParams p = EnergyParams::micron8GbDdr3();
    const double e_ab = channelEnergy(ab, t, p).refreshNj;
    const double e_pb = channelEnergy(pb, t, p).refreshNj;
    EXPECT_NEAR(e_pb, e_ab / 8.0, 1e-9);
}

TEST(Energy, Lpddr4NativeRefPbNotUnderstated)
{
    // LPDDR4's native tRFCpb = tRFCab/2: an 8-bank REFpb sweep must
    // cost one REFab's charge, so per cycle it draws 1/4 (not 1/8) of
    // the all-bank current.
    const auto [t, p] = specParams("LPDDR4-3200");
    EXPECT_DOUBLE_EQ(p.refPbCurrentDivisor, 4.0);

    ChannelStats ab;
    ab.refAbCycles = static_cast<std::uint64_t>(t.tRfcAb.count());
    ChannelStats pb;
    // Full-rank sweep.
    pb.refPbCycles = 8ULL * static_cast<std::uint64_t>(t.tRfcPb.count());
    const double e_ab = channelEnergy(ab, t, p).refreshNj;
    const double e_pb = channelEnergy(pb, t, p).refreshNj;
    EXPECT_NEAR(e_pb, e_ab, e_ab * 0.01);  // Cycle rounding only.
}

TEST(Energy, PerSpecVddOrdering)
{
    // DDR3 1.5 V > DDR4 1.2 V > LPDDR4 1.1 V, and every registered
    // spec carries a physically plausible supply.
    const auto &registry = DramSpecRegistry::instance();
    const double vddDdr3 = registry.at("DDR3-1333").energy.vdd;
    const double vddDdr4 = registry.at("DDR4-2400").energy.vdd;
    const double vddLp4 = registry.at("LPDDR4-3200").energy.vdd;
    EXPECT_DOUBLE_EQ(vddDdr3, 1.5);
    EXPECT_DOUBLE_EQ(vddDdr4, 1.2);
    EXPECT_DOUBLE_EQ(vddLp4, 1.1);
    EXPECT_GT(vddDdr3, vddDdr4);
    EXPECT_GT(vddDdr4, vddLp4);
    for (const std::string &name : registry.names()) {
        const EnergyParams &p = registry.at(name).energy;
        EXPECT_GT(p.vdd, 0.9) << name;
        EXPECT_LE(p.vdd, 1.6) << name;
        EXPECT_GT(p.idd5b, p.idd3n) << name;
        EXPECT_GT(p.idd4r, p.idd3n) << name;
        EXPECT_GT(p.idd4w, p.idd3n) << name;
        EXPECT_GT(p.refPbCurrentDivisor, 1.0) << name;
    }
}

TEST(Energy, Lpddr4CheaperThanDdr3PerAccess)
{
    // Same operation counts under each spec's own timing and currents:
    // the mobile part must land below the DDR3 baseline per access.
    const auto [t3, p3] = specParams("DDR3-1333");
    const auto [t4, p4] = specParams("LPDDR4-3200");
    const ChannelStats s3 = goldenStats(t3);
    const ChannelStats s4 = goldenStats(t4);
    const double ddr3 = energyPerAccessNj(s3, t3, p3);
    const double lpddr4 = energyPerAccessNj(s4, t4, p4);
    EXPECT_GT(ddr3, 0.0);
    EXPECT_GT(lpddr4, 0.0);
    EXPECT_LT(lpddr4, ddr3);
}

TEST(Energy, Ddr5SameBankSweepCostsOneRefab)
{
    // A full sweep of same-bank slices (one command per bank group,
    // tRFCsb cycles each) must cost one REFab's charge at whatever
    // geometry the config resolved -- here the 8-bank default, i.e.
    // two groups per rank. The divisor is derived by timingFor(), not
    // static spec data.
    const auto [t, p] = specParams("DDR5-4800");
    const std::uint64_t groups = 8 / t.banksPerGroup;
    ChannelStats ab;
    ab.refAbCycles = static_cast<std::uint64_t>(t.tRfcAb.count());
    ChannelStats sb;
    sb.refSbCycles = groups * static_cast<std::uint64_t>(t.tRfcSb.count());
    const double e_ab = channelEnergy(ab, t, p).refreshNj;
    const double e_sb = channelEnergy(sb, t, p).refreshNj;
    EXPECT_GT(e_sb, 0.0);
    EXPECT_NEAR(e_sb, e_ab, e_ab * 0.01);  // Cycle rounding only.
}

TEST(Energy, SelfRefreshUndercutsPrechargeStandby)
{
    // The IDD6 state: the same idle window costs less once part of it
    // is billed at the self-refresh current, and the saving is linear
    // in the self-refresh tick count.
    const auto [t, p] = specParams("DDR5-4800");
    ChannelStats idle;
    idle.rankTotalTicks = 10000;
    ChannelStats sref = idle;
    sref.rankSelfRefTicks = 6000;
    const double e_idle = channelEnergy(idle, t, p).backgroundNj;
    const double e_sref = channelEnergy(sref, t, p).backgroundNj;
    EXPECT_LT(e_sref, e_idle);
    EXPECT_NEAR(e_idle - e_sref,
                p.vdd * (p.idd2n - p.idd6) * 6000 * t.tCkNs.ns() * 1e-3,
                1e-9);
    // Every spec must keep idd6 below idd2n for the state to make
    // physical sense.
    for (const std::string &name : DramSpecRegistry::instance().names()) {
        const EnergyParams &e = DramSpecRegistry::instance().at(name).energy;
        EXPECT_GT(e.idd6, 0.0) << name;
        EXPECT_LT(e.idd6, e.idd2n) << name;
    }
}

TEST(Energy, SrMaskedRefreshCyclesNotDoubleBilled)
{
    // Double-billing regression: refresh cycles that elapsed while
    // their rank sat in the (legacy) IDD6 self-refresh state must not
    // also be charged the burst premium -- IDD6 already prices the
    // refresh work. Golden numbers pinned on DDR3-1333.
    const auto [t, p] = specParams("DDR3-1333");
    ChannelStats stats;
    stats.refAbCycles = 1000;
    stats.refPbCycles = 500;
    // ref_cur = 1.5 V * (215 - 45) mA * 1.5 ns = 0.3825 nJ/cycle.
    const double full = channelEnergy(stats, t, p).refreshNj;
    EXPECT_NEAR(full, 382.5 + 23.90625, 1e-9);

    ChannelStats masked = stats;
    masked.refAbCyclesSrMasked = 400;
    masked.refPbCyclesSrMasked = 100;
    const double partial = channelEnergy(masked, t, p).refreshNj;
    EXPECT_NEAR(partial, 382.5 * 0.6 + 23.90625 * 0.8, 1e-9);

    // Fully masked refresh costs nothing extra; over-masking (a burst
    // straddling a stats reset) clamps at zero instead of going
    // negative.
    ChannelStats over = stats;
    over.refAbCyclesSrMasked = 1500;
    over.refPbCyclesSrMasked = 600;
    EXPECT_DOUBLE_EQ(channelEnergy(over, t, p).refreshNj, 0.0);
}

TEST(Energy, RealSelfRefreshResidencyBilledAtIdd6)
{
    // Command-level residency (srTicks) bills IDD6 exactly like the
    // legacy accounting state, and the two pools add.
    const auto [t, p] = specParams("DDR3-1333");
    ChannelStats idle;
    idle.rankTotalTicks = 10000;
    ChannelStats sr = idle;
    sr.srTicks = 4000;
    const double e_idle = channelEnergy(idle, t, p).backgroundNj;
    const double e_sr = channelEnergy(sr, t, p).backgroundNj;
    EXPECT_NEAR(e_idle - e_sr,
                p.vdd * (p.idd2n - p.idd6) * 4000 * t.tCkNs.ns() * 1e-3,
                1e-9);

    ChannelStats both = sr;
    both.rankSelfRefTicks = 2000;
    const double e_both = channelEnergy(both, t, p).backgroundNj;
    EXPECT_NEAR(e_sr - e_both,
                p.vdd * (p.idd2n - p.idd6) * 2000 * t.tCkNs.ns() * 1e-3,
                1e-9);
}

TEST(Energy, ActiveStandbyCostsMoreThanIdle)
{
    const TimingParams t = timing();
    const EnergyParams p = EnergyParams::micron8GbDdr3();
    ChannelStats active;
    active.rankTotalTicks = 1000;
    active.rankActiveTicks = 1000;
    ChannelStats idle;
    idle.rankTotalTicks = 1000;
    idle.rankActiveTicks = 0;
    EXPECT_GT(channelEnergy(active, t, p).backgroundNj,
              channelEnergy(idle, t, p).backgroundNj);
}

TEST(Energy, PerAccessDivision)
{
    const TimingParams t = timing();
    ChannelStats stats;
    stats.acts = 10;
    stats.reads = 8;
    stats.writes = 2;
    const EnergyParams p = EnergyParams::micron8GbDdr3();
    const double total = channelEnergy(stats, t, p).totalNj();
    EXPECT_NEAR(energyPerAccessNj(stats, t, p), total / 10.0, 1e-12);
    ChannelStats empty;
    EXPECT_DOUBLE_EQ(energyPerAccessNj(empty, t, p), 0.0);
}

TEST(Energy, SingleAccessEnergyInPlausibleRange)
{
    // One activate + one read should land in the nJ range for every
    // registered backend, not pJ or uJ.
    for (const std::string &name : DramSpecRegistry::instance().names()) {
        const auto [t, p] = specParams(name);
        ChannelStats stats;
        stats.acts = 1;
        stats.reads = 1;
        const double nj = channelEnergy(stats, t, p).totalNj();
        EXPECT_GT(nj, 0.3) << name;
        EXPECT_LT(nj, 20.0) << name;
    }
}
