/**
 * @file
 * Tests dedicated to the paper's erratum: the per-bank refresh credit
 * must stay within [0, 8] postponed commands, i.e. a bank never goes
 * more than 9 tREFIpb-sized obligations unrefreshed, even under
 * adversarial demand that makes DARP want to postpone forever.
 *
 * Verified two ways: directly on DARP's ledger, and end-to-end by
 * measuring inter-refresh gaps per bank in the command log.
 */

#include <gtest/gtest.h>

#include <map>

#include "mock_view.hh"
#include "refresh/darp.hh"
#include "sim/checker.hh"
#include "sim/system.hh"
#include "workload/benchmark.hh"

using namespace dsarp;

namespace {

class ErratumTest : public ::testing::Test
{
  protected:
    ErratumTest()
    {
        cfg_.refresh = RefreshMode::kDarp;
        cfg_.finalize();
        timing_ = TimingParams::ddr3_1333(cfg_);
        view_ = std::make_unique<MockView>(&cfg_, &timing_);
    }

    MemConfig cfg_;
    TimingParams timing_;
    std::unique_ptr<MockView> view_;
};

} // namespace

TEST_F(ErratumTest, CreditNeverExceedsEightUnderPermanentLoad)
{
    // Every bank permanently busy: DARP postpones everywhere, but the
    // force-at-8 rule must cap every ledger balance.
    for (RankId r = 0; r < 2; ++r)
        for (BankId b = 0; b < 8; ++b)
            view_->setReads(r, b, 4);

    DarpScheduler sched(&cfg_, &timing_, view_.get());
    std::vector<RefreshRequest> urgent;
    for (Tick t = 0; t < 30 * timing_.tRefiAb; ++t) {
        sched.tick(t);
        urgent.clear();
        sched.urgent(t, urgent);
        for (const RefreshRequest &req : urgent) {
            Command cmd;
            cmd.type = CommandType::kRefPb;
            cmd.rank = req.rank;
            cmd.bank = req.bank;
            if (view_->channel().canIssue(cmd, t)) {
                view_->channel().issue(cmd, t);
                sched.onIssued(req, t);
                break;
            }
        }
        for (RankId r = 0; r < 2; ++r)
            for (BankId b = 0; b < 8; ++b)
                ASSERT_LE(sched.ledger().owed(r, b), 8)
                    << "erratum violated at t=" << t;
    }
    EXPECT_GT(sched.stats().forced, 0u);
}

TEST_F(ErratumTest, SaturatedBankRefreshedEveryIntervalOnceAtLimit)
{
    // Once a bank sits at the postpone limit, it must be refreshed about
    // once per tREFIab from then on (no further slippage).
    view_->setReads(0, 0, 4);
    DarpScheduler sched(&cfg_, &timing_, view_.get());
    std::vector<RefreshRequest> urgent;
    std::vector<Tick> bank0_refreshes;
    for (Tick t = 0; t < 24 * timing_.tRefiAb; ++t) {
        sched.tick(t);
        urgent.clear();
        sched.urgent(t, urgent);
        for (const RefreshRequest &req : urgent) {
            Command cmd;
            cmd.type = CommandType::kRefPb;
            cmd.rank = req.rank;
            cmd.bank = req.bank;
            if (view_->channel().canIssue(cmd, t)) {
                view_->channel().issue(cmd, t);
                sched.onIssued(req, t);
                if (req.rank == 0 && req.bank == 0)
                    bank0_refreshes.push_back(t);
                break;
            }
        }
    }
    // 24 intervals, limit reached after ~8: at least ~14 forced
    // refreshes follow, spaced about one interval apart.
    ASSERT_GE(bank0_refreshes.size(), 12u);
    for (std::size_t i = 1; i < bank0_refreshes.size(); ++i) {
        EXPECT_LE(bank0_refreshes[i] - bank0_refreshes[i - 1],
                  timing_.tRefiAb + timing_.tRefiPb)
            << "saturated bank slipped past one interval";
    }
}

TEST(ErratumEndToEnd, InterRefreshGapBoundedInFullSystem)
{
    // Full system under DSARP with an intensive workload; reconstruct
    // each bank's refresh times from the command log and check that no
    // gap exceeds 9 obligations + command-drain slack.
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.mem.org.channels = 1;
    cfg.mem.density = Density::k32Gb;
    cfg.mem.refresh = RefreshMode::kDarp;
    cfg.mem.sarp = true;
    cfg.enableChecker = true;
    System sys(cfg, {benchmarkIndex("mcf-like"),
                     benchmarkIndex("stream-like")});
    const Tick horizon = Tick(0) + 30 * sys.timing().tRefiAb;
    sys.run(horizon);

    std::map<std::pair<int, int>, Tick> last;
    Tick worst_gap = 0;
    for (const TimedCommand &tc : sys.commandLog(0)) {
        if (tc.cmd.type != CommandType::kRefPb)
            continue;
        const auto key = std::make_pair(tc.cmd.rank, tc.cmd.bank);
        const auto it = last.find(key);
        if (it != last.end())
            worst_gap = std::max(worst_gap, tc.tick - it->second);
        last[key] = tc.tick;
    }
    ASSERT_EQ(last.size(), 16u) << "every bank must have refreshed";
    // Worst legal pattern: 8 pulled in early, then 8 postponed -> a gap
    // of up to 16 intervals plus drain slack.
    EXPECT_LE(worst_gap, Tick(0) + 17 * sys.timing().tRefiAb);
    EXPECT_GT(worst_gap, 0u);
}

TEST(ErratumEndToEnd, PostponedAndPulledInBothOccur)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.mem.refresh = RefreshMode::kDarp;
    System sys(cfg, {benchmarkIndex("mcf-like"),
                     benchmarkIndex("libquantum-like"),
                     benchmarkIndex("gcc-like"),
                     benchmarkIndex("povray-like")});
    sys.run(Tick(0) + 20 * sys.timing().tRefiAb);
    std::uint64_t postponed = 0, pulled = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch) {
        postponed += sys.controller(ch).refreshStats().postponed;
        pulled += sys.controller(ch).refreshStats().pulledIn;
    }
    EXPECT_GT(postponed, 0u) << "busy banks should cause postponement";
    EXPECT_GT(pulled, 0u) << "idle banks should receive pull-ins";
}
