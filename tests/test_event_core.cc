/**
 * @file
 * Event-engine equivalence suite: the skip-to-next-deadline engine
 * (sim.engine=event) must be observationally indistinguishable from
 * the legacy cycle loop -- not approximately, bit for bit. Every case
 * runs the same seeded workload twice, once per engine, and asserts
 *
 *   - identical command logs (tick and every Command field),
 *   - identical per-core IPCs (exact doubles -- the RNG streams and
 *     retirement schedules must line up cycle for cycle),
 *   - identical channel stats, including the background-energy inputs
 *     (rank active/total ticks, srTicks) and the derived energy,
 *   - a clean offline-checker replay of the event run's log.
 *
 * The matrix mirrors test_checker_fuzz.cc: every registered DRAM spec
 * x {REFab, REFpb, DSARP, HiRA, REFsb}, with the same seed-derived
 * config knobs (density, geometry, core count, self-refresh arming),
 * so any divergence the fuzzer's space can produce is caught here as
 * a first-class diff rather than a downstream checker violation.
 *
 * DSARP_EVENT_SEEDS scales the seeds per (spec, mechanism) pair
 * (default 2; set it before the binary on the command line).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dram/spec.hh"
#include "sim/checker.hh"
#include "sim/energy.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "workload/workload.hh"

using namespace dsarp;

namespace {

const char *const kMechs[] = {"REFab", "REFpb", "DSARP", "HiRA", "REFsb"};

/** Everything an engine run can be observed by. */
struct RunObservation
{
    std::vector<std::vector<TimedCommand>> logs;
    std::vector<ChannelStats> channels;
    std::vector<double> ipc;
    std::vector<double> energyNj;
    Tick end{};
};

/** The seed-to-config derivation shared with the checker fuzzer, so
 *  both suites walk the same configuration space. */
SystemConfig
deriveConfig(const std::string &spec, const std::string &mech,
             std::uint64_t seed, bool self_refresh)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + (self_refresh ? 2 : 1));

    SystemConfig cfg;
    cfg.mem.dramSpec = spec;
    cfg.mem.policy = mech;
    cfg.mem.org.channels = 1;
    cfg.mem.org.subarraysPerBank = rng.chance(0.5) ? 8 : 4;
    const Density densities[] = {Density::k8Gb, Density::k16Gb,
                                 Density::k32Gb};
    cfg.mem.density = densities[rng.below(3)];
    if (mech == "REFsb" && rng.chance(0.5))
        cfg.mem.org.banksPerRank = 32;
    cfg.numCores = 2 + static_cast<int>(rng.below(3));
    if (self_refresh) {
        cfg.mem.srIdleEntryCycles =
            200 + static_cast<int>(rng.below(1200));
        cfg.numCores = 1 + static_cast<int>(rng.below(2));
    }
    cfg.seed = seed;
    cfg.enableChecker = true;
    return cfg;
}

RunObservation
runOnce(SystemConfig cfg, const std::string &engine, std::uint64_t seed)
{
    cfg.engine = engine;
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 11);
    const auto workloads = makeWorkloads(1, cfg.numCores, seed);
    const Workload &w = workloads[rng.below(workloads.size())];

    System sys(cfg, w.benchIdx);
    sys.run(Tick(0) + 8 * sys.timing().tRefiAb);

    const EnergyParams &energy =
        DramSpecRegistry::instance().at(cfg.mem.dramSpec).energy;
    RunObservation obs;
    obs.end = sys.now();
    obs.ipc = sys.coreIpc();
    for (int ch = 0; ch < sys.numChannels(); ++ch) {
        obs.logs.push_back(sys.commandLog(ch));
        const ChannelStats &cs = sys.controller(ch).channel().stats();
        obs.channels.push_back(cs);
        obs.energyNj.push_back(
            channelEnergy(cs, sys.timing(), energy).totalNj());
    }
    return obs;
}

/** Render one log entry for a first-divergence message. */
std::string
describe(const TimedCommand &tc)
{
    std::ostringstream os;
    os << "t=" << tc.tick << " " << commandName(tc.cmd.type) << " r"
       << tc.cmd.rank << " b" << tc.cmd.bank << " row" << tc.cmd.row
       << " col" << tc.cmd.column << " sa" << tc.cmd.subarray
       << " rfc=" << tc.cmd.tRfcOverride
       << " rows=" << tc.cmd.rowsOverride
       << " hidden=" << tc.cmd.hidden;
    return os.str();
}

bool
sameCommand(const TimedCommand &a, const TimedCommand &b)
{
    return a.tick == b.tick && a.cmd.type == b.cmd.type &&
           a.cmd.rank == b.cmd.rank && a.cmd.bank == b.cmd.bank &&
           a.cmd.row == b.cmd.row && a.cmd.column == b.cmd.column &&
           a.cmd.subarray == b.cmd.subarray &&
           a.cmd.tRfcOverride == b.cmd.tRfcOverride &&
           a.cmd.rowsOverride == b.cmd.rowsOverride &&
           a.cmd.hidden == b.cmd.hidden;
}

void
expectStatsEqual(const ChannelStats &c, const ChannelStats &e,
                 const std::string &ctx)
{
#define DSARP_EQ(field) EXPECT_EQ(c.field, e.field) << ctx << " " #field
    DSARP_EQ(acts);
    DSARP_EQ(reads);
    DSARP_EQ(writes);
    DSARP_EQ(pres);
    DSARP_EQ(refAb);
    DSARP_EQ(refPb);
    DSARP_EQ(refSb);
    DSARP_EQ(refPbHidden);
    DSARP_EQ(refAbCycles);
    DSARP_EQ(refPbCycles);
    DSARP_EQ(refSbCycles);
    DSARP_EQ(rankActiveTicks);
    DSARP_EQ(rankTotalTicks);
    DSARP_EQ(rankSelfRefTicks);
    DSARP_EQ(refAbCyclesSrMasked);
    DSARP_EQ(refPbCyclesSrMasked);
    DSARP_EQ(refSbCyclesSrMasked);
    DSARP_EQ(srEnter);
    DSARP_EQ(srExit);
    DSARP_EQ(srTicks);
#undef DSARP_EQ
}

void
equivalentOne(const std::string &spec, const std::string &mech,
              std::uint64_t seed, bool self_refresh)
{
    const SystemConfig cfg = deriveConfig(spec, mech, seed, self_refresh);
    const RunObservation cyc = runOnce(cfg, "cycle", seed);
    const RunObservation evt = runOnce(cfg, "event", seed);

    std::ostringstream ctx;
    ctx << "spec=" << spec << " mech=" << mech << " seed=" << seed
        << " sr=" << self_refresh
        << " density=" << densityName(cfg.mem.density)
        << " cores=" << cfg.numCores
        << " banks=" << cfg.mem.org.banksPerRank;

    ASSERT_EQ(cyc.end, evt.end) << ctx.str();
    ASSERT_EQ(cyc.logs.size(), evt.logs.size()) << ctx.str();

    for (std::size_t ch = 0; ch < cyc.logs.size(); ++ch) {
        const auto &cl = cyc.logs[ch];
        const auto &el = evt.logs[ch];
        // Find the first divergence instead of dumping both logs.
        const std::size_t n = std::min(cl.size(), el.size());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(sameCommand(cl[i], el[i]))
                << ctx.str() << " channel=" << ch << " index=" << i
                << "\n  cycle: " << describe(cl[i])
                << "\n  event: " << describe(el[i]);
        }
        ASSERT_EQ(cl.size(), el.size())
            << ctx.str() << " channel=" << ch
            << " (logs agree up to the shorter one)";
        EXPECT_GT(el.size(), 0u) << ctx.str();

        expectStatsEqual(cyc.channels[ch], evt.channels[ch],
                         ctx.str() + " channel=" +
                             std::to_string(ch));
        // Exact double equality is intentional: both runs must feed
        // the model the same integer counters.
        EXPECT_EQ(cyc.energyNj[ch], evt.energyNj[ch])
            << ctx.str() << " channel=" << ch;
    }

    ASSERT_EQ(cyc.ipc.size(), evt.ipc.size()) << ctx.str();
    for (std::size_t i = 0; i < cyc.ipc.size(); ++i) {
        EXPECT_EQ(cyc.ipc[i], evt.ipc[i])
            << ctx.str() << " core=" << i;
    }
}

} // namespace

class EventEngineEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EventEngineEquivalence, BitIdenticalToCycleLoop)
{
    const std::string spec = GetParam();
    const bool sameBankSupported =
        DramSpecRegistry::instance().at(spec).banksPerGroup > 0;
    const std::uint64_t seeds = envKnob("DSARP_EVENT_SEEDS", 2);

    for (const char *mech : kMechs) {
        if (std::string(mech) == "REFsb" && !sameBankSupported)
            continue;
        for (std::uint64_t s = 1; s <= seeds; ++s) {
            equivalentOne(spec, mech, s, /*self_refresh=*/false);
            equivalentOne(spec, mech, s, /*self_refresh=*/true);
        }
    }
}

namespace {

std::string
specName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string out = info.param;
    for (char &c : out) {
        if (c == '-')
            c = '_';
    }
    return out;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, EventEngineEquivalence,
    ::testing::ValuesIn(DramSpecRegistry::instance().names()), specName);

TEST(EventEngineEquivalence, EventRunPassesOfflineChecker)
{
    // One full checker replay per mechanism on the reference spec:
    // identical logs alone would also hide a shared bug, so the event
    // log is independently validated against the JEDEC constraints.
    for (const char *mech : kMechs) {
        const std::string spec =
            std::string(mech) == "REFsb" ? "DDR5-4800" : "DDR3-1333";
        SystemConfig cfg = deriveConfig(spec, mech, 1, false);
        cfg.engine = "event";
        Rng rng(1 * 0x9e3779b97f4a7c15ULL + 11);
        const auto workloads = makeWorkloads(1, cfg.numCores, 1);
        const Workload &w = workloads[rng.below(workloads.size())];
        System sys(cfg, w.benchIdx);
        sys.run(Tick(0) + 8 * sys.timing().tRefiAb);
        for (int ch = 0; ch < sys.numChannels(); ++ch) {
            const CheckerReport report = verifyCommandLog(
                sys.commandLog(ch), sys.config().mem, sys.timing(),
                sys.now());
            std::ostringstream detail;
            for (std::size_t i = 0;
                 i < report.violations.size() && i < 3; ++i) {
                detail << "\n  " << report.violations[i];
            }
            EXPECT_TRUE(report.ok())
                << "mech=" << mech << " channel=" << ch << detail.str();
            EXPECT_GT(report.commandsChecked, 0u) << "mech=" << mech;
        }
    }
}

TEST(EventEngineEquivalence, UnknownEngineRejected)
{
    SystemConfig cfg;
    cfg.engine = "warp";
    cfg.numCores = 1;
    const std::vector<int> bench = {0};
    EXPECT_DEATH(System(cfg, bench), "sim.engine");
}
