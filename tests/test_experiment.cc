/**
 * @file
 * Tests for the layered ExperimentConfig (key=value overrides from
 * code, files, and the environment, with named-key errors) and the
 * Simulation facade built on top of it.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "sim/experiment.hh"
#include "sim/simulation.hh"

using namespace dsarp;

TEST(ExperimentConfig, SetParsesEveryFieldKind)
{
    ExperimentConfig cfg;
    EXPECT_EQ(cfg.trySet("policy", "REFpb"), "");
    EXPECT_EQ(cfg.trySet("densityGb", "16"), "");
    EXPECT_EQ(cfg.trySet("numCores", "4"), "");
    EXPECT_EQ(cfg.trySet("seed", "99"), "");
    EXPECT_EQ(cfg.trySet("darpWriteRefresh", "false"), "");
    EXPECT_EQ(cfg.trySet("enableChecker", "on"), "");

    EXPECT_EQ(cfg.policy, "REFpb");
    EXPECT_EQ(cfg.densityGb, 16);
    EXPECT_EQ(cfg.numCores, 4);
    EXPECT_EQ(cfg.seed, 99u);
    EXPECT_FALSE(cfg.darpWriteRefresh);
    EXPECT_TRUE(cfg.enableChecker);
}

TEST(ExperimentConfig, KeysAreCaseInsensitiveAndTrimmed)
{
    ExperimentConfig cfg;
    EXPECT_EQ(cfg.trySet("NUMCORES", " 2 "), "");
    EXPECT_EQ(cfg.numCores, 2);
}

TEST(ExperimentConfig, UnknownKeyNamesItselfAndListsKnown)
{
    ExperimentConfig cfg;
    const std::string err = cfg.trySet("writeWatermark", "10");
    EXPECT_NE(err.find("unknown config key 'writeWatermark'"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("writeHighWatermark"), std::string::npos) << err;
}

TEST(ExperimentConfig, BadValueNamesTheKey)
{
    ExperimentConfig cfg;
    const std::string err = cfg.trySet("numCores", "eight");
    EXPECT_NE(err.find("config key 'numCores'"), std::string::npos) << err;
    EXPECT_NE(err.find("expected an integer"), std::string::npos) << err;
    EXPECT_EQ(cfg.numCores, 8);  // Unchanged on error.

    const std::string bool_err = cfg.trySet("enableChecker", "maybe");
    EXPECT_NE(bool_err.find("config key 'enableChecker'"),
              std::string::npos)
        << bool_err;
}

TEST(ExperimentConfig, ValidateReportsEveryBadKey)
{
    ExperimentConfig cfg;
    cfg.policy = "nonesuch";
    cfg.densityGb = 12;
    cfg.intensityPct = 40;
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("config key 'policy'"), std::string::npos) << err;
    EXPECT_NE(err.find("config key 'densityGb'"), std::string::npos)
        << err;
    EXPECT_NE(err.find("config key 'intensityPct'"), std::string::npos)
        << err;
}

TEST(ExperimentConfig, ValidateDelegatesMemChecks)
{
    ExperimentConfig cfg;
    cfg.writeLowWatermark = 60;
    cfg.writeHighWatermark = 50;
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("writeLowWatermark"), std::string::npos) << err;

    ExperimentConfig ok;
    EXPECT_EQ(ok.validate(), "");
}

TEST(ExperimentConfig, ConfigFileLayering)
{
    const std::string path =
        ::testing::TempDir() + "/dsarp_experiment_test.cfg";
    {
        std::ofstream out(path);
        out << "# an experiment preset\n"
            << "policy = SARPpb\n"
            << "densityGb=8   # inline comment\n"
            << "\n"
            << "numCores=2\n";
    }
    ExperimentConfig cfg;
    cfg.applyFile(path);
    EXPECT_EQ(cfg.policy, "SARPpb");
    EXPECT_EQ(cfg.densityGb, 8);
    EXPECT_EQ(cfg.numCores, 2);

    // Later layers (env, CLI) override earlier ones.
    cfg.set("densityGb", "32");
    EXPECT_EQ(cfg.densityGb, 32);
    std::remove(path.c_str());
}

TEST(ExperimentConfig, EnvOverridesViaDsarpSet)
{
    setenv("DSARP_SET", "policy=Elastic, numCores=4", 1);
    ExperimentConfig cfg;
    cfg.applyEnv();
    unsetenv("DSARP_SET");
    EXPECT_EQ(cfg.policy, "Elastic");
    EXPECT_EQ(cfg.numCores, 4);
}

TEST(ExperimentConfig, ToSystemConfigProjection)
{
    ExperimentConfig cfg;
    cfg.policy = "dsarp";
    cfg.densityGb = 16;
    cfg.retentionMs = 64;
    cfg.subarraysPerBank = 4;
    cfg.numCores = 2;
    cfg.writeLowWatermark = 16;
    cfg.writeHighWatermark = 40;
    cfg.maxOverlappedRefPb = 2;
    cfg.seed = 7;

    const SystemConfig sys = cfg.toSystemConfig();
    EXPECT_EQ(sys.mem.policy, "dsarp");
    EXPECT_EQ(sys.mem.density, Density::k16Gb);
    EXPECT_EQ(sys.mem.retentionMs, 64);
    EXPECT_EQ(sys.mem.org.subarraysPerBank, 4);
    EXPECT_EQ(sys.mem.writeLowWatermark, 16);
    EXPECT_EQ(sys.mem.writeHighWatermark, 40);
    EXPECT_EQ(sys.mem.maxOverlappedRefPb, 2);
    EXPECT_EQ(sys.numCores, 2);
    EXPECT_EQ(sys.seed, 7u);

    // The -1 sentinels keep the MemConfig defaults...
    const SystemConfig defaults = ExperimentConfig{}.toSystemConfig();
    EXPECT_EQ(defaults.mem.writeLowWatermark, 32);
    EXPECT_EQ(defaults.mem.writeHighWatermark, 54);
    EXPECT_EQ(defaults.mem.maxOverlappedRefPb, 1);

    // ...but an explicit 0 is an override, not a fallback.
    ExperimentConfig zero;
    zero.writeLowWatermark = 0;
    EXPECT_EQ(zero.validate(), "");
    EXPECT_EQ(zero.toSystemConfig().mem.writeLowWatermark, 0);

    // And negative values (other than the -1 sentinel) are named, not
    // silently replaced by the default.
    ExperimentConfig negative;
    negative.writeHighWatermark = -5;
    const std::string err = negative.validate();
    EXPECT_NE(err.find("'writeHighWatermark'"), std::string::npos) << err;
}

TEST(ExperimentConfig, MechanismNameCanonicalises)
{
    ExperimentConfig cfg;
    cfg.policy = "sarp_ab";
    EXPECT_EQ(cfg.mechanismName(), "SARPab");
}

TEST(Simulation, BuilderRunsTheFullPipeline)
{
    RunResult res = Simulation::builder()
                        .policy("REFab")
                        .densityGb(8)
                        .cores(2)
                        .intensityPct(100)
                        .warmupCycles(2000)
                        .measureCycles(15000)
                        .build()
                        .run();
    ASSERT_EQ(res.ipc.size(), 2u);
    EXPECT_GT(res.ipc[0], 0.0);
    EXPECT_GT(res.ws, 0.0);
    EXPECT_GT(res.readsCompleted, 0u);
    EXPECT_GT(res.refAb, 0u);
    EXPECT_GT(res.energyPerAccessNj, 0.0);
}

TEST(Simulation, KeyValueOverridesReachTheSystem)
{
    Simulation sim = Simulation::builder()
                         .apply("policy=REFpb")
                         .set("numCores", "2")
                         .set("densityGb", "8")
                         .warmupCycles(1000)
                         .measureCycles(10000)
                         .build();
    EXPECT_EQ(sim.mechanismName(), "REFpb");
    EXPECT_EQ(sim.workload().benchIdx.size(), 2u);
    const RunResult res = sim.run();
    EXPECT_GT(res.refPb, 0u);  // Per-bank commands prove the override.
    EXPECT_EQ(res.refAb, 0u);
}

TEST(SimulationDeath, InvalidConfigNamesTheKey)
{
    EXPECT_EXIT(Simulation::builder().policy("REFab").cores(-3).build(),
                testing::ExitedWithCode(1), "numCores");
    EXPECT_EXIT(Simulation::builder().policy("what").build(),
                testing::ExitedWithCode(1),
                "unknown refresh policy 'what'");
}
