/**
 * @file
 * Parameterized geometry sweep: the simulator must stay legal and make
 * progress across channel/rank counts and retention settings, for the
 * paper's three headline mechanisms. Complements test_property.cc,
 * which sweeps mechanisms x densities at fixed geometry.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/checker.hh"
#include "sim/system.hh"
#include "workload/benchmark.hh"

using namespace dsarp;

namespace {

/** (channels, ranks, retentionMs, mechanism, sarp) */
using GeomPoint = std::tuple<int, int, int, RefreshMode, bool>;

class GeometryProperty : public ::testing::TestWithParam<GeomPoint>
{
};

std::string
name(const ::testing::TestParamInfo<GeomPoint> &info)
{
    const auto [ch, ranks, ret, mode, sarp] = info.param;
    std::string out = "ch" + std::to_string(ch) + "_rk" +
        std::to_string(ranks) + "_ret" + std::to_string(ret) + "_" +
        refreshModeName(mode);
    if (sarp)
        out += "_SARP";
    return out;
}

} // namespace

TEST_P(GeometryProperty, LegalAndLive)
{
    const auto [channels, ranks, retention, mode, sarp] = GetParam();

    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.mem.org.channels = channels;
    cfg.mem.org.ranksPerChannel = ranks;
    cfg.mem.retentionMs = retention;
    cfg.mem.refresh = mode;
    cfg.mem.sarp = sarp;
    cfg.enableChecker = true;
    cfg.seed = 29;

    System sys(cfg, {benchmarkIndex("milc-like"),
                     benchmarkIndex("soplex-like")});
    sys.run(Tick(0) + 8 * sys.timing().tRefiAb);

    std::uint64_t reads = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch) {
        reads += sys.controller(ch).stats().readsCompleted;
        const CheckerReport report =
            verifyCommandLog(sys.commandLog(ch), sys.config().mem,
                             sys.timing(), sys.now());
        EXPECT_TRUE(report.ok())
            << "ch" << ch << ": "
            << (report.violations.empty() ? ""
                                          : report.violations.front());
        if (mode != RefreshMode::kNoRefresh)
            EXPECT_GT(report.refreshesChecked, 0u);
    }
    EXPECT_GT(reads, 200u);
    EXPECT_GT(sys.core(0).stats().instructionsRetired, 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    Channels, GeometryProperty,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(32),
                       ::testing::Values(RefreshMode::kAllBank,
                                         RefreshMode::kPerBank,
                                         RefreshMode::kDarp),
                       ::testing::Values(false)),
    name);

INSTANTIATE_TEST_SUITE_P(
    Retention64, GeometryProperty,
    ::testing::Combine(::testing::Values(1), ::testing::Values(2),
                       ::testing::Values(64),
                       ::testing::Values(RefreshMode::kAllBank,
                                         RefreshMode::kPerBank,
                                         RefreshMode::kDarp),
                       ::testing::Values(false, true)),
    name);

namespace {

/** Retention halves the refresh rate: commands should too. */
TEST(GeometryExtras, RetentionScalesRefreshCount)
{
    auto refs_at = [](int retention) {
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.mem.org.channels = 1;
        cfg.mem.retentionMs = retention;
        cfg.mem.refresh = RefreshMode::kAllBank;
        System sys(cfg, {benchmarkIndex("gcc-like"),
                         benchmarkIndex("milc-like")});
        sys.run(60000);
        return sys.controller(0).channel().stats().refAb;
    };
    const auto at32 = refs_at(32);
    const auto at64 = refs_at(64);
    EXPECT_GT(at32, at64);
    EXPECT_NEAR(static_cast<double>(at32) / at64, 2.0, 0.3);
}

TEST(GeometryExtras, MoreChannelsMoreThroughput)
{
    auto reads_with = [](int channels) {
        SystemConfig cfg;
        cfg.numCores = 4;
        cfg.mem.org.channels = channels;
        cfg.mem.refresh = RefreshMode::kPerBank;
        System sys(cfg, {benchmarkIndex("stream-like"),
                         benchmarkIndex("mcf-like"),
                         benchmarkIndex("milc-like"),
                         benchmarkIndex("lbm-like")});
        sys.run(80000);
        std::uint64_t reads = 0;
        for (int ch = 0; ch < sys.numChannels(); ++ch)
            reads += sys.controller(ch).stats().readsCompleted;
        return reads;
    };
    EXPECT_GT(reads_with(2), reads_with(1) * 14 / 10)
        << "doubling channels should add substantial bandwidth";
}

} // namespace
