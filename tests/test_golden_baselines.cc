/**
 * @file
 * Golden paper-reproduction baselines.
 *
 * PR 3 pinned the energy model's DDR3-1333 golden values; this suite
 * pins the *end-to-end* numbers the paper reproduction rests on: the
 * DDR3-1333 REFab and DSARP weighted speedups and energies per access
 * of a fixed workload under fixed run lengths and seeds, plus the
 * DDR5-4800 REFsb golden added with the same-bank backend. Any
 * refactor that silently shifts scheduling, timing derivation, the
 * address map, or the energy model trips these literals loudly.
 *
 * The literals were produced by this exact configuration at the
 * commit that introduced (or last intentionally changed) them. An
 * intentional behaviour change must update them in the same commit,
 * with the rationale in the commit message. Run lengths are explicit
 * (never the DSARP_BENCH_* environment knobs), so the goldens cannot
 * drift with CI scaling.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace dsarp;

namespace {

/** Fixed-scale run: explicit lengths, one 50%-intensive 8-core mix. */
RunResult
goldenRun(const std::string &spec, const std::string &policy,
          int banksPerRank = 8)
{
    Runner runner(2000, 20000, 1);
    RunConfig cfg;
    cfg.density = Density::k32Gb;
    cfg.dramSpec = spec;
    cfg.policy = policy;
    cfg.seed = 1;
    SystemConfig sys = Runner::makeSystemConfig(cfg);
    sys.mem.org.banksPerRank = banksPerRank;
    const Workload w = makeWorkloads(1, 8, 1)[2];  // The 50% category.
    return runner.run(sys, w);
}

} // namespace

TEST(GoldenBaselines, Ddr3RefabPinned)
{
    const RunResult res = goldenRun("DDR3-1333", "REFab");
    EXPECT_NEAR(res.ws, 3.7907750040236921, 1e-9);
    EXPECT_NEAR(res.energyPerAccessNj, 7.8361748942917551, 1e-6);
    EXPECT_EQ(res.refAb, 32u);
    EXPECT_EQ(res.readsCompleted, 3618u);
}

TEST(GoldenBaselines, Ddr3DsarpPinned)
{
    const RunResult res = goldenRun("DDR3-1333", "DSARP");
    EXPECT_NEAR(res.ws, 4.8628814159595795, 1e-9);
    EXPECT_NEAR(res.energyPerAccessNj, 6.3576246540214916, 1e-6);
    EXPECT_EQ(res.refPb, 237u);
    EXPECT_EQ(res.readsCompleted, 4701u);
}

TEST(GoldenBaselines, Ddr5RefsbPinned)
{
    // The canonical DDR5 geometry: 8 bank groups x 4 banks per rank.
    const RunResult res = goldenRun("DDR5-4800", "REFsb", 32);
    EXPECT_NEAR(res.ws, 5.6283843098162691, 1e-9);
    EXPECT_NEAR(res.energyPerAccessNj, 2.0697898624249702, 1e-6);
    EXPECT_EQ(res.refSb, 90u);
    EXPECT_EQ(res.refPb, 0u);
    EXPECT_EQ(res.readsCompleted, 1925u);
}
