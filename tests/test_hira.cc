/**
 * @file
 * HiRA (hidden row activation) tests: registry resolution, the
 * bank-level hidden-refresh/ACT subarray-conflict rules, channel-level
 * legality, end-to-end behaviour (hidden refreshes actually issue and
 * the command stream stays legal under the independent checker), the
 * coverage/delay config knobs, and the IPC comparison against the
 * refresh baselines.
 */

#include <gtest/gtest.h>

#include "dram/channel.hh"
#include "refresh/hira.hh"
#include "refresh/registry.hh"
#include "sim/checker.hh"
#include "sim/simulation.hh"
#include "sim/system.hh"
#include "workload/benchmark.hh"

using namespace dsarp;

namespace {

/** A duration read as an instant on a clock that started at tick 0. */
Tick
at(Cycles c)
{
    return Tick(0) + c;
}

/** DDR3-1333 timing for the default org (tHiRA = 5 cycles). */
TimingParams
ddr3Timing()
{
    MemConfig cfg;
    cfg.finalize();
    return TimingParams::forConfig(cfg);
}

SystemConfig
smallConfig(const std::string &policy, int subarrays = 8)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.mem.policy = policy;
    cfg.mem.org.channels = 1;
    cfg.mem.density = Density::k32Gb;  // Longest refresh: biggest signal.
    cfg.mem.org.subarraysPerBank = subarrays;
    cfg.seed = 7;
    return cfg;
}

std::vector<int>
intensivePair()
{
    return {benchmarkIndex("mcf-like"), benchmarkIndex("stream-like")};
}

std::uint64_t
readsServed(const SystemConfig &cfg, Tick ticks)
{
    System sys(cfg, intensivePair());
    sys.run(ticks / 5);
    sys.resetStats();
    sys.run(ticks);
    std::uint64_t reads = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch)
        reads += sys.controller(ch).stats().readsCompleted;
    return reads;
}

std::uint64_t
hiddenIssued(System &sys)
{
    std::uint64_t hidden = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch)
        hidden += sys.controller(ch).channel().stats().refPbHidden;
    return hidden;
}

} // namespace

// ---------------------------------------------------------------------
// Registry resolution.
// ---------------------------------------------------------------------

TEST(Hira, ResolvesFromTheRegistry)
{
    const auto &registry = RefreshPolicyRegistry::instance();
    ASSERT_TRUE(registry.has("HiRA"));
    ASSERT_TRUE(registry.has("hira"));                    // Case-blind.
    ASSERT_TRUE(registry.has("hidden-row-activation"));   // Alias.

    MemConfig cfg;
    cfg.policy = "hira";
    const auto &entry = registry.resolve(cfg);
    EXPECT_EQ(entry.name, "HiRA");
    EXPECT_EQ(cfg.policy, "HiRA");
    EXPECT_EQ(cfg.refresh, RefreshMode::kDarp);  // Per-bank OoO profile.
    EXPECT_FALSE(cfg.sarp);                      // No chip modification.
    EXPECT_TRUE(cfg.hira);
}

TEST(Hira, FactoryBuildsAHiraScheduler)
{
    MemConfig cfg;
    cfg.policy = "HiRA";
    RefreshPolicyRegistry::instance().resolve(cfg);
    cfg.finalize();
    const TimingParams timing = TimingParams::forConfig(cfg);

    class NullView : public ControllerView
    {
      public:
        explicit NullView(const MemConfig *cfg) : dram_(cfg, &timing_)
        {
        }
        int pendingDemands(RankId, BankId) const override { return 0; }
        int pendingReads(RankId, BankId) const override { return 0; }
        int pendingWrites(RankId, BankId) const override { return 0; }
        int pendingDemandsRank(RankId) const override { return 0; }
        bool inWritebackMode() const override { return false; }
        Tick lastDemandActivity(RankId) const override { return 0; }
        const Channel &dram() const override { return dram_; }
        Rng &schedulerRng() override { return rng_; }

      private:
        TimingParams timing_ = ddr3Timing();
        Channel dram_;
        Rng rng_{1};
    };

    NullView view(&cfg);
    auto sched =
        RefreshPolicyRegistry::instance().make(cfg, timing, view);
    EXPECT_NE(dynamic_cast<HiraScheduler *>(sched.get()), nullptr);
}

// ---------------------------------------------------------------------
// Bank-level hidden-refresh / subarray-conflict rules.
// ---------------------------------------------------------------------

TEST(HiraBank, HiddenRefreshRequiresOpenRowAndDelay)
{
    const TimingParams t = ddr3Timing();
    const int rows_per_sub = 65536 / 8;
    Bank bank(&t, rows_per_sub, 65536, /*sarp=*/false);

    // Closed bank: plain refresh is legal, hidden refresh is not.
    EXPECT_TRUE(bank.canRefresh(0));
    EXPECT_FALSE(bank.canHiddenRefresh(0));

    // Open a row in subarray 1; the refresh counter targets row 0
    // (subarray 0), so the pair is conflict-free -- but only after
    // tHiRA cycles.
    bank.onAct(0, rows_per_sub + 5, 1);
    EXPECT_FALSE(bank.canHiddenRefresh(0));
    EXPECT_FALSE(bank.canHiddenRefresh(at(t.tHiRA) - 1));
    EXPECT_TRUE(bank.canHiddenRefresh(at(t.tHiRA)));

    // An open bank never accepts a *plain* refresh.
    EXPECT_FALSE(bank.canRefresh(at(t.tHiRA)));
}

TEST(HiraBank, HiddenRefreshConflictsWithSameSubarray)
{
    const TimingParams t = ddr3Timing();
    const int rows_per_sub = 65536 / 8;
    Bank bank(&t, rows_per_sub, 65536, /*sarp=*/false);

    // Open row 3 in subarray 0 -- the same subarray the refresh
    // counter (row 0) targets: hiding must be rejected at any delay.
    bank.onAct(0, 3, 0);
    EXPECT_FALSE(bank.canHiddenRefresh(at(t.tHiRA)));
    EXPECT_FALSE(bank.canHiddenRefresh(at(t.tHiRA) + 100));
}

TEST(HiraBank, HiddenRefreshKeepsOpenRowServingAndBlocksNewActs)
{
    const TimingParams t = ddr3Timing();
    const int rows_per_sub = 65536 / 8;
    Bank bank(&t, rows_per_sub, 65536, /*sarp=*/false);

    bank.onAct(0, rows_per_sub + 5, 1);
    const Tick start = at(t.tHiRA);
    bank.onRefresh(start, t.tRc, /*rows=*/1, /*hidden=*/true);

    EXPECT_TRUE(bank.hiddenRefreshing(start));
    EXPECT_EQ(bank.refreshingSubarray(start), 0);  // Counter's subarray.
    EXPECT_EQ(bank.refreshRowCounter(), 1);        // Advanced by 1 row.

    // The open row still serves column commands mid-refresh.
    EXPECT_TRUE(bank.canRead(at(t.tRcd) + 1));
    EXPECT_TRUE(bank.canWrite(at(t.tRcd) + 1));

    // Close the row; a new ACT must wait for the hidden refresh end.
    bank.onRead(at(t.tRcd) + 1, /*autoPrecharge=*/true);
    const Tick refresh_end = start + t.tRc;
    EXPECT_FALSE(bank.canAct(refresh_end - 1, 12345));
    EXPECT_TRUE(bank.canAct(refresh_end, 12345));

    // No second refresh (hidden or plain) while one is in flight.
    EXPECT_FALSE(bank.canHiddenRefresh(start + 1));
    EXPECT_FALSE(bank.canRefresh(start + 1));
}

TEST(HiraBank, RefreshingSubarrayRecordedForHiddenRefresh)
{
    // ...so wait-for-subarray checks (and SARP composition) observe
    // which subarray the hidden refresh occupies.
    const TimingParams t = ddr3Timing();
    const int rows_per_sub = 65536 / 8;
    Bank bank(&t, rows_per_sub, 65536, /*sarp=*/false);
    bank.onAct(0, 5 * rows_per_sub, 5);
    bank.onRefresh(at(t.tHiRA), t.tRc, 1, true);
    EXPECT_EQ(bank.refreshingSubarray(at(t.tHiRA)), 0);
    EXPECT_EQ(bank.refreshingSubarray(at(t.tHiRA) + t.tRc), kNone);
}

// ---------------------------------------------------------------------
// Channel-level legality.
// ---------------------------------------------------------------------

TEST(HiraChannel, HiddenRefpbLegalityRules)
{
    MemConfig cfg;
    cfg.policy = "HiRA";
    RefreshPolicyRegistry::instance().resolve(cfg);
    cfg.finalize();
    const TimingParams t = TimingParams::forConfig(cfg);
    Channel ch(&cfg, &t);

    Command act;
    act.type = CommandType::kAct;
    act.rank = 0;
    act.bank = 2;
    act.row = cfg.org.rowsPerSubarray() + 9;  // Subarray 1.
    act.subarray = 1;
    ASSERT_TRUE(ch.canIssue(act, 10));
    ch.issue(act, 10);

    Command hidden;
    hidden.type = CommandType::kRefPb;
    hidden.rank = 0;
    hidden.bank = 2;
    hidden.hidden = true;
    hidden.tRfcOverride = t.tRc;
    hidden.rowsOverride = 1;

    // Too early: tHiRA not yet elapsed.
    EXPECT_FALSE(ch.canIssue(hidden, Tick(10) + t.tHiRA - Cycles(1)));
    EXPECT_TRUE(ch.canIssue(hidden, Tick(10) + t.tHiRA));

    // A plain REFpb to the same (open) bank stays illegal.
    Command plain = hidden;
    plain.hidden = false;
    EXPECT_FALSE(ch.canIssue(plain, Tick(10) + t.tHiRA));

    // Wrong bank (closed): hidden refresh needs an open row.
    Command closed_bank = hidden;
    closed_bank.bank = 3;
    EXPECT_FALSE(ch.canIssue(closed_bank, Tick(10) + t.tHiRA));

    ch.issue(hidden, Tick(10) + t.tHiRA);
    EXPECT_EQ(ch.stats().refPb, 1u);
    EXPECT_EQ(ch.stats().refPbHidden, 1u);

    // Rank-level REFpb serialization still applies beneath an ACT.
    Command act2 = act;
    act2.bank = 4;
    const Tick later = Tick(10) + t.tRrd + Cycles(1);
    if (ch.canIssue(act2, later))
        ch.issue(act2, later);
    Command hidden2 = hidden;
    hidden2.bank = 4;
    EXPECT_FALSE(ch.canIssue(hidden2, later + t.tHiRA));
}

// ---------------------------------------------------------------------
// End-to-end behaviour.
// ---------------------------------------------------------------------

TEST(Hira, HiddenRefreshesIssueEndToEnd)
{
    System sys(smallConfig("HiRA"), intensivePair());
    sys.run(120000);
    EXPECT_GT(hiddenIssued(sys), 0u);
}

TEST(Hira, CommandStreamLegalUnderChecker)
{
    SystemConfig cfg = smallConfig("HiRA");
    cfg.enableChecker = true;
    System sys(cfg, intensivePair());
    sys.run(60000);
    const CheckerReport report = verifyCommandLog(
        sys.commandLog(0), sys.config().mem, sys.timing(), sys.now());
    EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                     ? ""
                                     : report.violations.front());
    EXPECT_GT(report.refreshesChecked, 0u);
}

TEST(Hira, ZeroCoverageDisablesHiding)
{
    SystemConfig cfg = smallConfig("HiRA");
    cfg.mem.hiraCoverage = 0.0;
    System sys(cfg, intensivePair());
    sys.run(120000);
    EXPECT_EQ(hiddenIssued(sys), 0u);
}

TEST(Hira, FullCoverageHidesMoreThanCharacterized)
{
    SystemConfig partial = smallConfig("HiRA");  // Spec default ~32%.
    System sys_partial(partial, intensivePair());
    sys_partial.run(120000);

    SystemConfig full = smallConfig("HiRA");
    full.mem.hiraCoverage = 1.0;
    System sys_full(full, intensivePair());
    sys_full.run(120000);

    EXPECT_GT(hiddenIssued(sys_full), hiddenIssued(sys_partial));
}

TEST(Hira, SingleSubarrayCannotHide)
{
    // With one subarray per bank every hidden refresh would conflict
    // with the open row, so none may issue.
    System sys(smallConfig("HiRA", /*subarrays=*/1), intensivePair());
    sys.run(120000);
    EXPECT_EQ(hiddenIssued(sys), 0u);
}

TEST(Hira, OutperformsRefabBaseline)
{
    const Tick window = 120000;
    const std::uint64_t refab =
        readsServed(smallConfig("REFab"), window);
    const std::uint64_t hira = readsServed(smallConfig("HiRA"), window);
    EXPECT_GE(hira, refab);
}

TEST(Hira, HidingBeatsPlainDarp)
{
    // HiRA = DARP + hidden refresh paths; the hidden paths must not
    // lose throughput against plain DARP on the same workload.
    const Tick window = 120000;
    const std::uint64_t darp = readsServed(smallConfig("DARP"), window);
    const std::uint64_t hira = readsServed(smallConfig("HiRA"), window);
    // HiRA pays tRRD/tFAW inflation while hiding; allow small noise.
    EXPECT_GE(hira, darp * 97 / 100);
}

// ---------------------------------------------------------------------
// Config plumbing.
// ---------------------------------------------------------------------

TEST(Hira, LayeredKeysRoundTrip)
{
    ExperimentConfig cfg;
    cfg.set("policy", "HiRA");
    cfg.set("refresh.hiraCoverage", "0.5");
    cfg.set("refresh.hiraDelay", "8");
    EXPECT_EQ(cfg.validate(), "");
    const SystemConfig sys = cfg.toSystemConfig();
    EXPECT_DOUBLE_EQ(sys.mem.hiraCoverage, 0.5);
    EXPECT_EQ(sys.mem.hiraDelayCycles, 8);

    MemConfig mem = sys.mem;
    RefreshPolicyRegistry::instance().resolve(mem);
    mem.finalize();
    const TimingParams t = TimingParams::forConfig(mem);
    EXPECT_DOUBLE_EQ(t.hiraActCoverage, 0.5);
    EXPECT_EQ(t.tHiRA, 8);
}

TEST(Hira, BadKnobsFailValidationWithNamedKeys)
{
    ExperimentConfig cover;
    cover.set("refresh.hiraCoverage", "1.5");
    EXPECT_NE(cover.validate().find("refresh.hiraCoverage"),
              std::string::npos);

    ExperimentConfig delay;
    delay.set("refresh.hiraDelay", "-3");
    EXPECT_NE(delay.validate().find("refresh.hiraDelay"),
              std::string::npos);

    ExperimentConfig junk;
    EXPECT_NE(junk.trySet("refresh.hiraCoverage", "lots").find(
                  "expected a number"),
              std::string::npos);
}

TEST(Hira, SpecDefaultsCharacterized)
{
    // Every registered spec carries plausible HiRA characterization.
    for (const std::string &name : DramSpecRegistry::instance().names()) {
        const DramSpec &spec = DramSpecRegistry::instance().at(name);
        EXPECT_GT(spec.tHiRANs.ns(), 0.0) << name;
        EXPECT_GE(spec.hiraActCoverage, 0.0) << name;
        EXPECT_LE(spec.hiraActCoverage, 1.0) << name;
        EXPECT_GE(spec.hiraRefCoverage, 0.0) << name;
        EXPECT_LE(spec.hiraRefCoverage, 1.0) << name;

        MemConfig cfg;
        cfg.dramSpec = name;
        cfg.finalize();
        const TimingParams t = TimingParams::forConfig(cfg);
        EXPECT_GT(t.tHiRA, 0) << name;
        EXPECT_LT(t.tHiRA, t.tRc) << name;  // Hides inside one ACT cycle.
    }
}

TEST(Hira, RunsOnEveryRegisteredSpec)
{
    for (const std::string &name : DramSpecRegistry::instance().names()) {
        SystemConfig cfg = smallConfig("HiRA");
        cfg.mem.dramSpec = name;
        System sys(cfg, intensivePair());
        sys.run(30000);
        std::uint64_t refPb = 0;
        for (int ch = 0; ch < sys.numChannels(); ++ch)
            refPb += sys.controller(ch).channel().stats().refPb;
        EXPECT_GT(refPb, 0u) << name;
    }
}

TEST(HiraFgr, RateKeyScalesPerBankTimingWithNativeDivisors)
{
    // The PR-3 open item "HiRA under FGR rates": refresh.fgrRate
    // runs HiRA's DARP timing profile on FGR-scaled parameters. The
    // command interval shrinks by the rate, tRFC by DDR4's *native*
    // tRFC1/tRFC2/tRFC4 ratios, each command covers proportionally
    // fewer rows -- and the device characterization (tHiRA, the
    // coverage fractions) is rate-invariant.
    MemConfig base;
    base.dramSpec = "DDR4-2400";
    base.density = Density::k8Gb;
    base.refresh = RefreshMode::kDarp;
    base.hira = true;
    base.finalize();
    const TimingParams t1 = TimingParams::forConfig(base);

    MemConfig fgr2 = base;
    fgr2.fgrRate = 2;
    const TimingParams t2 = TimingParams::forConfig(fgr2);
    MemConfig fgr4 = base;
    fgr4.fgrRate = 4;
    const TimingParams t4 = TimingParams::forConfig(fgr4);

    EXPECT_EQ(t2.tRefiAb, t1.tRefiAb / 2);
    EXPECT_EQ(t4.tRefiAb, t1.tRefiAb / 4);
    EXPECT_EQ(t2.tRefiPb, t1.tRefiPb / 2);
    // Native divisors: tRFC shrinks by LESS than the rate (the FGR
    // tax), per-bank via the same Section 3.1 ratio.
    EXPECT_LT(t2.tRfcPb, t1.tRfcPb);
    EXPECT_GT(t2.tRfcPb, t1.tRfcPb / 2);
    EXPECT_LT(t4.tRfcPb, t2.tRfcPb);
    EXPECT_EQ(t2.rowsPerRefresh, t1.rowsPerRefresh / 2);
    // Device characterization does not scale with the command rate.
    EXPECT_EQ(t2.tHiRA, t1.tHiRA);
    EXPECT_DOUBLE_EQ(t2.hiraActCoverage, t1.hiraActCoverage);
    EXPECT_DOUBLE_EQ(t4.hiraRefCoverage, t1.hiraRefCoverage);
}

TEST(HiraFgr, RunsLegallyAtFgrRatesOnDdr4)
{
    // End-to-end at 2x and 4x on DDR4-2400 8 Gb (the density where
    // per-bank refresh fits its interval at 4x): hidden refreshes
    // still issue, the checker finds no violations, and the rate
    // multiplies the per-bank command count.
    std::uint64_t refPbAtRate[3] = {0, 0, 0};
    int i = 0;
    for (int rate : {1, 2, 4}) {
        SystemConfig cfg = smallConfig("HiRA");
        cfg.mem.dramSpec = "DDR4-2400";
        cfg.mem.density = Density::k8Gb;
        cfg.mem.fgrRate = rate;
        cfg.enableChecker = true;
        System sys(cfg, intensivePair());
        sys.run(60000);
        const CheckerReport report = verifyCommandLog(
            sys.commandLog(0), sys.config().mem, sys.timing(),
            sys.now());
        EXPECT_TRUE(report.ok())
            << "rate " << rate << ": "
            << (report.violations.empty() ? ""
                                          : report.violations.front());
        refPbAtRate[i++] =
            sys.controller(0).channel().stats().refPb;
    }
    EXPECT_GT(refPbAtRate[1], refPbAtRate[0]);
    EXPECT_GT(refPbAtRate[2], refPbAtRate[1]);
}

TEST(HiraFgr, UnfittablePerBankScheduleDiesWithNamedKeys)
{
    // DDR4-2400 at 32 Gb + 4x: tRFCpb no longer fits tREFIpb; the
    // derivation must die naming the knobs, never run silently wrong.
    MemConfig cfg;
    cfg.dramSpec = "DDR4-2400";
    cfg.density = Density::k32Gb;
    cfg.refresh = RefreshMode::kDarp;
    cfg.fgrRate = 4;
    cfg.org.rowsPerBank = rowsPerBankFor(cfg.density);
    EXPECT_DEATH(TimingParams::forConfig(cfg), "refresh.fgrRate");
}
