/**
 * @file
 * Unit tests for the refresh obligation ledger (the JEDEC postpone /
 * pull-in window and the erratum's data-integrity bound).
 */

#include <gtest/gtest.h>

#include "refresh/ledger.hh"

using namespace dsarp;

TEST(Ledger, NothingOwedBeforeFirstAccrual)
{
    RefreshLedger ledger(1, 1, Cycles(1000), Cycles(0), Cycles(0));
    ledger.advanceTo(999);
    EXPECT_EQ(ledger.owed(0, 0), 0);
    EXPECT_FALSE(ledger.due(0, 0));
}

TEST(Ledger, AccruesOncePerPeriod)
{
    RefreshLedger ledger(1, 1, Cycles(1000), Cycles(0), Cycles(0));
    ledger.advanceTo(1000);
    EXPECT_EQ(ledger.owed(0, 0), 1);
    ledger.advanceTo(3999);
    EXPECT_EQ(ledger.owed(0, 0), 3);
    EXPECT_EQ(ledger.totalAccrued(), 3u);
}

TEST(Ledger, StaggerOffsetsUnits)
{
    RefreshLedger ledger(1, 4, Cycles(1000), Cycles(0), Cycles(100));
    ledger.advanceTo(1000);
    EXPECT_EQ(ledger.owed(0, 0), 1);
    EXPECT_EQ(ledger.owed(0, 1), 0);
    ledger.advanceTo(1100);
    EXPECT_EQ(ledger.owed(0, 1), 1);
    ledger.advanceTo(1300);
    EXPECT_EQ(ledger.owed(0, 3), 1);
}

TEST(Ledger, RefreshRetiresObligation)
{
    RefreshLedger ledger(1, 1, Cycles(1000), Cycles(0), Cycles(0));
    ledger.advanceTo(2500);
    EXPECT_EQ(ledger.owed(0, 0), 2);
    ledger.onRefresh(0, 0);
    EXPECT_EQ(ledger.owed(0, 0), 1);
    EXPECT_EQ(ledger.totalRetired(), 1u);
}

TEST(Ledger, ForceAtPostponeLimit)
{
    RefreshLedger ledger(1, 1, Cycles(1000), Cycles(0), Cycles(0), 8);
    ledger.advanceTo(7999);
    EXPECT_FALSE(ledger.mustForce(0, 0));
    ledger.advanceTo(8000);
    EXPECT_EQ(ledger.owed(0, 0), 8);
    EXPECT_TRUE(ledger.mustForce(0, 0));
}

TEST(Ledger, PullInBoundedAtMinusEight)
{
    RefreshLedger ledger(1, 1, Cycles(1000), Cycles(0), Cycles(0), 8);
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(ledger.canPullIn(0, 0));
        ledger.onRefresh(0, 0);
    }
    EXPECT_EQ(ledger.owed(0, 0), -8);
    EXPECT_FALSE(ledger.canPullIn(0, 0));
}

TEST(Ledger, PullInCreatesSlack)
{
    RefreshLedger ledger(1, 1, Cycles(1000), Cycles(0), Cycles(0), 8);
    ledger.onRefresh(0, 0);  // owed = -1.
    ledger.advanceTo(9000);  // 9 accruals.
    EXPECT_EQ(ledger.owed(0, 0), 8);
    EXPECT_TRUE(ledger.mustForce(0, 0)) << "slack was spent";
}

TEST(Ledger, AccruedBetween)
{
    RefreshLedger ledger(1, 2, Cycles(1000), Cycles(0), Cycles(100));
    // Unit (0,0) accrues at 1000, 2000, ...; unit (0,1) at 1100, 2100...
    EXPECT_FALSE(ledger.accruedBetween(0, 0, 0, 999));
    EXPECT_TRUE(ledger.accruedBetween(0, 0, 999, 1000));
    EXPECT_FALSE(ledger.accruedBetween(0, 0, 1000, 1999));
    EXPECT_TRUE(ledger.accruedBetween(0, 1, 1000, 1100));
    EXPECT_TRUE(ledger.accruedBetween(0, 0, 500, 2500));
}

TEST(Ledger, FractionalAccounting)
{
    RefreshLedger ledger(1, 1, Cycles(250), Cycles(0), Cycles(0), 8);
    ledger.setDenominator(4);
    ledger.advanceTo(250);
    EXPECT_EQ(ledger.owed(0, 0), 4) << "one accrual = 4 quarters";
    ledger.onPartialRefresh(0, 0, 1);
    EXPECT_EQ(ledger.owed(0, 0), 3);
    ledger.onRefresh(0, 0);  // Full slot retires 4 quarters.
    EXPECT_EQ(ledger.owed(0, 0), -1);
    EXPECT_FALSE(ledger.mustForce(0, 0));
}

TEST(Ledger, FractionalForceLimitScales)
{
    RefreshLedger ledger(1, 1, Cycles(250), Cycles(0), Cycles(0), 8);
    ledger.setDenominator(4);
    ledger.advanceTo(250 * 7);
    EXPECT_FALSE(ledger.mustForce(0, 0));
    ledger.advanceTo(250 * 8);
    EXPECT_TRUE(ledger.mustForce(0, 0));
}

TEST(Ledger, DenominatorChangeRescalesExistingBalances)
{
    // Regression: setDenominator used to be legal only on a pristine
    // ledger, and silently reinterpreted any existing balance against
    // the new denominator while canPullInParts() compared it to the
    // rescaled window. The REFsb + HiRA slice-pairing composition
    // (fractional accounting armed after pull-ins already happened)
    // exercises exactly this path.
    RefreshLedger ledger(1, 1, Cycles(1000), Cycles(0), Cycles(0), 8);
    ledger.onRefresh(0, 0);  // Two whole slots pulled in before the
    ledger.onRefresh(0, 0);  // first accrual (idle-channel warmup).
    EXPECT_EQ(ledger.owed(0, 0), -2);

    ledger.setDenominator(4);
    EXPECT_EQ(ledger.owed(0, 0), -8) << "balance rescaled to quarters";

    // The JEDEC window keeps its whole-slot meaning across the
    // change: 8 slots of pull-in total, 2 already spent -> exactly 6
    // more full slots may be pulled in, not 7 (which the unrescaled
    // balance would have allowed).
    for (int i = 0; i < 6; ++i) {
        EXPECT_TRUE(ledger.canPullIn(0, 0)) << "slot " << i;
        ledger.onRefresh(0, 0);
    }
    EXPECT_EQ(ledger.owed(0, 0), -32);
    EXPECT_FALSE(ledger.canPullIn(0, 0));
    EXPECT_FALSE(ledger.canPullInParts(0, 0, 1));
}

TEST(Ledger, DenominatorChangeMidWindow)
{
    RefreshLedger ledger(1, 2, Cycles(1000), Cycles(0), Cycles(0), 8);
    ledger.advanceTo(3000);  // Three accruals per unit.
    ledger.onRefresh(0, 0);
    EXPECT_EQ(ledger.owed(0, 0), 2);
    EXPECT_EQ(ledger.owed(0, 1), 3);

    ledger.setDenominator(2);
    EXPECT_EQ(ledger.owed(0, 0), 4) << "2 slots -> 4 halves";
    EXPECT_EQ(ledger.owed(0, 1), 6);

    // Accruals after the change add the new denominator per period.
    ledger.advanceTo(4000);
    EXPECT_EQ(ledger.owed(0, 0), 6);

    // Fractional retirement and the force threshold both use the new
    // denominator consistently (mustForce at 8 slots = 16 halves).
    ledger.onPartialRefresh(0, 0, 3);
    EXPECT_EQ(ledger.owed(0, 0), 3);
    EXPECT_FALSE(ledger.mustForce(0, 0));
    ledger.advanceTo(10000);
    EXPECT_TRUE(ledger.mustForce(0, 1));
}

TEST(Ledger, DenominatorChangeRefusesToTruncate)
{
    RefreshLedger ledger(1, 1, Cycles(1000), Cycles(0), Cycles(0), 8);
    ledger.setDenominator(4);
    ledger.advanceTo(1000);
    ledger.onPartialRefresh(0, 0, 1);  // Balance now 3 quarters.
    EXPECT_DEATH(ledger.setDenominator(1), "truncate");
}

TEST(Ledger, MultiRankIndependence)
{
    RefreshLedger ledger(2, 8, Cycles(1000), Cycles(500), Cycles(10));
    ledger.advanceTo(5000);
    ledger.onRefresh(1, 5);
    EXPECT_EQ(ledger.owed(0, 5), ledger.owed(1, 5) + 1);
}
