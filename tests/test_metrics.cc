/**
 * @file
 * Unit tests for WS / HS / maximum slowdown.
 */

#include <gtest/gtest.h>

#include "sim/metrics.hh"

using namespace dsarp;

TEST(Metrics, NoSlowdownGivesCoreCount)
{
    const std::vector<double> ipc = {1.0, 2.0, 0.5};
    EXPECT_DOUBLE_EQ(weightedSpeedup(ipc, ipc), 3.0);
    EXPECT_DOUBLE_EQ(harmonicSpeedup(ipc, ipc), 1.0);
    EXPECT_DOUBLE_EQ(maxSlowdown(ipc, ipc), 1.0);
}

TEST(Metrics, UniformHalving)
{
    const std::vector<double> alone = {2.0, 2.0};
    const std::vector<double> shared = {1.0, 1.0};
    EXPECT_DOUBLE_EQ(weightedSpeedup(shared, alone), 1.0);
    EXPECT_DOUBLE_EQ(harmonicSpeedup(shared, alone), 0.5);
    EXPECT_DOUBLE_EQ(maxSlowdown(shared, alone), 2.0);
}

TEST(Metrics, WeightedSpeedupMixes)
{
    const std::vector<double> alone = {2.0, 4.0};
    const std::vector<double> shared = {1.0, 3.0};
    EXPECT_DOUBLE_EQ(weightedSpeedup(shared, alone), 0.5 + 0.75);
}

TEST(Metrics, HarmonicPunishesImbalance)
{
    // Same WS, but one core starving: HS must be lower.
    const std::vector<double> alone = {1.0, 1.0};
    const std::vector<double> balanced = {0.5, 0.5};
    const std::vector<double> skewed = {0.9, 0.1};
    EXPECT_NEAR(weightedSpeedup(balanced, alone),
                weightedSpeedup(skewed, alone), 1e-12);
    EXPECT_GT(harmonicSpeedup(balanced, alone),
              harmonicSpeedup(skewed, alone));
}

TEST(Metrics, MaxSlowdownPicksWorstCore)
{
    const std::vector<double> alone = {1.0, 1.0, 1.0};
    const std::vector<double> shared = {0.9, 0.25, 0.5};
    EXPECT_DOUBLE_EQ(maxSlowdown(shared, alone), 4.0);
}

TEST(Metrics, SingleCore)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({0.5}, {1.0}), 0.5);
    EXPECT_DOUBLE_EQ(harmonicSpeedup({0.5}, {1.0}), 0.5);
    EXPECT_DOUBLE_EQ(maxSlowdown({0.5}, {1.0}), 2.0);
}
