/**
 * @file
 * Tests for the overlapped per-bank refresh extension (paper footnote 5:
 * a modified standard that lets a subset of banks refresh concurrently
 * within a rank).
 */

#include <gtest/gtest.h>

#include "sim/checker.hh"
#include "sim/system.hh"
#include "workload/benchmark.hh"

using namespace dsarp;

namespace {

class OverlapTest : public ::testing::Test
{
  protected:
    MemConfig
    makeCfg(int max_overlap)
    {
        MemConfig cfg;
        cfg.refresh = RefreshMode::kPerBank;
        cfg.maxOverlappedRefPb = max_overlap;
        cfg.finalize();
        return cfg;
    }
};

} // namespace

TEST_F(OverlapTest, StandardDisallowsOverlap)
{
    MemConfig cfg = makeCfg(1);
    const TimingParams timing = TimingParams::ddr3_1333(cfg);
    Rank rank(&cfg, &timing);
    rank.onRefPb(0, 0);
    EXPECT_FALSE(rank.canRefPbRankLevel(1));
    EXPECT_TRUE(rank.canRefPbRankLevel(Tick(0) + timing.tRfcPb));
}

TEST_F(OverlapTest, ExtensionAllowsBoundedOverlap)
{
    MemConfig cfg = makeCfg(3);
    const TimingParams timing = TimingParams::ddr3_1333(cfg);
    Rank rank(&cfg, &timing);
    rank.onRefPb(0, 0);
    EXPECT_TRUE(rank.canRefPbRankLevel(1));
    rank.onRefPb(1, 1);
    EXPECT_TRUE(rank.canRefPbRankLevel(2));
    rank.onRefPb(2, 2);
    EXPECT_EQ(rank.refPbCount(3), 3);
    EXPECT_FALSE(rank.canRefPbRankLevel(3)) << "limit is 3";
    // The first refresh finishing frees a slot.
    EXPECT_TRUE(rank.canRefPbRankLevel(Tick(0) + timing.tRfcPb));
}

TEST_F(OverlapTest, RefAbStillNeedsQuietRank)
{
    MemConfig cfg = makeCfg(4);
    const TimingParams timing = TimingParams::ddr3_1333(cfg);
    Rank rank(&cfg, &timing);
    rank.onRefPb(0, 0);
    EXPECT_FALSE(rank.canRefAb(1));
    EXPECT_TRUE(rank.canRefAb(Tick(0) + timing.tRfcPb));
}

TEST_F(OverlapTest, InflationScalesWithInFlightCount)
{
    MemConfig cfg = makeCfg(4);
    EXPECT_DOUBLE_EQ(Rank::refreshInflationMult(cfg, false, 0), 1.0);
    const double one = Rank::refreshInflationMult(cfg, false, 1);
    const double two = Rank::refreshInflationMult(cfg, false, 2);
    EXPECT_DOUBLE_EQ(one, cfg.sarpInflationPb);
    EXPECT_NEAR(two - 1.0, 2.0 * (one - 1.0), 1e-12);

    // Baseline (no SARP, no overlap): no inflation ever.
    MemConfig plain = makeCfg(1);
    EXPECT_DOUBLE_EQ(Rank::refreshInflationMult(plain, false, 1), 1.0);
}

TEST_F(OverlapTest, CheckerFlagsOverlapBeyondLimit)
{
    MemConfig cfg = makeCfg(2);
    const TimingParams timing = TimingParams::ddr3_1333(cfg);
    const auto ref = [](Tick t, BankId b) {
        Command cmd;
        cmd.type = CommandType::kRefPb;
        cmd.rank = 0;
        cmd.bank = b;
        return TimedCommand{t, cmd};
    };
    // Two concurrent: legal at limit 2; a third overlapping: violation.
    const std::vector<TimedCommand> ok = {ref(0, 0), ref(1, 1)};
    EXPECT_TRUE(verifyCommandLog(ok, cfg, timing, 0).ok());
    const std::vector<TimedCommand> bad = {ref(0, 0), ref(1, 1),
                                           ref(2, 2)};
    EXPECT_FALSE(verifyCommandLog(bad, cfg, timing, 0).ok());
}

TEST_F(OverlapTest, SystemRunsLegallyWithOverlap)
{
    for (int overlap : {2, 4}) {
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.mem.org.channels = 1;
        cfg.mem.density = Density::k32Gb;
        cfg.mem.refresh = RefreshMode::kDarp;
        cfg.mem.sarp = true;
        cfg.mem.maxOverlappedRefPb = overlap;
        cfg.enableChecker = true;
        System sys(cfg, {benchmarkIndex("mcf-like"),
                         benchmarkIndex("stream-like")});
        sys.run(Tick(0) + 10 * sys.timing().tRefiAb);
        const CheckerReport report = verifyCommandLog(
            sys.commandLog(0), sys.config().mem, sys.timing(), sys.now());
        EXPECT_TRUE(report.ok())
            << "overlap " << overlap << ": "
            << (report.violations.empty() ? ""
                                          : report.violations.front());
        EXPECT_GT(sys.controller(0).stats().readsCompleted, 100u);
    }
}

TEST_F(OverlapTest, OverlapRelievesRefpbSerializationPathology)
{
    // Paper Section 6.1: REFpb's serialized refreshes cost ~3.5x tRFCab
    // per full rank sweep. With overlap the sweep compresses; catch-up
    // after a congested phase is faster, so at minimum the system must
    // not do worse.
    auto reads_with = [&](int overlap) {
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.mem.org.channels = 1;
        cfg.mem.density = Density::k32Gb;
        cfg.mem.refresh = RefreshMode::kPerBank;
        cfg.mem.maxOverlappedRefPb = overlap;
        cfg.seed = 11;
        System sys(cfg, {benchmarkIndex("mcf-like"),
                         benchmarkIndex("randacc-like")});
        sys.run(120000);
        return sys.controller(0).stats().readsCompleted;
    };
    const auto base = reads_with(1);
    const auto overlapped = reads_with(4);
    EXPECT_GE(overlapped, base * 97 / 100);
}
