/**
 * @file
 * Determinism contract of the sharded sweep layer (sim/parallel.hh).
 *
 * The SweepRunner promises that result i corresponds to points[i] and
 * is byte-identical for ANY job count and ANY shard order -- that is
 * the property that lets every fig/table binary grow a --jobs flag
 * without perturbing a single published number. This suite pins it:
 *
 *   - jobs 1 / 2 / 8 produce exactly equal RunResult vectors (every
 *     field, doubles compared with ==, no tolerance),
 *   - permuting the point list permutes the results and nothing else
 *     (no cross-point leakage through the shared alone-IPC memo),
 *   - parallelFor runs each index exactly once and rethrows worker
 *     exceptions on the caller,
 *   - pointSeed depends only on (base, index).
 *
 * The whole file runs under the CI sanitizer matrix (including TSan),
 * so the jobs=8 legs double as a data-race probe of Runner::run's
 * shared memo cache.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "sim/parallel.hh"
#include "sim/runner.hh"
#include "workload/workload.hh"

using namespace dsarp;

namespace {

/** Short but non-trivial run lengths: long enough for refreshes and
 *  real WS numbers, short enough for an 18-point x 4-leg suite. */
Runner &
testRunner()
{
    static Runner runner(Tick(2000), Tick(12000), 1);
    return runner;
}

std::vector<SweepPoint>
makePoints()
{
    std::vector<SweepPoint> points;
    const auto workloads = makeWorkloads(1, 4, 7);
    const char *const mechs[] = {"REFab", "REFpb", "DSARP"};
    for (const char *mech : mechs) {
        for (const Workload &w : workloads) {
            SweepPoint p;
            p.cfg.policy = mech;
            p.cfg.numCores = 4;
            p.cfg.density = Density::k16Gb;
            p.workload = w;
            points.push_back(p);
        }
    }
    return points;
}

void
expectResultsEqual(const RunResult &a, const RunResult &b,
                   const std::string &ctx)
{
    EXPECT_EQ(a.ipc, b.ipc) << ctx;
    EXPECT_EQ(a.aloneIpc, b.aloneIpc) << ctx;
    EXPECT_EQ(a.ws, b.ws) << ctx;
    EXPECT_EQ(a.hs, b.hs) << ctx;
    EXPECT_EQ(a.maxSlowdown, b.maxSlowdown) << ctx;
    EXPECT_EQ(a.energyPerAccessNj, b.energyPerAccessNj) << ctx;
    EXPECT_EQ(a.readsCompleted, b.readsCompleted) << ctx;
    EXPECT_EQ(a.writesIssued, b.writesIssued) << ctx;
    EXPECT_EQ(a.refAb, b.refAb) << ctx;
    EXPECT_EQ(a.refPb, b.refPb) << ctx;
    EXPECT_EQ(a.refSb, b.refSb) << ctx;
    EXPECT_EQ(a.refPbHidden, b.refPbHidden) << ctx;
    EXPECT_EQ(a.srEnters, b.srEnters) << ctx;
    EXPECT_EQ(a.srExits, b.srExits) << ctx;
    EXPECT_EQ(a.srTicks, b.srTicks) << ctx;
}

} // namespace

TEST(ParallelFor, RunsEveryIndexExactlyOnceAtAnyWidth)
{
    for (int jobs : {1, 2, 8, 64}) {
        std::vector<std::atomic<int>> hits(97);
        for (auto &h : hits)
            h = 0;
        parallelFor(jobs, hits.size(),
                    [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i], 1) << "jobs=" << jobs << " i=" << i;
    }
}

TEST(ParallelFor, ZeroItemsIsANoOp)
{
    bool ran = false;
    parallelFor(8, 0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, WorkerExceptionRethrownOnCaller)
{
    std::atomic<int> completed{0};
    EXPECT_THROW(
        parallelFor(4, 32,
                    [&](std::size_t i) {
                        if (i == 13)
                            throw std::runtime_error("boom");
                        ++completed;
                    }),
        std::runtime_error);
    // All workers drained before the rethrow: nothing is still
    // touching `completed` once parallelFor returns.
    EXPECT_GE(completed.load(), 0);
}

TEST(PointSeed, DependsOnlyOnBaseAndIndex)
{
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 100; ++i) {
        const std::uint64_t s = SweepRunner::pointSeed(42, i);
        EXPECT_EQ(s, SweepRunner::pointSeed(42, i)) << i;
        EXPECT_TRUE(seen.insert(s).second)
            << "collision at index " << i;
    }
    EXPECT_NE(SweepRunner::pointSeed(42, 0),
              SweepRunner::pointSeed(43, 0));
}

TEST(SweepRunner, JobCountNeverChangesAResult)
{
    const auto points = makePoints();
    ASSERT_GE(points.size(), 3u);

    const auto baseline = SweepRunner(testRunner(), 1).run(points);
    ASSERT_EQ(baseline.size(), points.size());
    for (int jobs : {2, 8}) {
        const auto got = SweepRunner(testRunner(), jobs).run(points);
        ASSERT_EQ(got.size(), points.size()) << "jobs=" << jobs;
        for (std::size_t i = 0; i < points.size(); ++i) {
            expectResultsEqual(baseline[i], got[i],
                               "jobs=" + std::to_string(jobs) +
                                   " point=" + std::to_string(i));
        }
    }
}

TEST(SweepRunner, ShardOrderIndependent)
{
    // Reversing the point list must exactly reverse the results: each
    // point's outcome is a pure function of the point, not of its
    // neighbours, its slot, or which worker claimed it first.
    const auto points = makePoints();
    std::vector<SweepPoint> reversed(points.rbegin(), points.rend());

    const auto fwd = SweepRunner(testRunner(), 8).run(points);
    const auto rev = SweepRunner(testRunner(), 8).run(reversed);
    ASSERT_EQ(fwd.size(), rev.size());
    for (std::size_t i = 0; i < fwd.size(); ++i) {
        expectResultsEqual(fwd[i], rev[fwd.size() - 1 - i],
                           "point=" + std::to_string(i));
    }
}

TEST(SweepRunner, ConfigPlusWorkloadsOverloadMatchesPointwise)
{
    // The bench_common shape -- one config, many workloads -- must be
    // sugar for the general point list, nothing more.
    const auto workloads = makeWorkloads(1, 4, 7);
    RunConfig cfg;
    cfg.policy = "DSARP";
    cfg.numCores = 4;

    std::vector<SweepPoint> points;
    for (const Workload &w : workloads)
        points.push_back({cfg, w});

    const auto a = SweepRunner(testRunner(), 2).run(cfg, workloads);
    const auto b = SweepRunner(testRunner(), 2).run(points);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectResultsEqual(a[i], b[i], "workload=" + std::to_string(i));
}
