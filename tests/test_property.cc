/**
 * @file
 * Parameterized property sweep: every (mechanism, density, SARP) point
 * must produce a JEDEC-legal command stream (independent checker), keep
 * every bank's refresh obligations inside the postpone window, and make
 * forward progress.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/checker.hh"
#include "sim/system.hh"
#include "workload/benchmark.hh"

using namespace dsarp;

namespace {

using Point = std::tuple<RefreshMode, Density, bool>;

class RefreshProperty : public ::testing::TestWithParam<Point>
{
};

std::string
pointName(const ::testing::TestParamInfo<Point> &info)
{
    const auto [mode, density, sarp] = info.param;
    std::string name = refreshModeName(mode);
    name += "_";
    name += densityName(density);
    if (sarp)
        name += "_SARP";
    return name;
}

} // namespace

TEST_P(RefreshProperty, LegalStreamAndProgress)
{
    const auto [mode, density, sarp] = GetParam();

    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.mem.org.channels = 1;
    cfg.mem.density = density;
    cfg.mem.refresh = mode;
    cfg.mem.sarp = sarp;
    cfg.enableChecker = true;
    cfg.seed = 17;

    System sys(cfg, {benchmarkIndex("milc-like"),
                     benchmarkIndex("lbm-like")});
    const Tick horizon = Tick(0) + 15 * sys.timing().tRefiAb;
    sys.run(horizon);

    // 1. Forward progress.
    EXPECT_GT(sys.core(0).stats().instructionsRetired, 1000u);
    EXPECT_GT(sys.controller(0).stats().readsCompleted, 100u);

    // 2. Independent legality check, including refresh completeness.
    const CheckerReport report = verifyCommandLog(
        sys.commandLog(0), sys.config().mem, sys.timing(), sys.now());
    EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                     ? ""
                                     : report.violations.front());
    if (mode != RefreshMode::kNoRefresh)
        EXPECT_GT(report.refreshesChecked, 0u);

    // 3. No request starves: queues drain (occupancy stays bounded).
    const ControllerStats &cs = sys.controller(0).stats();
    EXPECT_LT(static_cast<double>(cs.readQueueOccupancySum) / cs.ticks,
              63.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, RefreshProperty,
    ::testing::Combine(
        ::testing::Values(RefreshMode::kNoRefresh, RefreshMode::kAllBank,
                          RefreshMode::kPerBank, RefreshMode::kElastic,
                          RefreshMode::kDarp, RefreshMode::kFgr2x,
                          RefreshMode::kFgr4x, RefreshMode::kAdaptive),
        ::testing::Values(Density::k8Gb, Density::k32Gb),
        ::testing::Values(false)),
    pointName);

INSTANTIATE_TEST_SUITE_P(
    SarpMechanisms, RefreshProperty,
    ::testing::Combine(
        ::testing::Values(RefreshMode::kAllBank, RefreshMode::kPerBank,
                          RefreshMode::kDarp),
        ::testing::Values(Density::k8Gb, Density::k16Gb, Density::k32Gb),
        ::testing::Values(true)),
    pointName);

namespace {

using SubarrayPoint = std::tuple<int, Density>;

class SubarrayProperty : public ::testing::TestWithParam<SubarrayPoint>
{
};

} // namespace

TEST_P(SubarrayProperty, SarpLegalAcrossSubarrayCounts)
{
    const auto [subarrays, density] = GetParam();
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.mem.org.channels = 1;
    cfg.mem.org.subarraysPerBank = subarrays;
    cfg.mem.density = density;
    cfg.mem.refresh = RefreshMode::kPerBank;
    cfg.mem.sarp = true;
    cfg.enableChecker = true;
    cfg.seed = 23;

    System sys(cfg, {benchmarkIndex("mcf-like"),
                     benchmarkIndex("stream-like")});
    sys.run(Tick(0) + 10 * sys.timing().tRefiAb);

    const CheckerReport report = verifyCommandLog(
        sys.commandLog(0), sys.config().mem, sys.timing(), sys.now());
    EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                     ? ""
                                     : report.violations.front());
    EXPECT_GT(sys.controller(0).stats().readsCompleted, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Table5Sweep, SubarrayProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 32, 64),
                       ::testing::Values(Density::k32Gb)),
    [](const ::testing::TestParamInfo<SubarrayPoint> &info) {
        return "sa" + std::to_string(std::get<0>(info.param)) + "_" +
            densityName(std::get<1>(info.param));
    });
