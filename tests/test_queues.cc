/**
 * @file
 * Unit tests for the bounded request queue.
 */

#include <gtest/gtest.h>

#include "controller/queues.hh"

using namespace dsarp;

namespace {

Request
makeReq(std::uint64_t id, RankId r, BankId b, RowId row, Addr addr = 0,
        bool is_write = false)
{
    Request req;
    req.id = id;
    req.isWrite = is_write;
    req.addr = addr;
    req.loc.rank = r;
    req.loc.bank = b;
    req.loc.row = row;
    return req;
}

} // namespace

TEST(RequestQueue, PushPopFifoOrder)
{
    RequestQueue q(4, 2, 8);
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.push(makeReq(1, 0, 0, 0)));
    EXPECT_TRUE(q.push(makeReq(2, 0, 1, 0)));
    EXPECT_EQ(q.size(), 2);
    EXPECT_EQ(q.at(0).id, 1u);
    EXPECT_EQ(q.at(1).id, 2u);
    const Request r = q.pop(0);
    EXPECT_EQ(r.id, 1u);
    EXPECT_EQ(q.at(0).id, 2u);
}

TEST(RequestQueue, CapacityEnforced)
{
    RequestQueue q(2, 2, 8);
    EXPECT_TRUE(q.push(makeReq(1, 0, 0, 0)));
    EXPECT_TRUE(q.push(makeReq(2, 0, 0, 0)));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.push(makeReq(3, 0, 0, 0)));
    EXPECT_EQ(q.size(), 2);
}

TEST(RequestQueue, BankCountsMaintained)
{
    RequestQueue q(16, 2, 8);
    q.push(makeReq(1, 0, 3, 0));
    q.push(makeReq(2, 0, 3, 1));
    q.push(makeReq(3, 1, 3, 2));
    EXPECT_EQ(q.bankCount(0, 3), 2);
    EXPECT_EQ(q.bankCount(1, 3), 1);
    EXPECT_EQ(q.bankCount(0, 4), 0);
    EXPECT_EQ(q.rankCount(0), 2);
    EXPECT_EQ(q.rankCount(1), 1);
    q.pop(0);
    EXPECT_EQ(q.bankCount(0, 3), 1);
}

TEST(RequestQueue, PopMiddlePreservesOrder)
{
    RequestQueue q(8, 1, 8);
    for (std::uint64_t i = 1; i <= 4; ++i)
        q.push(makeReq(i, 0, 0, 0));
    q.pop(1);  // Remove id 2.
    EXPECT_EQ(q.at(0).id, 1u);
    EXPECT_EQ(q.at(1).id, 3u);
    EXPECT_EQ(q.at(2).id, 4u);
}

TEST(RequestQueue, FindAddr)
{
    RequestQueue q(8, 1, 8);
    q.push(makeReq(1, 0, 0, 0, 0x1000));
    q.push(makeReq(2, 0, 0, 0, 0x2000));
    EXPECT_EQ(q.findAddr(0x2000), 1);
    EXPECT_EQ(q.findAddr(0x3000), -1);
}

TEST(RequestQueue, RowCount)
{
    RequestQueue q(8, 2, 8);
    q.push(makeReq(1, 0, 2, 77));
    q.push(makeReq(2, 0, 2, 77));
    q.push(makeReq(3, 0, 2, 78));
    q.push(makeReq(4, 1, 2, 77));
    EXPECT_EQ(q.rowCount(0, 2, 77), 2);
    EXPECT_EQ(q.rowCount(0, 2, 78), 1);
    EXPECT_EQ(q.rowCount(1, 2, 77), 1);
    EXPECT_EQ(q.rowCount(0, 3, 77), 0);
}
