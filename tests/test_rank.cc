/**
 * @file
 * Unit tests for rank-level constraints: tRRD, tFAW, refresh
 * serialization, and SARP's power-integrity inflation (Eq. 1-3).
 */

#include <gtest/gtest.h>

#include "dram/rank.hh"

using namespace dsarp;

namespace {

/** A duration read as an instant on a clock that started at tick 0. */
Tick
at(Cycles c)
{
    return Tick(0) + c;
}

class RankTest : public ::testing::Test
{
  protected:
    RankTest()
    {
        cfg_.finalize();
        timing_ = TimingParams::ddr3_1333(cfg_);
    }

    MemConfig cfg_;
    TimingParams timing_;
};

class SarpRankTest : public RankTest
{
  protected:
    SarpRankTest() { cfg_.sarp = true; }
};

} // namespace

TEST_F(RankTest, TrrdBetweenActs)
{
    Rank rank(&cfg_, &timing_);
    EXPECT_TRUE(rank.canActRankLevel(0));
    rank.onAct(0);
    EXPECT_FALSE(rank.canActRankLevel(at(timing_.tRrd) - 1));
    EXPECT_TRUE(rank.canActRankLevel(at(timing_.tRrd)));
}

TEST_F(RankTest, FourActivateWindow)
{
    Rank rank(&cfg_, &timing_);
    Tick now = 0;
    for (int i = 0; i < 4; ++i) {
        rank.onAct(now);
        now += timing_.tRrd;
    }
    // The fifth ACT must wait for the first to leave the tFAW window.
    EXPECT_FALSE(rank.canActRankLevel(now));
    EXPECT_FALSE(rank.canActRankLevel(at(timing_.tFaw) - 1));
    EXPECT_TRUE(rank.canActRankLevel(at(timing_.tFaw)));
}

TEST_F(RankTest, RefPbOccupiesRankSerialization)
{
    Rank rank(&cfg_, &timing_);
    EXPECT_TRUE(rank.canRefPbRankLevel(0));
    rank.onRefPb(0, 3);
    EXPECT_TRUE(rank.refPbInFlight(1));
    EXPECT_FALSE(rank.canRefPbRankLevel(at(timing_.tRfcPb) - 1));
    EXPECT_TRUE(rank.canRefPbRankLevel(at(timing_.tRfcPb)));
    // The refreshed bank is locked; others are not (REFpb benefit).
    EXPECT_FALSE(rank.bank(3).canAct(1, 0));
    EXPECT_TRUE(rank.bank(4).canAct(1, 0));
}

TEST_F(RankTest, RefAbNeedsAllBanksIdle)
{
    Rank rank(&cfg_, &timing_);
    EXPECT_TRUE(rank.canRefAb(0));
    rank.bank(2).onAct(0, 5, 0);
    rank.onAct(0);
    EXPECT_FALSE(rank.canRefAb(1));
}

TEST_F(RankTest, RefAbLocksEveryBank)
{
    Rank rank(&cfg_, &timing_);
    rank.onRefAb(0);
    EXPECT_TRUE(rank.refAbInFlight(at(timing_.tRfcAb) - 1));
    for (int b = 0; b < rank.numBanks(); ++b) {
        EXPECT_FALSE(rank.bank(b).canAct(at(timing_.tRfcAb) - 1, 0));
        EXPECT_TRUE(rank.bank(b).canAct(at(timing_.tRfcAb), 0));
    }
}

TEST_F(RankTest, RefAbAndRefPbMutuallyExclusive)
{
    Rank rank(&cfg_, &timing_);
    rank.onRefPb(0, 0);
    EXPECT_FALSE(rank.canRefAb(1));
    Rank rank2(&cfg_, &timing_);
    rank2.onRefAb(0);
    EXPECT_FALSE(rank2.canRefPbRankLevel(1));
}

TEST_F(RankTest, NoInflationWithoutSarp)
{
    Rank rank(&cfg_, &timing_);
    rank.onRefPb(0, 0);
    EXPECT_EQ(rank.effTRrd(1), timing_.tRrd);
    EXPECT_EQ(rank.effTFaw(1), timing_.tFaw);
}

TEST_F(RankTest, IsActiveTracksOpenAndRefresh)
{
    Rank rank(&cfg_, &timing_);
    EXPECT_FALSE(rank.isActive(0));
    rank.bank(1).onAct(0, 9, 0);
    rank.onAct(0);
    EXPECT_TRUE(rank.isActive(1));
}

TEST_F(SarpRankTest, PerBankInflationDuringRefresh)
{
    Rank rank(&cfg_, &timing_);
    rank.onRefPb(0, 0);
    // 1.138x inflation: ceil(4 * 1.138) = 5, ceil(20 * 1.138) = 23.
    EXPECT_EQ(rank.effTRrd(1), 5);
    EXPECT_EQ(rank.effTFaw(1), 23);
    // Back to datasheet values once the refresh finishes.
    EXPECT_EQ(rank.effTRrd(at(timing_.tRfcPb)), timing_.tRrd);
}

TEST_F(SarpRankTest, AllBankInflationDuringRefresh)
{
    Rank rank(&cfg_, &timing_);
    rank.onRefAb(0);
    // 2.1x inflation: ceil(4 * 2.1) = 9, ceil(20 * 2.1) = 42.
    EXPECT_EQ(rank.effTRrd(1), 9);
    EXPECT_EQ(rank.effTFaw(1), 42);
}

TEST_F(SarpRankTest, BanksAcceptActsDuringRefAb)
{
    Rank rank(&cfg_, &timing_);
    rank.onRefAb(0);
    // SARP: refresh occupies subarray 0; other subarrays accessible.
    for (int b = 0; b < rank.numBanks(); ++b) {
        EXPECT_FALSE(rank.bank(b).canAct(1, 0));
        EXPECT_TRUE(rank.bank(b).canAct(1, cfg_.org.rowsPerSubarray()));
    }
}

TEST_F(SarpRankTest, InflatedTrrdGatesActsUnderRefresh)
{
    Rank rank(&cfg_, &timing_);
    rank.onRefPb(0, 0);
    rank.onAct(1);
    EXPECT_FALSE(rank.canActRankLevel(Tick(1) + timing_.tRrd));
    EXPECT_TRUE(rank.canActRankLevel(Tick(1) + rank.effTRrd(1)));
}
