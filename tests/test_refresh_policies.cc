/**
 * @file
 * Unit tests for the baseline refresh policies: REFab on-schedule
 * issuing, REFpb strict round-robin order, elastic postponement, and the
 * adaptive (AR) 1x/4x mode mixing.
 */

#include <gtest/gtest.h>

#include "mock_view.hh"
#include "refresh/all_bank.hh"
#include "refresh/elastic.hh"
#include "refresh/fgr.hh"
#include "refresh/no_refresh.hh"
#include "refresh/per_bank.hh"

using namespace dsarp;

namespace {

class PolicyTest : public ::testing::Test
{
  protected:
    PolicyTest()
    {
        cfg_.finalize();
        timing_ = TimingParams::ddr3_1333(cfg_);
        view_ = std::make_unique<MockView>(&cfg_, &timing_);
    }

    /** Drive the policy to @p end, issuing every legal urgent refresh. */
    std::vector<std::pair<Tick, RefreshRequest>>
    drive(RefreshScheduler &sched, Tick end)
    {
        std::vector<std::pair<Tick, RefreshRequest>> issued;
        std::vector<RefreshRequest> urgent;
        for (Tick t = 0; t < end; ++t) {
            sched.tick(t);
            urgent.clear();
            sched.urgent(t, urgent);
            for (const RefreshRequest &req : urgent) {
                Command cmd;
                cmd.type = req.allBank ? CommandType::kRefAb
                                       : CommandType::kRefPb;
                cmd.rank = req.rank;
                cmd.bank = req.bank;
                cmd.tRfcOverride = req.tRfcOverride;
                if (view_->channel().canIssue(cmd, t)) {
                    view_->channel().issue(cmd, t);
                    sched.onIssued(req, t);
                    issued.push_back({t, req});
                    break;  // One command per tick.
                }
            }
        }
        return issued;
    }

    MemConfig cfg_;
    TimingParams timing_;
    std::unique_ptr<MockView> view_;
};

} // namespace

TEST_F(PolicyTest, NoRefreshNeverIssues)
{
    NoRefreshScheduler sched(&cfg_, &timing_, view_.get());
    const auto issued =
        drive(sched, Tick(0) + 3 * timing_.tRefiAb);
    EXPECT_TRUE(issued.empty());
}

TEST_F(PolicyTest, AllBankIssuesPerRankPerInterval)
{
    AllBankScheduler sched(&cfg_, &timing_, view_.get());
    const Tick horizon = Tick(0) + 10 * timing_.tRefiAb;
    const auto issued = drive(sched, horizon);
    // 10 intervals x 2 ranks, minus boundary slack.
    EXPECT_GE(issued.size(), 18u);
    EXPECT_LE(issued.size(), 20u);
    for (const auto &[t, req] : issued)
        EXPECT_TRUE(req.allBank);
    EXPECT_EQ(sched.stats().issued, issued.size());
}

TEST_F(PolicyTest, AllBankRanksStaggered)
{
    AllBankScheduler sched(&cfg_, &timing_, view_.get());
    const auto issued =
        drive(sched, Tick(0) + 3 * timing_.tRefiAb);
    ASSERT_GE(issued.size(), 2u);
    // First two refreshes hit different ranks at different times.
    EXPECT_NE(issued[0].second.rank, issued[1].second.rank);
    EXPECT_NE(issued[0].first, issued[1].first);
}

TEST_F(PolicyTest, PerBankStrictRoundRobin)
{
    PerBankScheduler sched(&cfg_, &timing_, view_.get());
    const auto issued =
        drive(sched, Tick(0) + 3 * timing_.tRefiAb);
    ASSERT_GE(issued.size(), 16u);
    // Per rank, bank order must be 0,1,2,...,7,0,1,...
    std::vector<int> next(cfg_.org.ranksPerChannel, 0);
    for (const auto &[t, req] : issued) {
        EXPECT_FALSE(req.allBank);
        EXPECT_EQ(req.bank, next[req.rank]) << "strict RR violated";
        next[req.rank] = (next[req.rank] + 1) % cfg_.org.banksPerRank;
    }
}

TEST_F(PolicyTest, PerBankCadenceMatchesTrefiPb)
{
    PerBankScheduler sched(&cfg_, &timing_, view_.get());
    const Tick horizon = Tick(0) + 4 * timing_.tRefiAb;
    const auto issued = drive(sched, horizon);
    // 4 intervals x 8 banks x 2 ranks = 64 expected, minus edge effects.
    EXPECT_GE(issued.size(), 44u);
    EXPECT_LE(issued.size(), 64u);
}

TEST_F(PolicyTest, ElasticPostponesWhileRankBusy)
{
    ElasticScheduler sched(&cfg_, &timing_, view_.get());
    // Rank 0 continuously busy; rank 1 idle.
    for (BankId b = 0; b < 8; ++b)
        view_->setReads(0, b, 4);
    std::vector<RefreshRequest> urgent;
    Tick first_rank0 = 0;
    std::vector<Tick> rank1_issues;
    for (Tick t = 0; t < 9 * timing_.tRefiAb; ++t) {
        view_->setLastActivity(0, t);  // Demand keeps arriving.
        sched.tick(t);
        urgent.clear();
        sched.urgent(t, urgent);
        for (const RefreshRequest &req : urgent) {
            Command cmd;
            cmd.type = CommandType::kRefAb;
            cmd.rank = req.rank;
            if (view_->channel().canIssue(cmd, t)) {
                view_->channel().issue(cmd, t);
                sched.onIssued(req, t);
                if (req.rank == 0 && first_rank0 == 0)
                    first_rank0 = t;
                if (req.rank == 1)
                    rank1_issues.push_back(t);
                break;
            }
        }
    }
    // The busy rank's refreshes were postponed well past the first
    // nominal instant; the idle rank refreshed promptly.
    ASSERT_GT(first_rank0, 0u);
    EXPECT_GT(first_rank0, 2 * timing_.tRefiAb);
    ASSERT_FALSE(rank1_issues.empty());
    EXPECT_LT(rank1_issues.front(), 2 * timing_.tRefiAb);
    EXPECT_GT(sched.stats().postponed, 0u);
}

TEST_F(PolicyTest, ElasticForcesAtJedecLimit)
{
    ElasticScheduler sched(&cfg_, &timing_, view_.get());
    for (BankId b = 0; b < 8; ++b) {
        view_->setReads(0, b, 4);
        view_->setReads(1, b, 4);
    }
    std::vector<RefreshRequest> urgent;
    bool forced_seen = false;
    for (Tick t = 0; t < 12 * timing_.tRefiAb; ++t) {
        view_->setLastActivity(0, t);
        view_->setLastActivity(1, t);
        sched.tick(t);
        urgent.clear();
        sched.urgent(t, urgent);
        for (const RefreshRequest &req : urgent) {
            Command cmd;
            cmd.type = CommandType::kRefAb;
            cmd.rank = req.rank;
            if (view_->channel().canIssue(cmd, t)) {
                view_->channel().issue(cmd, t);
                sched.onIssued(req, t);
                forced_seen = true;
                break;
            }
        }
        // The ledger may never exceed the postpone window.
        EXPECT_LE(sched.ledger().owed(0), 8);
        EXPECT_LE(sched.ledger().owed(1), 8);
    }
    EXPECT_TRUE(forced_seen);
    EXPECT_GT(sched.stats().forced, 0u);
}

TEST_F(PolicyTest, ElasticIdleThresholdShrinksWithDebt)
{
    ElasticScheduler sched(&cfg_, &timing_, view_.get());
    EXPECT_GT(sched.idleThreshold(0), sched.idleThreshold(4));
    EXPECT_GT(sched.idleThreshold(4), sched.idleThreshold(7));
    EXPECT_EQ(sched.idleThreshold(8), 0u);
}

TEST_F(PolicyTest, AdaptiveUsesFastModeInWriteback)
{
    AdaptiveScheduler sched(&cfg_, &timing_, view_.get());
    view_->setWriteback(true);
    sched.tick(0);
    EXPECT_TRUE(sched.inFastMode());
    view_->setWriteback(false);
    sched.tick(1);
    EXPECT_FALSE(sched.inFastMode());
}

TEST_F(PolicyTest, AdaptiveIssues4xCommandsInWriteback)
{
    AdaptiveScheduler sched(&cfg_, &timing_, view_.get());
    view_->setWriteback(true);
    std::vector<RefreshRequest> urgent;
    bool saw_fast = false;
    // The busy-time budget must bank several slots before a 4x split is
    // affordable, so give the policy a long writeback-heavy stretch.
    for (Tick t = 0; t < 16 * timing_.tRefiAb; ++t) {
        sched.tick(t);
        urgent.clear();
        sched.urgent(t, urgent);
        for (const RefreshRequest &req : urgent) {
            Command cmd;
            cmd.type = CommandType::kRefAb;
            cmd.rank = req.rank;
            cmd.tRfcOverride = req.tRfcOverride;
            if (view_->channel().canIssue(cmd, t)) {
                if (req.tRfcOverride > 0) {
                    saw_fast = true;
                    EXPECT_EQ(req.tRfcOverride, sched.tRfc4x());
                    EXPECT_LT(req.tRfcOverride, timing_.tRfcAb);
                }
                view_->channel().issue(cmd, t);
                sched.onIssued(req, t);
                break;
            }
        }
    }
    EXPECT_TRUE(saw_fast);
}

TEST_F(PolicyTest, AdaptiveCoversObligationsInMixedMode)
{
    AdaptiveScheduler sched(&cfg_, &timing_, view_.get());
    std::vector<RefreshRequest> urgent;
    std::uint64_t covered_quarters = 0;
    const Tick horizon = Tick(0) + 8 * timing_.tRefiAb;
    for (Tick t = 0; t < horizon; ++t) {
        view_->setWriteback(
            (t / static_cast<Tick>(timing_.tRefiAb.count())) % 2 == 0);
        sched.tick(t);
        urgent.clear();
        sched.urgent(t, urgent);
        for (const RefreshRequest &req : urgent) {
            Command cmd;
            cmd.type = CommandType::kRefAb;
            cmd.rank = req.rank;
            cmd.tRfcOverride = req.tRfcOverride;
            if (view_->channel().canIssue(cmd, t)) {
                view_->channel().issue(cmd, t);
                sched.onIssued(req, t);
                if (req.rank == 0)
                    covered_quarters += req.ledgerParts ? req.ledgerParts
                                                        : 4;
                break;
            }
        }
    }
    // Rank 0 accrued ~32 quarters over 8 intervals; coverage must keep
    // pace within the postpone window.
    EXPECT_GE(covered_quarters, 32u - 8u);
}
