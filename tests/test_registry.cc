/**
 * @file
 * Tests for the string-keyed refresh-policy registry: every paper
 * mechanism round-trips by name (and alias), unknown names fail with a
 * helpful error, the legacy enum bridge maps both ways, and -- the
 * acceptance bar for the open API -- a custom policy registered at
 * runtime drives a full System with no factory/enum edits.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mock_view.hh"
#include "refresh/darp.hh"
#include "refresh/elastic.hh"
#include "refresh/registry.hh"
#include "sim/system.hh"

using namespace dsarp;

namespace {

/** Expected config bundle per canonical mechanism name. */
struct Expected
{
    const char *name;
    RefreshMode mode;
    bool sarp;
};

const std::vector<Expected> &
paperMechanisms()
{
    static const std::vector<Expected> table = {
        {"NoREF", RefreshMode::kNoRefresh, false},
        {"REFab", RefreshMode::kAllBank, false},
        {"REFpb", RefreshMode::kPerBank, false},
        {"Elastic", RefreshMode::kElastic, false},
        {"DARP", RefreshMode::kDarp, false},
        {"SARPab", RefreshMode::kAllBank, true},
        {"SARPpb", RefreshMode::kPerBank, true},
        {"DSARP", RefreshMode::kDarp, true},
        {"FGR2x", RefreshMode::kFgr2x, false},
        {"FGR4x", RefreshMode::kFgr4x, false},
        {"AR", RefreshMode::kAdaptive, false},
    };
    return table;
}

} // namespace

TEST(Registry, AllPaperMechanismsRegistered)
{
    const auto &registry = RefreshPolicyRegistry::instance();
    for (const Expected &mech : paperMechanisms()) {
        const auto *entry = registry.find(mech.name);
        ASSERT_NE(entry, nullptr) << mech.name;
        EXPECT_EQ(entry->name, mech.name);
        EXPECT_FALSE(entry->summary.empty()) << mech.name;
    }
}

TEST(Registry, NamesAreSortedAndCanonical)
{
    const auto names = RefreshPolicyRegistry::instance().names();
    EXPECT_GE(names.size(), 11u);
    for (std::size_t i = 1; i < names.size(); ++i)
        EXPECT_LT(names[i - 1], names[i]);
    // Aliases must not show up as separate mechanisms.
    for (const std::string &name : names)
        EXPECT_NE(name, "all_bank");
}

TEST(Registry, LookupIsCaseInsensitiveAndAliased)
{
    const auto &registry = RefreshPolicyRegistry::instance();
    EXPECT_EQ(registry.at("dsarp").name, "DSARP");
    EXPECT_EQ(registry.at("REFAB").name, "REFab");
    EXPECT_EQ(registry.at("all_bank").name, "REFab");
    EXPECT_EQ(registry.at("per_bank").name, "REFpb");
    EXPECT_EQ(registry.at("sarp_ab").name, "SARPab");
    EXPECT_EQ(registry.at("sarp_pb").name, "SARPpb");
    EXPECT_EQ(registry.at("none").name, "NoREF");
    EXPECT_EQ(registry.at("adaptive").name, "AR");
    EXPECT_FALSE(registry.has("bogus"));
    EXPECT_EQ(registry.find("bogus"), nullptr);
}

TEST(Registry, ResolveAppliesConfigBundle)
{
    for (const Expected &mech : paperMechanisms()) {
        MemConfig cfg;
        cfg.policy = mech.name;
        // Adversarial initial state: the bundle must win.
        cfg.refresh = RefreshMode::kElastic;
        cfg.sarp = !mech.sarp;
        RefreshPolicyRegistry::instance().resolve(cfg);
        EXPECT_EQ(cfg.policy, mech.name);
        EXPECT_EQ(cfg.refresh, mech.mode) << mech.name;
        EXPECT_EQ(cfg.sarp, mech.sarp) << mech.name;
    }
}

TEST(Registry, ResolveLegacyEnumPairPreservesConfig)
{
    // The pre-registry selection style: enum + sarp flag, no name.
    // Unnamed combinations (e.g. Elastic+SARP) keep their
    // hand-assembled semantics and stay enum-selected, so resolving
    // again (e.g. a config copied out of a built System) is a no-op.
    MemConfig cfg;
    cfg.refresh = RefreshMode::kElastic;
    cfg.sarp = true;
    const auto &entry = RefreshPolicyRegistry::instance().resolve(cfg);
    EXPECT_EQ(entry.name, "Elastic");
    EXPECT_TRUE(cfg.policy.empty());  // "Elastic" would drop the SARP.
    EXPECT_EQ(cfg.refresh, RefreshMode::kElastic);
    EXPECT_TRUE(cfg.sarp);  // Not clobbered by the Elastic bundle.

    RefreshPolicyRegistry::instance().resolve(cfg);  // Idempotent.
    EXPECT_EQ(cfg.refresh, RefreshMode::kElastic);
    EXPECT_TRUE(cfg.sarp);

    // A pair the registry does name canonicalises -- and re-resolving
    // the result reproduces the same config.
    MemConfig named;
    named.refresh = RefreshMode::kDarp;
    named.sarp = true;
    RefreshPolicyRegistry::instance().resolve(named);
    EXPECT_EQ(named.policy, "DSARP");
    RefreshPolicyRegistry::instance().resolve(named);
    EXPECT_EQ(named.refresh, RefreshMode::kDarp);
    EXPECT_TRUE(named.sarp);
}

TEST(Registry, LegacyPolicyNameBridge)
{
    EXPECT_EQ(legacyPolicyName(RefreshMode::kAllBank, false), "REFab");
    EXPECT_EQ(legacyPolicyName(RefreshMode::kAllBank, true), "SARPab");
    EXPECT_EQ(legacyPolicyName(RefreshMode::kPerBank, true), "SARPpb");
    EXPECT_EQ(legacyPolicyName(RefreshMode::kDarp, true), "DSARP");
    EXPECT_EQ(legacyPolicyName(RefreshMode::kDarp, false), "DARP");
    EXPECT_EQ(legacyPolicyName(RefreshMode::kNoRefresh, false), "NoREF");
    EXPECT_EQ(legacyPolicyName(RefreshMode::kFgr4x, false), "FGR4x");
}

TEST(Registry, MakeDispatchesByNameAndByLegacyEnum)
{
    MemConfig cfg;
    cfg.finalize();
    const TimingParams timing = TimingParams::ddr3_1333(cfg);
    MockView view(&cfg, &timing);

    // By name.
    MemConfig named = cfg;
    named.policy = "DARP";
    auto by_name =
        RefreshPolicyRegistry::instance().make(named, timing, view);
    EXPECT_NE(dynamic_cast<DarpScheduler *>(by_name.get()), nullptr);

    // By deprecated enum pair (policy left empty).
    MemConfig legacy = cfg;
    legacy.refresh = RefreshMode::kElastic;
    auto by_enum =
        RefreshPolicyRegistry::instance().make(legacy, timing, view);
    EXPECT_NE(dynamic_cast<ElasticScheduler *>(by_enum.get()), nullptr);
}

TEST(RegistryDeath, UnknownNameListsKnownMechanisms)
{
    MemConfig cfg;
    cfg.policy = "quantum-refresh";  // Not a registered mechanism.
    EXPECT_EXIT(RefreshPolicyRegistry::instance().resolve(cfg),
                testing::ExitedWithCode(1),
                "unknown refresh policy 'quantum-refresh'.*DSARP");
}

// ---------------------------------------------------------------------
// The open-API acceptance test: a policy defined and registered at
// runtime, outside src/refresh/, drives a full System by name.
// ---------------------------------------------------------------------

namespace {

/** A trivial custom policy: refreshes every bank of rank 0 on a fixed
 *  short period, tracking construction and issue counts. */
class TestPulseScheduler : public RefreshScheduler
{
  public:
    static int constructed;
    static int issuedCount;

    TestPulseScheduler(const MemConfig *cfg, const TimingParams *timing,
                       ControllerView *view)
        : RefreshScheduler(cfg, timing, view)
    {
        ++constructed;
    }

    void tick(Tick now) override
    {
        due_ = now % static_cast<Tick>((timing_->tRefiAb / 2).count()) == 0;
    }

    void
    urgent(Tick, std::vector<RefreshRequest> &out) override
    {
        if (!due_)
            return;
        RefreshRequest req;
        req.allBank = true;
        req.rank = 0;
        out.push_back(req);
    }

    bool opportunistic(Tick, RefreshRequest &) override { return false; }

    void
    onIssued(const RefreshRequest &, Tick) override
    {
        due_ = false;
        ++issuedCount;
        ++stats_.issued;
    }

  private:
    bool due_ = false;
};

int TestPulseScheduler::constructed = 0;
int TestPulseScheduler::issuedCount = 0;

const bool testPolicyRegistered [[maybe_unused]] =
    RefreshPolicyRegistry::instance().add(
        {"TestPulse", "test-local custom policy (registered at runtime)",
         [](MemConfig &m) {
             // Reuse the all-bank timing profile; dispatch is by name.
             m.refresh = RefreshMode::kAllBank;
             m.sarp = false;
         },
         [](const MemConfig &c, const TimingParams &t, ControllerView &v) {
             return std::make_unique<TestPulseScheduler>(&c, &t, &v);
         }},
        {"test_pulse"});

} // namespace

TEST(Registry, RuntimeRegisteredPolicyDrivesASystem)
{
    ASSERT_TRUE(RefreshPolicyRegistry::instance().has("TestPulse"));

    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.mem.policy = "test_pulse";  // Alias, mixed case welcome.
    TestPulseScheduler::constructed = 0;
    TestPulseScheduler::issuedCount = 0;

    System sys(cfg, std::vector<int>{0, 1});
    EXPECT_EQ(sys.config().mem.policy, "TestPulse");  // Canonicalised.
    EXPECT_EQ(sys.config().mem.refresh, RefreshMode::kAllBank);
    EXPECT_EQ(TestPulseScheduler::constructed,
              sys.config().mem.org.channels);

    sys.run(20000);
    EXPECT_GT(TestPulseScheduler::issuedCount, 0);

    std::uint64_t reads = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch)
        reads += sys.controller(ch).stats().readsCompleted;
    EXPECT_GT(reads, 0u);
}
