/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using namespace dsarp;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5; loose 3-sigma band.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}
