/**
 * @file
 * Unit tests for the experiment runner: mechanism presets, environment
 * knobs, alone-IPC caching, and metric plumbing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/log.hh"
#include "sim/runner.hh"

using namespace dsarp;

TEST(RunnerConfig, MechanismNames)
{
    EXPECT_EQ(mechRefAb(Density::k8Gb).mechanismName(), "REFab");
    EXPECT_EQ(mechRefPb(Density::k8Gb).mechanismName(), "REFpb");
    EXPECT_EQ(mechElastic(Density::k8Gb).mechanismName(), "Elastic");
    EXPECT_EQ(mechDarp(Density::k8Gb).mechanismName(), "DARP");
    EXPECT_EQ(mechSarpAb(Density::k8Gb).mechanismName(), "SARPab");
    EXPECT_EQ(mechSarpPb(Density::k8Gb).mechanismName(), "SARPpb");
    EXPECT_EQ(mechDsarp(Density::k8Gb).mechanismName(), "DSARP");
    EXPECT_EQ(mechNoRef(Density::k8Gb).mechanismName(), "NoREF");
}

TEST(RunnerConfig, PresetsSetSarpFlags)
{
    EXPECT_FALSE(mechDarp(Density::k8Gb).sarp);
    EXPECT_TRUE(mechSarpPb(Density::k8Gb).sarp);
    EXPECT_TRUE(mechDsarp(Density::k8Gb).sarp);
    EXPECT_EQ(mechDsarp(Density::k8Gb).refresh, RefreshMode::kDarp);
    EXPECT_EQ(mechSarpAb(Density::k8Gb).refresh, RefreshMode::kAllBank);
}

TEST(RunnerConfig, MakeSystemConfigCopiesKnobs)
{
    RunConfig cfg = mechDsarp(Density::k16Gb);
    cfg.subarraysPerBank = 32;
    cfg.tFawOverride = 10;
    cfg.numCores = 4;
    cfg.retentionMs = 64;
    const SystemConfig sys = Runner::makeSystemConfig(cfg);
    EXPECT_EQ(sys.mem.density, Density::k16Gb);
    EXPECT_EQ(sys.mem.org.subarraysPerBank, 32);
    EXPECT_EQ(sys.mem.tFawOverride, 10);
    EXPECT_EQ(sys.numCores, 4);
    EXPECT_EQ(sys.mem.retentionMs, 64);
    EXPECT_TRUE(sys.mem.sarp);
}

TEST(RunnerConfig, OptionalKnobsDefaultToMemConfig)
{
    const RunConfig cfg = mechRefPb(Density::k8Gb);
    const SystemConfig sys = Runner::makeSystemConfig(cfg);
    const MemConfig defaults;
    EXPECT_EQ(sys.mem.writeHighWatermark, defaults.writeHighWatermark);
    EXPECT_EQ(sys.mem.writeLowWatermark, defaults.writeLowWatermark);
    EXPECT_EQ(sys.mem.refabStaggerDivisor, defaults.refabStaggerDivisor);
    EXPECT_EQ(sys.mem.maxOverlappedRefPb, defaults.maxOverlappedRefPb);
}

TEST(RunnerConfig, OptionalKnobsOverrideWhenSet)
{
    RunConfig cfg = mechRefPb(Density::k8Gb);
    cfg.writeHighWatermark = 48;
    cfg.writeLowWatermark = 16;
    cfg.refabStaggerDivisor = 2;
    cfg.maxOverlappedRefPb = 4;
    const SystemConfig sys = Runner::makeSystemConfig(cfg);
    EXPECT_EQ(sys.mem.writeHighWatermark, 48);
    EXPECT_EQ(sys.mem.writeLowWatermark, 16);
    EXPECT_EQ(sys.mem.refabStaggerDivisor, 2);
    EXPECT_EQ(sys.mem.maxOverlappedRefPb, 4);
}

TEST(RunnerConfig, EnvKnob)
{
    unsetenv("DSARP_TEST_KNOB");
    EXPECT_EQ(envKnob("DSARP_TEST_KNOB", 7), 7u);
    setenv("DSARP_TEST_KNOB", "123", 1);
    EXPECT_EQ(envKnob("DSARP_TEST_KNOB", 7), 123u);
    unsetenv("DSARP_TEST_KNOB");
}

TEST(RunnerConfig, EnvKnobRejectsMalformedValues)
{
    // A set-but-broken knob is a named fatal error, not a silent
    // fallback: "100x" used to run a 100-cycle benchmark without a
    // word. Trailing junk, out-of-range, negative, and non-numeric
    // values must all be rejected.
    struct Catcher
    {
        static void handler(const char *, int, const char *) { throw 1; }
    };
    const FatalHandler prev = setFatalHandler(&Catcher::handler);
    for (const char *bad :
         {"garbage", "100x", "-5", "0", "99999999999999999999"}) {
        setenv("DSARP_TEST_KNOB", bad, 1);
        EXPECT_THROW(envKnob("DSARP_TEST_KNOB", 7), int)
            << "value '" << bad << "' should be fatal";
    }
    unsetenv("DSARP_TEST_KNOB");
    setFatalHandler(prev);
}

namespace {

/** Runner with short windows for fast tests. */
class ShortRunner : public ::testing::Test
{
  protected:
    ShortRunner()
    {
        setenv("DSARP_BENCH_CYCLES", "40000", 1);
        setenv("DSARP_BENCH_WARMUP", "8000", 1);
        runner_ = std::make_unique<Runner>();
    }

    ~ShortRunner() override
    {
        unsetenv("DSARP_BENCH_CYCLES");
        unsetenv("DSARP_BENCH_WARMUP");
    }

    std::unique_ptr<Runner> runner_;
};

} // namespace

TEST_F(ShortRunner, EnvControlsWindows)
{
    EXPECT_EQ(runner_->measureTicks(), 40000u);
    EXPECT_EQ(runner_->warmupTicks(), 8000u);
}

TEST_F(ShortRunner, AloneIpcCachedAndPositive)
{
    const RunConfig cfg = mechRefAb(Density::k8Gb);
    const double a = runner_->aloneIpc(10, cfg);
    EXPECT_GT(a, 0.0);
    EXPECT_LE(a, 3.0);
    // Second call must be a cache hit with the identical value.
    EXPECT_DOUBLE_EQ(runner_->aloneIpc(10, cfg), a);
    // A different density is a different cache entry (footprints move).
    const double b = runner_->aloneIpc(10, mechRefAb(Density::k32Gb));
    EXPECT_GT(b, 0.0);
}

TEST_F(ShortRunner, RunProducesConsistentMetrics)
{
    const auto workloads = makeIntensiveWorkloads(1, 8, 11);
    const RunResult res =
        runner_->run(mechRefPb(Density::k8Gb), workloads[0]);
    ASSERT_EQ(res.ipc.size(), 8u);
    ASSERT_EQ(res.aloneIpc.size(), 8u);
    EXPECT_GT(res.ws, 0.0);
    EXPECT_LE(res.ws, 8.0 + 1e-9);
    EXPECT_GT(res.hs, 0.0);
    EXPECT_GE(res.maxSlowdown, 1.0 - 1e-6);
    EXPECT_GT(res.energyPerAccessNj, 0.0);
    EXPECT_GT(res.readsCompleted, 0u);
    EXPECT_GT(res.refPb, 0u);
    EXPECT_EQ(res.refAb, 0u);
}

TEST_F(ShortRunner, DeterministicAcrossRuns)
{
    const auto workloads = makeIntensiveWorkloads(1, 8, 13);
    const RunResult a = runner_->run(mechDarp(Density::k8Gb), workloads[0]);
    const RunResult b = runner_->run(mechDarp(Density::k8Gb), workloads[0]);
    EXPECT_DOUBLE_EQ(a.ws, b.ws);
    EXPECT_EQ(a.readsCompleted, b.readsCompleted);
}
