/**
 * @file
 * DDR5 same-bank refresh (REFsb) tests: registry entries and config
 * bundles, the derived slice timing, multi-bank refresh occupancy in
 * the rank/bank/channel state machines, the scheduler's
 * postpone/pull-in/pairing behaviour on a mock view, checker legality
 * rules for the REFsb command, and deterministic checker-verified
 * end-to-end runs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dram/spec.hh"
#include "mock_view.hh"
#include "refresh/registry.hh"
#include "refresh/same_bank.hh"
#include "sim/checker.hh"
#include "sim/system.hh"
#include "workload/benchmark.hh"

using namespace dsarp;

namespace {

MemConfig
ddr5Config(int banks_per_rank = 8, int group_size = 0,
           bool hira = false)
{
    MemConfig cfg;
    cfg.dramSpec = "DDR5-4800";
    cfg.org.banksPerRank = banks_per_rank;
    cfg.sameBankGroupSize = group_size;
    cfg.refresh = RefreshMode::kSameBank;
    cfg.hira = hira;
    cfg.finalize();
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Registry and config bundles.
// ---------------------------------------------------------------------

TEST(SameBankRegistry, EntriesAndAliases)
{
    const auto &registry = RefreshPolicyRegistry::instance();
    EXPECT_EQ(registry.at("REFsb").name, "REFsb");
    EXPECT_EQ(registry.at("same_bank").name, "REFsb");
    EXPECT_EQ(registry.at("refsb").name, "REFsb");
    EXPECT_EQ(registry.at("HiRAsb").name, "HiRAsb");
    EXPECT_EQ(registry.at("refsb+hira").name, "HiRAsb");
}

TEST(SameBankRegistry, ConfigBundles)
{
    MemConfig cfg;
    cfg.dramSpec = "DDR5-4800";
    cfg.policy = "REFsb";
    RefreshPolicyRegistry::instance().resolve(cfg);
    EXPECT_EQ(cfg.refresh, RefreshMode::kSameBank);
    EXPECT_FALSE(cfg.sarp);
    EXPECT_FALSE(cfg.hira);

    cfg.policy = "HiRAsb";
    RefreshPolicyRegistry::instance().resolve(cfg);
    EXPECT_EQ(cfg.refresh, RefreshMode::kSameBank);
    EXPECT_TRUE(cfg.hira);
}

// ---------------------------------------------------------------------
// Derived slice timing.
// ---------------------------------------------------------------------

TEST(SameBankTiming, CanonicalDdr5Geometry)
{
    // 32 banks/rank = 8 bank groups of 4: a slice every tREFIab / 8.
    MemConfig cfg = ddr5Config(32);
    cfg.density = Density::k8Gb;
    const TimingParams t = TimingParams::forConfig(cfg);
    EXPECT_EQ(t.banksPerGroup, 4);
    EXPECT_EQ(t.tRefiSb, t.tRefiAb / 8);
    EXPECT_EQ(t.tRfcSb,
              TimingParams::nsToCycles(Nanoseconds(115.0), t.tCkNs));
    EXPECT_GT(t.tRefiSb, t.tRfcSb);
    // A slice refreshes 4 banks in less than 4 REFpb commands' time.
    EXPECT_LT(t.tRfcSb, 4 * t.tRfcPb);
}

TEST(SameBankTiming, GroupSizeOverrideReslices)
{
    MemConfig cfg = ddr5Config(32, 2);
    const TimingParams t = TimingParams::forConfig(cfg);
    EXPECT_EQ(t.banksPerGroup, 2);
    EXPECT_EQ(t.tRefiSb, t.tRefiAb / 16);
}

TEST(SameBankTiming, ZeroedOnSpecsWithoutSupport)
{
    MemConfig cfg;
    cfg.finalize();  // DDR3-1333 default.
    const TimingParams t = TimingParams::forConfig(cfg);
    EXPECT_EQ(t.banksPerGroup, 0);
    EXPECT_EQ(t.tRefiSb, 0u);
    EXPECT_EQ(t.tRfcSb, 0);
}

TEST(SameBankTiming, FgrScalesSliceLatency)
{
    MemConfig base = ddr5Config();
    base.refresh = RefreshMode::kAllBank;
    MemConfig fgr = base;
    fgr.refresh = RefreshMode::kFgr2x;
    const TimingParams t1 = TimingParams::forConfig(base);
    const TimingParams t2 = TimingParams::forConfig(fgr);
    EXPECT_LT(t2.tRfcSb, t1.tRfcSb);
    EXPECT_EQ(t2.tRefiSb, t1.tRefiSb / 2);
}

TEST(SameBankTiming, UnsupportedSpecFailsValidationWithNamedKey)
{
    MemConfig cfg;
    cfg.refresh = RefreshMode::kSameBank;  // On default DDR3-1333.
    const std::string errors = cfg.validate();
    EXPECT_NE(errors.find("bank-group"), std::string::npos);

    MemConfig resliced;
    resliced.sameBankGroupSize = 3;  // Doesn't divide 8 banks.
    resliced.dramSpec = "DDR5-4800";
    EXPECT_NE(resliced.validate().find("refresh.samebank.groupSize"),
              std::string::npos);

    // Slices may only be narrowed: a slice wider than the device's
    // bank group would beat the device's own tRFCab, which is
    // physically impossible.
    MemConfig widened;
    widened.sameBankGroupSize = 8;
    widened.dramSpec = "DDR5-4800";
    EXPECT_NE(widened.validate().find("exceeds"), std::string::npos);
}

// ---------------------------------------------------------------------
// Rank/bank/channel multi-bank refresh occupancy.
// ---------------------------------------------------------------------

class SameBankDram : public ::testing::Test
{
  protected:
    SameBankDram()
        : cfg_(ddr5Config()), timing_(TimingParams::forConfig(cfg_)),
          channel_(&cfg_, &timing_)
    {
    }

    Command
    refSb(int group)
    {
        Command cmd;
        cmd.type = CommandType::kRefSb;
        cmd.rank = 0;
        cmd.bank = group;
        return cmd;
    }

    MemConfig cfg_;       ///< Default org: 8 banks -> 2 groups of 4.
    TimingParams timing_;
    Channel channel_;
};

TEST_F(SameBankDram, SliceRefreshesAllGroupBanksAndOnlyThem)
{
    ASSERT_TRUE(channel_.canIssue(refSb(0), 10));
    channel_.issue(refSb(0), 10);
    const Rank &rank = channel_.rank(0);
    for (BankId b = 0; b < 4; ++b)
        EXPECT_TRUE(rank.bank(b).refreshing(11)) << "bank " << b;
    for (BankId b = 4; b < 8; ++b)
        EXPECT_FALSE(rank.bank(b).refreshing(11)) << "bank " << b;
    EXPECT_TRUE(rank.refSbInFlight(11));
    EXPECT_EQ(channel_.stats().refSb, 1u);
    EXPECT_EQ(channel_.stats().refSbCycles,
              static_cast<std::uint64_t>(timing_.tRfcSb.count()));
}

TEST_F(SameBankDram, RefreshesSerializeWithinTheRank)
{
    channel_.issue(refSb(0), 10);
    const Tick during = Tick(10) + timing_.tRfcSb / 2;
    // No second slice, REFpb, or REFab while the slice is in flight.
    EXPECT_FALSE(channel_.canIssue(refSb(1), during));
    Command pb;
    pb.type = CommandType::kRefPb;
    pb.bank = 6;  // A bank outside the refreshing slice.
    EXPECT_FALSE(channel_.canIssue(pb, during));
    Command ab;
    ab.type = CommandType::kRefAb;
    EXPECT_FALSE(channel_.canIssue(ab, during));

    const Tick after = Tick(10) + timing_.tRfcSb;
    EXPECT_TRUE(channel_.canIssue(refSb(1), after));
}

TEST_F(SameBankDram, OtherGroupsKeepServingDuringSlice)
{
    channel_.issue(refSb(0), 10);
    const Tick during = Tick(10) + timing_.tRfcSb / 2;
    Command act;
    act.type = CommandType::kAct;
    act.bank = 5;  // Other bank group: stays available.
    act.row = 7;
    EXPECT_TRUE(channel_.canIssue(act, during));
    act.bank = 2;  // Refreshing slice: blocked.
    EXPECT_FALSE(channel_.canIssue(act, during));
}

TEST_F(SameBankDram, SliceWaitsForOpenRowsAndBounds)
{
    Command act;
    act.type = CommandType::kAct;
    act.bank = 1;
    act.row = 3;
    channel_.issue(act, 0);
    const Tick later = Tick(0) + (timing_.tRcd + timing_.tRas);
    EXPECT_FALSE(channel_.canIssue(refSb(0), later))
        << "open row in the slice must block it";
    EXPECT_TRUE(channel_.canIssue(refSb(1), later));
    EXPECT_FALSE(channel_.canIssue(refSb(2), later)) << "out of range";
}

// ---------------------------------------------------------------------
// Scheduler behaviour on a mock view.
// ---------------------------------------------------------------------

TEST(SameBankScheduling, DueSliceIsBlockingAndRetiresWholeGroup)
{
    MemConfig cfg = ddr5Config();
    const TimingParams timing = TimingParams::forConfig(cfg);
    MockView view(&cfg, &timing);
    SameBankScheduler sched(&cfg, &timing, &view);
    EXPECT_EQ(sched.numGroups(), 2);

    // Advance past the first accrual of rank 0 / group 0.
    const Tick t0 = Tick(1) + timing.tRefiAb;
    sched.tick(t0);
    std::vector<RefreshRequest> urgent;
    sched.urgent(t0, urgent);
    ASSERT_FALSE(urgent.empty());
    EXPECT_TRUE(urgent[0].sameBank);
    EXPECT_TRUE(urgent[0].blocking);
    EXPECT_EQ(urgent[0].bank, 0);

    sched.onIssued(urgent[0], t0);
    EXPECT_EQ(sched.ledger().owed(0, 0), 0)
        << "one command retires the whole slice's obligation";
    EXPECT_EQ(sched.stats().issued, 1u);
}

TEST(SameBankScheduling, PendingDemandsPostponeUntilHeadroomRunsOut)
{
    MemConfig cfg = ddr5Config();
    const TimingParams timing = TimingParams::forConfig(cfg);
    MockView view(&cfg, &timing);
    SameBankScheduler sched(&cfg, &timing, &view);
    view.setReads(0, 2, 4);  // Demand on one bank of group 0.

    Tick t = Tick(1) + timing.tRefiAb;
    sched.tick(t);
    std::vector<RefreshRequest> urgent;
    sched.urgent(t, urgent);
    for (const RefreshRequest &req : urgent)
        EXPECT_NE(req.bank, 0) << "busy slice must be postponed";
    EXPECT_GT(sched.stats().postponed, 0u);

    // Two slots short of the postpone limit the slice goes due even
    // with demands pending (drain headroom before the erratum bound).
    for (int slots = 2; slots <= 7; ++slots) {
        t = Tick(1) + (slots + 1) * timing.tRefiAb;
        sched.tick(t);
    }
    urgent.clear();
    sched.urgent(t, urgent);
    bool group0_due = false;
    for (const RefreshRequest &req : urgent)
        group0_due |= req.bank == 0;
    EXPECT_TRUE(group0_due);
}

TEST(SameBankScheduling, IdlePullInHonoursKnobAndWindow)
{
    MemConfig cfg = ddr5Config();
    const TimingParams timing = TimingParams::forConfig(cfg);
    {
        MockView view(&cfg, &timing);
        SameBankScheduler sched(&cfg, &timing, &view);
        RefreshRequest opp;
        int pulled = 0;
        Tick t = 10;
        while (sched.opportunistic(t, opp)) {
            EXPECT_TRUE(opp.sameBank);
            view.channel().issue(
                Command{CommandType::kRefSb, opp.rank, opp.bank}, t);
            sched.onIssued(opp, t);
            ++pulled;
            t += timing.tRfcSb + Cycles(1);
            ASSERT_LT(pulled, 100);
        }
        // 2 ranks x 2 groups x 8-slot JEDEC pull-in window.
        EXPECT_EQ(pulled, 2 * 2 * sched.ledger().maxSlack());
    }
    {
        MemConfig noPull = cfg;
        noPull.sameBankPullIn = false;
        MockView view(&noPull, &timing);
        SameBankScheduler sched(&noPull, &timing, &view);
        RefreshRequest opp;
        EXPECT_FALSE(sched.opportunistic(10, opp));
    }
}

TEST(SameBankScheduling, HiraPairingDoublesLaggingSlices)
{
    MemConfig cfg = ddr5Config(8, 0, /*hira=*/true);
    TimingParams timing = TimingParams::forConfig(cfg);
    timing.hiraRefCoverage = 1.0;  // Deterministic pairing draw.
    MockView view(&cfg, &timing);
    SameBankScheduler sched(&cfg, &timing, &view);

    // Three slots accrue with no refresh issued: the due slice must
    // offer to retire two of them in one command.
    const Tick t = Tick(1) + 3 * timing.tRefiAb + timing.tRefiSb;
    sched.tick(t);
    std::vector<RefreshRequest> urgent;
    sched.urgent(t, urgent);
    ASSERT_FALSE(urgent.empty());
    const RefreshRequest &req = urgent[0];
    EXPECT_EQ(req.rowsOverride, 2 * timing.rowsPerRefresh);
    EXPECT_EQ(req.ledgerParts, 2);

    const int owed_before = sched.ledger().owed(req.rank, req.bank);
    sched.onIssued(req, t);
    EXPECT_EQ(sched.ledger().owed(req.rank, req.bank), owed_before - 2);
    EXPECT_EQ(sched.pairedIssued(), 1u);
}

TEST(SameBankScheduling, NoPairingWithoutHira)
{
    MemConfig cfg = ddr5Config();
    const TimingParams timing = TimingParams::forConfig(cfg);
    MockView view(&cfg, &timing);
    SameBankScheduler sched(&cfg, &timing, &view);
    const Tick t = Tick(1) + 3 * timing.tRefiAb + timing.tRefiSb;
    sched.tick(t);
    std::vector<RefreshRequest> urgent;
    sched.urgent(t, urgent);
    ASSERT_FALSE(urgent.empty());
    EXPECT_EQ(urgent[0].ledgerParts, 0);
    EXPECT_EQ(urgent[0].rowsOverride, 0);
}

// ---------------------------------------------------------------------
// Checker legality rules.
// ---------------------------------------------------------------------

class SameBankChecker : public ::testing::Test
{
  protected:
    SameBankChecker()
        : cfg_(ddr5Config()), timing_(TimingParams::forConfig(cfg_))
    {
    }

    TimedCommand
    refSb(Tick t, int group)
    {
        Command cmd;
        cmd.type = CommandType::kRefSb;
        cmd.bank = group;
        return {t, cmd};
    }

    TimedCommand
    refPb(Tick t, BankId bank)
    {
        Command cmd;
        cmd.type = CommandType::kRefPb;
        cmd.bank = bank;
        return {t, cmd};
    }

    CheckerReport
    verify(const std::vector<TimedCommand> &log)
    {
        return verifyCommandLog(log, cfg_, timing_, 0);
    }

    MemConfig cfg_;
    TimingParams timing_;
};

TEST_F(SameBankChecker, AcceptsSerializedSlices)
{
    const CheckerReport report = verify({
        refSb(10, 0),
        refSb(Tick(10) + timing_.tRfcSb, 1),
    });
    EXPECT_TRUE(report.ok())
        << (report.violations.empty() ? "" : report.violations[0]);
    EXPECT_EQ(report.refreshesChecked, 8u)
        << "each slice checks its four banks";
}

TEST_F(SameBankChecker, FlagsOverlapWithSliceInFlight)
{
    EXPECT_FALSE(verify({refSb(10, 0), refSb(12, 1)}).ok());
    EXPECT_FALSE(verify({refSb(10, 0), refPb(12, 6)}).ok());
    EXPECT_FALSE(verify({refPb(10, 6), refSb(12, 0)}).ok());
}

TEST_F(SameBankChecker, FlagsGroupOutOfRange)
{
    const CheckerReport report = verify({refSb(10, 2)});
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations[0].find("out of range"),
              std::string::npos);
}

TEST_F(SameBankChecker, FlagsRefsbWithoutSpecSupport)
{
    MemConfig ddr3;
    ddr3.finalize();
    const TimingParams t3 = TimingParams::forConfig(ddr3);
    Command cmd;
    cmd.type = CommandType::kRefSb;
    const CheckerReport report =
        verifyCommandLog({{10, cmd}}, ddr3, t3, 0);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.violations[0].find("without same-bank"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Deterministic end-to-end runs (checker-verified).
// ---------------------------------------------------------------------

TEST(SameBankEndToEnd, RefsbRunsCleanOnCanonicalDdr5)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.mem.org.channels = 1;
    cfg.mem.org.banksPerRank = 32;
    cfg.mem.policy = "REFsb";
    cfg.mem.dramSpec = "DDR5-4800";
    cfg.seed = 3;
    cfg.enableChecker = true;
    System sys(cfg, {benchmarkIndex("mcf-like"),
                     benchmarkIndex("stream-like")});
    sys.run(Tick(0) + 8 * sys.timing().tRefiAb);

    const ChannelStats &cs = sys.controller(0).channel().stats();
    EXPECT_GT(cs.refSb, 0u);
    EXPECT_EQ(cs.refPb, 0u);
    EXPECT_EQ(cs.refAb, 0u);
    const CheckerReport report = verifyCommandLog(
        sys.commandLog(0), sys.config().mem, sys.timing(), sys.now());
    EXPECT_TRUE(report.ok())
        << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(SameBankEndToEnd, HirasbPairsSlices)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.mem.org.channels = 1;
    cfg.mem.policy = "HiRAsb";
    cfg.mem.dramSpec = "DDR5-4800";
    cfg.seed = 5;
    cfg.enableChecker = true;
    System sys(cfg, {benchmarkIndex("mcf-like"),
                     benchmarkIndex("milc-like")});
    sys.run(Tick(0) + 12 * sys.timing().tRefiAb);

    EXPECT_GT(sys.controller(0).channel().stats().refSb, 0u);
    const CheckerReport report = verifyCommandLog(
        sys.commandLog(0), sys.config().mem, sys.timing(), sys.now());
    EXPECT_TRUE(report.ok())
        << (report.violations.empty() ? "" : report.violations[0]);
}
