/**
 * @file
 * SARP behaviour tests (Section 4.3): a bank under refresh serves
 * accesses to idle subarrays, performance improves over the plain
 * policies, the benefit grows with subarray count, and the generated
 * command streams stay JEDEC-legal under the independent checker.
 */

#include <gtest/gtest.h>

#include "sim/checker.hh"
#include "sim/metrics.hh"
#include "sim/system.hh"
#include "workload/benchmark.hh"

using namespace dsarp;

namespace {

/** Small, fast system: 1 channel, 2 cores, intensive benchmarks. */
SystemConfig
smallConfig(RefreshMode mode, bool sarp, int subarrays = 8)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.mem.org.channels = 1;
    cfg.mem.density = Density::k32Gb;  // Longest refresh: biggest signal.
    cfg.mem.refresh = mode;
    cfg.mem.sarp = sarp;
    cfg.mem.org.subarraysPerBank = subarrays;
    cfg.seed = 7;
    return cfg;
}

std::vector<int>
intensivePair()
{
    return {benchmarkIndex("mcf-like"), benchmarkIndex("stream-like")};
}

/** Run and return aggregate reads completed over the window. */
std::uint64_t
readsServed(const SystemConfig &cfg, Tick ticks)
{
    System sys(cfg, intensivePair());
    sys.run(ticks / 5);
    sys.resetStats();
    sys.run(ticks);
    std::uint64_t reads = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch)
        reads += sys.controller(ch).stats().readsCompleted;
    return reads;
}

} // namespace

TEST(Sarp, ServesAccessesDuringPerBankRefresh)
{
    // With SARP the same workload completes more reads than without,
    // because banks keep serving idle subarrays while refreshing.
    const Tick window = 120000;
    const std::uint64_t base =
        readsServed(smallConfig(RefreshMode::kPerBank, false), window);
    const std::uint64_t with_sarp =
        readsServed(smallConfig(RefreshMode::kPerBank, true), window);
    EXPECT_GT(with_sarp, base);
}

TEST(Sarp, HelpsAllBankRefreshToo)
{
    const Tick window = 120000;
    const std::uint64_t base =
        readsServed(smallConfig(RefreshMode::kAllBank, false), window);
    const std::uint64_t with_sarp =
        readsServed(smallConfig(RefreshMode::kAllBank, true), window);
    EXPECT_GT(with_sarp, base);
}

TEST(Sarp, BenefitGrowsWithSubarrayCount)
{
    // Table 5: more subarrays -> lower conflict probability.
    const Tick window = 120000;
    const std::uint64_t s1 =
        readsServed(smallConfig(RefreshMode::kPerBank, true, 1), window);
    const std::uint64_t s8 =
        readsServed(smallConfig(RefreshMode::kPerBank, true, 8), window);
    const std::uint64_t s64 =
        readsServed(smallConfig(RefreshMode::kPerBank, true, 64), window);
    EXPECT_GE(s8, s1);
    EXPECT_GE(s64, s8);
}

TEST(Sarp, SingleSubarrayEquivalentToNoSarp)
{
    // With one subarray per bank every access conflicts with the
    // refresh, so SARP degenerates to the baseline (Table 5: 0%).
    const Tick window = 120000;
    const std::uint64_t base =
        readsServed(smallConfig(RefreshMode::kPerBank, false), window);
    const std::uint64_t s1 =
        readsServed(smallConfig(RefreshMode::kPerBank, true, 1), window);
    const double delta =
        std::abs(static_cast<double>(s1) - static_cast<double>(base)) /
        static_cast<double>(base);
    EXPECT_LT(delta, 0.03);
}

TEST(Sarp, CommandStreamLegalUnderChecker)
{
    SystemConfig cfg = smallConfig(RefreshMode::kPerBank, true);
    cfg.enableChecker = true;
    System sys(cfg, intensivePair());
    sys.run(60000);
    const CheckerReport report = verifyCommandLog(
        sys.commandLog(0), sys.config().mem, sys.timing(), sys.now());
    EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                     ? ""
                                     : report.violations.front());
    EXPECT_GT(report.refreshesChecked, 0u);
}

TEST(Sarp, DsarpCommandStreamLegalUnderChecker)
{
    SystemConfig cfg = smallConfig(RefreshMode::kDarp, true);
    cfg.enableChecker = true;
    System sys(cfg, intensivePair());
    sys.run(60000);
    const CheckerReport report = verifyCommandLog(
        sys.commandLog(0), sys.config().mem, sys.timing(), sys.now());
    EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                     ? ""
                                     : report.violations.front());
}
