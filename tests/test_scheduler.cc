/**
 * @file
 * Unit tests for FR-FCFS command selection: row-hit-first, oldest-first,
 * auto-precharge of the last row hit, refresh-blocked ACT suppression,
 * and the conflict-precharge phase.
 */

#include <gtest/gtest.h>

#include "controller/scheduler.hh"

using namespace dsarp;

namespace {

/** A duration read as an instant on a clock that started at tick 0. */
Tick
at(Cycles c)
{
    return Tick(0) + c;
}

class FrFcfsTest : public ::testing::Test
{
  protected:
    FrFcfsTest()
        : cfg_(), timing_(), queue_(64, 2, 8)
    {
        cfg_.finalize();
        timing_ = TimingParams::ddr3_1333(cfg_);
        channel_ = std::make_unique<Channel>(&cfg_, &timing_);
        noBlockBank_.assign(16, 0);
        noBlockRank_.assign(2, 0);
    }

    Request
    req(std::uint64_t id, RankId r, BankId b, RowId row, int column = 0,
        bool is_write = false)
    {
        Request rq;
        rq.id = id;
        rq.isWrite = is_write;
        rq.loc.rank = r;
        rq.loc.bank = b;
        rq.loc.row = row;
        rq.loc.column = column;
        return rq;
    }

    CmdChoice
    pick(Tick now)
    {
        return FrFcfs::pick(queue_, *channel_, now, noBlockBank_,
                            noBlockRank_, 8);
    }

    MemConfig cfg_;
    TimingParams timing_;
    std::unique_ptr<Channel> channel_;
    RequestQueue queue_;
    std::vector<std::uint8_t> noBlockBank_;
    std::vector<std::uint8_t> noBlockRank_;
};

} // namespace

TEST_F(FrFcfsTest, EmptyQueuePicksNothing)
{
    EXPECT_FALSE(pick(0).valid);
}

TEST_F(FrFcfsTest, ClosedBankGetsAct)
{
    queue_.push(req(1, 0, 0, 42));
    const CmdChoice c = pick(0);
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.cmd.type, CommandType::kAct);
    EXPECT_EQ(c.cmd.row, 42);
    EXPECT_EQ(c.queueIndex, -1);
}

TEST_F(FrFcfsTest, SingleRequestUsesAutoPrecharge)
{
    queue_.push(req(1, 0, 0, 42));
    channel_->issue(pick(0).cmd, 0);
    const CmdChoice c = pick(at(timing_.tRcd));
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.cmd.type, CommandType::kRdA);
    EXPECT_EQ(c.queueIndex, 0);
}

TEST_F(FrFcfsTest, RowHitBatchKeepsRowOpenUntilLast)
{
    queue_.push(req(1, 0, 0, 42, 0));
    queue_.push(req(2, 0, 0, 42, 1));
    channel_->issue(pick(0).cmd, 0);

    CmdChoice c = pick(at(timing_.tRcd));
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.cmd.type, CommandType::kRd) << "another hit is queued";
    channel_->issue(c.cmd, at(timing_.tRcd));
    queue_.pop(c.queueIndex);

    c = pick(at(timing_.tRcd + timing_.tCcd));
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.cmd.type, CommandType::kRdA) << "last hit closes the row";
}

TEST_F(FrFcfsTest, RowHitPrioritizedOverOlderAct)
{
    // Older request to bank 1 (needs ACT), younger hit on bank 0.
    queue_.push(req(1, 0, 0, 42));
    channel_->issue(pick(0).cmd, 0);  // ACT bank 0 row 42.
    queue_.pop(0);
    queue_.push(req(2, 0, 1, 7));   // Older in queue now.
    queue_.push(req(3, 0, 0, 42));  // Row hit.
    const CmdChoice c = pick(at(timing_.tRcd));
    ASSERT_TRUE(c.valid);
    EXPECT_TRUE(isColumnCmd(c.cmd.type));
    EXPECT_EQ(c.cmd.bank, 0);
}

TEST_F(FrFcfsTest, OldestActWins)
{
    queue_.push(req(1, 0, 3, 5));
    queue_.push(req(2, 0, 4, 6));
    const CmdChoice c = pick(0);
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.cmd.bank, 3);
}

TEST_F(FrFcfsTest, BlockedBankSkipsToNextRequest)
{
    queue_.push(req(1, 0, 3, 5));
    queue_.push(req(2, 0, 4, 6));
    noBlockBank_[3] = 1;  // rank 0, bank 3 blocked for refresh drain.
    const CmdChoice c = pick(0);
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.cmd.bank, 4);
}

TEST_F(FrFcfsTest, BlockedRankSkipsWholeRank)
{
    queue_.push(req(1, 0, 3, 5));
    queue_.push(req(2, 1, 4, 6));
    noBlockRank_[0] = 1;
    const CmdChoice c = pick(0);
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.cmd.rank, 1);
}

TEST_F(FrFcfsTest, BlockedBankRowHitForcesAutoPrecharge)
{
    queue_.push(req(1, 0, 0, 42, 0));
    queue_.push(req(2, 0, 0, 42, 1));
    channel_->issue(pick(0).cmd, 0);
    noBlockBank_[0] = 1;  // Refresh wants bank 0: close asap.
    const CmdChoice c = pick(at(timing_.tRcd));
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.cmd.type, CommandType::kRdA)
        << "hits still drain but must auto-precharge";
}

TEST_F(FrFcfsTest, ConflictPrechargeForStrandedRow)
{
    // Open row 42 on bank 0 with no queued request for it (as when reads
    // are stranded by writeback mode), then queue a request for row 7.
    queue_.push(req(1, 0, 0, 42));
    channel_->issue(pick(0).cmd, 0);
    queue_.pop(0);
    queue_.push(req(2, 0, 0, 7));

    // Until tRAS the precharge is not legal and nothing else fits.
    EXPECT_FALSE(pick(at(timing_.tRcd)).valid);

    const CmdChoice c = pick(at(timing_.tRas));
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.cmd.type, CommandType::kPre);
    channel_->issue(c.cmd, at(timing_.tRas));

    const CmdChoice c2 = pick(at(timing_.tRas + timing_.tRp));
    ASSERT_TRUE(c2.valid);
    EXPECT_EQ(c2.cmd.type, CommandType::kAct);
    EXPECT_EQ(c2.cmd.row, 7);
}

TEST_F(FrFcfsTest, NoPrechargeWhileQueueStillWantsRow)
{
    queue_.push(req(1, 0, 0, 42));
    channel_->issue(pick(0).cmd, 0);
    queue_.push(req(2, 0, 0, 7));
    // Request 1 (row 42) is still queued: the row must not be blown away.
    const CmdChoice c = pick(at(timing_.tRas));
    ASSERT_TRUE(c.valid);
    EXPECT_NE(c.cmd.type, CommandType::kPre);
}

TEST_F(FrFcfsTest, WritesPickWriteCommands)
{
    queue_.push(req(1, 0, 0, 42, 0, true));
    channel_->issue(pick(0).cmd, 0);
    const CmdChoice c = pick(at(timing_.tRcd));
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.cmd.type, CommandType::kWrA);
}
