/**
 * @file
 * Tests for the command-level self-refresh protocol (SRE/SRX):
 * per-spec tXS/tCKESR derivation, the rank state machine (entry
 * legality, demand lockout, tCKESR minimum residency, tXS exit
 * charge), channel stats, the ledger's pause/resume-with-re-anchor
 * semantics, the offline checker's SR rules, the idle-entry policy
 * end-to-end (zero checker violations, ledger still retires), the
 * no-free-lunch acceptance point (energy drops, weighted speedup
 * degrades), and the named-key validation of the new and legacy
 * config keys.
 */

#include <gtest/gtest.h>

#include "dram/channel.hh"
#include "dram/spec.hh"
#include "refresh/ledger.hh"
#include "sim/checker.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "workload/workload.hh"

using namespace dsarp;

namespace {

TimingParams
ddr3Timing()
{
    MemConfig cfg;
    cfg.finalize();
    return TimingParams::ddr3_1333(cfg);
}

MemConfig
ddr3Config()
{
    MemConfig cfg;
    cfg.finalize();
    return cfg;
}

TimedCommand
cmdAt(Tick tick, CommandType type, RankId rank = 0, BankId bank = 0,
      RowId row = 0)
{
    Command cmd;
    cmd.type = type;
    cmd.rank = rank;
    cmd.bank = bank;
    cmd.row = row;
    return {tick, cmd};
}

} // namespace

// ---------------------------------------------------------------------
// Timing derivation.
// ---------------------------------------------------------------------

TEST(SelfRefreshTiming, ExitLatencyExceedsRefreshLatencyOnEverySpec)
{
    // tXS = tRFCab + settle delta: always strictly above tRFCab, and
    // tCKESR is at least one cycle, on every registered backend and
    // density.
    for (const std::string &name : DramSpecRegistry::instance().names()) {
        for (Density d :
             {Density::k8Gb, Density::k16Gb, Density::k32Gb}) {
            MemConfig cfg;
            cfg.dramSpec = name;
            cfg.density = d;
            cfg.finalize();
            const TimingParams t = TimingParams::forConfig(cfg);
            EXPECT_GT(t.tXs, t.tRfcAb) << name << " " << densityName(d);
            EXPECT_GE(t.tCkesr, 1) << name;
            // The native-2x exit (DDR5's tXS_FGR) is shorter than the
            // full-granularity exit whenever the spec's divisor
            // actually shrinks tRFC.
            EXPECT_LT(t.tXsFgr, t.tXs) << name << " " << densityName(d);
        }
    }
}

TEST(SelfRefreshTiming, FgrModeShortensExitLatency)
{
    // Under an active FGR profile the exit tracks the scaled tRFC:
    // DDR5-4800 at FGR2x must exit in its data-sheet tXS_FGR, not the
    // 1x tXS.
    MemConfig base;
    base.dramSpec = "DDR5-4800";
    base.finalize();
    const TimingParams t1 = TimingParams::forConfig(base);

    MemConfig fgr = base;
    fgr.refresh = RefreshMode::kFgr2x;
    const TimingParams t2 = TimingParams::forConfig(fgr);
    EXPECT_LT(t2.tXs, t1.tXs);
    EXPECT_EQ(t2.tXs, t1.tXsFgr);
}

TEST(SelfRefreshTiming, Ddr3GoldenValues)
{
    // DDR3-1333 at 8 Gb: tXS = (350 + 10) ns / 1.5 = 240 cycles,
    // tCKESR = 7.5 ns / 1.5 = 5 cycles.
    const TimingParams t = ddr3Timing();
    EXPECT_EQ(t.tXs, 240);
    EXPECT_EQ(t.tCkesr, 5);
}

// ---------------------------------------------------------------------
// Rank state machine.
// ---------------------------------------------------------------------

TEST(SelfRefreshRank, EntryRequiresQuiescedRank)
{
    const MemConfig cfg = ddr3Config();
    const TimingParams t = ddr3Timing();
    Rank rank(&cfg, &t);
    EXPECT_TRUE(rank.canSrEnter(10));

    // A refresh in flight blocks entry until it drains.
    rank.onRefAb(10);
    EXPECT_FALSE(rank.canSrEnter(Tick(10) + t.tRfcAb - Cycles(1)));
    EXPECT_TRUE(rank.canSrEnter(Tick(10) + t.tRfcAb));

    // An open row blocks entry.
    rank.bank(2).onAct(1000, 7, 0);
    EXPECT_FALSE(rank.canSrEnter(1001));
}

TEST(SelfRefreshRank, DemandAndRefreshIllegalWhileInSelfRefresh)
{
    const MemConfig cfg = ddr3Config();
    const TimingParams t = ddr3Timing();
    Rank rank(&cfg, &t);
    rank.onSrEnter(100);
    EXPECT_TRUE(rank.inSelfRefresh(100));
    EXPECT_FALSE(rank.canSrEnter(150));
    EXPECT_FALSE(rank.canActRankLevel(150));
    EXPECT_FALSE(rank.canRefAb(150));
    EXPECT_FALSE(rank.canRefPbRankLevel(150));
    EXPECT_FALSE(rank.canRefSb(150, 0));
    EXPECT_FALSE(rank.isActive(150));
}

TEST(SelfRefreshRank, ExitHonoursMinimumResidencyAndChargesTxs)
{
    const MemConfig cfg = ddr3Config();
    const TimingParams t = ddr3Timing();
    Rank rank(&cfg, &t);
    rank.onSrEnter(100);

    // tCKESR gates the exit...
    EXPECT_FALSE(rank.canSrExit(Tick(100) + t.tCkesr - Cycles(1)));
    EXPECT_TRUE(rank.canSrExit(Tick(100) + t.tCkesr));

    // ...and the first command after it is charged the full tXS.
    const Tick exit_at = Tick(100) + t.tCkesr;
    rank.onSrExit(exit_at);
    EXPECT_FALSE(rank.inSelfRefresh(exit_at));
    EXPECT_TRUE(rank.selfRefreshLockout(exit_at));
    EXPECT_FALSE(rank.canActRankLevel(exit_at + t.tXs - 1));
    EXPECT_TRUE(rank.canActRankLevel(exit_at + t.tXs));
    EXPECT_FALSE(rank.canSrEnter(exit_at + t.tXs - 1));
    EXPECT_TRUE(rank.canSrEnter(exit_at + t.tXs));
}

// ---------------------------------------------------------------------
// Channel integration.
// ---------------------------------------------------------------------

TEST(SelfRefreshChannel, CommandsAndStats)
{
    MemConfig cfg = ddr3Config();
    const TimingParams t = TimingParams::forConfig(cfg);
    Channel ch(&cfg, &t);

    Command sre;
    sre.type = CommandType::kSrEnter;
    sre.rank = 0;
    ASSERT_TRUE(ch.canIssue(sre, 50));
    ch.issue(sre, 50);
    EXPECT_EQ(ch.stats().srEnter, 1u);

    // Everything except SRX is illegal on the sleeping rank; the other
    // rank is unaffected.
    Command act;
    act.type = CommandType::kAct;
    act.rank = 0;
    act.bank = 1;
    act.row = 3;
    EXPECT_FALSE(ch.canIssue(act, 60));
    Command ref;
    ref.type = CommandType::kRefAb;
    ref.rank = 0;
    EXPECT_FALSE(ch.canIssue(ref, 60));
    act.rank = 1;
    EXPECT_TRUE(ch.canIssue(act, 60));

    // Residency ticks accumulate for the sleeping rank only.
    ch.sampleActivity(60);
    EXPECT_EQ(ch.stats().srTicks, 1u);
    EXPECT_EQ(ch.stats().rankTotalTicks, 2u);

    Command srx;
    srx.type = CommandType::kSrExit;
    srx.rank = 0;
    EXPECT_FALSE(ch.canIssue(srx, Tick(50) + t.tCkesr - Cycles(1)));
    ASSERT_TRUE(ch.canIssue(srx, Tick(50) + t.tCkesr));
    ch.issue(srx, Tick(50) + t.tCkesr);
    EXPECT_EQ(ch.stats().srExit, 1u);

    // tXS lockout, then the rank serves again.
    act.rank = 0;
    EXPECT_FALSE(
        ch.canIssue(act, Tick(50) + t.tCkesr + t.tXs - Cycles(1)));
    EXPECT_TRUE(ch.canIssue(act, Tick(50) + t.tCkesr + t.tXs));
}

// ---------------------------------------------------------------------
// Ledger pause/resume.
// ---------------------------------------------------------------------

TEST(SelfRefreshLedger, PausedRankStopsAccruing)
{
    RefreshLedger ledger(2, 1, Cycles(1000), Cycles(0), Cycles(0));
    ledger.advanceTo(1000);
    EXPECT_EQ(ledger.owed(0), 1);
    EXPECT_EQ(ledger.owed(1), 1);

    ledger.pauseRank(0, 1500);
    EXPECT_TRUE(ledger.rankPaused(0));
    ledger.advanceTo(5000);
    EXPECT_EQ(ledger.owed(0), 1) << "paused rank must not accrue";
    EXPECT_EQ(ledger.owed(1), 5) << "other ranks keep accruing";
}

TEST(SelfRefreshLedger, ResumeRetiresOwedAtInternalRate)
{
    RefreshLedger ledger(1, 2, Cycles(1000), Cycles(0), Cycles(0));
    ledger.advanceTo(3999);  // Both banks owe 3.
    EXPECT_EQ(ledger.owed(0, 0), 3);

    ledger.pauseRank(0, 4000);
    // 2.5 periods of residency: the device retires 2 slots internally.
    ledger.resumeRank(0, 6500);
    EXPECT_EQ(ledger.owed(0, 0), 1);
    EXPECT_EQ(ledger.owed(0, 1), 1);

    // A long residency floors at zero -- the device catches up, it
    // never banks pull-in credit.
    ledger.pauseRank(0, 7000);
    ledger.resumeRank(0, 90000);
    EXPECT_EQ(ledger.owed(0, 0), 0);
}

TEST(SelfRefreshLedger, ResumeReanchorsTheSchedule)
{
    RefreshLedger ledger(1, 1, Cycles(1000), Cycles(0), Cycles(0));
    ledger.advanceTo(1000);
    ledger.onRefresh(0);
    EXPECT_EQ(ledger.owed(0), 0);

    ledger.pauseRank(0, 1500);
    ledger.resumeRank(0, 9500);  // 8 periods paused.

    // The next accrual lands one (shifted) period after the pre-pause
    // instant, not in a burst of 8 missed slots: the window re-anchors
    // on the exit tick.
    ledger.advanceTo(9999);
    EXPECT_EQ(ledger.owed(0), 0);
    ledger.advanceTo(10000);  // 2000 (old next) + 8000 shift.
    EXPECT_EQ(ledger.owed(0), 1);
    EXPECT_FALSE(ledger.mustForce(0));

    // Per-tick accruedBetween queries (the DARP usage pattern) see
    // nothing until the re-anchored instant.
    EXPECT_FALSE(ledger.accruedBetween(0, 0, 9500, 9999));
    EXPECT_TRUE(ledger.accruedBetween(0, 0, 9999, 10000));
}

// ---------------------------------------------------------------------
// Checker rules.
// ---------------------------------------------------------------------

namespace {

/** Violation-message match over a hand-built log fragment. */
bool
logFails(const std::vector<TimedCommand> &log, const std::string &what)
{
    const MemConfig cfg = ddr3Config();
    const TimingParams t = TimingParams::forConfig(cfg);
    const CheckerReport report = verifyCommandLog(log, cfg, t, 0);
    for (const std::string &v : report.violations) {
        if (v.find(what) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

TEST(SelfRefreshChecker, DemandDuringSelfRefreshCaught)
{
    EXPECT_TRUE(logFails({cmdAt(10, CommandType::kSrEnter),
                          cmdAt(50, CommandType::kAct, 0, 0, 3)},
                         "rank in self-refresh"));
    EXPECT_TRUE(logFails({cmdAt(10, CommandType::kSrEnter),
                          cmdAt(50, CommandType::kRefAb)},
                         "rank in self-refresh"));
}

TEST(SelfRefreshChecker, ResidencyAndExitRulesCaught)
{
    const TimingParams t = ddr3Timing();
    // SRX below tCKESR.
    EXPECT_TRUE(logFails(
        {cmdAt(10, CommandType::kSrEnter),
         cmdAt(Tick(10) + t.tCkesr - Cycles(1), CommandType::kSrExit)},
        "tCKESR"));
    // ACT inside the tXS window.
    EXPECT_TRUE(logFails(
        {cmdAt(10, CommandType::kSrEnter),
         cmdAt(Tick(10) + t.tCkesr, CommandType::kSrExit),
         cmdAt(Tick(10) + t.tCkesr + t.tXs - Cycles(1),
               CommandType::kAct, 0, 0, 3)},
        "tXS"));
    // SRX without a preceding SRE; double SRE.
    EXPECT_TRUE(logFails({cmdAt(10, CommandType::kSrExit)},
                         "outside self-refresh"));
    EXPECT_TRUE(logFails({cmdAt(10, CommandType::kSrEnter),
                          cmdAt(50, CommandType::kSrEnter)},
                         "already in self-refresh"));
    // SRE over a refresh still in flight.
    EXPECT_TRUE(logFails({cmdAt(10, CommandType::kRefAb),
                          cmdAt(11, CommandType::kSrEnter)},
                         "refresh is in flight"));
}

TEST(SelfRefreshChecker, LegalProtocolSequencePasses)
{
    const MemConfig cfg = ddr3Config();
    const TimingParams t = TimingParams::forConfig(cfg);
    const Tick exit_at = Tick(100) + t.tCkesr;
    const std::vector<TimedCommand> log = {
        cmdAt(100, CommandType::kSrEnter),
        cmdAt(exit_at, CommandType::kSrExit),
        cmdAt(exit_at + t.tXs, CommandType::kAct, 0, 0, 3),
    };
    const CheckerReport report = verifyCommandLog(log, cfg, t, 0);
    EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                     ? ""
                                     : report.violations.front());
}

TEST(SelfRefreshChecker, ResidencyCreditsRefreshCompleteness)
{
    // A rank asleep for the whole window issues no refresh command at
    // all, yet must not be reported as behind: the device covered its
    // rows internally. Rank 1 (awake, never refreshed) must still be
    // caught.
    MemConfig cfg = ddr3Config();
    const TimingParams t = TimingParams::forConfig(cfg);
    const Tick end = Tick(0) + 12 * t.tRefiAb;
    const CheckerReport report = verifyCommandLog(
        {cmdAt(10, CommandType::kSrEnter)}, cfg, t, end);
    bool rank0_behind = false;
    bool rank1_behind = false;
    for (const std::string &v : report.violations) {
        if (v.find("rank=0") != std::string::npos)
            rank0_behind = true;
        if (v.find("rank=1") != std::string::npos)
            rank1_behind = true;
    }
    EXPECT_FALSE(rank0_behind)
        << "self-refresh residency must credit coverage";
    EXPECT_TRUE(rank1_behind)
        << "an awake, unrefreshed rank must still fall behind";
}

// ---------------------------------------------------------------------
// End-to-end: idle entry under real schedulers.
// ---------------------------------------------------------------------

namespace {

/** Run one mechanism end-to-end with the checker attached; return the
 *  total SRE count and assert zero violations + refresh liveness. */
std::uint64_t
endToEnd(const std::string &spec, const std::string &mech,
         int idle_entry, int banks_per_rank = 8)
{
    SystemConfig cfg;
    cfg.mem.dramSpec = spec;
    cfg.mem.policy = mech;
    cfg.mem.org.channels = 1;
    cfg.mem.org.banksPerRank = banks_per_rank;
    cfg.mem.srIdleEntryCycles = idle_entry;
    // One core of the 0%-intensive mix: demand-idle stretches long
    // enough for the idle-entry policy to actually fire.
    cfg.numCores = 1;
    cfg.enableChecker = true;
    const auto workloads = makeWorkloads(1, cfg.numCores, 1);
    System sys(cfg, workloads[0].benchIdx);
    sys.run(Tick(0) + 10 * sys.timing().tRefiAb);

    std::uint64_t sre = 0;
    std::uint64_t refreshes = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch) {
        const CheckerReport report = verifyCommandLog(
            sys.commandLog(ch), sys.config().mem, sys.timing(),
            sys.now());
        std::string detail;
        for (std::size_t i = 0;
             i < report.violations.size() && i < 3; ++i) {
            detail += "\n  " + report.violations[i];
        }
        EXPECT_TRUE(report.ok())
            << spec << "/" << mech << " idleEntry=" << idle_entry
            << detail;
        const ChannelStats &cs = sys.controller(ch).channel().stats();
        sre += cs.srEnter;
        refreshes += cs.refAb + cs.refPb + cs.refSb;
        std::uint64_t still_resident = 0;
        for (RankId r = 0; r < sys.controller(ch).channel().numRanks();
             ++r) {
            if (sys.controller(ch).channel().rank(r).inSelfRefresh(
                    sys.now())) {
                ++still_resident;
            }
        }
        EXPECT_EQ(cs.srEnter, cs.srExit + still_resident)
            << "every SRE pairs with an SRX unless still resident";
    }
    // Liveness: external refreshes, internal residency, or both.
    EXPECT_GT(refreshes + sre, 0u) << spec << "/" << mech;
    return sre;
}

} // namespace

TEST(SelfRefreshEndToEnd, RefabEntersAndStaysLegal)
{
    EXPECT_GT(endToEnd("DDR3-1333", "REFab", 300), 0u);
}

TEST(SelfRefreshEndToEnd, DsarpEntersAndStaysLegal)
{
    EXPECT_GT(endToEnd("DDR3-1333", "DSARP", 300), 0u);
}

TEST(SelfRefreshEndToEnd, Ddr5RefsbEntersAndStaysLegal)
{
    EXPECT_GT(endToEnd("DDR5-4800", "REFsb", 500, 32), 0u);
}

TEST(SelfRefreshEndToEnd, DisabledKeyIsBitIdenticalToDefault)
{
    // refresh.selfRefresh.idleEntry=0 must leave every reported number
    // of the PR-4 configuration untouched (the golden-baseline suite
    // pins the absolute values; this pins the equivalence).
    Runner runner(1000, 10000, 1);
    RunConfig base;
    base.density = Density::k32Gb;
    base.policy = "REFab";
    RunConfig off = base;
    off.srIdleEntryCycles = 0;
    const Workload w = makeWorkloads(1, 8, 1)[2];
    const RunResult a = runner.run(base, w);
    const RunResult b = runner.run(off, w);
    EXPECT_EQ(a.readsCompleted, b.readsCompleted);
    EXPECT_EQ(a.refAb, b.refAb);
    EXPECT_DOUBLE_EQ(a.ws, b.ws);
    EXPECT_DOUBLE_EQ(a.energyPerAccessNj, b.energyPerAccessNj);
    EXPECT_EQ(b.srEnters, 0u);
}

TEST(SelfRefreshEndToEnd, NoFreeLunch)
{
    // The acceptance point: on a low-intensity workload, enabling
    // idle entry must cut total energy (the ranks really do sleep at
    // IDD6) while weighted speedup measurably degrades (tCKESR
    // residency + the tXS exit charge delay demand) -- the exact
    // latency/energy trade the accounting-only state hid.
    Runner runner(2000, 60000, 1);
    const Workload w = makeWorkloads(1, 2, 1)[0];  // 0%-intensive.

    RunConfig base;
    base.density = Density::k32Gb;
    base.policy = "REFab";
    base.numCores = 2;
    RunConfig sr = base;
    sr.srIdleEntryCycles = 750;

    const RunResult off = runner.run(base, w);
    const RunResult on = runner.run(sr, w);

    ASSERT_GT(on.srEnters, 0u);
    ASSERT_GT(on.srTicks, 0u);

    const double total_off = off.energyPerAccessNj *
        static_cast<double>(off.readsCompleted + off.writesIssued);
    const double total_on = on.energyPerAccessNj *
        static_cast<double>(on.readsCompleted + on.writesIssued);
    EXPECT_LT(total_on, total_off) << "sleeping ranks must save energy";
    EXPECT_LT(on.ws, off.ws) << "the exit latency must cost performance";
}

// ---------------------------------------------------------------------
// Config-key validation.
// ---------------------------------------------------------------------

TEST(SelfRefreshConfig, NamedKeyValidation)
{
    ExperimentConfig cfg;
    cfg.srIdleEntry = -1;
    EXPECT_NE(cfg.validate().find("refresh.selfRefresh.idleEntry"),
              std::string::npos);

    // The two self-refresh keys are mutually exclusive.
    cfg = ExperimentConfig{};
    cfg.srIdleEntry = 1000;
    cfg.selfRefreshIdle = 1000;
    EXPECT_NE(cfg.validate().find("mutually exclusive"),
              std::string::npos);

    // The legacy accounting-only key cannot exceed tREFIab: the state
    // cannot outlast the external refresh schedule it claims to
    // replace (DDR3-1333: tREFIab = 2600 cycles).
    cfg = ExperimentConfig{};
    cfg.selfRefreshIdle = 3000;
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("energy.selfRefreshIdle"), std::string::npos);
    EXPECT_NE(err.find("refresh.selfRefresh.idleEntry"),
              std::string::npos);
    cfg.selfRefreshIdle = 2000;
    EXPECT_EQ(cfg.validate(), "") << cfg.validate();

    // refresh.fgrRate accepts only 0/1/2/4.
    cfg = ExperimentConfig{};
    cfg.fgrRate = 3;
    EXPECT_NE(cfg.validate().find("refresh.fgrRate"), std::string::npos);
}

TEST(SelfRefreshConfig, KeysRoundTripThroughTheLayeredSurface)
{
    ExperimentConfig cfg;
    EXPECT_EQ(cfg.trySet("refresh.selfRefresh.idleEntry", "4000"), "");
    EXPECT_EQ(cfg.srIdleEntry, 4000);
    EXPECT_EQ(cfg.trySet("refresh.fgrRate", "2"), "");
    EXPECT_EQ(cfg.fgrRate, 2);
    const SystemConfig sys = cfg.toSystemConfig();
    EXPECT_EQ(sys.mem.srIdleEntryCycles, 4000);
    EXPECT_EQ(sys.mem.fgrRate, 2);
}
