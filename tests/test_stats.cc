/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hh"

using namespace dsarp;

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, TracksMeanMinMax)
{
    RunningStat s;
    for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) s.add(x);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 14.0 / 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 14.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(-2.5);
    EXPECT_DOUBLE_EQ(s.mean(), -2.5);
    EXPECT_DOUBLE_EQ(s.min(), -2.5);
    EXPECT_DOUBLE_EQ(s.max(), -2.5);
}

TEST(Reductions, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Reductions, GmeanBasics)
{
    EXPECT_DOUBLE_EQ(gmean({}), 0.0);
    EXPECT_NEAR(gmean({4.0, 1.0}), 2.0, 1e-12);
    EXPECT_NEAR(gmean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(gmean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
}

TEST(Reductions, GmeanBelowMeanForSpreadData)
{
    const std::vector<double> xs = {1.0, 2.0, 10.0};
    EXPECT_LT(gmean(xs), mean(xs));
}

TEST(Reductions, MaxOf)
{
    EXPECT_DOUBLE_EQ(maxOf({}), 0.0);
    EXPECT_DOUBLE_EQ(maxOf({-3.0, -1.0, -2.0}), -1.0);
    EXPECT_DOUBLE_EQ(maxOf({1.0, 7.0, 3.0}), 7.0);
}
