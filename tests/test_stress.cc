/**
 * @file
 * Stress and failure-injection tests: pathological workloads (single-row
 * hammering, pure random, write floods), unusual geometries, and
 * adversarial queue pressure. Every case must keep making progress,
 * stay JEDEC-legal, and never starve refresh.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/checker.hh"
#include "sim/system.hh"

using namespace dsarp;

namespace {

/** All cores hammer a single row of a single bank. */
class SingleRowTrace : public TraceSource
{
  public:
    explicit SingleRowTrace(const AddressMap &map) : map_(map) {}

    TraceRecord
    next() override
    {
        TraceRecord rec;
        rec.gap = 2;
        DecodedAddr d;
        d.channel = 0;
        d.rank = 0;
        d.bank = 0;
        d.row = 7;
        d.column = col_;
        col_ = (col_ + 1) % map_.org().columns();
        rec.readAddr = map_.encode(d);
        return rec;
    }

  private:
    const AddressMap &map_;
    int col_ = 0;
};

/** Every record writes; reads are rare. */
class WriteFloodTrace : public TraceSource
{
  public:
    explicit WriteFloodTrace(const AddressMap &map) : map_(map), rng_(5) {}

    TraceRecord
    next() override
    {
        TraceRecord rec;
        rec.gap = 3;
        DecodedAddr d;
        d.channel = static_cast<int>(rng_.below(map_.org().channels));
        d.rank = static_cast<int>(rng_.below(map_.org().ranksPerChannel));
        d.bank = static_cast<int>(rng_.below(map_.org().banksPerRank));
        d.row = static_cast<int>(rng_.below(1024));
        d.column = static_cast<int>(rng_.below(map_.org().columns()));
        rec.readAddr = map_.encode(d);
        rec.hasWriteback = true;
        d.row = static_cast<int>(rng_.below(1024));
        rec.writebackAddr = map_.encode(d);
        return rec;
    }

  private:
    const AddressMap &map_;
    Rng rng_;
};

struct StressOutcome
{
    std::uint64_t reads = 0;
    std::uint64_t instructions = 0;
    CheckerReport report;
};

template <typename TraceT>
StressOutcome
runStress(RefreshMode mode, bool sarp, int cores = 2)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.mem.org.channels = 1;
    cfg.mem.density = Density::k32Gb;
    cfg.mem.refresh = mode;
    cfg.mem.sarp = sarp;
    cfg.enableChecker = true;
    cfg.finalize();

    AddressMap map(cfg.mem.org);
    std::vector<std::unique_ptr<TraceT>> traces;
    std::vector<TraceSource *> sources;
    for (int c = 0; c < cores; ++c) {
        traces.push_back(std::make_unique<TraceT>(map));
        sources.push_back(traces.back().get());
    }
    System sys(cfg, sources);
    sys.run(Tick(0) + 12 * sys.timing().tRefiAb);

    StressOutcome out;
    out.reads = sys.controller(0).stats().readsCompleted;
    for (int c = 0; c < cores; ++c)
        out.instructions += sys.core(c).stats().instructionsRetired;
    out.report = verifyCommandLog(sys.commandLog(0), sys.config().mem,
                                  sys.timing(), sys.now());
    return out;
}

} // namespace

TEST(Stress, SingleRowHammerPerBank)
{
    for (RefreshMode mode : {RefreshMode::kAllBank, RefreshMode::kPerBank,
                             RefreshMode::kDarp}) {
        const StressOutcome out = runStress<SingleRowTrace>(mode, false);
        EXPECT_GT(out.reads, 1000u) << refreshModeName(mode);
        EXPECT_TRUE(out.report.ok())
            << refreshModeName(mode) << ": "
            << (out.report.violations.empty()
                    ? ""
                    : out.report.violations.front());
        EXPECT_GT(out.report.refreshesChecked, 0u) << refreshModeName(mode);
    }
}

TEST(Stress, SingleRowHammerWithSarp)
{
    // The hammered row's subarray periodically refreshes; SARP must
    // arbitrate the conflicts legally.
    const StressOutcome out = runStress<SingleRowTrace>(
        RefreshMode::kDarp, true);
    EXPECT_GT(out.reads, 1000u);
    EXPECT_TRUE(out.report.ok()) << (out.report.violations.empty()
                                         ? ""
                                         : out.report.violations.front());
}

TEST(Stress, WriteFloodDrainsAndRefreshes)
{
    for (RefreshMode mode : {RefreshMode::kPerBank, RefreshMode::kDarp}) {
        const StressOutcome out = runStress<WriteFloodTrace>(mode, false);
        EXPECT_GT(out.instructions, 5000u) << refreshModeName(mode);
        EXPECT_TRUE(out.report.ok())
            << refreshModeName(mode) << ": "
            << (out.report.violations.empty()
                    ? ""
                    : out.report.violations.front());
    }
}

TEST(Stress, SingleRankGeometry)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.mem.org.channels = 1;
    cfg.mem.org.ranksPerChannel = 1;
    cfg.mem.refresh = RefreshMode::kDarp;
    cfg.mem.sarp = true;
    cfg.enableChecker = true;
    System sys(cfg, {10, 15});
    sys.run(Tick(0) + 10 * sys.timing().tRefiAb);
    EXPECT_GT(sys.controller(0).stats().readsCompleted, 500u);
    const CheckerReport report = verifyCommandLog(
        sys.commandLog(0), sys.config().mem, sys.timing(), sys.now());
    EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                     ? ""
                                     : report.violations.front());
}

TEST(Stress, FourRankGeometry)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.mem.org.channels = 1;
    cfg.mem.org.ranksPerChannel = 4;
    cfg.mem.refresh = RefreshMode::kPerBank;
    cfg.enableChecker = true;
    System sys(cfg, {10, 12, 14, 16});
    sys.run(Tick(0) + 8 * sys.timing().tRefiAb);
    EXPECT_GT(sys.controller(0).stats().readsCompleted, 500u);
    const CheckerReport report = verifyCommandLog(
        sys.commandLog(0), sys.config().mem, sys.timing(), sys.now());
    EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                     ? ""
                                     : report.violations.front());
}

TEST(Stress, TinyQueuesStillProgress)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.mem.readQueueSize = 8;
    cfg.mem.writeQueueSize = 8;
    cfg.mem.writeHighWatermark = 6;
    cfg.mem.writeLowWatermark = 2;
    cfg.mem.refresh = RefreshMode::kDarp;
    cfg.mem.sarp = true;
    System sys(cfg, {10, 14, 16, 17});
    sys.run(30000);
    std::uint64_t reads = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch)
        reads += sys.controller(ch).stats().readsCompleted;
    EXPECT_GT(reads, 500u);
}
