/**
 * @file
 * Integration tests: full systems under every refresh mechanism make
 * forward progress, complete reads, refresh on pace, and reproduce the
 * paper's qualitative ordering on a memory-intensive workload.
 */

#include <gtest/gtest.h>

#include "sim/checker.hh"
#include "sim/system.hh"
#include "workload/benchmark.hh"

using namespace dsarp;

namespace {

SystemConfig
config(RefreshMode mode, bool sarp = false, Density d = Density::k32Gb)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.mem.density = d;
    cfg.mem.refresh = mode;
    cfg.mem.sarp = sarp;
    cfg.seed = 3;
    return cfg;
}

std::vector<int>
intensiveMix()
{
    return {benchmarkIndex("mcf-like"), benchmarkIndex("libquantum-like"),
            benchmarkIndex("stream-like"), benchmarkIndex("milc-like")};
}

struct RunSummary
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t refAb = 0;
    std::uint64_t refPb = 0;
    std::uint64_t instructions = 0;
};

RunSummary
runSystem(const SystemConfig &cfg, Tick ticks)
{
    System sys(cfg, intensiveMix());
    sys.run(ticks);
    RunSummary s;
    for (int ch = 0; ch < sys.numChannels(); ++ch) {
        s.reads += sys.controller(ch).stats().readsCompleted;
        s.writes += sys.controller(ch).stats().writesIssued;
        s.refAb += sys.controller(ch).channel().stats().refAb;
        s.refPb += sys.controller(ch).channel().stats().refPb;
    }
    for (int c = 0; c < sys.numCores(); ++c)
        s.instructions += sys.core(c).stats().instructionsRetired;
    return s;
}

} // namespace

TEST(SystemIntegration, EveryMechanismMakesProgress)
{
    const Tick window = 50000;
    for (RefreshMode mode :
         {RefreshMode::kNoRefresh, RefreshMode::kAllBank,
          RefreshMode::kPerBank, RefreshMode::kElastic, RefreshMode::kDarp,
          RefreshMode::kFgr2x, RefreshMode::kFgr4x,
          RefreshMode::kAdaptive}) {
        const RunSummary s = runSystem(config(mode), window);
        EXPECT_GT(s.reads, 1000u) << refreshModeName(mode);
        EXPECT_GT(s.writes, 100u) << refreshModeName(mode);
        EXPECT_GT(s.instructions, 10000u) << refreshModeName(mode);
    }
}

TEST(SystemIntegration, SarpVariantsMakeProgress)
{
    const Tick window = 50000;
    for (RefreshMode mode : {RefreshMode::kAllBank, RefreshMode::kPerBank,
                             RefreshMode::kDarp}) {
        const RunSummary s = runSystem(config(mode, true), window);
        EXPECT_GT(s.reads, 1000u) << refreshModeName(mode) << "+SARP";
    }
}

TEST(SystemIntegration, RefreshCadenceMatchesMechanism)
{
    SystemConfig cfg = config(RefreshMode::kAllBank);
    System sys(cfg, intensiveMix());
    const Tick window = Tick(0) + 12 * sys.timing().tRefiAb;
    const RunSummary ab = runSystem(cfg, window);
    // 2 channels x 2 ranks x 12 intervals = 48 expected REFab.
    EXPECT_GE(ab.refAb, 40u);
    EXPECT_LE(ab.refAb, 48u);
    EXPECT_EQ(ab.refPb, 0u);

    const RunSummary pb = runSystem(config(RefreshMode::kPerBank), window);
    EXPECT_EQ(pb.refAb, 0u);
    EXPECT_GE(pb.refPb, 40u * 8u * 8u / 10u);  // ~8x the REFab count.
}

TEST(SystemIntegration, RefreshImpactOrdering)
{
    // The paper's core result, qualitatively: NoREF >= DSARP >= REFpb
    // >= REFab in served instructions for intensive workloads at 32 Gb.
    const Tick window = 150000;
    const RunSummary ab = runSystem(config(RefreshMode::kAllBank), window);
    const RunSummary pb = runSystem(config(RefreshMode::kPerBank), window);
    const RunSummary dsarp =
        runSystem(config(RefreshMode::kDarp, true), window);
    const RunSummary ideal =
        runSystem(config(RefreshMode::kNoRefresh), window);

    EXPECT_GT(pb.instructions, ab.instructions);
    EXPECT_GT(dsarp.instructions, pb.instructions);
    EXPECT_GE(ideal.instructions, dsarp.instructions * 99 / 100);
    // DSARP captures most of the ideal's benefit (Section 6.1.1).
    const double gap = static_cast<double>(ideal.instructions) -
        static_cast<double>(dsarp.instructions);
    const double total_loss = static_cast<double>(ideal.instructions) -
        static_cast<double>(ab.instructions);
    EXPECT_LT(gap, total_loss * 0.5);
}

TEST(SystemIntegration, AllMechanismStreamsAreLegal)
{
    for (RefreshMode mode :
         {RefreshMode::kAllBank, RefreshMode::kPerBank,
          RefreshMode::kElastic, RefreshMode::kDarp, RefreshMode::kFgr2x,
          RefreshMode::kFgr4x, RefreshMode::kAdaptive}) {
        SystemConfig cfg = config(mode);
        cfg.enableChecker = true;
        System sys(cfg, intensiveMix());
        sys.run(40000);
        for (int ch = 0; ch < sys.numChannels(); ++ch) {
            const CheckerReport report =
                verifyCommandLog(sys.commandLog(ch), sys.config().mem,
                                 sys.timing(), sys.now());
            EXPECT_TRUE(report.ok())
                << refreshModeName(mode) << " ch" << ch << ": "
                << (report.violations.empty() ? ""
                                              : report.violations.front());
        }
    }
}

TEST(SystemIntegration, WriteForwardingServesReads)
{
    // A write-heavy workload: some reads will hit queued writebacks.
    SystemConfig cfg = config(RefreshMode::kPerBank);
    System sys(cfg, {benchmarkIndex("lbm-like"),
                     benchmarkIndex("stream-like"),
                     benchmarkIndex("lbm-like"),
                     benchmarkIndex("stream-like")});
    sys.run(100000);
    std::uint64_t forwarded = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch)
        forwarded += sys.controller(ch).stats().forwardedReads;
    // Streaming writebacks rarely alias with reads, but the mechanism
    // must at least be wired; lbm's random writeback targets do alias.
    EXPECT_GE(forwarded, 0u);
    SUCCEED();
}

TEST(SystemIntegration, WritebackModeEngagesUnderWritePressure)
{
    SystemConfig cfg = config(RefreshMode::kPerBank);
    System sys(cfg, {benchmarkIndex("lbm-like"), benchmarkIndex("lbm-like"),
                     benchmarkIndex("stream-like"),
                     benchmarkIndex("lbm-like")});
    sys.run(100000);
    std::uint64_t wb_ticks = 0;
    for (int ch = 0; ch < sys.numChannels(); ++ch)
        wb_ticks += sys.controller(ch).stats().writebackModeTicks;
    EXPECT_GT(wb_ticks, 1000u);
}

TEST(SystemIntegration, DeterministicReplay)
{
    const RunSummary a = runSystem(config(RefreshMode::kDarp, true), 30000);
    const RunSummary b = runSystem(config(RefreshMode::kDarp, true), 30000);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.refPb, b.refPb);
}

TEST(SystemIntegration, ResetStatsKeepsRunning)
{
    SystemConfig cfg = config(RefreshMode::kDarp);
    System sys(cfg, intensiveMix());
    sys.run(20000);
    sys.resetStats();
    EXPECT_EQ(sys.core(0).stats().instructionsRetired, 0u);
    sys.run(20000);
    EXPECT_GT(sys.core(0).stats().instructionsRetired, 0u);
    EXPECT_EQ(sys.now(), 40000u);
}

TEST(SystemIntegration, CustomTraceSources)
{
    // The second public constructor: caller-owned trace sources.
    SystemConfig cfg = config(RefreshMode::kPerBank);
    cfg.numCores = 2;
    cfg.finalize();
    AddressMap map(cfg.mem.org);
    TraceProfile p;
    p.mpki = 25.0;
    p.rowLocality = 0.5;
    SyntheticTrace t0(p, map, 0, 8, 1);
    SyntheticTrace t1(p, map, 1, 8, 2);
    System sys(cfg, std::vector<TraceSource *>{&t0, &t1});
    sys.run(20000);
    EXPECT_GT(sys.core(0).stats().instructionsRetired, 0u);
    EXPECT_GT(sys.core(1).stats().readsIssued, 0u);
}
