/**
 * @file
 * Concurrent-construction smoke tests for the process-wide state:
 * registries, the Runner alone-IPC memo cache, and whole Systems
 * built in parallel. These pass trivially single-threaded; their
 * value is under TSan (the tsan CMake preset / CI leg), where any
 * unguarded shared state in the singletons becomes a hard failure.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "dram/spec.hh"
#include "refresh/registry.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "workload/benchmark.hh"

using namespace dsarp;

namespace {

constexpr int kThreads = 8;

/** Run @p fn concurrently on kThreads threads, all released at once. */
void
inParallel(const std::function<void(int)> &fn)
{
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            ++ready;
            while (!go.load(std::memory_order_acquire)) {
            }
            fn(i);
        });
    }
    while (ready.load() != kThreads) {
    }
    go.store(true, std::memory_order_release);
    for (std::thread &t : threads)
        t.join();
}

} // namespace

TEST(ThreadClean, ConcurrentRegistryLookups)
{
    inParallel([](int i) {
        auto &policies = RefreshPolicyRegistry::instance();
        auto &specs = DramSpecRegistry::instance();
        for (int iter = 0; iter < 50; ++iter) {
            EXPECT_TRUE(policies.has("DSARP"));
            EXPECT_NE(policies.find("REFab"), nullptr);
            EXPECT_FALSE(policies.names().empty());
            EXPECT_TRUE(specs.has("DDR3-1333"));
            EXPECT_NE(specs.find("DDR5-4800"), nullptr);
            EXPECT_FALSE(specs.names().empty());
            // Misses exercise the error-message path's lock too.
            EXPECT_EQ(specs.find("no-such-spec"), nullptr);
            EXPECT_FALSE(
                policies.unknownPolicyMessage("no-such-policy").empty());
        }
        (void)i;
    });
}

TEST(ThreadClean, ConcurrentResolveAndTimingDerivation)
{
    inParallel([](int i) {
        for (int iter = 0; iter < 20; ++iter) {
            MemConfig cfg;
            cfg.policy = (i + iter) % 2 == 0 ? "DSARP" : "REFpb";
            RefreshPolicyRegistry::instance().resolve(cfg);
            cfg.finalize();
            const TimingParams t = TimingParams::forConfig(cfg);
            EXPECT_GT(t.tRefiAb, Cycles(0));
            EXPECT_GT(t.tRfcPb, Cycles(0));
        }
    });
}

TEST(ThreadClean, RegistryEntryPointersSurviveRuntimeRegistration)
{
    // Regression: entries live in a std::deque precisely so pointers
    // handed out by find()/at() stay valid when a later registration
    // grows the registry. A vector would invalidate them on growth.
    auto &specs = DramSpecRegistry::instance();
    const DramSpec *before = specs.find("DDR3-1333");
    ASSERT_NE(before, nullptr);
    const std::string name_before = before->name;

    DramSpec extra;
    extra.name = "TEST-THREADCLEAN-SPEC";
    extra.tCkNs = Nanoseconds(1.0);
    specs.add(extra);

    EXPECT_EQ(before->name, name_before)
        << "registry growth must not move existing entries";
    EXPECT_TRUE(specs.has("TEST-THREADCLEAN-SPEC"));
}

TEST(ThreadClean, ConcurrentAloneIpcCache)
{
    // All threads demand the same alone baselines: every cache slot is
    // computed once (first-insert-wins) while the rest hit the memo.
    Runner runner(/*warmup=*/200, /*measure=*/2000, /*perCategory=*/1);
    const RunConfig cfg = mechRefAb(Density::k8Gb);
    const int bench_a = benchmarkIndex("mcf-like");
    const int bench_b = benchmarkIndex("milc-like");
    std::vector<double> results(kThreads, -1.0);

    inParallel([&](int i) {
        Runner local(/*warmup=*/200, /*measure=*/2000, /*perCategory=*/1);
        Runner &r = i % 2 == 0 ? runner : local;
        const int bench = i % 4 < 2 ? bench_a : bench_b;
        results[i] = r.aloneIpc(bench, cfg);
    });

    for (int i = 0; i < kThreads; ++i) {
        EXPECT_GT(results[i], 0.0) << "thread " << i;
        // The cache is process-wide: same bench -> identical value, on
        // every Runner instance.
        const int peer = i ^ 1;  // Same bench, other runner parity.
        EXPECT_EQ(results[i], results[peer]);
    }
}

TEST(ThreadClean, ConcurrentSystemConstructionAndRun)
{
    inParallel([](int i) {
        SystemConfig cfg;
        cfg.numCores = 1;
        cfg.mem.org.channels = 1;
        cfg.mem.policy = i % 2 == 0 ? "DSARP" : "REFab";
        cfg.seed = 100 + i;
        System sys(cfg,
                   std::vector<int>{benchmarkIndex("mcf-like")});
        sys.run(Tick(0) + 2 * sys.timing().tRefiAb);
        EXPECT_GT(sys.controller(0).stats().readsCompleted +
                      sys.controller(0).channel().stats().refAb +
                      sys.controller(0).channel().stats().refPb,
                  0u);
    });
}
