/**
 * @file
 * Unit tests for the DDR3-1333 timing derivation: density scaling,
 * retention scaling, FGR scaling, and the per-bank refresh ratio.
 */

#include <gtest/gtest.h>

#include "dram/timing.hh"

using namespace dsarp;

namespace {

MemConfig
cfgFor(Density d, int retention_ms = 32,
       RefreshMode mode = RefreshMode::kAllBank)
{
    MemConfig cfg;
    cfg.density = d;
    cfg.retentionMs = retention_ms;
    cfg.refresh = mode;
    cfg.finalize();
    return cfg;
}

} // namespace

TEST(Timing, NsToCycles)
{
    const Nanoseconds tck{1.5};
    EXPECT_EQ(TimingParams::nsToCycles(Nanoseconds(1.5), tck), 1);
    EXPECT_EQ(TimingParams::nsToCycles(Nanoseconds(1.6), tck), 2);
    EXPECT_EQ(TimingParams::nsToCycles(Nanoseconds(350.0), tck), 234);
    EXPECT_EQ(TimingParams::nsToCycles(Nanoseconds(0.0), tck), 0);
}

TEST(Timing, Ddr3CoreParameters)
{
    const TimingParams t = TimingParams::ddr3_1333(cfgFor(Density::k8Gb));
    EXPECT_EQ(t.tCl, 9);
    EXPECT_EQ(t.tCwl, 7);
    EXPECT_EQ(t.tRcd, 9);
    EXPECT_EQ(t.tRp, 9);
    EXPECT_EQ(t.tRas, 24);
    EXPECT_EQ(t.tRc, 33);
    EXPECT_EQ(t.tFaw, 20);  // Table 4 baseline: 20 DRAM cycles.
    EXPECT_EQ(t.tRrd, 4);
}

TEST(Timing, RefreshIntervals32ms)
{
    const TimingParams t = TimingParams::ddr3_1333(cfgFor(Density::k8Gb));
    // 32 ms / 8192 = 3.9 us = 2604 cycles at 1.5 ns.
    EXPECT_NEAR(static_cast<double>(t.tRefiAb.count()), 2604.0, 2.0);
    EXPECT_EQ(t.tRefiPb, t.tRefiAb / 8);
}

TEST(Timing, RefreshIntervals64ms)
{
    const TimingParams t =
        TimingParams::ddr3_1333(cfgFor(Density::k8Gb, 64));
    EXPECT_NEAR(static_cast<double>(t.tRefiAb.count()), 5208.0, 4.0);
}

TEST(Timing, RefreshLatencyScalesWithDensity)
{
    const TimingParams t8 = TimingParams::ddr3_1333(cfgFor(Density::k8Gb));
    const TimingParams t16 =
        TimingParams::ddr3_1333(cfgFor(Density::k16Gb));
    const TimingParams t32 =
        TimingParams::ddr3_1333(cfgFor(Density::k32Gb));
    EXPECT_EQ(t8.tRfcAb, 234);   // 350 ns.
    EXPECT_EQ(t16.tRfcAb, 354);  // 530 ns.
    EXPECT_EQ(t32.tRfcAb, 594);  // 890 ns.
}

TEST(Timing, PerBankRatioIs2Point3)
{
    for (Density d : {Density::k8Gb, Density::k16Gb, Density::k32Gb}) {
        const TimingParams t = TimingParams::ddr3_1333(cfgFor(d));
        const double ratio = static_cast<double>(t.tRfcAb.count()) /
            static_cast<double>(t.tRfcPb.count());
        EXPECT_NEAR(ratio, 2.3, 0.03) << densityName(d);
        EXPECT_GT(t.tRfcPb, t.tRfcAb / 8)
            << "tRFCpb must exceed tRFCab/8 (Figure 3b)";
    }
}

TEST(Timing, RowsPerRefresh)
{
    EXPECT_EQ(TimingParams::ddr3_1333(cfgFor(Density::k8Gb)).rowsPerRefresh,
              8);
    EXPECT_EQ(
        TimingParams::ddr3_1333(cfgFor(Density::k16Gb)).rowsPerRefresh, 16);
    EXPECT_EQ(
        TimingParams::ddr3_1333(cfgFor(Density::k32Gb)).rowsPerRefresh, 32);
    // Retention does not change per-command coverage.
    EXPECT_EQ(
        TimingParams::ddr3_1333(cfgFor(Density::k8Gb, 64)).rowsPerRefresh,
        8);
}

TEST(Timing, FgrScaling)
{
    const TimingParams base = TimingParams::ddr3_1333(cfgFor(Density::k32Gb));
    const TimingParams f2 = TimingParams::ddr3_1333(
        cfgFor(Density::k32Gb, 32, RefreshMode::kFgr2x));
    const TimingParams f4 = TimingParams::ddr3_1333(
        cfgFor(Density::k32Gb, 32, RefreshMode::kFgr4x));

    EXPECT_EQ(f2.tRefiAb, base.tRefiAb / 2);
    EXPECT_EQ(f4.tRefiAb, base.tRefiAb / 4);

    // Section 6.5: tRFC shrinks by only 1.35x / 1.63x.
    EXPECT_NEAR(static_cast<double>(base.tRfcAb.count()) /
                    static_cast<double>(f2.tRfcAb.count()),
                1.35, 0.02);
    EXPECT_NEAR(static_cast<double>(base.tRfcAb.count()) /
                    static_cast<double>(f4.tRfcAb.count()),
                1.63, 0.02);

    // Worst-case lockout per retention grows (the paper's complaint).
    const double base_lockout =
        static_cast<double>(base.tRfcAb.count());
    EXPECT_GT(2.0 * f2.tRfcAb, base_lockout);
    EXPECT_GT(4.0 * f4.tRfcAb, base_lockout);

    EXPECT_EQ(f4.rowsPerRefresh, base.rowsPerRefresh / 4);
}

TEST(Timing, TfawOverride)
{
    MemConfig cfg = cfgFor(Density::k32Gb);
    cfg.tFawOverride = 5;
    cfg.tRrdOverride = 1;
    const TimingParams t = TimingParams::ddr3_1333(cfg);
    EXPECT_EQ(t.tFaw, 5);
    EXPECT_EQ(t.tRrd, 1);
}

TEST(Timing, FgrDivisors)
{
    EXPECT_DOUBLE_EQ(TimingParams::fgrRfcDivisor(1), 1.0);
    EXPECT_DOUBLE_EQ(TimingParams::fgrRfcDivisor(2), 1.35);
    EXPECT_DOUBLE_EQ(TimingParams::fgrRfcDivisor(4), 1.63);
}
