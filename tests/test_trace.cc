/**
 * @file
 * Statistical tests for the synthetic trace generator: MPKI calibration,
 * row locality, footprint confinement, and determinism.
 */

#include <gtest/gtest.h>

#include "core/trace.hh"

using namespace dsarp;

namespace {

class TraceTest : public ::testing::Test
{
  protected:
    TraceTest() : map_(MemOrg{}) {}

    TraceProfile
    profile(double mpki, double locality, double wb = 0.3,
            int footprint = 1024, bool random = false)
    {
        TraceProfile p;
        p.mpki = mpki;
        p.rowLocality = locality;
        p.writebackFraction = wb;
        p.footprintRows = footprint;
        p.randomAccess = random;
        return p;
    }

    AddressMap map_;
};

} // namespace

TEST_F(TraceTest, MeanGapMatchesMpki)
{
    for (double mpki : {1.0, 10.0, 40.0}) {
        SyntheticTrace trace(profile(mpki, 0.5), map_, 0, 8, 1);
        double gap_sum = 0.0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            gap_sum += trace.next().gap;
        const double measured_mpki = 1000.0 / (gap_sum / n + 1.0);
        EXPECT_NEAR(measured_mpki, mpki, mpki * 0.1) << "mpki " << mpki;
    }
}

TEST_F(TraceTest, RowLocalityProducesSequentialColumns)
{
    SyntheticTrace trace(profile(20, 0.9), map_, 0, 8, 2);
    int sequential = 0;
    DecodedAddr prev = map_.decode(trace.next().readAddr);
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const DecodedAddr cur = map_.decode(trace.next().readAddr);
        if (cur.row == prev.row && cur.bank == prev.bank &&
            cur.channel == prev.channel &&
            cur.column == prev.column + 1) {
            ++sequential;
        }
        prev = cur;
    }
    EXPECT_GT(sequential, n * 3 / 4);
}

TEST_F(TraceTest, RandomAccessNeverStreams)
{
    SyntheticTrace trace(profile(40, 0.9, 0.3, 8192, true), map_, 0, 8, 3);
    int same_row = 0;
    DecodedAddr prev = map_.decode(trace.next().readAddr);
    for (int i = 0; i < 3000; ++i) {
        const DecodedAddr cur = map_.decode(trace.next().readAddr);
        if (cur.row == prev.row && cur.bank == prev.bank)
            ++same_row;
        prev = cur;
    }
    EXPECT_LT(same_row, 30);
}

TEST_F(TraceTest, FootprintConfinedToCoreRegion)
{
    const int partitions = 8;
    for (CoreId core : {0, 3, 7}) {
        SyntheticTrace trace(profile(20, 0.3, 0.5, 512), map_, core,
                             partitions, 4);
        const int region = map_.org().rowsPerBank / partitions;
        const RowId base = core * region;
        for (int i = 0; i < 2000; ++i) {
            const TraceRecord rec = trace.next();
            const DecodedAddr read = map_.decode(rec.readAddr);
            EXPECT_GE(read.row, base);
            EXPECT_LT(read.row, base + 512 + 1);
            if (rec.hasWriteback) {
                const DecodedAddr wb = map_.decode(rec.writebackAddr);
                EXPECT_GE(wb.row, base);
                EXPECT_LT(wb.row, base + 512 + 1);
            }
        }
    }
}

TEST_F(TraceTest, WritebackFractionRespected)
{
    SyntheticTrace trace(profile(20, 0.5, 0.4), map_, 0, 8, 5);
    int wb = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        wb += trace.next().hasWriteback ? 1 : 0;
    EXPECT_NEAR(wb / static_cast<double>(n), 0.4, 0.03);
}

TEST_F(TraceTest, DeterministicForSameSeed)
{
    SyntheticTrace a(profile(20, 0.5), map_, 0, 8, 42);
    SyntheticTrace b(profile(20, 0.5), map_, 0, 8, 42);
    for (int i = 0; i < 1000; ++i) {
        const TraceRecord ra = a.next();
        const TraceRecord rb = b.next();
        EXPECT_EQ(ra.readAddr, rb.readAddr);
        EXPECT_EQ(ra.gap, rb.gap);
        EXPECT_EQ(ra.hasWriteback, rb.hasWriteback);
    }
}

TEST_F(TraceTest, DifferentCoresUseDifferentRegions)
{
    SyntheticTrace a(profile(20, 0.5), map_, 0, 8, 42);
    SyntheticTrace b(profile(20, 0.5), map_, 1, 8, 42);
    const DecodedAddr da = map_.decode(a.next().readAddr);
    const DecodedAddr db = map_.decode(b.next().readAddr);
    EXPECT_NE(da.row / (map_.org().rowsPerBank / 8),
              db.row / (map_.org().rowsPerBank / 8));
}

TEST_F(TraceTest, SpreadsAcrossChannelsAndBanks)
{
    SyntheticTrace trace(profile(30, 0.2, 0.3, 4096), map_, 0, 8, 6);
    std::vector<int> chan(2, 0);
    std::vector<int> bank(8, 0);
    for (int i = 0; i < 4000; ++i) {
        const DecodedAddr d = map_.decode(trace.next().readAddr);
        ++chan[d.channel];
        ++bank[d.bank];
    }
    EXPECT_GT(chan[0], 1000);
    EXPECT_GT(chan[1], 1000);
    for (int b = 0; b < 8; ++b)
        EXPECT_GT(bank[b], 200) << "bank " << b;
}
