/**
 * @file
 * Unit tests for file-backed traces and the latency histogram.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/stats.hh"
#include "core/trace_file.hh"

using namespace dsarp;

namespace {

class TraceFileTest : public ::testing::Test
{
  protected:
    std::string
    writeTemp(const std::string &content)
    {
        const std::string path =
            testing::TempDir() + "dsarp_trace_test.txt";
        std::ofstream out(path);
        out << content;
        return path;
    }
};

} // namespace

TEST_F(TraceFileTest, ParsesRecordsAndComments)
{
    const std::string path = writeTemp(
        "# a comment\n"
        "10 1000\n"
        "\n"
        "20 0x2000 3000\n"
        "0 40 # trailing comment\n");
    TraceFileSource trace(path);
    EXPECT_EQ(trace.size(), 3u);

    TraceRecord r = trace.next();
    EXPECT_EQ(r.gap, 10);
    EXPECT_EQ(r.readAddr, 0x1000u);
    EXPECT_FALSE(r.hasWriteback);

    r = trace.next();
    EXPECT_EQ(r.gap, 20);
    EXPECT_EQ(r.readAddr, 0x2000u);
    EXPECT_TRUE(r.hasWriteback);
    EXPECT_EQ(r.writebackAddr, 0x3000u);

    r = trace.next();
    EXPECT_EQ(r.gap, 0);
    EXPECT_EQ(r.readAddr, 0x40u);
}

TEST_F(TraceFileTest, LoopsAtEnd)
{
    const std::string path = writeTemp("1 10\n2 20\n");
    TraceFileSource trace(path);
    trace.next();
    EXPECT_EQ(trace.loops(), 0u);
    trace.next();  // Consumes the last record: the cursor wraps.
    EXPECT_EQ(trace.loops(), 1u);
    const TraceRecord r = trace.next();
    EXPECT_EQ(r.gap, 1) << "stream restarted from the first record";
    EXPECT_EQ(trace.loops(), 1u);
}

TEST_F(TraceFileTest, RoundTripThroughWriter)
{
    std::vector<TraceRecord> records;
    for (int i = 1; i <= 5; ++i) {
        TraceRecord rec;
        rec.gap = i * 3;
        rec.readAddr = static_cast<Addr>(i) * 0x40;
        rec.hasWriteback = (i % 2) == 0;
        rec.writebackAddr = rec.readAddr + 0x100000;
        records.push_back(rec);
    }
    const std::string path = testing::TempDir() + "dsarp_rt_trace.txt";
    TraceFileSource::write(path, records);
    TraceFileSource trace(path);
    ASSERT_EQ(trace.size(), records.size());
    for (const TraceRecord &expected : records) {
        const TraceRecord got = trace.next();
        EXPECT_EQ(got.gap, expected.gap);
        EXPECT_EQ(got.readAddr, expected.readAddr);
        EXPECT_EQ(got.hasWriteback, expected.hasWriteback);
        if (expected.hasWriteback)
            EXPECT_EQ(got.writebackAddr, expected.writebackAddr);
    }
}

TEST_F(TraceFileTest, ProgrammaticConstruction)
{
    TraceRecord rec;
    rec.gap = 7;
    rec.readAddr = 0x80;
    TraceFileSource trace(std::vector<TraceRecord>{rec});
    EXPECT_EQ(trace.next().gap, 7);
    EXPECT_EQ(trace.next().gap, 7);
    EXPECT_EQ(trace.loops(), 2u);
}

TEST_F(TraceFileTest, RejectsMissingFile)
{
    EXPECT_EXIT(TraceFileSource("/nonexistent/definitely_not_here.txt"),
                testing::ExitedWithCode(1), "trace");
}

TEST_F(TraceFileTest, RejectsEmptyFile)
{
    const std::string path = writeTemp("# only a comment\n");
    EXPECT_EXIT(TraceFileSource trace(path), testing::ExitedWithCode(1),
                "no records");
}

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, BucketsByPowerOfTwo)
{
    LatencyHistogram h;
    h.add(0);
    h.add(1);   // Bucket 0: [0, 2).
    h.add(2);
    h.add(3);   // Bucket 1: [2, 4).
    h.add(100); // Bucket 6: [64, 128).
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(6), 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 5.0);
}

TEST(LatencyHistogram, PercentilesOrdered)
{
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.add(v);
    const double p50 = h.percentile(50);
    const double p90 = h.percentile(90);
    const double p99 = h.percentile(99);
    EXPECT_LT(p50, p90);
    EXPECT_LE(p90, p99);
    // Median of 1..1000 should land within its power-of-2 bucket.
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1024.0);
}

TEST(LatencyHistogram, ResetClears)
{
    LatencyHistogram h;
    h.add(10);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}
