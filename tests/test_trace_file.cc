/**
 * @file
 * Unit tests for file-backed traces and the latency histogram.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/stats.hh"
#include "core/trace_file.hh"

using namespace dsarp;

namespace {

class TraceFileTest : public ::testing::Test
{
  protected:
    std::string
    writeTemp(const std::string &content)
    {
        const std::string path =
            testing::TempDir() + "dsarp_trace_test.txt";
        std::ofstream out(path);
        out << content;
        return path;
    }
};

} // namespace

TEST_F(TraceFileTest, ParsesRecordsAndComments)
{
    const std::string path = writeTemp(
        "# a comment\n"
        "10 1000\n"
        "\n"
        "20 0x2000 3000\n"
        "0 40 # trailing comment\n");
    TraceFileSource trace(path);
    EXPECT_EQ(trace.size(), 3u);

    TraceRecord r = trace.next();
    EXPECT_EQ(r.gap, 10);
    EXPECT_EQ(r.readAddr, 0x1000u);
    EXPECT_FALSE(r.hasWriteback);

    r = trace.next();
    EXPECT_EQ(r.gap, 20);
    EXPECT_EQ(r.readAddr, 0x2000u);
    EXPECT_TRUE(r.hasWriteback);
    EXPECT_EQ(r.writebackAddr, 0x3000u);

    r = trace.next();
    EXPECT_EQ(r.gap, 0);
    EXPECT_EQ(r.readAddr, 0x40u);
}

TEST_F(TraceFileTest, LoopsAtEnd)
{
    const std::string path = writeTemp("1 10\n2 20\n");
    TraceFileSource trace(path);
    trace.next();
    EXPECT_EQ(trace.loops(), 0u);
    trace.next();  // Consumes the last record: the cursor wraps.
    EXPECT_EQ(trace.loops(), 1u);
    const TraceRecord r = trace.next();
    EXPECT_EQ(r.gap, 1) << "stream restarted from the first record";
    EXPECT_EQ(trace.loops(), 1u);
}

TEST_F(TraceFileTest, RoundTripThroughWriter)
{
    std::vector<TraceRecord> records;
    for (int i = 1; i <= 5; ++i) {
        TraceRecord rec;
        rec.gap = i * 3;
        rec.readAddr = static_cast<Addr>(i) * 0x40;
        rec.hasWriteback = (i % 2) == 0;
        rec.writebackAddr = rec.readAddr + 0x100000;
        records.push_back(rec);
    }
    const std::string path = testing::TempDir() + "dsarp_rt_trace.txt";
    TraceFileSource::write(path, records);
    TraceFileSource trace(path);
    ASSERT_EQ(trace.size(), records.size());
    for (const TraceRecord &expected : records) {
        const TraceRecord got = trace.next();
        EXPECT_EQ(got.gap, expected.gap);
        EXPECT_EQ(got.readAddr, expected.readAddr);
        EXPECT_EQ(got.hasWriteback, expected.hasWriteback);
        if (expected.hasWriteback)
            EXPECT_EQ(got.writebackAddr, expected.writebackAddr);
    }
}

TEST_F(TraceFileTest, ProgrammaticConstruction)
{
    TraceRecord rec;
    rec.gap = 7;
    rec.readAddr = 0x80;
    TraceFileSource trace(std::vector<TraceRecord>{rec});
    EXPECT_EQ(trace.next().gap, 7);
    EXPECT_EQ(trace.next().gap, 7);
    EXPECT_EQ(trace.loops(), 2u);
}

TEST_F(TraceFileTest, RejectsMissingFile)
{
    EXPECT_EXIT(TraceFileSource("/nonexistent/definitely_not_here.txt"),
                testing::ExitedWithCode(1), "trace");
}

TEST_F(TraceFileTest, RejectsEmptyFile)
{
    const std::string path = writeTemp("# only a comment\n");
    EXPECT_EXIT(TraceFileSource trace(path), testing::ExitedWithCode(1),
                "no records");
}

TEST_F(TraceFileTest, RejectsGarbageHex)
{
    const std::string path = writeTemp("1 0xZZ\n");
    EXPECT_EXIT(TraceFileSource trace(path), testing::ExitedWithCode(1),
                "read address");
}

TEST_F(TraceFileTest, RejectsTrailingJunkInAddress)
{
    const std::string path = writeTemp("1 0x10junk\n");
    EXPECT_EXIT(TraceFileSource trace(path), testing::ExitedWithCode(1),
                "read address");
}

TEST_F(TraceFileTest, RejectsOversizedAddress)
{
    // 17 significant hex digits: one bit past uint64.
    const std::string path = writeTemp("1 0x1ffffffffffffffff\n");
    EXPECT_EXIT(TraceFileSource trace(path), testing::ExitedWithCode(1),
                "exceeds 64 bits");
}

TEST_F(TraceFileTest, RejectsSignedAddress)
{
    // std::stoull would silently accept (and negate) this.
    const std::string path = writeTemp("1 -0x40\n");
    EXPECT_EXIT(TraceFileSource trace(path), testing::ExitedWithCode(1),
                "read address");
}

TEST_F(TraceFileTest, RejectsNegativeGap)
{
    const std::string path = writeTemp("-3 0x40\n");
    EXPECT_EXIT(TraceFileSource trace(path), testing::ExitedWithCode(1),
                "gap");
}

TEST_F(TraceFileTest, RejectsWrongFieldCount)
{
    const std::string path = writeTemp("1 0x40 0x80 0xc0\n");
    EXPECT_EXIT(TraceFileSource trace(path), testing::ExitedWithCode(1),
                "field");
}

TEST_F(TraceFileTest, ErrorsNameFileAndLine)
{
    const std::string path = writeTemp("1 0x40\n2 bogus!\n");
    EXPECT_EXIT(TraceFileSource trace(path), testing::ExitedWithCode(1),
                ":2");
}

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact)
{
    // Values below kSubBuckets land in unit-width buckets: value ==
    // bucket index, so the low range carries no quantization at all.
    LatencyHistogram h;
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(3);
    for (int v = 0; v < 4; ++v)
        EXPECT_EQ(h.bucket(v), v == 3 ? 2u : 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 9.0 / 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 3.0);
}

TEST(LatencyHistogram, BucketBoundsBracketEveryValue)
{
    for (const std::uint64_t v :
         {0ull, 1ull, 31ull, 32ull, 33ull, 100ull, 1000ull, 123456789ull,
          (1ull << 62), ~0ull}) {
        const int i = LatencyHistogram::bucketIndex(v);
        ASSERT_GE(i, 0);
        ASSERT_LT(i, LatencyHistogram::kBuckets);
        EXPECT_LE(LatencyHistogram::bucketLow(i), v);
        EXPECT_GE(LatencyHistogram::bucketHigh(i), v);
    }
}

TEST(LatencyHistogram, PercentilesOrdered)
{
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.add(v);
    const double p50 = h.percentile(50);
    const double p90 = h.percentile(90);
    const double p99 = h.percentile(99);
    EXPECT_LT(p50, p90);
    EXPECT_LE(p90, p99);
    // The log-linear buckets bound the relative error at 1/32.
    EXPECT_NEAR(p50, 500.0, 500.0 * LatencyHistogram::kMaxRelativeError);
    EXPECT_NEAR(p99, 990.0, 990.0 * LatencyHistogram::kMaxRelativeError);
}

TEST(LatencyHistogram, ExtremesAreExact)
{
    LatencyHistogram h;
    h.add(7);
    h.add(123456);
    h.add(~0ull);  // Must not overflow the bucket math.
    EXPECT_EQ(h.min(), 7u);
    EXPECT_EQ(h.max(), ~0ull);
    EXPECT_DOUBLE_EQ(h.percentile(0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), static_cast<double>(~0ull));
}

TEST(LatencyHistogram, MergeMatchesCombinedAdds)
{
    LatencyHistogram a;
    LatencyHistogram b;
    LatencyHistogram both;
    for (std::uint64_t v = 1; v <= 200; ++v) {
        ((v % 2) ? a : b).add(v * 3);
        both.add(v * 3);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
    EXPECT_DOUBLE_EQ(a.mean(), both.mean());
    for (const double p : {10.0, 50.0, 99.0})
        EXPECT_DOUBLE_EQ(a.percentile(p), both.percentile(p));

    LatencyHistogram empty;
    a.merge(empty);  // Merging an empty histogram is a no-op.
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.min(), both.min());
}

TEST(LatencyHistogram, ResetClears)
{
    LatencyHistogram h;
    h.add(10);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}
