/**
 * @file
 * Tests for the open-loop traffic front end (workload/arrival.hh):
 * histogram accuracy against an exact sorted reference, tenant
 * partitioning, engine/jobs bit-identity, the DRAMSim-style trace
 * reader, and full traffic runs through the Runner.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "dram/address.hh"
#include "sim/parallel.hh"
#include "sim/runner.hh"
#include "workload/arrival.hh"

using namespace dsarp;

namespace {

/** Exact percentile of a sorted sample (nearest-rank). */
double
exactPercentile(std::vector<std::uint64_t> sorted, double p)
{
    std::sort(sorted.begin(), sorted.end());
    const double target = p / 100.0 * static_cast<double>(sorted.size());
    std::size_t rank = static_cast<std::size_t>(target);
    if (rank >= sorted.size())
        rank = sorted.size() - 1;
    return static_cast<double>(sorted[rank]);
}

/** A finalized AddressMap for the default DDR3 geometry. */
std::unique_ptr<AddressMap>
defaultMap()
{
    MemConfig cfg;
    cfg.finalize();
    return AddressMapRegistry::instance().make(cfg.addressMap, cfg.org);
}

TrafficConfig
poissonConfig(int tenants = 1)
{
    TrafficConfig cfg;
    cfg.mode = "poisson";
    cfg.ratePerKilocycle = 80.0;
    cfg.hotRowPct = 25.0;
    cfg.tenants = tenants;
    EXPECT_EQ(cfg.validate(), "");
    return cfg;
}

TEST(TrafficConfig, RejectsTracePathWithoutTraceMode)
{
    // A trace path under a non-trace mode must be a named error, not
    // silently dead config (the CLI's --trace implies the mode, but
    // the raw key layers can still disagree).
    TrafficConfig cfg = poissonConfig();
    cfg.tracePath = "mixed.trc";
    EXPECT_NE(cfg.validate().find("traffic.trace"), std::string::npos);
    EXPECT_NE(cfg.validate().find("traffic.mode=trace"),
              std::string::npos);
    cfg.mode = "off";
    EXPECT_NE(cfg.validate().find("traffic.trace"), std::string::npos);
}

TEST(TrafficConfig, RejectsOutOfRangePriorities)
{
    // An out-of-long-range priority used to pass the `v < 1` check
    // (strtol saturates to LONG_MAX) and then truncate to a garbage
    // int in priorityList(); anything that cannot survive the int
    // narrowing must fail validation by name.
    TrafficConfig cfg = poissonConfig(2);
    cfg.tenantPriorities = "99999999999999999999,1";
    EXPECT_NE(cfg.validate().find("tenant.priorities"),
              std::string::npos);
    cfg.tenantPriorities = "2147483648,1"; // INT_MAX + 1.
    EXPECT_NE(cfg.validate().find("tenant.priorities"),
              std::string::npos);
    cfg.tenantPriorities = "2147483647,1"; // INT_MAX itself is fine.
    EXPECT_EQ(cfg.validate(), "");
    EXPECT_EQ(cfg.priorityList()[0], 2147483647);
}

std::string
writeTemp(const std::string &name, const std::string &content)
{
    const std::string path = testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
}

} // namespace

// ---------------------------------------------------------------------
// Histogram percentiles against an exact sorted reference.
// ---------------------------------------------------------------------

TEST(TrafficHistogram, PercentilesTrackExactReferenceWithinBound)
{
    // Log-normal-ish latencies spanning several octaves, like a real
    // latency distribution with a long tail.
    Rng rng(42);
    LatencyHistogram h;
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        const std::uint64_t v =
            50 + static_cast<std::uint64_t>(u * u * u * 20000.0);
        samples.push_back(v);
        h.add(v);
    }
    for (const double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
        const double exact = exactPercentile(samples, p);
        const double approx = h.percentile(p);
        // Documented contract: within kMaxRelativeError of the true
        // sample (plus one sample of rank slack at the extreme tail).
        EXPECT_NEAR(approx, exact,
                    exact * LatencyHistogram::kMaxRelativeError + 1.0)
            << "p" << p;
    }
}

TEST(TrafficHistogram, UniformSampleAccuracy)
{
    LatencyHistogram h;
    std::vector<std::uint64_t> samples;
    for (std::uint64_t v = 1; v <= 5000; ++v) {
        samples.push_back(v);
        h.add(v);
    }
    for (const double p : {25.0, 50.0, 75.0, 99.0}) {
        const double exact = exactPercentile(samples, p);
        EXPECT_NEAR(h.percentile(p), exact,
                    exact * LatencyHistogram::kMaxRelativeError + 1.0);
    }
}

// ---------------------------------------------------------------------
// Tenant partitioning.
// ---------------------------------------------------------------------

TEST(TrafficInjectorTest, TenantPartitionsDisjointAndRowAligned)
{
    const auto map = defaultMap();
    TrafficInjector inj(poissonConfig(4), *map, 1);
    ASSERT_EQ(inj.tenants(), 4);
    const Addr rowBytes = static_cast<Addr>(map->org().rowBytes);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(inj.tenantBase(i) % rowBytes, 0u);
        EXPECT_EQ(inj.tenantSize(i) % rowBytes, 0u);
        EXPECT_GE(inj.tenantSize(i), rowBytes);
        if (i > 0) {
            // Partitions tile the address space without overlap.
            EXPECT_EQ(inj.tenantBase(i),
                      inj.tenantBase(i - 1) + inj.tenantSize(i - 1));
        }
    }
    EXPECT_LE(inj.tenantBase(3) + inj.tenantSize(3),
              map->capacityBytes());
}

TEST(TrafficInjectorTest, GeneratedAddressesStayInTenantPartition)
{
    const auto map = defaultMap();
    TrafficConfig cfg = poissonConfig(3);
    cfg.ratePerKilocycle = 300.0;
    TrafficInjector inj(cfg, *map, 7);
    std::vector<Request> seen;
    inj.bind(
        [&](const Request &r) {
            seen.push_back(r);
            return true;
        },
        [&](const Request &r) {
            seen.push_back(r);
            return true;
        });
    for (Tick t = 0; t < 20000; ++t)
        inj.tick(t);
    ASSERT_GT(seen.size(), 100u);
    for (const Request &r : seen) {
        ASSERT_GE(r.core, 0);
        ASSERT_LT(r.core, 3);
        EXPECT_GE(r.addr, inj.tenantBase(r.core));
        EXPECT_LT(r.addr,
                  inj.tenantBase(r.core) + inj.tenantSize(r.core));
    }
}

TEST(TrafficInjectorTest, DeterministicStreamAcrossInstances)
{
    const auto map = defaultMap();
    auto collect = [&](std::uint64_t seed) {
        TrafficInjector inj(poissonConfig(2), *map, seed);
        std::vector<Request> seen;
        auto sink = [&](const Request &r) {
            seen.push_back(r);
            return true;
        };
        inj.bind(sink, sink);
        for (Tick t = 0; t < 5000; ++t)
            inj.tick(t);
        return seen;
    };
    const auto a = collect(3);
    const auto b = collect(3);
    const auto c = collect(4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].isWrite, b[i].isWrite);
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].core, b[i].core);
    }
    EXPECT_NE(a.size(), 0u);
    // A different seed must not replay the same stream.
    bool differs = a.size() != c.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].addr != c[i].addr;
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------
// DRAMSim-style trace round trip.
// ---------------------------------------------------------------------

TEST(DramSimTrace, RoundTripThroughWriter)
{
    std::vector<TrafficRecord> records;
    for (int i = 0; i < 8; ++i) {
        TrafficRecord rec;
        rec.addr = static_cast<Addr>(i) * 0x1340;
        rec.isWrite = (i % 3) == 0;
        rec.cycle = static_cast<Tick>(i) * 17;
        records.push_back(rec);
    }
    const std::string path =
        testing::TempDir() + "dsarp_dramsim_rt.txt";
    writeDramSimTrace(path, records);
    const auto got = readDramSimTrace(path);
    ASSERT_EQ(got.size(), records.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].addr, records[i].addr);
        EXPECT_EQ(got[i].isWrite, records[i].isWrite);
        EXPECT_EQ(got[i].cycle, records[i].cycle);
    }
}

TEST(DramSimTrace, ParsesCaseInsensitiveOpsAndComments)
{
    const std::string path = writeTemp("dsarp_dramsim_ops.txt",
                                       "# header\n"
                                       "0x40 read 0\n"
                                       "0x80 Write 5\n"
                                       "0xc0 READ 5\n");
    const auto got = readDramSimTrace(path);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_FALSE(got[0].isWrite);
    EXPECT_TRUE(got[1].isWrite);
    EXPECT_FALSE(got[2].isWrite);
}

TEST(DramSimTrace, RejectsMalformedLines)
{
    const std::string badOp =
        writeTemp("dsarp_dramsim_badop.txt", "0x40 FETCH 0\n");
    EXPECT_EXIT(readDramSimTrace(badOp), testing::ExitedWithCode(1),
                "READ or WRITE");

    const std::string badAddr =
        writeTemp("dsarp_dramsim_badaddr.txt", "0xZZ READ 0\n");
    EXPECT_EXIT(readDramSimTrace(badAddr), testing::ExitedWithCode(1),
                "address");

    const std::string badCycle =
        writeTemp("dsarp_dramsim_badcycle.txt", "0x40 READ -5\n");
    EXPECT_EXIT(readDramSimTrace(badCycle), testing::ExitedWithCode(1),
                "cycle");

    const std::string backwards = writeTemp(
        "dsarp_dramsim_backwards.txt", "0x40 READ 10\n0x80 READ 3\n");
    EXPECT_EXIT(readDramSimTrace(backwards), testing::ExitedWithCode(1),
                "backwards");

    const std::string fields =
        writeTemp("dsarp_dramsim_fields.txt", "0x40 READ\n");
    EXPECT_EXIT(readDramSimTrace(fields), testing::ExitedWithCode(1),
                "field");

    const std::string empty =
        writeTemp("dsarp_dramsim_empty.txt", "# nothing\n");
    EXPECT_EXIT(readDramSimTrace(empty), testing::ExitedWithCode(1),
                "no records");
}

// ---------------------------------------------------------------------
// Full traffic runs through the Runner.
// ---------------------------------------------------------------------

namespace {

/** Short windows so full-system traffic runs stay fast. */
class TrafficRun : public ::testing::Test
{
  protected:
    TrafficRun()
    {
        setenv("DSARP_BENCH_CYCLES", "30000", 1);
        setenv("DSARP_BENCH_WARMUP", "5000", 1);
        runner_ = std::make_unique<Runner>();
    }

    ~TrafficRun() override
    {
        unsetenv("DSARP_BENCH_CYCLES");
        unsetenv("DSARP_BENCH_WARMUP");
    }

    static RunConfig
    trafficPoint(const std::string &mode)
    {
        RunConfig cfg = mechDsarp(Density::k8Gb);
        cfg.traffic.mode = mode;
        cfg.traffic.ratePerKilocycle = 60.0;
        cfg.traffic.hotRowPct = 30.0;
        return cfg;
    }

    static void
    expectIdentical(const RunResult &a, const RunResult &b)
    {
        EXPECT_EQ(a.readsCompleted, b.readsCompleted);
        EXPECT_EQ(a.writesIssued, b.writesIssued);
        EXPECT_EQ(a.refAb, b.refAb);
        EXPECT_EQ(a.refPb, b.refPb);
        ASSERT_EQ(a.readLatency.count(), b.readLatency.count());
        for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
            ASSERT_EQ(a.readLatency.bucket(i), b.readLatency.bucket(i));
        ASSERT_EQ(a.tenants.size(), b.tenants.size());
        for (std::size_t i = 0; i < a.tenants.size(); ++i) {
            EXPECT_EQ(a.tenants[i].generated, b.tenants[i].generated);
            EXPECT_EQ(a.tenants[i].injected, b.tenants[i].injected);
            EXPECT_DOUBLE_EQ(a.tenants[i].p99, b.tenants[i].p99);
        }
    }

    std::unique_ptr<Runner> runner_;
};

} // namespace

TEST_F(TrafficRun, PoissonRunReportsLatencyPercentiles)
{
    const RunResult res = runner_->runTraffic(trafficPoint("poisson"));
    EXPECT_GT(res.readsCompleted, 0u);
    EXPECT_GT(res.readLatency.count(), 0u);
    EXPECT_GT(res.readLatency.percentile(50), 0.0);
    EXPECT_LE(res.readLatency.percentile(50),
              res.readLatency.percentile(99));
    EXPECT_LE(res.readLatency.percentile(99),
              res.readLatency.percentile(99.9));
    // Open loop: no cores, so the closed-loop metrics stay empty.
    EXPECT_TRUE(res.ipc.empty());
    EXPECT_DOUBLE_EQ(res.ws, 0.0);
    ASSERT_EQ(res.tenants.size(), 1u);
    EXPECT_GT(res.tenants[0].generated, 0u);
    EXPECT_GE(res.tenants[0].generated, res.tenants[0].injected);
}

TEST_F(TrafficRun, CycleAndEventEnginesBitIdentical)
{
    for (const char *mode : {"poisson", "bursty"}) {
        RunConfig cfg = trafficPoint(mode);
        cfg.engine = "cycle";
        const RunResult cycle = runner_->runTraffic(cfg);
        cfg.engine = "event";
        const RunResult event = runner_->runTraffic(cfg);
        expectIdentical(cycle, event);
    }
}

TEST_F(TrafficRun, ShardedRunsBitIdenticalToSerial)
{
    // The same three points serially and under parallelFor sharding:
    // traffic seeding depends only on (seed, tenant), never on thread
    // assignment, so the results must match slot for slot.
    std::vector<RunConfig> points;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        RunConfig cfg = trafficPoint("poisson");
        cfg.seed = seed;
        points.push_back(cfg);
    }
    std::vector<RunResult> serial(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        serial[i] = runner_->runTraffic(points[i]);
    std::vector<RunResult> sharded(points.size());
    parallelFor(3, points.size(), [&](std::size_t i) {
        sharded[i] = runner_->runTraffic(points[i]);
    });
    for (std::size_t i = 0; i < points.size(); ++i)
        expectIdentical(serial[i], sharded[i]);
}

TEST_F(TrafficRun, MultiTenantReportsFairness)
{
    RunConfig cfg = trafficPoint("poisson");
    cfg.traffic.tenants = 3;
    cfg.traffic.tenantPriorities = "4,2,1";
    const RunResult res = runner_->runTraffic(cfg);
    ASSERT_EQ(res.tenants.size(), 3u);
    EXPECT_EQ(res.tenants[0].priority, 4);
    EXPECT_EQ(res.tenants[2].priority, 1);
    EXPECT_GE(res.tenantFairness, 1.0 - 1e-9);
    for (const TenantResult &t : res.tenants) {
        EXPECT_GT(t.generated, 0u);
        if (t.reads > 0)
            EXPECT_GE(t.slowdown, 1.0 - 1e-9);
    }
}

TEST_F(TrafficRun, TraceModeDrivesSystem)
{
    std::vector<TrafficRecord> records;
    Rng rng(11);
    Tick cycle = 0;
    for (int i = 0; i < 400; ++i) {
        TrafficRecord rec;
        rec.addr = rng.below(1u << 24) * 64;
        rec.isWrite = (i % 4) == 0;
        rec.cycle = cycle;
        cycle += rng.below(20);
        records.push_back(rec);
    }
    const std::string path =
        testing::TempDir() + "dsarp_traffic_replay.txt";
    writeDramSimTrace(path, records);

    RunConfig cfg = trafficPoint("trace");
    cfg.traffic.tracePath = path;
    const RunResult res = runner_->runTraffic(cfg);
    EXPECT_GT(res.readsCompleted, 0u);
    EXPECT_GT(res.writesIssued, 0u);
    EXPECT_GT(res.readLatency.count(), 0u);

    // Replay is deterministic and engine-independent too.
    cfg.engine = "event";
    expectIdentical(res, runner_->runTraffic(cfg));
}

TEST_F(TrafficRun, ClosedLoopRunsStillPopulateLatencyHistogram)
{
    // Satellite: the per-controller histogram now surfaces on every
    // run path, not just traffic runs.
    const auto workloads = makeIntensiveWorkloads(1, 8, 5);
    const RunResult res =
        runner_->run(mechRefAb(Density::k8Gb), workloads[0]);
    EXPECT_GT(res.readLatency.count(), 0u);
    EXPECT_EQ(res.readLatency.count(), res.readsCompleted);
    EXPECT_GT(res.readLatency.percentile(99), 0.0);
}
