/**
 * @file
 * Unit tests for the benchmark catalogue and workload mixing.
 */

#include <gtest/gtest.h>

#include "workload/workload.hh"

using namespace dsarp;

TEST(Benchmarks, CatalogueShape)
{
    const auto &table = benchmarkTable();
    EXPECT_GE(table.size(), 16u);
    int intensive = 0;
    for (const Benchmark &b : table) {
        EXPECT_FALSE(b.name.empty());
        EXPECT_GT(b.profile.mpki, 0.0);
        EXPECT_GE(b.profile.rowLocality, 0.0);
        EXPECT_LE(b.profile.rowLocality, 1.0);
        EXPECT_GT(b.profile.footprintRows, 0);
        if (b.isIntensive())
            ++intensive;
    }
    EXPECT_GE(intensive, 8) << "need a healthy intensive pool";
    EXPECT_GE(static_cast<int>(table.size()) - intensive, 8);
}

TEST(Benchmarks, IntensiveThresholdIsTen)
{
    for (const Benchmark &b : benchmarkTable())
        EXPECT_EQ(b.isIntensive(), b.profile.mpki >= 10.0) << b.name;
}

TEST(Benchmarks, PoolsPartitionTheCatalogue)
{
    const auto intensive = intensiveBenchmarks();
    const auto non_intensive = nonIntensiveBenchmarks();
    EXPECT_EQ(intensive.size() + non_intensive.size(),
              benchmarkTable().size());
    for (int idx : intensive)
        EXPECT_TRUE(benchmarkTable()[idx].isIntensive());
    for (int idx : non_intensive)
        EXPECT_FALSE(benchmarkTable()[idx].isIntensive());
}

TEST(Benchmarks, IndexLookup)
{
    const auto &table = benchmarkTable();
    for (int i = 0; i < static_cast<int>(table.size()); ++i)
        EXPECT_EQ(benchmarkIndex(table[i].name), i);
}

TEST(Workloads, FiveCategories)
{
    const auto workloads = makeWorkloads(20, 8, 1);
    ASSERT_EQ(workloads.size(), 100u);  // The paper's 100 workloads.
    int seen[5] = {0, 0, 0, 0, 0};
    for (const Workload &w : workloads) {
        ASSERT_EQ(w.benchIdx.size(), 8u);
        ++seen[w.categoryPct / 25];
    }
    for (int count : seen)
        EXPECT_EQ(count, 20);
}

TEST(Workloads, CategoryCompositionMatchesPercentage)
{
    const auto workloads = makeWorkloads(10, 8, 2);
    const auto &table = benchmarkTable();
    for (const Workload &w : workloads) {
        int intensive = 0;
        for (int idx : w.benchIdx)
            intensive += table[idx].isIntensive() ? 1 : 0;
        EXPECT_EQ(intensive, 8 * w.categoryPct / 100)
            << "workload " << w.index;
    }
}

TEST(Workloads, DeterministicMixes)
{
    const auto a = makeWorkloads(5, 8, 99);
    const auto b = makeWorkloads(5, 8, 99);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].benchIdx, b[i].benchIdx);
}

TEST(Workloads, SeedsChangeMixes)
{
    const auto a = makeWorkloads(5, 8, 1);
    const auto b = makeWorkloads(5, 8, 2);
    int differing = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].benchIdx != b[i].benchIdx)
            ++differing;
    }
    EXPECT_GT(differing, 10);
}

TEST(Workloads, IndicesAreSequential)
{
    const auto workloads = makeWorkloads(4, 8, 3);
    for (std::size_t i = 0; i < workloads.size(); ++i)
        EXPECT_EQ(workloads[i].index, static_cast<int>(i));
}

TEST(Workloads, IntensiveOnly)
{
    const auto workloads = makeIntensiveWorkloads(6, 4, 5);
    ASSERT_EQ(workloads.size(), 6u);
    const auto &table = benchmarkTable();
    for (const Workload &w : workloads) {
        ASSERT_EQ(w.benchIdx.size(), 4u);
        for (int idx : w.benchIdx)
            EXPECT_TRUE(table[idx].isIntensive());
    }
}

TEST(Workloads, VariableCoreCounts)
{
    for (int cores : {2, 4, 8}) {
        const auto workloads = makeIntensiveWorkloads(3, cores, 7);
        for (const Workload &w : workloads)
            EXPECT_EQ(static_cast<int>(w.benchIdx.size()), cores);
    }
}
