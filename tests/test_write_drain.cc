/**
 * @file
 * Unit tests for writeback-mode hysteresis.
 */

#include <gtest/gtest.h>

#include "controller/write_drain.hh"

using namespace dsarp;

TEST(WriteDrain, StartsInactive)
{
    WriteDrain wd(54, 32);
    EXPECT_FALSE(wd.active());
    EXPECT_EQ(wd.batches(), 0u);
}

TEST(WriteDrain, EntersAtHighWatermark)
{
    WriteDrain wd(54, 32);
    wd.update(53);
    EXPECT_FALSE(wd.active());
    wd.update(54);
    EXPECT_TRUE(wd.active());
    EXPECT_EQ(wd.batches(), 1u);
}

TEST(WriteDrain, StaysActiveUntilLowWatermark)
{
    WriteDrain wd(54, 32);
    wd.update(54);
    wd.update(40);
    EXPECT_TRUE(wd.active()) << "still above the low watermark";
    wd.update(33);
    EXPECT_TRUE(wd.active());
    wd.update(32);
    EXPECT_FALSE(wd.active());
}

TEST(WriteDrain, CountsBatches)
{
    WriteDrain wd(54, 32);
    for (int i = 0; i < 3; ++i) {
        wd.update(60);
        EXPECT_TRUE(wd.active());
        wd.update(10);
        EXPECT_FALSE(wd.active());
    }
    EXPECT_EQ(wd.batches(), 3u);
}

TEST(WriteDrain, NoReentryAboveLowWhileDraining)
{
    WriteDrain wd(54, 32);
    wd.update(54);
    EXPECT_EQ(wd.batches(), 1u);
    // Occupancy wobbles above high again mid-drain: same batch.
    wd.update(56);
    wd.update(54);
    EXPECT_EQ(wd.batches(), 1u);
    wd.update(30);
    wd.update(54);
    EXPECT_EQ(wd.batches(), 2u);
}
