"""Minimal C++ token stream for dsarp-analyze.

A real lexer (comments, string/char literals, raw strings, numbers,
identifiers, punctuation) feeding the analyzer's scope- and
declaration-aware rules.  This is deliberately not a parser: the rules
in dsarp_analyze.py work on declaration patterns and brace/paren
balance, which a faithful token stream makes reliable in a way the
line-regex lint (tools/lint/lint.py) cannot be.

When the clang Python bindings are importable the driver prefers them
for translation-unit discovery via compile_commands.json; the token
front end here is the portable fallback that needs nothing beyond the
standard library, so the determinism gate runs on any CI worker.
"""

import re
from dataclasses import dataclass

# One token: kind in {"id", "num", "str", "char", "punct"}.
@dataclass
class Tok:
    kind: str
    text: str
    line: int


_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# A C++ pp-number: starts with a digit (or .digit), then digits,
# letters, dots and digit separators; +/- only as an exponent sign.
_NUM_RE = re.compile(r"(?:\d|\.\d)(?:[eEpP][+-]|[\w.'])*")
# Longest-first multi-char operators the rules care about; everything
# else falls through as single characters.
_PUNCTS = (
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||",
)

_SUPPRESS_RE = re.compile(
    r"dsarp-analyze:\s*allow\(\s*([a-z0-9_,\s-]+?)\s*\)")


def lex(text):
    """Tokenize *text*.

    Returns (tokens, suppressions) where suppressions maps a line
    number to the set of rule names allowed there via a
    ``// dsarp-analyze: allow(rule[, rule...])`` comment.  Preprocessor
    directive lines are skipped entirely (their line numbers still
    advance), as are comments and the contents of literals.
    """
    toks = []
    suppress = {}
    i = 0
    line = 1
    n = len(text)
    at_line_start = True

    def note_suppression(comment, lineno):
        for m in _SUPPRESS_RE.finditer(comment):
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            suppress.setdefault(lineno, set()).update(rules)

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#" and at_line_start:
            # Preprocessor directive: consume to end of line, honoring
            # backslash continuations.
            start = i
            while i < n:
                if text[i] == "\n":
                    if text[i - 1] == "\\":
                        line += 1
                        i += 1
                        continue
                    break
                i += 1
            continue
        at_line_start = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            end = n if end < 0 else end
            note_suppression(text[i:end], line)
            i = end
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            end = n - 2 if end < 0 else end
            body = text[i:end]
            note_suppression(body, line)
            line += body.count("\n")
            i = end + 2
            continue
        if c == '"':
            if toks and toks[-1].kind == "id" and toks[-1].text == "R":
                # Raw string: R"delim( ... )delim".
                m = re.match(r'R"([^()\\ ]{0,16})\(', text[i - 1:])
                if m:
                    close = ")" + m.group(1) + '"'
                    end = text.find(close, i)
                    end = n - len(close) if end < 0 else end
                    toks.pop()
                    toks.append(Tok("str", "", line))
                    line += text.count("\n", i, end)
                    i = end + len(close)
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            toks.append(Tok("str", text[i + 1:j], line))
            line += text.count("\n", i, j)
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            toks.append(Tok("char", text[i + 1:j], line))
            i = j + 1
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            toks.append(Tok("num", m.group(0), line))
            i = m.end()
            continue
        m = _ID_RE.match(text, i)
        if m:
            toks.append(Tok("id", m.group(0), line))
            i = m.end()
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Tok("punct", p, line))
                i += len(p)
                break
        else:
            toks.append(Tok("punct", c, line))
            i += 1
    return toks, suppress


def skip_template_args(toks, i):
    """With toks[i] == '<', return the index just past the matching '>'.

    Treats '>>' as two closers (C++11 semantics).  Returns i unchanged
    when toks[i] is not '<'.
    """
    if i >= len(toks) or toks[i].text != "<":
        return i
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{", "}"):
            # Lost the plot (operator< in an expression); bail out.
            return i
        i += 1
    return i


def template_arg_tokens(toks, i):
    """With toks[i] == '<', return the token list of the first template
    argument (up to the first top-level ',' or the closing '>')."""
    if i >= len(toks) or toks[i].text != "<":
        return []
    out = []
    depth = 0
    i += 1
    paren = 0
    while i < len(toks):
        t = toks[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            if depth == 0:
                break
            depth -= 1
        elif t == ">>":
            if depth <= 1:
                break
            depth -= 2
        elif t == "(":
            paren += 1
        elif t == ")":
            paren -= 1
        elif t == "," and depth == 0 and paren == 0:
            break
        out.append(toks[i])
        i += 1
    return out
